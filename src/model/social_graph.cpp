#include "model/social_graph.hpp"

#include <algorithm>

namespace sm {

namespace {
[[noreturn]] void fail(const std::string& what, NodeId id) {
  throw grb::InvalidValue(what + " (id " + std::to_string(id) + ")");
}
}  // namespace

DenseId SocialGraph::add_user(NodeId id) {
  const DenseId dense = static_cast<DenseId>(users_.size());
  const auto [_, inserted] = user_index_.emplace(id, dense);
  if (!inserted) fail("duplicate user", id);
  users_.push_back(User{.id = id, .friends = {}, .liked_comments = {}});
  return dense;
}

DenseId SocialGraph::add_post(NodeId id, Timestamp ts) {
  const DenseId dense = static_cast<DenseId>(posts_.size());
  const auto [_, inserted] = post_index_.emplace(id, dense);
  if (!inserted) fail("duplicate post", id);
  posts_.push_back(Post{.id = id, .timestamp = ts, .comments = {}});
  return dense;
}

DenseId SocialGraph::add_comment(NodeId id, Timestamp ts,
                                 bool parent_is_comment, NodeId parent) {
  const DenseId dense = static_cast<DenseId>(comments_.size());
  Comment c;
  c.id = id;
  c.timestamp = ts;
  c.parent_is_comment = parent_is_comment;
  if (parent_is_comment) {
    c.parent = require_comment(parent);
    c.root_post = comments_[c.parent].root_post;
  } else {
    c.parent = require_post(parent);
    c.root_post = c.parent;
  }
  const auto [_, inserted] = comment_index_.emplace(id, dense);
  if (!inserted) fail("duplicate comment", id);
  posts_[c.root_post].comments.push_back(dense);
  comments_.push_back(std::move(c));
  return dense;
}

bool SocialGraph::add_likes(NodeId user, NodeId comment) {
  const DenseId u = require_user(user);
  const DenseId c = require_comment(comment);
  auto& likers = comments_[c].likers;
  if (std::find(likers.begin(), likers.end(), u) != likers.end()) {
    return false;
  }
  likers.push_back(u);
  users_[u].liked_comments.push_back(c);
  ++likes_count_;
  return true;
}

bool SocialGraph::add_friendship(NodeId a, NodeId b) {
  if (a == b) fail("self-friendship", a);
  const DenseId da = require_user(a);
  const DenseId db = require_user(b);
  auto& fa = users_[da].friends;
  if (std::find(fa.begin(), fa.end(), db) != fa.end()) {
    return false;
  }
  fa.push_back(db);
  users_[db].friends.push_back(da);
  ++friendship_count_;
  return true;
}

void SocialGraph::add_likes_unchecked(NodeId user, NodeId comment) {
  const DenseId u = require_user(user);
  const DenseId c = require_comment(comment);
  comments_[c].likers.push_back(u);
  users_[u].liked_comments.push_back(c);
  ++likes_count_;
}

void SocialGraph::add_friendship_unchecked(NodeId a, NodeId b) {
  if (a == b) fail("self-friendship", a);
  const DenseId da = require_user(a);
  const DenseId db = require_user(b);
  users_[da].friends.push_back(db);
  users_[db].friends.push_back(da);
  ++friendship_count_;
}

namespace {
/// Erases the first occurrence of `value` from `xs`; returns true if found.
bool erase_value(std::vector<DenseId>& xs, DenseId value) {
  const auto it = std::find(xs.begin(), xs.end(), value);
  if (it == xs.end()) return false;
  xs.erase(it);
  return true;
}
}  // namespace

bool SocialGraph::remove_likes(NodeId user, NodeId comment) {
  const DenseId u = require_user(user);
  const DenseId c = require_comment(comment);
  if (!erase_value(comments_[c].likers, u)) return false;
  erase_value(users_[u].liked_comments, c);
  --likes_count_;
  return true;
}

bool SocialGraph::remove_friendship(NodeId a, NodeId b) {
  const DenseId da = require_user(a);
  const DenseId db = require_user(b);
  if (!erase_value(users_[da].friends, db)) return false;
  erase_value(users_[db].friends, da);
  --friendship_count_;
  return true;
}

std::optional<DenseId> SocialGraph::find_user(NodeId id) const {
  const auto it = user_index_.find(id);
  if (it == user_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<DenseId> SocialGraph::find_post(NodeId id) const {
  const auto it = post_index_.find(id);
  if (it == post_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<DenseId> SocialGraph::find_comment(NodeId id) const {
  const auto it = comment_index_.find(id);
  if (it == comment_index_.end()) return std::nullopt;
  return it->second;
}

DenseId SocialGraph::require_user(NodeId id) const {
  const auto d = find_user(id);
  if (!d) fail("unknown user", id);
  return *d;
}

DenseId SocialGraph::require_post(NodeId id) const {
  const auto d = find_post(id);
  if (!d) fail("unknown post", id);
  return *d;
}

DenseId SocialGraph::require_comment(NodeId id) const {
  const auto d = find_comment(id);
  if (!d) fail("unknown comment", id);
  return *d;
}

bool SocialGraph::has_friendship(NodeId a, NodeId b) const {
  const auto da = find_user(a);
  const auto db = find_user(b);
  if (!da || !db) return false;
  const auto& fa = users_[*da].friends;
  return std::find(fa.begin(), fa.end(), *db) != fa.end();
}

bool SocialGraph::has_likes(NodeId user, NodeId comment) const {
  const auto u = find_user(user);
  const auto c = find_comment(comment);
  if (!u || !c) return false;
  const auto& likers = comments_[*c].likers;
  return std::find(likers.begin(), likers.end(), *u) != likers.end();
}

}  // namespace sm
