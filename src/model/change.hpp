// Change model for the update phase. The contest's change sequences are
// insert-only (the paper's future work mentions removals); a ChangeSet is an
// ordered list of element insertions that is applied atomically between two
// query evaluations.
#pragma once

#include <variant>
#include <vector>

#include "model/social_graph.hpp"

namespace sm {

struct AddUser {
  NodeId id = 0;

  friend bool operator==(const AddUser&, const AddUser&) = default;
};

struct AddPost {
  NodeId id = 0;
  Timestamp timestamp = 0;
  NodeId submitter = 0;  // informative; queries do not use it

  friend bool operator==(const AddPost&, const AddPost&) = default;
};

struct AddComment {
  NodeId id = 0;
  Timestamp timestamp = 0;
  bool parent_is_comment = false;
  NodeId parent = 0;
  NodeId submitter = 0;

  friend bool operator==(const AddComment&, const AddComment&) = default;
};

struct AddLikes {
  NodeId user = 0;
  NodeId comment = 0;

  friend bool operator==(const AddLikes&, const AddLikes&) = default;
};

struct AddFriendship {
  NodeId a = 0;
  NodeId b = 0;

  friend bool operator==(const AddFriendship&, const AddFriendship&) = default;
};

/// Edge removals — the paper's future-work item (1) ("more realistic update
/// operations, including both insertions and removals"). Node removals are
/// out of scope (the case study never frees entities); removing a likes or
/// friends edge is what changes query results.
struct RemoveLikes {
  NodeId user = 0;
  NodeId comment = 0;

  friend bool operator==(const RemoveLikes&, const RemoveLikes&) = default;
};

struct RemoveFriendship {
  NodeId a = 0;
  NodeId b = 0;

  friend bool operator==(const RemoveFriendship&,
                         const RemoveFriendship&) = default;
};

using ChangeOp = std::variant<AddUser, AddPost, AddComment, AddLikes,
                              AddFriendship, RemoveLikes, RemoveFriendship>;

/// One batch of insertions applied between two reevaluations.
struct ChangeSet {
  std::vector<ChangeOp> ops;

  [[nodiscard]] std::size_t size() const noexcept { return ops.size(); }
  [[nodiscard]] bool empty() const noexcept { return ops.empty(); }
};

/// Applies every operation of `cs` to `g`, in order. Duplicate likes /
/// friendships are tolerated (no-ops), mirroring the reference framework.
void apply_change_set(SocialGraph& g, const ChangeSet& cs);

/// True if the set contains any Remove* operation (engines use this to pick
/// the monotone merge-only top-k fast path when the stream is insert-only).
bool has_removals(const ChangeSet& cs);

/// Total number of element insertions across all change sets (the
/// "#inserts" column of Table II).
std::size_t total_inserts(const std::vector<ChangeSet>& sets);

}  // namespace sm
