// The TTC 2018 "Social Media" data model (schema after Fig. 1 of the paper,
// derived from the LDBC Social Network Benchmark): Users submit Submissions;
// a Submission is either a Post (tree root) or a Comment (child of a Post or
// another Comment, with a direct rootPost pointer for O(1) lookups); Users
// like Comments and form undirected friendships.
//
// This container is the neutral, engine-independent representation: the
// GraphBLAS engines derive matrices from it, the NMF baseline walks it
// directly, and the loader/generator produce it. Entities carry external
// ids (arbitrary uint64, as in the contest's CSVs) mapped to dense indices.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "grb/types.hpp"

namespace sm {

/// External entity identifier (as appearing in the dataset files).
using NodeId = std::uint64_t;
/// Dense internal index, assigned in arrival order per entity class.
using DenseId = grb::Index;
/// Milliseconds since epoch, following the LDBC exports.
using Timestamp = std::int64_t;

struct Post {
  NodeId id = 0;
  Timestamp timestamp = 0;
  /// Comments anywhere below this post, in arrival order (dense comment ids).
  std::vector<DenseId> comments;
};

struct Comment {
  NodeId id = 0;
  Timestamp timestamp = 0;
  /// Dense id of the root post (every comment belongs to exactly one).
  DenseId root_post = 0;
  /// Dense id of the parent submission: {true, idx} = parent is a comment,
  /// {false, idx} = parent is a post.
  bool parent_is_comment = false;
  DenseId parent = 0;
  /// Users who like this comment, in arrival order (dense user ids).
  std::vector<DenseId> likers;
};

struct User {
  NodeId id = 0;
  /// Friends in arrival order (dense user ids); friendship is symmetric and
  /// stored on both endpoints.
  std::vector<DenseId> friends;
  /// Comments this user likes (dense comment ids).
  std::vector<DenseId> liked_comments;
};

class SocialGraph {
 public:
  // --- mutation (used by the loader, the generator and apply_change) -------

  /// Adds a user with the given external id; returns its dense id.
  /// Throws grb::InvalidValue if the id already exists.
  DenseId add_user(NodeId id);

  /// Adds a post; returns its dense id.
  DenseId add_post(NodeId id, Timestamp ts);

  /// Adds a comment under `parent` (post if parent_is_comment is false).
  /// The root post is resolved internally and the comment is registered in
  /// the root post's comment list. Returns the dense id.
  DenseId add_comment(NodeId id, Timestamp ts, bool parent_is_comment,
                      NodeId parent);

  /// Records "user likes comment". Duplicate likes are ignored (the model
  /// is a set of edges). Returns true if the edge was new.
  bool add_likes(NodeId user, NodeId comment);

  /// Records an undirected friendship. Self-friendship is rejected with
  /// grb::InvalidValue; duplicates are ignored. Returns true if new.
  bool add_friendship(NodeId a, NodeId b);

  /// Bulk-load fast paths: the caller guarantees the edge is absent (e.g.
  /// datagen's hash-set sampler), skipping the O(degree) duplicate scan
  /// that makes checked adds quadratic on Zipf-popular endpoints.
  void add_likes_unchecked(NodeId user, NodeId comment);
  void add_friendship_unchecked(NodeId a, NodeId b);

  /// Removes a like edge if present; returns true if something was removed.
  /// Unknown entities throw grb::InvalidValue (a removal must reference
  /// things that exist, even when the edge itself is already gone).
  bool remove_likes(NodeId user, NodeId comment);

  /// Removes a friendship (both directions); returns true if removed.
  bool remove_friendship(NodeId a, NodeId b);

  // --- lookups --------------------------------------------------------------

  [[nodiscard]] std::size_t num_users() const noexcept { return users_.size(); }
  [[nodiscard]] std::size_t num_posts() const noexcept { return posts_.size(); }
  [[nodiscard]] std::size_t num_comments() const noexcept {
    return comments_.size();
  }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return num_users() + num_posts() + num_comments();
  }
  /// Total edge count: friendships (counted once per pair) + likes +
  /// commented + rootPost edges, matching the accounting of Table II.
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return friendship_count_ + likes_count_ + 2 * comments_.size();
  }
  [[nodiscard]] std::size_t num_friendships() const noexcept {
    return friendship_count_;
  }
  [[nodiscard]] std::size_t num_likes() const noexcept { return likes_count_; }

  [[nodiscard]] const Post& post(DenseId i) const { return posts_.at(i); }
  [[nodiscard]] const Comment& comment(DenseId i) const {
    return comments_.at(i);
  }
  [[nodiscard]] const User& user(DenseId i) const { return users_.at(i); }

  [[nodiscard]] const std::vector<Post>& posts() const noexcept {
    return posts_;
  }
  [[nodiscard]] const std::vector<Comment>& comments() const noexcept {
    return comments_;
  }
  [[nodiscard]] const std::vector<User>& users() const noexcept {
    return users_;
  }

  [[nodiscard]] std::optional<DenseId> find_user(NodeId id) const;
  [[nodiscard]] std::optional<DenseId> find_post(NodeId id) const;
  [[nodiscard]] std::optional<DenseId> find_comment(NodeId id) const;

  /// Lookup that throws grb::InvalidValue with a context message — loaders
  /// use these so malformed datasets fail loudly.
  [[nodiscard]] DenseId require_user(NodeId id) const;
  [[nodiscard]] DenseId require_post(NodeId id) const;
  [[nodiscard]] DenseId require_comment(NodeId id) const;

  [[nodiscard]] bool has_friendship(NodeId a, NodeId b) const;
  [[nodiscard]] bool has_likes(NodeId user, NodeId comment) const;

 private:
  std::vector<Post> posts_;
  std::vector<Comment> comments_;
  std::vector<User> users_;
  std::unordered_map<NodeId, DenseId> post_index_;
  std::unordered_map<NodeId, DenseId> comment_index_;
  std::unordered_map<NodeId, DenseId> user_index_;
  std::size_t friendship_count_ = 0;
  std::size_t likes_count_ = 0;
};

}  // namespace sm
