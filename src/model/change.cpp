#include "model/change.hpp"

namespace sm {

void apply_change_set(SocialGraph& g, const ChangeSet& cs) {
  for (const ChangeOp& op : cs.ops) {
    std::visit(
        [&g](const auto& o) {
          using T = std::decay_t<decltype(o)>;
          if constexpr (std::is_same_v<T, AddUser>) {
            g.add_user(o.id);
          } else if constexpr (std::is_same_v<T, AddPost>) {
            g.add_post(o.id, o.timestamp);
          } else if constexpr (std::is_same_v<T, AddComment>) {
            g.add_comment(o.id, o.timestamp, o.parent_is_comment, o.parent);
          } else if constexpr (std::is_same_v<T, AddLikes>) {
            g.add_likes(o.user, o.comment);
          } else if constexpr (std::is_same_v<T, AddFriendship>) {
            g.add_friendship(o.a, o.b);
          } else if constexpr (std::is_same_v<T, RemoveLikes>) {
            g.remove_likes(o.user, o.comment);
          } else {
            static_assert(std::is_same_v<T, RemoveFriendship>);
            g.remove_friendship(o.a, o.b);
          }
        },
        op);
  }
}

bool has_removals(const ChangeSet& cs) {
  for (const ChangeOp& op : cs.ops) {
    if (std::holds_alternative<RemoveLikes>(op) ||
        std::holds_alternative<RemoveFriendship>(op)) {
      return true;
    }
  }
  return false;
}

std::size_t total_inserts(const std::vector<ChangeSet>& sets) {
  std::size_t n = 0;
  for (const auto& cs : sets) {
    n += cs.size();
  }
  return n;
}

}  // namespace sm
