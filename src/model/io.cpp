#include "model/io.hpp"

#include <filesystem>

#include "support/csv.hpp"

namespace sm {

namespace fs = std::filesystem;
using grbsm::support::CsvReader;
using grbsm::support::CsvWriter;
using grbsm::support::parse_i64;
using grbsm::support::parse_u64;

namespace {

void expect_fields(const std::vector<std::string>& fields, std::size_t n,
                   const char* what) {
  if (fields.size() != n) {
    throw grb::InvalidValue(std::string("malformed ") + what + " record: " +
                            std::to_string(fields.size()) + " fields, want " +
                            std::to_string(n));
  }
}

bool parse_parent_kind(const std::string& s) {
  if (s == "C") return true;
  if (s == "P") return false;
  throw grb::InvalidValue("parent kind must be P or C, got '" + s + "'");
}

std::string change_file(const std::string& dir, std::size_t n) {
  char name[32];
  std::snprintf(name, sizeof name, "change%02zu.csv", n);
  return (fs::path(dir) / name).string();
}

}  // namespace

SocialGraph load_initial(const std::string& dir) {
  SocialGraph g;
  std::vector<std::string> f;
  {
    CsvReader users((fs::path(dir) / "users.csv").string());
    while (users.next(f)) {
      expect_fields(f, 1, "user");
      g.add_user(parse_u64(f[0]));
    }
  }
  if (fs::exists(fs::path(dir) / "posts.csv")) {
    CsvReader posts((fs::path(dir) / "posts.csv").string());
    while (posts.next(f)) {
      expect_fields(f, 3, "post");
      g.add_post(parse_u64(f[0]), parse_i64(f[1]));
    }
  }
  if (fs::exists(fs::path(dir) / "comments.csv")) {
    CsvReader comments((fs::path(dir) / "comments.csv").string());
    while (comments.next(f)) {
      expect_fields(f, 5, "comment");
      g.add_comment(parse_u64(f[0]), parse_i64(f[1]), parse_parent_kind(f[2]),
                    parse_u64(f[3]));
    }
  }
  if (fs::exists(fs::path(dir) / "friends.csv")) {
    CsvReader friends((fs::path(dir) / "friends.csv").string());
    while (friends.next(f)) {
      expect_fields(f, 2, "friendship");
      g.add_friendship(parse_u64(f[0]), parse_u64(f[1]));
    }
  }
  if (fs::exists(fs::path(dir) / "likes.csv")) {
    CsvReader likes((fs::path(dir) / "likes.csv").string());
    while (likes.next(f)) {
      expect_fields(f, 2, "likes");
      g.add_likes(parse_u64(f[0]), parse_u64(f[1]));
    }
  }
  return g;
}

ChangeOp parse_change_record(const std::vector<std::string>& fields) {
  if (fields.empty()) {
    throw grb::InvalidValue("empty change record");
  }
  const std::string& kind = fields[0];
  if (kind == "U") {
    expect_fields(fields, 2, "AddUser");
    return AddUser{parse_u64(fields[1])};
  }
  if (kind == "P") {
    expect_fields(fields, 4, "AddPost");
    return AddPost{parse_u64(fields[1]), parse_i64(fields[2]),
                   parse_u64(fields[3])};
  }
  if (kind == "C") {
    expect_fields(fields, 6, "AddComment");
    return AddComment{parse_u64(fields[1]), parse_i64(fields[2]),
                      parse_parent_kind(fields[3]), parse_u64(fields[4]),
                      parse_u64(fields[5])};
  }
  if (kind == "L") {
    expect_fields(fields, 3, "AddLikes");
    return AddLikes{parse_u64(fields[1]), parse_u64(fields[2])};
  }
  if (kind == "F") {
    expect_fields(fields, 3, "AddFriendship");
    return AddFriendship{parse_u64(fields[1]), parse_u64(fields[2])};
  }
  if (kind == "RL") {
    expect_fields(fields, 3, "RemoveLikes");
    return RemoveLikes{parse_u64(fields[1]), parse_u64(fields[2])};
  }
  if (kind == "RF") {
    expect_fields(fields, 3, "RemoveFriendship");
    return RemoveFriendship{parse_u64(fields[1]), parse_u64(fields[2])};
  }
  throw grb::InvalidValue("unknown change kind '" + kind + "'");
}

std::vector<std::string> change_record_fields(const ChangeOp& op) {
  return std::visit(
      [](const auto& o) -> std::vector<std::string> {
        using T = std::decay_t<decltype(o)>;
        if constexpr (std::is_same_v<T, AddUser>) {
          return {"U", std::to_string(o.id)};
        } else if constexpr (std::is_same_v<T, AddPost>) {
          return {"P", std::to_string(o.id), std::to_string(o.timestamp),
                  std::to_string(o.submitter)};
        } else if constexpr (std::is_same_v<T, AddComment>) {
          return {"C",
                  std::to_string(o.id),
                  std::to_string(o.timestamp),
                  o.parent_is_comment ? "C" : "P",
                  std::to_string(o.parent),
                  std::to_string(o.submitter)};
        } else if constexpr (std::is_same_v<T, AddLikes>) {
          return {"L", std::to_string(o.user), std::to_string(o.comment)};
        } else if constexpr (std::is_same_v<T, AddFriendship>) {
          return {"F", std::to_string(o.a), std::to_string(o.b)};
        } else if constexpr (std::is_same_v<T, RemoveLikes>) {
          return {"RL", std::to_string(o.user), std::to_string(o.comment)};
        } else {
          static_assert(std::is_same_v<T, RemoveFriendship>);
          return {"RF", std::to_string(o.a), std::to_string(o.b)};
        }
      },
      op);
}

std::vector<ChangeSet> load_change_sets(const std::string& dir) {
  std::vector<ChangeSet> sets;
  std::vector<std::string> f;
  for (std::size_t n = 1;; ++n) {
    const std::string path = change_file(dir, n);
    if (!fs::exists(path)) break;
    ChangeSet cs;
    CsvReader reader(path);
    while (reader.next(f)) {
      cs.ops.push_back(parse_change_record(f));
    }
    sets.push_back(std::move(cs));
  }
  return sets;
}

void save_initial(const SocialGraph& g, const std::string& dir) {
  fs::create_directories(dir);
  {
    CsvWriter w((fs::path(dir) / "users.csv").string());
    for (const auto& u : g.users()) {
      w.write_record({std::to_string(u.id)});
    }
  }
  {
    CsvWriter w((fs::path(dir) / "posts.csv").string());
    for (const auto& p : g.posts()) {
      w.write_record({std::to_string(p.id), std::to_string(p.timestamp),
                      "0"});
    }
  }
  {
    CsvWriter w((fs::path(dir) / "comments.csv").string());
    for (const auto& c : g.comments()) {
      const NodeId parent_id = c.parent_is_comment
                                   ? g.comment(c.parent).id
                                   : g.post(c.parent).id;
      w.write_record({std::to_string(c.id), std::to_string(c.timestamp),
                      c.parent_is_comment ? "C" : "P",
                      std::to_string(parent_id), "0"});
    }
  }
  {
    CsvWriter w((fs::path(dir) / "friends.csv").string());
    for (const auto& u : g.users()) {
      for (const DenseId f2 : u.friends) {
        const auto& other = g.user(f2);
        if (u.id < other.id) {
          w.write_record({std::to_string(u.id), std::to_string(other.id)});
        }
      }
    }
  }
  {
    CsvWriter w((fs::path(dir) / "likes.csv").string());
    for (const auto& c : g.comments()) {
      for (const DenseId u : c.likers) {
        w.write_record({std::to_string(g.user(u).id), std::to_string(c.id)});
      }
    }
  }
}

void save_change_sets(const std::vector<ChangeSet>& sets,
                      const std::string& dir) {
  fs::create_directories(dir);
  for (std::size_t n = 0; n < sets.size(); ++n) {
    CsvWriter w(change_file(dir, n + 1));
    for (const ChangeOp& op : sets[n].ops) {
      w.write_record(change_record_fields(op));
    }
  }
}

}  // namespace sm
