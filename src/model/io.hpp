// Dataset serialization in a TTC-style layout: a dataset directory holds the
// initial graph as '|'-separated CSV files plus a numbered sequence of
// change files, mirroring how the contest shipped its LDBC exports.
//
//   <dir>/users.csv      id
//   <dir>/posts.csv      id|timestamp|submitter
//   <dir>/comments.csv   id|timestamp|parentKind(P or C)|parentId|submitter
//   <dir>/friends.csv    userA|userB          (one line per pair)
//   <dir>/likes.csv      user|comment
//   <dir>/change01.csv.. one op per line:
//       U|id
//       P|id|timestamp|submitter
//       C|id|timestamp|parentKind|parentId|submitter
//       L|user|comment
//       F|userA|userB
#pragma once

#include <string>
#include <vector>

#include "model/change.hpp"
#include "model/social_graph.hpp"

namespace sm {

/// Loads the initial graph from a dataset directory. Missing files are
/// treated as empty except users.csv, which must exist.
SocialGraph load_initial(const std::string& dir);

/// Loads change01.csv, change02.csv, ... until the first missing file.
std::vector<ChangeSet> load_change_sets(const std::string& dir);

/// Writes the initial graph (creates/overwrites the CSV files).
void save_initial(const SocialGraph& g, const std::string& dir);

/// Writes the change sequence as changeNN.csv files.
void save_change_sets(const std::vector<ChangeSet>& sets,
                      const std::string& dir);

/// Parses a single change-op record (exposed for tests).
ChangeOp parse_change_record(const std::vector<std::string>& fields);

/// Serialises a single change op to CSV fields (exposed for tests).
std::vector<std::string> change_record_fields(const ChangeOp& op);

}  // namespace sm
