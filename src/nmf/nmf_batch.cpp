#include "nmf/nmf_batch.hpp"

#include <unordered_map>
#include <unordered_set>

namespace nmf {

using queries::Ranked;
using queries::TopK;
using sm::DenseId;

std::uint64_t q1_score_of_post(const sm::SocialGraph& g, DenseId post) {
  const auto& p = g.post(post);
  std::uint64_t score = 10 * static_cast<std::uint64_t>(p.comments.size());
  for (const DenseId c : p.comments) {
    score += static_cast<std::uint64_t>(g.comment(c).likers.size());
  }
  return score;
}

std::uint64_t q2_score_of_comment(const sm::SocialGraph& g, DenseId comment) {
  const auto& likers = g.comment(comment).likers;
  if (likers.empty()) return 0;
  // BFS over the friendship graph restricted to the fan set.
  std::unordered_map<DenseId, bool> in_set_visited;  // user -> visited?
  in_set_visited.reserve(likers.size() * 2);
  for (const DenseId u : likers) {
    in_set_visited.emplace(u, false);
  }
  std::uint64_t score = 0;
  std::vector<DenseId> stack;
  for (const DenseId start : likers) {
    if (in_set_visited[start]) continue;
    std::uint64_t size = 0;
    stack.assign(1, start);
    in_set_visited[start] = true;
    while (!stack.empty()) {
      const DenseId u = stack.back();
      stack.pop_back();
      ++size;
      for (const DenseId f : g.user(u).friends) {
        const auto it = in_set_visited.find(f);
        if (it != in_set_visited.end() && !it->second) {
          it->second = true;
          stack.push_back(f);
        }
      }
    }
    score += size * size;
  }
  return score;
}

TopK q1_full_scan(const sm::SocialGraph& g) {
  TopK top(3);
  for (DenseId i = 0; i < g.num_posts(); ++i) {
    const auto& p = g.post(i);
    const Ranked r{p.id, q1_score_of_post(g, i), p.timestamp};
    if (top.entries().size() < top.k() ||
        queries::ranks_before(r, top.entries().back())) {
      top.offer(r);
    }
  }
  return top;
}

TopK q2_full_scan(const sm::SocialGraph& g) {
  TopK top(3);
  for (DenseId i = 0; i < g.num_comments(); ++i) {
    const auto& c = g.comment(i);
    const Ranked r{c.id, q2_score_of_comment(g, i), c.timestamp};
    if (top.entries().size() < top.k() ||
        queries::ranks_before(r, top.entries().back())) {
      top.offer(r);
    }
  }
  return top;
}

void NmfBatchEngine::load(const sm::SocialGraph& g) { graph_ = g; }

std::string NmfBatchEngine::evaluate() const {
  return (query_ == harness::Query::kQ1 ? q1_full_scan(graph_)
                                        : q2_full_scan(graph_))
      .answer();
}

std::string NmfBatchEngine::initial() { return evaluate(); }

std::string NmfBatchEngine::update(const sm::ChangeSet& cs) {
  sm::apply_change_set(graph_, cs);
  return evaluate();
}

}  // namespace nmf
