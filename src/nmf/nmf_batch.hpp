// C++ port of the contest's reference solution profile: "NMF Batch". The
// original is written against the .NET Modeling Framework and reevaluates
// the full query by traversing the object model on every step. This port
// keeps exactly that execution profile — an in-memory object graph
// (sm::SocialGraph), full traversal per evaluation, no caching — so the
// batch-vs-incremental and NMF-vs-GraphBLAS comparisons of Fig. 5 have a
// faithful baseline. (Substitution note: the .NET runtime constant factor is
// not reproduced; see DESIGN.md §4.)
#pragma once

#include <cstdint>
#include <vector>

#include "harness/engine.hpp"
#include "queries/top_k.hpp"

namespace nmf {

/// Pure functions over the model — shared with tests and the incremental
/// engine's initial evaluation.
std::uint64_t q1_score_of_post(const sm::SocialGraph& g, sm::DenseId post);
std::uint64_t q2_score_of_comment(const sm::SocialGraph& g,
                                  sm::DenseId comment);

/// Full-scan answers (traverse every post / comment).
queries::TopK q1_full_scan(const sm::SocialGraph& g);
queries::TopK q2_full_scan(const sm::SocialGraph& g);

class NmfBatchEngine final : public harness::Engine {
 public:
  explicit NmfBatchEngine(harness::Query q) : query_(q) {}

  [[nodiscard]] std::string name() const override { return "NMF Batch"; }
  void load(const sm::SocialGraph& g) override;
  std::string initial() override;
  std::string update(const sm::ChangeSet& cs) override;

 private:
  std::string evaluate() const;

  harness::Query query_;
  sm::SocialGraph graph_;
};

}  // namespace nmf
