#include "nmf/nmf_incremental.hpp"

#include <algorithm>

#include "nmf/nmf_batch.hpp"

namespace nmf {

using queries::Ranked;
using sm::DenseId;

void NmfIncrementalEngine::load(const sm::SocialGraph& g) {
  graph_ = g;
  // Dependency-structure construction — deliberately the expensive part of
  // NMF Incremental's load phase (the paper: "it initially builds a
  // dependency graph from the query to assist incremental change
  // propagation").
  post_scores_.assign(graph_.num_posts(), 0);
  for (DenseId p = 0; p < graph_.num_posts(); ++p) {
    post_scores_[p] = q1_score_of_post(graph_, p);
  }
  comment_scores_.assign(graph_.num_comments(), 0);
  liker_index_.assign(graph_.num_comments(), {});
  for (DenseId c = 0; c < graph_.num_comments(); ++c) {
    comment_scores_[c] = q2_score_of_comment(graph_, c);
    const auto& likers = graph_.comment(c).likers;
    liker_index_[c].insert(likers.begin(), likers.end());
  }
}

void NmfIncrementalEngine::offer_post(DenseId post) {
  top_.offer(Ranked{graph_.post(post).id, post_scores_[post],
                    graph_.post(post).timestamp});
}

void NmfIncrementalEngine::offer_comment(DenseId comment) {
  top_.offer(Ranked{graph_.comment(comment).id, comment_scores_[comment],
                    graph_.comment(comment).timestamp});
}

std::string NmfIncrementalEngine::initial() {
  top_ = queries::TopK(3);
  if (query_ == harness::Query::kQ1) {
    for (DenseId p = 0; p < graph_.num_posts(); ++p) {
      offer_post(p);
    }
  } else {
    for (DenseId c = 0; c < graph_.num_comments(); ++c) {
      offer_comment(c);
    }
  }
  return top_.answer();
}

std::string NmfIncrementalEngine::update(const sm::ChangeSet& cs) {
  std::vector<DenseId> touched_posts;
  // Q2: invalidated comments, re-evaluated once at the end of the batch.
  std::vector<DenseId> invalidated;
  // Removals make scores non-monotone; the merge-only top-k maintenance is
  // then unsound and we re-rank from the (cheap, cached) score tables.
  bool non_monotone = false;

  for (const sm::ChangeOp& op : cs.ops) {
    std::visit(
        [&](const auto& o) {
          using T = std::decay_t<decltype(o)>;
          if constexpr (std::is_same_v<T, sm::AddUser>) {
            graph_.add_user(o.id);
          } else if constexpr (std::is_same_v<T, sm::AddPost>) {
            graph_.add_post(o.id, o.timestamp);
            post_scores_.push_back(0);
            touched_posts.push_back(
                static_cast<DenseId>(graph_.num_posts() - 1));
          } else if constexpr (std::is_same_v<T, sm::AddComment>) {
            const DenseId c = graph_.add_comment(
                o.id, o.timestamp, o.parent_is_comment, o.parent);
            comment_scores_.push_back(0);
            liker_index_.emplace_back();
            const DenseId root = graph_.comment(c).root_post;
            post_scores_[root] += 10;  // Q1 propagation: +10 per comment
            touched_posts.push_back(root);
            invalidated.push_back(c);
          } else if constexpr (std::is_same_v<T, sm::AddLikes>) {
            if (graph_.add_likes(o.user, o.comment)) {
              const DenseId c = graph_.require_comment(o.comment);
              const DenseId u = graph_.require_user(o.user);
              const DenseId root = graph_.comment(c).root_post;
              post_scores_[root] += 1;  // Q1 propagation: +1 per like
              touched_posts.push_back(root);
              liker_index_[c].insert(u);
              invalidated.push_back(c);
            }
          } else if constexpr (std::is_same_v<T, sm::RemoveLikes>) {
            if (graph_.remove_likes(o.user, o.comment)) {
              const DenseId c = graph_.require_comment(o.comment);
              const DenseId u = graph_.require_user(o.user);
              const DenseId root = graph_.comment(c).root_post;
              post_scores_[root] -= 1;
              touched_posts.push_back(root);
              liker_index_[c].erase(u);
              invalidated.push_back(c);
              non_monotone = true;
            }
          } else if constexpr (std::is_same_v<T, sm::RemoveFriendship>) {
            const DenseId a = graph_.require_user(o.a);
            const DenseId b = graph_.require_user(o.b);
            if (graph_.remove_friendship(o.a, o.b)) {
              // Dependency edge, same as insertion: co-liked comments may
              // split components.
              const auto& la = graph_.user(a).liked_comments;
              const auto& lb = graph_.user(b).liked_comments;
              const auto& smaller = la.size() <= lb.size() ? la : lb;
              const DenseId other = la.size() <= lb.size() ? b : a;
              for (const DenseId c : smaller) {
                if (liker_index_[c].count(other)) {
                  invalidated.push_back(c);
                }
              }
              non_monotone = true;
            }
          } else {
            static_assert(std::is_same_v<T, sm::AddFriendship>);
            if (graph_.add_friendship(o.a, o.b)) {
              const DenseId a = graph_.require_user(o.a);
              const DenseId b = graph_.require_user(o.b);
              // Dependency edge: comments whose fan set contains both
              // endpoints are invalidated (their components may merge).
              const auto& la = graph_.user(a).liked_comments;
              const auto& lb = graph_.user(b).liked_comments;
              const auto& smaller = la.size() <= lb.size() ? la : lb;
              const DenseId other = la.size() <= lb.size() ? b : a;
              for (const DenseId c : smaller) {
                if (liker_index_[c].count(other)) {
                  invalidated.push_back(c);
                }
              }
            }
          }
        },
        op);
  }

  if (query_ == harness::Query::kQ1) {
    std::sort(touched_posts.begin(), touched_posts.end());
    touched_posts.erase(
        std::unique(touched_posts.begin(), touched_posts.end()),
        touched_posts.end());
    if (non_monotone) {
      return initial();  // re-rank from the maintained score cache
    }
    for (const DenseId p : touched_posts) {
      offer_post(p);
    }
  } else {
    std::sort(invalidated.begin(), invalidated.end());
    invalidated.erase(std::unique(invalidated.begin(), invalidated.end()),
                      invalidated.end());
    // Re-evaluate invalidated results (NMF recomputes the affected
    // subexpressions; it does not maintain components incrementally).
    for (const DenseId c : invalidated) {
      comment_scores_[c] = q2_score_of_comment(graph_, c);
    }
    if (non_monotone) {
      return initial();
    }
    for (const DenseId c : invalidated) {
      offer_comment(c);
    }
  }
  return top_.answer();
}

}  // namespace nmf
