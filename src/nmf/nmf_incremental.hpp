// "NMF Incremental": C++ port of the reference solution's incremental
// variant. NMF builds a dependency graph from the query during load so that
// model changes invalidate exactly the affected query results, which are
// then recomputed. This port reproduces that execution profile:
//   load    — materialise the dependency structures (per-post counters,
//             per-comment score caches and liker indexes): the expensive
//             "build the dependency graph" phase the paper identifies as
//             the slowest initial evaluation;
//   update  — propagate increments for Q1 (counter maintenance) and
//             invalidate-and-recompute affected comments for Q2 (NMF's
//             incremental engine re-evaluates invalidated subexpressions,
//             it does not maintain connected components incrementally —
//             that is precisely the paper's future-work item (2), which the
//             GrbIncrementalCcEngine implements instead).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "harness/engine.hpp"
#include "queries/top_k.hpp"

namespace nmf {

class NmfIncrementalEngine final : public harness::Engine {
 public:
  explicit NmfIncrementalEngine(harness::Query q) : query_(q) {}

  [[nodiscard]] std::string name() const override {
    return "NMF Incremental";
  }
  void load(const sm::SocialGraph& g) override;
  std::string initial() override;
  std::string update(const sm::ChangeSet& cs) override;

 private:
  void offer_post(sm::DenseId post);
  void offer_comment(sm::DenseId comment);

  harness::Query query_;
  sm::SocialGraph graph_;
  /// Q1 dependency structure: cached score per post, adjusted in place.
  std::vector<std::uint64_t> post_scores_;
  /// Q2 dependency structures: cached score per comment plus a hash index
  /// of each comment's likers (the "which results does this change touch"
  /// edge of the dependency graph).
  std::vector<std::uint64_t> comment_scores_;
  std::vector<std::unordered_set<sm::DenseId>> liker_index_;
  queries::TopK top_{3};
};

}  // namespace nmf
