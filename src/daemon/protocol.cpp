#include "daemon/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <type_traits>
#include <variant>

namespace grbd {
namespace {

// Change-op tags on the wire, 1:1 with the ChangeOp variant alternatives.
constexpr std::uint8_t kOpAddUser = 1;
constexpr std::uint8_t kOpAddPost = 2;
constexpr std::uint8_t kOpAddComment = 3;
constexpr std::uint8_t kOpAddLikes = 4;
constexpr std::uint8_t kOpAddFriendship = 5;
constexpr std::uint8_t kOpRemoveLikes = 6;
constexpr std::uint8_t kOpRemoveFriendship = 7;

std::uint64_t ts_bits(sm::Timestamp ts) {
  return static_cast<std::uint64_t>(ts);
}
sm::Timestamp bits_ts(std::uint64_t bits) {
  return static_cast<sm::Timestamp>(bits);
}

}  // namespace

// --- Payload codec --------------------------------------------------------

void PayloadWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PayloadWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PayloadWriter::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

std::uint8_t PayloadReader::u8() {
  if (remaining() < 1) throw ProtocolError("payload truncated reading u8");
  return data_[pos_++];
}

std::uint32_t PayloadReader::u32() {
  if (remaining() < 4) throw ProtocolError("payload truncated reading u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t PayloadReader::u64() {
  if (remaining() < 8) throw ProtocolError("payload truncated reading u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::string PayloadReader::rest() {
  std::string s(reinterpret_cast<const char*>(data_ + pos_), remaining());
  pos_ = size_;
  return s;
}

void PayloadReader::expect_done() const {
  if (pos_ != size_) {
    throw ProtocolError("trailing bytes after payload (" +
                        std::to_string(size_ - pos_) + " unread)");
  }
}

std::vector<std::uint8_t> encode_change_set(const sm::ChangeSet& cs) {
  PayloadWriter out;
  out.u32(static_cast<std::uint32_t>(cs.ops.size()));
  for (const sm::ChangeOp& op : cs.ops) {
    std::visit(
        [&out](const auto& o) {
          using T = std::decay_t<decltype(o)>;
          if constexpr (std::is_same_v<T, sm::AddUser>) {
            out.u8(kOpAddUser);
            out.u64(o.id);
          } else if constexpr (std::is_same_v<T, sm::AddPost>) {
            out.u8(kOpAddPost);
            out.u64(o.id);
            out.u64(ts_bits(o.timestamp));
            out.u64(o.submitter);
          } else if constexpr (std::is_same_v<T, sm::AddComment>) {
            out.u8(kOpAddComment);
            out.u64(o.id);
            out.u64(ts_bits(o.timestamp));
            out.u8(o.parent_is_comment ? 1 : 0);
            out.u64(o.parent);
            out.u64(o.submitter);
          } else if constexpr (std::is_same_v<T, sm::AddLikes>) {
            out.u8(kOpAddLikes);
            out.u64(o.user);
            out.u64(o.comment);
          } else if constexpr (std::is_same_v<T, sm::AddFriendship>) {
            out.u8(kOpAddFriendship);
            out.u64(o.a);
            out.u64(o.b);
          } else if constexpr (std::is_same_v<T, sm::RemoveLikes>) {
            out.u8(kOpRemoveLikes);
            out.u64(o.user);
            out.u64(o.comment);
          } else {
            static_assert(std::is_same_v<T, sm::RemoveFriendship>);
            out.u8(kOpRemoveFriendship);
            out.u64(o.a);
            out.u64(o.b);
          }
        },
        op);
  }
  return out.take();
}

sm::ChangeSet decode_change_set(PayloadReader& in) {
  const std::uint32_t count = in.u32();
  // The smallest op on the wire is 9 bytes (tag + one u64). A declared
  // count the payload cannot possibly hold is refused here, *before* the
  // reserve below — a hostile count=0xFFFFFFFF in a 9-byte frame must not
  // become a multi-GB allocation attempt.
  constexpr std::size_t kMinOpBytes = 9;
  if (count > in.remaining() / kMinOpBytes) {
    throw ProtocolError("change-set op count " + std::to_string(count) +
                        " exceeds what the " + std::to_string(in.remaining()) +
                        " payload bytes can hold");
  }
  sm::ChangeSet cs;
  cs.ops.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t tag = in.u8();
    switch (tag) {
      case kOpAddUser: {
        sm::AddUser o;
        o.id = in.u64();
        cs.ops.emplace_back(o);
        break;
      }
      case kOpAddPost: {
        sm::AddPost o;
        o.id = in.u64();
        o.timestamp = bits_ts(in.u64());
        o.submitter = in.u64();
        cs.ops.emplace_back(o);
        break;
      }
      case kOpAddComment: {
        sm::AddComment o;
        o.id = in.u64();
        o.timestamp = bits_ts(in.u64());
        o.parent_is_comment = in.u8() != 0;
        o.parent = in.u64();
        o.submitter = in.u64();
        cs.ops.emplace_back(o);
        break;
      }
      case kOpAddLikes: {
        sm::AddLikes o;
        o.user = in.u64();
        o.comment = in.u64();
        cs.ops.emplace_back(o);
        break;
      }
      case kOpAddFriendship: {
        sm::AddFriendship o;
        o.a = in.u64();
        o.b = in.u64();
        cs.ops.emplace_back(o);
        break;
      }
      case kOpRemoveLikes: {
        sm::RemoveLikes o;
        o.user = in.u64();
        o.comment = in.u64();
        cs.ops.emplace_back(o);
        break;
      }
      case kOpRemoveFriendship: {
        sm::RemoveFriendship o;
        o.a = in.u64();
        o.b = in.u64();
        cs.ops.emplace_back(o);
        break;
      }
      default:
        throw ProtocolError("unknown change-op tag " + std::to_string(tag));
    }
  }
  return cs;
}

// --- Framed stream I/O ----------------------------------------------------

bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF at a boundary
      throw ProtocolError("peer disconnected mid-frame (" +
                          std::to_string(got) + "/" + std::to_string(n) +
                          " bytes)");
    }
    if (errno == EINTR) continue;
    throw ProtocolError(std::string("read failed: ") + std::strerror(errno));
  }
  return true;
}

std::optional<Frame> read_frame(int fd, std::size_t max_frame) {
  std::uint8_t header[4];
  if (!read_exact(fd, header, sizeof header)) return std::nullopt;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  }
  if (length < 1) throw ProtocolError("frame length 0 (missing type byte)");
  if (length > max_frame) {
    throw ProtocolError("frame of " + std::to_string(length) +
                        " bytes exceeds the " + std::to_string(max_frame) +
                        "-byte limit");
  }
  std::uint8_t type = 0;
  // EOF below here is a truncated frame, never a clean close.
  if (!read_exact(fd, &type, 1)) {
    throw ProtocolError("peer disconnected mid-frame (0/1 type bytes)");
  }
  Frame f;
  f.type = static_cast<MsgType>(type);
  f.payload.resize(length - 1);
  if (!f.payload.empty() &&
      !read_exact(fd, f.payload.data(), f.payload.size())) {
    throw ProtocolError("peer disconnected mid-frame (payload)");
  }
  return f;
}

namespace {

/// send(MSG_NOSIGNAL) so a vanished peer is EPIPE, not SIGPIPE; pipes and
/// regular fds reject send() with ENOTSOCK, so fall back to write() there
/// (those transports ignore SIGPIPE process-wide in main()).
ssize_t write_some(int fd, const std::uint8_t* p, std::size_t n) {
  const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
  if (w >= 0 || errno != ENOTSOCK) return w;
  return ::write(fd, p, n);
}

bool write_all(int fd, const std::uint8_t* p, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = write_some(fd, p + sent, n - sent);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EPIPE || errno == ECONNRESET)) return false;
    throw ProtocolError(std::string("write failed: ") + std::strerror(errno));
  }
  return true;
}

}  // namespace

bool write_frame(int fd, MsgType type, const std::uint8_t* payload,
                 std::size_t n) {
  const std::uint32_t length = static_cast<std::uint32_t>(n) + 1;
  std::vector<std::uint8_t> wire;
  wire.reserve(4 + length);
  for (int i = 0; i < 4; ++i) {
    wire.push_back(static_cast<std::uint8_t>(length >> (8 * i)));
  }
  wire.push_back(static_cast<std::uint8_t>(type));
  if (n != 0) wire.insert(wire.end(), payload, payload + n);
  return write_all(fd, wire.data(), wire.size());
}

bool write_frame(int fd, MsgType type,
                 const std::vector<std::uint8_t>& payload) {
  return write_frame(fd, type, payload.data(), payload.size());
}

bool write_error(int fd, ErrorCode code, const std::string& message) {
  PayloadWriter out;
  out.u32(static_cast<std::uint32_t>(code));
  out.str(message);
  return write_frame(fd, MsgType::kError, out.data());
}

}  // namespace grbd
