// The grb_daemon service core: one long-running Server wraps a pair of
// pipelined engines (Q1 + Q2, same shard layout) behind the wire protocol
// of protocol.hpp.
//
// Threading model — exactly one writer, any number of readers:
//
//   * Connection threads never touch the engines. A kApply enqueues the
//     decoded change set (mutex+cv queue) and immediately learns its epoch
//     number; a kQuery pins a snapshot in the EpochStore with one atomic
//     load and serves from it. Readers therefore never block the apply
//     path, and the apply path never blocks readers.
//   * The single writer thread drains the queue into the engines'
//     streaming API with a window-filling policy: while the ingest queue
//     has work and the pipeline window is open, submit() — keeping up to
//     `depth` change sets in flight across the shard workers; when the
//     window is full or the queue idles, merge_one() the oldest epoch from
//     both engines and publish its Snapshot. Under load the window stays
//     full (maximum overlap); under trickle load every change set still
//     publishes promptly.
//
// Epoch numbering: snapshot 0 is the initial evaluation; change set k
// (1-based, in enqueue order) publishes snapshot k. Because the writer is
// the merge thread and the merge replays the serial schedule, every
// published answer is byte-identical to the serial oracle at that epoch.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "daemon/epoch_store.hpp"
#include "daemon/protocol.hpp"
#include "model/social_graph.hpp"
#include "shard/pipelined_engine.hpp"

namespace grbd {

struct ServerConfig {
  std::size_t shards = 4;
  std::size_t depth = 4;
  /// Snapshots kept for epoch-pinned readers.
  std::size_t retain = 64;
  std::size_t max_frame = kDefaultMaxFrame;
  /// How long a kQuery pinned to a future epoch may wait for it.
  std::chrono::milliseconds query_wait{5000};
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Loads both engines, publishes snapshot 0 (the initial evaluation) and
  /// starts the writer thread. Must be called exactly once, before any
  /// connection is served.
  void load(const sm::SocialGraph& g);

  /// Queues one change set for ingestion. Returns its (1-based) epoch
  /// number — the snapshot it will publish — or 0 when the server is
  /// shutting down and refuses new writes. Thread-safe.
  std::uint64_t enqueue(sm::ChangeSet cs);

  /// Serves one client on an fd pair (equal for sockets, distinct for
  /// stdio/pipe transports) until EOF, a fatal framing error, a vanished
  /// peer or a kShutdown. Runs on the caller's thread; any number may run
  /// concurrently.
  void serve_connection(int in_fd, int out_fd);

  /// Binds a Unix-domain socket at `path` (replacing a stale file) and
  /// accepts connections — one thread each — until request_shutdown().
  /// Returns 0, or -1 with errno set when the socket cannot be set up.
  int serve_unix(const std::string& path);

  /// Stops accepting, unblocks every live connection, and tells the writer
  /// to drain the queue and exit. Thread-safe, idempotent.
  void request_shutdown();

  /// Blocks until everything enqueued so far has been published (tests and
  /// orderly shutdown use this).
  void drain();

  [[nodiscard]] const EpochStore& store() const noexcept { return store_; }
  [[nodiscard]] const ServerConfig& config() const noexcept { return cfg_; }

  struct Stats {
    std::uint64_t latest_epoch = 0;
    std::uint64_t applied = 0;    ///< change sets merged + published
    std::uint64_t queries = 0;    ///< answers served
    std::uint64_t retained = 0;   ///< snapshots currently in the window
    std::uint64_t in_flight = 0;  ///< enqueued but not yet published
  };
  [[nodiscard]] Stats stats() const;

 private:
  void writer_loop();
  void writer_loop_body();
  void merge_and_publish();
  /// Handles one request frame; false = stop serving this connection.
  bool handle_frame(const Frame& f, int out_fd);
  /// Last epoch handed out by enqueue (0 before the first write).
  [[nodiscard]] std::uint64_t last_assigned() const;

  ServerConfig cfg_;
  std::unique_ptr<shard::GrbPipelinedEngine> q1_;
  std::unique_ptr<shard::GrbPipelinedEngine> q2_;
  EpochStore store_;

  // Ingest queue: connection threads push, the writer pops.
  mutable std::mutex ingest_mu_;
  std::condition_variable ingest_cv_;
  std::deque<sm::ChangeSet> queue_;
  std::uint64_t next_epoch_ = 1;  // snapshot 0 is the initial evaluation
  /// Written under ingest_mu_ (so the writer's cv predicate is race-free);
  /// atomic so serve_unix can also read it under conns_mu_ alone.
  std::atomic<bool> stop_{false};

  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> applied_{0};

  // Unix-socket transport bookkeeping.
  std::mutex conns_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> live_fds_;
  int listen_fd_ = -1;

  std::thread writer_;
};

}  // namespace grbd
