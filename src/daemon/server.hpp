// The grb_daemon service core: one long-running Server wraps a pair of
// pipelined engines (Q1 + Q2, same shard layout) behind the wire protocol
// of protocol.hpp.
//
// Threading model — exactly one writer, any number of readers:
//
//   * Connection threads never touch the engines. A kApply enqueues the
//     decoded change set (mutex+cv queue) and immediately learns its epoch
//     number; a kQuery pins a snapshot in the EpochStore with a single
//     atomic<shared_ptr> load (lock-light — see epoch_store.hpp) and
//     serves from it. Readers therefore never wait on the apply path, and
//     the apply path never waits on readers.
//   * The single writer thread drains the queue into the engines'
//     streaming API with a window-filling policy: while the ingest queue
//     has work and the pipeline window is open, submit() — keeping up to
//     `depth` change sets in flight across the shard workers; when the
//     window is full or the queue idles, merge_one() the oldest epoch from
//     both engines and publish its Snapshot. Under load the window stays
//     full (maximum overlap); under trickle load every change set still
//     publishes promptly.
//
// Epoch numbering: snapshot 0 is the initial evaluation; change set k
// (1-based, in enqueue order) publishes snapshot k. Because the writer is
// the merge thread and the merge replays the serial schedule, every
// published answer is byte-identical to the serial oracle at that epoch.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "daemon/epoch_store.hpp"
#include "daemon/protocol.hpp"
#include "model/social_graph.hpp"
#include "shard/pipelined_engine.hpp"

namespace grbd {

struct ServerConfig {
  std::size_t shards = 4;
  std::size_t depth = 4;
  /// Snapshots kept for epoch-pinned readers.
  std::size_t retain = 64;
  std::size_t max_frame = kDefaultMaxFrame;
  /// How long a kQuery pinned to a future epoch may wait for it.
  std::chrono::milliseconds query_wait{5000};
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Loads both engines, publishes snapshot 0 (the initial evaluation) and
  /// starts the writer thread. Must be called exactly once, before any
  /// connection is served.
  void load(const sm::SocialGraph& g);

  /// Queues one change set for ingestion. Returns its (1-based) epoch
  /// number — the snapshot it will publish — or 0 when the server is
  /// shutting down and refuses new writes. Thread-safe.
  std::uint64_t enqueue(sm::ChangeSet cs);

  /// Serves one client on an fd pair (equal for sockets, distinct for
  /// stdio/pipe transports) until EOF, a fatal framing error, a vanished
  /// peer or a kShutdown. Runs on the caller's thread; any number may run
  /// concurrently.
  void serve_connection(int in_fd, int out_fd);

  /// Binds a Unix-domain socket at `path` (replacing a stale file) and
  /// accepts connections — one thread each — until request_shutdown().
  /// Returns 0, or -1 with errno set when the socket cannot be set up.
  int serve_unix(const std::string& path);

  /// Stops accepting, unblocks every live connection, and tells the writer
  /// to drain the queue and exit. Thread-safe, idempotent.
  void request_shutdown();

  /// The write-refusal half of request_shutdown() alone: enqueue() returns
  /// 0 from here on and the writer drains + exits, but live connections
  /// keep their sockets (kShutdown acks through its own fd after this).
  void stop_writes();

  /// Blocks until everything enqueued so far has been published (tests and
  /// orderly shutdown use this).
  void drain();

  [[nodiscard]] const EpochStore& store() const noexcept { return store_; }
  [[nodiscard]] const ServerConfig& config() const noexcept { return cfg_; }

  struct Stats {
    std::uint64_t latest_epoch = 0;
    std::uint64_t applied = 0;    ///< change sets merged + published
    std::uint64_t queries = 0;    ///< answers served
    std::uint64_t retained = 0;   ///< snapshots currently in the window
    std::uint64_t in_flight = 0;  ///< enqueued but not yet published
    /// Process-global top-k pruning counters (queries::prune_counters):
    /// written by the writer thread's engines as telemetry-registry batches
    /// and read back as one coherent registry snapshot, so the family's
    /// invariant (scanned + skipped == total) holds on every response —
    /// connection threads never touch engine state.
    std::uint64_t prune_blocks_total = 0;
    std::uint64_t prune_blocks_scanned = 0;
    std::uint64_t prune_blocks_skipped = 0;
    std::uint64_t prune_pool_hits = 0;
    std::uint64_t prune_pool_rebuilds = 0;
    std::uint64_t prune_bound_rebuilds = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  void writer_loop();
  void writer_loop_body();
  void merge_and_publish();
  /// Handles one request frame; false = stop serving this connection.
  bool handle_frame(const Frame& f, int out_fd);
  /// Last epoch handed out by enqueue (0 before the first write).
  [[nodiscard]] std::uint64_t last_assigned() const;
  /// Joins connection threads that have signalled completion — accept-loop
  /// housekeeping, so a long-lived daemon does not accumulate one dead
  /// std::thread per connection ever served.
  void reap_finished_connections();
  /// Joins every remaining connection thread (shutdown paths only).
  void join_all_connections();

  ServerConfig cfg_;
  std::unique_ptr<shard::GrbPipelinedEngine> q1_;
  std::unique_ptr<shard::GrbPipelinedEngine> q2_;
  EpochStore store_;

  // Ingest queue: connection threads push, the writer pops.
  mutable std::mutex ingest_mu_;
  std::condition_variable ingest_cv_;
  std::deque<sm::ChangeSet> queue_;
  std::uint64_t next_epoch_ = 1;  // snapshot 0 is the initial evaluation
  /// Written under ingest_mu_ (so the writer's cv predicate is race-free);
  /// atomic so serve_unix can also read it under conns_mu_ alone.
  std::atomic<bool> stop_{false};

  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> applied_{0};
  /// Set (before request_shutdown) when the writer thread died in its catch
  /// block; drain() polls it so it cannot wait forever on epochs the dead
  /// writer will never publish.
  std::atomic<bool> writer_failed_{false};

  // Unix-socket transport bookkeeping. Connection threads are keyed by a
  // monotonic id; a thread pushes its id to finished_conn_ids_ on exit and
  // the accept loop joins + erases it, so the map tracks live connections
  // rather than growing for the life of the daemon.
  std::mutex conns_mu_;
  std::unordered_map<std::uint64_t, std::thread> conn_threads_;
  std::vector<std::uint64_t> finished_conn_ids_;
  std::uint64_t next_conn_id_ = 0;
  std::vector<int> live_fds_;
  int listen_fd_ = -1;

  /// Telemetry provider id for the "daemon.*" snapshot entries (registered
  /// in the constructor, removed first thing in the destructor).
  std::uint64_t telemetry_provider_ = 0;

  std::thread writer_;
};

}  // namespace grbd
