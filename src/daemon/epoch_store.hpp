// EpochStore: the daemon's reader/writer hand-off. The single writer thread
// publishes one immutable Snapshot per epoch (both query answers, already
// rendered); N reader threads pin a snapshot with a single
// atomic<shared_ptr> load and serve answers from it without ever waiting
// out a merge on the apply path.
//
// RCU shape: the store holds `std::atomic<std::shared_ptr<const Table>>`
// where a Table is an immutable window of the last `retain` snapshots.
// publish() builds a fresh Table (copy of the shared_ptr window + the new
// snapshot) and swaps the root pointer; readers that loaded the old root
// keep a consistent view alive for as long as they hold it — eviction only
// drops the *store's* reference, never a pinned reader's.
//
// Progress guarantees, honestly: libstdc++ and libc++ implement
// std::atomic<std::shared_ptr> with a small spinlock/mutex pool, so a pin
// is lock-*light*, not lock-free or wait-free — a reader can briefly
// contend with publish() on that pool lock. What the design does guarantee
// is that readers never wait for a merge to finish and never hold anything
// while serving an answer; the critical sections are a pointer copy plus a
// refcount bump. (Hazard pointers or an epoch-indexed ring of raw atomics
// would buy true lock-freedom if that contention ever shows up.) The
// store's own mutex+condvar pair exists solely for wait_published (readers
// that pinned a future epoch and chose to wait for it).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace grbd {

/// One published epoch: both answers, immutable once constructed.
struct Snapshot {
  std::uint64_t epoch = 0;
  std::string q1;
  std::string q2;
};
using SnapshotPtr = std::shared_ptr<const Snapshot>;

class EpochStore {
 public:
  /// Retains the newest `retain` epochs (>= 1) for pinned readers.
  explicit EpochStore(std::size_t retain);

  /// Writer side: publishes `snap` as the newest epoch and wakes waiters.
  /// Epochs must be published in strictly increasing order (the writer is
  /// single-threaded; this is checked).
  void publish(Snapshot snap);

  /// Reader side — each is a single atomic<shared_ptr> load (lock-light,
  /// not wait-free: see the progress-guarantees note above); none ever
  /// waits on the writer.
  /// Newest snapshot, or nullptr before the first publish.
  [[nodiscard]] SnapshotPtr latest() const;
  /// The snapshot pinned at `epoch`: nullptr when `epoch` is not (or no
  /// longer / not yet) in the window; `evicted` tells the two cases apart.
  [[nodiscard]] SnapshotPtr at(std::uint64_t epoch) const;
  [[nodiscard]] bool evicted(std::uint64_t epoch) const;
  /// Newest published epoch; UINT64_MAX-free: returns false before the
  /// first publish.
  [[nodiscard]] bool latest_epoch(std::uint64_t& epoch) const;

  /// Blocks until `epoch` publishes (returns its snapshot), it is evicted
  /// or the deadline passes (returns nullptr). Readers use this to pin
  /// "the epoch my write just created" before the writer merged it.
  [[nodiscard]] SnapshotPtr wait_published(std::uint64_t epoch,
                                           std::chrono::milliseconds timeout);

  [[nodiscard]] std::size_t retain() const noexcept { return retain_; }
  /// Snapshots currently in the window.
  [[nodiscard]] std::size_t size() const;

 private:
  /// Immutable window of consecutive snapshots, newest last.
  struct Table {
    std::vector<SnapshotPtr> window;
  };
  using TablePtr = std::shared_ptr<const Table>;

  std::size_t retain_;
  std::atomic<std::shared_ptr<const Table>> root_;
  /// wait_published only — the read path never touches these.
  mutable std::mutex wait_mu_;
  std::condition_variable wait_cv_;
};

}  // namespace grbd
