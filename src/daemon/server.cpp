#include "daemon/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "harness/engine.hpp"
#include "queries/top_k.hpp"
#include "support/telemetry/metrics.hpp"
#include "support/telemetry/trace.hpp"

namespace grbd {

using shard::GrbPipelinedEngine;

namespace telemetry = grbsm::telemetry;

namespace {

void append_value(
    std::vector<std::pair<std::string, telemetry::MetricValue>>& out,
    std::string name, telemetry::MetricKind kind, std::uint64_t v) {
  telemetry::MetricValue m;
  m.kind = kind;
  m.value = v;
  out.emplace_back(std::move(name), m);
}

}  // namespace

Server::Server(ServerConfig cfg)
    : cfg_(cfg),
      q1_(std::make_unique<GrbPipelinedEngine>(
          harness::Query::kQ1, GrbPipelinedEngine::Mode::kIncremental,
          cfg.shards, cfg.depth)),
      q2_(std::make_unique<GrbPipelinedEngine>(
          harness::Query::kQ2, GrbPipelinedEngine::Mode::kIncremental,
          cfg.shards, cfg.depth)),
      store_(cfg.retain) {
  // Surface the service-level numbers in every registry snapshot (and thus
  // every kMetrics frame) under "daemon.*" — the provider reads the same
  // thread-safe accessors stats() uses.
  telemetry_provider_ = telemetry::Registry::instance().add_provider(
      [this](std::vector<std::pair<std::string, telemetry::MetricValue>>&
                 out) {
        std::uint64_t latest = 0;
        (void)store_.latest_epoch(latest);
        const std::uint64_t assigned = last_assigned();
        append_value(out, "daemon.latest_epoch",
                     telemetry::MetricKind::kGauge, latest);
        append_value(out, "daemon.applied", telemetry::MetricKind::kCounter,
                     applied_.load(std::memory_order_relaxed));
        append_value(out, "daemon.queries", telemetry::MetricKind::kCounter,
                     queries_.load(std::memory_order_relaxed));
        append_value(out, "daemon.retained", telemetry::MetricKind::kGauge,
                     store_.size());
        append_value(out, "daemon.in_flight", telemetry::MetricKind::kGauge,
                     assigned > latest ? assigned - latest : 0);
      });
}

Server::~Server() {
  // Deregister first: remove_provider blocks until any in-flight snapshot
  // finished calling the lambda, which reads members destroyed below.
  telemetry::Registry::instance().remove_provider(telemetry_provider_);
  request_shutdown();
  if (writer_.joinable()) writer_.join();
  join_all_connections();
}

void Server::join_all_connections() {
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.reserve(conn_threads_.size());
    for (auto& [id, t] : conn_threads_) conns.push_back(std::move(t));
    conn_threads_.clear();
    finished_conn_ids_.clear();
  }
  for (std::thread& t : conns) t.join();
}

void Server::reap_finished_connections() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const std::uint64_t id : finished_conn_ids_) {
      const auto it = conn_threads_.find(id);
      if (it == conn_threads_.end()) continue;  // already joined in bulk
      done.push_back(std::move(it->second));
      conn_threads_.erase(it);
    }
    finished_conn_ids_.clear();
  }
  // Join outside the lock: a finishing thread may still be between its
  // finished_conn_ids_ push and its last instruction.
  for (std::thread& t : done) t.join();
}

void Server::load(const sm::SocialGraph& g) {
  q1_->load(g);
  q2_->load(g);
  Snapshot s0;
  s0.epoch = 0;
  s0.q1 = q1_->initial();
  s0.q2 = q2_->initial();
  store_.publish(std::move(s0));
  writer_ = std::thread(&Server::writer_loop, this);
}

std::uint64_t Server::enqueue(sm::ChangeSet cs) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  if (stop_.load(std::memory_order_relaxed)) return 0;
  queue_.push_back(std::move(cs));
  const std::uint64_t epoch = next_epoch_++;
  ingest_cv_.notify_one();
  return epoch;
}

std::uint64_t Server::last_assigned() const {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  return next_epoch_ - 1;
}

void Server::writer_loop() {
  try {
    writer_loop_body();
  } catch (const std::exception& e) {
    // An engine failure (e.g. a semantically invalid change set poisoning
    // the pipeline) must not std::terminate the daemon; stop ingesting and
    // let pinned readers drain what was published.
    std::fprintf(stderr, "grb_daemon: writer failed: %s\n", e.what());
    writer_failed_.store(true, std::memory_order_release);
    request_shutdown();
  }
}

void Server::writer_loop_body() {
  // Single consumer; the engines are touched by this thread only.
  for (;;) {
    sm::ChangeSet cs;
    bool have_cs = false;
    {
      std::unique_lock<std::mutex> lock(ingest_mu_);
      if (q1_->in_flight() == 0) {
        // Nothing to merge — sleep until there is work or we are told to
        // stop. (in_flight() reads this thread's own counters; safe.)
        ingest_cv_.wait(lock, [this] {
          return stop_.load(std::memory_order_relaxed) || !queue_.empty();
        });
        if (queue_.empty()) return;  // stop_ with a drained queue
      }
      if (!queue_.empty() && q1_->in_flight() < cfg_.depth) {
        cs = std::move(queue_.front());
        queue_.pop_front();
        have_cs = true;
      }
    }
    if (have_cs) {
      // Window open: keep it full before spending time merging.
      q1_->submit(cs);
      q2_->submit(cs);
      continue;
    }
    // Window full, or the queue idled with epochs still in flight.
    merge_and_publish();
  }
}

void Server::merge_and_publish() {
  GrbPipelinedEngine::Merged m1 = q1_->merge_one();
  GrbPipelinedEngine::Merged m2 = q2_->merge_one();
  Snapshot snap;
  snap.epoch = m1.epoch + 1;  // engine epochs are 0-based, snapshot 0 = load
  snap.q1 = std::move(m1.answer);
  snap.q2 = std::move(m2.answer);
  // Count before publishing: the release store inside publish() makes the
  // counter visible to any reader that can already see the snapshot.
  applied_.fetch_add(1, std::memory_order_relaxed);
  store_.publish(std::move(snap));
}

void Server::drain() {
  const std::uint64_t target = last_assigned();
  if (target == 0) return;
  // Generous: drain is only bounded by merge throughput, not clients.
  while (!store_.wait_published(target, std::chrono::milliseconds(500))) {
    std::uint64_t latest = 0;
    (void)store_.latest_epoch(latest);
    if (latest >= target) break;
    // A crashed writer publishes nothing more: epochs it assigned but never
    // merged will neither publish nor evict, so waiting on them would spin
    // forever. (Checked after the wait so a writer that failed *after*
    // publishing `target` still exits through the success path.)
    if (writer_failed_.load(std::memory_order_acquire)) break;
  }
}

void Server::stop_writes() {
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  ingest_cv_.notify_all();
}

void Server::request_shutdown() {
  stop_writes();
  // Idempotent without an early-out: listen_fd_ goes -1 after the close,
  // and a second SHUT_RDWR on a live fd is harmless.
  std::lock_guard<std::mutex> lock(conns_mu_);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
}

Server::Stats Server::stats() const {
  Stats s;
  (void)store_.latest_epoch(s.latest_epoch);
  s.applied = applied_.load(std::memory_order_relaxed);
  s.queries = queries_.load(std::memory_order_relaxed);
  s.retained = store_.size();
  const std::uint64_t assigned = last_assigned();
  s.in_flight = assigned > s.latest_epoch ? assigned - s.latest_epoch : 0;
  // One coherent registry snapshot for the whole prune family: the writer
  // thread folds its per-epoch deltas as a registry batch, and the seqlock
  // inside snapshot() waits any half-applied batch out — so a kStats frame
  // can never carry scanned + skipped != total, no matter how the poll
  // races the write stream.
  const queries::PruneStats p = queries::prune_counters();
  s.prune_blocks_total = p.blocks_total;
  s.prune_blocks_scanned = p.blocks_scanned;
  s.prune_blocks_skipped = p.blocks_skipped;
  s.prune_pool_hits = p.pool_hits;
  s.prune_pool_rebuilds = p.pool_rebuilds;
  s.prune_bound_rebuilds = p.bound_rebuilds;
  return s;
}

bool Server::handle_frame(const Frame& f, int out_fd) {
  switch (f.type) {
    case MsgType::kHello: {
      PayloadReader in(f.payload);
      in.expect_done();
      PayloadWriter out;
      std::uint64_t latest = 0;
      (void)store_.latest_epoch(latest);
      out.u64(latest);
      out.u32(static_cast<std::uint32_t>(cfg_.shards));
      out.u32(static_cast<std::uint32_t>(cfg_.depth));
      out.u32(static_cast<std::uint32_t>(cfg_.retain));
      return write_frame(out_fd, MsgType::kHelloOk, out.data());
    }
    case MsgType::kApply: {
      PayloadReader in(f.payload);
      sm::ChangeSet cs = decode_change_set(in);
      in.expect_done();
      const std::uint64_t epoch = enqueue(std::move(cs));
      if (epoch == 0) {
        return write_error(out_fd, ErrorCode::kShuttingDown,
                           "server is shutting down");
      }
      PayloadWriter out;
      out.u64(epoch);
      return write_frame(out_fd, MsgType::kApplied, out.data());
    }
    case MsgType::kQuery: {
      PayloadReader in(f.payload);
      const std::uint8_t which = in.u8();
      const std::uint64_t pin = in.u64();
      in.expect_done();
      if (which != kQueryQ1 && which != kQueryQ2) {
        throw ProtocolError("unknown query selector " +
                            std::to_string(which));
      }
      // Reader-side span: covers pin + serve, re-labelled with the pinned
      // epoch once known (error paths close it at epoch 0, which the trace
      // checker exempts).
      static telemetry::Histogram& answer_hist =
          telemetry::Registry::instance().histogram("epoch.answer_us");
      telemetry::SpanScope answer_span("answer", 0, &answer_hist);
      SnapshotPtr snap;  // the pin: one atomic<shared_ptr> load (lock-light,
                         // see epoch_store.hpp); never waits out a merge
      if (pin == kLatestEpoch) {
        snap = store_.latest();
      } else {
        snap = store_.wait_published(pin, cfg_.query_wait);
        if (!snap) {
          return write_error(
              out_fd,
              store_.evicted(pin) ? ErrorCode::kEvicted : ErrorCode::kNotReady,
              "epoch " + std::to_string(pin) +
                  (store_.evicted(pin) ? " left the retention window"
                                       : " was not published in time"));
        }
      }
      answer_span.set_epoch(snap->epoch);
      queries_.fetch_add(1, std::memory_order_relaxed);
      PayloadWriter out;
      out.u64(snap->epoch);
      out.str(which == kQueryQ1 ? snap->q1 : snap->q2);
      return write_frame(out_fd, MsgType::kAnswer, out.data());
    }
    case MsgType::kStats: {
      PayloadReader in(f.payload);
      in.expect_done();
      const Stats s = stats();
      PayloadWriter out;
      out.u64(s.latest_epoch);
      out.u64(s.applied);
      out.u64(s.queries);
      out.u64(s.retained);
      out.u64(s.in_flight);
      out.u64(s.prune_blocks_total);
      out.u64(s.prune_blocks_scanned);
      out.u64(s.prune_blocks_skipped);
      out.u64(s.prune_pool_hits);
      out.u64(s.prune_pool_rebuilds);
      out.u64(s.prune_bound_rebuilds);
      return write_frame(out_fd, MsgType::kStatsOk, out.data());
    }
    case MsgType::kMetrics: {
      PayloadReader in(f.payload);
      in.expect_done();
      // One coherent snapshot per response (same guarantee as kStats), with
      // every registered name: prune.*, arena.*, daemon.*, epoch.*_us.
      const std::vector<std::uint8_t> blob =
          telemetry::serialize(telemetry::Registry::instance().snapshot());
      PayloadWriter out;
      out.bytes(blob.data(), blob.size());
      return write_frame(out_fd, MsgType::kMetricsOk, out.data());
    }
    case MsgType::kShutdown: {
      // Refuse new writes *before* acking: a client that received kOk must
      // never see a later enqueue succeed. The fd teardown stays after the
      // ack — request_shutdown() SHUT_RDWRs this very connection, so kOk
      // could not be delivered the other way around.
      stop_writes();
      (void)write_frame(out_fd, MsgType::kOk);
      request_shutdown();
      return false;
    }
    default:
      return write_error(out_fd, ErrorCode::kBadRequest,
                         "unknown message type " +
                             std::to_string(static_cast<unsigned>(f.type)));
  }
}

void Server::serve_connection(int in_fd, int out_fd) {
  for (;;) {
    std::optional<Frame> f;
    try {
      f = read_frame(in_fd, cfg_.max_frame);
    } catch (const ProtocolError& e) {
      // Framing is lost (truncation / oversize) — tell the peer if it is
      // still there, then drop the connection. The daemon itself lives on.
      (void)write_error(out_fd, ErrorCode::kBadRequest, e.what());
      return;
    }
    if (!f) return;  // clean EOF between frames
    try {
      if (!handle_frame(*f, out_fd)) return;
    } catch (const ProtocolError& e) {
      // Bad payload inside an intact frame: recoverable, keep serving.
      if (!write_error(out_fd, ErrorCode::kBadRequest, e.what())) return;
    } catch (const std::exception& e) {
      // Last resort: no single request may take the daemon down
      // (an escaping exception here would std::terminate the process).
      // Report, then drop this connection only.
      (void)write_error(out_fd, ErrorCode::kInternal, e.what());
      return;
    }
  }
}

int Server::serve_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    errno = ENAMETOOLONG;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 64) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stop_.load(std::memory_order_relaxed)) {
      ::close(fd);  // shutdown raced ahead of the bind
      return 0;
    }
    listen_fd_ = fd;
  }
  for (;;) {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      break;  // listen fd was shut down — time to leave
    }
    reap_finished_connections();
    std::lock_guard<std::mutex> lock(conns_mu_);
    live_fds_.push_back(conn);
    const std::uint64_t id = next_conn_id_++;
    conn_threads_.emplace(id, std::thread([this, conn, id] {
      serve_connection(conn, conn);
      {
        // De-list before close so request_shutdown never touches a
        // recycled descriptor number.
        std::lock_guard<std::mutex> inner(conns_mu_);
        live_fds_.erase(std::find(live_fds_.begin(), live_fds_.end(), conn));
        finished_conn_ids_.push_back(id);
      }
      ::close(conn);
    }));
  }
  join_all_connections();
  // Publish every epoch clients were promised before the process exits.
  drain();
  return 0;
}

}  // namespace grbd
