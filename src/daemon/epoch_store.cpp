#include "daemon/epoch_store.hpp"

#include <stdexcept>
#include <utility>

#include "support/telemetry/trace.hpp"

namespace grbd {

EpochStore::EpochStore(std::size_t retain) : retain_(retain) {
  if (retain_ == 0) {
    throw std::invalid_argument("EpochStore retain must be >= 1");
  }
  root_.store(std::make_shared<const Table>(), std::memory_order_release);
}

void EpochStore::publish(Snapshot snap) {
  GRB_TRACE_SPAN("publish", snap.epoch);
  const TablePtr old = root_.load(std::memory_order_acquire);
  if (!old->window.empty() &&
      snap.epoch != old->window.back()->epoch + 1) {
    throw std::logic_error("EpochStore::publish: epochs must be dense");
  }
  auto next = std::make_shared<Table>();
  next->window.reserve(retain_);
  const std::size_t keep =
      old->window.size() < retain_ ? old->window.size() : retain_ - 1;
  next->window.assign(old->window.end() - static_cast<std::ptrdiff_t>(keep),
                      old->window.end());
  next->window.push_back(std::make_shared<const Snapshot>(std::move(snap)));
  root_.store(TablePtr(std::move(next)), std::memory_order_release);
  {
    // Empty critical section: pairs the store above with waiters' re-check
    // so no wait_published sleeper can miss the wake-up.
    std::lock_guard<std::mutex> lock(wait_mu_);
  }
  wait_cv_.notify_all();
}

SnapshotPtr EpochStore::latest() const {
  const TablePtr t = root_.load(std::memory_order_acquire);
  return t->window.empty() ? nullptr : t->window.back();
}

SnapshotPtr EpochStore::at(std::uint64_t epoch) const {
  const TablePtr t = root_.load(std::memory_order_acquire);
  if (t->window.empty()) return nullptr;
  const std::uint64_t first = t->window.front()->epoch;
  const std::uint64_t last = t->window.back()->epoch;
  if (epoch < first || epoch > last) return nullptr;
  return t->window[static_cast<std::size_t>(epoch - first)];
}

bool EpochStore::evicted(std::uint64_t epoch) const {
  const TablePtr t = root_.load(std::memory_order_acquire);
  return !t->window.empty() && epoch < t->window.front()->epoch;
}

bool EpochStore::latest_epoch(std::uint64_t& epoch) const {
  const SnapshotPtr s = latest();
  if (!s) return false;
  epoch = s->epoch;
  return true;
}

SnapshotPtr EpochStore::wait_published(std::uint64_t epoch,
                                       std::chrono::milliseconds timeout) {
  if (SnapshotPtr s = at(epoch)) return s;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(wait_mu_);
  for (;;) {
    if (SnapshotPtr s = at(epoch)) return s;
    if (evicted(epoch)) return nullptr;
    if (wait_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return at(epoch);  // one last look after the deadline
    }
  }
}

std::size_t EpochStore::size() const {
  return root_.load(std::memory_order_acquire)->window.size();
}

}  // namespace grbd
