// Wire protocol of the grb_daemon query service: a length-prefixed binary
// framing over any byte stream (a Unix-domain socket in production, a
// pipe/stdio pair in tests), plus the message codec.
//
// Frame layout (all integers little-endian):
//
//   [u32 length][u8 type][payload: length-1 bytes]
//
// `length` counts the type byte plus the payload, so a frame is at least 5
// bytes on the wire and `length >= 1` always. A declared length above the
// transport's max_frame budget is a protocol error — the reader refuses it
// *before* allocating, so a hostile 4 GiB header cannot balloon the daemon.
//
// Requests                      Responses
//   kHello                        kHelloOk   u64 latest_epoch, u32 shards,
//                                            u32 depth, u32 retain
//   kApply    change-set codec    kApplied   u64 epoch
//   kQuery    u8 query, u64 epoch kAnswer    u64 epoch, answer bytes
//   kStats                        kStatsOk   u64 latest_epoch, u64 applied,
//                                            u64 queries, u64 retained,
//                                            u64 in_flight,
//                                            u64 prune_blocks_total,
//                                            u64 prune_blocks_scanned,
//                                            u64 prune_blocks_skipped,
//                                            u64 prune_pool_hits,
//                                            u64 prune_pool_rebuilds,
//                                            u64 prune_bound_rebuilds
//   kShutdown                     kOk
//   (malformed request)           kError     u32 code, message bytes
//
// kQuery's epoch pins the snapshot the answer is served from: kLatestEpoch
// means "whatever is newest", any other value waits (bounded) for that
// epoch to publish and fails with kEvicted if it has already left the
// retention window. Epoch 0 is the initial evaluation; change set k
// publishes epoch k.
//
// Robustness contract (the daemon outlives its clients):
//   * short reads/writes are looped over; EINTR is retried;
//   * EOF cleanly between frames ends the connection, EOF *inside* a frame
//     is a ProtocolError (mid-request disconnect);
//   * writes use send(MSG_NOSIGNAL) on sockets so a reader vanishing mid-
//     response yields EPIPE (write_frame returns false) instead of killing
//     the process with SIGPIPE; stdio transports ignore SIGPIPE in main().
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "model/change.hpp"

namespace grbd {

/// Malformed frame or payload (truncation, oversize, bad tag, trailing
/// bytes). Connections die on it; the daemon does not.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error(what) {}
};

enum class MsgType : std::uint8_t {
  kHello = 0x01,
  kApply = 0x02,
  kQuery = 0x03,
  kStats = 0x04,
  kShutdown = 0x05,
  /// Empty request; answers kMetricsOk carrying one serialized telemetry
  /// registry snapshot (support/telemetry/metrics.hpp wire codec,
  /// schema-versioned). A superset of the kStats fields — kStats stays for
  /// compatibility with fixed-layout clients.
  kMetrics = 0x06,
  kHelloOk = 0x81,
  kApplied = 0x82,
  kAnswer = 0x83,
  kStatsOk = 0x84,
  kOk = 0x85,
  kMetricsOk = 0x86,
  kError = 0xff,
};

enum class ErrorCode : std::uint32_t {
  kBadRequest = 1,  ///< unknown type / malformed payload
  kEvicted = 2,     ///< pinned epoch left the retention window
  kNotReady = 3,    ///< pinned epoch not published within the wait budget
  kShuttingDown = 4,
  kInternal = 5,  ///< unexpected server-side failure; connection is dropped
};

/// Query selector inside kQuery payloads.
inline constexpr std::uint8_t kQueryQ1 = 0;
inline constexpr std::uint8_t kQueryQ2 = 1;
/// "Serve the newest snapshot" epoch pin.
inline constexpr std::uint64_t kLatestEpoch = ~std::uint64_t{0};

/// Frames larger than this are refused by default (both directions).
inline constexpr std::size_t kDefaultMaxFrame = 16u << 20;

struct Frame {
  MsgType type = MsgType::kError;
  std::vector<std::uint8_t> payload;
};

// --- Payload codec --------------------------------------------------------

/// Bounds-checked little-endian payload writer.
class PayloadWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(const void* data, std::size_t n);
  void str(const std::string& s) { bytes(s.data(), s.size()); }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian payload reader; throws ProtocolError on a
/// short payload, and expect_done() rejects trailing bytes.
class PayloadReader {
 public:
  PayloadReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit PayloadReader(const std::vector<std::uint8_t>& payload)
      : PayloadReader(payload.data(), payload.size()) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  /// Every byte left in the payload, as a string (answers are strings).
  std::string rest();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return size_ - pos_;
  }
  void expect_done() const;

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Binary change-set codec: u32 op count, then per op a u8 tag (1..7,
/// matching the ChangeOp variant order) and the op's u64/i64 fields.
std::vector<std::uint8_t> encode_change_set(const sm::ChangeSet& cs);
sm::ChangeSet decode_change_set(PayloadReader& in);

// --- Framed stream I/O ----------------------------------------------------

/// Reads exactly n bytes (looping over short reads, retrying EINTR).
/// Returns false on EOF before the first byte; throws ProtocolError on EOF
/// mid-buffer or a read error.
bool read_exact(int fd, void* buf, std::size_t n);

/// Reads one frame. nullopt = clean EOF at a frame boundary. Throws
/// ProtocolError on truncation (mid-request disconnect) or when the header
/// declares more than max_frame bytes.
std::optional<Frame> read_frame(int fd,
                                std::size_t max_frame = kDefaultMaxFrame);

/// Writes one frame (looping over short writes, retrying EINTR). Returns
/// false when the peer vanished (EPIPE/ECONNRESET — SIGPIPE-safe via
/// MSG_NOSIGNAL on sockets); throws ProtocolError on other errors.
bool write_frame(int fd, MsgType type, const std::uint8_t* payload,
                 std::size_t n);
bool write_frame(int fd, MsgType type,
                 const std::vector<std::uint8_t>& payload);
inline bool write_frame(int fd, MsgType type) {
  return write_frame(fd, type, nullptr, 0);
}

/// Convenience kError emitter (best-effort: result ignored by callers that
/// are about to close anyway).
bool write_error(int fd, ErrorCode code, const std::string& message);

}  // namespace grbd
