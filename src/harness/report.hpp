// Plain-text report formatting for the bench binaries: fixed-width series
// tables (one row per scale factor, one column per tool) matching the
// structure of the paper's Fig. 5 panels, plus CSV output for plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace harness {

struct SeriesTable {
  std::string title;
  /// Row labels (scale factors).
  std::vector<std::string> rows;
  /// Column labels (tools).
  std::vector<std::string> cols;
  /// cell[r][c] in seconds; negative = missing (printed as "-").
  std::vector<std::vector<double>> cells;
};

/// Pretty-prints with aligned columns; times in seconds with 4 significant
/// digits (the paper's axis spans 1 ms .. 100 s).
void print_table(std::ostream& os, const SeriesTable& table);

/// Machine-readable CSV (same data; header row, row label first).
void print_csv(std::ostream& os, const SeriesTable& table);

}  // namespace harness
