// Tool registry: maps the tool names used in reports/CLIs to engine
// factories, including the thread configuration baked into the paper's tool
// labels ("GraphBLAS Batch (8 threads)" is the same binary with the
// GxB_NTHREADS knob set to 8).
#pragma once

#include <string>
#include <vector>

#include "harness/engine.hpp"

namespace harness {

struct ToolSpec {
  /// Report label, e.g. "GraphBLAS Incremental (8 threads)".
  std::string label;
  /// Factory key: "grb-batch", "grb-incremental", "grb-incremental-cc",
  /// "grb-sharded-batch", "grb-sharded-incremental", "nmf-batch",
  /// "nmf-incremental".
  std::string key;
  /// grb thread cap while this tool runs (NMF tools are single-threaded, as
  /// the reference implementation is).
  int threads = 1;
  /// Shard count for the grb-sharded-* / grb-pipelined-* engines (ignored
  /// by the others).
  int shards = 1;
  /// Ingestion-pipeline depth for the grb-pipelined-* engines: how many
  /// change sets may be in flight across the shard workers at once. 0 for
  /// every serial tool.
  int pipeline = 0;
};

/// The six tools of Fig. 5, in the paper's legend order.
const std::vector<ToolSpec>& fig5_tools();

/// All known tools (Fig. 5 set + the incremental-CC extension + the
/// 4-shard sharded variants).
const std::vector<ToolSpec>& all_tools();

/// The sharded engine pair at a given shard count, one thread per shard
/// (the per-shard fan-out is the parallelism axis these tools measure).
/// fig5_runtime appends these for --shards=N runs.
std::vector<ToolSpec> sharded_tools(int shards);

/// The pipelined engine pair: sharded engines whose update phase runs
/// through the asynchronous ingestion pipeline (up to `depth` change sets
/// in flight). threads=1 — the per-shard parallelism comes from the
/// pipeline's dedicated worker threads, not an OpenMP team, so the OpenMP
/// cap stays out of their way. fig5_runtime appends these for
/// --pipeline=DEPTH runs.
std::vector<ToolSpec> pipelined_tools(int shards, int depth);

/// Instantiates an engine by factory key; throws grb::InvalidValue for
/// unknown keys. The grb-sharded-* keys need a shard count and are only
/// accepted by the ToolSpec overload (the key-only overload throws for
/// them rather than guessing one).
EnginePtr make_engine(const std::string& key, Query q);
EnginePtr make_engine(const ToolSpec& tool, Query q);

/// Looks up a ToolSpec by label or key; throws if absent.
const ToolSpec& find_tool(const std::string& label_or_key);

}  // namespace harness
