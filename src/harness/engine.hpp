// The benchmark framework's tool interface, mirroring the TTC 2018 contract:
// a tool is instantiated for one query, loads the initial graph, produces
// the initial answer, then alternates (apply change set, produce new
// answer). Engines own whatever internal state they need; the harness only
// ever sees answer strings, which it cross-checks between tools.
#pragma once

#include <memory>
#include <string>

#include "model/change.hpp"
#include "model/social_graph.hpp"

namespace harness {

enum class Query { kQ1, kQ2 };

[[nodiscard]] inline const char* query_name(Query q) {
  return q == Query::kQ1 ? "Q1" : "Q2";
}

class Engine {
 public:
  virtual ~Engine() = default;

  /// Tool label as it appears in reports (e.g. "GraphBLAS Incremental").
  [[nodiscard]] virtual std::string name() const = 0;

  /// "Load" phase: ingest the initial graph and build internal structures.
  virtual void load(const sm::SocialGraph& g) = 0;

  /// "Initial evaluation" phase: the answer on the loaded graph.
  virtual std::string initial() = 0;

  /// "Update and reevaluation": apply one change set, return the new answer.
  virtual std::string update(const sm::ChangeSet& cs) = 0;
};

using EnginePtr = std::unique_ptr<Engine>;

}  // namespace harness
