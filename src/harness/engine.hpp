// The benchmark framework's tool interface, mirroring the TTC 2018 contract:
// a tool is instantiated for one query, loads the initial graph, produces
// the initial answer, then alternates (apply change set, produce new
// answer). Engines own whatever internal state they need; the harness only
// ever sees answer strings, which it cross-checks between tools.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "model/change.hpp"
#include "model/social_graph.hpp"

namespace harness {

enum class Query { kQ1, kQ2 };

[[nodiscard]] inline const char* query_name(Query q) {
  return q == Query::kQ1 ? "Q1" : "Q2";
}

class Engine {
 public:
  virtual ~Engine() = default;

  /// Tool label as it appears in reports (e.g. "GraphBLAS Incremental").
  [[nodiscard]] virtual std::string name() const = 0;

  /// "Load" phase: ingest the initial graph and build internal structures.
  virtual void load(const sm::SocialGraph& g) = 0;

  /// "Initial evaluation" phase: the answer on the loaded graph.
  virtual std::string initial() = 0;

  /// "Update and reevaluation": apply one change set, return the new answer.
  virtual std::string update(const sm::ChangeSet& cs) = 0;

  /// Streamed update phase: apply every change set in order and return one
  /// answer per set — answers[i] is the state after changes[i]. The default
  /// is the strictly serial schedule (a loop over update()); engines with
  /// an ingestion pipeline override this to overlap change sets while
  /// returning the byte-identical answer sequence. An empty stream is a
  /// no-op for every engine: it returns an empty vector without reserving
  /// an epoch or touching any publication barrier.
  virtual std::vector<std::string> update_stream(
      const std::vector<sm::ChangeSet>& changes) {
    std::vector<std::string> answers;
    answers.reserve(changes.size());
    for (const sm::ChangeSet& cs : changes) answers.push_back(update(cs));
    return answers;
  }
};

using EnginePtr = std::unique_ptr<Engine>;

}  // namespace harness
