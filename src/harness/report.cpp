#include "harness/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace harness {

namespace {
std::string fmt_seconds(double s) {
  if (s < 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4g", s);
  return buf;
}
}  // namespace

void print_table(std::ostream& os, const SeriesTable& table) {
  os << "== " << table.title << " ==\n";
  // Column widths: max of header and any cell.
  std::vector<std::size_t> widths(table.cols.size() + 1, 0);
  widths[0] = 5;  // "scale"
  for (const auto& r : table.rows) widths[0] = std::max(widths[0], r.size());
  for (std::size_t c = 0; c < table.cols.size(); ++c) {
    widths[c + 1] = table.cols[c].size();
  }
  std::vector<std::vector<std::string>> cells(table.rows.size());
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    cells[r].resize(table.cols.size());
    for (std::size_t c = 0; c < table.cols.size(); ++c) {
      cells[r][c] = fmt_seconds(table.cells[r][c]);
      widths[c + 1] = std::max(widths[c + 1], cells[r][c].size());
    }
  }
  const auto pad = [&](const std::string& s, std::size_t w) {
    os << s;
    for (std::size_t i = s.size(); i < w + 2; ++i) os.put(' ');
  };
  pad("scale", widths[0]);
  for (std::size_t c = 0; c < table.cols.size(); ++c) {
    pad(table.cols[c], widths[c + 1]);
  }
  os << '\n';
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    pad(table.rows[r], widths[0]);
    for (std::size_t c = 0; c < table.cols.size(); ++c) {
      pad(cells[r][c], widths[c + 1]);
    }
    os << '\n';
  }
  os << '\n';
}

void print_csv(std::ostream& os, const SeriesTable& table) {
  os << "scale";
  for (const auto& c : table.cols) os << ',' << c;
  os << '\n';
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    os << table.rows[r];
    for (std::size_t c = 0; c < table.cols.size(); ++c) {
      os << ',';
      if (table.cells[r][c] >= 0) os << table.cells[r][c];
    }
    os << '\n';
  }
}

}  // namespace harness
