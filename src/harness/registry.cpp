#include "harness/registry.hpp"

#include "nmf/nmf_batch.hpp"
#include "nmf/nmf_incremental.hpp"
#include "queries/engines.hpp"
#include "shard/pipelined_engine.hpp"
#include "shard/sharded_engines.hpp"

namespace harness {

const std::vector<ToolSpec>& fig5_tools() {
  static const std::vector<ToolSpec> kTools = {
      {"GraphBLAS Batch", "grb-batch", 1},
      {"GraphBLAS Incremental", "grb-incremental", 1},
      {"GraphBLAS Batch (8 threads)", "grb-batch", 8},
      {"GraphBLAS Incremental (8 threads)", "grb-incremental", 8},
      {"NMF Batch", "nmf-batch", 1},
      {"NMF Incremental", "nmf-incremental", 1},
  };
  return kTools;
}

const std::vector<ToolSpec>& all_tools() {
  static const std::vector<ToolSpec> kTools = [] {
    std::vector<ToolSpec> tools = fig5_tools();
    tools.push_back({"GraphBLAS Incremental+CC", "grb-incremental-cc", 1});
    for (const ToolSpec& t : sharded_tools(4)) tools.push_back(t);
    for (const ToolSpec& t : pipelined_tools(4, 2)) tools.push_back(t);
    return tools;
  }();
  return kTools;
}

std::vector<ToolSpec> sharded_tools(int shards) {
  const std::string suffix =
      " (" + std::to_string(shards) + (shards == 1 ? " shard)" : " shards)");
  return {
      {"GraphBLAS Sharded Batch" + suffix, "grb-sharded-batch", shards,
       shards},
      {"GraphBLAS Sharded Incremental" + suffix, "grb-sharded-incremental",
       shards, shards},
  };
}

std::vector<ToolSpec> pipelined_tools(int shards, int depth) {
  const std::string suffix = " (" + std::to_string(shards) +
                             (shards == 1 ? " shard" : " shards") +
                             ", depth " + std::to_string(depth) + ")";
  std::vector<ToolSpec> tools = {
      {"GraphBLAS Pipelined Batch" + suffix, "grb-pipelined-batch", 1,
       shards},
      {"GraphBLAS Pipelined Incremental" + suffix, "grb-pipelined-incremental",
       1, shards},
  };
  for (ToolSpec& t : tools) t.pipeline = depth;
  return tools;
}

EnginePtr make_engine(const std::string& key, Query q) {
  if (key.rfind("grb-sharded-", 0) == 0) {
    // A sharded engine without a shard count would silently pick one; make
    // the caller say it via the ToolSpec overload (or sharded_tools(N)).
    throw grb::InvalidValue("sharded engine key '" + key +
                            "' needs a ToolSpec with a shard count");
  }
  if (key.rfind("grb-pipelined-", 0) == 0) {
    throw grb::InvalidValue("pipelined engine key '" + key +
                            "' needs a ToolSpec with shard count and "
                            "pipeline depth");
  }
  ToolSpec spec;
  spec.key = key;
  return make_engine(spec, q);
}

EnginePtr make_engine(const ToolSpec& tool, Query q) {
  const std::string& key = tool.key;
  if (key == "grb-batch") return queries::make_grb_engine("batch", q);
  if (key == "grb-incremental") {
    return queries::make_grb_engine("incremental", q);
  }
  if (key == "grb-incremental-cc") {
    return queries::make_grb_engine("incremental-cc", q);
  }
  if (key == "grb-sharded-batch" || key == "grb-sharded-incremental") {
    if (tool.shards < 1) {
      throw grb::InvalidValue("sharded engine needs shards >= 1");
    }
    return shard::make_sharded_engine(
        key == "grb-sharded-batch" ? "sharded-batch" : "sharded-incremental",
        q, static_cast<std::size_t>(tool.shards));
  }
  if (key == "grb-pipelined-batch" || key == "grb-pipelined-incremental") {
    if (tool.shards < 1) {
      throw grb::InvalidValue("pipelined engine needs shards >= 1");
    }
    if (tool.pipeline < 1) {
      throw grb::InvalidValue("pipelined engine needs pipeline depth >= 1");
    }
    return shard::make_pipelined_engine(
        key == "grb-pipelined-batch" ? "pipelined-batch"
                                     : "pipelined-incremental",
        q, static_cast<std::size_t>(tool.shards),
        static_cast<std::size_t>(tool.pipeline));
  }
  if (key == "nmf-batch") return std::make_unique<nmf::NmfBatchEngine>(q);
  if (key == "nmf-incremental") {
    return std::make_unique<nmf::NmfIncrementalEngine>(q);
  }
  throw grb::InvalidValue("unknown engine key: " + key);
}

const ToolSpec& find_tool(const std::string& label_or_key) {
  for (const ToolSpec& t : all_tools()) {
    if (t.label == label_or_key || t.key == label_or_key) return t;
  }
  throw grb::InvalidValue("unknown tool: " + label_or_key);
}

}  // namespace harness
