#include "harness/registry.hpp"

#include "nmf/nmf_batch.hpp"
#include "nmf/nmf_incremental.hpp"
#include "queries/engines.hpp"

namespace harness {

const std::vector<ToolSpec>& fig5_tools() {
  static const std::vector<ToolSpec> kTools = {
      {"GraphBLAS Batch", "grb-batch", 1},
      {"GraphBLAS Incremental", "grb-incremental", 1},
      {"GraphBLAS Batch (8 threads)", "grb-batch", 8},
      {"GraphBLAS Incremental (8 threads)", "grb-incremental", 8},
      {"NMF Batch", "nmf-batch", 1},
      {"NMF Incremental", "nmf-incremental", 1},
  };
  return kTools;
}

const std::vector<ToolSpec>& all_tools() {
  static const std::vector<ToolSpec> kTools = [] {
    std::vector<ToolSpec> tools = fig5_tools();
    tools.push_back({"GraphBLAS Incremental+CC", "grb-incremental-cc", 1});
    return tools;
  }();
  return kTools;
}

EnginePtr make_engine(const std::string& key, Query q) {
  if (key == "grb-batch") return queries::make_grb_engine("batch", q);
  if (key == "grb-incremental") {
    return queries::make_grb_engine("incremental", q);
  }
  if (key == "grb-incremental-cc") {
    return queries::make_grb_engine("incremental-cc", q);
  }
  if (key == "nmf-batch") return std::make_unique<nmf::NmfBatchEngine>(q);
  if (key == "nmf-incremental") {
    return std::make_unique<nmf::NmfIncrementalEngine>(q);
  }
  throw grb::InvalidValue("unknown engine key: " + key);
}

const ToolSpec& find_tool(const std::string& label_or_key) {
  for (const ToolSpec& t : all_tools()) {
    if (t.label == label_or_key || t.key == label_or_key) return t;
  }
  throw grb::InvalidValue("unknown tool: " + label_or_key);
}

}  // namespace harness
