// Phased benchmark runner implementing the TTC protocol the paper measures:
//   phase 1  "load and initial evaluation"  — engine.load + engine.initial
//   phase 2  "update and reevaluation"      — Σ over change sets of
//                                             (apply + reevaluate)
// Each configuration is run `repeats` times and summarised with the
// geometric mean, as in Sec. IV ("we ran the computation on each graph size
// 5 times and report the geometric mean value").
#pragma once

#include <string>
#include <vector>

#include "harness/engine.hpp"
#include "harness/registry.hpp"
#include "support/stats.hpp"

namespace harness {

struct RunResult {
  double load_and_initial_s = 0.0;
  double update_and_reeval_s = 0.0;
  std::string initial_answer;
  std::vector<std::string> update_answers;
};

/// One full protocol run of a tool on a dataset. Sets grb::set_threads to
/// the tool's configuration for the duration of the run.
RunResult run_once(const ToolSpec& tool, Query q, const sm::SocialGraph& initial,
                   const std::vector<sm::ChangeSet>& changes);

struct RepeatedResult {
  grbsm::support::Summary load_and_initial;
  grbsm::support::Summary update_and_reeval;
  /// Answers from the last run (identical across runs — engines are
  /// deterministic; the runner asserts this).
  std::string initial_answer;
  std::vector<std::string> update_answers;
};

/// Runs the protocol `repeats` times and summarises.
RepeatedResult run_repeated(const ToolSpec& tool, Query q,
                            const sm::SocialGraph& initial,
                            const std::vector<sm::ChangeSet>& changes,
                            int repeats);

/// Cross-checks that every tool produces the same answer sequence on the
/// dataset; returns the reference sequence. Throws grb::InvalidValue with a
/// diagnostic if any tool disagrees (used by tests and --verify runs).
std::vector<std::string> verify_tools(const std::vector<ToolSpec>& tools,
                                      Query q,
                                      const sm::SocialGraph& initial,
                                      const std::vector<sm::ChangeSet>& changes);

}  // namespace harness
