#include "harness/runner.hpp"

#include "grb/context.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"

namespace harness {

using grbsm::support::Timer;

RunResult run_once(const ToolSpec& tool, Query q,
                   const sm::SocialGraph& initial,
                   const std::vector<sm::ChangeSet>& changes) {
  const grb::ThreadGuard guard(tool.threads);
  EnginePtr engine = make_engine(tool, q);
  RunResult result;

  Timer load_timer;
  engine->load(initial);
  result.initial_answer = engine->initial();
  result.load_and_initial_s = load_timer.elapsed_s();

  // The update phase is one streamed call: for serial engines the default
  // update_stream is exactly the old per-change-set loop, while pipelined
  // engines overlap change sets inside it — so the timed section measures
  // each tool's real ingestion schedule.
  Timer update_timer;
  result.update_answers = engine->update_stream(changes);
  result.update_and_reeval_s = update_timer.elapsed_s();
  return result;
}

RepeatedResult run_repeated(const ToolSpec& tool, Query q,
                            const sm::SocialGraph& initial,
                            const std::vector<sm::ChangeSet>& changes,
                            int repeats) {
  RepeatedResult out;
  std::vector<double> load_times;
  std::vector<double> update_times;
  for (int r = 0; r < repeats; ++r) {
    RunResult run = run_once(tool, q, initial, changes);
    if (r == 0) {
      out.initial_answer = run.initial_answer;
      out.update_answers = run.update_answers;
    } else if (run.initial_answer != out.initial_answer ||
               run.update_answers != out.update_answers) {
      throw grb::InvalidValue("nondeterministic answers from " + tool.label);
    }
    load_times.push_back(run.load_and_initial_s);
    update_times.push_back(run.update_and_reeval_s);
  }
  out.load_and_initial = grbsm::support::summarize(load_times);
  out.update_and_reeval = grbsm::support::summarize(update_times);
  return out;
}

std::vector<std::string> verify_tools(
    const std::vector<ToolSpec>& tools, Query q,
    const sm::SocialGraph& initial,
    const std::vector<sm::ChangeSet>& changes) {
  std::vector<std::string> reference;
  std::string reference_tool;
  for (const ToolSpec& tool : tools) {
    RunResult run = run_once(tool, q, initial, changes);
    std::vector<std::string> answers;
    answers.push_back(run.initial_answer);
    answers.insert(answers.end(), run.update_answers.begin(),
                   run.update_answers.end());
    if (reference.empty()) {
      reference = std::move(answers);
      reference_tool = tool.label;
      GRBSM_LOG_DEBUG << "verify: " << tool.label << " sets the reference ("
                      << reference.size() << " answers)";
    } else if (answers != reference) {
      for (std::size_t i = 0; i < answers.size(); ++i) {
        if (answers[i] != reference[i]) {
          throw grb::InvalidValue(
              "answer mismatch on " + std::string(query_name(q)) + " step " +
              std::to_string(i) + ": " + reference_tool + " says '" +
              reference[i] + "', " + tool.label + " says '" + answers[i] +
              "'");
        }
      }
    } else {
      GRBSM_LOG_DEBUG << "verify: " << tool.label << " agrees with "
                      << reference_tool;
    }
  }
  return reference;
}

}  // namespace harness
