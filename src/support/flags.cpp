#include "support/flags.hpp"

#include <cstdlib>
#include <stdexcept>

namespace grbsm::support {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) != 0;
}

std::string Flags::get(const std::string& name, const std::string& def) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double def) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool def) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Flags::unqueried() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : values_) {
    if (!queried_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace grbsm::support
