#include "support/flags.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace grbsm::support {

namespace {

/// Strict-parse failure: name the flag, say what was expected, exit 2. A
/// message on stderr beats an exception here — these fire during flag
/// parsing in main(), where an uncaught throw would terminate without the
/// flag name that makes the error actionable.
[[noreturn]] void die_bad_value(const std::string& name, const char* expected,
                                const std::string& value) {
  std::fprintf(stderr, "error: --%s: expected %s, got '%s'\n", name.c_str(),
               expected, value.c_str());
  std::exit(2);
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) != 0;
}

std::string Flags::get(const std::string& name, const std::string& def) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& s = it->second;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  // endptr + full-consumption check: "ten" parses nothing (end == begin),
  // "4x" parses a prefix (end mid-string), "" parses nothing; ERANGE flags
  // a clamped out-of-range value. All are hard errors, not silent zeros.
  if (s.empty() || end != s.c_str() + s.size() || errno == ERANGE) {
    die_bad_value(name, "an integer", s);
  }
  return v;
}

double Flags::get_double(const std::string& name, double def) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& s = it->second;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size() || errno == ERANGE) {
    die_bad_value(name, "a number", s);
  }
  return v;
}

bool Flags::get_bool(const std::string& name, bool def) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& s = it->second;
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  die_bad_value(name, "a boolean (true/false/1/0/yes/no/on/off)", s);
}

std::vector<std::string> Flags::unqueried() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : values_) {
    if (!queried_.count(name)) out.push_back(name);
  }
  return out;
}

void Flags::reject_unqueried(const std::string& tool) const {
  const std::vector<std::string> unknown = unqueried();
  if (unknown.empty()) return;
  std::fprintf(stderr, "%s: unknown flag%s:", tool.c_str(),
               unknown.size() > 1 ? "s" : "");
  for (const std::string& name : unknown) {
    std::fprintf(stderr, " --%s", name.c_str());
  }
  std::fprintf(stderr, "\n(check the spelling; run with --help if the tool "
                       "documents one)\n");
  std::exit(2);
}

}  // namespace grbsm::support
