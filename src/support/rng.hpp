// Deterministic pseudo-random number generation for the data generator and
// the property-based tests. We avoid std::mt19937 + std::*_distribution
// because their output is not guaranteed to be identical across standard
// library implementations; reproducing a dataset from a seed must be exact.
//
// This header is the only sanctioned randomness source in library code:
// tools/lint_invariants.py (rule raw-rng) rejects std::rand/random_device/
// unseeded engines anywhere else under src/, precisely because ambient
// nondeterminism would break the differential harnesses' byte-identity
// guarantees. Everything here is seeded explicitly by the caller.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace grbsm::support {

/// SplitMix64: used to expand a single 64-bit seed into a full generator
/// state. Reference: Steele, Lea, Flood — "Fast splittable pseudorandom
/// number generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, tiny state.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5eed0123456789abULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    assert(bound > 0);
    // 128-bit multiply-shift; retry the rare biased region.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    assert(lo <= hi);
    return lo + bounded(hi - lo + 1);
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw.
  bool chance(double p) noexcept { return uniform01() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Discrete bounded power-law ("Zipf-like") sampler over {1, ..., n} with
/// exponent `alpha`. Social-network degree distributions (likes per comment,
/// friends per user) are heavy-tailed; LDBC Datagen enforces a Facebook-like
/// distribution which this approximates. Sampling is done by inverting the
/// precomputed CDF with binary search — O(log n) per draw, exact.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha) : cdf_(n) {
    assert(n > 0);
    double acc = 0.0;
    for (std::size_t k = 1; k <= n; ++k) {
      acc += std::pow(static_cast<double>(k), -alpha);
      cdf_[k - 1] = acc;
    }
    const double total = cdf_.back();
    for (auto& c : cdf_) c /= total;
    cdf_.back() = 1.0;  // guard against rounding
  }

  /// Draws a value in [1, n]; small values are most likely.
  std::size_t sample(Xoshiro256& rng) const {
    const double u = rng.uniform01();
    // First index whose CDF value exceeds u.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo + 1;
  }

  std::size_t domain() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace grbsm::support
