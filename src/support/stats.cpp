#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace grbsm::support {

double geometric_mean(const std::vector<double>& xs, double floor) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    log_sum += std::log(std::max(x, floor));
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  const std::size_t mid = sorted.size() / 2;
  s.median = (sorted.size() % 2 == 1)
                 ? sorted[mid]
                 : 0.5 * (sorted[mid - 1] + sorted[mid]);
  s.mean = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
           static_cast<double>(sorted.size());
  s.geomean = geometric_mean(sorted);
  return s;
}

}  // namespace grbsm::support
