// Summary statistics for benchmark reporting. The paper reports the
// geometric mean of 5 runs per configuration; we provide that plus the
// usual robustness companions (median, min/max) for EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <vector>

namespace grbsm::support {

struct Summary {
  double geomean = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;
};

/// Geometric mean of strictly positive samples. Zero/negative samples are
/// clamped to `floor` (timers can return 0 ns for empty phases).
double geometric_mean(const std::vector<double>& xs, double floor = 1e-12);

/// Full summary of a sample vector (not destructive; copies for the median).
Summary summarize(const std::vector<double>& xs);

}  // namespace grbsm::support
