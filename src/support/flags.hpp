// Tiny command-line flag parser for the bench/example/daemon binaries.
// Accepts --name=value, --name value, and bare --name (boolean true).
//
// Typed accessors are strict: a malformed value (--pipeline=ten,
// --shards=4x, --alpha=1.5z, --verbose=ture) terminates the process with
// exit status 2 and a message naming the flag, instead of silently parsing
// a prefix (strtoll would turn "ten" into 0 and "4x" into 4 — poison for a
// daemon exposed to untrusted input). Unknown flags are collected so
// google-benchmark flags can pass through; strict tools additionally call
// reject_unqueried() after reading their flags so a typo'd flag name
// (--shard=4 for --shards=4) cannot quietly run with defaults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace grbsm::support {

class Flags {
 public:
  Flags(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& def) const;
  /// Exits 2 naming the flag unless the value is a fully-consumed,
  /// in-range base-10 integer (an optional sign is fine).
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t def) const;
  /// Exits 2 naming the flag unless the value is a fully-consumed, finite-
  /// representable floating-point literal.
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  /// Accepts true/1/yes/on and false/0/no/off; any other spelling exits 2
  /// naming the flag (a silent `false` for "--verify=ture" would disable
  /// the very check the caller asked for).
  [[nodiscard]] bool get_bool(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Names seen on the command line but never queried — useful for
  /// "unknown flag" warnings in strict tools.
  [[nodiscard]] std::vector<std::string> unqueried() const;

  /// Exits 2 listing every flag the tool never queried. Strict tools
  /// (fig5_runtime, ttc_runner, grb_daemon, load_gen) call this once all
  /// flags have been read; `tool` names the binary in the message.
  void reject_unqueried(const std::string& tool) const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace grbsm::support
