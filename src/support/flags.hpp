// Tiny command-line flag parser for the bench/example binaries.
// Accepts --name=value, --name value, and bare --name (boolean true).
// Unknown flags are collected so google-benchmark flags can pass through.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace grbsm::support {

class Flags {
 public:
  Flags(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Names seen on the command line but never queried — useful for
  /// "unknown flag" warnings in strict tools.
  [[nodiscard]] std::vector<std::string> unqueried() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace grbsm::support
