// Minimal CSV reading/writing tailored to the TTC 2018 dataset format:
// '|'-separated values (the contest's LDBC exports use '|'), no quoting in
// the fields we produce, one record per line. A small quoted-field escape
// hatch is provided for robustness against hand-edited files.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace grbsm::support {

/// Splits one CSV record into fields. Handles double-quoted fields with
/// doubled-quote escapes; does not handle embedded newlines (the TTC data
/// has none).
std::vector<std::string> split_csv_line(std::string_view line, char sep = '|');

/// Parses a non-negative integer field; throws std::invalid_argument with
/// the offending text on failure (file loaders want loud errors, not UB).
std::uint64_t parse_u64(std::string_view field);

/// Parses a signed integer field (timestamps may predate the epoch in
/// synthetic data).
std::int64_t parse_i64(std::string_view field);

/// Line-oriented CSV reader. Usage:
///   CsvReader r(path);
///   while (auto rec = r.next()) { use(*rec); }
class CsvReader {
 public:
  explicit CsvReader(const std::string& path, char sep = '|');

  /// Returns false at end of file. Skips blank lines. Throws on I/O error.
  bool next(std::vector<std::string>& fields);

  [[nodiscard]] std::size_t line_number() const noexcept { return line_no_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ifstream in_;
  char sep_;
  std::size_t line_no_ = 0;
  std::string buf_;
};

/// Buffered CSV writer with the matching separator conventions.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path, char sep = '|');

  void write_record(const std::vector<std::string>& fields);
  void flush();

 private:
  std::ofstream out_;
  char sep_;
};

}  // namespace grbsm::support
