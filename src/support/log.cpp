#include "support/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace grbsm::support {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  const std::scoped_lock lock(g_mutex);
  std::cerr << "[grbsm " << level_name(level) << "] " << msg << '\n';
}

}  // namespace grbsm::support
