#include "support/telemetry/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace grbsm::telemetry {

// --- HistogramSnapshot -------------------------------------------------------

std::uint64_t HistogramSnapshot::count() const noexcept {
  std::uint64_t n = 0;
  for (const std::uint64_t b : buckets) n += b;
  return n;
}

double HistogramSnapshot::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(n);
}

double HistogramSnapshot::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank over the n recorded values (0-based, interpolated like the
  // sorted-vector estimator load_gen used to run on raw samples).
  const double rank = q * static_cast<double>(n - 1);
  std::uint64_t before = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    const std::uint64_t c = buckets[i];
    if (c == 0) continue;
    if (rank < static_cast<double>(before + c)) {
      const double lo = static_cast<double>(bucket_lo(i));
      // The recorded max lives in the highest non-empty bucket; capping that
      // bucket's upper edge with it (and the open-ended tail bucket always)
      // keeps the interpolation from extrapolating past a value ever seen.
      double hi = i >= kHistogramBuckets - 1
                      ? static_cast<double>(max)
                      : static_cast<double>(bucket_hi(i));
      if (max >= bucket_lo(i) && max < bucket_hi(i)) {
        hi = static_cast<double>(max);
      }
      hi = std::max(hi, lo);
      const double frac =
          c == 1 ? 0.5
                 : (rank - static_cast<double>(before)) /
                       static_cast<double>(c - 1);
      return lo + frac * (hi - lo);
    }
    before += c;
  }
  return static_cast<double>(max);
}

HistogramSnapshot& HistogramSnapshot::operator+=(
    const HistogramSnapshot& o) noexcept {
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) buckets[i] += o.buckets[i];
  sum += o.sum;
  max = std::max(max, o.max);
  return *this;
}

HistogramSnapshot HistogramSnapshot::delta_since(
    const HistogramSnapshot& earlier) const noexcept {
  HistogramSnapshot d;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    d.buckets[i] =
        buckets[i] >= earlier.buckets[i] ? buckets[i] - earlier.buckets[i] : 0;
  }
  d.sum = sum >= earlier.sum ? sum - earlier.sum : 0;
  // Max is not interval-decomposable; the later poll's max is the honest
  // upper bound for the interval.
  d.max = max;
  return d;
}

// --- Histogram ---------------------------------------------------------------

HistogramSnapshot Histogram::snapshot() const noexcept {
  HistogramSnapshot s;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// --- RegistrySnapshot --------------------------------------------------------

const MetricValue* RegistrySnapshot::find(
    std::string_view name) const noexcept {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const auto& e, std::string_view n) { return e.first < n; });
  if (it == entries.end() || it->first != name) return nullptr;
  return &it->second;
}

std::uint64_t RegistrySnapshot::value_or(
    std::string_view name, std::uint64_t fallback) const noexcept {
  const MetricValue* v = find(name);
  return v == nullptr ? fallback : v->value;
}

const HistogramSnapshot* RegistrySnapshot::histogram(
    std::string_view name) const noexcept {
  const MetricValue* v = find(name);
  return v != nullptr && v->kind == MetricKind::kHistogram ? &v->hist
                                                           : nullptr;
}

// --- Wire codec --------------------------------------------------------------

namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

struct Cursor {
  const std::uint8_t* p;
  std::size_t left;

  void need(std::size_t n) const {
    if (left < n) {
      throw std::runtime_error("metrics snapshot truncated");
    }
  }
  std::uint8_t u8() {
    need(1);
    const std::uint8_t v = *p;
    ++p;
    --left;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
    p += 4;
    left -= 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
    p += 8;
    left -= 8;
    return v;
  }
  std::string str(std::size_t n) {
    need(n);
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return s;
  }
};

}  // namespace

std::vector<std::uint8_t> serialize(const RegistrySnapshot& s) {
  std::vector<std::uint8_t> out;
  put_u32(out, s.schema_version);
  put_u32(out, static_cast<std::uint32_t>(s.entries.size()));
  for (const auto& [name, v] : s.entries) {
    put_u8(out, static_cast<std::uint8_t>(v.kind));
    put_u32(out, static_cast<std::uint32_t>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
    if (v.kind == MetricKind::kHistogram) {
      put_u64(out, v.hist.sum);
      put_u64(out, v.hist.max);
      put_u8(out, static_cast<std::uint8_t>(kHistogramBuckets));
      for (const std::uint64_t b : v.hist.buckets) put_u64(out, b);
    } else {
      put_u64(out, v.value);
    }
  }
  return out;
}

RegistrySnapshot parse_snapshot(const std::uint8_t* data, std::size_t size) {
  Cursor c{data, size};
  RegistrySnapshot s;
  s.schema_version = c.u32();
  if (s.schema_version != kMetricsSchemaVersion) {
    throw std::runtime_error("unsupported metrics schema version " +
                             std::to_string(s.schema_version));
  }
  const std::uint32_t count = c.u32();
  s.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t kind = c.u8();
    if (kind > static_cast<std::uint8_t>(MetricKind::kHistogram)) {
      throw std::runtime_error("unknown metric kind " + std::to_string(kind));
    }
    const std::uint32_t name_len = c.u32();
    MetricValue v;
    v.kind = static_cast<MetricKind>(kind);
    std::string name = c.str(name_len);
    if (v.kind == MetricKind::kHistogram) {
      v.hist.sum = c.u64();
      v.hist.max = c.u64();
      const std::uint8_t n = c.u8();
      if (n != kHistogramBuckets) {
        throw std::runtime_error("unexpected histogram bucket count " +
                                 std::to_string(n));
      }
      for (auto& b : v.hist.buckets) b = c.u64();
    } else {
      v.value = c.u64();
    }
    s.entries.emplace_back(std::move(name), std::move(v));
  }
  if (c.left != 0) {
    throw std::runtime_error("trailing bytes after metrics snapshot");
  }
  std::sort(s.entries.begin(), s.entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return s;
}

// --- Registry ----------------------------------------------------------------

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Registry::Entry& Registry::entry_for(const std::string& name,
                                     MetricKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != kind) {
      throw std::logic_error("telemetry metric '" + name +
                             "' already registered with a different kind");
    }
    return it->second;
  }
  Entry e;
  e.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      e.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      e.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      e.histogram = std::make_unique<Histogram>();
      break;
  }
  return metrics_.emplace(name, std::move(e)).first->second;
}

Counter& Registry::counter(const std::string& name) {
  return *entry_for(name, MetricKind::kCounter).counter;
}

Gauge& Registry::gauge(const std::string& name) {
  return *entry_for(name, MetricKind::kGauge).gauge;
}

Histogram& Registry::histogram(const std::string& name) {
  return *entry_for(name, MetricKind::kHistogram).histogram;
}

Registry::BatchScope::BatchScope() {
  Registry& r = instance();
  r.batch_mu_.lock();
  // Odd seq = batch in flight; acq_rel orders the bump before the batch's
  // relaxed metric updates from the snapshot reader's point of view.
  r.seq_.fetch_add(1, std::memory_order_acq_rel);
}

Registry::BatchScope::~BatchScope() {
  Registry& r = instance();
  r.seq_.fetch_add(1, std::memory_order_release);
  r.batch_mu_.unlock();
}

std::uint64_t Registry::add_provider(Provider p) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_provider_id_++;
  providers_.emplace(id, std::move(p));
  return id;
}

void Registry::remove_provider(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  providers_.erase(id);
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot s;
  for (;;) {
    const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
    if (s1 & 1) continue;  // a batch is mid-flight; spin until it lands
    s.entries.clear();
    s.entries.reserve(metrics_.size());
    for (const auto& [name, e] : metrics_) {
      MetricValue v;
      v.kind = e.kind;
      switch (e.kind) {
        case MetricKind::kCounter:
          v.value = e.counter->value();
          break;
        case MetricKind::kGauge:
          v.value = e.gauge->value();
          break;
        case MetricKind::kHistogram:
          v.hist = e.histogram->snapshot();
          break;
      }
      s.entries.emplace_back(name, std::move(v));
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq_.load(std::memory_order_relaxed) == s1) break;
  }
  for (const auto& [id, provider] : providers_) {
    provider(s.entries);
  }
  std::sort(s.entries.begin(), s.entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return s;
}

void Registry::reset_values() {
  // Lock order: mu_ before the batch — snapshot() spins on the seqlock while
  // holding mu_, so a batch holder must never block on mu_.
  std::lock_guard<std::mutex> lock(mu_);
  BatchScope batch;
  for (auto& [name, e] : metrics_) {
    switch (e.kind) {
      case MetricKind::kCounter:
        e.counter->reset();
        break;
      case MetricKind::kGauge:
        e.gauge->reset();
        break;
      case MetricKind::kHistogram:
        e.histogram->reset();
        break;
    }
  }
}

}  // namespace grbsm::telemetry
