#include "support/telemetry/trace.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace grbsm::telemetry {

namespace {

std::atomic<int> g_mode{static_cast<int>(TelemetryMode::kMetricsOnly)};

constexpr std::size_t kDefaultRingEvents = std::size_t{1} << 16;

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void set_mode(TelemetryMode m) noexcept {
  g_mode.store(static_cast<int>(m), std::memory_order_relaxed);
}

TelemetryMode mode() noexcept {
  return static_cast<TelemetryMode>(g_mode.load(std::memory_order_relaxed));
}

// --- Tracer ------------------------------------------------------------------

/// One thread's event ring. Only the owning thread writes slots and head;
/// readers (collect/export, at quiescence) acquire head and walk the last
/// min(head, capacity) events in push order.
struct Tracer::Buffer {
  struct Event {
    const char* name;      ///< static-duration literal from the span site
    std::uint64_t epoch;
    std::uint64_t ts_ns;
    bool begin;
  };

  Buffer(std::size_t cap, std::uint32_t tid_)
      : slots(cap == 0 ? 1 : cap), tid(tid_) {}

  void push(const char* name, std::uint64_t epoch, bool begin,
            std::uint64_t ts_ns) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    slots[static_cast<std::size_t>(h % slots.size())] =
        Event{name, epoch, ts_ns, begin};
    head.store(h + 1, std::memory_order_release);
  }

  std::vector<Event> slots;
  std::atomic<std::uint64_t> head{0};  ///< total events ever pushed
  std::uint32_t tid;
};

Tracer::Tracer()
    : base_ns_(steady_now_ns()), ring_capacity_(kDefaultRingEvents) {}

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

std::uint64_t Tracer::now_ns() const noexcept {
  return steady_now_ns() - base_ns_;
}

void Tracer::set_ring_capacity(std::size_t events) noexcept {
  ring_capacity_.store(events == 0 ? 1 : events, std::memory_order_relaxed);
}

Tracer::Buffer& Tracer::local_buffer() {
  thread_local std::shared_ptr<Buffer> buf = [this] {
    std::lock_guard<std::mutex> lock(mu_);
    auto b = std::make_shared<Buffer>(
        ring_capacity_.load(std::memory_order_relaxed), next_tid_++);
    buffers_.push_back(b);
    return b;
  }();
  return *buf;
}

void Tracer::record(const char* name, std::uint64_t epoch, bool begin,
                    std::uint64_t ts_ns) {
  local_buffer().push(name, epoch, begin, ts_ns);
}

std::vector<CompletedSpan> Tracer::collect() const {
  std::vector<std::shared_ptr<Buffer>> bufs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bufs = buffers_;
  }
  std::vector<CompletedSpan> out;
  for (const auto& b : bufs) {
    const std::uint64_t h = b->head.load(std::memory_order_acquire);
    const std::uint64_t cap = b->slots.size();
    const std::uint64_t n = h < cap ? h : cap;
    // Stack-match B/E in push order; a B whose slot was overwritten leaves
    // its E orphaned — both orphan kinds (E with an empty stack, B still
    // open at the end) are dropped so exported pairs always balance.
    std::vector<Buffer::Event> open;
    for (std::uint64_t i = h - n; i < h; ++i) {
      const Buffer::Event& ev =
          b->slots[static_cast<std::size_t>(i % cap)];
      if (ev.begin) {
        open.push_back(ev);
        continue;
      }
      if (open.empty()) continue;
      const Buffer::Event begin_ev = open.back();
      open.pop_back();
      CompletedSpan s;
      s.name = ev.name;
      // The closing event carries the final epoch (set_epoch may have
      // re-labelled a reader span after its pin resolved).
      s.epoch = ev.epoch;
      s.tid = b->tid;
      s.start_ns = begin_ev.ts_ns;
      s.end_ns = ev.ts_ns;
      out.push_back(std::move(s));
    }
  }
  return out;
}

void Tracer::export_chrome_trace(std::ostream& os) const {
  std::vector<std::shared_ptr<Buffer>> bufs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bufs = buffers_;
  }
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"grb\"}}";
  char line[256];
  for (const auto& b : bufs) {
    const std::uint64_t h = b->head.load(std::memory_order_acquire);
    const std::uint64_t cap = b->slots.size();
    const std::uint64_t n = h < cap ? h : cap;
    const std::uint64_t first = h - n;
    // Pass 1: stack-match events in ring order; remember, per event index,
    // whether it survives (orphans from wraparound are skipped) and the
    // final epoch its pair carries.
    struct Resolved {
      bool keep = false;
      std::uint64_t epoch = 0;
    };
    std::vector<Resolved> resolved(static_cast<std::size_t>(n));
    std::vector<std::uint64_t> open;  // indices (relative to `first`) of Bs
    for (std::uint64_t i = 0; i < n; ++i) {
      const Buffer::Event& ev =
          b->slots[static_cast<std::size_t>((first + i) % cap)];
      if (ev.begin) {
        open.push_back(i);
        continue;
      }
      if (open.empty()) continue;  // wraparound orphan E
      const std::uint64_t bi = open.back();
      open.pop_back();
      resolved[static_cast<std::size_t>(bi)] = {true, ev.epoch};
      resolved[static_cast<std::size_t>(i)] = {true, ev.epoch};
    }
    // Pass 2: emit surviving events in original order — per-thread ring
    // order is time order, so nesting and ts-monotonicity are preserved.
    for (std::uint64_t i = 0; i < n; ++i) {
      if (!resolved[static_cast<std::size_t>(i)].keep) continue;
      const Buffer::Event& ev =
          b->slots[static_cast<std::size_t>((first + i) % cap)];
      std::snprintf(line, sizeof line,
                    ",\n{\"name\":\"%s\",\"ph\":\"%c\",\"pid\":1,"
                    "\"tid\":%u,\"ts\":%.3f,\"args\":{\"epoch\":%llu}}",
                    ev.name, ev.begin ? 'B' : 'E', b->tid,
                    static_cast<double>(ev.ts_ns) / 1000.0,
                    static_cast<unsigned long long>(
                        resolved[static_cast<std::size_t>(i)].epoch));
      os << line;
    }
  }
  os << "\n]}\n";
}

bool Tracer::export_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  export_chrome_trace(out);
  out.flush();
  return static_cast<bool>(out);
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& b : buffers_) {
    b->head.store(0, std::memory_order_release);
  }
}

// --- SpanScope ---------------------------------------------------------------

SpanScope::SpanScope(const char* name, std::uint64_t epoch,
                     Histogram* hist_us, Histogram* also_us) noexcept
    : name_(name), epoch_(epoch), hist_(hist_us), also_(also_us) {
  const TelemetryMode m = mode();
  timed_ = m != TelemetryMode::kOff;
  traced_ = m == TelemetryMode::kTracing;
  if (!timed_) return;
  Tracer& t = Tracer::instance();
  start_ns_ = t.now_ns();
  if (traced_) t.record(name_, epoch_, /*begin=*/true, start_ns_);
}

SpanScope::~SpanScope() {
  if (!timed_) return;
  Tracer& t = Tracer::instance();
  const std::uint64_t end_ns = t.now_ns();
  // The captured decision, not the current mode: a mid-span enable must not
  // emit an E without its B.
  if (traced_) t.record(name_, epoch_, /*begin=*/false, end_ns);
  const std::uint64_t us = (end_ns - start_ns_) / 1000;
  if (hist_ != nullptr) hist_->record(us);
  if (also_ != nullptr) also_->record(us);
}

}  // namespace grbsm::telemetry
