// Cross-thread epoch tracing: GRB_TRACE_SPAN scopes record B/E events into
// per-thread lock-free ring buffers, correlated by epoch id across the
// route -> shard apply -> publisher merge -> publish -> reader answer
// lifecycle, and export as Chrome trace_event JSON (open chrome://tracing
// or https://ui.perfetto.dev). See README "Architecture: observability".
//
// Cost model (why spans may sit on the ingestion path):
//   kOff          one relaxed load per span — the overhead-gate baseline.
//   kMetricsOnly  (default) + two steady_clock reads and one histogram
//                 record: every span feeds its duration into a registry
//                 histogram ("epoch.merge_us", ...) even when no trace file
//                 was requested, so kMetrics always carries phase timings.
//   kTracing      + two ring-buffer pushes; enabled by --trace=PATH.
// Compiling with -DGRB_TELEMETRY_DISABLED turns GRB_TRACE_SPAN into a
// no-op statement entirely.
//
// Threading: recording is owner-thread-only (a thread writes only its own
// ring; registration of a new ring takes the tracer mutex once per thread).
// collect()/export assume recording threads are quiescent — the daemon
// exports after drain + join, the benches after their timed loops.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/telemetry/metrics.hpp"

namespace grbsm::telemetry {

enum class TelemetryMode : int {
  kOff = 0,          ///< spans are no-ops (overhead-gate baseline)
  kMetricsOnly = 1,  ///< spans time themselves into registry histograms
  kTracing = 2,      ///< + events captured for Chrome-trace export
};

void set_mode(TelemetryMode m) noexcept;
[[nodiscard]] TelemetryMode mode() noexcept;

/// One matched span, as reconstructed from a thread's ring (tests and the
/// per-phase aggregation read these; export re-emits them as B/E pairs).
struct CompletedSpan {
  std::string name;
  std::uint64_t epoch = 0;
  std::uint32_t tid = 0;  ///< tracer-assigned, dense from 1
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
};

class Tracer {
 public:
  [[nodiscard]] static Tracer& instance();

  /// Ring size (events) for threads that register after the call. A span is
  /// two events; when a ring wraps, the oldest events are overwritten and
  /// any half-overwritten span is dropped at export time.
  void set_ring_capacity(std::size_t events) noexcept;

  /// Matched spans from every ring (any thread order; spans of one thread
  /// in completion order). Recording threads must be quiescent.
  [[nodiscard]] std::vector<CompletedSpan> collect() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}; ts in microseconds).
  /// B/E pairs are balanced by construction: orphans from ring wraparound
  /// are dropped. Returns false when the file cannot be written.
  void export_chrome_trace(std::ostream& os) const;
  bool export_chrome_trace(const std::string& path) const;

  /// Drops all recorded events (test isolation; threads quiescent).
  void clear();

  // Internal: called by SpanScope on the owning thread.
  void record(const char* name, std::uint64_t epoch, bool begin,
              std::uint64_t ts_ns);
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

 private:
  Tracer();
  struct Buffer;
  Buffer& local_buffer();

  std::uint64_t base_ns_ = 0;  ///< steady_clock origin for span timestamps
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Buffer>> buffers_;
  std::atomic<std::size_t> ring_capacity_;
  std::uint32_t next_tid_ = 1;
};

/// RAII span. Prefer the GRB_TRACE_SPAN macro; use the class directly when
/// the histogram must be chosen at runtime (per-shard timings) or the epoch
/// is only known mid-scope (reader pins).
class SpanScope {
 public:
  /// `hist_us` (and optionally `also_us`) receive the span duration in
  /// microseconds under kMetricsOnly and kTracing; either may be null.
  SpanScope(const char* name, std::uint64_t epoch, Histogram* hist_us,
            Histogram* also_us = nullptr) noexcept;
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Re-labels the span's epoch before it closes (the exported pair carries
  /// the final value — reader spans learn their epoch only after pinning).
  void set_epoch(std::uint64_t e) noexcept { epoch_ = e; }

 private:
  const char* name_;
  std::uint64_t epoch_;
  std::uint64_t start_ns_ = 0;
  Histogram* hist_;
  Histogram* also_;
  bool timed_;
  bool traced_;
};

}  // namespace grbsm::telemetry

#if defined(GRB_TELEMETRY_DISABLED)
#define GRB_TRACE_SPAN(name, epoch) \
  do {                              \
  } while (false)
#else
#define GRB_TELEM_CAT2(a, b) a##b
#define GRB_TELEM_CAT(a, b) GRB_TELEM_CAT2(a, b)
/// Scoped span named `name` (a string literal), tagged with `epoch` and
/// timed into the registry histogram "epoch.<name>_us". Trace epoch ids use
/// the published 1-based numbering (snapshot k = change set k; 0 = initial
/// evaluation), so one id correlates a change set across every stage.
#define GRB_TRACE_SPAN(name, epoch)                                       \
  static ::grbsm::telemetry::Histogram& GRB_TELEM_CAT(                    \
      grb_trace_hist_, __LINE__) =                                        \
      ::grbsm::telemetry::Registry::instance().histogram(                 \
          std::string("epoch.") + (name) + "_us");                        \
  ::grbsm::telemetry::SpanScope GRB_TELEM_CAT(grb_trace_span_, __LINE__)( \
      (name), (epoch), &GRB_TELEM_CAT(grb_trace_hist_, __LINE__))
#endif
