// Process-wide metrics registry: named counters, gauges, and log-bucketed
// latency histograms under stable dotted names ("prune.blocks_skipped",
// "arena.shard3.hits", "epoch.merge_us", ...). This is the one sensor
// surface every subsystem reports through — the daemon's kMetrics frame, the
// bench JSON breakdowns, and load_gen's server-side deltas all read the same
// snapshot (see README "Architecture: observability").
//
// Recording is relaxed-atomic and lock-free: Counter::add, Gauge::set and
// Histogram::record are safe from any thread and never take the registry
// mutex (metric objects have stable addresses for the life of the process,
// so call sites cache references). Registration (get-or-create by name) and
// snapshotting are mutex-serialized — they happen per subsystem-init or per
// stats request, not per sample.
//
// Coherence: single-metric updates are independent, but some families carry
// cross-counter invariants (prune counters promise scanned + skipped ==
// total on the wire). Writers of such families wrap their updates in a
// BatchScope, and snapshot() spins on a seqlock until it observes a batch-
// quiescent registry — a snapshot can therefore never tear a batch, which is
// what lets the daemon serve invariant-checked stats from live counters.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace grbsm::telemetry {

/// Fixed histogram layout: bucket 0 counts exact zeros; bucket i (1..62)
/// counts values in [2^(i-1), 2^i); bucket 63 is the overflow tail. The
/// layout is part of the kMetrics wire schema — do not change it without
/// bumping kMetricsSchemaVersion.
inline constexpr std::size_t kHistogramBuckets = 64;

/// Version stamp leading every serialized registry snapshot.
inline constexpr std::uint32_t kMetricsSchemaVersion = 1;

/// Bucket index holding value v under the layout above.
[[nodiscard]] constexpr std::size_t bucket_of(std::uint64_t v) noexcept {
  if (v == 0) return 0;
  const auto b = static_cast<std::size_t>(64 - std::countl_zero(v));
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

/// Inclusive lower bound of bucket i (0 for buckets 0 and 1).
[[nodiscard]] constexpr std::uint64_t bucket_lo(std::size_t i) noexcept {
  return i <= 1 ? 0 : std::uint64_t{1} << (i - 1);
}

/// Exclusive upper bound of bucket i (UINT64_MAX for the overflow tail).
[[nodiscard]] constexpr std::uint64_t bucket_hi(std::size_t i) noexcept {
  if (i == 0) return 1;
  if (i >= kHistogramBuckets - 1) return ~std::uint64_t{0};
  return std::uint64_t{1} << i;
}

/// Monotonic event count. Relaxed add — callers needing cross-counter
/// coherence with other metrics wrap their updates in Registry::BatchScope.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time level (buffers cached, epochs in flight, ...).
class Gauge {
 public:
  void set(std::uint64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Immutable copy of a histogram's state. Snapshots merge associatively
/// (shard-local histograms fold into one report) and subtract (interval
/// deltas between two stats polls), and interpolate percentiles: the true
/// quantile is bracketed by its bucket, so the estimate is exact to within
/// one power-of-two bucket width.
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t sum = 0;  ///< total of recorded values (for mean())
  std::uint64_t max = 0;  ///< largest recorded value (caps the tail bucket)

  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double mean() const noexcept;

  /// Value at quantile q in [0, 1], linearly interpolated inside the
  /// containing bucket (0 when empty).
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }
  [[nodiscard]] double p999() const noexcept { return quantile(0.999); }

  HistogramSnapshot& operator+=(const HistogramSnapshot& o) noexcept;
  friend HistogramSnapshot operator+(HistogramSnapshot a,
                                     const HistogramSnapshot& b) noexcept {
    a += b;
    return a;
  }
  /// Interval delta: *this (the later poll) minus `earlier`. Saturates at
  /// zero bucket-wise so a registry reset between polls cannot underflow.
  [[nodiscard]] HistogramSnapshot delta_since(
      const HistogramSnapshot& earlier) const noexcept;
  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// Log-bucketed latency/size histogram. record() is wait-free per bucket
/// (one relaxed fetch_add each on the bucket, sum, and a CAS-loop max), so
/// concurrent recorders never serialize.
class Histogram {
 public:
  void record(std::uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t m = max_.load(std::memory_order_relaxed);
    while (v > m && !max_.compare_exchange_weak(m, v,
                                                std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] HistogramSnapshot snapshot() const noexcept;
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

enum class MetricKind : std::uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

/// One named entry of a RegistrySnapshot.
struct MetricValue {
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;  ///< counters and gauges
  HistogramSnapshot hist;   ///< histograms only
};

/// A coherent, name-sorted copy of every registered metric (plus provider
/// contributions). This is the unit of wire serialization (kMetrics) and of
/// delta computation in load_gen.
struct RegistrySnapshot {
  std::uint32_t schema_version = kMetricsSchemaVersion;
  std::vector<std::pair<std::string, MetricValue>> entries;

  [[nodiscard]] const MetricValue* find(std::string_view name) const noexcept;
  [[nodiscard]] std::uint64_t value_or(std::string_view name,
                                       std::uint64_t fallback) const noexcept;
  /// The named histogram, or nullptr when absent or not a histogram.
  [[nodiscard]] const HistogramSnapshot* histogram(
      std::string_view name) const noexcept;
};

/// Wire codec for kMetrics payloads: [u32 version][u32 count] then per
/// entry [u8 kind][u32 name_len][name] and either [u64 value] or
/// [u64 sum][u64 max][u8 n_buckets][n_buckets x u64]. Little-endian, same
/// conventions as daemon/protocol.hpp.
[[nodiscard]] std::vector<std::uint8_t> serialize(const RegistrySnapshot& s);
/// Throws std::runtime_error on truncated or malformed input.
[[nodiscard]] RegistrySnapshot parse_snapshot(const std::uint8_t* data,
                                              std::size_t size);

class Registry {
 public:
  /// The process-wide registry (lazy, thread-safe).
  [[nodiscard]] static Registry& instance();

  /// Get-or-create by dotted name. The returned reference stays valid for
  /// the life of the process. Throws std::logic_error when the name already
  /// exists with a different kind.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Write-side seqlock section for multi-metric updates whose combination
  /// must never be observed half-applied (see file comment). Batches from
  /// different threads serialize on an internal mutex; keep them short.
  class BatchScope {
   public:
    BatchScope();
    ~BatchScope();
    BatchScope(const BatchScope&) = delete;
    BatchScope& operator=(const BatchScope&) = delete;
  };

  /// Snapshot providers contribute computed entries (e.g. the arena's
  /// per-domain stats) at snapshot time without owning registry metrics.
  /// They run under the registry mutex — never call back into the registry
  /// from one. remove_provider() blocks until no snapshot is mid-call, so
  /// a provider may safely capture objects it outlives the registry with.
  using Provider =
      std::function<void(std::vector<std::pair<std::string, MetricValue>>&)>;
  std::uint64_t add_provider(Provider p);
  void remove_provider(std::uint64_t id);

  /// One coherent copy of everything (batch-atomic, name-sorted).
  [[nodiscard]] RegistrySnapshot snapshot() const;

  /// Zeroes every owned metric's value (names and registrations persist).
  /// Runs as a batch so concurrent snapshots see all-old or all-new.
  void reset_values();

 private:
  Registry() = default;

  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry_for(const std::string& name, MetricKind kind);

  mutable std::mutex mu_;           ///< registration, providers, snapshot
  std::mutex batch_mu_;             ///< serializes BatchScope writers
  std::atomic<std::uint64_t> seq_{0};  ///< seqlock: odd = batch in flight
  std::map<std::string, Entry> metrics_;
  std::map<std::uint64_t, Provider> providers_;
  std::uint64_t next_provider_id_ = 1;
};

}  // namespace grbsm::telemetry
