// Leveled stderr logging. Benchmarks print their results on stdout; all
// diagnostics go through here so result streams stay machine-parseable.
#pragma once

#include <sstream>
#include <string>

namespace grbsm::support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define GRBSM_LOG_DEBUG ::grbsm::support::detail::LogLine(::grbsm::support::LogLevel::kDebug)
#define GRBSM_LOG_INFO ::grbsm::support::detail::LogLine(::grbsm::support::LogLevel::kInfo)
#define GRBSM_LOG_WARN ::grbsm::support::detail::LogLine(::grbsm::support::LogLevel::kWarn)
#define GRBSM_LOG_ERROR ::grbsm::support::detail::LogLine(::grbsm::support::LogLevel::kError)

}  // namespace grbsm::support
