#include "support/csv.hpp"

#include <charconv>
#include <stdexcept>

namespace grbsm::support {

std::vector<std::string> split_csv_line(std::string_view line, char sep) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"' && cur.empty()) {
      quoted = true;
    } else if (c == sep) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::uint64_t parse_u64(std::string_view field) {
  std::uint64_t value = 0;
  const auto* first = field.data();
  const auto* last = field.data() + field.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) {
    throw std::invalid_argument("not an unsigned integer: '" +
                                std::string(field) + "'");
  }
  return value;
}

std::int64_t parse_i64(std::string_view field) {
  std::int64_t value = 0;
  const auto* first = field.data();
  const auto* last = field.data() + field.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) {
    throw std::invalid_argument("not an integer: '" + std::string(field) +
                                "'");
  }
  return value;
}

CsvReader::CsvReader(const std::string& path, char sep)
    : path_(path), in_(path), sep_(sep) {
  if (!in_) {
    throw std::runtime_error("cannot open CSV file: " + path);
  }
}

bool CsvReader::next(std::vector<std::string>& fields) {
  while (std::getline(in_, buf_)) {
    ++line_no_;
    if (buf_.empty() || buf_ == "\r") continue;
    fields = split_csv_line(buf_, sep_);
    return true;
  }
  if (in_.bad()) {
    throw std::runtime_error("I/O error while reading " + path_);
  }
  return false;
}

CsvWriter::CsvWriter(const std::string& path, char sep)
    : out_(path), sep_(sep) {
  if (!out_) {
    throw std::runtime_error("cannot open CSV file for writing: " + path);
  }
}

void CsvWriter::write_record(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_.put(sep_);
    out_ << fields[i];
  }
  out_.put('\n');
}

void CsvWriter::flush() { out_.flush(); }

}  // namespace grbsm::support
