// Wall-clock timing utilities for the benchmark harness. The TTC framework
// reports phase times in nanoseconds; we keep that resolution internally and
// convert at the reporting layer.
#pragma once

#include <chrono>
#include <cstdint>

namespace grbsm::support {

/// Monotonic stopwatch. `elapsed_ns()` may be called repeatedly; `restart()`
/// resets the origin.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  [[nodiscard]] std::int64_t elapsed_ns() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  [[nodiscard]] double elapsed_s() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple start/stop windows (used to time the
/// "update and reevaluation" phase, which is spread over many change sets).
class AccumulatingTimer {
 public:
  void start() noexcept { window_.restart(); }
  void stop() noexcept { total_ns_ += window_.elapsed_ns(); }
  void reset() noexcept { total_ns_ = 0; }

  [[nodiscard]] std::int64_t total_ns() const noexcept { return total_ns_; }
  [[nodiscard]] double total_s() const noexcept {
    return static_cast<double>(total_ns_) * 1e-9;
  }

 private:
  Timer window_;
  std::int64_t total_ns_ = 0;
};

}  // namespace grbsm::support
