#include "datagen/scale_table.hpp"

#include <string>

#include "grb/types.hpp"

namespace datagen {

const std::vector<ScaleSpec>& scale_table() {
  // Values transcribed from Table II. Approximate rows ("15k", "1.1M") use
  // the obvious expansion; insert counts are exact.
  static const std::vector<ScaleSpec> kTable = {
      {1, 1274, 2533, 67},       {2, 2071, 4207, 120},
      {4, 4350, 9118, 132},      {8, 7530, 18000, 104},
      {16, 15000, 35000, 110},   {32, 30000, 71000, 117},
      {64, 58000, 143000, 68},   {128, 115000, 287000, 86},
      {256, 225000, 568000, 45}, {512, 443000, 1100000, 112},
      {1024, 859000, 2300000, 74},
  };
  return kTable;
}

ScaleSpec spec_for(unsigned scale_factor) {
  for (const ScaleSpec& s : scale_table()) {
    if (s.scale_factor == scale_factor) return s;
  }
  throw grb::InvalidValue("no Table II row for scale factor " +
                          std::to_string(scale_factor));
}

}  // namespace datagen
