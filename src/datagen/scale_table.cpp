#include "datagen/scale_table.hpp"

#include <cmath>
#include <string>

#include "grb/types.hpp"

namespace datagen {

const std::vector<ScaleSpec>& scale_table() {
  // Values transcribed from Table II. Approximate rows ("15k", "1.1M") use
  // the obvious expansion; insert counts are exact.
  static const std::vector<ScaleSpec> kTable = {
      {1, 1274, 2533, 67},       {2, 2071, 4207, 120},
      {4, 4350, 9118, 132},      {8, 7530, 18000, 104},
      {16, 15000, 35000, 110},   {32, 30000, 71000, 117},
      {64, 58000, 143000, 68},   {128, 115000, 287000, 86},
      {256, 225000, 568000, 45}, {512, 443000, 1100000, 112},
      {1024, 859000, 2300000, 74},
  };
  return kTable;
}

namespace {

/// Least-squares power-law fit y ≈ c · sf^p over all eleven Table II rows
/// (log-log linear regression). Used to extrapolate the table beyond the
/// contest's largest dataset: node and edge counts track the scale factor
/// almost perfectly (p ≈ 0.94 and 0.99), which is exactly the shape the
/// LDBC generator promises.
struct PowerFit {
  double c = 0.0;
  double p = 0.0;

  [[nodiscard]] std::size_t at(unsigned sf) const {
    return static_cast<std::size_t>(
        std::llround(c * std::pow(static_cast<double>(sf), p)));
  }
};

/// Shared predicate for the extrapolation domain: powers of two strictly
/// above the last tabled row, up to kMaxScaleFactor.
bool in_extrapolation_range(unsigned scale_factor) noexcept {
  const unsigned max_tabled = scale_table().back().scale_factor;
  const bool power_of_two =
      scale_factor != 0 && (scale_factor & (scale_factor - 1)) == 0;
  return power_of_two && scale_factor > max_tabled &&
         scale_factor <= kMaxScaleFactor;
}

PowerFit fit_power_law(std::size_t ScaleSpec::* field) {
  const auto& table = scale_table();
  const double n = static_cast<double>(table.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (const ScaleSpec& s : table) {
    const double x = std::log(static_cast<double>(s.scale_factor));
    const double y = std::log(static_cast<double>(s.*field));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double p = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  const double c = std::exp((sy - p * sx) / n);
  return {c, p};
}

}  // namespace

bool is_extrapolated(unsigned scale_factor) noexcept {
  // Tabled rows all sit at or below the last row, so the range predicate
  // alone separates "transcribed" from "extrapolated".
  return in_extrapolation_range(scale_factor);
}

ScaleSpec extrapolated_spec(unsigned scale_factor) {
  if (!in_extrapolation_range(scale_factor)) {
    throw grb::InvalidValue(
        "extrapolated_spec: scale factor " + std::to_string(scale_factor) +
        " must be a power of two in (" +
        std::to_string(scale_table().back().scale_factor) + ", " +
        std::to_string(kMaxScaleFactor) + "]");
  }
  static const PowerFit node_fit = fit_power_law(&ScaleSpec::nodes);
  static const PowerFit edge_fit = fit_power_law(&ScaleSpec::edges);
  // The insert column does not scale with sf (the contest replays a
  // similarly sized change sequence at every scale); use the table mean.
  static const std::size_t insert_mean = [] {
    std::size_t sum = 0;
    for (const ScaleSpec& s : scale_table()) sum += s.inserts;
    return sum / scale_table().size();
  }();
  return {scale_factor, node_fit.at(scale_factor), edge_fit.at(scale_factor),
          insert_mean};
}

ScaleSpec spec_for(unsigned scale_factor) {
  for (const ScaleSpec& s : scale_table()) {
    if (s.scale_factor == scale_factor) return s;
  }
  if (is_extrapolated(scale_factor)) return extrapolated_spec(scale_factor);
  throw grb::InvalidValue("no Table II row for scale factor " +
                          std::to_string(scale_factor));
}

}  // namespace datagen
