// Synthetic dataset generator replacing the contest's fixed LDBC Datagen
// exports (which are not redistributable here). Produces an initial social
// graph plus an insert-only change sequence with:
//   * Facebook-like heavy-tailed degree distributions (Zipf samplers for
//     likes-per-comment, friends-per-user and comment-tree attachment),
//   * sizes calibrated to the paper's Table II per scale factor,
//   * full determinism from the seed (bit-identical datasets across runs).
//
// Element accounting matches the paper's example (Fig. 3b): inserting a
// comment counts as 3 elements (node + rootPost edge + commented edge);
// users, posts, likes and friendships count as 1 each.
#pragma once

#include <cstdint>

#include "datagen/scale_table.hpp"
#include "model/change.hpp"
#include "model/social_graph.hpp"

namespace datagen {

struct GeneratorParams {
  std::uint64_t seed = 42;

  // Initial graph composition.
  std::size_t users = 0;
  std::size_t posts = 0;
  std::size_t comments = 0;
  std::size_t friendships = 0;
  std::size_t likes = 0;

  // Update phase.
  std::size_t insert_elements = 0;  // weighted element target
  std::size_t change_sets = 10;

  // Distribution shape (Zipf exponents; higher = heavier head).
  double zipf_comment_popularity = 0.85;  // which comments attract likes
  double zipf_user_activity = 0.75;       // which users like / befriend
  double zipf_attachment = 0.6;           // recency bias of comment parents

  // Update mix (fractions of change *ops*; comments weigh 3 elements).
  double frac_comments = 0.18;
  double frac_likes = 0.38;
  double frac_friendships = 0.34;
  double frac_users = 0.10;

  /// Fraction of update ops aimed at a small set of "challenger" entities
  /// (runner-up posts/comments): like bursts onto hot comments, friendships
  /// between co-likers (which merge components and move Q2 scores
  /// quadratically), comment bursts under hot posts. This reproduces the
  /// contest workloads' property that the top-3 answers actually change
  /// during the update phase instead of being frozen by the Zipf head.
  double frac_contention = 0.5;
  std::size_t num_challengers = 3;

  /// Fraction of edge ops (likes / friendships) that are *removals* of
  /// existing edges — the paper's future-work item (1) ("more realistic
  /// update operations, including both insertions and removals"). 0 keeps
  /// the contest's insert-only workload.
  double frac_removals = 0.0;
};

/// Derives a parameter set hitting the Table II targets for a scale factor.
GeneratorParams params_for_scale(unsigned scale_factor,
                                 std::uint64_t seed = 42);

struct Dataset {
  sm::SocialGraph initial;
  std::vector<sm::ChangeSet> changes;
};

/// Generates the dataset. Deterministic in params (including seed).
Dataset generate(const GeneratorParams& params);

/// Weighted element count of a change sequence (Table II "#inserts" row):
/// AddComment = 3, everything else = 1.
std::size_t inserted_elements(const std::vector<sm::ChangeSet>& sets);

}  // namespace datagen
