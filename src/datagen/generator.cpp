#include "datagen/generator.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "support/log.hpp"
#include "support/rng.hpp"

namespace datagen {

using grbsm::support::Xoshiro256;
using grbsm::support::ZipfSampler;
using sm::NodeId;
using sm::Timestamp;

namespace {

/// External ids: a single global counter keeps ids unique across entity
/// classes (the contest files have per-class uniqueness; global is stricter).
class IdSource {
 public:
  NodeId next() noexcept { return next_++; }

 private:
  NodeId next_ = 1;
};

/// Zipf-ranked pick from a prefix of a population: rank 1 = most likely.
/// `order` maps rank-1-based positions to elements; we shuffle once so the
/// popular elements are random, not the oldest.
std::size_t zipf_pick(Xoshiro256& rng, const ZipfSampler& zipf,
                      std::size_t population) {
  // The sampler has a fixed domain; fold the draw into the population.
  const std::size_t raw = zipf.sample(rng);
  return (raw - 1) % population;
}

struct PairHash {
  std::size_t operator()(const std::pair<NodeId, NodeId>& p) const noexcept {
    // splitmix64-style mix of both ids; cheap and well distributed.
    std::uint64_t h = (static_cast<std::uint64_t>(p.first) << 32) ^
                      static_cast<std::uint64_t>(p.second);
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return static_cast<std::size_t>(h);
  }
};

/// The evolving edge population behind the sampler: a hash set for O(1)
/// membership / duplicate rejection plus a parallel vector for O(1) uniform
/// victim sampling (removal ops pick uniformly from the live edges).
class EdgeSet {
 public:
  bool insert(NodeId a, NodeId b) {
    if (!set_.emplace(a, b).second) return false;
    list_.emplace_back(a, b);
    return true;
  }

  std::optional<std::pair<NodeId, NodeId>> sample_and_remove(Xoshiro256& rng) {
    if (list_.empty()) return std::nullopt;
    const std::size_t k = rng.bounded(list_.size());
    const auto edge = list_[k];
    list_[k] = list_.back();
    list_.pop_back();
    set_.erase(edge);
    return edge;
  }

  [[nodiscard]] std::size_t size() const noexcept { return list_.size(); }

 private:
  std::unordered_set<std::pair<NodeId, NodeId>, PairHash> set_;
  std::vector<std::pair<NodeId, NodeId>> list_;
};

/// After this many consecutive duplicate hits a draw switches from the Zipf
/// head (which saturates first) to uniform endpoints. Near the clamped
/// saturation cap a uniform candidate is free with probability ≥ 1/8, so
/// the expected cost per placed edge stays O(1) at any fill level — no
/// rejection spiral, no retry-budget guard.
constexpr std::size_t kZipfMissLimit = 8;

/// Targets are clamped to 7/8 of the pair space: beyond that even uniform
/// rejection sampling degrades, and the Table II shapes never get close.
std::size_t clamp_to_pair_space(std::size_t target, std::size_t pair_space,
                                const char* what) {
  const std::size_t cap = pair_space - pair_space / 8;
  if (target > cap) {
    GRBSM_LOG_WARN << "datagen: " << what << " target " << target
                   << " clamped to " << cap << " (pair space " << pair_space
                   << ")";
    return cap;
  }
  return target;
}

}  // namespace

GeneratorParams params_for_scale(unsigned scale_factor, std::uint64_t seed) {
  const ScaleSpec spec = spec_for(scale_factor);
  GeneratorParams p;
  p.seed = seed ^ (0x9e3779b97f4a7c15ULL * (scale_factor + 1));

  // Composition: comments dominate (LDBC-like forum data). Each comment
  // contributes 2 edges (commented + rootPost); the remaining edge budget is
  // split between likes and friendships.
  p.posts = std::max<std::size_t>(std::size_t{3}, spec.nodes * 4 / 100);
  p.users = std::max<std::size_t>(std::size_t{5}, spec.nodes * 21 / 100);
  p.comments = spec.nodes - p.posts - p.users;
  const std::size_t structural = 2 * p.comments;
  const std::size_t remaining =
      spec.edges > structural ? spec.edges - structural : 0;
  p.likes = remaining * 55 / 100;
  p.friendships = remaining - p.likes;
  p.insert_elements = spec.inserts;
  p.change_sets = std::min<std::size_t>(10, std::max<std::size_t>(
                                                1, spec.inserts / 8));
  return p;
}

std::size_t inserted_elements(const std::vector<sm::ChangeSet>& sets) {
  std::size_t n = 0;
  for (const auto& cs : sets) {
    for (const auto& op : cs.ops) {
      n += std::holds_alternative<sm::AddComment>(op) ? 3 : 1;
    }
  }
  return n;
}

Dataset generate(const GeneratorParams& params) {
  if (params.users == 0 || params.posts == 0) {
    throw grb::InvalidValue("generator needs at least one user and one post");
  }
  Dataset ds;
  Xoshiro256 rng(params.seed);
  IdSource ids;
  Timestamp now = 1'300'000'000'000;  // ms epoch; grows monotonically

  std::vector<NodeId> user_ids;
  std::vector<NodeId> post_ids;
  std::vector<NodeId> comment_ids;
  user_ids.reserve(params.users);
  post_ids.reserve(params.posts);
  comment_ids.reserve(params.comments + 64);

  const auto tick = [&]() {
    now += 1 + static_cast<Timestamp>(rng.bounded(60'000));
    return now;
  };

  // --- initial graph ---------------------------------------------------------
  for (std::size_t i = 0; i < params.users; ++i) {
    const NodeId id = ids.next();
    ds.initial.add_user(id);
    user_ids.push_back(id);
  }
  for (std::size_t i = 0; i < params.posts; ++i) {
    const NodeId id = ids.next();
    ds.initial.add_post(id, tick());
    post_ids.push_back(id);
  }

  // Zipf samplers sized to the *final* populations; picks are folded into
  // the current population size so early draws remain valid.
  const ZipfSampler user_zipf(std::max<std::size_t>(1, params.users),
                              params.zipf_user_activity);
  const ZipfSampler comment_zipf(std::max<std::size_t>(1, params.comments),
                                 params.zipf_comment_popularity);
  const ZipfSampler attach_zipf(
      std::max<std::size_t>(1, params.comments + params.posts),
      params.zipf_attachment);

  // Comment forest: parents biased towards recent submissions (threads stay
  // active for a while, then die off) — classic preferential-recency model.
  for (std::size_t i = 0; i < params.comments; ++i) {
    const NodeId id = ids.next();
    const std::size_t population = post_ids.size() + comment_ids.size();
    // Rank 1 = most recent submission.
    const std::size_t back_offset = zipf_pick(rng, attach_zipf, population);
    const std::size_t pick = population - 1 - back_offset;
    bool parent_is_comment = pick >= post_ids.size();
    NodeId parent = parent_is_comment ? comment_ids[pick - post_ids.size()]
                                      : post_ids[pick];
    ds.initial.add_comment(id, tick(), parent_is_comment, parent);
    comment_ids.push_back(id);
  }

  // Edge populations, shared by the initial placement and the change
  // sequence. Keys: (user, comment) for likes, canonical (min, max) for
  // friendships. Every candidate below is O(1) — hash-set membership —
  // regardless of how saturated the graph is.
  EdgeSet like_edges;
  EdgeSet friend_edges;

  // Likes: heavy-tailed comment popularity × heavy-tailed user activity.
  // Draws fall back to uniform endpoints after kZipfMissLimit consecutive
  // duplicates, so a saturated Zipf head cannot stall placement; the
  // clamped target guarantees uniform candidates keep succeeding.
  if (!comment_ids.empty()) {
    const std::size_t target = clamp_to_pair_space(
        params.likes, comment_ids.size() * user_ids.size(), "like");
    std::size_t misses = 0;
    for (std::size_t made = 0; made < target;) {
      NodeId c, u;
      if (misses < kZipfMissLimit) {
        c = comment_ids[zipf_pick(rng, comment_zipf, comment_ids.size())];
        u = user_ids[zipf_pick(rng, user_zipf, user_ids.size())];
      } else {
        c = comment_ids[rng.bounded(comment_ids.size())];
        u = user_ids[rng.bounded(user_ids.size())];
      }
      if (like_edges.insert(u, c)) {
        ds.initial.add_likes_unchecked(u, c);
        ++made;
        misses = 0;
      } else {
        ++misses;
      }
    }
  }

  // Friendships: heavy-tailed activity on both endpoints, same scheme.
  if (user_ids.size() > 1) {
    const std::size_t target = clamp_to_pair_space(
        params.friendships, user_ids.size() * (user_ids.size() - 1) / 2,
        "friendship");
    std::size_t misses = 0;
    for (std::size_t made = 0; made < target;) {
      NodeId a, b;
      if (misses < kZipfMissLimit) {
        a = user_ids[zipf_pick(rng, user_zipf, user_ids.size())];
        b = user_ids[zipf_pick(rng, user_zipf, user_ids.size())];
      } else {
        a = user_ids[rng.bounded(user_ids.size())];
        b = user_ids[rng.bounded(user_ids.size())];
      }
      if (a == b) {
        ++misses;
        continue;
      }
      if (friend_edges.insert(std::min(a, b), std::max(a, b))) {
        ds.initial.add_friendship_unchecked(a, b);
        ++made;
        misses = 0;
      } else {
        ++misses;
      }
    }
  }

  // --- change sequence -------------------------------------------------------

  // Challenger entities: the runner-up comments/posts by the popularity
  // proxy (creation order == Zipf rank by construction). A `frac_contention`
  // share of update ops concentrates on these, so scores near the top move.
  const std::size_t ncha =
      std::max<std::size_t>(1, params.num_challengers);
  std::vector<NodeId> challenger_comments;
  std::vector<NodeId> challenger_posts;
  std::unordered_map<NodeId, std::vector<NodeId>> challenger_likers;
  {
    // Rank posts by their actual initial Q1 score and comments by their fan
    // size; the challengers are ranks 2..(1+ncha) — close enough to the top
    // that a concentrated burst can overtake rank 1.
    std::vector<std::pair<std::uint64_t, NodeId>> post_rank;
    for (const auto& p : ds.initial.posts()) {
      std::uint64_t score = 10 * p.comments.size();
      for (const auto c : p.comments) {
        score += ds.initial.comment(c).likers.size();
      }
      post_rank.emplace_back(score, p.id);
    }
    std::sort(post_rank.rbegin(), post_rank.rend());
    // Order challengers by how little they need to overtake the entity one
    // rank above them — concentrated bursts then actually flip the answer.
    std::vector<std::pair<std::uint64_t, NodeId>> post_gap;
    for (std::size_t k = 1; k <= ncha && k < post_rank.size(); ++k) {
      post_gap.emplace_back(post_rank[k - 1].first - post_rank[k].first,
                            post_rank[k].second);
    }
    std::sort(post_gap.begin(), post_gap.end());
    for (const auto& [gap, id] : post_gap) challenger_posts.push_back(id);

    std::vector<std::pair<std::size_t, NodeId>> comment_rank;
    for (const auto& c : ds.initial.comments()) {
      comment_rank.emplace_back(c.likers.size(), c.id);
    }
    std::sort(comment_rank.rbegin(), comment_rank.rend());
    for (std::size_t k = 1; k <= ncha && k < comment_rank.size(); ++k) {
      challenger_comments.push_back(comment_rank[k].second);
    }
  }
  // Weighted pick: the tightest-gap challenger draws half the contention.
  const auto pick_challenger = [&rng](const std::vector<NodeId>& xs) {
    const double r = rng.uniform01();
    std::size_t idx = r < 0.5 ? 0 : (r < 0.8 ? 1 : 2);
    if (idx >= xs.size()) idx = 0;
    return xs[idx];
  };
  for (const NodeId c : challenger_comments) {
    auto& likers = challenger_likers[c];
    const auto dense = ds.initial.find_comment(c);
    if (dense) {
      for (const auto u : ds.initial.comment(*dense).likers) {
        likers.push_back(ds.initial.user(u).id);
      }
    }
  }

  const std::size_t sets =
      std::max<std::size_t>(1, params.change_sets);
  std::size_t elements_left = params.insert_elements;
  const double fc = params.frac_comments;
  const double fl = fc + params.frac_likes;
  const double ff = fl + params.frac_friendships;

  for (std::size_t s = 0; s < sets; ++s) {
    sm::ChangeSet cs;
    // Spread the element budget evenly over the remaining sets.
    std::size_t budget =
        std::max<std::size_t>(1, elements_left / (sets - s));
    if (s + 1 == sets) budget = elements_left;  // last set takes the rest
    std::size_t used = 0;
    // Safety valve only: with hash-set duplicate rejection and uniform
    // fallback every edge draw is O(1) and succeeds with constant
    // probability, so this bound is unreachable outside degenerate
    // parameter sets (e.g. frac_removals = 1 with no live edges).
    std::size_t guard = 0;
    while (used < budget && ++guard < budget * 64 + 1024) {
      const double roll = rng.uniform01();
      const bool contend = rng.chance(params.frac_contention);
      if (roll < fc && used + 3 <= budget) {
        const NodeId id = ids.next();
        bool parent_is_comment;
        NodeId parent;
        if (contend && !challenger_posts.empty()) {
          // Comment burst directly under a challenger post (+10 each).
          // All post bursts go to the tightest-gap challenger: splitting
          // them across runner-ups cancels out (each gains at the same rate
          // as its rival above) and the answer never flips.
          parent_is_comment = false;
          parent = challenger_posts.front();
        } else {
          const std::size_t population = post_ids.size() + comment_ids.size();
          const std::size_t back_offset =
              zipf_pick(rng, attach_zipf, population);
          const std::size_t pick = population - 1 - back_offset;
          parent_is_comment = pick >= post_ids.size();
          parent = parent_is_comment ? comment_ids[pick - post_ids.size()]
                                     : post_ids[pick];
        }
        const NodeId submitter =
            user_ids[zipf_pick(rng, user_zipf, user_ids.size())];
        cs.ops.push_back(
            sm::AddComment{id, tick(), parent_is_comment, parent, submitter});
        comment_ids.push_back(id);
        used += 3;
      } else if (roll < fl && !comment_ids.empty()) {
        if (rng.chance(params.frac_removals)) {
          if (const auto victim = like_edges.sample_and_remove(rng)) {
            cs.ops.push_back(sm::RemoveLikes{victim->first, victim->second});
            used += 1;
          }
          continue;
        }
        // First candidate keeps the contention/Zipf shape; duplicate hits
        // retry with uniform endpoints so a saturated head never stalls.
        for (std::size_t t = 0; t <= kZipfMissLimit; ++t) {
          const NodeId c =
              t > 0 ? comment_ids[rng.bounded(comment_ids.size())]
              : contend && !challenger_comments.empty()
                  ? pick_challenger(challenger_comments)
                  : comment_ids[zipf_pick(rng, comment_zipf,
                                          comment_ids.size())];
          const NodeId u =
              t > 0 ? user_ids[rng.bounded(user_ids.size())]
                    : user_ids[zipf_pick(rng, user_zipf, user_ids.size())];
          if (like_edges.insert(u, c)) {
            cs.ops.push_back(sm::AddLikes{u, c});
            const auto it = challenger_likers.find(c);
            if (it != challenger_likers.end()) it->second.push_back(u);
            used += 1;
            break;
          }
        }
      } else if (roll < ff) {
        if (rng.chance(params.frac_removals)) {
          if (const auto victim = friend_edges.sample_and_remove(rng)) {
            cs.ops.push_back(
                sm::RemoveFriendship{victim->first, victim->second});
            used += 1;
          }
          continue;
        }
        for (std::size_t t = 0; t <= kZipfMissLimit; ++t) {
          NodeId a, b;
          if (t == 0 && contend && !challenger_comments.empty()) {
            // Befriend two co-likers of a challenger comment — merges their
            // components, so its Q2 score grows quadratically.
            const NodeId c = pick_challenger(challenger_comments);
            const auto& likers = challenger_likers[c];
            if (likers.size() < 2) break;
            a = likers[rng.bounded(likers.size())];
            b = likers[rng.bounded(likers.size())];
          } else if (t == 0) {
            a = user_ids[zipf_pick(rng, user_zipf, user_ids.size())];
            b = user_ids[zipf_pick(rng, user_zipf, user_ids.size())];
          } else {
            a = user_ids[rng.bounded(user_ids.size())];
            b = user_ids[rng.bounded(user_ids.size())];
          }
          if (a != b &&
              friend_edges.insert(std::min(a, b), std::max(a, b))) {
            cs.ops.push_back(sm::AddFriendship{a, b});
            used += 1;
            break;
          }
        }
      } else {
        const NodeId id = ids.next();
        cs.ops.push_back(sm::AddUser{id});
        user_ids.push_back(id);
        used += 1;
      }
    }
    elements_left -= std::min(elements_left, used);
    ds.changes.push_back(std::move(cs));
    if (elements_left == 0) break;
  }
  return ds;
}

}  // namespace datagen
