#include "datagen/generator.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "support/log.hpp"
#include "support/rng.hpp"

namespace datagen {

using grbsm::support::Xoshiro256;
using grbsm::support::ZipfSampler;
using sm::NodeId;
using sm::Timestamp;

namespace {

/// External ids: a single global counter keeps ids unique across entity
/// classes (the contest files have per-class uniqueness; global is stricter).
class IdSource {
 public:
  NodeId next() noexcept { return next_++; }

 private:
  NodeId next_ = 1;
};

/// Zipf-ranked pick from a prefix of a population: rank 1 = most likely.
/// `order` maps rank-1-based positions to elements; we shuffle once so the
/// popular elements are random, not the oldest.
std::size_t zipf_pick(Xoshiro256& rng, const ZipfSampler& zipf,
                      std::size_t population) {
  // The sampler has a fixed domain; fold the draw into the population.
  const std::size_t raw = zipf.sample(rng);
  return (raw - 1) % population;
}

}  // namespace

GeneratorParams params_for_scale(unsigned scale_factor, std::uint64_t seed) {
  const ScaleSpec spec = spec_for(scale_factor);
  GeneratorParams p;
  p.seed = seed ^ (0x9e3779b97f4a7c15ULL * (scale_factor + 1));

  // Composition: comments dominate (LDBC-like forum data). Each comment
  // contributes 2 edges (commented + rootPost); the remaining edge budget is
  // split between likes and friendships.
  p.posts = std::max<std::size_t>(std::size_t{3}, spec.nodes * 4 / 100);
  p.users = std::max<std::size_t>(std::size_t{5}, spec.nodes * 21 / 100);
  p.comments = spec.nodes - p.posts - p.users;
  const std::size_t structural = 2 * p.comments;
  const std::size_t remaining =
      spec.edges > structural ? spec.edges - structural : 0;
  p.likes = remaining * 55 / 100;
  p.friendships = remaining - p.likes;
  p.insert_elements = spec.inserts;
  p.change_sets = std::min<std::size_t>(10, std::max<std::size_t>(
                                                1, spec.inserts / 8));
  return p;
}

std::size_t inserted_elements(const std::vector<sm::ChangeSet>& sets) {
  std::size_t n = 0;
  for (const auto& cs : sets) {
    for (const auto& op : cs.ops) {
      n += std::holds_alternative<sm::AddComment>(op) ? 3 : 1;
    }
  }
  return n;
}

Dataset generate(const GeneratorParams& params) {
  if (params.users == 0 || params.posts == 0) {
    throw grb::InvalidValue("generator needs at least one user and one post");
  }
  Dataset ds;
  Xoshiro256 rng(params.seed);
  IdSource ids;
  Timestamp now = 1'300'000'000'000;  // ms epoch; grows monotonically

  std::vector<NodeId> user_ids;
  std::vector<NodeId> post_ids;
  std::vector<NodeId> comment_ids;
  user_ids.reserve(params.users);
  post_ids.reserve(params.posts);
  comment_ids.reserve(params.comments + 64);

  const auto tick = [&]() {
    now += 1 + static_cast<Timestamp>(rng.bounded(60'000));
    return now;
  };

  // --- initial graph ---------------------------------------------------------
  for (std::size_t i = 0; i < params.users; ++i) {
    const NodeId id = ids.next();
    ds.initial.add_user(id);
    user_ids.push_back(id);
  }
  for (std::size_t i = 0; i < params.posts; ++i) {
    const NodeId id = ids.next();
    ds.initial.add_post(id, tick());
    post_ids.push_back(id);
  }

  // Zipf samplers sized to the *final* populations; picks are folded into
  // the current population size so early draws remain valid.
  const ZipfSampler user_zipf(std::max<std::size_t>(1, params.users),
                              params.zipf_user_activity);
  const ZipfSampler comment_zipf(std::max<std::size_t>(1, params.comments),
                                 params.zipf_comment_popularity);
  const ZipfSampler attach_zipf(
      std::max<std::size_t>(1, params.comments + params.posts),
      params.zipf_attachment);

  // Comment forest: parents biased towards recent submissions (threads stay
  // active for a while, then die off) — classic preferential-recency model.
  for (std::size_t i = 0; i < params.comments; ++i) {
    const NodeId id = ids.next();
    const std::size_t population = post_ids.size() + comment_ids.size();
    // Rank 1 = most recent submission.
    const std::size_t back_offset = zipf_pick(rng, attach_zipf, population);
    const std::size_t pick = population - 1 - back_offset;
    bool parent_is_comment = pick >= post_ids.size();
    NodeId parent = parent_is_comment ? comment_ids[pick - post_ids.size()]
                                      : post_ids[pick];
    ds.initial.add_comment(id, tick(), parent_is_comment, parent);
    comment_ids.push_back(id);
  }

  // Likes: heavy-tailed comment popularity × heavy-tailed user activity.
  std::size_t made = 0;
  if (!comment_ids.empty()) {
    for (std::size_t attempts = 0;
         made < params.likes && attempts < params.likes * 20; ++attempts) {
      const NodeId c =
          comment_ids[zipf_pick(rng, comment_zipf, comment_ids.size())];
      const NodeId u = user_ids[zipf_pick(rng, user_zipf, user_ids.size())];
      if (ds.initial.add_likes(u, c)) ++made;
    }
    if (made < params.likes) {
      GRBSM_LOG_WARN << "datagen: like target " << params.likes
                     << " not met (" << made
                     << " placed) — duplicate rejection exhausted attempts";
    }
  }

  // Friendships: heavy-tailed activity on both endpoints.
  made = 0;
  for (std::size_t attempts = 0;
       made < params.friendships && attempts < params.friendships * 20;
       ++attempts) {
    const NodeId a = user_ids[zipf_pick(rng, user_zipf, user_ids.size())];
    const NodeId b = user_ids[zipf_pick(rng, user_zipf, user_ids.size())];
    if (a == b) continue;
    if (ds.initial.add_friendship(a, b)) ++made;
  }
  if (made < params.friendships) {
    GRBSM_LOG_WARN << "datagen: friendship target " << params.friendships
                   << " not met (" << made << " placed)";
  }

  // --- change sequence -------------------------------------------------------
  // Tracks the evolving edge population: a set for duplicate rejection plus
  // a parallel vector for O(1) random sampling (removal ops pick victims
  // uniformly from the live edges).
  std::set<std::pair<NodeId, NodeId>> like_edges;
  std::set<std::pair<NodeId, NodeId>> friend_edges;
  std::vector<std::pair<NodeId, NodeId>> like_list;
  std::vector<std::pair<NodeId, NodeId>> friend_list;
  for (const auto& c : ds.initial.comments()) {
    for (const auto u : c.likers) {
      like_edges.emplace(ds.initial.user(u).id, c.id);
      like_list.emplace_back(ds.initial.user(u).id, c.id);
    }
  }
  for (const auto& u : ds.initial.users()) {
    for (const auto f : u.friends) {
      const NodeId a = u.id, b = ds.initial.user(f).id;
      if (friend_edges.emplace(std::min(a, b), std::max(a, b)).second) {
        friend_list.emplace_back(std::min(a, b), std::max(a, b));
      }
    }
  }
  const auto sample_and_remove =
      [&rng](std::set<std::pair<NodeId, NodeId>>& edges,
             std::vector<std::pair<NodeId, NodeId>>& list)
      -> std::optional<std::pair<NodeId, NodeId>> {
    if (list.empty()) return std::nullopt;
    const std::size_t k = rng.bounded(list.size());
    const auto edge = list[k];
    list[k] = list.back();
    list.pop_back();
    edges.erase(edge);
    return edge;
  };

  // Challenger entities: the runner-up comments/posts by the popularity
  // proxy (creation order == Zipf rank by construction). A `frac_contention`
  // share of update ops concentrates on these, so scores near the top move.
  const std::size_t ncha =
      std::max<std::size_t>(1, params.num_challengers);
  std::vector<NodeId> challenger_comments;
  std::vector<NodeId> challenger_posts;
  std::unordered_map<NodeId, std::vector<NodeId>> challenger_likers;
  {
    // Rank posts by their actual initial Q1 score and comments by their fan
    // size; the challengers are ranks 2..(1+ncha) — close enough to the top
    // that a concentrated burst can overtake rank 1.
    std::vector<std::pair<std::uint64_t, NodeId>> post_rank;
    for (const auto& p : ds.initial.posts()) {
      std::uint64_t score = 10 * p.comments.size();
      for (const auto c : p.comments) {
        score += ds.initial.comment(c).likers.size();
      }
      post_rank.emplace_back(score, p.id);
    }
    std::sort(post_rank.rbegin(), post_rank.rend());
    // Order challengers by how little they need to overtake the entity one
    // rank above them — concentrated bursts then actually flip the answer.
    std::vector<std::pair<std::uint64_t, NodeId>> post_gap;
    for (std::size_t k = 1; k <= ncha && k < post_rank.size(); ++k) {
      post_gap.emplace_back(post_rank[k - 1].first - post_rank[k].first,
                            post_rank[k].second);
    }
    std::sort(post_gap.begin(), post_gap.end());
    for (const auto& [gap, id] : post_gap) challenger_posts.push_back(id);

    std::vector<std::pair<std::size_t, NodeId>> comment_rank;
    for (const auto& c : ds.initial.comments()) {
      comment_rank.emplace_back(c.likers.size(), c.id);
    }
    std::sort(comment_rank.rbegin(), comment_rank.rend());
    for (std::size_t k = 1; k <= ncha && k < comment_rank.size(); ++k) {
      challenger_comments.push_back(comment_rank[k].second);
    }
  }
  // Weighted pick: the tightest-gap challenger draws half the contention.
  const auto pick_challenger = [&rng](const std::vector<NodeId>& xs) {
    const double r = rng.uniform01();
    std::size_t idx = r < 0.5 ? 0 : (r < 0.8 ? 1 : 2);
    if (idx >= xs.size()) idx = 0;
    return xs[idx];
  };
  for (const NodeId c : challenger_comments) {
    auto& likers = challenger_likers[c];
    const auto dense = ds.initial.find_comment(c);
    if (dense) {
      for (const auto u : ds.initial.comment(*dense).likers) {
        likers.push_back(ds.initial.user(u).id);
      }
    }
  }

  const std::size_t sets =
      std::max<std::size_t>(1, params.change_sets);
  std::size_t elements_left = params.insert_elements;
  const double fc = params.frac_comments;
  const double fl = fc + params.frac_likes;
  const double ff = fl + params.frac_friendships;

  for (std::size_t s = 0; s < sets; ++s) {
    sm::ChangeSet cs;
    // Spread the element budget evenly over the remaining sets.
    std::size_t budget =
        std::max<std::size_t>(1, elements_left / (sets - s));
    if (s + 1 == sets) budget = elements_left;  // last set takes the rest
    std::size_t used = 0;
    std::size_t guard = 0;
    while (used < budget && ++guard < budget * 50 + 100) {
      const double roll = rng.uniform01();
      const bool contend = rng.chance(params.frac_contention);
      if (roll < fc && used + 3 <= budget) {
        const NodeId id = ids.next();
        bool parent_is_comment;
        NodeId parent;
        if (contend && !challenger_posts.empty()) {
          // Comment burst directly under a challenger post (+10 each).
          // All post bursts go to the tightest-gap challenger: splitting
          // them across runner-ups cancels out (each gains at the same rate
          // as its rival above) and the answer never flips.
          parent_is_comment = false;
          parent = challenger_posts.front();
        } else {
          const std::size_t population = post_ids.size() + comment_ids.size();
          const std::size_t back_offset =
              zipf_pick(rng, attach_zipf, population);
          const std::size_t pick = population - 1 - back_offset;
          parent_is_comment = pick >= post_ids.size();
          parent = parent_is_comment ? comment_ids[pick - post_ids.size()]
                                     : post_ids[pick];
        }
        const NodeId submitter =
            user_ids[zipf_pick(rng, user_zipf, user_ids.size())];
        cs.ops.push_back(
            sm::AddComment{id, tick(), parent_is_comment, parent, submitter});
        comment_ids.push_back(id);
        used += 3;
      } else if (roll < fl && !comment_ids.empty()) {
        if (rng.chance(params.frac_removals)) {
          if (const auto victim = sample_and_remove(like_edges, like_list)) {
            cs.ops.push_back(sm::RemoveLikes{victim->first, victim->second});
            used += 1;
          }
          continue;
        }
        const NodeId c =
            contend && !challenger_comments.empty()
                ? pick_challenger(challenger_comments)
                : comment_ids[zipf_pick(rng, comment_zipf,
                                        comment_ids.size())];
        const NodeId u = user_ids[zipf_pick(rng, user_zipf, user_ids.size())];
        if (like_edges.emplace(u, c).second) {
          like_list.emplace_back(u, c);
          cs.ops.push_back(sm::AddLikes{u, c});
          const auto it = challenger_likers.find(c);
          if (it != challenger_likers.end()) it->second.push_back(u);
          used += 1;
        }
      } else if (roll < ff) {
        if (rng.chance(params.frac_removals)) {
          if (const auto victim =
                  sample_and_remove(friend_edges, friend_list)) {
            cs.ops.push_back(
                sm::RemoveFriendship{victim->first, victim->second});
            used += 1;
          }
          continue;
        }
        NodeId a, b;
        if (contend && !challenger_comments.empty()) {
          // Befriend two co-likers of a challenger comment — merges their
          // components, so its Q2 score grows quadratically.
          const NodeId c = pick_challenger(challenger_comments);
          const auto& likers = challenger_likers[c];
          if (likers.size() < 2) continue;
          a = likers[rng.bounded(likers.size())];
          b = likers[rng.bounded(likers.size())];
        } else {
          a = user_ids[zipf_pick(rng, user_zipf, user_ids.size())];
          b = user_ids[zipf_pick(rng, user_zipf, user_ids.size())];
        }
        if (a != b &&
            friend_edges.emplace(std::min(a, b), std::max(a, b)).second) {
          friend_list.emplace_back(std::min(a, b), std::max(a, b));
          cs.ops.push_back(sm::AddFriendship{a, b});
          used += 1;
        }
      } else {
        const NodeId id = ids.next();
        cs.ops.push_back(sm::AddUser{id});
        user_ids.push_back(id);
        used += 1;
      }
    }
    elements_left -= std::min(elements_left, used);
    ds.changes.push_back(std::move(cs));
    if (elements_left == 0) break;
  }
  return ds;
}

}  // namespace datagen
