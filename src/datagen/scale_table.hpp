// Table II of the paper: per-scale-factor dataset sizes of the contest's
// LDBC-generated graphs. The generator is calibrated against these targets
// so the benchmark sweeps the same x-axis as Fig. 5.
#pragma once

#include <cstddef>
#include <vector>

namespace datagen {

struct ScaleSpec {
  unsigned scale_factor = 1;
  /// Target #nodes (users + posts + comments), Table II row 1.
  std::size_t nodes = 0;
  /// Target #edges (friends + likes + commented + rootPost), row 2.
  std::size_t edges = 0;
  /// Target #inserted elements across the whole change sequence, row 3
  /// (element accounting: a new comment = node + rootPost + commented = 3).
  std::size_t inserts = 0;
};

/// The eleven rows of Table II (scale factors 1..1024).
const std::vector<ScaleSpec>& scale_table();

/// Spec for one scale factor; throws grb::InvalidValue if sf is not a row
/// of Table II (powers of two, 1..1024).
ScaleSpec spec_for(unsigned scale_factor);

}  // namespace datagen
