// Table II of the paper: per-scale-factor dataset sizes of the contest's
// LDBC-generated graphs. The generator is calibrated against these targets
// so the benchmark sweeps the same x-axis as Fig. 5.
#pragma once

#include <cstddef>
#include <vector>

namespace datagen {

struct ScaleSpec {
  unsigned scale_factor = 1;
  /// Target #nodes (users + posts + comments), Table II row 1.
  std::size_t nodes = 0;
  /// Target #edges (friends + likes + commented + rootPost), row 2.
  std::size_t edges = 0;
  /// Target #inserted elements across the whole change sequence, row 3
  /// (element accounting: a new comment = node + rootPost + commented = 3).
  std::size_t inserts = 0;
};

/// The eleven rows of Table II (scale factors 1..1024).
const std::vector<ScaleSpec>& scale_table();

/// Largest scale factor spec_for will extrapolate to beyond Table II.
inline constexpr unsigned kMaxScaleFactor = 65536;

/// Spec for one scale factor. Scale factors in Table II (powers of two,
/// 1..1024) return the transcribed row; larger powers of two up to
/// kMaxScaleFactor return a Table-II-style extrapolation (power-law fit of
/// the node/edge columns over all eleven rows, table-mean insert count).
/// Anything else throws grb::InvalidValue.
ScaleSpec spec_for(unsigned scale_factor);

/// The extrapolation itself (power-of-two sf in (1024, kMaxScaleFactor]);
/// throws grb::InvalidValue outside that range.
ScaleSpec extrapolated_spec(unsigned scale_factor);

/// True when spec_for(scale_factor) would extrapolate rather than read a
/// transcribed Table II row; false for tabled rows and for scale factors
/// spec_for rejects.
bool is_extrapolated(unsigned scale_factor) noexcept;

}  // namespace datagen
