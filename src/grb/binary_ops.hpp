// Built-in unary, binary and index-aware select operators, mirroring the
// GrB_BinaryOp / GrB_UnaryOp / GxB_SelectOp catalogues the paper's solution
// uses. All are stateless function objects so kernels inline them fully.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

#include "grb/types.hpp"

namespace grb {

// ---------------------------------------------------------------------------
// Binary operators (GrB_BinaryOp)
// ---------------------------------------------------------------------------

/// z = x (GrB_FIRST): keeps the left operand. Useful as a "new value wins /
/// old value wins" duplicate policy in build().
template <typename T>
struct First {
  constexpr T operator()(const T& x, const T&) const noexcept { return x; }
};

/// z = y (GrB_SECOND): keeps the right operand; the multiplicative op of the
/// min_second semiring used by FastSV.
template <typename T>
struct Second {
  constexpr T operator()(const T&, const T& y) const noexcept { return y; }
};

/// z = x + y (GrB_PLUS).
template <typename T>
struct Plus {
  static constexpr T identity() noexcept { return T{0}; }
  constexpr T operator()(const T& x, const T& y) const noexcept {
    return x + y;
  }
};

/// z = x - y (GrB_MINUS).
template <typename T>
struct Minus {
  constexpr T operator()(const T& x, const T& y) const noexcept {
    return x - y;
  }
};

/// z = x * y (GrB_TIMES).
template <typename T>
struct Times {
  static constexpr T identity() noexcept { return T{1}; }
  constexpr T operator()(const T& x, const T& y) const noexcept {
    return x * y;
  }
};

/// z = min(x, y) (GrB_MIN).
template <typename T>
struct Min {
  static constexpr T identity() noexcept {
    return std::numeric_limits<T>::max();
  }
  constexpr T operator()(const T& x, const T& y) const noexcept {
    return y < x ? y : x;
  }
};

/// z = max(x, y) (GrB_MAX).
template <typename T>
struct Max {
  static constexpr T identity() noexcept {
    return std::numeric_limits<T>::lowest();
  }
  constexpr T operator()(const T& x, const T& y) const noexcept {
    return x < y ? y : x;
  }
};

/// z = x || y (GrB_LOR) over any arithmetic type, result in {0, 1}.
template <typename T>
struct LOr {
  static constexpr T identity() noexcept { return T{0}; }
  constexpr T operator()(const T& x, const T& y) const noexcept {
    return static_cast<T>(static_cast<bool>(x) || static_cast<bool>(y));
  }
};

/// z = x && y (GrB_LAND).
template <typename T>
struct LAnd {
  static constexpr T identity() noexcept { return T{1}; }
  constexpr T operator()(const T& x, const T& y) const noexcept {
    return static_cast<T>(static_cast<bool>(x) && static_cast<bool>(y));
  }
};

/// z = x XOR y (GrB_LXOR).
template <typename T>
struct LXor {
  static constexpr T identity() noexcept { return T{0}; }
  constexpr T operator()(const T& x, const T& y) const noexcept {
    return static_cast<T>(static_cast<bool>(x) != static_cast<bool>(y));
  }
};

/// z = 1 regardless of operands (GxB_PAIR / GrB_ONEB): the multiplicative op
/// of the plus_pair semiring, which counts structural matches.
template <typename T>
struct Pair {
  constexpr T operator()(const T&, const T&) const noexcept { return T{1}; }
};

/// z = (x == y) (GrB_EQ), result in {0, 1}.
template <typename T>
struct Eq {
  constexpr T operator()(const T& x, const T& y) const noexcept {
    return static_cast<T>(x == y);
  }
};

// ---------------------------------------------------------------------------
// Unary operators (GrB_UnaryOp), including scalar-bound binary ops, which is
// how the paper's Alg. 1 line 7 ("apply mul-by-10 op") is expressed.
// ---------------------------------------------------------------------------

/// z = x (GrB_IDENTITY).
template <typename T>
struct Identity {
  constexpr T operator()(const T& x) const noexcept { return x; }
};

/// z = -x (GrB_AINV).
template <typename T>
struct AInv {
  constexpr T operator()(const T& x) const noexcept { return static_cast<T>(-x); }
};

/// z = 1 for any present entry (GxB_ONE): pattern-to-ones conversion.
template <typename T>
struct One {
  constexpr T operator()(const T&) const noexcept { return T{1}; }
};

/// z = s * x — GrB_TIMES bound to a scalar (GxB "binop bound to scalar").
template <typename T>
struct TimesScalar {
  T scalar;
  constexpr T operator()(const T& x) const noexcept { return scalar * x; }
};

/// z = s + x.
template <typename T>
struct PlusScalar {
  T scalar;
  constexpr T operator()(const T& x) const noexcept { return scalar + x; }
};

// ---------------------------------------------------------------------------
// Select operators (GxB_SelectOp): predicates over (i, j, value). The Q2
// incremental algorithm's Step 2 keeps cells whose value equals 2.
// ---------------------------------------------------------------------------

/// Keep entries whose value equals the threshold (GxB select with EQ).
template <typename T>
struct ValueEq {
  T threshold;
  constexpr bool operator()(Index, Index, const T& v) const noexcept {
    return v == threshold;
  }
};

/// Keep entries whose value differs from the threshold.
template <typename T>
struct ValueNe {
  T threshold;
  constexpr bool operator()(Index, Index, const T& v) const noexcept {
    return v != threshold;
  }
};

/// Keep entries with value > threshold (GxB_GT_THUNK).
template <typename T>
struct ValueGt {
  T threshold;
  constexpr bool operator()(Index, Index, const T& v) const noexcept {
    return v > threshold;
  }
};

/// Keep entries with value >= threshold (GxB_GE_THUNK).
template <typename T>
struct ValueGe {
  T threshold;
  constexpr bool operator()(Index, Index, const T& v) const noexcept {
    return v >= threshold;
  }
};

/// Keep truthy entries (GxB_NONZERO).
template <typename T>
struct NonZero {
  constexpr bool operator()(Index, Index, const T& v) const noexcept {
    return static_cast<bool>(v);
  }
};

/// Keep strictly-lower-triangular entries (GxB_TRIL with k = -1): used to
/// canonicalise symmetric friendship matrices into one edge per pair.
template <typename T>
struct StrictLower {
  constexpr bool operator()(Index i, Index j, const T&) const noexcept {
    return j < i;
  }
};

/// Keep strictly-upper-triangular entries (GxB_TRIU with k = +1).
template <typename T>
struct StrictUpper {
  constexpr bool operator()(Index i, Index j, const T&) const noexcept {
    return j > i;
  }
};

/// Keep off-diagonal entries (GxB_OFFDIAG).
template <typename T>
struct OffDiag {
  constexpr bool operator()(Index i, Index j, const T&) const noexcept {
    return i != j;
  }
};

}  // namespace grb
