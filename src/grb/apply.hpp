// GrB_apply: apply a unary operator to every stored entry. The paper uses
// this for the "multiply by 10" step of Q1 (Alg. 1 line 7, Alg. 2 line 10).
#pragma once

#include <algorithm>
#include <utility>

#include "grb/detail/csr_builder.hpp"
#include "grb/detail/parallel.hpp"
#include "grb/detail/sparse_builder.hpp"
#include "grb/detail/write_back.hpp"
#include "grb/matrix.hpp"
#include "grb/types.hpp"
#include "grb/vector.hpp"

namespace grb {

namespace detail {

template <typename W, typename UnaryOp, typename U>
Vector<W> apply_compute(UnaryOp op, const Vector<U>& u) {
  // Pattern-preserving, so the symbolic pass is trivial: chunking u's entry
  // positions, each range holds exactly its own length. The numeric pass
  // copies indices and maps values through op, both in parallel.
  const auto ui = u.indices();
  const auto uv = u.values();
  return build_sparse<W>(
      u.size(), static_cast<Index>(ui.size()),
      [](Index lo, Index hi) { return hi - lo; },
      [&](Index lo, Index hi, std::span<Index> idx, std::span<W> val) {
        for (Index k = lo; k < hi; ++k) {
          idx[k - lo] = ui[k];
          val[k - lo] = static_cast<W>(op(uv[k]));
        }
      },
      static_cast<Index>(ui.size()));
}

template <typename W, typename UnaryOp, typename U>
Matrix<W> apply_compute(UnaryOp op, const Matrix<U>& a) {
  // The output pattern is the input pattern, so the symbolic pass is just
  // the input row degrees; numeric copies each row mapping values through op.
  return build_csr<W>(
      a.nrows(), a.ncols(), [&](Index i) { return a.row_degree(i); },
      [&](Index i, std::span<Index> cols, std::span<W> vals) {
        const auto ai = a.row_cols(i);
        const auto av = a.row_vals(i);
        std::copy(ai.begin(), ai.end(), cols.begin());
        for (std::size_t k = 0; k < av.size(); ++k) {
          vals[k] = static_cast<W>(op(av[k]));
        }
      },
      a.nvals());
}

}  // namespace detail

/// w = f(u).
template <typename W, typename UnaryOp, typename U>
void apply(Vector<W>& w, UnaryOp op, const Vector<U>& u) {
  auto t = detail::apply_compute<W>(op, u);
  detail::write_back(w, static_cast<const Vector<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// w<m> (+)= f(u).
template <typename W, typename M, typename Accum, typename UnaryOp,
          typename U>
void apply(Vector<W>& w, const Vector<M>* mask, Accum accum, UnaryOp op,
           const Vector<U>& u, const Descriptor& desc = {}) {
  auto t = detail::apply_compute<W>(op, u);
  detail::write_back(w, mask, accum, desc, std::move(t));
}

/// C = f(A).
template <typename W, typename UnaryOp, typename U>
void apply(Matrix<W>& c, UnaryOp op, const Matrix<U>& a) {
  auto t = detail::apply_compute<W>(op, a);
  detail::write_back(c, static_cast<const Matrix<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// C<M> (+)= f(A).
template <typename W, typename M, typename Accum, typename UnaryOp,
          typename U>
void apply(Matrix<W>& c, const Matrix<M>* mask, Accum accum, UnaryOp op,
           const Matrix<U>& a, const Descriptor& desc = {}) {
  auto t = detail::apply_compute<W>(op, a);
  detail::write_back(c, mask, accum, desc, std::move(t));
}

}  // namespace grb
