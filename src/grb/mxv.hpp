// Matrix-vector products over a semiring: GrB_mxv (w = A ⊕.⊗ u) and
// GrB_vxm (wᵀ = uᵀ ⊕.⊗ A). Alg. 1 line 8 (likesScore = RootPost ⊕.⊗
// likesCount) is an mxv with the plus_second semiring; FastSV's hooking step
// is an mxv with min_second.
//
// mxv uses the gather (dot-product) formulation: the right operand is
// scattered into a dense buffer once, then rows are processed independently
// in parallel. vxm uses the scatter (outer-product) formulation with
// per-thread sparse accumulators merged under the additive monoid.
#pragma once

#include <utility>

#include "grb/detail/parallel.hpp"
#include "grb/detail/write_back.hpp"
#include "grb/matrix.hpp"
#include "grb/semiring.hpp"
#include "grb/types.hpp"
#include "grb/vector.hpp"

namespace grb {

namespace detail {

template <typename W, typename SR, typename A, typename U>
Vector<W> mxv_compute(const SR& sr, const Matrix<A>& a, const Vector<U>& u) {
  if (a.ncols() != u.size()) {
    throw DimensionMismatch("mxv: A is " + std::to_string(a.nrows()) + "x" +
                            std::to_string(a.ncols()) + ", u has size " +
                            std::to_string(u.size()));
  }
  // Scatter u into dense (value, present) arrays.
  std::vector<W> uval(a.ncols());
  std::vector<unsigned char> upresent(a.ncols(), 0);
  {
    const auto ui = u.indices();
    const auto uv = u.values();
    for (std::size_t k = 0; k < ui.size(); ++k) {
      uval[ui[k]] = static_cast<W>(uv[k]);
      upresent[ui[k]] = 1;
    }
  }
  std::vector<W> acc(a.nrows());
  std::vector<unsigned char> hit(a.nrows(), 0);
  parallel_for(
      a.nrows(),
      [&](Index i) {
        const auto cols = a.row_cols(i);
        const auto vals = a.row_vals(i);
        bool any = false;
        W s{};
        for (std::size_t k = 0; k < cols.size(); ++k) {
          const Index j = cols[k];
          if (!upresent[j]) continue;
          const W prod =
              static_cast<W>(sr.mul(static_cast<W>(vals[k]), uval[j]));
          s = any ? static_cast<W>(sr.add(s, prod)) : prod;
          any = true;
        }
        if (any) {
          acc[i] = s;
          hit[i] = 1;
        }
      },
      a.nvals());
  std::vector<Index> oi;
  std::vector<W> ov;
  for (Index i = 0; i < a.nrows(); ++i) {
    if (hit[i]) {
      oi.push_back(i);
      ov.push_back(acc[i]);
    }
  }
  return Vector<W>::adopt_sorted(a.nrows(), std::move(oi), std::move(ov));
}

template <typename W, typename SR, typename U, typename A>
Vector<W> vxm_compute(const SR& sr, const Vector<U>& u, const Matrix<A>& a) {
  if (a.nrows() != u.size()) {
    throw DimensionMismatch("vxm: u has size " + std::to_string(u.size()) +
                            ", A is " + std::to_string(a.nrows()) + "x" +
                            std::to_string(a.ncols()));
  }
  const auto ui = u.indices();
  const auto uv = u.values();
  std::vector<W> acc(a.ncols());
  std::vector<unsigned char> hit(a.ncols(), 0);
  // Serial scatter: per-update frontiers are small; BFS levels on large
  // graphs dominate via the row scans, not this loop.
  for (std::size_t k = 0; k < ui.size(); ++k) {
    const Index i = ui[k];
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t t = 0; t < cols.size(); ++t) {
      const Index j = cols[t];
      const W prod = static_cast<W>(
          sr.mul(static_cast<W>(uv[k]), static_cast<W>(vals[t])));
      if (hit[j]) {
        acc[j] = static_cast<W>(sr.add(acc[j], prod));
      } else {
        acc[j] = prod;
        hit[j] = 1;
      }
    }
  }
  std::vector<Index> oi;
  std::vector<W> ov;
  for (Index j = 0; j < a.ncols(); ++j) {
    if (hit[j]) {
      oi.push_back(j);
      ov.push_back(acc[j]);
    }
  }
  return Vector<W>::adopt_sorted(a.ncols(), std::move(oi), std::move(ov));
}

}  // namespace detail

/// w = A ⊕.⊗ u.
template <typename W, typename SR, typename A, typename U>
void mxv(Vector<W>& w, const SR& sr, const Matrix<A>& a, const Vector<U>& u) {
  auto t = detail::mxv_compute<W>(sr, a, u);
  detail::write_back(w, static_cast<const Vector<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// w<m> (+)= A ⊕.⊗ u.
template <typename W, typename M, typename Accum, typename SR, typename A,
          typename U>
void mxv(Vector<W>& w, const Vector<M>* mask, Accum accum, const SR& sr,
         const Matrix<A>& a, const Vector<U>& u, const Descriptor& desc = {}) {
  auto t = detail::mxv_compute<W>(sr, a, u);
  detail::write_back(w, mask, accum, desc, std::move(t));
}

/// wᵀ = uᵀ ⊕.⊗ A.
template <typename W, typename SR, typename U, typename A>
void vxm(Vector<W>& w, const SR& sr, const Vector<U>& u, const Matrix<A>& a) {
  auto t = detail::vxm_compute<W>(sr, u, a);
  detail::write_back(w, static_cast<const Vector<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// wᵀ<mᵀ> (+)= uᵀ ⊕.⊗ A.
template <typename W, typename M, typename Accum, typename SR, typename U,
          typename A>
void vxm(Vector<W>& w, const Vector<M>* mask, Accum accum, const SR& sr,
         const Vector<U>& u, const Matrix<A>& a, const Descriptor& desc = {}) {
  auto t = detail::vxm_compute<W>(sr, u, a);
  detail::write_back(w, mask, accum, desc, std::move(t));
}

}  // namespace grb
