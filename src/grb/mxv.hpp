// Matrix-vector products over a semiring: GrB_mxv (w = A ⊕.⊗ u) and
// GrB_vxm (wᵀ = uᵀ ⊕.⊗ A). Alg. 1 line 8 (likesScore = RootPost ⊕.⊗
// likesCount) is an mxv with the plus_second semiring; FastSV's hooking step
// is an mxv with min_second; BFS frontier expansion is a vxm.
//
// mxv is the pull (row-major dot) kernel: rows of A are processed
// independently in parallel and the result compacts through the two-pass
// sparse pipeline. The right operand's representation dispatches on its
// density — a dense-ish u is scattered into O(ncols) dense (value, present)
// scratch once, while a sparse u (incremental deltas, early BFS frontiers)
// is probed by binary search per row entry, avoiding the O(ncols)
// allocation entirely.
//
// vxm is the push (transposed scatter) kernel: the rows selected by u's
// pattern scatter into dense accumulators. Large frontiers stripe across
// per-thread accumulators that merge under the additive monoid in thread
// order; small ones run the classic serial scatter (detail::scatter_reduce
// makes the call).
#pragma once

#include <algorithm>
#include <utility>

#include "grb/detail/parallel.hpp"
#include "grb/detail/sparse_builder.hpp"
#include "grb/detail/workspace.hpp"
#include "grb/detail/write_back.hpp"
#include "grb/matrix.hpp"
#include "grb/semiring.hpp"
#include "grb/types.hpp"
#include "grb/vector.hpp"

namespace grb {

namespace detail {

/// Pull-side density cutoff: u occupying at least 1/kMxvDenseCutoff of the
/// columns buys the dense scratch; anything sparser dots against u's sorted
/// coordinates directly. Either path computes the same per-row sum in the
/// same entry order, so the dispatch never changes results.
inline constexpr Index kMxvDenseCutoff = 8;

template <typename W, typename SR, typename A, typename U>
Vector<W> mxv_compute(const SR& sr, const Matrix<A>& a, const Vector<U>& u) {
  if (a.ncols() != u.size()) {
    throw DimensionMismatch("mxv: A is " + std::to_string(a.nrows()) + "x" +
                            std::to_string(a.ncols()) + ", u has size " +
                            std::to_string(u.size()));
  }
  const auto ui = u.indices();
  const auto uv = u.values();
  // Dense per-row accumulators leased from the Context workspace: repeated
  // pulls (FastSV, pagerank-style loops) reuse warm buffers.
  auto acc_lease = detail::workspace().lease<W>(a.nrows());
  auto hit_lease = detail::workspace().lease<unsigned char>(a.nrows());
  auto& acc = *acc_lease;
  auto& hit = *hit_lease;
  acc.resize(a.nrows());
  hit.assign(a.nrows(), 0);
  // Per-row dot product; `lookup(j)` yields u(j)'s value position or -1.
  const auto pull_rows = [&](auto&& lookup) {
    parallel_for(
        a.nrows(),
        [&](Index i) {
          const auto cols = a.row_cols(i);
          const auto vals = a.row_vals(i);
          bool any = false;
          W s{};
          for (std::size_t k = 0; k < cols.size(); ++k) {
            const auto pos = lookup(cols[k]);
            if (pos < 0) continue;
            const W prod = static_cast<W>(
                sr.mul(static_cast<W>(vals[k]),
                       static_cast<W>(uv[static_cast<std::size_t>(pos)])));
            s = any ? static_cast<W>(sr.add(s, prod)) : prod;
            any = true;
          }
          if (any) {
            acc[i] = s;
            hit[i] = 1;
          }
        },
        a.nvals());
  };
  if (u.nvals() * kMxvDenseCutoff >= a.ncols()) {
    // Dense pull: scatter u into (position, present) scratch once.
    auto upos_lease = detail::workspace().lease<std::ptrdiff_t>(a.ncols());
    auto& upos = *upos_lease;
    upos.assign(a.ncols(), -1);
    parallel_for(static_cast<Index>(ui.size()), [&](Index k) {
      upos[ui[k]] = static_cast<std::ptrdiff_t>(k);
    });
    pull_rows([&](Index j) { return upos[j]; });
  } else {
    // Sparse pull: probe u's sorted coordinates per row entry — O(deg log
    // nvals(u)) per row, no O(ncols) scratch on the delta hot path.
    pull_rows([&](Index j) -> std::ptrdiff_t {
      const auto it = std::lower_bound(ui.begin(), ui.end(), j);
      if (it == ui.end() || *it != j) return -1;
      return it - ui.begin();
    });
  }
  return compact_dense<W>(
      a.nrows(), [&](Index i) { return hit[i] != 0; },
      [&](Index i) { return acc[i]; });
}

template <typename W, typename SR, typename U, typename A>
Vector<W> vxm_compute(const SR& sr, const Vector<U>& u, const Matrix<A>& a) {
  if (a.nrows() != u.size()) {
    throw DimensionMismatch("vxm: u has size " + std::to_string(u.size()) +
                            ", A is " + std::to_string(a.nrows()) +
                            "x" + std::to_string(a.ncols()));
  }
  const auto ui = u.indices();
  const auto uv = u.values();
  // Push work is the frontier's total degree, not the matrix size.
  Index work = static_cast<Index>(ui.size());
  for (const Index i : ui) work += a.row_degree(i);
  return scatter_reduce<W>(
      a.ncols(), static_cast<Index>(ui.size()),
      [&](Index k, auto&& upd) {
        const Index i = ui[k];
        const auto cols = a.row_cols(i);
        const auto vals = a.row_vals(i);
        for (std::size_t t = 0; t < cols.size(); ++t) {
          upd(cols[t], static_cast<W>(sr.mul(static_cast<W>(uv[k]),
                                             static_cast<W>(vals[t]))));
        }
      },
      [&](const W& x, const W& y) { return sr.add(x, y); }, work);
}

}  // namespace detail

/// w = A ⊕.⊗ u.
template <typename W, typename SR, typename A, typename U>
void mxv(Vector<W>& w, const SR& sr, const Matrix<A>& a, const Vector<U>& u) {
  auto t = detail::mxv_compute<W>(sr, a, u);
  detail::write_back(w, static_cast<const Vector<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// w<m> (+)= A ⊕.⊗ u.
template <typename W, typename M, typename Accum, typename SR, typename A,
          typename U>
void mxv(Vector<W>& w, const Vector<M>* mask, Accum accum, const SR& sr,
         const Matrix<A>& a, const Vector<U>& u, const Descriptor& desc = {}) {
  auto t = detail::mxv_compute<W>(sr, a, u);
  detail::write_back(w, mask, accum, desc, std::move(t));
}

/// wᵀ = uᵀ ⊕.⊗ A.
template <typename W, typename SR, typename U, typename A>
void vxm(Vector<W>& w, const SR& sr, const Vector<U>& u, const Matrix<A>& a) {
  auto t = detail::vxm_compute<W>(sr, u, a);
  detail::write_back(w, static_cast<const Vector<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// wᵀ<mᵀ> (+)= uᵀ ⊕.⊗ A.
template <typename W, typename M, typename Accum, typename SR, typename U,
          typename A>
void vxm(Vector<W>& w, const Vector<M>* mask, Accum accum, const SR& sr,
         const Vector<U>& u, const Matrix<A>& a, const Descriptor& desc = {}) {
  auto t = detail::vxm_compute<W>(sr, u, a);
  detail::write_back(w, mask, accum, desc, std::move(t));
}

}  // namespace grb
