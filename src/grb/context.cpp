#include "grb/context.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include <atomic>

namespace grb {

namespace {
// 0 = use OpenMP default. The knob is a standalone value — no other data is
// published under it — so relaxed ordering is sufficient; the fork/join of
// the parallel region that consumes it provides the synchronisation.
std::atomic<int> g_threads{0};
}

void set_threads(int n) noexcept {
  g_threads.store(n < 1 ? 0 : n, std::memory_order_relaxed);
}

int threads() noexcept {
  const int n = g_threads.load(std::memory_order_relaxed);
#ifdef _OPENMP
  return n == 0 ? omp_get_max_threads() : n;
#else
  return n == 0 ? 1 : n;
#endif
}

bool threads_pinned() noexcept {
  return g_threads.load(std::memory_order_relaxed) != 0;
}

ThreadGuard::ThreadGuard(int n) noexcept
    : saved_(g_threads.load(std::memory_order_relaxed)) {
  set_threads(n);
}

ThreadGuard::~ThreadGuard() {
  g_threads.store(saved_, std::memory_order_relaxed);
}

Context& Context::instance() noexcept {
  static Context ctx;
  return ctx;
}

WorkspaceStats workspace_stats() { return Context::instance().workspace_stats(); }

void reset_workspace_stats() { Context::instance().reset_workspace_stats(); }

std::size_t trim_workspace() { return Context::instance().trim_workspace(); }

WorkspaceStats workspace_domain_stats(std::size_t domain) {
  return Context::instance().workspace().domain_stats(domain);
}

namespace detail {

Workspace& workspace() noexcept { return Context::instance().workspace(); }

}  // namespace detail

}  // namespace grb
