#include "grb/context.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include <atomic>
#include <string>
#include <utility>
#include <vector>

#include "support/telemetry/metrics.hpp"

namespace grb {

namespace {
// 0 = use OpenMP default. The knob is a standalone value — no other data is
// published under it — so relaxed ordering is sufficient; the fork/join of
// the parallel region that consumes it provides the synchronisation.
std::atomic<int> g_threads{0};
}

void set_threads(int n) noexcept {
  g_threads.store(n < 1 ? 0 : n, std::memory_order_relaxed);
}

int threads() noexcept {
  const int n = g_threads.load(std::memory_order_relaxed);
#ifdef _OPENMP
  return n == 0 ? omp_get_max_threads() : n;
#else
  return n == 0 ? 1 : n;
#endif
}

bool threads_pinned() noexcept {
  return g_threads.load(std::memory_order_relaxed) != 0;
}

ThreadGuard::ThreadGuard(int n) noexcept
    : saved_(g_threads.load(std::memory_order_relaxed)) {
  set_threads(n);
}

ThreadGuard::~ThreadGuard() {
  g_threads.store(saved_, std::memory_order_relaxed);
}

namespace {

namespace telemetry = grbsm::telemetry;

using MetricEntries =
    std::vector<std::pair<std::string, telemetry::MetricValue>>;

void append_counter(MetricEntries& out, std::string name, std::uint64_t v) {
  telemetry::MetricValue m;
  m.kind = telemetry::MetricKind::kCounter;
  m.value = v;
  out.emplace_back(std::move(name), m);
}

void append_gauge(MetricEntries& out, std::string name, std::uint64_t v) {
  telemetry::MetricValue m;
  m.kind = telemetry::MetricKind::kGauge;
  m.value = v;
  out.emplace_back(std::move(name), m);
}

/// Telemetry provider: surfaces the arena's counters (and every active
/// per-shard stats domain) under "arena.*" dotted names in each registry
/// snapshot. The arena keeps its own mutex-sharded storage — the hot lease
/// path is untouched; the provider just reads the same accessors the
/// workspace_stats() trio exposes.
void arena_provider(MetricEntries& out) {
  const WorkspaceStats s = Context::instance().workspace_stats();
  append_counter(out, "arena.hits", s.hits);
  append_counter(out, "arena.steals", s.steals);
  append_counter(out, "arena.misses", s.misses);
  append_counter(out, "arena.bytes_leased", s.bytes_leased);
  append_counter(out, "arena.donations", s.donations);
  append_counter(out, "arena.drops", s.drops);
  append_counter(out, "arena.splits", s.splits);
  append_counter(out, "arena.shrinks", s.shrinks);
  append_gauge(out, "arena.buffers_cached", s.buffers_cached);
  append_gauge(out, "arena.bytes_cached", s.bytes_cached);
  const detail::Workspace& ws = Context::instance().workspace();
  for (std::size_t d = 0; d < detail::Workspace::kMaxDomains; ++d) {
    const WorkspaceStats ds = ws.domain_stats(d);
    if (ds.leases() == 0) continue;  // idle domains stay out of the wire
    const std::string prefix = "arena.shard" + std::to_string(d) + ".";
    append_counter(out, prefix + "hits", ds.hits);
    append_counter(out, prefix + "steals", ds.steals);
    append_counter(out, prefix + "misses", ds.misses);
    append_counter(out, prefix + "bytes_leased", ds.bytes_leased);
  }
}

}  // namespace

Context& Context::instance() noexcept {
  static Context ctx;
  // Registered once, after ctx exists (the provider dereferences it); the
  // registration itself is what puts "arena.*" into every snapshot.
  static const std::uint64_t provider_id =
      telemetry::Registry::instance().add_provider(arena_provider);
  (void)provider_id;
  return ctx;
}

WorkspaceStats workspace_stats() { return Context::instance().workspace_stats(); }

void reset_workspace_stats() { Context::instance().reset_workspace_stats(); }

std::size_t trim_workspace() { return Context::instance().trim_workspace(); }

WorkspaceStats workspace_domain_stats(std::size_t domain) {
  return Context::instance().workspace().domain_stats(domain);
}

namespace detail {

Workspace& workspace() noexcept { return Context::instance().workspace(); }

}  // namespace detail

}  // namespace grb
