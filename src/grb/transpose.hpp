// GrB_transpose. Counting-sort based CSR transpose, O(nnz + nrows + ncols),
// through the two-pass symbolic/numeric pipeline: pass 1 histograms output
// row sizes (per-thread local histograms over contiguous source blocks),
// a parallel scan sizes the arrays, and pass 2 scatters each block into its
// precomputed slice of every output row. Blocks are processed in source-row
// order and each thread owns a disjoint slice per output row, so output
// rows come out sorted without locks or atomics.
//
// The solution stores RootPost as posts×comments and Likes as
// comments×users; transposes produce the opposite orientations when a
// kernel needs them.
#pragma once

#include <utility>
#include <vector>

#include "grb/detail/csr_builder.hpp"
#include "grb/detail/parallel.hpp"
#include "grb/detail/workspace.hpp"
#include "grb/detail/write_back.hpp"
#include "grb/matrix.hpp"
#include "grb/types.hpp"

namespace grb {

namespace detail {

template <typename U>
Matrix<U> transpose_compute(const Matrix<U>& a) {
  const Index nr = a.ncols();  // transposed dims
  const Index nc = a.nrows();
  const Index nnz = a.nvals();
  CsrBuilder<U> builder(nr, nc);
  const auto counts = builder.counts();

  // Parallel pays for itself only when the per-thread histograms (one Index
  // per output row each) are small relative to the scatter work.
  const int nthreads = effective_threads();
  const bool go_parallel =
      nthreads > 1 && nnz >= kParallelThreshold && nr <= nnz;
  if (!go_parallel) {
    for (const Index j : a.colind()) ++counts[j];
    builder.finish_symbolic();
    const auto colind = builder.all_cols();
    const auto val = builder.all_vals();
    auto cursor_lease = workspace().lease<Index>(nr);
    auto& cursor = *cursor_lease;
    cursor.resize(nr);
    for (Index j = 0; j < nr; ++j) cursor[j] = builder.row_offset(j);
    for (Index i = 0; i < nc; ++i) {
      const auto cols = a.row_cols(i);
      const auto vals = a.row_vals(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const Index pos = cursor[cols[k]]++;
        colind[pos] = i;
        val[pos] = vals[k];
      }
    }
    return std::move(builder).take();
  }

  // Contiguous source-row blocks, one per requested thread. `block[t]`
  // holds thread t's per-output-row histogram in pass 1 and its write
  // cursors in pass 2.
  const int nblocks = nthreads;
  const Index chunk = (nc + static_cast<Index>(nblocks) - 1) /
                      static_cast<Index>(nblocks);
  const auto block_range = [&](int t) {
    const Index lo = std::min<Index>(nc, chunk * static_cast<Index>(t));
    return std::pair<Index, Index>{lo, std::min<Index>(nc, lo + chunk)};
  };
  auto block = workspace().lease_team<Index>(
      static_cast<std::size_t>(nblocks), nr);
  parallel_region([&](int tid, int nt) {
    for (int t = tid; t < nblocks; t += nt) {
      auto& hist = block.buf(static_cast<std::size_t>(t));
      hist.assign(nr, 0);
      const auto [lo, hi] = block_range(t);
      for (Index i = lo; i < hi; ++i) {
        for (const Index j : a.row_cols(i)) ++hist[j];
      }
    }
  });
  parallel_for(
      nr, [&](Index j) {
        Index sum = 0;
        for (std::size_t t = 0; t < block.size(); ++t) sum += block.buf(t)[j];
        counts[j] = sum;
      },
      nnz);
  builder.finish_symbolic();
  // Turn the histograms into per-block write cursors: block t starts where
  // the blocks before it end inside each output row.
  parallel_for(
      nr, [&](Index j) {
        Index next = builder.row_offset(j);
        for (std::size_t t = 0; t < block.size(); ++t) {
          auto& hist = block.buf(t);
          const Index mine = hist[j];
          hist[j] = next;
          next += mine;
        }
      },
      nnz);
  const auto colind = builder.all_cols();
  const auto val = builder.all_vals();
  parallel_region([&](int tid, int nt) {
    for (int t = tid; t < nblocks; t += nt) {
      auto& cursor = block.buf(static_cast<std::size_t>(t));
      const auto [lo, hi] = block_range(t);
      for (Index i = lo; i < hi; ++i) {
        const auto cols = a.row_cols(i);
        const auto vals = a.row_vals(i);
        for (std::size_t k = 0; k < cols.size(); ++k) {
          const Index pos = cursor[cols[k]]++;
          colind[pos] = i;
          val[pos] = vals[k];
        }
      }
    }
  });
  return std::move(builder).take();
}

}  // namespace detail

/// C = Aᵀ.
template <typename U>
void transpose(Matrix<U>& c, const Matrix<U>& a) {
  auto t = detail::transpose_compute(a);
  detail::write_back(c, static_cast<const Matrix<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// Returns Aᵀ by value.
template <typename U>
[[nodiscard]] Matrix<U> transposed(const Matrix<U>& a) {
  return detail::transpose_compute(a);
}

}  // namespace grb
