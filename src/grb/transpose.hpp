// GrB_transpose. Counting-sort based CSR transpose, O(nnz + nrows + ncols).
// The solution stores RootPost as posts×comments and Likes as
// comments×users; transposes produce the opposite orientations when a
// kernel needs them.
#pragma once

#include <utility>

#include "grb/detail/write_back.hpp"
#include "grb/matrix.hpp"
#include "grb/types.hpp"

namespace grb {

namespace detail {

template <typename U>
Matrix<U> transpose_compute(const Matrix<U>& a) {
  const Index nr = a.ncols();  // transposed dims
  const Index nc = a.nrows();
  std::vector<Index> rowptr(nr + 1, 0);
  const auto acolind = a.colind();
  for (const Index j : acolind) {
    ++rowptr[j + 1];
  }
  for (Index i = 0; i < nr; ++i) {
    rowptr[i + 1] += rowptr[i];
  }
  std::vector<Index> colind(a.nvals());
  std::vector<U> val(a.nvals());
  std::vector<Index> cursor(rowptr.begin(), rowptr.end() - 1);
  for (Index i = 0; i < a.nrows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const Index pos = cursor[cols[k]]++;
      colind[pos] = i;
      val[pos] = vals[k];
    }
  }
  return Matrix<U>::adopt_csr(nr, nc, std::move(rowptr), std::move(colind),
                              std::move(val));
}

}  // namespace detail

/// C = Aᵀ.
template <typename U>
void transpose(Matrix<U>& c, const Matrix<U>& a) {
  auto t = detail::transpose_compute(a);
  detail::write_back(c, static_cast<const Matrix<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// Returns Aᵀ by value.
template <typename U>
[[nodiscard]] Matrix<U> transposed(const Matrix<U>& a) {
  return detail::transpose_compute(a);
}

}  // namespace grb
