// Matrix Market (coordinate format) import/export for grb::Matrix —
// the lingua franca of sparse-matrix tooling (SuiteSparse collection,
// LAGraph test inputs). Supports `general` and `symmetric` patterns and
// both `pattern` (value-less) and `integer`/`real` fields.
#pragma once

#include <string>

#include "grb/matrix.hpp"

namespace grb {

/// Reads a Matrix Market file into a Matrix<T>. `pattern` entries become 1.
/// Symmetric files are expanded to both triangles. Throws grb::InvalidValue
/// on malformed input and std::runtime_error on I/O failure.
template <typename T>
Matrix<T> read_matrix_market(const std::string& path);

/// Writes coordinate-format Matrix Market (`general` symmetry, integer or
/// real field depending on T).
template <typename T>
void write_matrix_market(const Matrix<T>& m, const std::string& path);

// Explicitly instantiated for the value types the repository uses.
extern template Matrix<std::uint64_t> read_matrix_market<std::uint64_t>(
    const std::string&);
extern template Matrix<std::int64_t> read_matrix_market<std::int64_t>(
    const std::string&);
extern template Matrix<double> read_matrix_market<double>(const std::string&);
extern template Matrix<Bool> read_matrix_market<Bool>(const std::string&);
extern template void write_matrix_market<std::uint64_t>(
    const Matrix<std::uint64_t>&, const std::string&);
extern template void write_matrix_market<std::int64_t>(
    const Matrix<std::int64_t>&, const std::string&);
extern template void write_matrix_market<double>(const Matrix<double>&,
                                                 const std::string&);
extern template void write_matrix_market<Bool>(const Matrix<Bool>&,
                                               const std::string&);

}  // namespace grb
