// GxB_select: keep the entries satisfying an (i, j, value) predicate. The
// Q2 incremental algorithm's Step 2 selects AC cells equal to 2 (both
// endpoints of a new friendship like the comment).
#pragma once

#include <utility>

#include "grb/detail/csr_builder.hpp"
#include "grb/detail/sparse_builder.hpp"
#include "grb/detail/write_back.hpp"
#include "grb/matrix.hpp"
#include "grb/types.hpp"
#include "grb/vector.hpp"

namespace grb {

namespace detail {

template <typename Pred, typename U>
Vector<U> select_compute(Pred pred, const Vector<U>& u) {
  // Chunk-parallel filter over u's entry positions through the staged
  // pipeline. Staged (not count/fill) so the user predicate runs exactly
  // once per entry — a stateful or non-deterministic pred must not desync
  // the passes (same contract as the matrix branch below).
  const auto ui = u.indices();
  const auto uv = u.values();
  return build_sparse_staged<U>(
      u.size(), static_cast<Index>(ui.size()),
      [&](Index lo, Index hi, auto&& emit) {
        for (Index k = lo; k < hi; ++k) {
          if (pred(ui[k], Index{0}, uv[k])) emit(ui[k], uv[k]);
        }
      },
      static_cast<Index>(ui.size()));
}

template <typename Pred, typename U>
Matrix<U> select_compute(Pred pred, const Matrix<U>& a) {
  // Row-parallel filter through the staged pipeline. Staged (not the pure
  // count/fill two-pass) so the user predicate runs exactly once per entry
  // — a stateful or non-deterministic pred must not desync the passes.
  return build_csr_staged<U>(
      a.nrows(), a.ncols(),
      [&](Index i, auto&& emit) {
        const auto ai = a.row_cols(i);
        const auto av = a.row_vals(i);
        for (std::size_t k = 0; k < ai.size(); ++k) {
          if (pred(i, ai[k], av[k])) emit(ai[k], av[k]);
        }
      },
      a.nvals());
}

}  // namespace detail

/// w = select(pred, u): entries of u for which pred(i, 0, value) holds.
template <typename Pred, typename U>
void select(Vector<U>& w, Pred pred, const Vector<U>& u) {
  auto t = detail::select_compute(pred, u);
  detail::write_back(w, static_cast<const Vector<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// w<m> (+)= select(pred, u).
template <typename M, typename Accum, typename Pred, typename U>
void select(Vector<U>& w, const Vector<M>* mask, Accum accum, Pred pred,
            const Vector<U>& u, const Descriptor& desc = {}) {
  auto t = detail::select_compute(pred, u);
  detail::write_back(w, mask, accum, desc, std::move(t));
}

/// C = select(pred, A): entries of A for which pred(i, j, value) holds.
template <typename Pred, typename U>
void select(Matrix<U>& c, Pred pred, const Matrix<U>& a) {
  auto t = detail::select_compute(pred, a);
  detail::write_back(c, static_cast<const Matrix<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// C<M> (+)= select(pred, A).
template <typename M, typename Accum, typename Pred, typename U>
void select(Matrix<U>& c, const Matrix<M>* mask, Accum accum, Pred pred,
            const Matrix<U>& a, const Descriptor& desc = {}) {
  auto t = detail::select_compute(pred, a);
  detail::write_back(c, mask, accum, desc, std::move(t));
}

}  // namespace grb
