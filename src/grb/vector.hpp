// grb::Vector<T> — a sparse vector stored as parallel (sorted index, value)
// arrays, mirroring GrB_Vector. Vectors in this codebase are usually either
// very sparse (per-update deltas) or effectively dense (score tables), and
// the sorted-coordinate layout handles both without format switching.
#pragma once

#include <algorithm>
#include <numeric>
#include <optional>
#include <span>
#include <type_traits>
#include <string>
#include <vector>

#include "grb/binary_ops.hpp"
#include "grb/detail/parallel.hpp"
#include "grb/detail/workspace.hpp"
#include "grb/types.hpp"

namespace grb {

/// A vector's raw coordinate arrays, released for capacity reuse
/// (Vector::release_storage / Vector::adopt_storage).
template <typename T>
struct VecStorage {
  std::vector<Index> ind;
  std::vector<T> val;
};

template <typename T>
class Vector {
  static_assert(!std::is_same_v<T, bool>,
                "use grb::Bool (uint8_t), not bool: vector<bool> is a "
                "bit-packed proxy and cannot expose spans");

 public:
  using value_type = T;

  Vector() = default;

  /// Empty vector of logical size n (GrB_Vector_new).
  explicit Vector(Index n) : size_(n) {}

  /// Builds from coordinate data (GrB_Vector_build). Duplicates are
  /// combined with `dup`. Indices need not be sorted.
  template <typename Dup = Second<T>>
  static Vector build(Index n, std::vector<Index> idx, std::vector<T> vals,
                      Dup dup = Dup{}) {
    if (idx.size() != vals.size()) {
      throw InvalidValue("build: index/value count mismatch");
    }
    Vector v(n);
    if (idx.empty()) return v;
    // Already-sorted fast path (O(k) check): delta vectors emitted in index
    // order (the common case in the incremental engine) skip the argsort.
    std::vector<std::size_t> order(idx.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    if (!std::is_sorted(idx.begin(), idx.end())) {
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return idx[a] < idx[b] || (idx[a] == idx[b] && a < b);
      });
    }
    v.ind_.reserve(idx.size());
    v.val_.reserve(idx.size());
    for (const std::size_t k : order) {
      if (idx[k] >= n) {
        throw IndexOutOfBounds("build: index " + std::to_string(idx[k]) +
                               " >= size " + std::to_string(n));
      }
      if (!v.ind_.empty() && v.ind_.back() == idx[k]) {
        v.val_.back() = dup(v.val_.back(), vals[k]);
      } else {
        v.ind_.push_back(idx[k]);
        v.val_.push_back(vals[k]);
      }
    }
#ifndef NDEBUG
    v.check_invariants();
#endif
    return v;
  }

  /// Dense iota-style constructor used by FastSV: v(i) = f(i) for all i.
  /// FastSV rebuilds the grandparent vector every iteration, so the fill
  /// runs in parallel and the arrays lease from the Context workspace
  /// (recycling the previous iterate's capacity via grb::recycle).
  template <typename F>
  static Vector dense(Index n, F&& f) {
    Vector v(n);
    auto ind_lease = detail::workspace().lease<Index>(n);
    auto val_lease = detail::workspace().lease<T>(n);
    ind_lease->resize(n);
    val_lease->resize(n);
    auto& ind = *ind_lease;
    auto& val = *val_lease;
    detail::parallel_for(n, [&](Index i) {
      ind[i] = i;
      val[i] = f(i);
    });
    v.ind_ = ind_lease.detach();
    v.val_ = val_lease.detach();
    return v;
  }

  /// Dense constant vector.
  static Vector full(Index n, const T& value) {
    return dense(n, [&](Index) { return value; });
  }

  [[nodiscard]] Index size() const noexcept { return size_; }
  [[nodiscard]] Index nvals() const noexcept {
    return static_cast<Index>(ind_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return ind_.empty(); }

  /// Drops all entries, keeps the logical size (GrB_Vector_clear).
  void clear() noexcept {
    ind_.clear();
    val_.clear();
  }

  /// Changes the logical size (GrB_Vector_resize). Shrinking drops
  /// out-of-range entries; growing keeps everything.
  void resize(Index n) {
    if (n < size_) {
      const auto it = std::lower_bound(ind_.begin(), ind_.end(), n);
      const auto keep = static_cast<std::size_t>(it - ind_.begin());
      ind_.resize(keep);
      val_.resize(keep);
    }
    size_ = n;
  }

  /// Reads one element (GrB_Vector_extractElement); empty optional if the
  /// position holds no entry.
  [[nodiscard]] std::optional<T> at(Index i) const {
    check_bounds(i);
    const auto it = std::lower_bound(ind_.begin(), ind_.end(), i);
    if (it == ind_.end() || *it != i) return std::nullopt;
    return val_[static_cast<std::size_t>(it - ind_.begin())];
  }

  /// Reads one element with a default for empty positions.
  [[nodiscard]] T at_or(Index i, const T& def) const {
    const auto v = at(i);
    return v ? *v : def;
  }

  /// Writes one element (GrB_Vector_setElement). O(nvals) worst case; bulk
  /// changes should go through build() or merge kernels instead.
  void set(Index i, const T& value) {
    check_bounds(i);
    const auto it = std::lower_bound(ind_.begin(), ind_.end(), i);
    const auto pos = static_cast<std::size_t>(it - ind_.begin());
    if (it != ind_.end() && *it == i) {
      val_[pos] = value;
    } else {
      ind_.insert(it, i);
      val_.insert(val_.begin() + static_cast<std::ptrdiff_t>(pos), value);
    }
  }

  /// Removes one element if present (GrB_Vector_removeElement).
  void erase(Index i) {
    check_bounds(i);
    const auto it = std::lower_bound(ind_.begin(), ind_.end(), i);
    if (it == ind_.end() || *it != i) return;
    const auto pos = static_cast<std::size_t>(it - ind_.begin());
    ind_.erase(it);
    val_.erase(val_.begin() + static_cast<std::ptrdiff_t>(pos));
  }

  /// Coordinate views (GrB_Vector_extractTuples without the copy).
  [[nodiscard]] std::span<const Index> indices() const noexcept {
    return ind_;
  }
  [[nodiscard]] std::span<const T> values() const noexcept { return val_; }
  [[nodiscard]] std::span<T> values_mut() noexcept { return val_; }

  /// Copies out coordinates (GrB_Vector_extractTuples).
  void extract_tuples(std::vector<Index>& idx, std::vector<T>& vals) const {
    idx.assign(ind_.begin(), ind_.end());
    vals.assign(val_.begin(), val_.end());
  }

  /// Expands into a dense array with `fill` at empty positions.
  [[nodiscard]] std::vector<T> to_dense(const T& fill = T{}) const {
    std::vector<T> out(size_, fill);
    for (std::size_t k = 0; k < ind_.size(); ++k) {
      out[ind_[k]] = val_[k];
    }
    return out;
  }

  /// Structural + value equality (same pattern, same stored values).
  friend bool operator==(const Vector& a, const Vector& b) {
    return a.size_ == b.size_ && a.ind_ == b.ind_ && a.val_ == b.val_;
  }

  /// Internal: adopts pre-sorted coordinate arrays produced by a kernel —
  /// the Vector counterpart of Matrix::adopt_csr. Invariants (strictly
  /// ascending in-range indices, matching array sizes) are the caller's
  /// responsibility; `check` controls whether they are verified (default:
  /// debug builds only, so the Release hot path skips the O(nvals) walk).
  static Vector adopt_sorted(Index n, std::vector<Index>&& idx,
                             std::vector<T>&& vals,
                             CsrCheck check = CsrCheck::kDebug) {
    Vector v(n);
    v.ind_ = std::move(idx);
    v.val_ = std::move(vals);
#ifdef NDEBUG
    const bool verify = check == CsrCheck::kAlways;
#else
    const bool verify = check != CsrCheck::kNever;
#endif
    if (verify) v.check_invariants();
    return v;
  }

  /// Releases the coordinate arrays for capacity reuse, keeping the logical
  /// size but dropping all entries. grb::recycle consumes this to donate
  /// retired storage to the Context workspace.
  [[nodiscard]] VecStorage<T> release_storage() noexcept {
    VecStorage<T> st{std::move(ind_), std::move(val_)};
    ind_.clear();
    val_.clear();
    return st;
  }

  /// Rebuilds a vector around previously released (or otherwise assembled)
  /// sorted coordinate arrays — the inverse of release_storage.
  static Vector adopt_storage(Index n, VecStorage<T>&& st,
                              CsrCheck check = CsrCheck::kDebug) {
    return adopt_sorted(n, std::move(st.ind), std::move(st.val), check);
  }

  void check_invariants() const {
    detail::check(ind_.size() == val_.size(), "index/value size");
    for (std::size_t k = 0; k < ind_.size(); ++k) {
      detail::check(ind_[k] < size_, "index in range");
      detail::check(k == 0 || ind_[k - 1] < ind_[k], "indices sorted/unique");
    }
  }

 private:
  void check_bounds(Index i) const {
    if (i >= size_) {
      throw IndexOutOfBounds("vector index " + std::to_string(i) +
                             " >= size " + std::to_string(size_));
    }
  }

  Index size_ = 0;
  std::vector<Index> ind_;  // sorted, unique
  std::vector<T> val_;      // val_[k] belongs to ind_[k]
};

/// Retires a vector, donating its storage to the Context workspace (the
/// Vector counterpart of recycle(Matrix&&)).
template <typename T>
void recycle(Vector<T>&& v) {
  auto st = v.release_storage();
  auto& ws = detail::workspace();
  ws.donate(std::move(st.ind));
  ws.donate(std::move(st.val));
}

}  // namespace grb
