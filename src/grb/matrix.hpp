// grb::Matrix<T> — a sparse matrix in CSR (compressed sparse row) layout,
// mirroring GrB_Matrix with SuiteSparse's default row-major orientation.
// Column indices within each row are sorted, which kernels rely on for
// merge-based element-wise operations and binary-searched element access.
//
// The social-media workload grows its matrices continuously (new comments
// and users arrive in every change set), so in addition to the standard
// GraphBLAS build/setElement API the class provides `resize` (grow/shrink,
// GxB_Matrix_resize) and `insert_tuples` (sorted batch merge), which is how
// the incremental engine applies a change set in O(nnz + k log k) instead of
// k separate O(nnz) setElement calls.
#pragma once

#include <algorithm>
#include <numeric>
#include <optional>
#include <span>
#include <type_traits>
#include <string>
#include <vector>

#include "grb/binary_ops.hpp"
#include "grb/detail/workspace.hpp"
#include "grb/types.hpp"

namespace grb {

/// A single coordinate-format entry; build/extractTuples currency.
template <typename T>
struct Tuple {
  Index row = 0;
  Index col = 0;
  T val{};

  friend bool operator==(const Tuple&, const Tuple&) = default;
};

/// A matrix's raw CSR arrays, released for capacity reuse
/// (Matrix::release_storage / Matrix::adopt_storage).
template <typename T>
struct CsrStorage {
  std::vector<Index> rowptr;
  std::vector<Index> colind;
  std::vector<T> val;
};

// CsrCheck (the adopt-time invariant-check toggle) lives in grb/types.hpp:
// it is shared with Vector::adopt_sorted, which verifies the same
// sorted-unique/in-range invariants for sparse vectors.

template <typename T>
class Matrix {
  static_assert(!std::is_same_v<T, bool>,
                "use grb::Bool (uint8_t), not bool: vector<bool> is a "
                "bit-packed proxy and cannot expose spans");

 public:
  using value_type = T;

  Matrix() = default;

  /// Empty nrows × ncols matrix (GrB_Matrix_new). The rowptr array comes
  /// from the Context workspace, so loops that construct a fresh output
  /// every iteration recycle capacity instead of reallocating. Tiny
  /// matrices stay on plain allocation: the pool does not track sub-
  /// kMinBuffer storage, and default-member matrices are routinely replaced
  /// by move-assignment, where pooled storage would leak out of the arena.
  Matrix(Index nrows, Index ncols) : nrows_(nrows), ncols_(ncols) {
    if (static_cast<std::size_t>(nrows) + 1 >= detail::Workspace::kMinBuffer) {
      auto lease = detail::workspace().lease<Index>(nrows + 1);
      lease->assign(nrows + 1, 0);
      rowptr_ = lease.detach();
    } else {
      rowptr_.assign(nrows + 1, 0);
    }
  }

  /// Builds from coordinate data (GrB_Matrix_build); duplicates combined
  /// with `dup`. Input order is irrelevant.
  template <typename Dup = Plus<T>>
  static Matrix build(Index nrows, Index ncols, std::vector<Tuple<T>> tuples,
                      Dup dup = Dup{}) {
    Matrix m(nrows, ncols);
    if (tuples.empty()) return m;
    for (const auto& t : tuples) {
      if (t.row >= nrows || t.col >= ncols) {
        throw IndexOutOfBounds("build: (" + std::to_string(t.row) + "," +
                               std::to_string(t.col) + ") outside " +
                               std::to_string(nrows) + "x" +
                               std::to_string(ncols));
      }
    }
    sort_tuples(tuples);
    m.colind_.reserve(tuples.size());
    m.val_.reserve(tuples.size());
    for (const auto& t : tuples) {
      if (!m.colind_.empty() && m.rows_pending_ == t.row &&
          m.colind_.back() == t.col) {
        m.val_.back() = dup(m.val_.back(), t.val);
        continue;
      }
      // close rows up to t.row
      while (m.rows_pending_ < t.row) {
        m.rowptr_[++m.rows_pending_] = static_cast<Index>(m.colind_.size());
      }
      m.colind_.push_back(t.col);
      m.val_.push_back(t.val);
    }
    while (m.rows_pending_ < nrows) {
      m.rowptr_[++m.rows_pending_] = static_cast<Index>(m.colind_.size());
    }
    return m;
  }

  [[nodiscard]] Index nrows() const noexcept { return nrows_; }
  [[nodiscard]] Index ncols() const noexcept { return ncols_; }
  [[nodiscard]] Index nvals() const noexcept {
    return static_cast<Index>(colind_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return colind_.empty(); }

  /// Drops all entries, keeps dimensions (GrB_Matrix_clear).
  void clear() noexcept {
    std::fill(rowptr_.begin(), rowptr_.end(), Index{0});
    colind_.clear();
    val_.clear();
  }

  /// Grows or shrinks the logical dimensions (GxB_Matrix_resize). Growing
  /// is O(new rows); shrinking compacts away out-of-range entries. The
  /// change-set loop grows every state matrix once per update, so rowptr
  /// regrowth that outruns its capacity swaps through the workspace arena
  /// instead of freeing pool-origin storage behind the allocator's back.
  void resize(Index nrows, Index ncols) {
    if (ncols < ncols_ && nvals() > 0) {
      // Drop entries in removed columns.
      Index write = 0;
      auto new_rowptr_lease =
          detail::workspace().lease<Index>(std::min<Index>(nrows, nrows_) + 1);
      auto& new_rowptr = *new_rowptr_lease;
      new_rowptr.assign(std::min<Index>(nrows, nrows_) + 1, 0);
      const Index keep_rows = std::min<Index>(nrows, nrows_);
      for (Index i = 0; i < keep_rows; ++i) {
        for (Index k = rowptr_[i]; k < rowptr_[i + 1]; ++k) {
          if (colind_[k] < ncols) {
            colind_[write] = colind_[k];
            val_[write] = val_[k];
            ++write;
          }
        }
        new_rowptr[i + 1] = write;
      }
      colind_.resize(write);
      val_.resize(write);
      detail::workspace().donate(std::move(rowptr_));
      rowptr_ = new_rowptr_lease.detach();
      nrows_ = keep_rows;
    } else if (nrows < nrows_) {
      const Index cut = rowptr_[nrows];
      colind_.resize(cut);
      val_.resize(cut);
      rowptr_.resize(nrows + 1);
      nrows_ = nrows;
    }
    if (nrows > nrows_) {
      if (rowptr_.capacity() < static_cast<std::size_t>(nrows) + 1) {
        auto grown = detail::workspace().lease<Index>(nrows + 1);
        grown->assign(rowptr_.begin(), rowptr_.end());
        // Fill to the full target size before detaching: a detach whose
        // contents sit far below the leased capacity would be trimmed
        // (shrink-on-detach), defeating this pool-backed regrowth. The
        // resize below then keeps the capacity, and the tail loop
        // overwrites the fill either way.
        grown->resize(nrows + 1, grown->empty() ? 0 : grown->back());
        detail::workspace().donate(std::move(rowptr_));
        rowptr_ = grown.detach();
      }
      rowptr_.resize(nrows + 1, rowptr_.empty() ? 0 : rowptr_.back());
      // rowptr_ may have been default-initialised above; ensure tail filled.
      for (Index i = nrows_ + 1; i <= nrows; ++i) rowptr_[i] = nvals();
      nrows_ = nrows;
    }
    ncols_ = ncols;
  }

  /// Reads one element (GrB_Matrix_extractElement).
  [[nodiscard]] std::optional<T> at(Index i, Index j) const {
    check_bounds(i, j);
    const auto row = row_cols(i);
    const auto it = std::lower_bound(row.begin(), row.end(), j);
    if (it == row.end() || *it != j) return std::nullopt;
    return val_[rowptr_[i] + static_cast<Index>(it - row.begin())];
  }

  [[nodiscard]] bool has(Index i, Index j) const { return at(i, j).has_value(); }

  /// Writes one element (GrB_Matrix_setElement). O(nnz) worst case due to
  /// CSR insertion; bulk updates should use insert_tuples.
  void set(Index i, Index j, const T& value) {
    check_bounds(i, j);
    const auto row = row_cols(i);
    const auto it = std::lower_bound(row.begin(), row.end(), j);
    const Index pos = rowptr_[i] + static_cast<Index>(it - row.begin());
    if (it != row.end() && *it == j) {
      val_[pos] = value;
      return;
    }
    colind_.insert(colind_.begin() + static_cast<std::ptrdiff_t>(pos), j);
    val_.insert(val_.begin() + static_cast<std::ptrdiff_t>(pos), value);
    for (Index r = i + 1; r <= nrows_; ++r) ++rowptr_[r];
  }

  /// Merges a batch of new tuples into the matrix in one pass. Duplicates
  /// (within the batch or against existing entries) are combined with `dup`.
  /// This is the change-set application primitive of the incremental engine.
  template <typename Dup = Plus<T>>
  void insert_tuples(std::vector<Tuple<T>> tuples, Dup dup = Dup{}) {
    if (tuples.empty()) return;
    for (const auto& t : tuples) {
      if (t.row >= nrows_ || t.col >= ncols_) {
        throw IndexOutOfBounds("insert_tuples: (" + std::to_string(t.row) +
                               "," + std::to_string(t.col) + ") outside " +
                               std::to_string(nrows_) + "x" +
                               std::to_string(ncols_));
      }
    }
    sort_tuples(tuples);
    // Combine duplicates inside the batch first. Staging and the merged
    // arrays lease from the workspace: the change-set application loop runs
    // this once per matrix per update, and the retired arrays donated below
    // keep its steady state allocation-free.
    auto& ws = detail::workspace();
    auto batch_lease = ws.lease<Tuple<T>>(tuples.size());
    auto& batch = *batch_lease;
    for (auto& t : tuples) {
      if (!batch.empty() && batch.back().row == t.row &&
          batch.back().col == t.col) {
        batch.back().val = dup(batch.back().val, t.val);
      } else {
        batch.push_back(t);
      }
    }
    // Merge old CSR with the sorted batch.
    auto new_rowptr_lease = ws.lease<Index>(nrows_ + 1);
    auto new_colind_lease = ws.lease<Index>(colind_.size() + batch.size());
    auto new_val_lease = ws.lease<T>(val_.size() + batch.size());
    auto& new_rowptr = *new_rowptr_lease;
    auto& new_colind = *new_colind_lease;
    auto& new_val = *new_val_lease;
    new_rowptr.assign(nrows_ + 1, 0);
    std::size_t b = 0;
    for (Index i = 0; i < nrows_; ++i) {
      Index k = rowptr_[i];
      const Index k_end = rowptr_[i + 1];
      while (k < k_end || (b < batch.size() && batch[b].row == i)) {
        const bool take_old =
            k < k_end && (b >= batch.size() || batch[b].row != i ||
                          colind_[k] < batch[b].col);
        if (take_old) {
          new_colind.push_back(colind_[k]);
          new_val.push_back(val_[k]);
          ++k;
        } else if (k < k_end && batch[b].row == i && colind_[k] == batch[b].col) {
          new_colind.push_back(colind_[k]);
          new_val.push_back(dup(val_[k], batch[b].val));
          ++k;
          ++b;
        } else {
          new_colind.push_back(batch[b].col);
          new_val.push_back(batch[b].val);
          ++b;
        }
      }
      new_rowptr[i + 1] = static_cast<Index>(new_colind.size());
    }
    ws.donate(std::move(rowptr_));
    ws.donate(std::move(colind_));
    ws.donate(std::move(val_));
    rowptr_ = new_rowptr_lease.detach();
    colind_ = new_colind_lease.detach();
    val_ = new_val_lease.detach();
  }

  /// Removes a batch of positions in one merge pass (the removal analogue
  /// of insert_tuples). Positions without an entry are ignored. Returns the
  /// number of entries actually removed.
  std::size_t remove_positions(std::vector<std::pair<Index, Index>> pos) {
    if (pos.empty()) return 0;
    for (const auto& [i, j] : pos) {
      if (i >= nrows_ || j >= ncols_) {
        throw IndexOutOfBounds("remove_positions: (" + std::to_string(i) +
                               "," + std::to_string(j) + ")");
      }
    }
    if (!std::is_sorted(pos.begin(), pos.end())) {
      std::sort(pos.begin(), pos.end());
    }
    pos.erase(std::unique(pos.begin(), pos.end()), pos.end());
    auto& ws = detail::workspace();
    auto new_rowptr_lease = ws.lease<Index>(nrows_ + 1);
    auto new_colind_lease = ws.lease<Index>(colind_.size());
    auto new_val_lease = ws.lease<T>(val_.size());
    auto& new_rowptr = *new_rowptr_lease;
    auto& new_colind = *new_colind_lease;
    auto& new_val = *new_val_lease;
    new_rowptr.assign(nrows_ + 1, 0);
    std::size_t b = 0;
    std::size_t removed = 0;
    for (Index i = 0; i < nrows_; ++i) {
      for (Index k = rowptr_[i]; k < rowptr_[i + 1]; ++k) {
        while (b < pos.size() && (pos[b].first < i ||
                                  (pos[b].first == i &&
                                   pos[b].second < colind_[k]))) {
          ++b;
        }
        if (b < pos.size() && pos[b].first == i &&
            pos[b].second == colind_[k]) {
          ++removed;
          ++b;
          continue;
        }
        new_colind.push_back(colind_[k]);
        new_val.push_back(val_[k]);
      }
      new_rowptr[i + 1] = static_cast<Index>(new_colind.size());
    }
    ws.donate(std::move(rowptr_));
    ws.donate(std::move(colind_));
    ws.donate(std::move(val_));
    rowptr_ = new_rowptr_lease.detach();
    colind_ = new_colind_lease.detach();
    val_ = new_val_lease.detach();
    return removed;
  }

  /// Column indices of row i (sorted). Zero-copy CSR row view.
  [[nodiscard]] std::span<const Index> row_cols(Index i) const {
    return {colind_.data() + rowptr_[i],
            static_cast<std::size_t>(rowptr_[i + 1] - rowptr_[i])};
  }

  /// Values of row i, parallel to row_cols(i).
  [[nodiscard]] std::span<const T> row_vals(Index i) const {
    return {val_.data() + rowptr_[i],
            static_cast<std::size_t>(rowptr_[i + 1] - rowptr_[i])};
  }

  [[nodiscard]] Index row_degree(Index i) const noexcept {
    return rowptr_[i + 1] - rowptr_[i];
  }

  /// Copies out all entries in row-major order (GrB_Matrix_extractTuples).
  [[nodiscard]] std::vector<Tuple<T>> extract_tuples() const {
    std::vector<Tuple<T>> out;
    out.reserve(nvals());
    for (Index i = 0; i < nrows_; ++i) {
      for (Index k = rowptr_[i]; k < rowptr_[i + 1]; ++k) {
        out.push_back({i, colind_[k], val_[k]});
      }
    }
    return out;
  }

  /// Raw CSR access for kernels.
  [[nodiscard]] std::span<const Index> rowptr() const noexcept {
    return rowptr_;
  }
  [[nodiscard]] std::span<const Index> colind() const noexcept {
    return colind_;
  }
  [[nodiscard]] std::span<const T> values() const noexcept { return val_; }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ &&
           a.rowptr_ == b.rowptr_ && a.colind_ == b.colind_ &&
           a.val_ == b.val_;
  }

  /// Internal: adopts CSR arrays produced by a kernel. Invariants (sorted
  /// rows, consistent rowptr) are the caller's responsibility; `check`
  /// controls whether they are verified (default: debug builds only, so the
  /// Release hot path skips the O(nnz) walk).
  static Matrix adopt_csr(Index nrows, Index ncols,
                          std::vector<Index>&& rowptr,
                          std::vector<Index>&& colind, std::vector<T>&& val,
                          CsrCheck check = CsrCheck::kDebug) {
    Matrix m;
    m.nrows_ = nrows;
    m.ncols_ = ncols;
    m.rowptr_ = std::move(rowptr);
    m.colind_ = std::move(colind);
    m.val_ = std::move(val);
#ifdef NDEBUG
    const bool verify = check == CsrCheck::kAlways;
#else
    const bool verify = check != CsrCheck::kNever;
#endif
    if (verify) m.check_invariants();
    return m;
  }

  /// Releases the CSR arrays for capacity reuse, leaving *this empty (0×0,
  /// no entries — the default-constructed state). The usual consumer is
  /// grb::recycle, which donates the arrays to the Context workspace so the
  /// next kernel output steals their capacity instead of allocating.
  [[nodiscard]] CsrStorage<T> release_storage() noexcept {
    CsrStorage<T> st{std::move(rowptr_), std::move(colind_), std::move(val_)};
    nrows_ = 0;
    ncols_ = 0;
    rows_pending_ = 0;
    rowptr_.clear();
    colind_.clear();
    val_.clear();
    return st;
  }

  /// Rebuilds a matrix around previously released (or otherwise assembled)
  /// CSR arrays — the inverse of release_storage.
  static Matrix adopt_storage(Index nrows, Index ncols, CsrStorage<T>&& st,
                              CsrCheck check = CsrCheck::kDebug) {
    return adopt_csr(nrows, ncols, std::move(st.rowptr), std::move(st.colind),
                     std::move(st.val), check);
  }

  void check_invariants() const {
    detail::check(rowptr_.size() == nrows_ + 1, "rowptr size");
    detail::check(rowptr_.front() == 0, "rowptr[0]");
    detail::check(rowptr_.back() == colind_.size(), "rowptr back");
    detail::check(colind_.size() == val_.size(), "colind/val size");
    for (Index i = 0; i < nrows_; ++i) {
      detail::check(rowptr_[i] <= rowptr_[i + 1], "rowptr monotone");
      for (Index k = rowptr_[i]; k + 1 < rowptr_[i + 1]; ++k) {
        detail::check(colind_[k] < colind_[k + 1], "row sorted/unique");
      }
      for (Index k = rowptr_[i]; k < rowptr_[i + 1]; ++k) {
        detail::check(colind_[k] < ncols_, "col in range");
      }
    }
  }

 private:
  /// Row-major tuple sort with an O(k) already-sorted fast path: batches
  /// emitted in CSR order (e.g. the incremental engine's netted change
  /// sets, which iterate ordered maps) merge without paying the k log k.
  static void sort_tuples(std::vector<Tuple<T>>& tuples) {
    const auto less = [](const Tuple<T>& a, const Tuple<T>& b) {
      return a.row < b.row || (a.row == b.row && a.col < b.col);
    };
    if (!std::is_sorted(tuples.begin(), tuples.end(), less)) {
      std::sort(tuples.begin(), tuples.end(), less);
    }
  }

  void check_bounds(Index i, Index j) const {
    if (i >= nrows_ || j >= ncols_) {
      throw IndexOutOfBounds("(" + std::to_string(i) + "," +
                             std::to_string(j) + ") outside " +
                             std::to_string(nrows_) + "x" +
                             std::to_string(ncols_));
    }
  }

  Index nrows_ = 0;
  Index ncols_ = 0;
  Index rows_pending_ = 0;  // build() bookkeeping only
  std::vector<Index> rowptr_;
  std::vector<Index> colind_;
  std::vector<T> val_;
};

/// Retires a matrix, donating its storage to the Context workspace. Hot
/// loops call this on iteration-carried temporaries (and write_back calls it
/// on replaced outputs) so kernel results cycle through the arena instead of
/// round-tripping the system allocator.
template <typename T>
void recycle(Matrix<T>&& m) {
  auto st = m.release_storage();
  auto& ws = detail::workspace();
  ws.donate(std::move(st.rowptr));
  ws.donate(std::move(st.colind));
  ws.donate(std::move(st.val));
}

}  // namespace grb
