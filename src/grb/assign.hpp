// GrB_assign for vectors: masked whole-vector assign (w<m> = u — Alg. 2
// line 14 computes Δscores⟨scores⁺⟩ = scores′ this way), subset assign
// (w(I) = u), and scalar-to-subset assign (w(I) = s).
#pragma once

#include <algorithm>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "grb/detail/write_back.hpp"
#include "grb/types.hpp"
#include "grb/vector.hpp"

namespace grb {

/// w<m> (+)= u over the whole vector. The compute side is the identity, so
/// all the work — the three-way C/M/T merge — happens in write_back, which
/// runs chunk-parallel through the staged sparse pipeline.
template <typename W, typename M, typename Accum, typename U>
void assign(Vector<W>& w, const Vector<M>* mask, Accum accum,
            const Vector<U>& u, const Descriptor& desc = {}) {
  Vector<U> t = u;
  detail::write_back(w, mask, accum, desc, std::move(t));
}

namespace detail {

// Stays serial by design: the emit path throws on duplicate targets, which
// must not escape a parallel region, and subset maps on the incremental hot
// path are delta-sized. The masked write_back that follows is parallel.
template <typename W, typename U>
Vector<W> subset_to_full(Index size, std::span<const Index> idx,
                         const Vector<U>& u) {
  if (static_cast<Index>(idx.size()) != u.size()) {
    throw DimensionMismatch("assign: |I| = " + std::to_string(idx.size()) +
                            " vs |u| = " + std::to_string(u.size()));
  }
  const auto ui = u.indices();
  const auto uv = u.values();
  std::vector<Index> oi;
  std::vector<W> ov;
  oi.reserve(ui.size());
  ov.reserve(ui.size());
  const auto emit = [&](Index target, std::size_t k) {
    if (target >= size) {
      throw IndexOutOfBounds("assign: target " + std::to_string(target));
    }
    if (!oi.empty() && oi.back() == target) {
      throw InvalidValue("assign: duplicate target index");
    }
    oi.push_back(target);
    ov.push_back(static_cast<W>(uv[k]));
  };
  if (std::is_sorted(idx.begin(), idx.end())) {
    // Sorted subset (the common case): u's stored entries already map to
    // nondecreasing targets, so the output assembles in order directly.
    for (std::size_t k = 0; k < ui.size(); ++k) {
      emit(idx[ui[k]], k);
    }
  } else {
    // Unsorted subset: order only u's k stored targets — O(k log k), never
    // O(|I| log |I|) over the whole (possibly huge) subset map.
    std::vector<std::size_t> order(ui.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return idx[ui[a]] < idx[ui[b]] ||
             (idx[ui[a]] == idx[ui[b]] && a < b);
    });
    for (const std::size_t k : order) {
      emit(idx[ui[k]], k);
    }
  }
  return Vector<W>::adopt_sorted(size, std::move(oi), std::move(ov));
}

}  // namespace detail

/// w(I) (+)= u: u's k-th position maps to w's I[k]-th position. Positions of
/// w outside I are never modified (GraphBLAS subset-assign semantics).
template <typename W, typename Accum, typename U>
void assign_subset(Vector<W>& w, Accum accum, std::span<const Index> idx,
                   const Vector<U>& u) {
  auto t = detail::subset_to_full<W>(w.size(), idx, u);
  // Subset assign never deletes outside the target pattern, which matches
  // accumulate-with-Second (new value wins) when no accumulator is given.
  if constexpr (detail::has_accum_v<Accum>) {
    detail::write_back(w, static_cast<const Vector<Bool>*>(nullptr), accum,
                       Descriptor{}, std::move(t));
  } else {
    detail::write_back(w, static_cast<const Vector<Bool>*>(nullptr),
                       Second<W>{}, Descriptor{}, std::move(t));
  }
}

/// w(I) = s for every index in I.
template <typename W>
void assign_scalar(Vector<W>& w, std::span<const Index> idx, const W& value) {
  std::vector<Index> sorted(idx.begin(), idx.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  if (!sorted.empty() && sorted.back() >= w.size()) {
    throw IndexOutOfBounds("assign_scalar: " + std::to_string(sorted.back()));
  }
  std::vector<W> vals(sorted.size(), value);
  auto t = Vector<W>::adopt_sorted(w.size(), std::move(sorted),
                                   std::move(vals));
  detail::write_back(w, static_cast<const Vector<Bool>*>(nullptr),
                     Second<W>{}, Descriptor{}, std::move(t));
}

}  // namespace grb
