// Element-wise operations: eWiseAdd (pattern union, GrB_eWiseAdd) and
// eWiseMult (pattern intersection, GrB_eWiseMult) for vectors and matrices.
// Alg. 1 line 9 (scores = repliesScores ⊕ likesScores) and Alg. 2 line 13
// (scores' = scores ⊕ scores+) are vector eWiseAdds.
#pragma once

#include <algorithm>
#include <utility>

#include "grb/detail/csr_builder.hpp"
#include "grb/detail/sparse_builder.hpp"
#include "grb/detail/write_back.hpp"
#include "grb/matrix.hpp"
#include "grb/types.hpp"
#include "grb/vector.hpp"

namespace grb {

namespace detail {

// The vector merges run chunk-parallel through the staged two-pass sparse
// pipeline: each index-domain range opens its two cursors with a
// lower_bound and merges exactly once, entries landing sorted in per-thread
// staging. Small operands take the zero-copy serial path — exactly the
// classic single merge.

template <typename W, typename Op, typename U, typename V>
Vector<W> ewise_add_compute(Op op, const Vector<U>& u, const Vector<V>& v) {
  if (u.size() != v.size()) {
    throw DimensionMismatch("eWiseAdd: " + std::to_string(u.size()) + " vs " +
                            std::to_string(v.size()));
  }
  const auto ui = u.indices();
  const auto uv = u.values();
  const auto vi = v.indices();
  const auto vv = v.values();
  return build_sparse_staged<W>(
      u.size(), u.size(),
      [&](Index lo, Index hi, auto&& emit) {
        std::size_t a = static_cast<std::size_t>(
            std::lower_bound(ui.begin(), ui.end(), lo) - ui.begin());
        std::size_t b = static_cast<std::size_t>(
            std::lower_bound(vi.begin(), vi.end(), lo) - vi.begin());
        while ((a < ui.size() && ui[a] < hi) ||
               (b < vi.size() && vi[b] < hi)) {
          const bool u_in = a < ui.size() && ui[a] < hi;
          const bool v_in = b < vi.size() && vi[b] < hi;
          if (u_in && (!v_in || ui[a] < vi[b])) {
            emit(ui[a], static_cast<W>(uv[a]));
            ++a;
          } else if (v_in && (!u_in || vi[b] < ui[a])) {
            emit(vi[b], static_cast<W>(vv[b]));
            ++b;
          } else {
            emit(ui[a], static_cast<W>(op(static_cast<W>(uv[a]),
                                          static_cast<W>(vv[b]))));
            ++a;
            ++b;
          }
        }
      },
      static_cast<Index>(ui.size() + vi.size()));
}

template <typename W, typename Op, typename U, typename V>
Vector<W> ewise_mult_compute(Op op, const Vector<U>& u, const Vector<V>& v) {
  if (u.size() != v.size()) {
    throw DimensionMismatch("eWiseMult: " + std::to_string(u.size()) +
                            " vs " + std::to_string(v.size()));
  }
  const auto ui = u.indices();
  const auto uv = u.values();
  const auto vi = v.indices();
  const auto vv = v.values();
  return build_sparse_staged<W>(
      u.size(), u.size(),
      [&](Index lo, Index hi, auto&& emit) {
        std::size_t a = static_cast<std::size_t>(
            std::lower_bound(ui.begin(), ui.end(), lo) - ui.begin());
        std::size_t b = static_cast<std::size_t>(
            std::lower_bound(vi.begin(), vi.end(), lo) - vi.begin());
        while (a < ui.size() && ui[a] < hi && b < vi.size() && vi[b] < hi) {
          if (ui[a] < vi[b]) {
            ++a;
          } else if (vi[b] < ui[a]) {
            ++b;
          } else {
            emit(ui[a], static_cast<W>(op(static_cast<W>(uv[a]),
                                          static_cast<W>(vv[b]))));
            ++a;
            ++b;
          }
        }
      },
      static_cast<Index>(ui.size() + vi.size()));
}

template <typename W, typename Op, typename U, typename V>
Matrix<W> ewise_add_compute(Op op, const Matrix<U>& a, const Matrix<V>& b) {
  if (a.nrows() != b.nrows() || a.ncols() != b.ncols()) {
    throw DimensionMismatch("matrix eWiseAdd shapes");
  }
  // Row-parallel union merge through the staged two-pass pipeline: each
  // row's merge runs once, entries land sorted in per-thread staging, and
  // the numeric pass is a copy into the scanned offsets.
  return build_csr_staged<W>(
      a.nrows(), a.ncols(),
      [&](Index i, auto&& emit) {
        const auto ai = a.row_cols(i);
        const auto av = a.row_vals(i);
        const auto bi = b.row_cols(i);
        const auto bv = b.row_vals(i);
        std::size_t x = 0, y = 0;
        while (x < ai.size() || y < bi.size()) {
          if (y >= bi.size() || (x < ai.size() && ai[x] < bi[y])) {
            emit(ai[x], static_cast<W>(av[x]));
            ++x;
          } else if (x >= ai.size() || bi[y] < ai[x]) {
            emit(bi[y], static_cast<W>(bv[y]));
            ++y;
          } else {
            emit(ai[x], static_cast<W>(
                            op(static_cast<W>(av[x]), static_cast<W>(bv[y]))));
            ++x;
            ++y;
          }
        }
      },
      a.nvals() + b.nvals());
}

template <typename W, typename Op, typename U, typename V>
Matrix<W> ewise_mult_compute(Op op, const Matrix<U>& a, const Matrix<V>& b) {
  if (a.nrows() != b.nrows() || a.ncols() != b.ncols()) {
    throw DimensionMismatch("matrix eWiseMult shapes");
  }
  // Row-parallel intersection merge, same staged scheme as ewise_add.
  return build_csr_staged<W>(
      a.nrows(), a.ncols(),
      [&](Index i, auto&& emit) {
        const auto ai = a.row_cols(i);
        const auto av = a.row_vals(i);
        const auto bi = b.row_cols(i);
        const auto bv = b.row_vals(i);
        std::size_t x = 0, y = 0;
        while (x < ai.size() && y < bi.size()) {
          if (ai[x] < bi[y]) {
            ++x;
          } else if (bi[y] < ai[x]) {
            ++y;
          } else {
            emit(ai[x], static_cast<W>(
                            op(static_cast<W>(av[x]), static_cast<W>(bv[y]))));
            ++x;
            ++y;
          }
        }
      },
      a.nvals() + b.nvals());
}

}  // namespace detail

/// w = u ⊕ v (set union on patterns).
template <typename W, typename Op, typename U, typename V>
void eWiseAdd(Vector<W>& w, Op op, const Vector<U>& u, const Vector<V>& v) {
  auto t = detail::ewise_add_compute<W>(op, u, v);
  detail::write_back(w, static_cast<const Vector<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// w<m> (+)= u ⊕ v.
template <typename W, typename M, typename Accum, typename Op, typename U,
          typename V>
void eWiseAdd(Vector<W>& w, const Vector<M>* mask, Accum accum, Op op,
              const Vector<U>& u, const Vector<V>& v,
              const Descriptor& desc = {}) {
  auto t = detail::ewise_add_compute<W>(op, u, v);
  detail::write_back(w, mask, accum, desc, std::move(t));
}

/// w = u ⊗ v (set intersection on patterns).
template <typename W, typename Op, typename U, typename V>
void eWiseMult(Vector<W>& w, Op op, const Vector<U>& u, const Vector<V>& v) {
  auto t = detail::ewise_mult_compute<W>(op, u, v);
  detail::write_back(w, static_cast<const Vector<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// w<m> (+)= u ⊗ v.
template <typename W, typename M, typename Accum, typename Op, typename U,
          typename V>
void eWiseMult(Vector<W>& w, const Vector<M>* mask, Accum accum, Op op,
               const Vector<U>& u, const Vector<V>& v,
               const Descriptor& desc = {}) {
  auto t = detail::ewise_mult_compute<W>(op, u, v);
  detail::write_back(w, mask, accum, desc, std::move(t));
}

/// C = A ⊕ B.
template <typename W, typename Op, typename U, typename V>
void eWiseAdd(Matrix<W>& c, Op op, const Matrix<U>& a, const Matrix<V>& b) {
  auto t = detail::ewise_add_compute<W>(op, a, b);
  detail::write_back(c, static_cast<const Matrix<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// C<M> (+)= A ⊕ B.
template <typename W, typename M, typename Accum, typename Op, typename U,
          typename V>
void eWiseAdd(Matrix<W>& c, const Matrix<M>* mask, Accum accum, Op op,
              const Matrix<U>& a, const Matrix<V>& b,
              const Descriptor& desc = {}) {
  auto t = detail::ewise_add_compute<W>(op, a, b);
  detail::write_back(c, mask, accum, desc, std::move(t));
}

/// C = A ⊗ B.
template <typename W, typename Op, typename U, typename V>
void eWiseMult(Matrix<W>& c, Op op, const Matrix<U>& a, const Matrix<V>& b) {
  auto t = detail::ewise_mult_compute<W>(op, a, b);
  detail::write_back(c, static_cast<const Matrix<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// C<M> (+)= A ⊗ B.
template <typename W, typename M, typename Accum, typename Op, typename U,
          typename V>
void eWiseMult(Matrix<W>& c, const Matrix<M>* mask, Accum accum, Op op,
               const Matrix<U>& a, const Matrix<V>& b,
               const Descriptor& desc = {}) {
  auto t = detail::ewise_mult_compute<W>(op, a, b);
  detail::write_back(c, mask, accum, desc, std::move(t));
}

}  // namespace grb
