// Monoids and semirings. A semiring pairs a commutative additive monoid
// (op + identity) with a multiplicative binary op; matrix products evaluate
// C(i,j) = ⊕_k A(i,k) ⊗ B(k,j) over non-empty positions only.
#pragma once

#include "grb/binary_ops.hpp"

namespace grb {

/// Commutative monoid: associative binary op with an identity element.
template <typename T, typename Op>
struct Monoid {
  using value_type = T;
  Op op{};
  T identity{};

  constexpr T operator()(const T& x, const T& y) const noexcept(
      noexcept(op(x, y))) {
    return op(x, y);
  }
};

/// Semiring: additive monoid ⊕ plus multiplicative op ⊗.
template <typename AddMonoid, typename MulOp>
struct Semiring {
  using value_type = typename AddMonoid::value_type;
  AddMonoid add{};
  MulOp mul{};
};

// --- Monoid factories -------------------------------------------------------

template <typename T>
constexpr auto plus_monoid() {
  return Monoid<T, Plus<T>>{Plus<T>{}, Plus<T>::identity()};
}

template <typename T>
constexpr auto times_monoid() {
  return Monoid<T, Times<T>>{Times<T>{}, Times<T>::identity()};
}

template <typename T>
constexpr auto min_monoid() {
  return Monoid<T, Min<T>>{Min<T>{}, Min<T>::identity()};
}

template <typename T>
constexpr auto max_monoid() {
  return Monoid<T, Max<T>>{Max<T>{}, Max<T>::identity()};
}

template <typename T>
constexpr auto lor_monoid() {
  return Monoid<T, LOr<T>>{LOr<T>{}, LOr<T>::identity()};
}

template <typename T>
constexpr auto land_monoid() {
  return Monoid<T, LAnd<T>>{LAnd<T>{}, LAnd<T>::identity()};
}

// --- Semiring factories (the catalogue the solution uses) -------------------

/// plus_times: conventional arithmetic semiring. Used by Q2 incremental
/// Step 1 (NewFriendsᵀ × Likesᵀ counts how many endpoints of a friendship
/// like each comment).
template <typename T>
constexpr auto plus_times_semiring() {
  return Semiring<Monoid<T, Plus<T>>, Times<T>>{plus_monoid<T>(), Times<T>{}};
}

/// plus_second: sums the right operand over structural matches. Used by
/// Alg. 1 line 8 (RootPost ⊕.⊗ likesCount — the matrix is boolean, so the
/// product reduces to summing the selected vector cells).
template <typename T>
constexpr auto plus_second_semiring() {
  return Semiring<Monoid<T, Plus<T>>, Second<T>>{plus_monoid<T>(),
                                                 Second<T>{}};
}

/// plus_first: mirror image of plus_second.
template <typename T>
constexpr auto plus_first_semiring() {
  return Semiring<Monoid<T, Plus<T>>, First<T>>{plus_monoid<T>(), First<T>{}};
}

/// plus_pair: counts structural matches (ignores both values).
template <typename T>
constexpr auto plus_pair_semiring() {
  return Semiring<Monoid<T, Plus<T>>, Pair<T>>{plus_monoid<T>(), Pair<T>{}};
}

/// min_second: propagates the minimum of the right operand — the semiring of
/// FastSV's hooking step (f = min(f, A ⊗ gf)).
template <typename T>
constexpr auto min_second_semiring() {
  return Semiring<Monoid<T, Min<T>>, Second<T>>{min_monoid<T>(), Second<T>{}};
}

/// min_first.
template <typename T>
constexpr auto min_first_semiring() {
  return Semiring<Monoid<T, Min<T>>, First<T>>{min_monoid<T>(), First<T>{}};
}

/// lor_land: boolean reachability semiring (BFS frontier expansion).
template <typename T>
constexpr auto lor_land_semiring() {
  return Semiring<Monoid<T, LOr<T>>, LAnd<T>>{lor_monoid<T>(), LAnd<T>{}};
}

/// max_second.
template <typename T>
constexpr auto max_second_semiring() {
  return Semiring<Monoid<T, Max<T>>, Second<T>>{max_monoid<T>(), Second<T>{}};
}

}  // namespace grb
