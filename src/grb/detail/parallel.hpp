// OpenMP helpers shared by the grb kernels. All parallelism in the library
// funnels through these so the global thread cap (grb::set_threads) is
// respected everywhere, mirroring SuiteSparse's GxB_NTHREADS control.
//
// This header is the ONLY place a `#pragma omp` may appear — the repo lint
// (tools/lint_invariants.py, run as a ctest case and a CI job) rejects the
// pragma anywhere else. Confining the pragmas here is what makes the
// concurrency-correctness layer tractable: the TSan happens-before
// annotations (GRB_TSAN_RELEASE/ACQUIRE, see check.hpp) and the debug
// chunk-grid overlap claims cover every parallel construct in the library
// by covering the handful of drivers below.
#pragma once

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <cstdint>
#include <exception>
#include <mutex>
#include <span>
#include <vector>

#include "grb/context.hpp"
#include "grb/detail/check.hpp"
#include "grb/detail/workspace.hpp"
#include "grb/types.hpp"

namespace grb::detail {

/// Minimum amount of work before a kernel bothers spawning threads; tiny
/// operands (the common case for incremental deltas) stay serial.
inline constexpr Index kParallelThreshold = 4096;

/// Dispatch grain of parallel_for: indices are handed to the team in
/// contiguous blocks of this many, each claimed as one debug overlap-grid
/// range (the same grain the old schedule(dynamic, 256) used).
inline constexpr Index kParallelGrain = 256;

/// Threads actually worth spawning. An explicitly pinned cap
/// (grb::set_threads with n >= 1) is honoured as-is: the paper's harness
/// pins 1 vs 8 threads on the same binary, and the parallel-equivalence
/// suite deliberately oversubscribes small CI runners to drive the
/// multi-threaded code paths. The unpinned default is clamped to the
/// processors available to this process (omp_get_num_procs respects
/// cpusets/affinity), where oversubscription only buys barrier overhead.
inline int effective_threads() noexcept {
#ifdef _OPENMP
  if (grb::threads_pinned()) return grb::threads();
  const int procs = omp_get_num_procs();
  return grb::threads() < procs ? grb::threads() : procs;
#else
  return 1;
#endif
}

/// Runs f(i) for i in [0, n), in parallel when worthwhile. `work_hint`
/// estimates total work (defaults to n) to decide serial vs parallel.
/// Workers draw kParallelGrain-wide index blocks dynamically; each block is
/// claimed on a debug overlap grid before it runs, so a scheduling bug that
/// handed the same indices to two workers aborts in Debug builds.
template <typename F>
void parallel_for(Index n, F&& f, Index work_hint = 0) {
  const Index work = work_hint == 0 ? n : work_hint;
  const int nthreads = effective_threads();
  if (nthreads <= 1 || work < kParallelThreshold) {
    for (Index i = 0; i < n; ++i) f(i);
    return;
  }
#ifdef _OPENMP
  OverlapChecker overlap("parallel_for");
  const auto nchunks = static_cast<std::int64_t>(
      (n + kParallelGrain - 1) / kParallelGrain);
  GRB_TSAN_RELEASE(&overlap);
#pragma omp parallel num_threads(nthreads)
  {
    GRB_TSAN_ACQUIRE(&overlap);
#pragma omp for schedule(dynamic)
    for (std::int64_t c = 0; c < nchunks; ++c) {
      const Index lo = static_cast<Index>(c) * kParallelGrain;
      const Index hi = std::min<Index>(n, lo + kParallelGrain);
      [[maybe_unused]] const auto claim = overlap.claim(lo, hi);
      for (Index i = lo; i < hi; ++i) f(i);
    }
    GRB_TSAN_RELEASE(&overlap);
  }
  GRB_TSAN_ACQUIRE(&overlap);
#else
  for (Index i = 0; i < n; ++i) f(i);
#endif
}

/// Parallel region with per-thread setup: g(thread_id, nthreads) is run once
/// per thread; useful for kernels that keep per-thread scratch (SPAs).
template <typename G>
void parallel_region(G&& g) {
  const int nthreads = effective_threads();
  if (nthreads <= 1) {
    g(0, 1);
    return;
  }
#ifdef _OPENMP
  char fork_join_sync = 0;
  GRB_TSAN_RELEASE(&fork_join_sync);
#pragma omp parallel num_threads(nthreads)
  {
    GRB_TSAN_ACQUIRE(&fork_join_sync);
    g(omp_get_thread_num(), omp_get_num_threads());
    GRB_TSAN_RELEASE(&fork_join_sync);
  }
  GRB_TSAN_ACQUIRE(&fork_join_sync);
#else
  g(0, 1);
#endif
}

/// Coarse-task fan-out (one task ≈ one engine shard): runs f(i) for i in
/// [0, n) on a team of min(n, effective_threads()) threads, one task per
/// dispatch, collecting exceptions — the first thrown is rethrown on the
/// calling thread after the join. Each task claims its index on a debug
/// overlap grid, so a dispatch that handed the same task to two workers
/// aborts in Debug builds. The shard layer's for_each_shard runs through
/// this; nothing outside this header may open its own omp region.
template <typename F>
void parallel_tasks(Index n, F&& f) {
  OverlapChecker overlap("parallel_tasks");
#ifdef _OPENMP
  const int team = static_cast<int>(
      std::min<Index>(n, static_cast<Index>(effective_threads())));
  if (team > 1) {
    std::exception_ptr first_error;
    std::mutex error_mu;
    const auto ni = static_cast<std::int64_t>(n);
    GRB_TSAN_RELEASE(&overlap);
#pragma omp parallel num_threads(team)
    {
      GRB_TSAN_ACQUIRE(&overlap);
#pragma omp for schedule(dynamic, 1)
      for (std::int64_t i = 0; i < ni; ++i) {
        try {
          [[maybe_unused]] const auto claim =
              overlap.claim(static_cast<Index>(i), static_cast<Index>(i) + 1);
          f(static_cast<Index>(i));
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
      GRB_TSAN_RELEASE(&overlap);
    }
    GRB_TSAN_ACQUIRE(&overlap);
    if (first_error) std::rethrow_exception(first_error);
    return;
  }
#endif
  for (Index i = 0; i < n; ++i) {
    [[maybe_unused]] const auto claim = overlap.claim(i, i + 1);
    f(i);
  }
}

/// The staged two-pass drivers' serial-vs-parallel gate (build_csr_staged,
/// build_sparse_staged, scatter_reduce), exposed so callers that share
/// scratch across rows (mxm's small-work SPA) can key off the exact same
/// decision instead of duplicating it.
inline bool staged_runs_parallel(Index n, Index work_hint = 0) {
  const Index work = work_hint == 0 ? n : work_hint;
  return effective_threads() > 1 && work >= kParallelThreshold;
}

/// Chunk width of parallel_fold's reduction grid. Fixed (never derived from
/// the delivered team size) so the fold tree — and therefore the result,
/// even for non-associative float addition — is bit-identical across thread
/// counts.
inline constexpr Index kFoldChunk = 4096;

/// Deterministic parallel reduction: the domain [0, n) is cut into
/// fixed-width chunks, `chunk_fold(lo, hi)` reduces each chunk serially (in
/// parallel across chunks), and the per-chunk partials are joined in chunk
/// order. The tree shape depends only on n, so results are reproducible at
/// any thread count. (The repo lint bans `omp reduction` clauses outright —
/// their combination order varies with the team size — so this is the only
/// sanctioned parallel reduction.)
template <typename S, typename ChunkF, typename JoinF>
S parallel_fold(Index n, S init, ChunkF&& chunk_fold, JoinF&& join) {
  if (n == 0) return init;
  const Index nchunks = (n + kFoldChunk - 1) / kFoldChunk;
  if (nchunks == 1) return join(init, chunk_fold(Index{0}, n));
  auto partial_lease = workspace().lease<S>(nchunks);
  auto& partial = *partial_lease;
  partial.resize(nchunks);
  parallel_for(
      nchunks,
      [&](Index c) {
        const Index lo = c * kFoldChunk;
        const Index hi = std::min<Index>(n, lo + kFoldChunk);
        partial[c] = chunk_fold(lo, hi);
      },
      n);
  S acc = init;
  for (const S& p : partial) acc = join(acc, p);
  return acc;
}

/// In-place exclusive prefix sum in CSR rowptr convention: on entry
/// rowptr[i + 1] holds the entry count of row i and rowptr[0] == 0; on exit
/// rowptr[i] is row i's starting offset and rowptr[n] the total, which is
/// returned. This is the symbolic→numeric handoff of the two-pass kernel
/// pipeline; large arrays scan chunk-wise in parallel.
inline Index parallel_scan(std::span<Index> rowptr) {
  if (rowptr.size() <= 1) return 0;
  const Index n = static_cast<Index>(rowptr.size() - 1);
  const int nthreads = effective_threads();
  if (nthreads <= 1 || n < kParallelThreshold) {
    for (Index i = 0; i < n; ++i) rowptr[i + 1] += rowptr[i];
    return rowptr[n];
  }
#ifdef _OPENMP
  // Two-phase chunk scan: each thread sums its contiguous chunk, one thread
  // scans the chunk totals, then each thread rescans its chunk shifted by
  // the chunk offset. Barriers separate the phases; each physical barrier
  // carries a matching TSan release/acquire pair because libgomp's futex
  // barriers are invisible to the sanitizer.
  auto chunk_sum_lease =
      workspace().lease<Index>(static_cast<std::size_t>(nthreads) + 1);
  auto& chunk_sum = *chunk_sum_lease;
  chunk_sum.assign(static_cast<std::size_t>(nthreads) + 1, 0);
  char single_sync = 0;
  parallel_region([&](int tid, int nt) {
    const Index chunk = (n + static_cast<Index>(nt) - 1) / static_cast<Index>(nt);
    const Index lo = std::min<Index>(n, chunk * static_cast<Index>(tid));
    const Index hi = std::min<Index>(n, lo + chunk);
    Index sum = 0;
    for (Index i = lo; i < hi; ++i) sum += rowptr[i + 1];
    chunk_sum[static_cast<std::size_t>(tid) + 1] = sum;
    GRB_TSAN_RELEASE(&chunk_sum);
#pragma omp barrier
    GRB_TSAN_ACQUIRE(&chunk_sum);
#pragma omp single
    {
      for (int t = 0; t + 1 < static_cast<int>(chunk_sum.size()); ++t) {
        chunk_sum[static_cast<std::size_t>(t) + 1] +=
            chunk_sum[static_cast<std::size_t>(t)];
      }
      GRB_TSAN_RELEASE(&single_sync);
    }
    // Implicit barrier at the end of `single` orders the rescan after it.
    GRB_TSAN_ACQUIRE(&single_sync);
    Index run = chunk_sum[static_cast<std::size_t>(tid)];
    for (Index i = lo; i < hi; ++i) {
      run += rowptr[i + 1];
      rowptr[i + 1] = run;
    }
  });
  return rowptr[n];
#else
  for (Index i = 0; i < n; ++i) rowptr[i + 1] += rowptr[i];
  return rowptr[n];
#endif
}

}  // namespace grb::detail
