// OpenMP helpers shared by the grb kernels. All parallelism in the library
// funnels through these so the global thread cap (grb::set_threads) is
// respected everywhere, mirroring SuiteSparse's GxB_NTHREADS control.
#pragma once

#ifdef _OPENMP
#include <omp.h>
#endif

#include <cstdint>

#include "grb/context.hpp"
#include "grb/types.hpp"

namespace grb::detail {

/// Minimum amount of work before a kernel bothers spawning threads; tiny
/// operands (the common case for incremental deltas) stay serial.
inline constexpr Index kParallelThreshold = 4096;

/// Runs f(i) for i in [0, n), in parallel when worthwhile. `work_hint`
/// estimates total work (defaults to n) to decide serial vs parallel.
template <typename F>
void parallel_for(Index n, F&& f, Index work_hint = 0) {
  const Index work = work_hint == 0 ? n : work_hint;
  const int nthreads = grb::threads();
  if (nthreads <= 1 || work < kParallelThreshold) {
    for (Index i = 0; i < n; ++i) f(i);
    return;
  }
#ifdef _OPENMP
  const auto ni = static_cast<std::int64_t>(n);
#pragma omp parallel for num_threads(nthreads) schedule(dynamic, 256)
  for (std::int64_t i = 0; i < ni; ++i) {
    f(static_cast<Index>(i));
  }
#else
  for (Index i = 0; i < n; ++i) f(i);
#endif
}

/// Parallel region with per-thread setup: g(thread_id, nthreads) is run once
/// per thread; useful for kernels that keep per-thread scratch (SPAs).
template <typename G>
void parallel_region(G&& g) {
  const int nthreads = grb::threads();
  if (nthreads <= 1) {
    g(0, 1);
    return;
  }
#ifdef _OPENMP
#pragma omp parallel num_threads(nthreads)
  { g(omp_get_thread_num(), omp_get_num_threads()); }
#else
  g(0, 1);
#endif
}

}  // namespace grb::detail
