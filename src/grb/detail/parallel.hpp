// OpenMP helpers shared by the grb kernels. All parallelism in the library
// funnels through these so the global thread cap (grb::set_threads) is
// respected everywhere, mirroring SuiteSparse's GxB_NTHREADS control.
#pragma once

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "grb/context.hpp"
#include "grb/types.hpp"

namespace grb::detail {

/// Minimum amount of work before a kernel bothers spawning threads; tiny
/// operands (the common case for incremental deltas) stay serial.
inline constexpr Index kParallelThreshold = 4096;

/// Threads actually worth spawning: the global cap (grb::set_threads)
/// clamped to the processors available to this process. omp_get_num_procs
/// respects cpusets/affinity, so a container pinned to one core runs
/// serial even when the cap asks for eight — oversubscription only buys
/// barrier overhead.
inline int effective_threads() noexcept {
#ifdef _OPENMP
  const int procs = omp_get_num_procs();
  return grb::threads() < procs ? grb::threads() : procs;
#else
  return 1;
#endif
}

/// Runs f(i) for i in [0, n), in parallel when worthwhile. `work_hint`
/// estimates total work (defaults to n) to decide serial vs parallel.
template <typename F>
void parallel_for(Index n, F&& f, Index work_hint = 0) {
  const Index work = work_hint == 0 ? n : work_hint;
  const int nthreads = effective_threads();
  if (nthreads <= 1 || work < kParallelThreshold) {
    for (Index i = 0; i < n; ++i) f(i);
    return;
  }
#ifdef _OPENMP
  const auto ni = static_cast<std::int64_t>(n);
#pragma omp parallel for num_threads(nthreads) schedule(dynamic, 256)
  for (std::int64_t i = 0; i < ni; ++i) {
    f(static_cast<Index>(i));
  }
#else
  for (Index i = 0; i < n; ++i) f(i);
#endif
}

/// Parallel region with per-thread setup: g(thread_id, nthreads) is run once
/// per thread; useful for kernels that keep per-thread scratch (SPAs).
template <typename G>
void parallel_region(G&& g) {
  const int nthreads = effective_threads();
  if (nthreads <= 1) {
    g(0, 1);
    return;
  }
#ifdef _OPENMP
#pragma omp parallel num_threads(nthreads)
  { g(omp_get_thread_num(), omp_get_num_threads()); }
#else
  g(0, 1);
#endif
}

/// In-place exclusive prefix sum in CSR rowptr convention: on entry
/// rowptr[i + 1] holds the entry count of row i and rowptr[0] == 0; on exit
/// rowptr[i] is row i's starting offset and rowptr[n] the total, which is
/// returned. This is the symbolic→numeric handoff of the two-pass kernel
/// pipeline; large arrays scan chunk-wise in parallel.
inline Index parallel_scan(std::span<Index> rowptr) {
  if (rowptr.size() <= 1) return 0;
  const Index n = static_cast<Index>(rowptr.size() - 1);
  const int nthreads = effective_threads();
  if (nthreads <= 1 || n < kParallelThreshold) {
    for (Index i = 0; i < n; ++i) rowptr[i + 1] += rowptr[i];
    return rowptr[n];
  }
#ifdef _OPENMP
  // Two-phase chunk scan: each thread sums its contiguous chunk, one thread
  // scans the chunk totals, then each thread rescans its chunk shifted by
  // the chunk offset. Barriers separate the phases.
  std::vector<Index> chunk_sum(static_cast<std::size_t>(nthreads) + 1, 0);
  parallel_region([&](int tid, int nt) {
    const Index chunk = (n + static_cast<Index>(nt) - 1) / static_cast<Index>(nt);
    const Index lo = std::min<Index>(n, chunk * static_cast<Index>(tid));
    const Index hi = std::min<Index>(n, lo + chunk);
    Index sum = 0;
    for (Index i = lo; i < hi; ++i) sum += rowptr[i + 1];
    chunk_sum[static_cast<std::size_t>(tid) + 1] = sum;
#pragma omp barrier
#pragma omp single
    for (int t = 0; t + 1 < static_cast<int>(chunk_sum.size()); ++t) {
      chunk_sum[static_cast<std::size_t>(t) + 1] +=
          chunk_sum[static_cast<std::size_t>(t)];
    }
    // Implicit barrier at the end of `single` orders the rescan after it.
    Index run = chunk_sum[static_cast<std::size_t>(tid)];
    for (Index i = lo; i < hi; ++i) {
      run += rowptr[i + 1];
      rowptr[i + 1] = run;
    }
  });
  return rowptr[n];
#else
  for (Index i = 0; i < n; ++i) rowptr[i + 1] += rowptr[i];
  return rowptr[n];
#endif
}

}  // namespace grb::detail
