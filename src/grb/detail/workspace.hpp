// Context-owned workspace arena: size-bucketed, thread-team-aware buffer
// pools that let every kernel acquire its dense scratch, per-thread staging
// vectors and output storage without touching the system allocator on the
// steady state. The paper's headline loop (Fig. 5) re-runs the same kernels
// on near-identical operand shapes once per change set; SuiteSparse:GraphBLAS
// amortises exactly this malloc/page-fault tax with cached internal
// workspaces, and this arena plays the same role here.
//
// Design:
//   * Buffers are std::vector<T>s kept in power-of-two capacity classes
//     (size buckets). A lease request of n elements is served by any cached
//     buffer of the request's class or the next two classes up, so a buffer
//     is never wasted on a request orders of magnitude smaller.
//   * The pool is sharded by thread: each OS thread leases from and donates
//     to its own shard (one uncontended mutex), so per-thread scratch
//     acquired inside OpenMP regions (mxm SPAs, staged builders) never
//     serialises on a global lock. The OpenMP runtime reuses its thread
//     pool across parallel regions, so shards stay warm across kernel
//     calls. On a local miss the other shards are probed (work-stealing)
//     before new memory is allocated — only a pool-wide miss allocates.
//   * Lease<T> is an RAII handle: the buffer returns to the pool when the
//     lease dies. detach() severs the pool link and hands the vector out,
//     which is how builders transfer finished CSR arrays into a Matrix;
//     grb::recycle(std::move(m)) donates them back when the object retires,
//     closing the capacity-reuse cycle.
//   * TeamLease<T> bundles one buffer per thread of a team (per-thread
//     accumulators, staging buffers), acquired before the parallel region
//     so the region itself stays lock-free.
//
// Acquired buffers always arrive clear()ed (size 0, capacity >= request);
// kernels reinitialise them exactly as they would a fresh vector (resize
// zero-fills, assign overwrites), so recycled memory can never leak stale
// values into results and the parallel-equivalence guarantees are
// unaffected by the arena.
#pragma once

#ifdef GRB_WORKSPACE_TRACE_MISSES
#include <cstdio>
#include <typeinfo>
#ifdef GRB_WORKSPACE_TRACE_BACKTRACE
#include <execinfo.h>
#endif
#endif

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "grb/types.hpp"

namespace grb {

/// Arena instrumentation, exposed via Context::workspace_stats(). Counters
/// accumulate since the last reset; gauges describe the pool right now.
struct WorkspaceStats {
  // Counters.
  std::uint64_t hits = 0;        ///< leases served from the caller's shard
  std::uint64_t steals = 0;      ///< leases served from another shard
  std::uint64_t misses = 0;      ///< leases that had to allocate fresh memory
  std::uint64_t bytes_leased = 0;  ///< total requested bytes across leases
  std::uint64_t donations = 0;   ///< buffers returned/donated to the pool
  std::uint64_t drops = 0;       ///< donations rejected (bucket full / tiny)
  // Gauges.
  std::uint64_t buffers_cached = 0;
  std::uint64_t bytes_cached = 0;

  [[nodiscard]] std::uint64_t leases() const noexcept {
    return hits + steals + misses;
  }
};

namespace detail {

class Workspace;

/// RAII handle on a pooled buffer. Move-only; returns the buffer to the
/// workspace on destruction unless detach()ed.
template <typename T>
class Lease {
 public:
  Lease() = default;
  Lease(Workspace* ws, std::vector<T>&& buf) noexcept
      : ws_(ws), buf_(std::move(buf)) {}
  Lease(Lease&& o) noexcept : ws_(o.ws_), buf_(std::move(o.buf_)) {
    o.ws_ = nullptr;
  }
  Lease& operator=(Lease&& o) noexcept {
    if (this != &o) {
      release();
      ws_ = o.ws_;
      buf_ = std::move(o.buf_);
      o.ws_ = nullptr;
    }
    return *this;
  }
  Lease(const Lease&) = delete;
  Lease& operator=(const Lease&) = delete;
  ~Lease() { release(); }

  [[nodiscard]] std::vector<T>& get() noexcept { return buf_; }
  [[nodiscard]] const std::vector<T>& get() const noexcept { return buf_; }
  std::vector<T>& operator*() noexcept { return buf_; }
  const std::vector<T>& operator*() const noexcept { return buf_; }
  std::vector<T>* operator->() noexcept { return &buf_; }
  const std::vector<T>* operator->() const noexcept { return &buf_; }

  /// Hands the buffer out of the arena (ownership moves to the caller; the
  /// lease becomes empty and returns nothing on destruction). Containers
  /// built from detached buffers re-enter the pool via grb::recycle().
  [[nodiscard]] std::vector<T> detach() noexcept {
    ws_ = nullptr;
    return std::move(buf_);
  }

 private:
  void release();  // defined after Workspace

  Workspace* ws_ = nullptr;
  std::vector<T> buf_;
};

/// One pooled buffer per thread of a team, acquired up front so parallel
/// regions stay lock-free. buf(tid) is thread tid's buffer.
template <typename T>
class TeamLease {
 public:
  TeamLease() = default;
  explicit TeamLease(std::vector<Lease<T>>&& parts) noexcept
      : parts_(std::move(parts)) {}

  [[nodiscard]] std::size_t size() const noexcept { return parts_.size(); }
  [[nodiscard]] std::vector<T>& buf(std::size_t i) noexcept {
    return *parts_[i];
  }

 private:
  std::vector<Lease<T>> parts_;
};

class Workspace {
 public:
  /// Smallest element count worth pooling (donations below it are dropped).
  /// Callers that keep storage across moves — where a replaced buffer frees
  /// silently rather than recycling — should stay on plain allocation under
  /// this size so pool-origin buffers cannot leak out of the arena.
  static constexpr std::size_t kMinBuffer = 64;

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Acquires a buffer with capacity >= n elements, cleared. Prefers a
  /// close-fitting buffer from the calling thread's shard, then from the
  /// other shards (work-stealing); if no close fit exists anywhere, any
  /// larger cached buffer is taken (buffers migrate to higher classes as
  /// they grow through push_back, so without this fallback the small
  /// classes would drain permanently). Only a pool-wide miss allocates.
  template <typename T>
  [[nodiscard]] Lease<T> lease(std::size_t n) {
    const int cls = size_class(n);
    const std::size_t home = current_shard();
    for (const bool any_fit : {false, true}) {
      for (std::size_t probe = 0; probe < kShards; ++probe) {
        const std::size_t s = (home + probe) % kShards;
        if (auto buf = try_acquire<T>(shards_[s], cls, any_fit)) {
          (probe == 0 ? hits_ : steals_)
              .fetch_add(1, std::memory_order_relaxed);
          bytes_leased_.fetch_add(n * sizeof(T), std::memory_order_relaxed);
          return Lease<T>(this, std::move(*buf));
        }
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    bytes_leased_.fetch_add(n * sizeof(T), std::memory_order_relaxed);
#ifdef GRB_WORKSPACE_TRACE_MISSES
    // Miss forensics for arena regressions: every steady-state miss means
    // some container with pool-origin storage retired without grb::recycle.
    std::fprintf(stderr, "[workspace miss] type=%s n=%zu class=%d\n",
                 typeid(T).name(), n, cls);
#ifdef GRB_WORKSPACE_TRACE_BACKTRACE
    {
      void* fr[10];
      backtrace_symbols_fd(fr, backtrace(fr, 10), 2);
    }
#endif
#endif
    std::vector<T> fresh;
    fresh.reserve(std::size_t{1} << cls);
    return Lease<T>(this, std::move(fresh));
  }

  /// Acquires `team` buffers of capacity >= n each (per-thread scratch for a
  /// thread team). Re-leasing with a different team size reuses whatever the
  /// previous team donated and tops up the difference.
  template <typename T>
  [[nodiscard]] TeamLease<T> lease_team(std::size_t team, std::size_t n) {
    std::vector<Lease<T>> parts;
    parts.reserve(team);
    for (std::size_t t = 0; t < team; ++t) parts.push_back(lease<T>(n));
    return TeamLease<T>(std::move(parts));
  }

  /// Donates a buffer's capacity to the pool (the storage-recycling entry
  /// point: finished leases land here automatically, retired Matrix/Vector
  /// storage via grb::recycle). Tiny buffers and full buckets are dropped.
  template <typename T>
  void donate(std::vector<T>&& buf) {
    const std::size_t cap = buf.capacity();
    if (cap < (std::size_t{1} << kMinClass)) {
      if (cap != 0) drops_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    buf.clear();
    const int cls = floor_class(cap);
    Shard& sh = shards_[current_shard()];
    std::lock_guard<std::mutex> lock(sh.mu);
    auto& bucket = pool_of<T>(sh).bucket[static_cast<std::size_t>(cls)];
    if (bucket.size() >= kMaxPerBucket ||
        sh.bytes_cached + cap * sizeof(T) > kMaxBytesPerShard) {
      drops_.fetch_add(1, std::memory_order_relaxed);
      return;  // buf frees on scope exit
    }
    sh.buffers_cached += 1;
    sh.bytes_cached += cap * sizeof(T);
    bucket.push_back(std::move(buf));
    donations_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] WorkspaceStats stats() const {
    WorkspaceStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.steals = steals_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.bytes_leased = bytes_leased_.load(std::memory_order_relaxed);
    s.donations = donations_.load(std::memory_order_relaxed);
    s.drops = drops_.load(std::memory_order_relaxed);
    for (const Shard& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh.mu);
      s.buffers_cached += sh.buffers_cached;
      s.bytes_cached += sh.bytes_cached;
    }
    return s;
  }

  /// Zeroes the counters (hits/steals/misses/bytes/donations/drops); the
  /// cached-buffer gauges keep describing the live pool.
  void reset_stats() {
    hits_.store(0, std::memory_order_relaxed);
    steals_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    bytes_leased_.store(0, std::memory_order_relaxed);
    donations_.store(0, std::memory_order_relaxed);
    drops_.store(0, std::memory_order_relaxed);
  }

  /// Frees every cached buffer (outstanding leases are unaffected). Returns
  /// the number of bytes released back to the system.
  std::size_t trim() {
    std::size_t freed = 0;
    for (Shard& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh.mu);
      for (auto& [type, pool] : sh.pools) {
        pool->trim();
      }
      freed += sh.bytes_cached;
      sh.bytes_cached = 0;
      sh.buffers_cached = 0;
    }
    return freed;
  }

 private:
  static constexpr std::size_t kShards = 16;
  static constexpr int kNumClasses = 44;
  /// Smallest pooled capacity class: 2^6 = kMinBuffer elements. Requests
  /// round up to it; smaller donations are not worth tracking.
  static constexpr int kMinClass = 6;
  static_assert(std::size_t{1} << kMinClass == kMinBuffer);
  static constexpr std::size_t kMaxPerBucket = 256;
  /// Safety valve against unbounded cache growth in long-lived processes
  /// working through successively larger graphs: donations that would push
  /// a shard past this are dropped. Far above the working set of the
  /// bench/test workloads (tens of MiB at SF 512), so the zero-miss gates
  /// never see it; trim_workspace() reclaims everything on demand.
  static constexpr std::size_t kMaxBytesPerShard = std::size_t{512} << 20;

  struct PoolBase {
    virtual ~PoolBase() = default;
    virtual void trim() = 0;
  };

  template <typename T>
  struct Pool final : PoolBase {
    // bucket[c] holds buffers with capacity in [2^c, 2^(c+1)), so every
    // buffer in bucket c satisfies any request of class <= c.
    std::array<std::vector<std::vector<T>>, kNumClasses> bucket;
    void trim() override {
      for (auto& b : bucket) {
        b.clear();
        b.shrink_to_fit();
      }
    }
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::type_index, std::unique_ptr<PoolBase>> pools;
    std::size_t buffers_cached = 0;
    std::size_t bytes_cached = 0;
  };

  /// Smallest class c with 2^c >= max(n, 2^kMinClass).
  static int size_class(std::size_t n) noexcept {
    const int c = n <= 1 ? 0 : static_cast<int>(std::bit_width(n - 1));
    return c < kMinClass ? kMinClass
                         : (c >= kNumClasses ? kNumClasses - 1 : c);
  }

  /// Largest class c with 2^c <= cap (the bucket a donated buffer lands in).
  static int floor_class(std::size_t cap) noexcept {
    const int c = static_cast<int>(std::bit_width(cap)) - 1;
    return c >= kNumClasses ? kNumClasses - 1 : c;
  }

  static std::size_t current_shard() noexcept {
    return std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  }

  template <typename T>
  Pool<T>& pool_of(Shard& sh) {  // sh.mu must be held
    auto& slot = sh.pools[std::type_index(typeid(T))];
    if (!slot) slot = std::make_unique<Pool<T>>();
    return static_cast<Pool<T>&>(*slot);
  }

  /// Pops a buffer of class cls (close fit: up to two classes larger;
  /// any_fit: smallest available of any larger class) from one shard;
  /// nullopt when the shard has nothing suitable.
  template <typename T>
  std::optional<std::vector<T>> try_acquire(Shard& sh, int cls, bool any_fit) {
    std::lock_guard<std::mutex> lock(sh.mu);
    const auto it = sh.pools.find(std::type_index(typeid(T)));
    if (it == sh.pools.end()) return std::nullopt;
    auto& pool = static_cast<Pool<T>&>(*it->second);
    const int hi =
        any_fit ? kNumClasses : (cls + 3 > kNumClasses ? kNumClasses : cls + 3);
    for (int c = cls; c < hi; ++c) {
      auto& bucket = pool.bucket[static_cast<std::size_t>(c)];
      if (bucket.empty()) continue;
      std::vector<T> buf = std::move(bucket.back());
      bucket.pop_back();
      sh.buffers_cached -= 1;
      sh.bytes_cached -= buf.capacity() * sizeof(T);
      return buf;
    }
    return std::nullopt;
  }

  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> bytes_leased_{0};
  std::atomic<std::uint64_t> donations_{0};
  std::atomic<std::uint64_t> drops_{0};
};

template <typename T>
void Lease<T>::release() {
  if (ws_ != nullptr) {
    ws_->donate(std::move(buf_));
    ws_ = nullptr;
  }
}

/// The process-wide arena owned by grb::Context (defined in context.cpp).
[[nodiscard]] Workspace& workspace() noexcept;

}  // namespace detail
}  // namespace grb
