// Context-owned workspace arena: size-bucketed, thread-team-aware buffer
// pools that let every kernel acquire its dense scratch, per-thread staging
// vectors and output storage without touching the system allocator on the
// steady state. The paper's headline loop (Fig. 5) re-runs the same kernels
// on near-identical operand shapes once per change set; SuiteSparse:GraphBLAS
// amortises exactly this malloc/page-fault tax with cached internal
// workspaces, and this arena plays the same role here.
//
// Design:
//   * Buffers are std::vector<T>s kept in power-of-two capacity classes
//     (size buckets). A lease request of n elements is served by any cached
//     buffer of the request's class or the next two classes up, so a buffer
//     is never wasted on a request orders of magnitude smaller.
//   * The pool is sharded by thread: each OS thread leases from and donates
//     to its own shard (one uncontended mutex), so per-thread scratch
//     acquired inside OpenMP regions (mxm SPAs, staged builders) never
//     serialises on a global lock. The OpenMP runtime reuses its thread
//     pool across parallel regions, so shards stay warm across kernel
//     calls. On a local miss the other shards are probed (work-stealing)
//     before new memory is allocated — only a pool-wide miss allocates.
//   * Lease<T> is an RAII handle: the buffer returns to the pool when the
//     lease dies. detach() severs the pool link and hands the vector out,
//     which is how builders transfer finished CSR arrays into a Matrix;
//     grb::recycle(std::move(m)) donates them back when the object retires,
//     closing the capacity-reuse cycle.
//   * TeamLease<T> bundles one buffer per thread of a team (per-thread
//     accumulators, staging buffers), acquired before the parallel region
//     so the region itself stays lock-free.
//
// Acquired buffers always arrive clear()ed (size 0, capacity >= request);
// kernels reinitialise them exactly as they would a fresh vector (resize
// zero-fills, assign overwrites), so recycled memory can never leak stale
// values into results and the parallel-equivalence guarantees are
// unaffected by the arena.
#pragma once

#ifdef GRB_WORKSPACE_TRACE_MISSES
#include <cstdio>
#ifdef GRB_WORKSPACE_TRACE_BACKTRACE
#include <execinfo.h>
#endif
#endif

#include "grb/detail/check.hpp"

#if defined(GRB_WORKSPACE_TRACE_MISSES) || GRB_CHECKS_ENABLED
#include <typeinfo>
#endif

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "grb/types.hpp"

namespace grb {

/// Arena instrumentation, exposed via Context::workspace_stats(). Counters
/// accumulate since the last reset; gauges describe the pool right now.
struct WorkspaceStats {
  // Counters.
  std::uint64_t hits = 0;        ///< leases served from the caller's shard
  std::uint64_t steals = 0;      ///< leases served from another shard
  std::uint64_t misses = 0;      ///< leases that had to allocate fresh memory
  std::uint64_t bytes_leased = 0;  ///< total requested bytes across leases
  std::uint64_t donations = 0;   ///< buffers returned/donated to the pool
  std::uint64_t drops = 0;       ///< donations rejected (bucket full / tiny)
  /// High-watermark splits: leases where the only cached candidates sat
  /// above the oversize watermark, so the big buffer was kept whole and the
  /// request took the (also counted) miss path instead. The freshly
  /// allocated right-sized buffer populates the small class on donation —
  /// the malloc-backed equivalent of splitting off the tail.
  std::uint64_t splits = 0;
  /// Shrink-on-detach events: a pool-origin buffer left the arena far
  /// oversized for its contents, so its storage was swapped for a
  /// right-sized lease and the big buffer was donated back instead of
  /// staying pinned inside a small long-lived container.
  std::uint64_t shrinks = 0;
  // Gauges.
  std::uint64_t buffers_cached = 0;
  std::uint64_t bytes_cached = 0;

  [[nodiscard]] std::uint64_t leases() const noexcept {
    return hits + steals + misses;
  }
  /// Fraction of leases served from cache (1.0 when there were no leases —
  /// an idle domain has nothing to miss).
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t l = leases();
    return l == 0 ? 1.0 : static_cast<double>(l - misses) /
                              static_cast<double>(l);
  }
};

namespace detail {

class Workspace;

/// Stats-attribution domain of the calling thread (-1 = unattributed).
/// Engine shards set a domain around their per-shard work so the arena can
/// report per-shard hit rates; kernels never touch it. Thread-local: with
/// nested OpenMP regions disabled (the default), everything a shard's
/// thread leases is attributed to that shard.
inline thread_local int tls_stats_domain = -1;

/// RAII domain scope. Domains outside [0, Workspace::kMaxDomains) fold into
/// the unattributed bucket (global counters only).
class ScopedStatsDomain {
 public:
  explicit ScopedStatsDomain(int domain) noexcept
      : saved_(tls_stats_domain) {
    tls_stats_domain = domain;
  }
  ~ScopedStatsDomain() { tls_stats_domain = saved_; }
  ScopedStatsDomain(const ScopedStatsDomain&) = delete;
  ScopedStatsDomain& operator=(const ScopedStatsDomain&) = delete;

 private:
  int saved_;
};

/// RAII handle on a pooled buffer. Move-only; returns the buffer to the
/// workspace on destruction unless detach()ed.
///
/// Debug builds track ownership (see check.hpp): the lease records its
/// owning thread and size class on acquisition, and double-detach,
/// use-after-detach and cross-thread detach abort with that context in the
/// message. Release builds compile the tracking out entirely.
template <typename T>
class Lease {
 public:
  Lease() = default;
  Lease(Workspace* ws, std::vector<T>&& buf) noexcept
      : ws_(ws), buf_(std::move(buf)) {}
  Lease(Lease&& o) noexcept : ws_(o.ws_), buf_(std::move(o.buf_)) {
    o.ws_ = nullptr;
#if GRB_CHECKS_ENABLED
    token_ = o.token_;
    owner_ = o.owner_;
    cls_ = o.cls_;
    detached_ = o.detached_;
    o.token_ = 0;
    o.detached_ = false;
#endif
  }
  Lease& operator=(Lease&& o) noexcept {
    if (this != &o) {
      release();
      ws_ = o.ws_;
      buf_ = std::move(o.buf_);
      o.ws_ = nullptr;
#if GRB_CHECKS_ENABLED
      token_ = o.token_;
      owner_ = o.owner_;
      cls_ = o.cls_;
      detached_ = o.detached_;
      o.token_ = 0;
      o.detached_ = false;
#endif
    }
    return *this;
  }
  Lease(const Lease&) = delete;
  Lease& operator=(const Lease&) = delete;
  ~Lease() { release(); }

  [[nodiscard]] std::vector<T>& get() noexcept {
    debug_check_usable();
    return buf_;
  }
  [[nodiscard]] const std::vector<T>& get() const noexcept {
    debug_check_usable();
    return buf_;
  }
  std::vector<T>& operator*() noexcept {
    debug_check_usable();
    return buf_;
  }
  const std::vector<T>& operator*() const noexcept {
    debug_check_usable();
    return buf_;
  }
  std::vector<T>* operator->() noexcept {
    debug_check_usable();
    return &buf_;
  }
  const std::vector<T>* operator->() const noexcept {
    debug_check_usable();
    return &buf_;
  }

  /// Hands the buffer out of the arena (ownership moves to the caller; the
  /// lease becomes empty and returns nothing on destruction). Containers
  /// built from detached buffers re-enter the pool via grb::recycle(). A
  /// buffer leaving far oversized for its contents is trimmed on the way
  /// out (Workspace::detach_trimmed), so detached storage cannot pin a big
  /// pool buffer inside a small long-lived container.
  ///
  /// Debug builds enforce the detach discipline: detaching twice, or from a
  /// thread other than the one that leased the buffer, aborts.
  [[nodiscard]] std::vector<T> detach();  // defined after Workspace

 private:
  friend class Workspace;

  void release();  // defined after Workspace

#if GRB_CHECKS_ENABLED
  void debug_check_usable() const noexcept {
    if (detached_) {
      std::ostringstream os;
      os << "use-after-detach: lease buffer already detached (owner-thread="
         << thread_id_string(owner_) << " size-class=" << cls_ << ")";
      check_fail("Workspace::Lease", os.str().c_str());
    }
  }
#else
  void debug_check_usable() const noexcept {}
#endif

  Workspace* ws_ = nullptr;
  std::vector<T> buf_;
#if GRB_CHECKS_ENABLED
  std::uint64_t token_ = 0;
  std::thread::id owner_;
  int cls_ = 0;
  bool detached_ = false;
#endif
};

/// One pooled buffer per thread of a team, acquired up front so parallel
/// regions stay lock-free. buf(tid) is thread tid's buffer.
template <typename T>
class TeamLease {
 public:
  TeamLease() = default;
  explicit TeamLease(std::vector<Lease<T>>&& parts) noexcept
      : parts_(std::move(parts)) {}

  [[nodiscard]] std::size_t size() const noexcept { return parts_.size(); }
  [[nodiscard]] std::vector<T>& buf(std::size_t i) noexcept {
    return *parts_[i];
  }

 private:
  std::vector<Lease<T>> parts_;
};

class Workspace {
 public:
  /// Smallest element count worth pooling (donations below it are dropped).
  /// Callers that keep storage across moves — where a replaced buffer frees
  /// silently rather than recycling — should stay on plain allocation under
  /// this size so pool-origin buffers cannot leak out of the arena.
  static constexpr std::size_t kMinBuffer = 64;

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Acquires a buffer with capacity >= n elements, cleared. Prefers a
  /// close-fitting buffer from the calling thread's shard, then from the
  /// other shards (work-stealing); if no close fit exists anywhere, a
  /// larger cached buffer up to kOversizeClasses above the request is taken
  /// (buffers migrate to higher classes as they grow through push_back, so
  /// without this fallback the small classes would drain permanently).
  /// Buffers above that high watermark are kept whole for the big requests
  /// they fit: the lease takes the miss path instead (counted as a split as
  /// well as a miss), and the right-sized allocation replenishes the small
  /// class when it is donated back — the malloc-backed equivalent of
  /// returning the tail to its own class, amortised over one cycle.
  template <typename T>
  [[nodiscard]] Lease<T> lease(std::size_t n) {
    const int cls = size_class(n);
    const std::size_t home = current_shard();
    bool saw_oversize = false;
    for (const bool any_fit : {false, true}) {
      for (std::size_t probe = 0; probe < kShards; ++probe) {
        const std::size_t s = (home + probe) % kShards;
        if (auto buf = try_acquire<T>(shards_[s], cls, any_fit, saw_oversize)) {
          (probe == 0 ? hits_ : steals_)
              .fetch_add(1, std::memory_order_relaxed);
          bytes_leased_.fetch_add(n * sizeof(T), std::memory_order_relaxed);
          count_domain(probe == 0 ? DomainEvent::kHit : DomainEvent::kSteal,
                       n * sizeof(T));
          return make_lease<T>(std::move(*buf), cls, n);
        }
      }
    }
    if (saw_oversize) splits_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    bytes_leased_.fetch_add(n * sizeof(T), std::memory_order_relaxed);
    count_domain(DomainEvent::kMiss, n * sizeof(T));
#ifdef GRB_WORKSPACE_TRACE_MISSES
    // Miss forensics for arena regressions: every steady-state miss means
    // some container with pool-origin storage retired without grb::recycle.
    std::fprintf(stderr, "[workspace miss] type=%s n=%zu class=%d\n",
                 typeid(T).name(), n, cls);
#ifdef GRB_WORKSPACE_TRACE_BACKTRACE
    {
      void* fr[10];
      backtrace_symbols_fd(fr, backtrace(fr, 10), 2);
    }
#endif
#endif
    std::vector<T> fresh;
    fresh.reserve(std::size_t{1} << cls);
    return make_lease<T>(std::move(fresh), cls, n);
  }

  /// Acquires `team` buffers of capacity >= n each (per-thread scratch for a
  /// thread team). Re-leasing with a different team size reuses whatever the
  /// previous team donated and tops up the difference.
  template <typename T>
  [[nodiscard]] TeamLease<T> lease_team(std::size_t team, std::size_t n) {
    std::vector<Lease<T>> parts;
    parts.reserve(team);
    for (std::size_t t = 0; t < team; ++t) parts.push_back(lease<T>(n));
    return TeamLease<T>(std::move(parts));
  }

  /// Donates a buffer's capacity to the pool (the storage-recycling entry
  /// point: finished leases land here automatically, retired Matrix/Vector
  /// storage via grb::recycle). Tiny buffers and full buckets are dropped.
  template <typename T>
  void donate(std::vector<T>&& buf) {
    const std::size_t cap = buf.capacity();
    if (cap < (std::size_t{1} << kMinClass)) {
      if (cap != 0) drops_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    buf.clear();
    const int cls = floor_class(cap);
    Shard& sh = shards_[current_shard()];
    std::lock_guard<std::mutex> lock(sh.mu);
    auto& bucket = pool_of<T>(sh).bucket[static_cast<std::size_t>(cls)];
    if (bucket.size() >= kMaxPerBucket ||
        sh.bytes_cached + cap * sizeof(T) > kMaxBytesPerShard) {
      drops_.fetch_add(1, std::memory_order_relaxed);
      return;  // buf frees on scope exit
    }
    sh.buffers_cached += 1;
    sh.bytes_cached += cap * sizeof(T);
    bucket.push_back(std::move(buf));
    donations_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Shrink-on-detach: a pool-origin buffer leaving the arena with capacity
  /// at or above the oversize watermark relative to its contents is swapped
  /// for a right-sized lease (contents copied — they are small by
  /// definition of the rule) and the big buffer is donated back, so it
  /// cannot stay pinned inside a small long-lived container. Non-trivially
  /// copyable element types pass through untrimmed.
  template <typename T>
  [[nodiscard]] std::vector<T> detach_trimmed(std::vector<T>&& buf) {
    if constexpr (std::is_trivially_copyable_v<T>) {
      const std::size_t cap = buf.capacity();
      if (cap >= kMinBuffer &&
          floor_class(cap) >= size_class(buf.size()) + kOversizeClasses) {
        Lease<T> trimmed = lease<T>(buf.size());
        trimmed->assign(buf.begin(), buf.end());
        donate(std::move(buf));
        shrinks_.fetch_add(1, std::memory_order_relaxed);
        // The replacement sits under the watermark by construction, so this
        // recursion terminates after one level.
        return trimmed.detach();
      }
    }
    return std::move(buf);
  }

  [[nodiscard]] WorkspaceStats stats() const {
    WorkspaceStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.steals = steals_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.bytes_leased = bytes_leased_.load(std::memory_order_relaxed);
    s.donations = donations_.load(std::memory_order_relaxed);
    s.drops = drops_.load(std::memory_order_relaxed);
    s.splits = splits_.load(std::memory_order_relaxed);
    s.shrinks = shrinks_.load(std::memory_order_relaxed);
    for (const Shard& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh.mu);
      s.buffers_cached += sh.buffers_cached;
      s.bytes_cached += sh.bytes_cached;
    }
    return s;
  }

  /// Zeroes the counters (hits/steals/misses/bytes/donations/drops/splits/
  /// shrinks, plus every per-domain counter); the cached-buffer gauges keep
  /// describing the live pool.
  void reset_stats() {
    hits_.store(0, std::memory_order_relaxed);
    steals_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    bytes_leased_.store(0, std::memory_order_relaxed);
    donations_.store(0, std::memory_order_relaxed);
    drops_.store(0, std::memory_order_relaxed);
    splits_.store(0, std::memory_order_relaxed);
    shrinks_.store(0, std::memory_order_relaxed);
    for (DomainCounters& d : domains_) {
      d.hits.store(0, std::memory_order_relaxed);
      d.steals.store(0, std::memory_order_relaxed);
      d.misses.store(0, std::memory_order_relaxed);
      d.bytes_leased.store(0, std::memory_order_relaxed);
    }
  }

  /// Frees every cached buffer (outstanding leases are unaffected). Returns
  /// the number of bytes released back to the system. Debug builds report
  /// any lease still live at trim time — a leak-at-trim smell — to stderr
  /// (owning thread + size class per lease) without aborting: trimming
  /// around a deliberate long-lived lease is legal.
  std::size_t trim() {
    lease_registry_.report_leaks("trim_workspace()");
    std::size_t freed = 0;
    for (Shard& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh.mu);
      for (auto& [type, pool] : sh.pools) {
        pool->trim();
      }
      freed += sh.bytes_cached;
      sh.bytes_cached = 0;
      sh.buffers_cached = 0;
    }
    return freed;
  }

  /// Oversize watermark, in capacity classes: the any_fit fallback refuses
  /// buffers >= 2^kOversizeClasses times the (rounded-up) request, and
  /// detach() trims pool-origin buffers that oversized relative to their
  /// contents. One constant for both rules keeps them consistent: the pool
  /// never hands out a buffer the detach path would immediately shrink.
  static constexpr int kOversizeClasses = 6;

  /// Stats-attribution domains (see ScopedStatsDomain). Sized for the
  /// engine-shard counts the benches sweep; higher domains fold into the
  /// unattributed bucket.
  static constexpr std::size_t kMaxDomains = 32;

  /// Debug lease ledger (see check.hpp). Lease handles unregister through
  /// this on release/detach; the misuse tests read live_leases().
  [[nodiscard]] LeaseRegistry& lease_registry() noexcept {
    return lease_registry_;
  }

  /// Number of currently outstanding leases (Debug builds; 0 in Release,
  /// where the ledger is compiled out).
  [[nodiscard]] std::size_t live_leases() const {
    return lease_registry_.live_count();
  }

  /// Per-domain lease counters for the given domain (independent of the
  /// calling thread's own ScopedStatsDomain scope).
  [[nodiscard]] WorkspaceStats domain_stats(std::size_t domain) const {
    WorkspaceStats s;
    if (domain >= kMaxDomains) return s;
    const DomainCounters& d = domains_[domain];
    s.hits = d.hits.load(std::memory_order_relaxed);
    s.steals = d.steals.load(std::memory_order_relaxed);
    s.misses = d.misses.load(std::memory_order_relaxed);
    s.bytes_leased = d.bytes_leased.load(std::memory_order_relaxed);
    return s;
  }

 private:
  static constexpr std::size_t kShards = 16;
  static constexpr int kNumClasses = 44;
  /// Smallest pooled capacity class: 2^6 = kMinBuffer elements. Requests
  /// round up to it; smaller donations are not worth tracking.
  static constexpr int kMinClass = 6;
  static_assert(std::size_t{1} << kMinClass == kMinBuffer);
  static constexpr std::size_t kMaxPerBucket = 256;
  /// Safety valve against unbounded cache growth in long-lived processes
  /// working through successively larger graphs: donations that would push
  /// a shard past this are dropped. Far above the working set of the
  /// bench/test workloads (tens of MiB at SF 512), so the zero-miss gates
  /// never see it; trim_workspace() reclaims everything on demand.
  static constexpr std::size_t kMaxBytesPerShard = std::size_t{512} << 20;

  struct PoolBase {
    virtual ~PoolBase() = default;
    virtual void trim() = 0;
  };

  template <typename T>
  struct Pool final : PoolBase {
    // bucket[c] holds buffers with capacity in [2^c, 2^(c+1)), so every
    // buffer in bucket c satisfies any request of class <= c.
    std::array<std::vector<std::vector<T>>, kNumClasses> bucket;
    void trim() override {
      for (auto& b : bucket) {
        b.clear();
        b.shrink_to_fit();
      }
    }
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::type_index, std::unique_ptr<PoolBase>> pools;
    std::size_t buffers_cached = 0;
    std::size_t bytes_cached = 0;
  };

  /// Smallest class c with 2^c >= max(n, 2^kMinClass).
  static int size_class(std::size_t n) noexcept {
    const int c = n <= 1 ? 0 : static_cast<int>(std::bit_width(n - 1));
    return c < kMinClass ? kMinClass
                         : (c >= kNumClasses ? kNumClasses - 1 : c);
  }

  /// Largest class c with 2^c <= cap (the bucket a donated buffer lands in).
  static int floor_class(std::size_t cap) noexcept {
    const int c = static_cast<int>(std::bit_width(cap)) - 1;
    return c >= kNumClasses ? kNumClasses - 1 : c;
  }

  static std::size_t current_shard() noexcept {
    return std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  }

  /// Wraps a buffer in a Lease and, in Debug builds, registers it in the
  /// lease ledger (owning thread, size class, bytes, element type).
  template <typename T>
  Lease<T> make_lease(std::vector<T>&& buf, [[maybe_unused]] int cls,
                      [[maybe_unused]] std::size_t n) {
    Lease<T> l(this, std::move(buf));
#if GRB_CHECKS_ENABLED
    l.token_ = lease_registry_.on_lease(cls, n * sizeof(T), typeid(T).name());
    l.owner_ = std::this_thread::get_id();
    l.cls_ = cls;
#endif
    return l;
  }

  template <typename T>
  Pool<T>& pool_of(Shard& sh) {  // sh.mu must be held
    auto& slot = sh.pools[std::type_index(typeid(T))];
    if (!slot) slot = std::make_unique<Pool<T>>();
    return static_cast<Pool<T>&>(*slot);
  }

  /// Pops a buffer of class cls (close fit: up to two classes larger;
  /// any_fit: smallest available class under the oversize watermark) from
  /// one shard; nullopt when the shard has nothing suitable. On the any_fit
  /// pass, cached buffers found *above* the watermark set `saw_oversize`
  /// (the caller counts the lease as a split) but stay in the pool.
  template <typename T>
  std::optional<std::vector<T>> try_acquire(Shard& sh, int cls, bool any_fit,
                                            bool& saw_oversize) {
    std::lock_guard<std::mutex> lock(sh.mu);
    const auto it = sh.pools.find(std::type_index(typeid(T)));
    if (it == sh.pools.end()) return std::nullopt;
    auto& pool = static_cast<Pool<T>&>(*it->second);
    const int want = any_fit ? cls + kOversizeClasses : cls + 3;
    const int hi = want > kNumClasses ? kNumClasses : want;
    for (int c = cls; c < hi; ++c) {
      auto& bucket = pool.bucket[static_cast<std::size_t>(c)];
      if (bucket.empty()) continue;
      std::vector<T> buf = std::move(bucket.back());
      bucket.pop_back();
      sh.buffers_cached -= 1;
      sh.bytes_cached -= buf.capacity() * sizeof(T);
      return buf;
    }
    if (any_fit && !saw_oversize) {
      for (int c = hi; c < kNumClasses; ++c) {
        if (!pool.bucket[static_cast<std::size_t>(c)].empty()) {
          saw_oversize = true;
          break;
        }
      }
    }
    return std::nullopt;
  }

  struct DomainCounters {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> bytes_leased{0};
  };

  enum class DomainEvent { kHit, kSteal, kMiss };

  void count_domain(DomainEvent e, std::size_t bytes) noexcept {
    const int d = tls_stats_domain;
    if (d < 0 || d >= static_cast<int>(kMaxDomains)) return;
    DomainCounters& dc = domains_[static_cast<std::size_t>(d)];
    switch (e) {
      case DomainEvent::kHit:
        dc.hits.fetch_add(1, std::memory_order_relaxed);
        break;
      case DomainEvent::kSteal:
        dc.steals.fetch_add(1, std::memory_order_relaxed);
        break;
      case DomainEvent::kMiss:
        dc.misses.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    dc.bytes_leased.fetch_add(bytes, std::memory_order_relaxed);
  }

  std::array<Shard, kShards> shards_;
  std::array<DomainCounters, kMaxDomains> domains_;
  LeaseRegistry lease_registry_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> bytes_leased_{0};
  std::atomic<std::uint64_t> donations_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> splits_{0};
  std::atomic<std::uint64_t> shrinks_{0};
};

template <typename T>
void Lease<T>::release() {
  if (ws_ != nullptr) {
#if GRB_CHECKS_ENABLED
    ws_->lease_registry().on_release(token_);
#endif
    ws_->donate(std::move(buf_));
    ws_ = nullptr;
  }
}

template <typename T>
std::vector<T> Lease<T>::detach() {
#if GRB_CHECKS_ENABLED
  if (detached_) {
    std::ostringstream os;
    os << "double-detach: lease already detached (owner-thread="
       << thread_id_string(owner_) << " size-class=" << cls_ << ")";
    check_fail("Workspace::Lease", os.str().c_str());
  }
  if (ws_ != nullptr && owner_ != std::this_thread::get_id()) {
    std::ostringstream os;
    os << "cross-thread detach: lease owned by thread "
       << thread_id_string(owner_) << " detached by thread "
       << thread_id_string(std::this_thread::get_id())
       << " (size-class=" << cls_ << ")";
    check_fail("Workspace::Lease", os.str().c_str());
  }
  detached_ = true;
#endif
  if (ws_ == nullptr) return std::move(buf_);
  Workspace* ws = ws_;
  ws_ = nullptr;
#if GRB_CHECKS_ENABLED
  ws->lease_registry().on_release(token_);
#endif
  return ws->detach_trimmed(std::move(buf_));
}

/// The process-wide arena owned by grb::Context (defined in context.cpp).
[[nodiscard]] Workspace& workspace() noexcept;

}  // namespace detail
}  // namespace grb
