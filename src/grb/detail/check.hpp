// Debug-mode concurrency-correctness instrumentation. Three families of
// checks, all compiled out in Release (NDEBUG) builds so the steady-state
// hot paths carry zero overhead:
//
//   * LeaseRegistry — ownership tracking for workspace arena leases:
//     double-detach, use-after-detach and cross-thread detach abort with the
//     owning thread and size class in the message; leak-at-trim (live leases
//     when trim_workspace() runs) is *reported* to stderr rather than fatal,
//     because trimming around a long-lived lease is legal — just suspicious
//     enough to deserve a forensic line.
//   * OverlapChecker — a chunk-grid write-overlap detector for the parallel
//     drivers (parallel_for / parallel_tasks / for_each_shard): each worker
//     claims its output range [lo, hi) before writing and two live
//     overlapping claims abort, which catches a mis-derived grid (two
//     workers handed the same output range) the instant it happens instead
//     of as a corrupted result three kernels later.
//   * ReentrancyGuard — epoch-counting scope guard for externally-serial
//     entry points (GrbState::apply_change_set and the sharded fan-out):
//     overlapping scopes, whether same-thread reentrancy or a second thread,
//     abort with both scope names.
//
// The checks deliberately use plain mutexes/atomics rather than anything
// clever: they run only in Debug builds, and their own synchronisation must
// be obvious enough that TSan never has anything to say about the checker.
//
// Define GRB_FORCE_CHECKS to keep the machinery alive in optimised builds
// (used by the instrumented-Release CI lane candidates; not the default).
#pragma once

#if !defined(NDEBUG) || defined(GRB_FORCE_CHECKS)
#define GRB_CHECKS_ENABLED 1
#else
#define GRB_CHECKS_ENABLED 0
#endif

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#if GRB_CHECKS_ENABLED
#include <atomic>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>
#endif

// ThreadSanitizer happens-before annotations for the OpenMP fork/join and
// barrier points in parallel.hpp. GCC's libgomp synchronises its teams with
// futexes TSan cannot see, so without these edges every correctly-joined
// parallel region would be reported as racing with the serial code around
// it. The annotations mirror the *real* synchronisation exactly — release
// before a physical sync point, acquire after it — so TSan keeps full
// visibility of genuine intra-region races; nothing inside a region is
// blessed. Because the repo lint confines every `#pragma omp` to
// parallel.hpp, annotating its handful of drivers covers the whole library.
#if defined(__SANITIZE_THREAD__)
#define GRB_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GRB_TSAN_ENABLED 1
#endif
#endif
#ifndef GRB_TSAN_ENABLED
#define GRB_TSAN_ENABLED 0
#endif

#if GRB_TSAN_ENABLED
extern "C" void __tsan_acquire(void* addr);
extern "C" void __tsan_release(void* addr);
#define GRB_TSAN_RELEASE(addr) \
  __tsan_release(const_cast<void*>(static_cast<const void*>(addr)))
#define GRB_TSAN_ACQUIRE(addr) \
  __tsan_acquire(const_cast<void*>(static_cast<const void*>(addr)))
#else
#define GRB_TSAN_RELEASE(addr) static_cast<void>(addr)
#define GRB_TSAN_ACQUIRE(addr) static_cast<void>(addr)
#endif

namespace grb::detail {

/// Fatal check failure: one-line report to stderr, then abort. The "[grb-check]"
/// prefix is what the death tests (and humans grepping CI logs) match on.
[[noreturn]] inline void check_fail(const char* what, const char* detail) {
  std::fprintf(stderr, "[grb-check] FATAL %s: %s\n", what, detail);
  std::fflush(stderr);
  std::abort();
}

#if GRB_CHECKS_ENABLED

/// Renders a thread id for failure messages (std::thread::id has no
/// to_string; the ostream form is stable enough for forensics).
inline std::string thread_id_string(std::thread::id id) {
  std::ostringstream os;
  os << id;
  return os.str();
}

/// Debug ledger of live workspace leases. One registry per Workspace; every
/// lease registers on acquisition and unregisters on release/detach, so at
/// any instant the registry knows who (thread), what (element type) and how
/// big (size class, bytes) every outstanding lease is.
class LeaseRegistry {
 public:
  struct Record {
    std::thread::id owner;
    int size_class = 0;
    std::size_t bytes = 0;
    const char* type_name = "";
  };

  /// Registers a new live lease; returns its token (never 0).
  std::uint64_t on_lease(int size_class, std::size_t bytes,
                         const char* type_name) {
    const std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t token = ++next_token_;
    live_.emplace(token, Record{std::this_thread::get_id(), size_class, bytes,
                                type_name});
    return token;
  }

  /// Unregisters a lease (normal release back to the pool, or detach).
  void on_release(std::uint64_t token) {
    const std::lock_guard<std::mutex> lock(mu_);
    live_.erase(token);
  }

  [[nodiscard]] std::size_t live_count() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return live_.size();
  }

  /// Leak-at-trim report: if any lease is still live, prints one forensic
  /// line per lease (owning thread + size class + bytes + type) to stderr
  /// and returns the count. Non-fatal by design — see the file comment.
  std::size_t report_leaks(const char* when) const {
    const std::lock_guard<std::mutex> lock(mu_);
    if (live_.empty()) return 0;
    std::fprintf(stderr,
                 "[grb-check] WARNING %s: %zu workspace lease(s) still live "
                 "(leak-at-trim?)\n",
                 when, live_.size());
    for (const auto& [token, rec] : live_) {
      std::fprintf(stderr,
                   "[grb-check]   live lease #%llu: owner-thread=%s "
                   "size-class=%d bytes=%zu type=%s\n",
                   static_cast<unsigned long long>(token),
                   thread_id_string(rec.owner).c_str(), rec.size_class,
                   rec.bytes, rec.type_name);
    }
    std::fflush(stderr);
    return live_.size();
  }

 private:
  mutable std::mutex mu_;
  std::uint64_t next_token_ = 0;
  std::unordered_map<std::uint64_t, Record> live_;
};

/// Chunk-grid write-overlap detector. One checker per parallel driver
/// invocation (stack-allocated, shared by the team); each worker claims the
/// output range it is about to write. Two live claims that overlap — from
/// any pair of threads, or a grid that double-covers a range on one thread —
/// abort with both ranges. Claims are RAII and release on scope exit, so
/// the live set never exceeds the team size and the O(team) overlap scan
/// stays trivial.
class OverlapChecker {
 public:
  explicit OverlapChecker(const char* what) noexcept : what_(what) {}
  OverlapChecker(const OverlapChecker&) = delete;
  OverlapChecker& operator=(const OverlapChecker&) = delete;

  class Claim {
   public:
    Claim() = default;
    Claim(OverlapChecker* oc, std::size_t slot) noexcept
        : oc_(oc), slot_(slot) {}
    Claim(Claim&& o) noexcept : oc_(o.oc_), slot_(o.slot_) {
      o.oc_ = nullptr;
    }
    Claim& operator=(Claim&& o) noexcept {
      if (this != &o) {
        release();
        oc_ = o.oc_;
        slot_ = o.slot_;
        o.oc_ = nullptr;
      }
      return *this;
    }
    Claim(const Claim&) = delete;
    Claim& operator=(const Claim&) = delete;
    ~Claim() { release(); }

   private:
    void release() noexcept {
      if (oc_ != nullptr) {
        oc_->release_slot(slot_);
        oc_ = nullptr;
      }
    }
    OverlapChecker* oc_ = nullptr;
    std::size_t slot_ = 0;
  };

  /// Claims [lo, hi) for the calling worker. Empty ranges claim nothing.
  [[nodiscard]] Claim claim(std::uint64_t lo, std::uint64_t hi) {
    if (lo >= hi) return Claim{};
    const std::lock_guard<std::mutex> lock(mu_);
    for (const Live& c : live_) {
      if (c.active && lo < c.hi && c.lo < hi) {
        std::ostringstream os;
        os << "overlapping chunk-grid writes in " << what_ << ": thread "
           << thread_id_string(std::this_thread::get_id()) << " claims ["
           << lo << ", " << hi << ") while thread "
           << thread_id_string(c.owner) << " holds [" << c.lo << ", " << c.hi
           << ")";
        check_fail("OverlapChecker", os.str().c_str());
      }
    }
    for (std::size_t s = 0; s < live_.size(); ++s) {
      if (!live_[s].active) {
        live_[s] = Live{lo, hi, std::this_thread::get_id(), true};
        return Claim{this, s};
      }
    }
    live_.push_back(Live{lo, hi, std::this_thread::get_id(), true});
    return Claim{this, live_.size() - 1};
  }

 private:
  struct Live {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    std::thread::id owner;
    bool active = false;
  };

  void release_slot(std::size_t slot) noexcept {
    const std::lock_guard<std::mutex> lock(mu_);
    live_[slot].active = false;
  }

  const char* what_;
  std::mutex mu_;
  std::vector<Live> live_;
};

/// Epoch-counting reentrancy guard for entry points that must be externally
/// serialised (one apply at a time per state). The counter is even when
/// idle and odd while a scope is open; an enter that observes an odd value
/// means two overlapping scopes — same-thread reentrancy or a concurrent
/// caller — and aborts. epoch() (completed scope count) is the hook the
/// upcoming pipelined-ingestion work tags published answers with.
///
/// Copy/move produce a fresh, idle guard: the guard protects an *object's*
/// entry point, and a copied object starts with no apply in flight.
class ReentrancyGuard {
 public:
  ReentrancyGuard() = default;
  ReentrancyGuard(const ReentrancyGuard&) noexcept {}
  ReentrancyGuard& operator=(const ReentrancyGuard&) noexcept { return *this; }

  void enter(const char* what) {
    const std::uint64_t prev =
        state_.fetch_add(1, std::memory_order_acq_rel);
    if ((prev & 1u) != 0u) {
      std::ostringstream os;
      os << "reentrant/concurrent entry into " << what << " by thread "
         << thread_id_string(std::this_thread::get_id())
         << " (a previous entry is still in flight; epoch=" << (prev >> 1)
         << ")";
      check_fail("ReentrancyGuard", os.str().c_str());
    }
  }
  void exit() noexcept { state_.fetch_add(1, std::memory_order_acq_rel); }

  /// Number of completed scopes.
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return state_.load(std::memory_order_acquire) >> 1;
  }

 private:
  std::atomic<std::uint64_t> state_{0};
};

class ReentrancyScope {
 public:
  ReentrancyScope(ReentrancyGuard& g, const char* what) : g_(g) {
    g_.enter(what);
  }
  ~ReentrancyScope() { g_.exit(); }
  ReentrancyScope(const ReentrancyScope&) = delete;
  ReentrancyScope& operator=(const ReentrancyScope&) = delete;

 private:
  ReentrancyGuard& g_;
};

#else  // !GRB_CHECKS_ENABLED — zero-size stand-ins, everything inlines away.

class LeaseRegistry {
 public:
  std::uint64_t on_lease(int, std::size_t, const char*) noexcept { return 0; }
  void on_release(std::uint64_t) noexcept {}
  [[nodiscard]] std::size_t live_count() const noexcept { return 0; }
  std::size_t report_leaks(const char*) const noexcept { return 0; }
};

class OverlapChecker {
 public:
  explicit OverlapChecker(const char*) noexcept {}
  struct Claim {};
  [[nodiscard]] Claim claim(std::uint64_t, std::uint64_t) noexcept {
    return {};
  }
};

class ReentrancyGuard {
 public:
  void enter(const char*) noexcept {}
  void exit() noexcept {}
  [[nodiscard]] std::uint64_t epoch() const noexcept { return 0; }
};

class ReentrancyScope {
 public:
  ReentrancyScope(ReentrancyGuard&, const char*) noexcept {}
};

#endif  // GRB_CHECKS_ENABLED

}  // namespace grb::detail
