// The GraphBLAS output-merge step: every operation computes an intermediate
// result T and then performs C<M> (+)= T under the descriptor's replace /
// complement / structural flags. Centralising this here keeps each kernel a
// pure "compute T" function and makes mask/accumulator semantics uniform —
// and uniformly testable.
#pragma once

#include <algorithm>
#include <type_traits>
#include <utility>

#include "grb/detail/csr_builder.hpp"
#include "grb/detail/sparse_builder.hpp"
#include "grb/matrix.hpp"
#include "grb/types.hpp"
#include "grb/vector.hpp"

namespace grb::detail {

/// Sorted-index membership cursor over a mask vector. Queries must arrive in
/// nondecreasing index order (write_back iterates merges in order). `from`
/// positions the cursor at the first mask entry >= from, so chunked merges
/// can open a cursor mid-vector in O(log nvals).
template <typename MT>
class MaskCursor {
 public:
  MaskCursor(const Vector<MT>* mask, bool complement, bool structural,
             Index from = 0)
      : mask_(mask), complement_(complement), structural_(structural) {
    if (mask_ != nullptr && from > 0) {
      const auto idx = mask_->indices();
      pos_ = static_cast<std::size_t>(
          std::lower_bound(idx.begin(), idx.end(), from) - idx.begin());
    }
  }

  bool admits(Index i) {
    // Complement of an absent mask admits nothing (GraphBLAS spec).
    if (mask_ == nullptr) return !complement_;
    const auto idx = mask_->indices();
    const auto val = mask_->values();
    while (pos_ < idx.size() && idx[pos_] < i) ++pos_;
    const bool present =
        pos_ < idx.size() && idx[pos_] == i &&
        (structural_ || static_cast<bool>(val[pos_]));
    return complement_ ? !present : present;
  }

 private:
  const Vector<MT>* mask_;
  bool complement_;
  bool structural_;
  std::size_t pos_ = 0;
};

template <typename Accum>
inline constexpr bool has_accum_v = !std::is_same_v<Accum, NoAccum>;

/// C<M> (+)= T for vectors. `t` is consumed.
template <typename CT, typename MT, typename Accum, typename TT>
void write_back(Vector<CT>& c, const Vector<MT>* mask, Accum accum,
                const Descriptor& desc, Vector<TT>&& t) {
  if (c.size() != t.size()) {
    throw DimensionMismatch("output size " + std::to_string(c.size()) +
                            " vs result size " + std::to_string(t.size()));
  }
  if (mask != nullptr && mask->size() != c.size()) {
    throw DimensionMismatch("mask size " + std::to_string(mask->size()) +
                            " vs output size " + std::to_string(c.size()));
  }
  // Fast path: unmasked, no accumulator — C = T. The replaced output's
  // storage is donated to the arena first, so loop-carried outputs cycle
  // their capacity through the workspace instead of freeing it.
  if (mask == nullptr && !desc.complement_mask && !has_accum_v<Accum>) {
    if constexpr (std::is_same_v<CT, TT>) {
      recycle(std::move(c));
      c = std::move(t);
      return;
    }
  }
  const auto ci = c.indices();
  const auto cv = c.values();
  const auto ti = t.indices();
  const auto tv = t.values();

  // Chunk-parallel three-way merge of C, M, and T through the staged
  // two-pass pipeline: each index-domain range opens its cursors with a
  // lower_bound and merges exactly once, so mask/accumulator application
  // scales with the parallel kernels feeding it (the matrix branch below
  // got the same treatment in the CSR pipeline).
  const auto merge_range = [&](Index lo, Index hi, auto&& emit) {
    std::size_t a = static_cast<std::size_t>(
        std::lower_bound(ci.begin(), ci.end(), lo) - ci.begin());
    std::size_t b = static_cast<std::size_t>(
        std::lower_bound(ti.begin(), ti.end(), lo) - ti.begin());
    MaskCursor<MT> in_mask(mask, desc.complement_mask, desc.structural_mask,
                           lo);
    while ((a < ci.size() && ci[a] < hi) || (b < ti.size() && ti[b] < hi)) {
      const bool c_in = a < ci.size() && ci[a] < hi;
      const bool t_in = b < ti.size() && ti[b] < hi;
      const bool take_both = c_in && t_in && ci[a] == ti[b];
      const bool take_c = !take_both && c_in && (!t_in || ci[a] < ti[b]);
      const Index i = take_both || take_c ? ci[a] : ti[b];
      const bool admitted = in_mask.admits(i);
      if (take_both) {
        if (admitted) {
          if constexpr (has_accum_v<Accum>) {
            emit(i, static_cast<CT>(accum(cv[a], static_cast<CT>(tv[b]))));
          } else {
            emit(i, static_cast<CT>(tv[b]));
          }
        } else if (!desc.replace) {
          emit(i, cv[a]);
        }
        ++a;
        ++b;
      } else if (take_c) {
        if (admitted) {
          if constexpr (has_accum_v<Accum>) {
            // Accumulator keeps existing entries where T has none.
            emit(i, cv[a]);
          }
          // No accum: in-mask position replaced by (empty) T => deleted.
        } else if (!desc.replace) {
          emit(i, cv[a]);
        }
        ++a;
      } else {  // T only
        if (admitted) {
          emit(i, static_cast<CT>(tv[b]));
        }
        ++b;
      }
    }
  };
  auto merged = build_sparse_staged<CT>(
      c.size(), c.size(), merge_range,
      static_cast<Index>(ci.size() + ti.size()));
  // The merge is complete; retire the old output and the consumed
  // intermediate into the arena before installing the result.
  recycle(std::move(t));
  recycle(std::move(c));
  c = std::move(merged);
}

/// C<M> (+)= T for matrices: a row-parallel merge of C, M, and T through
/// the staged CSR pipeline. Each row's three-way merge runs exactly once,
/// streaming survivors into per-thread staging (the symbolic counts fall
/// out of the same pass); the numeric step copies them into the scanned
/// offsets. Mask/accumulator application therefore scales with the
/// parallel kernels feeding it instead of serialising behind them.
template <typename CT, typename MT, typename Accum, typename TT>
void write_back(Matrix<CT>& c, const Matrix<MT>* mask, Accum accum,
                const Descriptor& desc, Matrix<TT>&& t) {
  if (c.nrows() != t.nrows() || c.ncols() != t.ncols()) {
    throw DimensionMismatch("matrix write_back: output " +
                            std::to_string(c.nrows()) + "x" +
                            std::to_string(c.ncols()) + " vs result " +
                            std::to_string(t.nrows()) + "x" +
                            std::to_string(t.ncols()));
  }
  if (mask != nullptr &&
      (mask->nrows() != c.nrows() || mask->ncols() != c.ncols())) {
    throw DimensionMismatch("matrix mask shape");
  }
  if (mask == nullptr && !desc.complement_mask && !has_accum_v<Accum>) {
    if constexpr (std::is_same_v<CT, TT>) {
      recycle(std::move(c));
      c = std::move(t);
      return;
    }
  }
  // Per-row merge of C, M, and T under the descriptor rules. `emit(j, v)`
  // is invoked once per surviving entry in ascending column order; each
  // row's merge runs exactly once (staged pipeline).
  const auto merge_row = [&](Index i, auto&& emit) {
    const auto ci = c.row_cols(i);
    const auto cv = c.row_vals(i);
    const auto ti = t.row_cols(i);
    const auto tv = t.row_vals(i);
    const auto mi =
        mask != nullptr ? mask->row_cols(i) : std::span<const Index>{};
    const auto mv = mask != nullptr ? mask->row_vals(i) : std::span<const MT>{};
    std::size_t m = 0;
    const auto admits = [&](Index j) {
      if (mask == nullptr) return !desc.complement_mask;
      while (m < mi.size() && mi[m] < j) ++m;
      const bool present = m < mi.size() && mi[m] == j &&
                           (desc.structural_mask || static_cast<bool>(mv[m]));
      return desc.complement_mask ? !present : present;
    };
    std::size_t a = 0, b = 0;
    while (a < ci.size() || b < ti.size()) {
      const bool take_both =
          a < ci.size() && b < ti.size() && ci[a] == ti[b];
      const bool take_c =
          !take_both && (b >= ti.size() || (a < ci.size() && ci[a] < ti[b]));
      const Index j = take_both || take_c ? ci[a] : ti[b];
      const bool admitted = admits(j);
      if (take_both) {
        if (admitted) {
          if constexpr (has_accum_v<Accum>) {
            emit(j, static_cast<CT>(accum(cv[a], static_cast<CT>(tv[b]))));
          } else {
            emit(j, static_cast<CT>(tv[b]));
          }
        } else if (!desc.replace) {
          emit(j, cv[a]);
        }
        ++a;
        ++b;
      } else if (take_c) {
        if (admitted) {
          if constexpr (has_accum_v<Accum>) {
            emit(j, cv[a]);
          }
        } else if (!desc.replace) {
          emit(j, cv[a]);
        }
        ++a;
      } else {
        if (admitted) {
          emit(j, static_cast<CT>(tv[b]));
        }
        ++b;
      }
    }
  };
  // Output pattern ⊆ pattern(C) ∪ pattern(T), so this doubles as a tight
  // reserve bound for the staging buffers.
  auto merged = build_csr_staged<CT>(c.nrows(), c.ncols(), merge_row,
                                     c.nvals() + t.nvals());
  recycle(std::move(t));
  recycle(std::move(c));
  c = std::move(merged);
}

}  // namespace grb::detail
