// EpochPipeline: the bounded, epoch-tagged hand-off primitive under the
// sharded ingestion pipeline. One producer thread submits epochs (reserve →
// fill a slot the caller owns → publish); N worker threads each consume
// *every* epoch in strict order (worker w is shard w — per-shard order is
// the correctness contract, cross-shard skew is the parallelism). A window
// of `depth` epochs bounds how far the producer may run ahead of the
// slowest consumer, and an epoch-publication barrier (`wait_retired`) lets
// the producer merge an epoch's per-shard results only once every worker
// has retired it.
//
// Synchronisation is a single std::mutex plus two condition variables —
// deliberately boring. Unlike the OpenMP fork/join edges in parallel.hpp
// (libgomp futexes TSan cannot see, hence the GRB_TSAN_* re-annotations
// there), std::mutex/std::condition_variable are native happens-before
// edges for ThreadSanitizer, so this file needs **no** annotations and TSan
// retains full visibility of the hand-off: a producer that publishes an
// epoch before finishing its slot write is reported as a data race (the
// seeded regression test in tests/grb/pipeline_test.cpp proves the lane
// sees it). The repo lint (tools/lint_invariants.py, rule raw-thread)
// confines std::thread / std::condition_variable to src/grb/detail/ for the
// same reason the omp-pragma rule confines pragmas to parallel.hpp: every
// cross-thread edge in the library lives where it can be audited at once.
//
// Hand-off protocol (producer side):
//   const std::uint64_t e = pipe.reserve();   // throws if window is full
//   slots[e % depth] = ...;                   // caller-owned slot write
//   pipe.publish(e);                          // makes e visible to workers
//   ...
//   pipe.wait_retired(e);                     // all workers finished e
//   // read worker results for e, then:
//   pipe.release(e);                          // frees e's window slot
//
// reserve() *throws* (grb::InvalidValue) on a full window instead of
// blocking: the producer is also the drain thread, so blocking here would
// deadlock — callers drain the oldest epoch first (see
// shard::GrbPipelinedEngine::update_stream).
//
// Failure policy: the first exception a stage throws is captured; workers
// skip the stage for later epochs but keep retiring them (fast drain), and
// wait_retired() rethrows the captured exception. The pipeline is dead
// after a failure — reserve() rethrows too, so a producer loop cannot keep
// feeding a poisoned pipeline.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "grb/types.hpp"

namespace grb::detail {

class EpochPipeline {
 public:
  /// Stage body: called as stage(worker, epoch) on worker thread `worker`
  /// for every published epoch, in strictly increasing epoch order per
  /// worker. Different workers may be on different epochs simultaneously.
  using Stage = std::function<void(std::size_t worker, std::uint64_t epoch)>;

  EpochPipeline(std::size_t workers, std::size_t depth, Stage stage)
      : depth_(depth), stage_(std::move(stage)), retired_(workers, 0) {
    if (workers == 0) throw InvalidValue("EpochPipeline: need >= 1 worker");
    if (depth == 0) throw InvalidValue("EpochPipeline: need depth >= 1");
    if (!stage_) throw InvalidValue("EpochPipeline: stage must be callable");
    threads_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads_.emplace_back([this, w] { run_worker(w); });
    }
  }

  EpochPipeline(const EpochPipeline&) = delete;
  EpochPipeline& operator=(const EpochPipeline&) = delete;

  /// Drains every *published* epoch, then joins the workers. Reserved-but-
  /// unpublished epochs are abandoned.
  ~EpochPipeline() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  /// Claims the next epoch number. Throws grb::InvalidValue if the window
  /// already holds `depth` un-released epochs (callers must drain first),
  /// and rethrows the stage failure if the pipeline is poisoned. After
  /// reserve(), the caller owns slot (epoch % depth) until publish().
  [[nodiscard]] std::uint64_t reserve() {
    std::lock_guard<std::mutex> lock(mu_);
    rethrow_if_failed_locked();
    if (next_ - released_ >= depth_) {
      throw InvalidValue(
          "EpochPipeline: window full (depth " + std::to_string(depth_) +
          ") — wait_retired()/release() the oldest epoch before reserving");
    }
    return next_++;
  }

  /// Makes a reserved epoch visible to the workers. Epochs must be
  /// published in reserve order (single-producer contract).
  void publish(std::uint64_t epoch) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (epoch != published_) {
        throw InvalidValue("EpochPipeline: publish out of order (epoch " +
                           std::to_string(epoch) + ", expected " +
                           std::to_string(published_) + ")");
      }
      published_ = epoch + 1;
    }
    cv_work_.notify_all();
  }

  /// Blocks until every worker has retired `epoch`. Rethrows the first
  /// stage exception if any stage failed at or before this epoch.
  void wait_retired(std::uint64_t epoch) {
    std::unique_lock<std::mutex> lock(mu_);
    if (epoch >= published_) {
      throw InvalidValue("EpochPipeline: wait_retired(" +
                         std::to_string(epoch) + ") on unpublished epoch");
    }
    cv_retired_.wait(lock, [&] {
      return failure_ != nullptr || min_retired_locked() > epoch;
    });
    rethrow_if_failed_locked();
  }

  /// Frees the window slot of an epoch the caller has finished merging.
  /// Only call after wait_retired(epoch) — the slot may be overwritten by
  /// the producer immediately afterwards.
  void release(std::uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    if (epoch + 1 > released_) released_ = epoch + 1;
  }

  /// Epochs the given worker has fully retired (== its next epoch).
  [[nodiscard]] std::uint64_t retired_by(std::size_t worker) const {
    std::lock_guard<std::mutex> lock(mu_);
    return retired_[worker];
  }

  /// Epochs every worker has retired (the publication barrier's frontier).
  [[nodiscard]] std::uint64_t min_retired() const {
    std::lock_guard<std::mutex> lock(mu_);
    return min_retired_locked();
  }

  /// Reserved-but-not-released epochs currently occupying the window.
  [[nodiscard]] std::size_t in_flight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<std::size_t>(next_ - released_);
  }

  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t workers() const noexcept {
    return threads_.size();
  }

 private:
  void run_worker(std::size_t w) {
    for (std::uint64_t e = 0;; ++e) {
      bool skip = false;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_work_.wait(lock, [&] { return stop_ || published_ > e; });
        if (published_ <= e) return;  // stopped with nothing left to drain
        skip = failure_ != nullptr;   // poisoned: retire without running
      }
      if (!skip) {
        try {
          stage_(w, e);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu_);
          if (!failure_) failure_ = std::current_exception();
        }
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        retired_[w] = e + 1;
      }
      cv_retired_.notify_all();
    }
  }

  [[nodiscard]] std::uint64_t min_retired_locked() const {
    std::uint64_t lo = retired_.empty() ? 0 : retired_[0];
    for (const std::uint64_t r : retired_) {
      if (r < lo) lo = r;
    }
    return lo;
  }

  void rethrow_if_failed_locked() const {
    if (failure_) std::rethrow_exception(failure_);
  }

  const std::size_t depth_;
  Stage stage_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;     // producer -> workers: new epoch
  std::condition_variable cv_retired_;  // workers -> producer: epoch done
  std::uint64_t next_ = 0;              // epochs reserved
  std::uint64_t published_ = 0;         // epochs visible to workers
  std::uint64_t released_ = 0;          // window slots freed by the producer
  std::vector<std::uint64_t> retired_;  // per-worker retire cursor
  std::exception_ptr failure_;          // first stage exception
  bool stop_ = false;

  std::vector<std::thread> threads_;  // last member: joins before the rest
};

}  // namespace grb::detail
