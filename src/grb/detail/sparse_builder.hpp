// Two-pass symbolic/numeric sparse-vector assembly — the Vector counterpart
// of the CSR pipeline in csr_builder.hpp, shared by every vector-producing
// kernel:
//
//   pass 1 (symbolic): the iteration domain is cut into fixed-width chunks
//                      and each chunk's output-entry count is recorded into
//                      its chunkptr slot, in parallel;
//   scan:              a parallel exclusive scan (detail::parallel_scan)
//                      turns counts into offsets and sizes the index/value
//                      arrays;
//   pass 2 (numeric):  each chunk writes its entries — in ascending index
//                      order — directly into its slice, in parallel.
//
// The chunk grid depends only on the domain size, never on the delivered
// thread team, so the assembled arrays are bit-identical at every thread
// count (the parallel-equivalence suite pins exactly this). Kernels emit
// sorted coordinates with no per-chunk heap staging and no output sort; the
// arrays are handed to Vector::adopt_sorted as-is (debug builds verify the
// sorted-unique/in-range invariants via CsrCheck::kDebug).
#pragma once

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "grb/detail/parallel.hpp"
#include "grb/detail/workspace.hpp"
#include "grb/types.hpp"
#include "grb/vector.hpp"

namespace grb::detail {

/// Fixed symbolic/numeric chunk width. Chosen at the parallel threshold so a
/// domain that splits into more than one chunk is also one worth threading.
inline constexpr Index kSparseChunk = 4096;

inline Index sparse_num_chunks(Index domain) noexcept {
  return (domain + kSparseChunk - 1) / kSparseChunk;
}

template <typename T>
class SparseVecBuilder {
 public:
  /// Builder for a vector of logical size `size` assembled over an
  /// iteration domain of `domain` positions (entry slots, output positions,
  /// or the index space itself — whatever the kernel chunks over).
  SparseVecBuilder(Index size, Index domain)
      : size_(size),
        domain_(domain),
        chunkptr_(workspace().lease<Index>(sparse_num_chunks(domain) + 1)) {
    chunkptr_->assign(sparse_num_chunks(domain) + 1, 0);
  }

  [[nodiscard]] Index num_chunks() const noexcept {
    return static_cast<Index>(chunkptr_->size() - 1);
  }
  [[nodiscard]] Index chunk_lo(Index c) const noexcept {
    return c * kSparseChunk;
  }
  [[nodiscard]] Index chunk_hi(Index c) const noexcept {
    return std::min<Index>(domain_, chunk_lo(c) + kSparseChunk);
  }

  /// Pass 1: declare that chunk c produces n entries.
  void count_chunk(Index c, Index n) noexcept { (*chunkptr_)[c + 1] = n; }

  /// Scans counts into offsets and allocates the entry arrays. Returns the
  /// output nvals. Must be called exactly once, between the passes.
  Index finish_symbolic() {
    const Index nnz = parallel_scan(*chunkptr_);
    ind_ = workspace().lease<Index>(nnz);
    val_ = workspace().lease<T>(nnz);
    ind_->resize(nnz);
    val_->resize(nnz);
    return nnz;
  }

  /// Pass 2 views: chunk c owns [chunkptr[c], chunkptr[c+1]) of the flat
  /// arrays. Entries must be written in ascending index order.
  [[nodiscard]] std::span<Index> chunk_indices(Index c) noexcept {
    return {ind_->data() + (*chunkptr_)[c],
            static_cast<std::size_t>((*chunkptr_)[c + 1] - (*chunkptr_)[c])};
  }
  [[nodiscard]] std::span<T> chunk_values(Index c) noexcept {
    return {val_->data() + (*chunkptr_)[c],
            static_cast<std::size_t>((*chunkptr_)[c + 1] - (*chunkptr_)[c])};
  }

  /// Hands the finished arrays to a Vector, detaching them from the arena
  /// (invariants verified per `check`, by default in debug builds only).
  [[nodiscard]] Vector<T> take(CsrCheck check = CsrCheck::kDebug) && {
    return Vector<T>::adopt_sorted(size_, ind_.detach(), val_.detach(),
                                   check);
  }

 private:
  Index size_ = 0;
  Index domain_ = 0;
  Lease<Index> chunkptr_;
  Lease<Index> ind_;
  Lease<T> val_;
};

/// Chunk-parallel two-pass driver for kernels whose symbolic pass is much
/// cheaper than the numeric one (degree arithmetic, lower_bound range
/// counts): `count(lo, hi)` returns the entry count the domain range
/// [lo, hi) produces, and `fill(lo, hi, idx, val)` writes exactly that many
/// entries in ascending index order. `work_hint` sizes the serial-vs-
/// parallel decision (see parallel_for). When counting a range costs as
/// much as producing it, use build_sparse_staged instead.
template <typename T, typename CountF, typename FillF>
Vector<T> build_sparse(Index size, Index domain, CountF&& count, FillF&& fill,
                       Index work_hint = 0) {
  SparseVecBuilder<T> builder(size, domain);
  const Index nchunks = builder.num_chunks();
  parallel_for(
      nchunks,
      [&](Index c) {
        builder.count_chunk(c, count(builder.chunk_lo(c), builder.chunk_hi(c)));
      },
      work_hint);
  builder.finish_symbolic();
  parallel_for(
      nchunks,
      [&](Index c) {
        fill(builder.chunk_lo(c), builder.chunk_hi(c),
             builder.chunk_indices(c), builder.chunk_values(c));
      },
      work_hint);
  return std::move(builder).take();
}

/// Two-pass driver for kernels whose per-range computation costs as much as
/// the range itself (sorted merges, intersections, lookups, stateful
/// predicates): `emit_range(lo, hi, emit)` must call `emit(index, value)`
/// once per output entry of the domain range [lo, hi), in ascending index
/// order, and must be correct for ANY partition of the domain into
/// ascending ranges. The serial path runs it once over the whole domain —
/// the emitted stream IS the final entry order, appended with zero copies.
/// The parallel path runs each chunk exactly once, streaming into
/// per-thread staging (the symbolic counts fall out of the same pass), then
/// copies the staged entries into the scanned offsets; chunks are striped
/// deterministically (chunk c → stripe c mod team) so the replay consumes
/// each buffer front to back.
template <typename T, typename EmitRangeF>
Vector<T> build_sparse_staged(Index size, Index domain, EmitRangeF&& emit_range,
                              Index work_hint = 0) {
  const Index work = work_hint == 0 ? domain : work_hint;
  // A single chunk cannot split across threads; run the zero-copy path.
  if (sparse_num_chunks(domain) <= 1 || !staged_runs_parallel(domain, work)) {
    auto ind = workspace().lease<Index>(work);
    auto val = workspace().lease<T>(work);
    emit_range(Index{0}, domain, [&](Index i, const T& v) {
      ind->push_back(i);
      val->push_back(v);
    });
    return Vector<T>::adopt_sorted(size, ind.detach(), val.detach());
  }
  SparseVecBuilder<T> builder(size, domain);
  const Index nchunks = builder.num_chunks();
  const auto nteam = static_cast<std::size_t>(effective_threads());
  const std::size_t per_thread = static_cast<std::size_t>(work) / nteam + 1;
  auto ind_stage = workspace().lease_team<Index>(nteam, per_thread);
  auto val_stage = workspace().lease_team<T>(nteam, per_thread);
  int stripes = 1;  // pass-1 team size; pins the chunk→buffer mapping
  parallel_region([&](int tid, int nthreads) {
    if (tid == 0) stripes = nthreads;
    auto& ibuf = ind_stage.buf(static_cast<std::size_t>(tid));
    auto& vbuf = val_stage.buf(static_cast<std::size_t>(tid));
    for (Index c = static_cast<Index>(tid); c < nchunks;
         c += static_cast<Index>(nthreads)) {
      const std::size_t before = ibuf.size();
      emit_range(builder.chunk_lo(c), builder.chunk_hi(c),
                 [&](Index i, const T& v) {
                   ibuf.push_back(i);
                   vbuf.push_back(v);
                 });
      builder.count_chunk(c, static_cast<Index>(ibuf.size() - before));
    }
  });
  builder.finish_symbolic();
  parallel_region([&](int tid, int nthreads) {
    // Replay stripe by stripe so the mapping stays correct even if this
    // region's team size differs from pass 1's.
    for (int t = tid; t < stripes; t += nthreads) {
      const auto& ibuf = ind_stage.buf(static_cast<std::size_t>(t));
      const auto& vbuf = val_stage.buf(static_cast<std::size_t>(t));
      std::size_t r = 0;
      for (Index c = static_cast<Index>(t); c < nchunks;
           c += static_cast<Index>(stripes)) {
        const auto idx = builder.chunk_indices(c);
        const auto vals = builder.chunk_values(c);
        for (std::size_t w = 0; w < idx.size(); ++w, ++r) {
          idx[w] = ibuf[r];
          vals[w] = vbuf[r];
        }
      }
    }
  });
  return std::move(builder).take();
}

/// Compacts dense accumulator arrays — `present(i)` truthy where slot i
/// holds a value, `value(i)` reading it — into a sorted sparse vector via
/// the two-pass pipeline: the symbolic pass popcounts each chunk, the
/// numeric pass gathers. This is the output stage of every dense-scratch
/// kernel (mxv pull, vxm push, reduce_cols).
template <typename T, typename PresentF, typename ValueF>
Vector<T> compact_dense(Index n, PresentF&& present, ValueF&& value) {
  return build_sparse<T>(
      n, n,
      [&](Index lo, Index hi) {
        Index cnt = 0;
        for (Index i = lo; i < hi; ++i) cnt += present(i) ? 1 : 0;
        return cnt;
      },
      [&](Index lo, Index hi, std::span<Index> idx, std::span<T> val) {
        std::size_t w = 0;
        for (Index i = lo; i < hi; ++i) {
          if (present(i)) {
            idx[w] = i;
            val[w] = value(i);
            ++w;
          }
        }
      },
      n);
}

/// Per-thread dense scatter-accumulate → deterministic merge → two-pass
/// compaction: the push-direction (transposed scatter) engine behind vxm
/// and reduce_cols. `scatter(k, upd)` is called once per item k in
/// [0, nitems) and must accumulate via `upd(slot, value)`; collisions
/// combine under `combine`, which must be commutative and associative
/// (per-thread partials are merged in thread order, but the item→thread
/// partition varies with the team size). Small work runs the classic serial
/// scatter with a single accumulator.
template <typename T, typename ScatterF, typename CombineF>
Vector<T> scatter_reduce(Index size, Index nitems, ScatterF&& scatter,
                         CombineF&& combine, Index work_hint = 0) {
  const Index work = work_hint == 0 ? nitems : work_hint;
  if (!staged_runs_parallel(nitems, work)) {
    // Dense accumulator scratch leased from the arena: the Fig. 5 loop's
    // repeated small pushes reuse one warm buffer instead of paying an
    // O(size) allocation per call.
    auto acc_lease = workspace().lease<T>(size);
    auto hit_lease = workspace().lease<unsigned char>(size);
    auto& acc = *acc_lease;
    auto& hit = *hit_lease;
    acc.resize(size);
    hit.assign(size, 0);
    for (Index k = 0; k < nitems; ++k) {
      scatter(k, [&](Index j, const T& v) {
        if (hit[j]) {
          acc[j] = static_cast<T>(combine(acc[j], v));
        } else {
          acc[j] = v;
          hit[j] = 1;
        }
      });
    }
    return compact_dense<T>(
        size, [&](Index j) { return hit[j] != 0; },
        [&](Index j) { return acc[j]; });
  }
  const auto nthreads = static_cast<std::size_t>(effective_threads());
  auto acc = workspace().lease_team<T>(nthreads, size);
  auto hit = workspace().lease_team<unsigned char>(nthreads, size);
  int team = 1;
  parallel_region([&](int tid, int nt) {
    if (tid == 0) team = nt;
    auto& a = acc.buf(static_cast<std::size_t>(tid));
    auto& h = hit.buf(static_cast<std::size_t>(tid));
    a.resize(size);
    h.assign(size, 0);
    for (Index k = static_cast<Index>(tid); k < nitems;
         k += static_cast<Index>(nt)) {
      scatter(k, [&](Index j, const T& v) {
        if (h[j]) {
          a[j] = static_cast<T>(combine(a[j], v));
        } else {
          a[j] = v;
          h[j] = 1;
        }
      });
    }
  });
  // Merge the partials into stripe 0 in thread order, slot-parallel.
  auto& a0 = acc.buf(0);
  auto& h0 = hit.buf(0);
  parallel_for(
      size,
      [&](Index j) {
        for (int t = 1; t < team; ++t) {
          const auto& at = acc.buf(static_cast<std::size_t>(t));
          const auto& ht = hit.buf(static_cast<std::size_t>(t));
          if (!ht[j]) continue;
          if (h0[j]) {
            a0[j] = static_cast<T>(combine(a0[j], at[j]));
          } else {
            a0[j] = at[j];
            h0[j] = 1;
          }
        }
      },
      size);
  return compact_dense<T>(
      size, [&](Index j) { return h0[j] != 0; },
      [&](Index j) { return a0[j]; });
}

}  // namespace grb::detail
