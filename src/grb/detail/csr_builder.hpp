// Two-pass symbolic/numeric CSR assembly — the SuiteSparse:GraphBLAS build
// scheme shared by every matrix-producing kernel:
//
//   pass 1 (symbolic): each output row's entry count is recorded into the
//                      rowptr slot rowptr[i + 1], in parallel;
//   scan:              a parallel exclusive scan (detail::parallel_scan)
//                      turns counts into offsets and sizes colind/val;
//   pass 2 (numeric):  each row writes its sorted entries in place through
//                      row_cols/row_vals spans, in parallel.
//
// Kernels therefore emit sorted CSR directly: no per-row heap staging
// (std::vector<std::vector<...>>), no output tuple sort, and no copy from
// intermediate buffers — the arrays are handed to Matrix::adopt_csr as-is.
//
// All arrays (rowptr, colind, val, per-thread staging) lease from the
// Context workspace: on the steady state of an iteration loop the builder
// runs entirely on recycled capacity and never touches the allocator.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "grb/detail/parallel.hpp"
#include "grb/detail/workspace.hpp"
#include "grb/matrix.hpp"
#include "grb/types.hpp"

namespace grb::detail {

template <typename T>
class CsrBuilder {
 public:
  CsrBuilder(Index nrows, Index ncols)
      : nrows_(nrows),
        ncols_(ncols),
        rowptr_(workspace().lease<Index>(nrows + 1)) {
    rowptr_->assign(nrows + 1, 0);
  }

  [[nodiscard]] Index nrows() const noexcept { return nrows_; }
  [[nodiscard]] Index ncols() const noexcept { return ncols_; }

  /// Pass 1: declare that output row i holds n entries. Each row must be
  /// claimed exactly once (rows default to empty); any thread may claim any
  /// row, but a row must not be claimed twice.
  void count_row(Index i, Index n) noexcept { (*rowptr_)[i + 1] = n; }

  /// Pass-1 alternative for histogram-style kernels (transpose): the count
  /// slot of row i is counts()[i]. Not thread-safe across shared rows.
  [[nodiscard]] std::span<Index> counts() noexcept {
    return {rowptr_->data() + 1, static_cast<std::size_t>(nrows_)};
  }

  /// Scans counts into offsets and allocates the entry arrays. Returns the
  /// output nnz. Must be called exactly once, between the passes.
  Index finish_symbolic() {
    const Index nnz = parallel_scan(*rowptr_);
    colind_ = workspace().lease<Index>(nnz);
    val_ = workspace().lease<T>(nnz);
    colind_->resize(nnz);
    val_->resize(nnz);
    return nnz;
  }

  /// Pass 2 views: row i owns [rowptr[i], rowptr[i+1]) of the flat arrays.
  /// Entries must be written in ascending column order.
  [[nodiscard]] Index row_offset(Index i) const noexcept {
    return (*rowptr_)[i];
  }
  [[nodiscard]] std::span<Index> row_cols(Index i) noexcept {
    return {colind_->data() + (*rowptr_)[i],
            static_cast<std::size_t>((*rowptr_)[i + 1] - (*rowptr_)[i])};
  }
  [[nodiscard]] std::span<T> row_vals(Index i) noexcept {
    return {val_->data() + (*rowptr_)[i],
            static_cast<std::size_t>((*rowptr_)[i + 1] - (*rowptr_)[i])};
  }

  /// Flat views for scatter-style kernels (transpose) that address entries
  /// by absolute position rather than per-row spans.
  [[nodiscard]] std::span<Index> all_cols() noexcept { return *colind_; }
  [[nodiscard]] std::span<T> all_vals() noexcept { return *val_; }

  /// Hands the finished arrays to a Matrix, detaching them from the arena
  /// (they re-enter it when the matrix retires through grb::recycle). Debug
  /// builds verify the CSR invariants; Release builds skip the O(nnz) check
  /// (CsrCheck::kDebug).
  [[nodiscard]] Matrix<T> take() && {
    return Matrix<T>::adopt_csr(nrows_, ncols_, rowptr_.detach(),
                                colind_.detach(), val_.detach());
  }

 private:
  Index nrows_ = 0;
  Index ncols_ = 0;
  Lease<Index> rowptr_;
  Lease<Index> colind_;
  Lease<T> val_;
};

/// Row-parallel two-pass driver for kernels whose per-row work needs no
/// cross-thread scratch: `count(i)` returns row i's entry count, and
/// `fill(i, cols, vals)` writes exactly that many entries in ascending
/// column order. `work_hint` sizes the serial-vs-parallel decision (see
/// parallel_for); pass an nnz-scale estimate when rows are skewed.
///
/// Use this when the symbolic pass is much cheaper than the numeric one
/// (degree arithmetic, pattern-only walks). When counting a row costs as
/// much as producing it, use build_csr_staged instead.
template <typename T, typename CountF, typename FillF>
Matrix<T> build_csr(Index nrows, Index ncols, CountF&& count, FillF&& fill,
                    Index work_hint = 0) {
  CsrBuilder<T> builder(nrows, ncols);
  parallel_for(
      nrows, [&](Index i) { builder.count_row(i, count(i)); }, work_hint);
  builder.finish_symbolic();
  parallel_for(
      nrows, [&](Index i) { fill(i, builder.row_cols(i), builder.row_vals(i)); },
      work_hint);
  return std::move(builder).take();
}

/// Two-pass driver for kernels whose per-row computation costs as much as
/// the row itself (merges, intersections, lookups): pass 1 runs each row
/// ONCE, streaming its entries — in ascending column order — into a
/// per-thread flat staging buffer and recording the count; after the scan,
/// pass 2 copies the staged entries into their final CSR slices. Rows are
/// striped across threads deterministically (row i → stripe i mod team), so
/// the replay in pass 2 consumes each buffer front to back.
///
/// `emit_row(i, emit)` must call `emit(col, value)` once per entry of row i.
/// No omp barriers are used, so this is safe to call from inside another
/// parallel region (it then runs on a nested single-thread team).
/// The serial-vs-parallel gate lives in parallel.hpp (staged_runs_parallel)
/// so the vector pipeline and callers that share scratch across rows
/// (mxm's small-work SPA) key off the exact same decision.
template <typename T, typename EmitRowF>
Matrix<T> build_csr_staged(Index nrows, Index ncols, EmitRowF&& emit_row,
                           Index work_hint = 0) {
  const bool par = staged_runs_parallel(nrows, work_hint);
  const Index work = work_hint == 0 ? nrows : work_hint;
  if (!par) {
    // Serial: the stream of emitted entries IS the final CSR entry order,
    // so append straight into the output arrays and adopt them — one pass,
    // zero copies, exactly the classic serial merge.
    auto rowptr = workspace().lease<Index>(nrows + 1);
    auto colind = workspace().lease<Index>(work);
    auto val = workspace().lease<T>(work);
    rowptr->assign(nrows + 1, 0);
    for (Index i = 0; i < nrows; ++i) {
      emit_row(i, [&](Index j, const T& v) {
        colind->push_back(j);
        val->push_back(v);
      });
      (*rowptr)[i + 1] = static_cast<Index>(colind->size());
    }
    return Matrix<T>::adopt_csr(nrows, ncols, rowptr.detach(),
                                colind.detach(), val.detach());
  }
  CsrBuilder<T> builder(nrows, ncols);
  // Per-thread staging leased up front, pre-sized to the thread cap (the
  // delivered team is never larger) so the regions stay lock-free and need
  // no barrier.
  const auto nteam = static_cast<std::size_t>(effective_threads());
  const std::size_t per_thread = static_cast<std::size_t>(work) / nteam + 1;
  auto col_stage = workspace().lease_team<Index>(nteam, per_thread);
  auto val_stage = workspace().lease_team<T>(nteam, per_thread);
  int stripes = 1;  // pass-1 team size; pins the row→buffer mapping
  parallel_region([&](int tid, int nthreads) {
    if (tid == 0) stripes = nthreads;
    auto& cbuf = col_stage.buf(static_cast<std::size_t>(tid));
    auto& vbuf = val_stage.buf(static_cast<std::size_t>(tid));
    for (Index i = static_cast<Index>(tid); i < nrows;
         i += static_cast<Index>(nthreads)) {
      const std::size_t before = cbuf.size();
      emit_row(i, [&](Index j, const T& v) {
        cbuf.push_back(j);
        vbuf.push_back(v);
      });
      builder.count_row(i, static_cast<Index>(cbuf.size() - before));
    }
  });
  builder.finish_symbolic();
  parallel_region([&](int tid, int nthreads) {
    // Replay stripe by stripe so the mapping stays correct even if this
    // region's team size differs from pass 1's.
    for (int t = tid; t < stripes; t += nthreads) {
      const auto& cbuf = col_stage.buf(static_cast<std::size_t>(t));
      const auto& vbuf = val_stage.buf(static_cast<std::size_t>(t));
      std::size_t r = 0;
      for (Index i = static_cast<Index>(t); i < nrows;
           i += static_cast<Index>(stripes)) {
        const auto cols = builder.row_cols(i);
        const auto vals = builder.row_vals(i);
        for (std::size_t w = 0; w < cols.size(); ++w, ++r) {
          cols[w] = cbuf[r];
          vals[w] = vbuf[r];
        }
      }
    }
  });
  return std::move(builder).take();
}

}  // namespace grb::detail
