// GrB_kronecker: C = A ⊗_kron B, where each entry A(i,j) is replaced by the
// block A(i,j) ⊗ B. Kronecker products are the standard GraphBLAS way to
// synthesise scale-free benchmark graphs (Graph500/RMAT flavour); the test
// suite also uses them to build structured inputs with known properties.
#pragma once

#include <algorithm>
#include <utility>

#include "grb/detail/csr_builder.hpp"
#include "grb/detail/write_back.hpp"
#include "grb/matrix.hpp"
#include "grb/types.hpp"

namespace grb {

namespace detail {

template <typename W, typename MulOp, typename A, typename B>
Matrix<W> kronecker_compute(MulOp mul, const Matrix<A>& a,
                            const Matrix<B>& b) {
  const Index nr = a.nrows() * b.nrows();
  const Index nc = a.ncols() * b.ncols();
  // Output row (ia, ib) holds deg(ia) × deg(ib) entries, so the symbolic
  // pass is pure arithmetic and the numeric fill parallelises per row.
  const Index work = static_cast<Index>(
      static_cast<std::size_t>(a.nvals()) * std::max<Index>(b.nvals(), 1));
  return build_csr<W>(
      nr, nc,
      [&](Index i) {
        return a.row_degree(i / b.nrows()) * b.row_degree(i % b.nrows());
      },
      [&](Index i, std::span<Index> cols, std::span<W> vals) {
        const Index ia = i / b.nrows();
        const Index ib = i % b.nrows();
        const auto acols = a.row_cols(ia);
        const auto avals = a.row_vals(ia);
        const auto bcols = b.row_cols(ib);
        const auto bvals = b.row_vals(ib);
        // Blocks appear in increasing a-column order and columns within
        // each block are sorted, so the row stays sorted.
        std::size_t w = 0;
        for (std::size_t ka = 0; ka < acols.size(); ++ka) {
          const Index col_base = acols[ka] * b.ncols();
          for (std::size_t kb = 0; kb < bcols.size(); ++kb) {
            cols[w] = col_base + bcols[kb];
            vals[w] = static_cast<W>(
                mul(static_cast<W>(avals[ka]), static_cast<W>(bvals[kb])));
            ++w;
          }
        }
      },
      work);
}

}  // namespace detail

/// C = kron(A, B) with ⊗ = mul.
template <typename W, typename MulOp, typename A, typename B>
void kronecker(Matrix<W>& c, MulOp mul, const Matrix<A>& a,
               const Matrix<B>& b) {
  auto t = detail::kronecker_compute<W>(mul, a, b);
  detail::write_back(c, static_cast<const Matrix<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// C<M> (+)= kron(A, B).
template <typename W, typename M, typename Accum, typename MulOp, typename A,
          typename B>
void kronecker(Matrix<W>& c, const Matrix<M>* mask, Accum accum, MulOp mul,
               const Matrix<A>& a, const Matrix<B>& b,
               const Descriptor& desc = {}) {
  auto t = detail::kronecker_compute<W>(mul, a, b);
  detail::write_back(c, mask, accum, desc, std::move(t));
}

}  // namespace grb
