// GrB_kronecker: C = A ⊗_kron B, where each entry A(i,j) is replaced by the
// block A(i,j) ⊗ B. Kronecker products are the standard GraphBLAS way to
// synthesise scale-free benchmark graphs (Graph500/RMAT flavour); the test
// suite also uses them to build structured inputs with known properties.
#pragma once

#include <utility>

#include "grb/detail/write_back.hpp"
#include "grb/matrix.hpp"
#include "grb/types.hpp"

namespace grb {

namespace detail {

template <typename W, typename MulOp, typename A, typename B>
Matrix<W> kronecker_compute(MulOp mul, const Matrix<A>& a,
                            const Matrix<B>& b) {
  const Index nr = a.nrows() * b.nrows();
  const Index nc = a.ncols() * b.ncols();
  std::vector<Index> rowptr(nr + 1, 0);
  std::vector<Index> colind;
  std::vector<W> val;
  colind.reserve(static_cast<std::size_t>(a.nvals()) * b.nvals());
  val.reserve(static_cast<std::size_t>(a.nvals()) * b.nvals());
  for (Index ia = 0; ia < a.nrows(); ++ia) {
    const auto acols = a.row_cols(ia);
    const auto avals = a.row_vals(ia);
    for (Index ib = 0; ib < b.nrows(); ++ib) {
      const auto bcols = b.row_cols(ib);
      const auto bvals = b.row_vals(ib);
      // Row ia*bn + ib of C: blocks appear in increasing a-column order and
      // columns within each block are sorted, so output stays sorted.
      for (std::size_t ka = 0; ka < acols.size(); ++ka) {
        const Index col_base = acols[ka] * b.ncols();
        for (std::size_t kb = 0; kb < bcols.size(); ++kb) {
          colind.push_back(col_base + bcols[kb]);
          val.push_back(static_cast<W>(
              mul(static_cast<W>(avals[ka]), static_cast<W>(bvals[kb]))));
        }
      }
      rowptr[ia * b.nrows() + ib + 1] = static_cast<Index>(colind.size());
    }
  }
  return Matrix<W>::adopt_csr(nr, nc, std::move(rowptr), std::move(colind),
                              std::move(val));
}

}  // namespace detail

/// C = kron(A, B) with ⊗ = mul.
template <typename W, typename MulOp, typename A, typename B>
void kronecker(Matrix<W>& c, MulOp mul, const Matrix<A>& a,
               const Matrix<B>& b) {
  auto t = detail::kronecker_compute<W>(mul, a, b);
  detail::write_back(c, static_cast<const Matrix<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// C<M> (+)= kron(A, B).
template <typename W, typename M, typename Accum, typename MulOp, typename A,
          typename B>
void kronecker(Matrix<W>& c, const Matrix<M>* mask, Accum accum, MulOp mul,
               const Matrix<A>& a, const Matrix<B>& b,
               const Descriptor& desc = {}) {
  auto t = detail::kronecker_compute<W>(mul, a, b);
  detail::write_back(c, mask, accum, desc, std::move(t));
}

}  // namespace grb
