// Diagonal conversions (GxB_Matrix_diag / GxB_Vector_diag): build a
// diagonal matrix from a vector, extract a (shifted) diagonal as a vector,
// and the identity-matrix convenience builder.
#pragma once

#include <cstdlib>
#include <utility>

#include "grb/detail/csr_builder.hpp"
#include "grb/matrix.hpp"
#include "grb/types.hpp"
#include "grb/vector.hpp"

namespace grb {

/// Square matrix with v on diagonal k (k > 0 above, k < 0 below). The
/// dimension is v.size() + |k| so every vector entry has a position.
/// The vector's coordinates are already sorted, so the CSR assembles
/// directly through the two-pass builder — no tuple round-trip, no sort.
template <typename T>
[[nodiscard]] Matrix<T> diag_matrix(const Vector<T>& v, std::int64_t k = 0) {
  const Index shift = static_cast<Index>(k < 0 ? -k : k);
  const Index n = v.size() + shift;
  const auto vi = v.indices();
  const auto vv = v.values();
  detail::CsrBuilder<T> builder(n, n);
  for (const Index i : vi) {
    builder.count_row(k < 0 ? i + shift : i, 1);
  }
  builder.finish_symbolic();
  for (std::size_t s = 0; s < vi.size(); ++s) {
    const Index row = k < 0 ? vi[s] + shift : vi[s];
    builder.row_cols(row)[0] = k < 0 ? vi[s] : vi[s] + shift;
    builder.row_vals(row)[0] = vv[s];
  }
  return std::move(builder).take();
}

/// Diagonal k of a matrix as a vector (length = number of positions on that
/// diagonal).
template <typename T>
[[nodiscard]] Vector<T> diag_vector(const Matrix<T>& a, std::int64_t k = 0) {
  const Index row0 = k < 0 ? static_cast<Index>(-k) : 0;
  const Index col0 = k > 0 ? static_cast<Index>(k) : 0;
  if (row0 >= a.nrows() || col0 >= a.ncols()) {
    return Vector<T>(0);
  }
  const Index len = std::min(a.nrows() - row0, a.ncols() - col0);
  std::vector<Index> idx;
  std::vector<T> vals;
  for (Index s = 0; s < len; ++s) {
    if (const auto val = a.at(row0 + s, col0 + s)) {
      idx.push_back(s);
      vals.push_back(*val);
    }
  }
  return Vector<T>::adopt_sorted(len, std::move(idx), std::move(vals));
}

/// n × n identity matrix over T (ones on the main diagonal).
template <typename T>
[[nodiscard]] Matrix<T> identity_matrix(Index n) {
  return detail::build_csr<T>(
      n, n, [](Index) { return Index{1}; },
      [](Index i, std::span<Index> cols, std::span<T> vals) {
        cols[0] = i;
        vals[0] = T{1};
      },
      n);
}

}  // namespace grb
