// Diagonal conversions (GxB_Matrix_diag / GxB_Vector_diag): build a
// diagonal matrix from a vector, extract a (shifted) diagonal as a vector,
// and the identity-matrix convenience builder.
#pragma once

#include <cstdlib>
#include <utility>

#include "grb/matrix.hpp"
#include "grb/types.hpp"
#include "grb/vector.hpp"

namespace grb {

/// Square matrix with v on diagonal k (k > 0 above, k < 0 below). The
/// dimension is v.size() + |k| so every vector entry has a position.
template <typename T>
[[nodiscard]] Matrix<T> diag_matrix(const Vector<T>& v, std::int64_t k = 0) {
  const Index shift = static_cast<Index>(k < 0 ? -k : k);
  const Index n = v.size() + shift;
  std::vector<Tuple<T>> tuples;
  const auto vi = v.indices();
  const auto vv = v.values();
  tuples.reserve(vi.size());
  for (std::size_t s = 0; s < vi.size(); ++s) {
    const Index row = k < 0 ? vi[s] + shift : vi[s];
    const Index col = k < 0 ? vi[s] : vi[s] + shift;
    tuples.push_back({row, col, vv[s]});
  }
  return Matrix<T>::build(n, n, std::move(tuples));
}

/// Diagonal k of a matrix as a vector (length = number of positions on that
/// diagonal).
template <typename T>
[[nodiscard]] Vector<T> diag_vector(const Matrix<T>& a, std::int64_t k = 0) {
  const Index row0 = k < 0 ? static_cast<Index>(-k) : 0;
  const Index col0 = k > 0 ? static_cast<Index>(k) : 0;
  if (row0 >= a.nrows() || col0 >= a.ncols()) {
    return Vector<T>(0);
  }
  const Index len = std::min(a.nrows() - row0, a.ncols() - col0);
  std::vector<Index> idx;
  std::vector<T> vals;
  for (Index s = 0; s < len; ++s) {
    if (const auto val = a.at(row0 + s, col0 + s)) {
      idx.push_back(s);
      vals.push_back(*val);
    }
  }
  return Vector<T>::adopt_sorted(len, std::move(idx), std::move(vals));
}

/// n × n identity matrix over T (ones on the main diagonal).
template <typename T>
[[nodiscard]] Matrix<T> identity_matrix(Index n) {
  std::vector<Tuple<T>> tuples;
  tuples.reserve(n);
  for (Index i = 0; i < n; ++i) {
    tuples.push_back({i, i, T{1}});
  }
  return Matrix<T>::build(n, n, std::move(tuples));
}

}  // namespace grb
