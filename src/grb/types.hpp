// Core types for the grb library — a from-scratch, GraphBLAS-compatible
// sparse linear algebra engine covering the operation subset used by the
// paper (Table I): mxm, vxm, mxv, eWiseAdd, eWiseMult, extract, apply,
// select, reduce, transpose, build, extractTuples, plus assign.
//
// Semantics follow the GraphBLAS C API specification: operations compute an
// intermediate result T, which is merged into the output C under an optional
// mask M and accumulator op, i.e. C<M> (+)= T. Masks here are structural
// with value-truthiness (an entry participates if present and truthy), which
// matches how the paper's solution uses them.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace grb {

/// Row/column index type, matching GrB_Index.
using Index = std::uint64_t;

/// Boolean storage type (GrB_BOOL). std::vector<bool> is a bit-packed proxy
/// container that cannot hand out spans, so containers must not be
/// instantiated with plain `bool`; use grb::Bool instead.
using Bool = std::uint8_t;

/// Base class of all grb exceptions (mirrors GrB_Info error codes).
class Exception : public std::runtime_error {
 public:
  explicit Exception(const std::string& what) : std::runtime_error(what) {}
};

/// Operand dimensions do not line up (GrB_DIMENSION_MISMATCH).
class DimensionMismatch : public Exception {
 public:
  explicit DimensionMismatch(const std::string& what)
      : Exception("dimension mismatch: " + what) {}
};

/// An index exceeds the container bounds (GrB_INDEX_OUT_OF_BOUNDS).
class IndexOutOfBounds : public Exception {
 public:
  explicit IndexOutOfBounds(const std::string& what)
      : Exception("index out of bounds: " + what) {}
};

/// Malformed input to build/insert (GrB_INVALID_VALUE).
class InvalidValue : public Exception {
 public:
  explicit InvalidValue(const std::string& what)
      : Exception("invalid value: " + what) {}
};

/// Output aliases an input where the kernel cannot tolerate it.
class AliasedOperand : public Exception {
 public:
  explicit AliasedOperand(const std::string& what)
      : Exception("aliased operand: " + what) {}
};

namespace detail {
inline void check(bool cond, const char* msg) {
  if (!cond) throw InvalidValue(msg);
}
}  // namespace detail

/// Descriptor: modifies operation behaviour, GrB_Descriptor-style.
struct Descriptor {
  /// Clear the output outside the mask region before writing (GrB_REPLACE).
  bool replace = false;
  /// Use the complement of the mask (GrB_COMP).
  bool complement_mask = false;
  /// Use only the pattern of the mask, ignoring stored values
  /// (GrB_STRUCTURE). When false, an entry masks iff it is truthy.
  bool structural_mask = false;
  /// Operate on the transpose of the first/second matrix input (GrB_TRAN).
  bool transpose_a = false;
  bool transpose_b = false;
};

/// Tag for "no accumulator": plain C<M> = T write.
struct NoAccum {};

/// Whether adopt_csr / Vector::adopt_sorted verify the invariants of the
/// adopted arrays (consistent sizes, sorted-unique coordinates, in-range
/// indices). kDebug (the default) checks in debug builds only, so Release
/// kernels skip the O(nnz) verify; tests pin invariant violations with
/// kAlways.
enum class CsrCheck {
  kDebug,
  kAlways,
  kNever,
};

}  // namespace grb
