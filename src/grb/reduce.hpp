// GrB_reduce: fold a matrix into a vector (row-wise) or a scalar, and a
// vector into a scalar, under a commutative monoid. Alg. 1 line 6 is a
// row-wise plus-reduction of RootPost; Q2 incremental Step 3 is a row-wise
// lor-reduction of the AC matrix.
#pragma once

#include <utility>

#include "grb/detail/parallel.hpp"
#include "grb/detail/write_back.hpp"
#include "grb/matrix.hpp"
#include "grb/semiring.hpp"
#include "grb/types.hpp"
#include "grb/vector.hpp"

namespace grb {

namespace detail {

template <typename W, typename MonoidT, typename U>
Vector<W> reduce_rows_compute(const MonoidT& monoid, const Matrix<U>& a) {
  // One pass per row; rows with no entries produce no output entry
  // (GraphBLAS reduce yields a sparse result).
  std::vector<Index> oi;
  std::vector<W> ov;
  std::vector<unsigned char> nonempty(a.nrows(), 0);
  std::vector<W> acc(a.nrows());
  parallel_for(
      a.nrows(),
      [&](Index i) {
        const auto av = a.row_vals(i);
        if (av.empty()) return;
        W s = static_cast<W>(av[0]);
        for (std::size_t k = 1; k < av.size(); ++k) {
          s = monoid(s, static_cast<W>(av[k]));
        }
        acc[i] = s;
        nonempty[i] = 1;
      },
      a.nvals());
  for (Index i = 0; i < a.nrows(); ++i) {
    if (nonempty[i]) {
      oi.push_back(i);
      ov.push_back(acc[i]);
    }
  }
  return Vector<W>::adopt_sorted(a.nrows(), std::move(oi), std::move(ov));
}

}  // namespace detail

/// w = [⊕_j A(:, j)] — row-wise reduction.
template <typename W, typename MonoidT, typename U>
void reduce_rows(Vector<W>& w, const MonoidT& monoid, const Matrix<U>& a) {
  auto t = detail::reduce_rows_compute<W>(monoid, a);
  detail::write_back(w, static_cast<const Vector<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// w<m> (+)= [⊕_j A(:, j)].
template <typename W, typename M, typename Accum, typename MonoidT,
          typename U>
void reduce_rows(Vector<W>& w, const Vector<M>* mask, Accum accum,
                 const MonoidT& monoid, const Matrix<U>& a,
                 const Descriptor& desc = {}) {
  auto t = detail::reduce_rows_compute<W>(monoid, a);
  detail::write_back(w, mask, accum, desc, std::move(t));
}

namespace detail {

template <typename W, typename MonoidT, typename U>
Vector<W> reduce_cols_compute(const MonoidT& monoid, const Matrix<U>& a) {
  std::vector<W> acc(a.ncols());
  std::vector<unsigned char> hit(a.ncols(), 0);
  for (Index i = 0; i < a.nrows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const Index j = cols[k];
      if (hit[j]) {
        acc[j] = monoid(acc[j], static_cast<W>(vals[k]));
      } else {
        acc[j] = static_cast<W>(vals[k]);
        hit[j] = 1;
      }
    }
  }
  std::vector<Index> oi;
  std::vector<W> ov;
  for (Index j = 0; j < a.ncols(); ++j) {
    if (hit[j]) {
      oi.push_back(j);
      ov.push_back(acc[j]);
    }
  }
  return Vector<W>::adopt_sorted(a.ncols(), std::move(oi), std::move(ov));
}

}  // namespace detail

/// w = [⊕_i A(i, :)] — column-wise reduction (GrB_reduce with GrB_TRAN).
template <typename W, typename MonoidT, typename U>
void reduce_cols(Vector<W>& w, const MonoidT& monoid, const Matrix<U>& a) {
  auto t = detail::reduce_cols_compute<W>(monoid, a);
  detail::write_back(w, static_cast<const Vector<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// w<m> (+)= [⊕_i A(i, :)].
template <typename W, typename M, typename Accum, typename MonoidT,
          typename U>
void reduce_cols(Vector<W>& w, const Vector<M>* mask, Accum accum,
                 const MonoidT& monoid, const Matrix<U>& a,
                 const Descriptor& desc = {}) {
  auto t = detail::reduce_cols_compute<W>(monoid, a);
  detail::write_back(w, mask, accum, desc, std::move(t));
}

/// s = ⊕_{ij} A(i, j) — full reduction to scalar. Empty matrix yields the
/// monoid identity.
template <typename S, typename MonoidT, typename U>
[[nodiscard]] S reduce_scalar(const MonoidT& monoid, const Matrix<U>& a) {
  S s = static_cast<S>(monoid.identity);
  for (const U& v : a.values()) {
    s = monoid(s, static_cast<S>(v));
  }
  return s;
}

/// s = ⊕_i u(i).
template <typename S, typename MonoidT, typename U>
[[nodiscard]] S reduce_scalar(const MonoidT& monoid, const Vector<U>& u) {
  S s = static_cast<S>(monoid.identity);
  for (const U& v : u.values()) {
    s = monoid(s, static_cast<S>(v));
  }
  return s;
}

}  // namespace grb
