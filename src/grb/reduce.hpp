// GrB_reduce: fold a matrix into a vector (row-wise) or a scalar, and a
// vector into a scalar, under a commutative monoid. Alg. 1 line 6 is a
// row-wise plus-reduction of RootPost; Q2 incremental Step 3 is a row-wise
// lor-reduction of the AC matrix.
//
// reduce_rows is a chunk-parallel two-pass kernel: the symbolic pass counts
// nonempty rows per chunk from the rowptr degrees (O(1) per row), the
// numeric pass folds each row serially — so per-row fold order, and hence
// the result, is identical at every thread count. reduce_cols is the
// push-direction scatter (detail::scatter_reduce, per-thread accumulators).
// Scalar reductions fold over detail::parallel_fold's fixed chunk grid.
#pragma once

#include <utility>

#include "grb/detail/parallel.hpp"
#include "grb/detail/sparse_builder.hpp"
#include "grb/detail/write_back.hpp"
#include "grb/matrix.hpp"
#include "grb/semiring.hpp"
#include "grb/types.hpp"
#include "grb/vector.hpp"

namespace grb {

namespace detail {

template <typename W, typename MonoidT, typename U>
Vector<W> reduce_rows_compute(const MonoidT& monoid, const Matrix<U>& a) {
  // Rows with no entries produce no output entry (GraphBLAS reduce yields a
  // sparse result), so the symbolic count is just the nonempty-row count.
  return build_sparse<W>(
      a.nrows(), a.nrows(),
      [&](Index lo, Index hi) {
        Index cnt = 0;
        for (Index i = lo; i < hi; ++i) cnt += a.row_degree(i) > 0 ? 1 : 0;
        return cnt;
      },
      [&](Index lo, Index hi, std::span<Index> idx, std::span<W> val) {
        std::size_t w = 0;
        for (Index i = lo; i < hi; ++i) {
          const auto av = a.row_vals(i);
          if (av.empty()) continue;
          W s = static_cast<W>(av[0]);
          for (std::size_t k = 1; k < av.size(); ++k) {
            s = monoid(s, static_cast<W>(av[k]));
          }
          idx[w] = i;
          val[w] = s;
          ++w;
        }
      },
      a.nvals());
}

}  // namespace detail

/// w = [⊕_j A(:, j)] — row-wise reduction.
template <typename W, typename MonoidT, typename U>
void reduce_rows(Vector<W>& w, const MonoidT& monoid, const Matrix<U>& a) {
  auto t = detail::reduce_rows_compute<W>(monoid, a);
  detail::write_back(w, static_cast<const Vector<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// w<m> (+)= [⊕_j A(:, j)].
template <typename W, typename M, typename Accum, typename MonoidT,
          typename U>
void reduce_rows(Vector<W>& w, const Vector<M>* mask, Accum accum,
                 const MonoidT& monoid, const Matrix<U>& a,
                 const Descriptor& desc = {}) {
  auto t = detail::reduce_rows_compute<W>(monoid, a);
  detail::write_back(w, mask, accum, desc, std::move(t));
}

namespace detail {

template <typename W, typename MonoidT, typename U>
Vector<W> reduce_cols_compute(const MonoidT& monoid, const Matrix<U>& a) {
  // Column-direction scatter: rows stripe across per-thread accumulators
  // when the work warrants it, exactly the vxm push engine.
  return scatter_reduce<W>(
      a.ncols(), a.nrows(),
      [&](Index i, auto&& upd) {
        const auto cols = a.row_cols(i);
        const auto vals = a.row_vals(i);
        for (std::size_t k = 0; k < cols.size(); ++k) {
          upd(cols[k], static_cast<W>(vals[k]));
        }
      },
      [&](const W& x, const W& y) { return monoid(x, y); }, a.nvals());
}

}  // namespace detail

/// w = [⊕_i A(i, :)] — column-wise reduction (GrB_reduce with GrB_TRAN).
template <typename W, typename MonoidT, typename U>
void reduce_cols(Vector<W>& w, const MonoidT& monoid, const Matrix<U>& a) {
  auto t = detail::reduce_cols_compute<W>(monoid, a);
  detail::write_back(w, static_cast<const Vector<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// w<m> (+)= [⊕_i A(i, :)].
template <typename W, typename M, typename Accum, typename MonoidT,
          typename U>
void reduce_cols(Vector<W>& w, const Vector<M>* mask, Accum accum,
                 const MonoidT& monoid, const Matrix<U>& a,
                 const Descriptor& desc = {}) {
  auto t = detail::reduce_cols_compute<W>(monoid, a);
  detail::write_back(w, mask, accum, desc, std::move(t));
}

namespace detail {

/// Parallel tree reduction of a flat value span under a monoid: fixed-grid
/// chunk partials folded in chunk order (deterministic at any thread count;
/// see parallel_fold).
template <typename S, typename MonoidT, typename U>
[[nodiscard]] S reduce_values(const MonoidT& monoid, std::span<const U> vals) {
  return parallel_fold<S>(
      static_cast<Index>(vals.size()), static_cast<S>(monoid.identity),
      [&](Index lo, Index hi) {
        S s = static_cast<S>(vals[lo]);
        for (Index k = lo + 1; k < hi; ++k) {
          s = monoid(s, static_cast<S>(vals[k]));
        }
        return s;
      },
      [&](const S& x, const S& y) { return monoid(x, y); });
}

}  // namespace detail

/// s = ⊕_{ij} A(i, j) — full reduction to scalar. Empty matrix yields the
/// monoid identity.
template <typename S, typename MonoidT, typename U>
[[nodiscard]] S reduce_scalar(const MonoidT& monoid, const Matrix<U>& a) {
  return detail::reduce_values<S>(monoid, a.values());
}

/// s = ⊕_i u(i).
template <typename S, typename MonoidT, typename U>
[[nodiscard]] S reduce_scalar(const MonoidT& monoid, const Vector<U>& u) {
  return detail::reduce_values<S>(monoid, u.values());
}

}  // namespace grb
