// GrB_mxm: sparse matrix-matrix product over a semiring, C = A ⊕.⊗ B.
// Gustavson's row algorithm with a sparse accumulator (SPA) per thread:
// row i of C is the ⊕-combination of the rows of B selected by row i of A.
// Q2 incremental Step 1 (AC = Likes′ ⊕.⊗ NewFriends) is an mxm whose values
// count how many endpoints of each new friendship like each comment.
#pragma once

#include <utility>
#include <vector>

#include "grb/detail/parallel.hpp"
#include "grb/detail/write_back.hpp"
#include "grb/matrix.hpp"
#include "grb/semiring.hpp"
#include "grb/types.hpp"
#include "grb/vector.hpp"

namespace grb {

namespace detail {

/// Sparse accumulator: dense value + stamp arrays with an occupied list.
/// Reused across rows by bumping the stamp (no O(ncols) clear per row).
template <typename W>
class Spa {
 public:
  explicit Spa(Index n) : val_(n), stamp_(n, 0) {}

  void new_row() noexcept {
    ++generation_;
    occupied_.clear();
  }

  template <typename AddOp>
  void accumulate(Index j, const W& v, const AddOp& add) {
    if (stamp_[j] == generation_) {
      val_[j] = static_cast<W>(add(val_[j], v));
    } else {
      stamp_[j] = generation_;
      val_[j] = v;
      occupied_.push_back(j);
    }
  }

  /// Emits the row's entries sorted by column.
  template <typename Emit>
  void emit_sorted(Emit&& emit) {
    std::sort(occupied_.begin(), occupied_.end());
    for (const Index j : occupied_) {
      emit(j, val_[j]);
    }
  }

  [[nodiscard]] std::size_t nnz() const noexcept { return occupied_.size(); }

 private:
  std::vector<W> val_;
  std::vector<std::uint64_t> stamp_;
  std::vector<Index> occupied_;
  std::uint64_t generation_ = 0;
};

template <typename W, typename SR, typename A, typename B>
Matrix<W> mxm_compute(const SR& sr, const Matrix<A>& a, const Matrix<B>& b) {
  if (a.ncols() != b.nrows()) {
    throw DimensionMismatch("mxm: A is " + std::to_string(a.nrows()) + "x" +
                            std::to_string(a.ncols()) + ", B is " +
                            std::to_string(b.nrows()) + "x" +
                            std::to_string(b.ncols()));
  }
  const Index nrows = a.nrows();
  std::vector<std::vector<Index>> row_cols(nrows);
  std::vector<std::vector<W>> row_vals(nrows);

  parallel_region([&](int tid, int nthreads) {
    Spa<W> spa(b.ncols());
    for (Index i = static_cast<Index>(tid); i < nrows;
         i += static_cast<Index>(nthreads)) {
      const auto acols = a.row_cols(i);
      const auto avals = a.row_vals(i);
      if (acols.empty()) continue;
      spa.new_row();
      for (std::size_t k = 0; k < acols.size(); ++k) {
        const Index t = acols[k];
        const W aval = static_cast<W>(avals[k]);
        const auto bcols = b.row_cols(t);
        const auto bvals = b.row_vals(t);
        for (std::size_t s = 0; s < bcols.size(); ++s) {
          spa.accumulate(bcols[s],
                         static_cast<W>(sr.mul(aval, static_cast<W>(bvals[s]))),
                         sr.add);
        }
      }
      auto& oc = row_cols[i];
      auto& ov = row_vals[i];
      oc.reserve(spa.nnz());
      ov.reserve(spa.nnz());
      spa.emit_sorted([&](Index j, const W& v) {
        oc.push_back(j);
        ov.push_back(v);
      });
    }
  });

  // Assemble CSR from the per-row results.
  std::vector<Index> rowptr(nrows + 1, 0);
  for (Index i = 0; i < nrows; ++i) {
    rowptr[i + 1] = rowptr[i] + static_cast<Index>(row_cols[i].size());
  }
  std::vector<Index> colind(rowptr[nrows]);
  std::vector<W> val(rowptr[nrows]);
  parallel_for(nrows, [&](Index i) {
    std::copy(row_cols[i].begin(), row_cols[i].end(),
              colind.begin() + static_cast<std::ptrdiff_t>(rowptr[i]));
    std::copy(row_vals[i].begin(), row_vals[i].end(),
              val.begin() + static_cast<std::ptrdiff_t>(rowptr[i]));
  });
  return Matrix<W>::adopt_csr(nrows, b.ncols(), std::move(rowptr),
                              std::move(colind), std::move(val));
}

}  // namespace detail

/// C = A ⊕.⊗ B.
template <typename W, typename SR, typename A, typename B>
void mxm(Matrix<W>& c, const SR& sr, const Matrix<A>& a, const Matrix<B>& b) {
  auto t = detail::mxm_compute<W>(sr, a, b);
  detail::write_back(c, static_cast<const Matrix<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// C<M> (+)= A ⊕.⊗ B.
template <typename W, typename M, typename Accum, typename SR, typename A,
          typename B>
void mxm(Matrix<W>& c, const Matrix<M>* mask, Accum accum, const SR& sr,
         const Matrix<A>& a, const Matrix<B>& b, const Descriptor& desc = {}) {
  auto t = detail::mxm_compute<W>(sr, a, b);
  detail::write_back(c, mask, accum, desc, std::move(t));
}

}  // namespace grb
