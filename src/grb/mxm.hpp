// GrB_mxm: sparse matrix-matrix product over a semiring, C = A ⊕.⊗ B.
// Gustavson's row algorithm with a sparse accumulator (SPA) per thread:
// row i of C is the ⊕-combination of the rows of B selected by row i of A.
// Q2 incremental Step 1 (AC = Likes′ ⊕.⊗ NewFriends) is an mxm whose values
// count how many endpoints of each new friendship like each comment.
#pragma once

#include <utility>
#include <vector>

#include "grb/detail/csr_builder.hpp"
#include "grb/detail/parallel.hpp"
#include "grb/detail/workspace.hpp"
#include "grb/detail/write_back.hpp"
#include "grb/matrix.hpp"
#include "grb/semiring.hpp"
#include "grb/types.hpp"
#include "grb/vector.hpp"

namespace grb {

namespace detail {

/// Sparse accumulator: dense value + stamp arrays with an occupied list.
/// Reused across rows by bumping the stamp (no O(ncols) clear per row).
/// All three arrays lease from the Context workspace — a Spa constructed
/// per thread inside a parallel region draws from that thread's warm shard,
/// so repeated mxm calls pay no O(ncols) allocation.
template <typename W>
class Spa {
 public:
  explicit Spa(Index n)
      : val_(workspace().lease<W>(n)),
        stamp_(workspace().lease<std::uint64_t>(n)),
        occupied_(workspace().lease<Index>(n)) {
    val_->resize(n);
    stamp_->assign(n, 0);
  }

  void new_row() noexcept {
    ++generation_;
    occupied_->clear();
  }

  template <typename AddOp>
  void accumulate(Index j, const W& v, const AddOp& add) {
    auto& val = *val_;
    auto& stamp = *stamp_;
    if (stamp[j] == generation_) {
      val[j] = static_cast<W>(add(val[j], v));
    } else {
      stamp[j] = generation_;
      val[j] = v;
      occupied_->push_back(j);
    }
  }

  /// Emits the row's entries sorted by column.
  template <typename Emit>
  void emit_sorted(Emit&& emit) {
    auto& occupied = *occupied_;
    std::sort(occupied.begin(), occupied.end());
    for (const Index j : occupied) {
      emit(j, (*val_)[j]);
    }
  }

  [[nodiscard]] std::size_t nnz() const noexcept { return occupied_->size(); }

 private:
  Lease<W> val_;
  Lease<std::uint64_t> stamp_;
  Lease<Index> occupied_;
  std::uint64_t generation_ = 0;
};

template <typename W, typename SR, typename A, typename B>
Matrix<W> mxm_compute(const SR& sr, const Matrix<A>& a, const Matrix<B>& b) {
  if (a.ncols() != b.nrows()) {
    throw DimensionMismatch("mxm: A is " + std::to_string(a.nrows()) + "x" +
                            std::to_string(a.ncols()) + ", B is " +
                            std::to_string(b.nrows()) + "x" +
                            std::to_string(b.ncols()));
  }
  const Index nrows = a.nrows();

  // Small-work path (the incremental engine's per-delta products): one SPA,
  // one pass, staged append. Skips the symbolic pass's second parallel
  // region and its extra O(ncols) stamp scratch, which would dominate the
  // O(delta-nnz) useful work on the Fig. 5 hot path.
  if (!staged_runs_parallel(nrows, a.nvals() + nrows)) {
    // Same gate build_csr_staged applies to this work hint, so the driver
    // below is guaranteed serial and the single shared SPA is safe.
    Spa<W> spa(b.ncols());
    return build_csr_staged<W>(
        nrows, b.ncols(),
        [&](Index i, auto&& emit) {
          const auto acols = a.row_cols(i);
          const auto avals = a.row_vals(i);
          if (acols.empty()) return;
          spa.new_row();
          for (std::size_t k = 0; k < acols.size(); ++k) {
            const Index t = acols[k];
            const W aval = static_cast<W>(avals[k]);
            const auto bcols = b.row_cols(t);
            const auto bvals = b.row_vals(t);
            for (std::size_t s = 0; s < bcols.size(); ++s) {
              spa.accumulate(
                  bcols[s],
                  static_cast<W>(sr.mul(aval, static_cast<W>(bvals[s]))),
                  sr.add);
            }
          }
          spa.emit_sorted([&](Index j, const W& v) { emit(j, v); });
        },
        a.nvals() + nrows);
  }

  CsrBuilder<W> builder(nrows, b.ncols());

  // Symbolic pass: each output row's pattern size via a value-free SPA —
  // just the generation-stamp array, no values, no occupied list, no sort.
  parallel_region([&](int tid, int nthreads) {
    auto stamp_lease = workspace().lease<std::uint64_t>(b.ncols());
    auto& stamp = *stamp_lease;
    stamp.assign(b.ncols(), 0);
    std::uint64_t generation = 0;
    for (Index i = static_cast<Index>(tid); i < nrows;
         i += static_cast<Index>(nthreads)) {
      const auto acols = a.row_cols(i);
      if (acols.empty()) continue;  // row count slots default to 0
      ++generation;
      Index nnz = 0;
      for (const Index t : acols) {
        for (const Index j : b.row_cols(t)) {
          if (stamp[j] != generation) {
            stamp[j] = generation;
            ++nnz;
          }
        }
      }
      builder.count_row(i, nnz);
    }
  });
  builder.finish_symbolic();

  // Numeric pass: full SPA per thread, rows emitted sorted straight into
  // their preallocated CSR slots.
  parallel_region([&](int tid, int nthreads) {
    Spa<W> spa(b.ncols());
    for (Index i = static_cast<Index>(tid); i < nrows;
         i += static_cast<Index>(nthreads)) {
      const auto cols = builder.row_cols(i);
      if (cols.empty()) continue;
      const auto vals = builder.row_vals(i);
      const auto acols = a.row_cols(i);
      const auto avals = a.row_vals(i);
      spa.new_row();
      for (std::size_t k = 0; k < acols.size(); ++k) {
        const Index t = acols[k];
        const W aval = static_cast<W>(avals[k]);
        const auto bcols = b.row_cols(t);
        const auto bvals = b.row_vals(t);
        for (std::size_t s = 0; s < bcols.size(); ++s) {
          spa.accumulate(bcols[s],
                         static_cast<W>(sr.mul(aval, static_cast<W>(bvals[s]))),
                         sr.add);
        }
      }
      std::size_t w = 0;
      spa.emit_sorted([&](Index j, const W& v) {
        cols[w] = j;
        vals[w] = v;
        ++w;
      });
    }
  });
  return std::move(builder).take();
}

}  // namespace detail

/// C = A ⊕.⊗ B.
template <typename W, typename SR, typename A, typename B>
void mxm(Matrix<W>& c, const SR& sr, const Matrix<A>& a, const Matrix<B>& b) {
  auto t = detail::mxm_compute<W>(sr, a, b);
  detail::write_back(c, static_cast<const Matrix<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// C<M> (+)= A ⊕.⊗ B.
template <typename W, typename M, typename Accum, typename SR, typename A,
          typename B>
void mxm(Matrix<W>& c, const Matrix<M>* mask, Accum accum, const SR& sr,
         const Matrix<A>& a, const Matrix<B>& b, const Descriptor& desc = {}) {
  auto t = detail::mxm_compute<W>(sr, a, b);
  detail::write_back(c, mask, accum, desc, std::move(t));
}

}  // namespace grb
