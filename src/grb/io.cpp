#include "grb/io.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <type_traits>

namespace grb {

namespace {

struct MmHeader {
  bool pattern = false;
  bool symmetric = false;
};

MmHeader parse_header(const std::string& line) {
  std::istringstream in(line);
  std::string banner, object, format, field, symmetry;
  in >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket" || object != "matrix" ||
      format != "coordinate") {
    throw InvalidValue("not a coordinate MatrixMarket file: " + line);
  }
  MmHeader h;
  if (field == "pattern") {
    h.pattern = true;
  } else if (field != "integer" && field != "real") {
    throw InvalidValue("unsupported MatrixMarket field: " + field);
  }
  if (symmetry == "symmetric") {
    h.symmetric = true;
  } else if (symmetry != "general") {
    throw InvalidValue("unsupported MatrixMarket symmetry: " + symmetry);
  }
  return h;
}

}  // namespace

template <typename T>
Matrix<T> read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open MatrixMarket file: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    throw InvalidValue("empty MatrixMarket file: " + path);
  }
  const MmHeader header = parse_header(line);
  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  Index nrows = 0, ncols = 0;
  std::size_t nnz = 0;
  if (!(dims >> nrows >> ncols >> nnz)) {
    throw InvalidValue("malformed MatrixMarket size line: " + line);
  }
  std::vector<Tuple<T>> tuples;
  tuples.reserve(header.symmetric ? 2 * nnz : nnz);
  for (std::size_t k = 0; k < nnz; ++k) {
    if (!std::getline(in, line)) {
      throw InvalidValue("MatrixMarket file truncated at entry " +
                         std::to_string(k));
    }
    std::istringstream entry(line);
    Index i = 0, j = 0;
    if (!(entry >> i >> j) || i == 0 || j == 0) {
      throw InvalidValue("malformed MatrixMarket entry: " + line);
    }
    T value{1};
    if (!header.pattern) {
      double v = 0;
      if (!(entry >> v)) {
        throw InvalidValue("missing value in MatrixMarket entry: " + line);
      }
      value = static_cast<T>(v);
    }
    tuples.push_back({i - 1, j - 1, value});  // 1-based -> 0-based
    if (header.symmetric && i != j) {
      tuples.push_back({j - 1, i - 1, value});
    }
  }
  return Matrix<T>::build(nrows, ncols, std::move(tuples), Second<T>{});
}

template <typename T>
void write_matrix_market(const Matrix<T>& m, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open MatrixMarket file for writing: " +
                             path);
  }
  const char* field =
      std::is_floating_point_v<T> ? "real" : "integer";
  out << "%%MatrixMarket matrix coordinate " << field << " general\n";
  out << "% written by grbsm\n";
  out << m.nrows() << ' ' << m.ncols() << ' ' << m.nvals() << '\n';
  for (Index i = 0; i < m.nrows(); ++i) {
    const auto cols = m.row_cols(i);
    const auto vals = m.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out << (i + 1) << ' ' << (cols[k] + 1) << ' ';
      if constexpr (std::is_floating_point_v<T>) {
        out << vals[k];
      } else {
        out << static_cast<std::int64_t>(vals[k]);
      }
      out << '\n';
    }
  }
  if (!out) {
    throw std::runtime_error("I/O error while writing " + path);
  }
}

template Matrix<std::uint64_t> read_matrix_market<std::uint64_t>(
    const std::string&);
template Matrix<std::int64_t> read_matrix_market<std::int64_t>(
    const std::string&);
template Matrix<double> read_matrix_market<double>(const std::string&);
template Matrix<Bool> read_matrix_market<Bool>(const std::string&);
template void write_matrix_market<std::uint64_t>(const Matrix<std::uint64_t>&,
                                                 const std::string&);
template void write_matrix_market<std::int64_t>(const Matrix<std::int64_t>&,
                                                const std::string&);
template void write_matrix_market<double>(const Matrix<double>&,
                                          const std::string&);
template void write_matrix_market<Bool>(const Matrix<Bool>&,
                                        const std::string&);

}  // namespace grb
