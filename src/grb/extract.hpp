// GrB_extract: submatrix C = A(I, J), subvector w = u(I), and the row-slice
// convenience w = A(i, :). Q2's batch algorithm extracts, for every comment,
// the friendship submatrix induced by the users who like it — so the
// submatrix kernel is on the hot path and avoids any O(ncols) scratch:
// when J is sorted it maps columns by binary search (O(deg · log |J|));
// otherwise it falls back to a hash map.
#pragma once

#include <algorithm>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "grb/detail/write_back.hpp"
#include "grb/matrix.hpp"
#include "grb/types.hpp"
#include "grb/vector.hpp"

namespace grb {

namespace detail {

inline bool is_sorted_unique(std::span<const Index> xs) {
  for (std::size_t k = 1; k < xs.size(); ++k) {
    if (xs[k] <= xs[k - 1]) return false;
  }
  return true;
}

/// Maps source column -> output position for an index list J.
class ColMapper {
 public:
  explicit ColMapper(std::span<const Index> j) : j_(j) {
    sorted_ = is_sorted_unique(j);
    if (!sorted_) {
      map_.reserve(j.size());
      for (std::size_t k = 0; k < j.size(); ++k) {
        const auto [it, inserted] = map_.emplace(j[k], static_cast<Index>(k));
        if (!inserted) {
          throw InvalidValue("extract: duplicate column index");
        }
      }
    }
  }

  /// Output position of source column c, or npos.
  static constexpr Index npos = static_cast<Index>(-1);
  [[nodiscard]] Index lookup(Index c) const {
    if (sorted_) {
      const auto it = std::lower_bound(j_.begin(), j_.end(), c);
      if (it == j_.end() || *it != c) return npos;
      return static_cast<Index>(it - j_.begin());
    }
    const auto it = map_.find(c);
    return it == map_.end() ? npos : it->second;
  }

 private:
  std::span<const Index> j_;
  bool sorted_ = false;
  std::unordered_map<Index, Index> map_;
};

template <typename U>
Matrix<U> extract_compute(const Matrix<U>& a, std::span<const Index> rows,
                          std::span<const Index> cols) {
  for (const Index i : rows) {
    if (i >= a.nrows()) throw IndexOutOfBounds("extract: row " + std::to_string(i));
  }
  for (const Index j : cols) {
    if (j >= a.ncols()) throw IndexOutOfBounds("extract: col " + std::to_string(j));
  }
  const ColMapper mapper(cols);
  const Index nr = static_cast<Index>(rows.size());
  std::vector<Index> rowptr(nr + 1, 0);
  std::vector<Index> colind;
  std::vector<U> val;
  std::vector<std::pair<Index, U>> rowbuf;
  for (Index out_i = 0; out_i < nr; ++out_i) {
    const Index src = rows[out_i];
    const auto acols = a.row_cols(src);
    const auto avals = a.row_vals(src);
    rowbuf.clear();
    for (std::size_t k = 0; k < acols.size(); ++k) {
      const Index pos = mapper.lookup(acols[k]);
      if (pos != ColMapper::npos) {
        rowbuf.emplace_back(pos, avals[k]);
      }
    }
    std::sort(rowbuf.begin(), rowbuf.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    for (const auto& [j, v] : rowbuf) {
      colind.push_back(j);
      val.push_back(v);
    }
    rowptr[out_i + 1] = static_cast<Index>(colind.size());
  }
  return Matrix<U>::adopt_csr(nr, static_cast<Index>(cols.size()),
                              std::move(rowptr), std::move(colind),
                              std::move(val));
}

template <typename U>
Vector<U> extract_compute(const Vector<U>& u, std::span<const Index> idx) {
  std::vector<std::pair<Index, U>> buf;
  for (Index k = 0; k < static_cast<Index>(idx.size()); ++k) {
    if (idx[k] >= u.size()) {
      throw IndexOutOfBounds("extract: index " + std::to_string(idx[k]));
    }
    if (const auto v = u.at(idx[k])) {
      buf.emplace_back(k, *v);
    }
  }
  std::sort(buf.begin(), buf.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  std::vector<Index> oi;
  std::vector<U> ov;
  oi.reserve(buf.size());
  ov.reserve(buf.size());
  for (const auto& [i, v] : buf) {
    oi.push_back(i);
    ov.push_back(v);
  }
  return Vector<U>::adopt_sorted(static_cast<Index>(idx.size()),
                                 std::move(oi), std::move(ov));
}

}  // namespace detail

/// C = A(I, J): rows I and columns J, renumbered to 0..|I|-1 × 0..|J|-1 in
/// list order.
template <typename U>
void extract(Matrix<U>& c, const Matrix<U>& a, std::span<const Index> rows,
             std::span<const Index> cols) {
  auto t = detail::extract_compute(a, rows, cols);
  detail::write_back(c, static_cast<const Matrix<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// Returns A(I, J) by value (hot-path form used by Q2).
template <typename U>
[[nodiscard]] Matrix<U> extract_submatrix(const Matrix<U>& a,
                                          std::span<const Index> rows,
                                          std::span<const Index> cols) {
  return detail::extract_compute(a, rows, cols);
}

/// w = u(I).
template <typename U>
void extract(Vector<U>& w, const Vector<U>& u, std::span<const Index> idx) {
  auto t = detail::extract_compute(u, idx);
  detail::write_back(w, static_cast<const Vector<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// w = A(i, :) as a sparse vector of size ncols (GrB_Col_extract on Aᵀ).
template <typename U>
[[nodiscard]] Vector<U> extract_row(const Matrix<U>& a, Index i) {
  if (i >= a.nrows()) {
    throw IndexOutOfBounds("extract_row: " + std::to_string(i));
  }
  const auto cols = a.row_cols(i);
  const auto vals = a.row_vals(i);
  return Vector<U>::adopt_sorted(a.ncols(),
                                 std::vector<Index>(cols.begin(), cols.end()),
                                 std::vector<U>(vals.begin(), vals.end()));
}

}  // namespace grb
