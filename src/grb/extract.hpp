// GrB_extract: submatrix C = A(I, J), subvector w = u(I), and the row-slice
// convenience w = A(i, :). Q2's batch algorithm extracts, for every comment,
// the friendship submatrix induced by the users who like it — so the
// submatrix kernel is on the hot path and avoids any O(ncols) scratch:
// when J is sorted it maps columns by binary search (O(deg · log |J|));
// otherwise it falls back to a hash map.
#pragma once

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "grb/detail/csr_builder.hpp"
#include "grb/detail/sparse_builder.hpp"
#include "grb/detail/write_back.hpp"
#include "grb/matrix.hpp"
#include "grb/types.hpp"
#include "grb/vector.hpp"

namespace grb {

namespace detail {

inline bool is_sorted_unique(std::span<const Index> xs) {
  for (std::size_t k = 1; k < xs.size(); ++k) {
    if (xs[k] <= xs[k - 1]) return false;
  }
  return true;
}

/// Position of `x` in the sorted-unique list `xs`, or kNoPos. Used both to
/// map source columns into J and to probe CSR rows on the unsorted-J path.
inline constexpr Index kNoPos = static_cast<Index>(-1);
inline Index lookup_sorted(std::span<const Index> xs, Index x) {
  const auto it = std::lower_bound(xs.begin(), xs.end(), x);
  if (it == xs.end() || *it != x) return kNoPos;
  return static_cast<Index>(it - xs.begin());
}

template <typename U>
Matrix<U> extract_compute(const Matrix<U>& a, std::span<const Index> rows,
                          std::span<const Index> cols) {
  for (const Index i : rows) {
    if (i >= a.nrows()) throw IndexOutOfBounds("extract: row " + std::to_string(i));
  }
  for (const Index j : cols) {
    if (j >= a.ncols()) throw IndexOutOfBounds("extract: col " + std::to_string(j));
  }
  const Index nr = static_cast<Index>(rows.size());
  const bool cols_sorted = is_sorted_unique(cols);
  if (!cols_sorted) {
    // Duplicate columns are invalid either way; detect them on a sorted copy.
    std::vector<Index> check(cols.begin(), cols.end());
    std::sort(check.begin(), check.end());
    if (std::adjacent_find(check.begin(), check.end()) != check.end()) {
      throw InvalidValue("extract: duplicate column index");
    }
  }
  // Work estimate from the degrees of the extracted rows (not all of A):
  // the Q2 hot path pulls tiny induced submatrices and must stay serial.
  Index work = nr;
  for (Index out_i = 0; out_i < nr; ++out_i) {
    work += a.row_degree(rows[out_i]);
  }
  // Per-row sorted intersection of the source row with J, driven from the
  // smaller side; visit(k, pos) sees source entry k at output column pos in
  // ascending pos order, so rows come out sorted with no per-row staging.
  //
  // Sorted J (the Q2 hot path): positions ascend with source columns, so
  // either side may drive. Unsorted J: drive by output position and
  // binary-search the source row; costs O(|J| log deg) per row, but only
  // tests take this path.
  const auto intersect_row = [&](Index src, auto&& visit) {
    const auto acols = a.row_cols(src);
    if (cols_sorted && acols.size() <= cols.size()) {
      for (std::size_t k = 0; k < acols.size(); ++k) {
        const Index pos = lookup_sorted(cols, acols[k]);
        if (pos != kNoPos) visit(k, pos);
      }
    } else {
      for (Index p = 0; p < static_cast<Index>(cols.size()); ++p) {
        const Index k = lookup_sorted(acols, cols[p]);
        if (k != kNoPos) visit(static_cast<std::size_t>(k), p);
      }
    }
  };
  // The per-row computation (binary-search intersection) costs as much as
  // the row itself, so use the staged driver: each row intersects once.
  return build_csr_staged<U>(
      nr, static_cast<Index>(cols.size()),
      [&](Index i, auto&& emit) {
        const auto avals = a.row_vals(rows[i]);
        intersect_row(rows[i],
                      [&](std::size_t k, Index pos) { emit(pos, avals[k]); });
      },
      work);
}

template <typename U>
Vector<U> extract_compute(const Vector<U>& u, std::span<const Index> idx) {
  // Bounds are validated up front: the chunked lookups below run inside
  // parallel regions, where a throw would terminate.
  for (const Index i : idx) {
    if (i >= u.size()) {
      throw IndexOutOfBounds("extract: index " + std::to_string(i));
    }
  }
  // Output positions follow idx order, so driving by position emits sorted
  // coordinates directly; each output chunk probes u independently through
  // the staged pipeline (the per-position binary search costs as much as
  // the entry, so counting separately would double it).
  return build_sparse_staged<U>(
      static_cast<Index>(idx.size()), static_cast<Index>(idx.size()),
      [&](Index lo, Index hi, auto&& emit) {
        for (Index k = lo; k < hi; ++k) {
          if (const auto v = u.at(idx[k])) emit(k, *v);
        }
      },
      static_cast<Index>(idx.size()));
}

}  // namespace detail

/// C = A(I, J): rows I and columns J, renumbered to 0..|I|-1 × 0..|J|-1 in
/// list order.
template <typename U>
void extract(Matrix<U>& c, const Matrix<U>& a, std::span<const Index> rows,
             std::span<const Index> cols) {
  auto t = detail::extract_compute(a, rows, cols);
  detail::write_back(c, static_cast<const Matrix<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// Returns A(I, J) by value (hot-path form used by Q2).
template <typename U>
[[nodiscard]] Matrix<U> extract_submatrix(const Matrix<U>& a,
                                          std::span<const Index> rows,
                                          std::span<const Index> cols) {
  return detail::extract_compute(a, rows, cols);
}

/// w = u(I).
template <typename U>
void extract(Vector<U>& w, const Vector<U>& u, std::span<const Index> idx) {
  auto t = detail::extract_compute(u, idx);
  detail::write_back(w, static_cast<const Vector<Bool>*>(nullptr), NoAccum{},
                     Descriptor{}, std::move(t));
}

/// w = A(i, :) as a sparse vector of size ncols (GrB_Col_extract on Aᵀ).
template <typename U>
[[nodiscard]] Vector<U> extract_row(const Matrix<U>& a, Index i) {
  if (i >= a.nrows()) {
    throw IndexOutOfBounds("extract_row: " + std::to_string(i));
  }
  const auto cols = a.row_cols(i);
  const auto vals = a.row_vals(i);
  return Vector<U>::adopt_sorted(a.ncols(),
                                 std::vector<Index>(cols.begin(), cols.end()),
                                 std::vector<U>(vals.begin(), vals.end()));
}

}  // namespace grb
