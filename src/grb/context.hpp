// Global execution context: controls the number of OpenMP threads the grb
// kernels may use (GxB_set(GxB_NTHREADS, ...) equivalent) and owns the
// workspace arena that kernels lease their scratch and output storage from.
// The paper compares 1-thread and 8-thread configurations of the same
// binary; the benchmark harness flips the thread knob between runs, and the
// arena keeps the per-change-set incremental loop off the system allocator.
#pragma once

#include <cstddef>

#include "grb/detail/workspace.hpp"

namespace grb {

/// Sets the maximum number of threads grb kernels use. Values < 1 reset to
/// the OpenMP default (all hardware threads).
void set_threads(int n) noexcept;

/// Current thread cap (>= 1).
int threads() noexcept;

/// True when an explicit cap is in force (set_threads with n >= 1), false
/// when the OpenMP default applies. Explicitly pinned counts are honoured
/// even above the visible processor count — the differential test harness
/// and the paper's fixed 1-vs-8-thread runs rely on it — while the default
/// is clamped to the processors available to this process.
bool threads_pinned() noexcept;

/// RAII guard: sets the thread cap for a scope and restores it after.
class ThreadGuard {
 public:
  explicit ThreadGuard(int n) noexcept;
  ~ThreadGuard();
  ThreadGuard(const ThreadGuard&) = delete;
  ThreadGuard& operator=(const ThreadGuard&) = delete;

 private:
  int saved_;
};

/// Process-wide execution context. Owns the workspace arena; thread-cap
/// state stays in the free functions above (they predate the class and are
/// kept for API stability — Context::threads() forwards to them).
class Context {
 public:
  /// The singleton. Construction is lazy and thread-safe; the arena lives
  /// as long as the process, so leases taken anywhere always have a home.
  [[nodiscard]] static Context& instance() noexcept;

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] detail::Workspace& workspace() noexcept { return workspace_; }

  /// Snapshot of the arena counters/gauges (hits, misses, bytes leased,
  /// cached bytes). Benches read this to prove steady-state allocation
  /// drops to ~zero on the Fig. 5 loop.
  [[nodiscard]] WorkspaceStats workspace_stats() const {
    return workspace_.stats();
  }
  void reset_workspace_stats() { workspace_.reset_stats(); }

  /// Frees all cached arena buffers; returns bytes released.
  std::size_t trim_workspace() { return workspace_.trim(); }

  [[nodiscard]] int threads() const noexcept { return grb::threads(); }

 private:
  Context() = default;

  detail::Workspace workspace_;
};

/// Convenience forwarders for Context::instance().
[[nodiscard]] WorkspaceStats workspace_stats();
void reset_workspace_stats();
std::size_t trim_workspace();

/// Per-domain lease counters (hits/steals/misses/bytes_leased only — the
/// other fields stay zero). Engine shards attribute their leases to a
/// domain via detail::ScopedStatsDomain; this reads one domain's share.
[[nodiscard]] WorkspaceStats workspace_domain_stats(std::size_t domain);

}  // namespace grb
