// Global execution context: controls the number of OpenMP threads the grb
// kernels may use (GxB_set(GxB_NTHREADS, ...) equivalent). The paper
// compares 1-thread and 8-thread configurations of the same binary; the
// benchmark harness flips this knob between runs.
#pragma once

namespace grb {

/// Sets the maximum number of threads grb kernels use. Values < 1 reset to
/// the OpenMP default (all hardware threads).
void set_threads(int n) noexcept;

/// Current thread cap (>= 1).
int threads() noexcept;

/// True when an explicit cap is in force (set_threads with n >= 1), false
/// when the OpenMP default applies. Explicitly pinned counts are honoured
/// even above the visible processor count — the differential test harness
/// and the paper's fixed 1-vs-8-thread runs rely on it — while the default
/// is clamped to the processors available to this process.
bool threads_pinned() noexcept;

/// RAII guard: sets the thread cap for a scope and restores it after.
class ThreadGuard {
 public:
  explicit ThreadGuard(int n) noexcept;
  ~ThreadGuard();
  ThreadGuard(const ThreadGuard&) = delete;
  ThreadGuard& operator=(const ThreadGuard&) = delete;

 private:
  int saved_;
};

}  // namespace grb
