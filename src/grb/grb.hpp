// Umbrella header for the grb library — a from-scratch GraphBLAS-compatible
// sparse linear algebra engine. Include this to get containers, operator
// catalogues and all operation kernels.
//
// Quick tour:
//   grb::Matrix<T>, grb::Vector<T>       — CSR matrix / sorted-coo vector
//   grb::plus_times_semiring<T>() etc.   — semiring catalogue
//   grb::mxm / mxv / vxm                 — products over a semiring
//   grb::eWiseAdd / eWiseMult            — union / intersection element-wise
//   grb::apply / select / reduce_*       — maps, filters, folds
//   grb::extract / assign / transpose    — structural ops
//   grb::set_threads(n)                  — OpenMP parallelism control
//
// All operations follow the GraphBLAS output-merge model C<M> (+)= T with
// optional mask, accumulator and descriptor (replace/complement/structure).
#pragma once

#include "grb/apply.hpp"
#include "grb/assign.hpp"
#include "grb/binary_ops.hpp"
#include "grb/context.hpp"
#include "grb/diag.hpp"
#include "grb/ewise.hpp"
#include "grb/extract.hpp"
#include "grb/io.hpp"
#include "grb/kronecker.hpp"
#include "grb/matrix.hpp"
#include "grb/mxm.hpp"
#include "grb/mxv.hpp"
#include "grb/reduce.hpp"
#include "grb/select.hpp"
#include "grb/semiring.hpp"
#include "grb/transpose.hpp"
#include "grb/types.hpp"
#include "grb/vector.hpp"
