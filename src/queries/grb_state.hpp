// GrbState: the GraphBLAS view of the social graph, exactly the matrices the
// paper's solution maintains (Sec. III):
//
//   RootPost ∈ B^{|posts| × |comments|}   — post p is the root of comment c
//   Likes    ∈ B^{|comments| × |users|}   — user u likes comment c
//   Friends  ∈ B^{|users| × |users|}      — symmetric friendship adjacency
//   likesCount ∈ N^{|comments|}           — row-wise sum of Likes (maintained)
//
// plus the id/timestamp mappings needed to emit contest answers, and the
// comment → root-post mapping needed to resolve incoming changes.
//
// apply_change_set() grows the matrix dimensions, merges all new edges in
// sorted batches, and returns the GrbDelta the incremental algorithms
// consume: ΔRootPost, likesCount⁺, the NewFriends incidence matrix and the
// new/modified comment lists of Fig. 4.
#pragma once

#include <unordered_map>
#include <vector>

#include "grb/detail/check.hpp"
#include "grb/grb.hpp"
#include "model/change.hpp"
#include "model/social_graph.hpp"

namespace queries {

using grb::Bool;
using grb::Index;

/// What a change set did, in matrix terms (inputs of Alg. 2 / Fig. 4b).
struct GrbDelta {
  /// ΔRootPost: new rootPost edges, dims posts' × comments'.
  grb::Matrix<Bool> delta_root_post;
  /// likesCount⁺: new likes per comment, size comments'.
  grb::Vector<std::uint64_t> likes_count_plus;
  /// NewFriends incidence matrix: users' × #new friendships, one column per
  /// new friendship with 1s at both endpoints.
  grb::Matrix<Bool> new_friends;
  /// Dense ids of comments created by this change set.
  std::vector<Index> new_comments;
  /// Dense ids of posts created by this change set (needed to seed them as
  /// zero-score top-k candidates).
  std::vector<Index> new_posts;
  /// New (comment, user) like pairs after deduplication — consumed by the
  /// incremental-connected-components extension engine.
  std::vector<std::pair<Index, Index>> new_likes;
  /// New (user, user) friendship pairs after deduplication (the columns of
  /// `new_friends`, as pairs).
  std::vector<std::pair<Index, Index>> new_friendships;

  // --- removal extension (paper future-work item (1)) ------------------------
  /// likesCount⁻: likes removed per comment, size comments'.
  grb::Vector<std::uint64_t> likes_count_minus;
  /// Removed (comment, user) like pairs (edges that actually existed).
  std::vector<std::pair<Index, Index>> removed_likes;
  /// RemovedFriends incidence matrix (users' × #removed friendships), same
  /// encoding as `new_friends` — drives the Q2 affected-set rule for
  /// removals (a comment both ex-friends like may split a component).
  grb::Matrix<Bool> removed_friends;
  /// Removed (user, user) friendship pairs.
  std::vector<std::pair<Index, Index>> removed_friendships;

  /// True if this change set removed any edge; engines then leave the
  /// monotone merge-only top-k fast path.
  [[nodiscard]] bool has_removals() const noexcept {
    return !removed_likes.empty() || !removed_friendships.empty();
  }

  GrbDelta() = default;
  GrbDelta(const GrbDelta&) = default;
  GrbDelta& operator=(const GrbDelta&) = default;
  GrbDelta(GrbDelta&&) = default;
  GrbDelta& operator=(GrbDelta&&) = default;
  /// A retiring delta donates its matrix/vector storage to the workspace
  /// arena (every engine consumes one delta per update, and this drain
  /// would otherwise keep the Fig. 5 loop allocating). Runs on every exit
  /// path, so engines need no hand-threaded cleanup.
  ~GrbDelta() { recycle_storage(); }

  /// Donates the delta's matrix/vector storage to the arena, leaving the
  /// containers empty.
  void recycle_storage() {
    grb::recycle(std::move(delta_root_post));
    grb::recycle(std::move(likes_count_plus));
    grb::recycle(std::move(likes_count_minus));
    grb::recycle(std::move(new_friends));
    grb::recycle(std::move(removed_friends));
  }
};

class GrbState {
 public:
  GrbState() = default;
  GrbState(const GrbState&) = default;
  GrbState& operator=(const GrbState&) = default;
  GrbState(GrbState&&) = default;
  GrbState& operator=(GrbState&&) = default;
  /// Retiring a state donates its matrix storage to the workspace arena, so
  /// back-to-back engine runs (benchmark repeats, the CI smoke's warm-up
  /// pass) hand their largest buffers to the next run instead of freeing
  /// them.
  ~GrbState() { recycle_storage(); }

  /// Donates the matrices' storage to the arena, leaving them empty.
  void recycle_storage() {
    grb::recycle(std::move(root_post_));
    grb::recycle(std::move(likes_));
    grb::recycle(std::move(friends_));
    grb::recycle(std::move(likes_count_));
  }

  /// Builds the matrices from an initial graph (the "load" phase).
  static GrbState from_graph(const sm::SocialGraph& g);

  /// Applies a change set: grows dimensions, merges edges, returns the delta.
  /// Externally serial: Debug builds guard against reentrant or concurrent
  /// applies (ReentrancyGuard aborts on an overlapping scope).
  GrbDelta apply_change_set(const sm::ChangeSet& cs);

  /// Completed applies on this state (Debug builds; always 0 in Release).
  [[nodiscard]] std::uint64_t apply_epoch() const noexcept {
    return apply_guard_.epoch();
  }

  // --- matrix views ---------------------------------------------------------
  [[nodiscard]] const grb::Matrix<Bool>& root_post() const noexcept {
    return root_post_;
  }
  [[nodiscard]] const grb::Matrix<Bool>& likes() const noexcept {
    return likes_;
  }
  [[nodiscard]] const grb::Matrix<Bool>& friends() const noexcept {
    return friends_;
  }
  [[nodiscard]] const grb::Vector<std::uint64_t>& likes_count() const noexcept {
    return likes_count_;
  }

  [[nodiscard]] Index num_posts() const noexcept { return root_post_.nrows(); }
  [[nodiscard]] Index num_comments() const noexcept { return likes_.nrows(); }
  [[nodiscard]] Index num_users() const noexcept { return friends_.nrows(); }

  // --- answer metadata ------------------------------------------------------
  [[nodiscard]] sm::NodeId post_id(Index i) const { return post_ids_[i]; }
  [[nodiscard]] sm::NodeId comment_id(Index i) const { return comment_ids_[i]; }
  [[nodiscard]] sm::NodeId user_id(Index i) const { return user_ids_[i]; }
  [[nodiscard]] sm::Timestamp post_timestamp(Index i) const {
    return post_ts_[i];
  }
  [[nodiscard]] sm::Timestamp comment_timestamp(Index i) const {
    return comment_ts_[i];
  }

 private:
  void add_user(sm::NodeId id);
  void add_post(sm::NodeId id, sm::Timestamp ts);
  /// Returns (root post, dense comment id).
  std::pair<Index, Index> add_comment(sm::NodeId id, sm::Timestamp ts,
                                      bool parent_is_comment,
                                      sm::NodeId parent);

  grb::Matrix<Bool> root_post_{0, 0};
  grb::Matrix<Bool> likes_{0, 0};
  grb::Matrix<Bool> friends_{0, 0};
  grb::Vector<std::uint64_t> likes_count_{0};

  std::vector<sm::NodeId> post_ids_;
  std::vector<sm::NodeId> comment_ids_;
  std::vector<sm::NodeId> user_ids_;
  std::vector<sm::Timestamp> post_ts_;
  std::vector<sm::Timestamp> comment_ts_;
  std::vector<Index> comment_root_;  // dense comment -> dense root post

  std::unordered_map<sm::NodeId, Index> post_idx_;
  std::unordered_map<sm::NodeId, Index> comment_idx_;
  std::unordered_map<sm::NodeId, Index> user_idx_;

  /// Debug reentrancy/epoch guard on apply_change_set (no-op in Release;
  /// copies of a state start with a fresh, idle guard).
  grb::detail::ReentrancyGuard apply_guard_;
};

}  // namespace queries
