// Q2 "influential comments": for each comment, the friendship subgraph
// induced by the users who like it is decomposed into connected components;
// score(c) = Σ (component size)². Batch evaluation follows the upper half
// of the paper's Fig. 4b (extractTuples → extract submatrix → FastSV →
// squared component sizes), parallelised with OpenMP at the granularity of
// comments exactly as the paper describes. Incremental evaluation follows
// the lower half: the NewFriends incidence trick (Steps 1-4) plus new
// comments and newly-liked comments form the affected set (Step 5), which
// is then rescored with the batch kernel (Steps 6-9).
#pragma once

#include <cstdint>
#include <vector>

#include "queries/grb_state.hpp"

namespace queries {

/// Score of a single comment (Steps 2-4 of Fig. 4b for one comment).
std::uint64_t q2_comment_score(const GrbState& state, Index comment);

/// Full evaluation: scores for all comments (sparse; comments nobody likes
/// have no entry). OpenMP-parallel over comments, bounded by grb::threads().
grb::Vector<std::uint64_t> q2_batch_scores(const GrbState& state);

/// Steps 1-5 of Fig. 4b: the set of comments whose score may have changed —
/// new comments ∪ comments with new likes ∪ comments where a new friendship
/// connects two likers. Sorted, unique.
std::vector<Index> q2_affected_comments(const GrbState& state,
                                        const GrbDelta& delta);

/// Ablation variant: the *coarse* affected-set rule that skips the
/// NewFriends incidence trick (Steps 1-4) and instead marks every comment
/// liked by either endpoint of a changed friendship. Strictly a superset of
/// q2_affected_comments; bench/ablation_affected quantifies how much
/// reevaluation work the paper's AC = 2 selection saves over this.
std::vector<Index> q2_affected_comments_coarse(const GrbState& state,
                                               const GrbDelta& delta);

/// Incremental maintenance: rescoers only the affected comments, updates
/// `scores` in place (resizing to the new comment count) and returns
/// Δscores — the affected entries whose value actually changed.
grb::Vector<std::uint64_t> q2_incremental_update(
    const GrbState& state, const GrbDelta& delta,
    grb::Vector<std::uint64_t>& scores);

}  // namespace queries
