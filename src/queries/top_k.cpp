#include "queries/top_k.hpp"

#include <algorithm>

#include "support/telemetry/metrics.hpp"

namespace queries {

namespace telemetry = grbsm::telemetry;

bool ranks_before(const Ranked& a, const Ranked& b) noexcept {
  if (a.score != b.score) return a.score > b.score;
  if (a.timestamp != b.timestamp) return a.timestamp > b.timestamp;
  return a.id < b.id;
}

void TopK::offer(const Ranked& candidate) {
  // Remove a stale entry for the same id, if any.
  const auto same_id = std::find_if(
      entries_.begin(), entries_.end(),
      [&](const Ranked& e) { return e.id == candidate.id; });
  if (same_id != entries_.end()) {
    entries_.erase(same_id);
  }
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), candidate,
      [](const Ranked& a, const Ranked& b) { return ranks_before(a, b); });
  entries_.insert(pos, candidate);
  if (entries_.size() > k_) {
    entries_.resize(k_);
  }
}

std::string TopK::answer() const {
  std::string out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i != 0) out.push_back('|');
    out += std::to_string(entries_[i].id);
  }
  return out;
}

TopK top_k_of(std::size_t k, const std::vector<Ranked>& all) {
  TopK t(k);
  for (const Ranked& r : all) {
    t.offer_guarded(r);
  }
  return t;
}

// --- Threshold-pruned answer extraction --------------------------------------

bool block_can_beat(const TopK& top, std::uint64_t bound) noexcept {
  if (!top.full()) return true;
  // Best conceivable entity of the block: the bound as its score, the
  // newest possible timestamp, the smallest possible id. If even that
  // candidate ranks at or after the kth entry, nothing in the block can
  // enter the answer.
  const Ranked best_conceivable{
      /*id=*/0, /*score=*/bound,
      /*timestamp=*/std::numeric_limits<sm::Timestamp>::max()};
  return ranks_before(best_conceivable, top.worst());
}

void BlockBounds::reset(Index n) {
  n_ = n;
  const Index blocks = n == 0 ? 0 : (n + width_ - 1) / width_;
  bounds_.assign(blocks, 0);
  stale_.assign(blocks, 0);
}

void BlockBounds::resize(Index n) {
  if (n <= n_) return;
  n_ = n;
  const Index blocks = (n + width_ - 1) / width_;
  if (blocks > bounds_.size()) {
    bounds_.resize(blocks, 0);
    stale_.resize(blocks, 0);
  }
}

void CandidatePool::offer(Index idx, const Ranked& r) {
  const auto same = std::find_if(entries_.begin(), entries_.end(),
                                 [&](const Entry& e) { return e.idx == idx; });
  if (same != entries_.end()) {
    entries_.erase(same);
  } else if (entries_.size() >= capacity_) {
    if (!ranks_before(r, entries_.back().r)) return;
    entries_.pop_back();
  }
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), r,
      [](const Entry& e, const Ranked& c) { return ranks_before(e.r, c); });
  entries_.insert(pos, Entry{idx, r});
}

void CandidatePool::seed(TopK& top, PruneStats& stats) const {
  for (const Entry& e : entries_) {
    top.offer(e.r);
    ++stats.pool_hits;
  }
}

// --- Process-global prune counters -------------------------------------------
//
// The accessors keep their PR-9 signatures, but the storage is the telemetry
// registry: the six counters live under stable "prune.*" dotted names (so
// the daemon's kMetrics frame and the bench JSONs see them for free), and
// every multi-counter update runs as a registry batch — a snapshot can never
// observe scanned + skipped != total, which the daemon asserts on the wire.

namespace {

struct PruneMetrics {
  telemetry::Counter& blocks_total;
  telemetry::Counter& blocks_scanned;
  telemetry::Counter& blocks_skipped;
  telemetry::Counter& pool_hits;
  telemetry::Counter& pool_rebuilds;
  telemetry::Counter& bound_rebuilds;

  static PruneMetrics& get() {
    static PruneMetrics m{
        telemetry::Registry::instance().counter("prune.blocks_total"),
        telemetry::Registry::instance().counter("prune.blocks_scanned"),
        telemetry::Registry::instance().counter("prune.blocks_skipped"),
        telemetry::Registry::instance().counter("prune.pool_hits"),
        telemetry::Registry::instance().counter("prune.pool_rebuilds"),
        telemetry::Registry::instance().counter("prune.bound_rebuilds")};
    return m;
  }
};

}  // namespace

PruneStats prune_counters() noexcept {
  // One coherent registry snapshot: the seqlock spins out any in-flight
  // add/reset batch, so the six values always satisfy their invariant.
  const telemetry::RegistrySnapshot snap =
      telemetry::Registry::instance().snapshot();
  PruneStats s;
  s.blocks_total = snap.value_or("prune.blocks_total", 0);
  s.blocks_scanned = snap.value_or("prune.blocks_scanned", 0);
  s.blocks_skipped = snap.value_or("prune.blocks_skipped", 0);
  s.pool_hits = snap.value_or("prune.pool_hits", 0);
  s.pool_rebuilds = snap.value_or("prune.pool_rebuilds", 0);
  s.bound_rebuilds = snap.value_or("prune.bound_rebuilds", 0);
  return s;
}

void add_prune_counters(const PruneStats& delta) noexcept {
  PruneMetrics& m = PruneMetrics::get();
  const telemetry::Registry::BatchScope batch;
  m.blocks_total.add(delta.blocks_total);
  m.blocks_scanned.add(delta.blocks_scanned);
  m.blocks_skipped.add(delta.blocks_skipped);
  m.pool_hits.add(delta.pool_hits);
  m.pool_rebuilds.add(delta.pool_rebuilds);
  m.bound_rebuilds.add(delta.bound_rebuilds);
}

void reset_prune_counters() noexcept {
  PruneMetrics& m = PruneMetrics::get();
  const telemetry::Registry::BatchScope batch;
  m.blocks_total.reset();
  m.blocks_scanned.reset();
  m.blocks_skipped.reset();
  m.pool_hits.reset();
  m.pool_rebuilds.reset();
  m.bound_rebuilds.reset();
}

}  // namespace queries
