#include "queries/top_k.hpp"

#include <algorithm>

namespace queries {

bool ranks_before(const Ranked& a, const Ranked& b) noexcept {
  if (a.score != b.score) return a.score > b.score;
  if (a.timestamp != b.timestamp) return a.timestamp > b.timestamp;
  return a.id < b.id;
}

void TopK::offer(const Ranked& candidate) {
  // Remove a stale entry for the same id, if any.
  const auto same_id = std::find_if(
      entries_.begin(), entries_.end(),
      [&](const Ranked& e) { return e.id == candidate.id; });
  if (same_id != entries_.end()) {
    entries_.erase(same_id);
  }
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), candidate,
      [](const Ranked& a, const Ranked& b) { return ranks_before(a, b); });
  entries_.insert(pos, candidate);
  if (entries_.size() > k_) {
    entries_.resize(k_);
  }
}

std::string TopK::answer() const {
  std::string out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i != 0) out.push_back('|');
    out += std::to_string(entries_[i].id);
  }
  return out;
}

TopK top_k_of(std::size_t k, const std::vector<Ranked>& all) {
  TopK t(k);
  for (const Ranked& r : all) {
    t.offer_guarded(r);
  }
  return t;
}

}  // namespace queries
