#include "queries/top_k.hpp"

#include <algorithm>
#include <atomic>

namespace queries {

bool ranks_before(const Ranked& a, const Ranked& b) noexcept {
  if (a.score != b.score) return a.score > b.score;
  if (a.timestamp != b.timestamp) return a.timestamp > b.timestamp;
  return a.id < b.id;
}

void TopK::offer(const Ranked& candidate) {
  // Remove a stale entry for the same id, if any.
  const auto same_id = std::find_if(
      entries_.begin(), entries_.end(),
      [&](const Ranked& e) { return e.id == candidate.id; });
  if (same_id != entries_.end()) {
    entries_.erase(same_id);
  }
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), candidate,
      [](const Ranked& a, const Ranked& b) { return ranks_before(a, b); });
  entries_.insert(pos, candidate);
  if (entries_.size() > k_) {
    entries_.resize(k_);
  }
}

std::string TopK::answer() const {
  std::string out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i != 0) out.push_back('|');
    out += std::to_string(entries_[i].id);
  }
  return out;
}

TopK top_k_of(std::size_t k, const std::vector<Ranked>& all) {
  TopK t(k);
  for (const Ranked& r : all) {
    t.offer_guarded(r);
  }
  return t;
}

// --- Threshold-pruned answer extraction --------------------------------------

bool block_can_beat(const TopK& top, std::uint64_t bound) noexcept {
  if (!top.full()) return true;
  // Best conceivable entity of the block: the bound as its score, the
  // newest possible timestamp, the smallest possible id. If even that
  // candidate ranks at or after the kth entry, nothing in the block can
  // enter the answer.
  const Ranked best_conceivable{
      /*id=*/0, /*score=*/bound,
      /*timestamp=*/std::numeric_limits<sm::Timestamp>::max()};
  return ranks_before(best_conceivable, top.worst());
}

void BlockBounds::reset(Index n) {
  n_ = n;
  const Index blocks = n == 0 ? 0 : (n + width_ - 1) / width_;
  bounds_.assign(blocks, 0);
  stale_.assign(blocks, 0);
}

void BlockBounds::resize(Index n) {
  if (n <= n_) return;
  n_ = n;
  const Index blocks = (n + width_ - 1) / width_;
  if (blocks > bounds_.size()) {
    bounds_.resize(blocks, 0);
    stale_.resize(blocks, 0);
  }
}

void CandidatePool::offer(Index idx, const Ranked& r) {
  const auto same = std::find_if(entries_.begin(), entries_.end(),
                                 [&](const Entry& e) { return e.idx == idx; });
  if (same != entries_.end()) {
    entries_.erase(same);
  } else if (entries_.size() >= capacity_) {
    if (!ranks_before(r, entries_.back().r)) return;
    entries_.pop_back();
  }
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), r,
      [](const Entry& e, const Ranked& c) { return ranks_before(e.r, c); });
  entries_.insert(pos, Entry{idx, r});
}

void CandidatePool::seed(TopK& top, PruneStats& stats) const {
  for (const Entry& e : entries_) {
    top.offer(e.r);
    ++stats.pool_hits;
  }
}

// --- Process-global prune counters -------------------------------------------

namespace {

struct AtomicPruneCounters {
  std::atomic<std::uint64_t> blocks_total{0};
  std::atomic<std::uint64_t> blocks_scanned{0};
  std::atomic<std::uint64_t> blocks_skipped{0};
  std::atomic<std::uint64_t> pool_hits{0};
  std::atomic<std::uint64_t> pool_rebuilds{0};
  std::atomic<std::uint64_t> bound_rebuilds{0};
};

AtomicPruneCounters& counters() {
  static AtomicPruneCounters c;
  return c;
}

}  // namespace

PruneStats prune_counters() noexcept {
  AtomicPruneCounters& c = counters();
  PruneStats s;
  s.blocks_total = c.blocks_total.load(std::memory_order_relaxed);
  s.blocks_scanned = c.blocks_scanned.load(std::memory_order_relaxed);
  s.blocks_skipped = c.blocks_skipped.load(std::memory_order_relaxed);
  s.pool_hits = c.pool_hits.load(std::memory_order_relaxed);
  s.pool_rebuilds = c.pool_rebuilds.load(std::memory_order_relaxed);
  s.bound_rebuilds = c.bound_rebuilds.load(std::memory_order_relaxed);
  return s;
}

void add_prune_counters(const PruneStats& delta) noexcept {
  AtomicPruneCounters& c = counters();
  c.blocks_total.fetch_add(delta.blocks_total, std::memory_order_relaxed);
  c.blocks_scanned.fetch_add(delta.blocks_scanned, std::memory_order_relaxed);
  c.blocks_skipped.fetch_add(delta.blocks_skipped, std::memory_order_relaxed);
  c.pool_hits.fetch_add(delta.pool_hits, std::memory_order_relaxed);
  c.pool_rebuilds.fetch_add(delta.pool_rebuilds, std::memory_order_relaxed);
  c.bound_rebuilds.fetch_add(delta.bound_rebuilds, std::memory_order_relaxed);
}

void reset_prune_counters() noexcept {
  AtomicPruneCounters& c = counters();
  c.blocks_total.store(0, std::memory_order_relaxed);
  c.blocks_scanned.store(0, std::memory_order_relaxed);
  c.blocks_skipped.store(0, std::memory_order_relaxed);
  c.pool_hits.store(0, std::memory_order_relaxed);
  c.pool_rebuilds.store(0, std::memory_order_relaxed);
  c.bound_rebuilds.store(0, std::memory_order_relaxed);
}

}  // namespace queries
