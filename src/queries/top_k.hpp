// Top-k answer maintenance with the contest's ordering: higher score first,
// ties broken by the more recent timestamp, then by the smaller id (for a
// deterministic total order). The incremental engines exploit that scores
// never decrease under insert-only updates: merging the previous top-k with
// the entities whose scores changed is sufficient to maintain the answer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/social_graph.hpp"

namespace queries {

struct Ranked {
  sm::NodeId id = 0;
  std::uint64_t score = 0;
  sm::Timestamp timestamp = 0;

  friend bool operator==(const Ranked&, const Ranked&) = default;
};

/// True if a ranks strictly before b.
[[nodiscard]] bool ranks_before(const Ranked& a, const Ranked& b) noexcept;

class TopK {
 public:
  explicit TopK(std::size_t k = 3) : k_(k) {}

  /// Offers a candidate. If an entry with the same id exists it is replaced
  /// (scores are monotonically nondecreasing, so the new entry never ranks
  /// worse than the one it replaces).
  void offer(const Ranked& candidate);

  /// offer() behind the full-scan pre-filter: only candidates that can
  /// enter the current top-k are inserted, avoiding k² work on big scans.
  /// Sound only while entries are never replaced by worse ones — i.e. for
  /// building a fresh answer, not for maintaining one across updates.
  void offer_guarded(const Ranked& candidate) {
    if (entries_.size() < k_ || ranks_before(candidate, entries_.back())) {
      offer(candidate);
    }
  }

  /// Current entries, best first (at most k).
  [[nodiscard]] const std::vector<Ranked>& entries() const noexcept {
    return entries_;
  }

  /// Contest answer string: ids of the best entries joined with '|'.
  [[nodiscard]] std::string answer() const;

  void clear() noexcept { entries_.clear(); }
  [[nodiscard]] std::size_t k() const noexcept { return k_; }

 private:
  std::size_t k_;
  std::vector<Ranked> entries_;  // sorted best-first, unique ids, ≤ k
};

/// Builds the answer from a full candidate scan (batch engines).
TopK top_k_of(std::size_t k, const std::vector<Ranked>& all);

}  // namespace queries
