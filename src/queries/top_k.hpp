// Top-k answer maintenance with the contest's ordering: higher score first,
// ties broken by the more recent timestamp, then by the smaller id (for a
// deterministic total order). The incremental engines exploit that scores
// never decrease under insert-only updates: merging the previous top-k with
// the entities whose scores changed is sufficient to maintain the answer.
//
// Removal-bearing change sets break that monotonicity, and the re-rank they
// force used to be an unconditional full scan. The pruned layer below (the
// maxscore trick, adapted to incremental maintenance) kills those rescans:
//
//   BlockBounds    — per-block score *upper bounds* over the dense entity id
//                    space, maintained incrementally from each epoch's
//                    changed (idx, val) pairs. Raising values raise the
//                    bound eagerly; lowering values only mark the block
//                    stale (the bound stays a valid upper bound), and an
//                    exact rebuild happens lazily when a block's staleness
//                    crosses a budget.
//   CandidatePool  — a bounded per-shard pool of the strongest entities,
//                    kept value-exact across change sets (every score
//                    change flows through the per-epoch changed sets), so a
//                    re-rank can seed the top-k — and thus the pruning
//                    threshold — before touching any block.
//   block_can_beat — the skip test: a block is scanned only if a candidate
//                    with the block's bound, the best conceivable timestamp
//                    and the best conceivable id would still rank before
//                    the current kth entry. The tie fields are part of the
//                    test (a block whose bound *equals* the threshold score
//                    must be scanned — an entity there can still win on
//                    timestamp or id), which is what keeps the pruned
//                    answer byte-identical to the full scan.
//
// Every engine that prunes also reports PruneStats; the process-global
// accumulators (prune_counters / add_prune_counters / reset_prune_counters,
// the WorkspaceStats-style accessor trio) feed the benches' JSON and the
// daemon's kStats response.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "model/social_graph.hpp"

namespace queries {

using Index = std::uint64_t;

struct Ranked {
  sm::NodeId id = 0;
  std::uint64_t score = 0;
  sm::Timestamp timestamp = 0;

  friend bool operator==(const Ranked&, const Ranked&) = default;
};

/// True if a ranks strictly before b.
[[nodiscard]] bool ranks_before(const Ranked& a, const Ranked& b) noexcept;

class TopK {
 public:
  explicit TopK(std::size_t k = 3) : k_(k) {}

  /// Offers a candidate. If an entry with the same id exists it is replaced
  /// (scores are monotonically nondecreasing, so the new entry never ranks
  /// worse than the one it replaces).
  void offer(const Ranked& candidate);

  /// offer() behind the full-scan pre-filter: only candidates that can
  /// enter the current top-k are inserted, avoiding k² work on big scans.
  /// Sound only while entries are never replaced by worse ones — i.e. for
  /// building a fresh answer, not for maintaining one across updates.
  void offer_guarded(const Ranked& candidate) {
    if (entries_.size() < k_ || ranks_before(candidate, entries_.back())) {
      offer(candidate);
    }
  }

  /// Current entries, best first (at most k).
  [[nodiscard]] const std::vector<Ranked>& entries() const noexcept {
    return entries_;
  }

  /// True once k entries are held — the precondition for pruning (an
  /// unfilled top-k can never refuse a candidate).
  [[nodiscard]] bool full() const noexcept { return entries_.size() >= k_; }
  /// The kth (worst) entry — the pruning threshold. Only valid when
  /// !entries().empty().
  [[nodiscard]] const Ranked& worst() const noexcept {
    return entries_.back();
  }

  /// Contest answer string: ids of the best entries joined with '|'.
  [[nodiscard]] std::string answer() const;

  void clear() noexcept { entries_.clear(); }
  [[nodiscard]] std::size_t k() const noexcept { return k_; }

 private:
  std::size_t k_;
  std::vector<Ranked> entries_;  // sorted best-first, unique ids, ≤ k
};

/// Builds the answer from a full candidate scan (batch engines).
TopK top_k_of(std::size_t k, const std::vector<Ranked>& all);

// --- Threshold-pruned answer extraction --------------------------------------

/// Counters of the pruned re-rank path. blocks_total counts every block a
/// pruned scan *considered* (before the skip decision), so
/// blocks_scanned + blocks_skipped == blocks_total is an invariant the CI
/// smoke gates — a code path that forgets to count breaks the equation
/// instead of silently rotting.
struct PruneStats {
  std::uint64_t blocks_total = 0;
  std::uint64_t blocks_scanned = 0;
  std::uint64_t blocks_skipped = 0;
  std::uint64_t pool_hits = 0;      ///< candidates seeded from pools
  std::uint64_t pool_rebuilds = 0;  ///< full-scan pool (re)builds
  std::uint64_t bound_rebuilds = 0; ///< lazy exact bound recomputations

  PruneStats& operator+=(const PruneStats& o) noexcept {
    blocks_total += o.blocks_total;
    blocks_scanned += o.blocks_scanned;
    blocks_skipped += o.blocks_skipped;
    pool_hits += o.pool_hits;
    pool_rebuilds += o.pool_rebuilds;
    bound_rebuilds += o.bound_rebuilds;
    return *this;
  }
  friend bool operator==(const PruneStats&, const PruneStats&) = default;
};

/// Process-global prune counters (WorkspaceStats-style accessors): every
/// pruned re-rank adds its deltas with add_prune_counters, benches and the
/// daemon read snapshots with prune_counters. The adders run on whichever
/// thread owns the engine (the writer thread, in the daemon); the fields are
/// relaxed atomics underneath, so stats readers on other threads are safe.
[[nodiscard]] PruneStats prune_counters() noexcept;
void add_prune_counters(const PruneStats& delta) noexcept;
void reset_prune_counters() noexcept;

/// Dense ids per bound block. Small enough that pruning bites at the bench
/// scale factors, big enough that the bounds array stays negligible
/// (n / 256 u64s) and a scanned block amortises its skip test.
inline constexpr Index kPruneBlockWidth = 256;
/// Lowering events a block absorbs before its bound is recomputed exactly.
/// Removals between rebuilds leave the bound stale-high — still a valid
/// upper bound, so correctness never depends on this number; it only trades
/// rebuild work against skip precision.
inline constexpr std::uint32_t kStaleBudget = 16;
/// Candidate pool capacity (entities per shard). Must be >= the answer k;
/// the slack keeps the seed threshold strong while removals demote leaders.
inline constexpr std::size_t kPoolCapacity = 12;

/// The skip test, tie fields included: can a block with score upper bound
/// `bound` still place an entity into `top`? Compares the best conceivable
/// candidate (score = bound, newest possible timestamp, smallest possible
/// id) against the current kth entry under the full ranks_before order — so
/// bound == threshold score never skips, and byte-identity survives ties at
/// exactly the threshold.
[[nodiscard]] bool block_can_beat(const TopK& top,
                                  std::uint64_t bound) noexcept;

/// Per-block score upper bounds over one dense entity id space (one shard's
/// comments, or the merged post totals). Maintained by the thread that owns
/// the answer extraction — the engines' update path or the pipelined
/// publisher — never shared.
class BlockBounds {
 public:
  explicit BlockBounds(Index block_width = kPruneBlockWidth)
      : width_(block_width == 0 ? kPruneBlockWidth : block_width) {}

  /// Forgets everything and re-covers [0, n) with zero bounds. The caller
  /// re-raises from a full scan (initial evaluation).
  void reset(Index n);
  /// Grows the covered space to [0, n); existing bounds are kept, newborn
  /// blocks start at bound 0 (new entities are born with score 0 — their
  /// first nonzero score arrives as a changed pair and raises the bound).
  void resize(Index n);

  [[nodiscard]] Index num_entities() const noexcept { return n_; }
  [[nodiscard]] Index num_blocks() const noexcept {
    return static_cast<Index>(bounds_.size());
  }
  [[nodiscard]] Index block_width() const noexcept { return width_; }
  [[nodiscard]] Index block_of(Index i) const noexcept { return i / width_; }
  [[nodiscard]] Index block_lo(Index b) const noexcept { return b * width_; }
  [[nodiscard]] Index block_hi(Index b) const noexcept {
    const Index hi = block_lo(b) + width_;
    return hi < n_ ? hi : n_;
  }
  [[nodiscard]] std::uint64_t bound(Index b) const noexcept {
    return bounds_[b];
  }
  [[nodiscard]] std::uint32_t staleness(Index b) const noexcept {
    return stale_[b];
  }

  /// Raise-only fold (insert-only epochs, initial full scans): bound =
  /// max(bound, v). Never touches staleness.
  void raise(Index i, std::uint64_t v) noexcept {
    const Index b = block_of(i);
    if (v > bounds_[b]) bounds_[b] = v;
  }

  /// Folds one changed entry whose new value is `v`. When the change may
  /// have *lowered* the block maximum (a removal epoch), the block's
  /// staleness advances; crossing the budget triggers the lazy exact
  /// rebuild via `value_of(i) -> current score of entity i`. Stats get the
  /// rebuild count.
  template <typename ValueF>
  void note_change(Index i, std::uint64_t v, bool may_lower, ValueF&& value_of,
                   PruneStats& stats) {
    const Index b = block_of(i);
    if (v > bounds_[b]) bounds_[b] = v;
    if (!may_lower) return;
    if (++stale_[b] < kStaleBudget) return;
    rebuild_block(b, value_of);
    ++stats.bound_rebuilds;
  }

  /// Exact bound for one block: max of value_of over its entities. Resets
  /// the block's staleness.
  template <typename ValueF>
  void rebuild_block(Index b, ValueF&& value_of) {
    std::uint64_t m = 0;
    const Index hi = block_hi(b);
    for (Index i = block_lo(b); i < hi; ++i) {
      const std::uint64_t v = value_of(i);
      if (v > m) m = v;
    }
    bounds_[b] = m;
    stale_[b] = 0;
  }

 private:
  Index width_;
  Index n_ = 0;
  std::vector<std::uint64_t> bounds_;  // bounds_[b] >= max score in block b
  std::vector<std::uint32_t> stale_;   // lowerings since last exact bound
};

/// Bounded pool of the strongest candidates of one dense entity space,
/// maintained across change sets. Values are kept *exact*: every score
/// change of a pool member arrives as a changed (idx, val) pair and is
/// folded in with offer(), so seeding reads current values — which is what
/// lets a removal re-rank trust the seeded threshold. Membership quality
/// may decay (an untouched entity can outgrow a demoted member), but that
/// only weakens the seed, never the answer: correctness lives entirely in
/// the block-bound skip test.
class CandidatePool {
 public:
  explicit CandidatePool(std::size_t capacity = kPoolCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  struct Entry {
    Index idx = 0;  ///< dense entity id (pool-local key)
    Ranked r;
  };

  /// Insert-or-replace by dense id. A member's value is always replaced
  /// (it may drop — the pool mirrors current values); a non-member is
  /// admitted when the pool has room or it beats the current worst, which
  /// is evicted on overflow.
  void offer(Index idx, const Ranked& r);

  /// offer() behind the full-scan pre-filter: skips candidates that cannot
  /// enter a full pool. Sound only for rebuild scans, where each entity is
  /// offered exactly once (a member's lowered value would be missed).
  void offer_guarded(Index idx, const Ranked& r) {
    if (entries_.size() < capacity_ ||
        ranks_before(r, entries_.back().r)) {
      offer(idx, r);
    }
  }

  /// Seeds a fresh top-k with every pooled entry (best first), counting
  /// pool_hits.
  void seed(TopK& top, PruneStats& stats) const;

  void clear() noexcept { entries_.clear(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Sorted best-first.
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }

 private:
  std::size_t capacity_;
  std::vector<Entry> entries_;  // sorted best-first, unique idx, ≤ capacity
};

/// The pruned block walk: considers every block of [0, num_blocks) in
/// order, skipping those whose upper bound provably cannot beat the running
/// kth-best threshold and scanning the rest. `bound_of(b)` returns the
/// block's score upper bound; `scan_block(b)` must offer every entity of
/// block b (with its *current* score) into `top`. Counters land in `stats`.
///
/// Byte-identity argument: a skipped block fails block_can_beat, i.e. the
/// top-k already holds k real entities that each rank before every possible
/// entity of that block under the full (score, timestamp, id) order — so no
/// member of the block is in the true top-k, and the surviving entries are
/// exactly the full scan's (TopK contents are offer-order-independent under
/// a strict total order).
template <typename BoundF, typename ScanF>
void pruned_blocks(TopK& top, Index num_blocks, BoundF&& bound_of,
                   ScanF&& scan_block, PruneStats& stats) {
  for (Index b = 0; b < num_blocks; ++b) {
    ++stats.blocks_total;
    if (!block_can_beat(top, bound_of(b))) {
      ++stats.blocks_skipped;
      continue;
    }
    ++stats.blocks_scanned;
    scan_block(b);
  }
}

}  // namespace queries
