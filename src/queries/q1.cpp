#include "queries/q1.hpp"

namespace queries {

using U64 = std::uint64_t;

grb::Vector<U64> q1_batch_scores(const GrbState& state) {
  const auto& root_post = state.root_post();
  const Index np = root_post.nrows();

  // Line 6: sum ← row-wise ⊕ of RootPost (# comments per post).
  grb::Vector<U64> sum(np);
  grb::reduce_rows(sum, grb::plus_monoid<U64>(), root_post);

  // Line 7: repliesScores ← 10 × sum (GrB_apply with a bound scalar).
  grb::Vector<U64> replies_scores(np);
  grb::apply(replies_scores, grb::TimesScalar<U64>{10}, sum);

  // Line 8: likesScore ← RootPost ⊕.⊗ likesCount (plus_second semiring:
  // RootPost is boolean, so the product sums the selected counts).
  grb::Vector<U64> likes_score(np);
  grb::mxv(likes_score, grb::plus_second_semiring<U64>(), root_post,
           state.likes_count());

  // Line 9: scores ← repliesScores ⊕ likesScore.
  grb::Vector<U64> scores(np);
  grb::eWiseAdd(scores, grb::Plus<U64>{}, replies_scores, likes_score);

  // Retire the per-call intermediates into the workspace so the Fig. 5 loop
  // (batch recompute once per change set) runs on recycled capacity.
  grb::recycle(std::move(sum));
  grb::recycle(std::move(replies_scores));
  grb::recycle(std::move(likes_score));
  return scores;
}

grb::Vector<U64> q1_incremental_update(const GrbState& state,
                                       const GrbDelta& delta,
                                       grb::Vector<U64>& scores) {
  const Index np = state.num_posts();
  scores.resize(np);

  // Line 9: sum ← row-wise ⊕ of ΔRootPost (# new comments per post).
  grb::Vector<U64> sum(np);
  grb::reduce_rows(sum, grb::plus_monoid<U64>(), delta.delta_root_post);

  // Line 10: repliesScores⁺ ← 10 × sum.
  grb::Vector<U64> replies_plus(np);
  grb::apply(replies_plus, grb::TimesScalar<U64>{10}, sum);

  // Line 11: likesScore⁺ ← RootPost′ ⊕.⊗ likesCount⁺ — new likes are summed
  // per post via the *full* RootPost matrix so likes on old comments are
  // credited to their posts too.
  grb::Vector<U64> likes_plus(np);
  grb::mxv(likes_plus, grb::plus_second_semiring<U64>(), state.root_post(),
           delta.likes_count_plus);

  // Line 12: scores⁺ ← repliesScores⁺ ⊕ likesScore⁺.
  grb::Vector<U64> score_plus(np);
  grb::eWiseAdd(score_plus, grb::Plus<U64>{}, replies_plus, likes_plus);

  // Line 13: scores′ ← scores ⊕ scores⁺.
  grb::eWiseAdd(scores, grb::Plus<U64>{}, scores, score_plus);

  // Removal extension (future-work item (1)): scores⁻ ← RootPost′ ⊕.⊗
  // likesCount⁻, subtracted from the running totals. A post with a removed
  // like always has a positive score entry (it counted that like), so the
  // union semantics of eWiseAdd(Minus) only ever hit the intersection.
  grb::Vector<U64> score_minus(np);
  if (delta.likes_count_minus.nvals() > 0) {
    grb::mxv(score_minus, grb::plus_second_semiring<U64>(), state.root_post(),
             delta.likes_count_minus);
    grb::eWiseAdd(scores, grb::Minus<U64>{}, scores, score_minus);
  }

  // Line 14: Δscores⟨scores⁺ ∪ scores⁻⟩ ← scores′ — the updated totals,
  // restricted to the posts whose score changed (structural mask over the
  // union of the positive and negative increments).
  grb::Vector<U64> changed_mask(np);
  grb::eWiseAdd(changed_mask, grb::LOr<U64>{}, score_plus, score_minus);
  grb::Vector<U64> delta_scores(np);
  grb::Descriptor structural;
  structural.structural_mask = true;
  grb::assign(delta_scores, &changed_mask, grb::NoAccum{}, scores,
              structural);

  // Retire the per-update intermediates: this function runs once per change
  // set on the paper's hot path, and recycling here is what keeps the
  // steady-state workspace miss count at zero.
  grb::recycle(std::move(sum));
  grb::recycle(std::move(replies_plus));
  grb::recycle(std::move(likes_plus));
  grb::recycle(std::move(score_plus));
  grb::recycle(std::move(score_minus));
  grb::recycle(std::move(changed_mask));
  return delta_scores;
}

}  // namespace queries
