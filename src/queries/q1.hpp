// Q1 "influential posts": score(p) = 10 · #comments(p) + #likes on those
// comments. Batch evaluation is the paper's Alg. 1; incremental maintenance
// is Alg. 2 (score increments from ΔRootPost and likesCount⁺, masked
// Δscores extraction).
#pragma once

#include <cstdint>

#include "queries/grb_state.hpp"

namespace queries {

/// Alg. 1: full evaluation. Returns a sparse score vector over posts (posts
/// with neither comments nor likes have no entry, i.e. score 0).
grb::Vector<std::uint64_t> q1_batch_scores(const GrbState& state);

/// Alg. 2: given the previous scores (size = old #posts; resized inside)
/// and the delta of one change set, updates `scores` in place to the new
/// totals and returns Δscores — the entries of scores′ whose value changed.
grb::Vector<std::uint64_t> q1_incremental_update(
    const GrbState& state, const GrbDelta& delta,
    grb::Vector<std::uint64_t>& scores);

}  // namespace queries
