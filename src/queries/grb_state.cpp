#include "queries/grb_state.hpp"

#include <map>
#include <span>

namespace queries {

namespace {
[[noreturn]] void fail(const char* what, sm::NodeId id) {
  throw grb::InvalidValue(std::string(what) + " (id " + std::to_string(id) +
                          ")");
}

Index require(const std::unordered_map<sm::NodeId, Index>& idx, sm::NodeId id,
              const char* what) {
  const auto it = idx.find(id);
  if (it == idx.end()) fail(what, id);
  return it->second;
}
}  // namespace

void GrbState::add_user(sm::NodeId id) {
  const Index dense = static_cast<Index>(user_ids_.size());
  if (!user_idx_.emplace(id, dense).second) fail("duplicate user", id);
  user_ids_.push_back(id);
}

void GrbState::add_post(sm::NodeId id, sm::Timestamp ts) {
  const Index dense = static_cast<Index>(post_ids_.size());
  if (!post_idx_.emplace(id, dense).second) fail("duplicate post", id);
  post_ids_.push_back(id);
  post_ts_.push_back(ts);
}

std::pair<Index, Index> GrbState::add_comment(sm::NodeId id, sm::Timestamp ts,
                                              bool parent_is_comment,
                                              sm::NodeId parent) {
  const Index dense = static_cast<Index>(comment_ids_.size());
  if (!comment_idx_.emplace(id, dense).second) fail("duplicate comment", id);
  Index root;
  if (parent_is_comment) {
    root = comment_root_[require(comment_idx_, parent, "unknown parent comment")];
  } else {
    root = require(post_idx_, parent, "unknown parent post");
  }
  comment_ids_.push_back(id);
  comment_ts_.push_back(ts);
  comment_root_.push_back(root);
  return {root, dense};
}

GrbState GrbState::from_graph(const sm::SocialGraph& g) {
  GrbState s;
  s.user_ids_.reserve(g.num_users());
  for (const auto& u : g.users()) s.add_user(u.id);
  s.post_ids_.reserve(g.num_posts());
  for (const auto& p : g.posts()) s.add_post(p.id, p.timestamp);

  std::vector<grb::Tuple<Bool>> rp_tuples;
  rp_tuples.reserve(g.num_comments());
  for (const auto& c : g.comments()) {
    // The dense order of SocialGraph comments matches insertion order, so
    // dense ids agree between the model and this state.
    const Index dense = static_cast<Index>(s.comment_ids_.size());
    s.comment_idx_.emplace(c.id, dense);
    s.comment_ids_.push_back(c.id);
    s.comment_ts_.push_back(c.timestamp);
    s.comment_root_.push_back(c.root_post);
    rp_tuples.push_back({c.root_post, dense, Bool{1}});
  }

  const Index np = static_cast<Index>(s.post_ids_.size());
  const Index nc = static_cast<Index>(s.comment_ids_.size());
  const Index nu = static_cast<Index>(s.user_ids_.size());

  s.root_post_ =
      grb::Matrix<Bool>::build(np, nc, std::move(rp_tuples), grb::LOr<Bool>{});

  std::vector<grb::Tuple<Bool>> like_tuples;
  for (Index c = 0; c < nc; ++c) {
    for (const sm::DenseId u : g.comment(c).likers) {
      like_tuples.push_back({c, u, Bool{1}});
    }
  }
  s.likes_ =
      grb::Matrix<Bool>::build(nc, nu, std::move(like_tuples), grb::LOr<Bool>{});

  std::vector<grb::Tuple<Bool>> friend_tuples;
  for (Index u = 0; u < nu; ++u) {
    for (const sm::DenseId v : g.user(u).friends) {
      friend_tuples.push_back({u, v, Bool{1}});
    }
  }
  s.friends_ = grb::Matrix<Bool>::build(nu, nu, std::move(friend_tuples),
                                        grb::LOr<Bool>{});

  s.likes_count_ = grb::Vector<std::uint64_t>(nc);
  grb::reduce_rows(s.likes_count_, grb::plus_monoid<std::uint64_t>(),
                   s.likes_);
  return s;
}

GrbDelta GrbState::apply_change_set(const sm::ChangeSet& cs) {
  // Debug epoch/reentrancy guard: a second apply overlapping this one —
  // reentrant or from another thread — aborts instead of corrupting the
  // matrices mid-merge.
  const grb::detail::ReentrancyScope apply_scope(apply_guard_,
                                                 "GrbState::apply_change_set");
  std::vector<grb::Tuple<Bool>> rp_tuples;
  GrbDelta delta;

  // Edge ops are netted per edge: the batch may add, remove and re-add the
  // same edge; only the difference between the pre-batch state and the final
  // desired state touches the matrices. Keys are (comment, user) for likes
  // and the canonical (min, max) pair for friendships; values are the
  // desired presence after the batch.
  std::map<std::pair<Index, Index>, bool> like_want;
  std::map<std::pair<Index, Index>, bool> friend_want;

  for (const sm::ChangeOp& op : cs.ops) {
    std::visit(
        [&](const auto& o) {
          using T = std::decay_t<decltype(o)>;
          if constexpr (std::is_same_v<T, sm::AddUser>) {
            add_user(o.id);
          } else if constexpr (std::is_same_v<T, sm::AddPost>) {
            delta.new_posts.push_back(static_cast<Index>(post_ids_.size()));
            add_post(o.id, o.timestamp);
          } else if constexpr (std::is_same_v<T, sm::AddComment>) {
            const auto [root, dense] =
                add_comment(o.id, o.timestamp, o.parent_is_comment, o.parent);
            rp_tuples.push_back({root, dense, Bool{1}});
            delta.new_comments.push_back(dense);
          } else if constexpr (std::is_same_v<T, sm::AddLikes>) {
            const Index u = require(user_idx_, o.user, "unknown user");
            const Index c = require(comment_idx_, o.comment, "unknown comment");
            like_want[{c, u}] = true;
          } else if constexpr (std::is_same_v<T, sm::RemoveLikes>) {
            const Index u = require(user_idx_, o.user, "unknown user");
            const Index c = require(comment_idx_, o.comment, "unknown comment");
            like_want[{c, u}] = false;
          } else if constexpr (std::is_same_v<T, sm::AddFriendship>) {
            const Index a = require(user_idx_, o.a, "unknown user");
            const Index b = require(user_idx_, o.b, "unknown user");
            friend_want[{std::min(a, b), std::max(a, b)}] = true;
          } else {
            static_assert(std::is_same_v<T, sm::RemoveFriendship>);
            const Index a = require(user_idx_, o.a, "unknown user");
            const Index b = require(user_idx_, o.b, "unknown user");
            friend_want[{std::min(a, b), std::max(a, b)}] = false;
          }
        },
        op);
  }

  const Index np = static_cast<Index>(post_ids_.size());
  const Index nc = static_cast<Index>(comment_ids_.size());
  const Index nu = static_cast<Index>(user_ids_.size());

  // Resolve the netted edge ops against the pre-batch matrices. The netting
  // maps iterate in (row, col) order, so presence is decided with a single
  // forward sweep per matrix — a row cursor that only moves right — rather
  // than a fresh binary search per op, and every batch below comes out in
  // CSR order, which the build/insert_tuples sorted fast paths detect.
  const auto sorted_sweep = [](const grb::Matrix<Bool>& m, auto& want_map,
                               auto&& on_add, auto&& on_remove) {
    Index cur_row = static_cast<Index>(-1);
    std::span<const Index> row_cols;
    std::size_t cursor = 0;
    for (const auto& [edge, want] : want_map) {
      const auto [r, c] = edge;
      if (r != cur_row) {
        cur_row = r;
        row_cols = r < m.nrows() ? m.row_cols(r) : std::span<const Index>{};
        cursor = 0;
      }
      while (cursor < row_cols.size() && row_cols[cursor] < c) ++cursor;
      const bool have = cursor < row_cols.size() && row_cols[cursor] == c;
      if (want && !have) {
        on_add(r, c);
      } else if (!want && have) {
        on_remove(r, c);
      }
    }
  };

  std::vector<grb::Tuple<Bool>> like_tuples;
  std::vector<std::pair<Index, Index>> like_removals;
  std::vector<Index> like_plus_comments;
  std::vector<Index> like_minus_comments;
  sorted_sweep(
      likes_, like_want,
      [&](Index c, Index u) {
        like_tuples.push_back({c, u, Bool{1}});
        like_plus_comments.push_back(c);
        delta.new_likes.emplace_back(c, u);
      },
      [&](Index c, Index u) {
        like_removals.emplace_back(c, u);
        like_minus_comments.push_back(c);
        delta.removed_likes.emplace_back(c, u);
      });
  std::vector<grb::Tuple<Bool>> friend_tuples;
  std::vector<std::pair<Index, Index>> friend_removals;
  sorted_sweep(
      friends_, friend_want,
      [&](Index a, Index b) {
        friend_tuples.push_back({a, b, Bool{1}});
        friend_tuples.push_back({b, a, Bool{1}});
        delta.new_friendships.emplace_back(a, b);
      },
      [&](Index a, Index b) {
        friend_removals.emplace_back(a, b);
        friend_removals.emplace_back(b, a);
        delta.removed_friendships.emplace_back(a, b);
      });

  // Grow to the post-update dimensions, then apply each batch as a single
  // sorted insert_tuples / remove_positions merge per matrix per change
  // set. The like batch and both removal batches arrive already in CSR
  // order from the sorted sweep, so their merges skip the re-sort; only the
  // friendship batch (forward + mirrored directions) pays one sort.
  root_post_.resize(np, nc);
  likes_.resize(nc, nu);
  friends_.resize(nu, nu);
  likes_count_.resize(nc);

  root_post_.insert_tuples(std::move(rp_tuples), grb::LOr<Bool>{});
  likes_.insert_tuples(std::move(like_tuples), grb::LOr<Bool>{});
  friends_.insert_tuples(std::move(friend_tuples), grb::LOr<Bool>{});
  likes_.remove_positions(std::move(like_removals));
  friends_.remove_positions(std::move(friend_removals));

  // Assemble the delta structures in the updated dimensions.
  {
    std::vector<grb::Tuple<Bool>> drp;
    for (const Index c : delta.new_comments) {
      drp.push_back({comment_root_[c], c, Bool{1}});
    }
    delta.delta_root_post =
        grb::Matrix<Bool>::build(np, nc, std::move(drp), grb::LOr<Bool>{});
  }
  const auto count_vector = [nc](const std::vector<Index>& comments) {
    std::vector<Index> idx(comments.begin(), comments.end());
    std::vector<std::uint64_t> ones(comments.size(), 1);
    return grb::Vector<std::uint64_t>::build(
        nc, std::move(idx), std::move(ones), grb::Plus<std::uint64_t>{});
  };
  delta.likes_count_plus = count_vector(like_plus_comments);
  delta.likes_count_minus = count_vector(like_minus_comments);
  const auto incidence =
      [nu](const std::vector<std::pair<Index, Index>>& pairs) {
        std::vector<grb::Tuple<Bool>> inc;
        inc.reserve(2 * pairs.size());
        for (Index k = 0; k < static_cast<Index>(pairs.size()); ++k) {
          inc.push_back({pairs[k].first, k, Bool{1}});
          inc.push_back({pairs[k].second, k, Bool{1}});
        }
        return grb::Matrix<Bool>::build(nu, static_cast<Index>(pairs.size()),
                                        std::move(inc), grb::LOr<Bool>{});
      };
  delta.new_friends = incidence(delta.new_friendships);
  delta.removed_friends = incidence(delta.removed_friendships);

  // Maintain likesCount = likesCount ⊕ likesCount⁺ ⊖ likesCount⁻. The minus
  // entries always intersect existing entries (the edge existed), so the
  // union semantics of eWiseAdd(Minus) are exact here.
  grb::eWiseAdd(likes_count_, grb::Plus<std::uint64_t>{}, likes_count_,
                delta.likes_count_plus);
  if (delta.likes_count_minus.nvals() > 0) {
    grb::eWiseAdd(likes_count_, grb::Minus<std::uint64_t>{}, likes_count_,
                  delta.likes_count_minus);
    // Drop explicit zeros so likesCount stays the exact pattern of "has
    // at least one like" (Alg. 1 relies on its sparsity, not values of 0).
    grb::select(likes_count_, grb::NonZero<std::uint64_t>{}, likes_count_);
  }
  return delta;
}

}  // namespace queries
