// The paper's GraphBLAS tools as benchmark engines:
//   GrbBatchEngine        — "GraphBLAS Batch": full reevaluation each step.
//   GrbIncrementalEngine  — "GraphBLAS Incremental": Alg. 2 / Fig. 4b lower
//                           half; batch once, then delta maintenance.
//   GrbIncrementalCcEngine — future-work item (2): Q2 keeps a per-comment
//                           incremental connected-components structure, so
//                           reevaluation avoids re-running FastSV entirely.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "harness/engine.hpp"
#include "lagraph/incremental_cc.hpp"
#include "queries/grb_state.hpp"
#include "queries/top_k.hpp"

namespace queries {

class GrbBatchEngine final : public harness::Engine {
 public:
  explicit GrbBatchEngine(harness::Query q) : query_(q) {}

  [[nodiscard]] std::string name() const override { return "GraphBLAS Batch"; }
  void load(const sm::SocialGraph& g) override;
  std::string initial() override;
  std::string update(const sm::ChangeSet& cs) override;

  /// Read access for tests.
  [[nodiscard]] const GrbState& state() const { return state_; }

 private:
  std::string evaluate();

  harness::Query query_;
  GrbState state_;
};

class GrbIncrementalEngine final : public harness::Engine {
 public:
  explicit GrbIncrementalEngine(harness::Query q) : query_(q) {}
  /// The maintained score vector's storage came from the workspace arena
  /// (kernel outputs); hand it back when the engine retires so repeated
  /// runs (benchmark repeats, the CI smoke warm-up) stay allocation-free.
  ~GrbIncrementalEngine() override { grb::recycle(std::move(scores_)); }

  [[nodiscard]] std::string name() const override {
    return "GraphBLAS Incremental";
  }
  void load(const sm::SocialGraph& g) override;
  std::string initial() override;
  std::string update(const sm::ChangeSet& cs) override;

  [[nodiscard]] const GrbState& state() const { return state_; }
  [[nodiscard]] const grb::Vector<std::uint64_t>& scores() const {
    return scores_;
  }
  /// Cumulative pruning activity of this engine's removal re-ranks.
  [[nodiscard]] const PruneStats& prune_stats() const { return prune_stats_; }

 private:
  void offer(Index entity, std::uint64_t score);
  [[nodiscard]] Ranked ranked_of(Index entity, std::uint64_t score) const;
  /// Removal re-rank: seed from the pool, then block-scan only where the
  /// bound can still beat the running threshold.
  void pruned_rerank(PruneStats& stats);

  harness::Query query_;
  GrbState state_;
  grb::Vector<std::uint64_t> scores_{0};
  TopK top_{3};
  /// Writer-owned pruning state over the maintained entity space (posts for
  /// Q1, comments for Q2), kept current from the per-epoch changed pairs.
  BlockBounds bounds_;
  CandidatePool pool_;
  PruneStats prune_stats_;
};

class GrbIncrementalCcEngine final : public harness::Engine {
 public:
  explicit GrbIncrementalCcEngine(harness::Query q) : query_(q) {}
  ~GrbIncrementalCcEngine() override { grb::recycle(std::move(q1_scores_)); }

  [[nodiscard]] std::string name() const override {
    return "GraphBLAS Incremental+CC";
  }
  void load(const sm::SocialGraph& g) override;
  std::string initial() override;
  std::string update(const sm::ChangeSet& cs) override;

 private:
  /// Per-comment incremental CC over its likers' friendship subgraph.
  struct CommentCc {
    lagraph::IncrementalCC cc;
    /// user dense id -> local node id inside `cc`.
    std::unordered_map<Index, Index> local;
  };

  void add_like(Index comment, Index user, bool update_index = true);
  /// Rebuilds one comment's union-find from the current matrices (used when
  /// removals invalidate the insert-only structure for that comment).
  void rebuild_comment(Index comment);
  void offer(Index comment);

  harness::Query query_;
  GrbState state_;
  grb::Vector<std::uint64_t> q1_scores_{0};
  std::vector<CommentCc> per_comment_;
  /// user dense id -> comments the user likes (for friendship updates).
  std::vector<std::vector<Index>> liked_by_user_;
  TopK top_{3};
};

/// Factory used by the harness registry.
harness::EnginePtr make_grb_engine(const std::string& variant,
                                   harness::Query q);

}  // namespace queries
