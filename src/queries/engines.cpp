#include "queries/engines.hpp"

#include <algorithm>

#include "queries/q1.hpp"
#include "queries/q2.hpp"

namespace queries {

namespace {

using U64 = std::uint64_t;

/// Full top-k scan over every post (Q1) or comment (Q2), score 0 included —
/// zero-score entities still rank by timestamp.
TopK scan_top_k(const GrbState& s, harness::Query q,
                const grb::Vector<U64>& scores) {
  TopK top(3);
  const bool q1 = q == harness::Query::kQ1;
  const Index n = q1 ? s.num_posts() : s.num_comments();
  for (Index i = 0; i < n; ++i) {
    top.offer_guarded(
        Ranked{q1 ? s.post_id(i) : s.comment_id(i), scores.at_or(i, 0),
               q1 ? s.post_timestamp(i) : s.comment_timestamp(i)});
  }
  return top;
}

}  // namespace

// --- GrbBatchEngine ----------------------------------------------------------

void GrbBatchEngine::load(const sm::SocialGraph& g) {
  state_ = GrbState::from_graph(g);
}

std::string GrbBatchEngine::evaluate() {
  const auto scores = query_ == harness::Query::kQ1 ? q1_batch_scores(state_)
                                                    : q2_batch_scores(state_);
  return scan_top_k(state_, query_, scores).answer();
}

std::string GrbBatchEngine::initial() { return evaluate(); }

std::string GrbBatchEngine::update(const sm::ChangeSet& cs) {
  state_.apply_change_set(cs);  // batch: delta discarded (and recycled by
                                // its destructor), full recompute
  return evaluate();
}

// --- GrbIncrementalEngine ----------------------------------------------------

void GrbIncrementalEngine::load(const sm::SocialGraph& g) {
  state_ = GrbState::from_graph(g);
}

Ranked GrbIncrementalEngine::ranked_of(Index entity, U64 score) const {
  const bool q1 = query_ == harness::Query::kQ1;
  return Ranked{
      q1 ? state_.post_id(entity) : state_.comment_id(entity), score,
      q1 ? state_.post_timestamp(entity) : state_.comment_timestamp(entity)};
}

void GrbIncrementalEngine::offer(Index entity, U64 score) {
  top_.offer(ranked_of(entity, score));
}

std::string GrbIncrementalEngine::initial() {
  // First step: full evaluation (the paper's engine switches to incremental
  // maintenance from the second step on). The same scan seeds the pruning
  // state: exact block bounds from the fresh score vector and the candidate
  // pool from the ranked walk.
  scores_ = query_ == harness::Query::kQ1 ? q1_batch_scores(state_)
                                          : q2_batch_scores(state_);
  const bool q1 = query_ == harness::Query::kQ1;
  const Index n = q1 ? state_.num_posts() : state_.num_comments();
  bounds_.reset(n);
  pool_.clear();
  top_ = TopK(3);
  PruneStats stats;
  stats.pool_rebuilds = 1;
  const auto idx = scores_.indices();
  const auto val = scores_.values();
  std::size_t pos = 0;
  for (Index i = 0; i < n; ++i) {
    U64 v = 0;
    if (pos < idx.size() && idx[pos] == i) {
      v = val[pos];
      ++pos;
    }
    bounds_.raise(i, v);
    const Ranked r = ranked_of(i, v);
    top_.offer_guarded(r);
    pool_.offer_guarded(i, r);
  }
  prune_stats_ += stats;
  add_prune_counters(stats);
  return top_.answer();
}

void GrbIncrementalEngine::pruned_rerank(PruneStats& stats) {
  TopK top(top_.k());
  pool_.seed(top, stats);
  const auto idx = scores_.indices();
  const auto val = scores_.values();
  std::size_t pos = 0;  // linear cursor: blocks are visited in order
  pruned_blocks(
      top, bounds_.num_blocks(), [&](Index b) { return bounds_.bound(b); },
      [&](Index b) {
        const Index lo = bounds_.block_lo(b);
        const Index hi = bounds_.block_hi(b);
        pos = static_cast<std::size_t>(
            std::lower_bound(idx.begin() + pos, idx.end(), lo) - idx.begin());
        for (Index i = lo; i < hi; ++i) {
          U64 v = 0;
          if (pos < idx.size() && idx[pos] == i) {
            v = val[pos];
            ++pos;
          }
          const Ranked r = ranked_of(i, v);
          top.offer_guarded(r);
          pool_.offer_guarded(i, r);  // harvest survivors back into the pool
        }
      },
      stats);
  top_ = std::move(top);
}

std::string GrbIncrementalEngine::update(const sm::ChangeSet& cs) {
  GrbDelta delta = state_.apply_change_set(cs);
  grb::Vector<U64> changed =
      query_ == harness::Query::kQ1
          ? q1_incremental_update(state_, delta, scores_)
          : q2_incremental_update(state_, delta, scores_);
  const bool removals = delta.has_removals();
  const bool q1 = query_ == harness::Query::kQ1;
  const Index n = q1 ? state_.num_posts() : state_.num_comments();

  // Fold this epoch's changed pairs into the pruning state on *every*
  // epoch: every score change flows through `changed`, which is what keeps
  // the pool values exact and the bounds valid upper bounds across change
  // sets. Newborn entities land in zero-bound blocks; their first nonzero
  // score arrives as a changed pair.
  bounds_.resize(n);
  PruneStats stats;
  const auto value_of = [&](Index i) { return scores_.at_or(i, 0); };
  const auto ci = changed.indices();
  const auto cv = changed.values();
  for (std::size_t k = 0; k < ci.size(); ++k) {
    bounds_.note_change(ci[k], cv[k], removals, value_of, stats);
    pool_.offer(ci[k], ranked_of(ci[k], cv[k]));
  }
  const auto& newborn = q1 ? delta.new_posts : delta.new_comments;
  for (const Index i : newborn) {
    pool_.offer(i, ranked_of(i, scores_.at_or(i, 0)));
  }

  if (removals) {
    // Scores are no longer monotone, so merging changed entities into the
    // previous top-3 is unsound (a demoted leader must fall out in favour
    // of an entity we never offered). Instead of the old full O(n) re-rank:
    // seed the threshold from the pool, then scan only the blocks whose
    // upper bound can still beat it.
    pruned_rerank(stats);
  } else {
    // Insert-only fast path: merge the previous top-3 with (a) every entity
    // whose score changed and (b) new zero-score entities, which can rank
    // by recency.
    for (std::size_t k = 0; k < ci.size(); ++k) {
      offer(ci[k], cv[k]);
    }
    for (const Index i : newborn) {
      offer(i, scores_.at_or(i, 0));
    }
  }
  prune_stats_ += stats;
  add_prune_counters(stats);
  grb::recycle(std::move(changed));
  return top_.answer();
}

// --- GrbIncrementalCcEngine --------------------------------------------------

void GrbIncrementalCcEngine::load(const sm::SocialGraph& g) {
  state_ = GrbState::from_graph(g);
  per_comment_.clear();
  liked_by_user_.assign(state_.num_users(), {});
  per_comment_.resize(state_.num_comments());
  for (Index c = 0; c < state_.num_comments(); ++c) {
    for (const Index u : state_.likes().row_cols(c)) {
      add_like(c, u);
    }
  }
}

void GrbIncrementalCcEngine::add_like(Index comment, Index user,
                                      bool update_index) {
  auto& cc = per_comment_[comment];
  const auto [it, inserted] = cc.local.emplace(user, 0);
  if (!inserted) return;  // duplicate like
  it->second = cc.cc.add_node();
  if (update_index) {
    if (static_cast<Index>(liked_by_user_.size()) <= user) {
      liked_by_user_.resize(user + 1);
    }
    liked_by_user_[user].push_back(comment);
  }
  // Union with every friend of `user` already in the comment's fan set.
  for (const Index f : state_.friends().row_cols(user)) {
    const auto fit = cc.local.find(f);
    if (fit != cc.local.end()) {
      cc.cc.add_edge(it->second, fit->second);
    }
  }
}

void GrbIncrementalCcEngine::rebuild_comment(Index comment) {
  per_comment_[comment] = CommentCc{};
  for (const Index u : state_.likes().row_cols(comment)) {
    add_like(comment, u, /*update_index=*/false);
  }
}

void GrbIncrementalCcEngine::offer(Index comment) {
  top_.offer(Ranked{state_.comment_id(comment),
                    per_comment_[comment].cc.sum_squared_sizes(),
                    state_.comment_timestamp(comment)});
}

std::string GrbIncrementalCcEngine::initial() {
  if (query_ == harness::Query::kQ1) {
    q1_scores_ = q1_batch_scores(state_);
    top_ = scan_top_k(state_, query_, q1_scores_);
    return top_.answer();
  }
  top_ = TopK(3);
  for (Index c = 0; c < state_.num_comments(); ++c) {
    offer(c);
  }
  return top_.answer();
}

std::string GrbIncrementalCcEngine::update(const sm::ChangeSet& cs) {
  GrbDelta delta = state_.apply_change_set(cs);
  if (query_ == harness::Query::kQ1) {
    // Q1 has no CC component; behave exactly like the incremental engine.
    auto changed = q1_incremental_update(state_, delta, q1_scores_);
    if (delta.has_removals()) {
      top_ = scan_top_k(state_, query_, q1_scores_);
      grb::recycle(std::move(changed));
      return top_.answer();
    }
    const auto ci = changed.indices();
    const auto cv = changed.values();
    for (std::size_t k = 0; k < ci.size(); ++k) {
      top_.offer(Ranked{state_.post_id(ci[k]), cv[k],
                        state_.post_timestamp(ci[k])});
    }
    for (const Index p : delta.new_posts) {
      top_.offer(Ranked{state_.post_id(p), q1_scores_.at_or(p, 0),
                        state_.post_timestamp(p)});
    }
    grb::recycle(std::move(changed));
    return top_.answer();
  }

  per_comment_.resize(state_.num_comments());

  if (delta.has_removals()) {
    // Union-find supports no deletions: rebuild the structures of exactly
    // the affected comments from the updated matrices, fix the per-user
    // like index, and re-rank from the maintained per-comment sums.
    for (const auto& [c, u] : delta.removed_likes) {
      auto& liked = liked_by_user_[u];
      const auto it = std::find(liked.begin(), liked.end(), c);
      if (it != liked.end()) liked.erase(it);
    }
    if (liked_by_user_.size() < state_.num_users()) {
      liked_by_user_.resize(state_.num_users());
    }
    for (const auto& [c, u] : delta.new_likes) {
      liked_by_user_[u].push_back(c);
    }
    for (const Index c : q2_affected_comments(state_, delta)) {
      rebuild_comment(c);
    }
    top_ = TopK(3);
    for (Index c = 0; c < state_.num_comments(); ++c) {
      top_.offer_guarded(Ranked{state_.comment_id(c),
                                per_comment_[c].cc.sum_squared_sizes(),
                                state_.comment_timestamp(c)});
    }
    return top_.answer();
  }
  if (liked_by_user_.size() < state_.num_users()) {
    liked_by_user_.resize(state_.num_users());
  }
  std::vector<Index> touched = delta.new_comments;
  // New likes first: friends_ already reflects the whole change set, so
  // unions with same-batch friendships happen here; repeating them below is
  // a harmless no-op (union-find is idempotent).
  for (const auto& [c, u] : delta.new_likes) {
    add_like(c, u);
    touched.push_back(c);
  }
  // New friendships: union inside every comment both endpoints like.
  for (const auto& [a, b] : delta.new_friendships) {
    const auto& smaller = liked_by_user_[a].size() <= liked_by_user_[b].size()
                              ? liked_by_user_[a]
                              : liked_by_user_[b];
    const Index other = liked_by_user_[a].size() <= liked_by_user_[b].size()
                            ? b
                            : a;
    for (const Index c : smaller) {
      auto& cc = per_comment_[c];
      const auto ia = cc.local.find(a);
      const auto ib = cc.local.find(b);
      if (ia != cc.local.end() && ib != cc.local.end()) {
        if (cc.cc.add_edge(ia->second, ib->second)) {
          touched.push_back(c);
        }
      }
    }
    (void)other;
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const Index c : touched) {
    offer(c);
  }
  return top_.answer();
}

// --- factory -----------------------------------------------------------------

harness::EnginePtr make_grb_engine(const std::string& variant,
                                   harness::Query q) {
  if (variant == "batch") return std::make_unique<GrbBatchEngine>(q);
  if (variant == "incremental") {
    return std::make_unique<GrbIncrementalEngine>(q);
  }
  if (variant == "incremental-cc") {
    return std::make_unique<GrbIncrementalCcEngine>(q);
  }
  throw grb::InvalidValue("unknown GraphBLAS engine variant: " + variant);
}

}  // namespace queries
