#include "queries/q2.hpp"

#include <algorithm>

#include "grb/detail/parallel.hpp"
#include "grb/detail/sparse_builder.hpp"
#include "lagraph/cc_fastsv.hpp"

namespace queries {

using U64 = std::uint64_t;

U64 q2_comment_score(const GrbState& state, Index comment) {
  // Step 1 (per comment): the users who like this comment — one row of the
  // Likes matrix, already sorted.
  const auto likers = state.likes().row_cols(comment);
  if (likers.empty()) return 0;
  // Step 2: induced friendship subgraph.
  auto sub = grb::extract_submatrix(state.friends(), likers, likers);
  // Step 3: connected components via FastSV (LAGraph).
  const auto labels = lagraph::cc_fastsv(sub);
  // This runs once per (affected) comment, from whichever OpenMP thread the
  // comment landed on; recycling into the thread's workspace shard lets the
  // next comment on that thread reuse the submatrix storage.
  grb::recycle(std::move(sub));
  // Step 4: Σ (component size)².
  return lagraph::sum_squared_component_sizes(labels);
}

grb::Vector<U64> q2_batch_scores(const GrbState& state) {
  const Index nc = state.num_comments();
  auto scores_lease = grb::detail::workspace().lease<U64>(nc);
  auto& scores = *scores_lease;
  scores.assign(nc, 0);
  // OpenMP parallelism at comment granularity (paper, Sec. IV). The helper
  // respects grb::set_threads, which the harness uses to pin 1 vs 8 threads.
  grb::detail::parallel_for(
      nc, [&](Index c) { scores[c] = q2_comment_score(state, c); },
      state.likes().nvals() + nc);

  return grb::detail::compact_dense<U64>(
      nc, [&](Index c) { return scores[c] != 0; },
      [&](Index c) { return scores[c]; });
}

std::vector<Index> q2_affected_comments(const GrbState& state,
                                        const GrbDelta& delta) {
  std::vector<Index> affected;

  // Steps 1-4 of Fig. 4b for a friendship incidence matrix: AC = Likes′
  // ⊕.⊗ F counts how many endpoints of each friendship like each comment;
  // cells equal to 2 mean both do, so that friendship's change (merge on
  // insert, potential split on removal) is inside the comment's subgraph.
  const auto incidence_hits = [&](const grb::Matrix<grb::Bool>& inc) {
    if (inc.ncols() == 0) return;
    grb::Matrix<U64> ac(state.num_comments(), inc.ncols());
    grb::mxm(ac, grb::plus_times_semiring<U64>(), state.likes(), inc);
    grb::select(ac, grb::ValueEq<U64>{2}, ac);
    grb::Vector<U64> ac_vec(state.num_comments());
    grb::reduce_rows(ac_vec, grb::lor_monoid<U64>(), ac);
    affected.insert(affected.end(), ac_vec.indices().begin(),
                    ac_vec.indices().end());
    grb::recycle(std::move(ac));
    grb::recycle(std::move(ac_vec));
  };
  incidence_hits(delta.new_friends);
  // Removal extension: a removed friendship affects comments both ex-friends
  // still like (their component may split).
  incidence_hits(delta.removed_friends);

  // Step 5: ∪ new comments ∪ comments with new likes ∪ comments that lost
  // likes (removal extension).
  affected.insert(affected.end(), delta.new_comments.begin(),
                  delta.new_comments.end());
  const auto liked = delta.likes_count_plus.indices();
  affected.insert(affected.end(), liked.begin(), liked.end());
  const auto unliked = delta.likes_count_minus.indices();
  affected.insert(affected.end(), unliked.begin(), unliked.end());

  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  return affected;
}

std::vector<Index> q2_affected_comments_coarse(const GrbState& state,
                                               const GrbDelta& delta) {
  std::vector<Index> affected = delta.new_comments;
  const auto liked = delta.likes_count_plus.indices();
  affected.insert(affected.end(), liked.begin(), liked.end());
  const auto unliked = delta.likes_count_minus.indices();
  affected.insert(affected.end(), unliked.begin(), unliked.end());

  // Coarse rule: any comment liked by *either* endpoint — a vxm of the
  // endpoint indicator against Likes′ᵀ; expressed here as a column gather
  // over the transposed Likes matrix once per change set.
  auto likes_t = grb::transposed(state.likes());
  const auto mark_user = [&](Index u) {
    const auto cols = likes_t.row_cols(u);
    affected.insert(affected.end(), cols.begin(), cols.end());
  };
  for (const auto& [a, b] : delta.new_friendships) {
    mark_user(a);
    mark_user(b);
  }
  for (const auto& [a, b] : delta.removed_friendships) {
    mark_user(a);
    mark_user(b);
  }
  grb::recycle(std::move(likes_t));
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  return affected;
}

grb::Vector<U64> q2_incremental_update(const GrbState& state,
                                       const GrbDelta& delta,
                                       grb::Vector<U64>& scores) {
  const Index nc = state.num_comments();
  scores.resize(nc);

  const std::vector<Index> affected = q2_affected_comments(state, delta);

  // Steps 6-9: reevaluate only the affected comments with the batch kernel
  // (OpenMP at comment granularity, as in the batch variant).
  std::vector<U64> rescored(affected.size(), 0);
  grb::detail::parallel_for(
      static_cast<Index>(affected.size()),
      [&](Index k) { rescored[k] = q2_comment_score(state, affected[k]); },
      state.likes().nvals());

  // Δscores: affected entries whose value actually changed.
  std::vector<Index> changed_idx;
  std::vector<U64> changed_val;
  for (std::size_t k = 0; k < affected.size(); ++k) {
    const Index c = affected[k];
    if (scores.at_or(c, 0) != rescored[k]) {
      changed_idx.push_back(c);
      changed_val.push_back(rescored[k]);
    }
  }
  auto delta_scores = grb::Vector<U64>::adopt_sorted(
      nc, std::move(changed_idx), std::move(changed_val));

  // scores′: merge the new values in (new value wins).
  grb::eWiseAdd(scores, grb::Second<U64>{}, scores, delta_scores);
  return delta_scores;
}

}  // namespace queries
