// Triangle counting via masked sparse matrix multiply (the "Sandia"
// formulation LAGraph ships): count wedges closed by an edge using
// C<L> = L ⊕.⊗ Lᵀ on the strictly-lower-triangular part L, then reduce.
// Demonstrates masks + semirings beyond the case-study queries.
#pragma once

#include <cstdint>

#include "grb/grb.hpp"

namespace lagraph {

/// Number of triangles in an undirected graph given by a symmetric boolean
/// adjacency matrix (no self loops expected; they are ignored).
std::uint64_t triangle_count(const grb::Matrix<grb::Bool>& adj);

}  // namespace lagraph
