// Breadth-first-search connected components: the simple O(V + E) labelling
// used as (a) a correctness oracle for FastSV in the test suite and (b) the
// non-GraphBLAS baseline in the CC ablation bench.
#pragma once

#include <vector>

#include "grb/grb.hpp"

namespace lagraph {

/// Labels each vertex with the smallest vertex id reachable from it.
/// Same output contract as cc_fastsv.
std::vector<grb::Index> cc_bfs(const grb::Matrix<grb::Bool>& adj);

}  // namespace lagraph
