#include "lagraph/cc_fastsv.hpp"

#include <unordered_map>

#include "grb/detail/parallel.hpp"
#include "grb/detail/workspace.hpp"

namespace lagraph {

using grb::Index;

std::vector<Index> cc_fastsv(const grb::Matrix<grb::Bool>& adj) {
  if (adj.nrows() != adj.ncols()) {
    throw grb::DimensionMismatch("cc_fastsv: adjacency must be square");
  }
  const Index n = adj.nrows();
  std::vector<Index> f(n);  // parent (the result, so not arena-backed)
  // Grandparent scratch leases from the workspace: Q2 runs FastSV once per
  // affected comment, and the warm per-thread shard serves every call after
  // the first for free.
  auto gf_lease = grb::detail::workspace().lease<Index>(n);
  auto& gf = *gf_lease;
  gf.resize(n);
  for (Index i = 0; i < n; ++i) {
    f[i] = i;
    gf[i] = i;
  }
  if (n == 0 || adj.nvals() == 0) return f;

  const auto sr = grb::min_second_semiring<Index>();
  grb::Vector<Index> mngf(n);
  bool changed = true;
  while (changed) {
    changed = false;
    // mngf(i) = min_{j : A(i,j) present} gf(j)   (LAGraph: GrB_mxv)
    auto gf_vec = grb::Vector<Index>::dense(n, [&](Index i) { return gf[i]; });
    grb::mxv(mngf, sr, adj, gf_vec);
    // The iterate's storage goes back to the arena; the next iteration's
    // dense() rebuild (and the next FastSV call) leases it straight back.
    grb::recycle(std::move(gf_vec));

    const auto mi = mngf.indices();
    const auto mv = mngf.values();
    // Stochastic hooking: f[f[i]] = min(f[f[i]], mngf[i]) — hang i's tree
    // root under the smallest grandparent seen in i's neighborhood.
    for (std::size_t k = 0; k < mi.size(); ++k) {
      const Index i = mi[k];
      const Index root = f[i];
      if (mv[k] < f[root]) {
        f[root] = mv[k];
        changed = true;
      }
    }
    // Aggressive hooking: f[i] = min(f[i], mngf[i]).
    for (std::size_t k = 0; k < mi.size(); ++k) {
      const Index i = mi[k];
      if (mv[k] < f[i]) {
        f[i] = mv[k];
        changed = true;
      }
    }
    // Shortcutting: f[i] = min(f[i], gf[i]) — path halving. Each slot only
    // touches its own f[i]/gf[i], so the sweep is parallel; the change flag
    // folds over the fixed chunk grid.
    changed |= grb::detail::parallel_fold<int>(
        n, 0,
        [&](Index lo, Index hi) {
          int ch = 0;
          for (Index i = lo; i < hi; ++i) {
            if (gf[i] < f[i]) {
              f[i] = gf[i];
              ch = 1;
            }
          }
          return ch;
        },
        [](int x, int y) { return x | y; }) != 0;
    // Recompute grandparents; converged when gf is a fixed point. Reads f
    // (stable here), writes only gf[i] — also a parallel sweep.
    changed |= grb::detail::parallel_fold<int>(
        n, 0,
        [&](Index lo, Index hi) {
          int ch = 0;
          for (Index i = lo; i < hi; ++i) {
            const Index next = f[f[i]];
            if (next != gf[i]) {
              gf[i] = next;
              ch = 1;
            }
          }
          return ch;
        },
        [](int x, int y) { return x | y; }) != 0;
  }
  grb::recycle(std::move(mngf));
  return f;
}

std::vector<Index> component_sizes(const std::vector<Index>& labels) {
  std::unordered_map<Index, Index> counts;
  counts.reserve(labels.size());
  for (const Index l : labels) {
    ++counts[l];
  }
  std::vector<Index> sizes;
  sizes.reserve(counts.size());
  for (const auto& [label, count] : counts) {
    sizes.push_back(count);
  }
  return sizes;
}

std::uint64_t sum_squared_component_sizes(const std::vector<Index>& labels) {
  std::uint64_t total = 0;
  for (const Index s : component_sizes(labels)) {
    total += static_cast<std::uint64_t>(s) * static_cast<std::uint64_t>(s);
  }
  return total;
}

}  // namespace lagraph
