#include "lagraph/pagerank.hpp"

#include <cmath>

#include "grb/detail/parallel.hpp"
#include "grb/detail/workspace.hpp"
#include "grb/transpose.hpp"

namespace lagraph {

using grb::Bool;
using grb::Index;

PageRankResult pagerank(const grb::Matrix<Bool>& adj,
                        const PageRankOptions& options) {
  if (adj.nrows() != adj.ncols()) {
    throw grb::DimensionMismatch("pagerank: adjacency must be square");
  }
  const Index n = adj.nrows();
  PageRankResult result;
  if (n == 0) return result;

  // Out-degrees and the pull-direction matrix (Aᵀ: incoming edges per row).
  // Dense iteration state leases from the workspace so repeated pagerank
  // calls (and the transposed adjacency, recycled below) reuse capacity.
  auto inv_outdeg_lease = grb::detail::workspace().lease<double>(n);
  auto& inv_outdeg = *inv_outdeg_lease;
  inv_outdeg.assign(n, 0.0);
  for (Index i = 0; i < n; ++i) {
    const auto deg = adj.row_degree(i);
    if (deg > 0) inv_outdeg[i] = 1.0 / static_cast<double>(deg);
  }
  auto at = grb::transposed(adj);

  const double d = options.damping;
  const double base = (1.0 - d) / static_cast<double>(n);
  auto r_lease = grb::detail::workspace().lease<double>(n);
  auto next_lease = grb::detail::workspace().lease<double>(n);
  auto& r = *r_lease;
  auto& next = *next_lease;
  r.assign(n, 1.0 / static_cast<double>(n));
  next.resize(n);

  for (result.iterations = 1; result.iterations <= options.max_iterations;
       ++result.iterations) {
    // Dangling mass: vertices without out-edges spread uniformly. Folded
    // over the fixed chunk grid so the double summation order — and hence
    // the iterate sequence — is identical at every thread count.
    const double dangling = grb::detail::parallel_fold<double>(
        n, 0.0,
        [&](Index lo, Index hi) {
          double s = 0.0;
          for (Index i = lo; i < hi; ++i) {
            if (inv_outdeg[i] == 0.0) s += r[i];
          }
          return s;
        },
        [](double x, double y) { return x + y; });
    const double redistributed =
        d * dangling / static_cast<double>(n) + base;
    // next = base + d · Σ_{j -> i} r(j)/outdeg(j); the sum is a row scan of
    // Aᵀ — exactly the plus_times mxv pull kernel, row-parallel (each row's
    // accumulation order is its column order, independent of the team).
    grb::detail::parallel_for(
        n,
        [&](Index i) {
          double acc = 0.0;
          for (const Index j : at.row_cols(i)) {
            acc += r[j] * inv_outdeg[j];
          }
          next[i] = redistributed + d * acc;
        },
        at.nvals());
    const double delta = grb::detail::parallel_fold<double>(
        n, 0.0,
        [&](Index lo, Index hi) {
          double s = 0.0;
          for (Index i = lo; i < hi; ++i) s += std::abs(next[i] - r[i]);
          return s;
        },
        [](double x, double y) { return x + y; });
    r.swap(next);
    if (delta < options.tolerance) break;
  }
  grb::recycle(std::move(at));
  // Moves the converged iterate out of its lease (the emptied buffer is
  // dropped, not donated); `next` returns to the pool via its lease.
  result.rank = std::move(r);
  return result;
}

}  // namespace lagraph
