// Incremental connected components for insert-only streams: a union-find
// (disjoint set union) structure with union-by-size and path compression
// that additionally maintains Σ size² — exactly the quantity Q2 scores a
// comment with. This implements the paper's future-work item (2) ("running
// an incremental connected components algorithm", citing Ediger et al.,
// "Tracking structure of streaming social networks", IPDPS 2011; for
// insert-only updates the union-find structure suffices and is optimal).
#pragma once

#include <cstdint>
#include <vector>

#include "grb/types.hpp"

namespace lagraph {

class IncrementalCC {
 public:
  IncrementalCC() = default;

  /// Pre-sizes for n singleton vertices.
  explicit IncrementalCC(grb::Index n) { reset(n); }

  /// Re-initialises to n singleton vertices.
  void reset(grb::Index n);

  /// Appends one new singleton vertex; returns its id.
  grb::Index add_node();

  /// Connects a and b. Returns true if two components merged (false if they
  /// were already connected). Amortised near-O(1).
  bool add_edge(grb::Index a, grb::Index b);

  /// Representative of a's component (with path compression).
  [[nodiscard]] grb::Index find(grb::Index a);

  [[nodiscard]] bool connected(grb::Index a, grb::Index b);

  [[nodiscard]] grb::Index size_of(grb::Index a);

  [[nodiscard]] grb::Index num_nodes() const noexcept {
    return static_cast<grb::Index>(parent_.size());
  }
  [[nodiscard]] grb::Index num_components() const noexcept {
    return components_;
  }

  /// Σ over components of size² — maintained incrementally in O(1) per merge:
  /// merging components of sizes a and b changes the sum by (a+b)² - a² - b².
  [[nodiscard]] std::uint64_t sum_squared_sizes() const noexcept {
    return sum_squares_;
  }

 private:
  void check_bounds(grb::Index a) const;

  std::vector<grb::Index> parent_;
  std::vector<grb::Index> size_;
  grb::Index components_ = 0;
  std::uint64_t sum_squares_ = 0;
};

}  // namespace lagraph
