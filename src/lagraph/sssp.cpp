#include "lagraph/sssp.hpp"

namespace lagraph {

using grb::Index;
using U64 = std::uint64_t;

std::vector<U64> sssp(const grb::Matrix<U64>& weights, Index source) {
  if (weights.nrows() != weights.ncols()) {
    throw grb::DimensionMismatch("sssp: weight matrix must be square");
  }
  const Index n = weights.nrows();
  if (source >= n) {
    throw grb::IndexOutOfBounds("sssp: source " + std::to_string(source));
  }
  std::vector<U64> dist(n, kInfDistance);
  dist[source] = 0;

  // Sparse frontier of vertices whose distance improved last round.
  grb::Vector<U64> frontier = grb::Vector<U64>::build(n, {source}, {U64{0}});
  const auto min_plus =
      grb::Semiring<grb::Monoid<U64, grb::Min<U64>>, grb::Plus<U64>>{
          grb::min_monoid<U64>(), grb::Plus<U64>{}};

  for (Index round = 0; round < n && frontier.nvals() > 0; ++round) {
    // relaxed = frontierᵀ min.+ W : candidate distances through the frontier.
    grb::Vector<U64> relaxed(n);
    grb::vxm(relaxed, min_plus, frontier, weights);
    // Keep strict improvements as the next frontier.
    std::vector<Index> imp_idx;
    std::vector<U64> imp_val;
    const auto ri = relaxed.indices();
    const auto rv = relaxed.values();
    for (std::size_t k = 0; k < ri.size(); ++k) {
      if (rv[k] < dist[ri[k]]) {
        dist[ri[k]] = rv[k];
        imp_idx.push_back(ri[k]);
        imp_val.push_back(rv[k]);
      }
    }
    frontier = grb::Vector<U64>::adopt_sorted(n, std::move(imp_idx),
                                              std::move(imp_val));
  }
  return dist;
}

}  // namespace lagraph
