// k-core decomposition: the coreness of a vertex is the largest k such that
// it belongs to a subgraph where every vertex has degree ≥ k. Peeling
// algorithm over the grb adjacency structure (LAGraph ships this as
// LAGraph_KCore). Used by the community_watch example as a robustness
// measure for the friendship graph.
#pragma once

#include <vector>

#include "grb/grb.hpp"

namespace lagraph {

/// Coreness of every vertex of an undirected graph (symmetric adjacency).
std::vector<grb::Index> kcore(const grb::Matrix<grb::Bool>& adj);

/// Largest coreness in the graph (0 for an empty graph).
grb::Index max_coreness(const grb::Matrix<grb::Bool>& adj);

}  // namespace lagraph
