#include "lagraph/bfs.hpp"

#include "grb/detail/parallel.hpp"

namespace lagraph {

using grb::Bool;
using grb::Index;

std::vector<Index> bfs_levels(const grb::Matrix<Bool>& adj, Index source) {
  if (adj.nrows() != adj.ncols()) {
    throw grb::DimensionMismatch("bfs_levels: adjacency must be square");
  }
  const Index n = adj.nrows();
  if (source >= n) {
    throw grb::IndexOutOfBounds("bfs_levels: source " + std::to_string(source));
  }
  std::vector<Index> level(n, kUnreachable);
  level[source] = 0;

  // visited doubles as the (complemented) mask; frontier is q.
  grb::Vector<Bool> visited = grb::Vector<Bool>::build(n, {source}, {Bool{1}});
  grb::Vector<Bool> frontier = visited;
  const auto sr = grb::lor_land_semiring<Bool>();
  grb::Descriptor not_visited;
  not_visited.complement_mask = true;
  not_visited.replace = true;

  for (Index depth = 1; frontier.nvals() > 0 && depth <= n; ++depth) {
    // next<!visited,replace> = frontier ⊕.⊗ A — the parallel push kernel.
    grb::Vector<Bool> next(n);
    grb::vxm(next, &visited, grb::NoAccum{}, sr, frontier, adj, not_visited);
    if (next.nvals() == 0) break;
    const auto ni = next.indices();
    grb::detail::parallel_for(static_cast<Index>(ni.size()),
                              [&](Index k) { level[ni[k]] = depth; });
    // visited |= next
    grb::eWiseAdd(visited, grb::LOr<Bool>{}, visited, next);
    frontier = std::move(next);
  }
  return level;
}

}  // namespace lagraph
