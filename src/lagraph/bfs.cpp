#include "lagraph/bfs.hpp"

#include <cstdint>

#include "grb/detail/parallel.hpp"
#include "grb/detail/workspace.hpp"
#include "grb/transpose.hpp"

namespace lagraph {

using grb::Bool;
using grb::Index;

namespace {

// Direction-optimisation thresholds (Beamer's α/β). Push (vxm scatter)
// expands the frontier edge-by-edge; pull (mxv dot over Aᵀ) scans every
// vertex's in-edges against the frontier. Pull wins once the frontier's
// outgoing edges rival the unexplored edge count (α); push wins again when
// the frontier collapses to a sliver of the vertices (β). Both kernels
// produce the identical next frontier under the complemented visited mask,
// so the switch never changes results — only which direction pays.
constexpr std::uint64_t kPullAlpha = 14;
constexpr std::uint64_t kPushBeta = 24;

}  // namespace

std::vector<Index> bfs_levels(const grb::Matrix<Bool>& adj, Index source) {
  if (adj.nrows() != adj.ncols()) {
    throw grb::DimensionMismatch("bfs_levels: adjacency must be square");
  }
  const Index n = adj.nrows();
  if (source >= n) {
    throw grb::IndexOutOfBounds("bfs_levels: source " + std::to_string(source));
  }
  std::vector<Index> level(n, kUnreachable);
  level[source] = 0;

  // visited doubles as the (complemented) mask; frontier is q.
  grb::Vector<Bool> visited = grb::Vector<Bool>::build(n, {source}, {Bool{1}});
  grb::Vector<Bool> frontier = visited;
  const auto sr = grb::lor_land_semiring<Bool>();
  grb::Descriptor not_visited;
  not_visited.complement_mask = true;
  not_visited.replace = true;

  // The pull kernel needs the transposed adjacency (successors live in Aᵀ's
  // rows); it is built lazily on the first pull level and recycled into the
  // workspace when the traversal ends.
  grb::Matrix<Bool> adj_t;
  bool have_adj_t = false;
  bool pulling = false;
  std::uint64_t unexplored_edges =
      static_cast<std::uint64_t>(adj.nvals()) - adj.row_degree(source);

  for (Index depth = 1; frontier.nvals() > 0 && depth <= n; ++depth) {
    if (!pulling) {
      // Frontier out-degree: the work a push level would do. Only the
      // push→pull decision needs it, so pull levels skip the scan.
      std::uint64_t frontier_edges = 0;
      for (const Index i : frontier.indices()) {
        frontier_edges += adj.row_degree(i);
      }
      pulling = frontier_edges * kPullAlpha > unexplored_edges;
    } else {
      pulling = static_cast<std::uint64_t>(frontier.nvals()) * kPushBeta >
                static_cast<std::uint64_t>(n);
    }

    // next<!visited,replace> = frontier ⊕.⊗ A — push scatters the frontier
    // rows, pull dots every candidate's in-edges (Aᵀ rows) against it.
    grb::Vector<Bool> next(n);
    if (pulling) {
      if (!have_adj_t) {
        adj_t = grb::transposed(adj);
        have_adj_t = true;
      }
      grb::mxv(next, &visited, grb::NoAccum{}, sr, adj_t, frontier,
               not_visited);
    } else {
      grb::vxm(next, &visited, grb::NoAccum{}, sr, frontier, adj, not_visited);
    }
    if (next.nvals() == 0) {
      grb::recycle(std::move(next));
      break;
    }
    const auto ni = next.indices();
    grb::detail::parallel_for(static_cast<Index>(ni.size()),
                              [&](Index k) { level[ni[k]] = depth; });
    for (const Index i : ni) {
      unexplored_edges -= adj.row_degree(i);
    }
    // visited |= next
    grb::eWiseAdd(visited, grb::LOr<Bool>{}, visited, next);
    grb::recycle(std::move(frontier));
    frontier = std::move(next);
  }
  if (have_adj_t) grb::recycle(std::move(adj_t));
  grb::recycle(std::move(visited));
  grb::recycle(std::move(frontier));
  return level;
}

}  // namespace lagraph
