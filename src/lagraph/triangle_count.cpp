#include "lagraph/triangle_count.hpp"

namespace lagraph {

using grb::Bool;
using grb::Index;
using U64 = std::uint64_t;

std::uint64_t triangle_count(const grb::Matrix<Bool>& adj) {
  if (adj.nrows() != adj.ncols()) {
    throw grb::DimensionMismatch("triangle_count: adjacency must be square");
  }
  // L: strictly lower triangular part — each undirected edge once.
  grb::Matrix<Bool> lower(adj.nrows(), adj.ncols());
  grb::select(lower, grb::StrictLower<Bool>{}, adj);

  // C<L> = L ⊕.⊗ Lᵀ over plus_pair: C(i,j) counts common lower-neighbours
  // of the edge (i,j); summing gives each triangle exactly once.
  // Multiplying by Lᵀ means taking rows of L against rows of L — our mxm
  // consumes CSR rows of the second operand, so pass transposed(L).
  grb::Matrix<U64> closed(adj.nrows(), adj.ncols());
  grb::Descriptor structural;
  structural.structural_mask = true;
  grb::mxm(closed, &lower, grb::NoAccum{}, grb::plus_pair_semiring<U64>(),
           lower, grb::transposed(lower), structural);
  return grb::reduce_scalar<U64>(grb::plus_monoid<U64>(), closed);
}

}  // namespace lagraph
