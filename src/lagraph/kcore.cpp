#include "lagraph/kcore.hpp"

#include <algorithm>

#include "grb/detail/parallel.hpp"

namespace lagraph {

using grb::Index;

std::vector<Index> kcore(const grb::Matrix<grb::Bool>& adj) {
  if (adj.nrows() != adj.ncols()) {
    throw grb::DimensionMismatch("kcore: adjacency must be square");
  }
  const Index n = adj.nrows();
  // Matula-Beck bucket peeling: O(V + E) with bucketed vertices by degree.
  // The peeling itself is inherently sequential; the degree scan — the only
  // O(V)-wide phase — runs as a parallel max-fold over the fixed chunk grid.
  std::vector<Index> degree(n);
  const Index max_degree = grb::detail::parallel_fold<Index>(
      n, Index{0},
      [&](Index lo, Index hi) {
        Index m = 0;
        for (Index i = lo; i < hi; ++i) {
          degree[i] = adj.row_degree(i);
          m = std::max(m, degree[i]);
        }
        return m;
      },
      [](Index x, Index y) { return std::max(x, y); });
  // bucket[d] holds vertices of current degree d; pos/vert are the usual
  // in-place bucket-sort bookkeeping.
  std::vector<Index> bucket_start(max_degree + 2, 0);
  for (Index i = 0; i < n; ++i) ++bucket_start[degree[i] + 1];
  for (Index d = 1; d < static_cast<Index>(bucket_start.size()); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<Index> vert(n), pos(n);
  {
    std::vector<Index> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (Index i = 0; i < n; ++i) {
      pos[i] = cursor[degree[i]]++;
      vert[pos[i]] = i;
    }
  }
  std::vector<Index> core(n, 0);
  std::vector<Index> bstart(bucket_start.begin(), bucket_start.end() - 1);
  for (Index k = 0; k < n; ++k) {
    const Index v = vert[k];
    core[v] = degree[v];
    // "Remove" v: decrement the degree of every not-yet-peeled neighbour,
    // moving it one bucket down (swap with its bucket's first element).
    for (const Index u : adj.row_cols(v)) {
      if (degree[u] > degree[v]) {
        const Index du = degree[u];
        const Index pu = pos[u];
        const Index pw = bstart[du];
        const Index w = vert[pw];
        if (u != w) {
          std::swap(vert[pu], vert[pw]);
          pos[u] = pw;
          pos[w] = pu;
        }
        ++bstart[du];
        --degree[u];
      }
    }
  }
  return core;
}

Index max_coreness(const grb::Matrix<grb::Bool>& adj) {
  const auto core = kcore(adj);
  Index best = 0;
  for (const Index c : core) best = std::max(best, c);
  return best;
}

}  // namespace lagraph
