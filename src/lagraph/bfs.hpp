// Level-synchronous direction-optimising BFS in the language of linear
// algebra: the frontier is a sparse boolean vector expanded under the
// complemented visited mask, switching per level between the push kernel
// (vxm scatter over A) and the pull kernel (mxv dot over Aᵀ, built lazily)
// with Beamer's frontier-size / unexplored-degree heuristic. Both
// directions produce the identical frontier, so results never depend on
// the switch. Not used by the case-study queries directly; exercised by
// tests and the community_watch example as additional library surface.
#pragma once

#include <vector>

#include "grb/grb.hpp"

namespace lagraph {

/// BFS levels from `source`: level[source] = 0, unreachable = -1 (stored as
/// Index max). Matrix is interpreted as directed (row -> col edges).
std::vector<grb::Index> bfs_levels(const grb::Matrix<grb::Bool>& adj,
                                   grb::Index source);

/// Sentinel for unreachable vertices.
inline constexpr grb::Index kUnreachable = static_cast<grb::Index>(-1);

}  // namespace lagraph
