#include "lagraph/incremental_cc.hpp"

#include <string>

namespace lagraph {

using grb::Index;

void IncrementalCC::reset(Index n) {
  parent_.resize(n);
  size_.assign(n, 1);
  for (Index i = 0; i < n; ++i) parent_[i] = i;
  components_ = n;
  sum_squares_ = n;  // n singletons, each contributing 1² = 1
}

Index IncrementalCC::add_node() {
  const Index id = static_cast<Index>(parent_.size());
  parent_.push_back(id);
  size_.push_back(1);
  ++components_;
  sum_squares_ += 1;
  return id;
}

Index IncrementalCC::find(Index a) {
  check_bounds(a);
  Index root = a;
  while (parent_[root] != root) root = parent_[root];
  // Path compression.
  while (parent_[a] != root) {
    const Index next = parent_[a];
    parent_[a] = root;
    a = next;
  }
  return root;
}

bool IncrementalCC::add_edge(Index a, Index b) {
  Index ra = find(a);
  Index rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  const std::uint64_t sa = size_[ra];
  const std::uint64_t sb = size_[rb];
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --components_;
  sum_squares_ += (sa + sb) * (sa + sb) - sa * sa - sb * sb;
  return true;
}

bool IncrementalCC::connected(Index a, Index b) { return find(a) == find(b); }

Index IncrementalCC::size_of(Index a) { return size_[find(a)]; }

void IncrementalCC::check_bounds(Index a) const {
  if (a >= parent_.size()) {
    throw grb::IndexOutOfBounds("IncrementalCC: node " + std::to_string(a) +
                                " >= " + std::to_string(parent_.size()));
  }
}

}  // namespace lagraph
