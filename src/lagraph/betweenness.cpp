#include "lagraph/betweenness.hpp"

namespace lagraph {

using grb::Bool;
using grb::Index;

std::vector<double> betweenness(const grb::Matrix<Bool>& adj,
                                std::span<const Index> sources) {
  if (adj.nrows() != adj.ncols()) {
    throw grb::DimensionMismatch("betweenness: adjacency must be square");
  }
  const Index n = adj.nrows();
  std::vector<double> centrality(n, 0.0);
  if (n == 0) return centrality;

  // Scratch reused across sources.
  std::vector<double> sigma(n);       // shortest-path counts
  std::vector<Index> depth(n);        // BFS level, n = unvisited
  std::vector<double> delta(n);       // dependencies
  std::vector<std::vector<Index>> levels;  // vertices per BFS level

  for (const Index s : sources) {
    if (s >= n) {
      throw grb::IndexOutOfBounds("betweenness: source " + std::to_string(s));
    }
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(depth.begin(), depth.end(), n);
    std::fill(delta.begin(), delta.end(), 0.0);
    levels.assign(1, {s});
    sigma[s] = 1.0;
    depth[s] = 0;

    // Forward phase: frontier expansion counting shortest paths. This is
    // the vxm(plus_times) of the GraphBLAS formulation, written against the
    // CSR rows directly (each frontier vertex scatters its sigma).
    for (Index level = 0; !levels[level].empty(); ++level) {
      std::vector<Index> next;
      for (const Index u : levels[level]) {
        for (const Index v : adj.row_cols(u)) {
          if (depth[v] == n) {
            depth[v] = level + 1;
            next.push_back(v);
          }
          if (depth[v] == level + 1) {
            sigma[v] += sigma[u];
          }
        }
      }
      levels.push_back(std::move(next));
      if (levels.back().empty()) break;
    }

    // Backward phase: dependency accumulation from the deepest level up.
    for (Index level = static_cast<Index>(levels.size()); level-- > 1;) {
      for (const Index u : levels[level - 1]) {
        for (const Index v : adj.row_cols(u)) {
          if (depth[v] == depth[u] + 1 && sigma[v] > 0.0) {
            delta[u] += sigma[u] / sigma[v] * (1.0 + delta[v]);
          }
        }
        if (u != s) {
          centrality[u] += delta[u];
        }
      }
    }
  }
  return centrality;
}

std::vector<double> betweenness_exact(const grb::Matrix<Bool>& adj) {
  std::vector<Index> all(adj.nrows());
  for (Index i = 0; i < adj.nrows(); ++i) all[i] = i;
  return betweenness(adj, all);
}

}  // namespace lagraph
