#include "lagraph/cc_bfs.hpp"

namespace lagraph {

using grb::Index;

std::vector<Index> cc_bfs(const grb::Matrix<grb::Bool>& adj) {
  if (adj.nrows() != adj.ncols()) {
    throw grb::DimensionMismatch("cc_bfs: adjacency must be square");
  }
  const Index n = adj.nrows();
  constexpr Index kUnvisited = static_cast<Index>(-1);
  std::vector<Index> label(n, kUnvisited);
  std::vector<Index> queue;
  queue.reserve(64);
  for (Index start = 0; start < n; ++start) {
    if (label[start] != kUnvisited) continue;
    // `start` is the smallest id in its component because vertices are
    // visited in increasing order.
    label[start] = start;
    queue.clear();
    queue.push_back(start);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Index u = queue[head];
      for (const Index v : adj.row_cols(u)) {
        if (label[v] == kUnvisited) {
          label[v] = start;
          queue.push_back(v);
        }
      }
    }
  }
  return label;
}

}  // namespace lagraph
