// Betweenness centrality (Brandes' algorithm, batched-sources variant as in
// LAGraph's LAGr_Betweenness): for a set of source vertices, accumulate the
// pair-dependency of every vertex via a forward BFS phase (counting
// shortest paths with plus_times frontier products) and a backward
// dependency-propagation phase. Exact when sources = all vertices;
// subsampled sources give the usual unbiased estimate.
#pragma once

#include <span>
#include <vector>

#include "grb/grb.hpp"

namespace lagraph {

/// Batched Brandes betweenness for a directed graph (row -> col edges),
/// accumulated over the given source vertices.
std::vector<double> betweenness(const grb::Matrix<grb::Bool>& adj,
                                std::span<const grb::Index> sources);

/// Exact betweenness (all vertices as sources).
std::vector<double> betweenness_exact(const grb::Matrix<grb::Bool>& adj);

}  // namespace lagraph
