// PageRank in the language of linear algebra (LAGraph's LAGr_PageRank
// profile): power iteration r' = (1-d)/n + d·(Aᵀ r ⊘ outdeg), with dangling
// vertices redistributing their mass uniformly. Not used by the case-study
// queries; part of the algorithm collection exercised by the examples and
// tests (the paper positions its solution inside the LAGraph ecosystem).
#pragma once

#include <vector>

#include "grb/grb.hpp"

namespace lagraph {

struct PageRankOptions {
  double damping = 0.85;
  double tolerance = 1e-7;  // L1 change per iteration
  int max_iterations = 100;
};

struct PageRankResult {
  std::vector<double> rank;  // dense, sums to ~1
  int iterations = 0;
};

/// Computes PageRank of a directed graph (row -> col edges).
PageRankResult pagerank(const grb::Matrix<grb::Bool>& adj,
                        const PageRankOptions& options = {});

}  // namespace lagraph
