// FastSV connected components (Zhang, Azad, Hu — "FastSV: A distributed-
// memory connected component algorithm with fast convergence", SIAM PP 2020)
// over the grb engine, mirroring LAGraph's implementation structure: the
// per-iteration neighborhood minimum is a grb::mxv over the min_second
// semiring, and the hooking/shortcutting steps operate on the parent arrays.
//
// This is the algorithm the paper's Q2 calls in Step 3 to label the
// connected components of each comment's induced friendship subgraph.
#pragma once

#include <cstdint>
#include <vector>

#include "grb/grb.hpp"

namespace lagraph {

/// Computes connected components of an undirected graph given by a symmetric
/// boolean adjacency matrix. Returns a dense label array: label[i] is the
/// smallest vertex id in i's component. Isolated vertices label themselves.
///
/// Throws grb::DimensionMismatch if the matrix is not square. Symmetry is
/// the caller's contract (the social graph stores friendships both ways);
/// debug builds verify it.
std::vector<grb::Index> cc_fastsv(const grb::Matrix<grb::Bool>& adj);

/// Component statistics helper: given labels, returns the size of each
/// distinct component (order unspecified).
std::vector<grb::Index> component_sizes(const std::vector<grb::Index>& labels);

/// Σ (component size)² — the Q2 scoring kernel.
std::uint64_t sum_squared_component_sizes(const std::vector<grb::Index>& labels);

}  // namespace lagraph
