// Single-source shortest paths over the min_plus (tropical) semiring:
// Bellman-Ford style label correcting with sparse frontiers, the canonical
// GraphBLAS SSSP (LAGraph's LAGr_SingleSourceShortestPath profile).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "grb/grb.hpp"

namespace lagraph {

/// Distance assigned to unreachable vertices.
inline constexpr std::uint64_t kInfDistance =
    std::numeric_limits<std::uint64_t>::max();

/// Shortest path distances from `source` over non-negative integer edge
/// weights (row -> col edges). Throws on non-square input or a source out
/// of range.
std::vector<std::uint64_t> sssp(const grb::Matrix<std::uint64_t>& weights,
                                grb::Index source);

}  // namespace lagraph
