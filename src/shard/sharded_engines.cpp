#include "shard/sharded_engines.hpp"

#include <algorithm>

#include "queries/q1.hpp"
#include "queries/q2.hpp"

namespace shard {

namespace {

using queries::GrbState;
using queries::Ranked;
using queries::TopK;
using U64 = std::uint64_t;

/// Q1 merge: walk the (replicated, identical across shards) dense post id
/// space in order and rank each post by the sum of the per-shard partial
/// scores — the same candidate sequence and total order as the unsharded
/// full scan.
TopK merged_q1_scan(const ShardedGrbState& state,
                    const std::vector<grb::Vector<U64>>& scores) {
  TopK top(3);
  const GrbState& s0 = state.shard(0);
  const Index num_posts = s0.num_posts();
  for (Index p = 0; p < num_posts; ++p) {
    U64 total = 0;
    for (const auto& partial : scores) total += partial.at_or(p, 0);
    top.offer_guarded(Ranked{s0.post_id(p), total, s0.post_timestamp(p)});
  }
  return top;
}

/// Q2 merge: every comment lives on exactly one shard with its full score,
/// so the global top-k is the k-best of all per-shard candidates (zero-score
/// comments included — they still rank by recency). Offer order across
/// shards is irrelevant: ranks_before is a strict total order over distinct
/// comment ids.
TopK merged_q2_scan(const ShardedGrbState& state,
                    const std::vector<grb::Vector<U64>>& scores) {
  TopK top(3);
  for (std::size_t s = 0; s < state.num_shards(); ++s) {
    const GrbState& st = state.shard(s);
    const Index num_comments = st.num_comments();
    for (Index c = 0; c < num_comments; ++c) {
      top.offer_guarded(Ranked{st.comment_id(c), scores[s].at_or(c, 0),
                               st.comment_timestamp(c)});
    }
  }
  return top;
}

/// Per-shard batch scoring (Alg. 1 / Fig. 4b upper half on each shard's
/// matrices), fanned out across shards.
std::vector<grb::Vector<U64>> batch_scores(harness::Query q,
                                           ShardedGrbState& state) {
  std::vector<grb::Vector<U64>> scores(state.num_shards(),
                                       grb::Vector<U64>(0));
  state.for_each_shard([&](std::size_t s) {
    scores[s] = q == harness::Query::kQ1
                    ? queries::q1_batch_scores(state.shard(s))
                    : queries::q2_batch_scores(state.shard(s));
  });
  return scores;
}

void recycle_all(std::vector<grb::Vector<U64>>& scores) {
  for (auto& v : scores) grb::recycle(std::move(v));
  scores.clear();
}

}  // namespace

// --- GrbShardedBatchEngine ---------------------------------------------------

void GrbShardedBatchEngine::load(const sm::SocialGraph& g) { state_.load(g); }

std::string GrbShardedBatchEngine::evaluate() {
  auto scores = batch_scores(query_, state_);
  TopK top = query_ == harness::Query::kQ1 ? merged_q1_scan(state_, scores)
                                           : merged_q2_scan(state_, scores);
  recycle_all(scores);
  return top.answer();
}

std::string GrbShardedBatchEngine::initial() { return evaluate(); }

std::string GrbShardedBatchEngine::update(const sm::ChangeSet& cs) {
  // Batch semantics: apply (the per-shard deltas are discarded — their
  // destructors recycle the storage) and fully reevaluate.
  (void)state_.apply_change_set(cs);
  return evaluate();
}

// --- GrbShardedIncrementalEngine ---------------------------------------------

GrbShardedIncrementalEngine::~GrbShardedIncrementalEngine() {
  recycle_all(scores_);
}

void GrbShardedIncrementalEngine::load(const sm::SocialGraph& g) {
  state_.load(g);
}

std::string GrbShardedIncrementalEngine::initial() {
  recycle_all(scores_);
  scores_ = batch_scores(query_, state_);
  top_ = query_ == harness::Query::kQ1 ? merged_q1_scan(state_, scores_)
                                       : merged_q2_scan(state_, scores_);
  return top_.answer();
}

std::string GrbShardedIncrementalEngine::update(const sm::ChangeSet& cs) {
  std::vector<queries::GrbDelta> deltas = state_.apply_change_set(cs);

  // Per-shard delta maintenance, fanned out. Each shard updates its own
  // maintained vector in place and reports the entries whose value changed.
  std::vector<grb::Vector<U64>> changed(state_.num_shards(),
                                        grb::Vector<U64>(0));
  state_.for_each_shard([&](std::size_t s) {
    changed[s] = query_ == harness::Query::kQ1
                     ? queries::q1_incremental_update(state_.shard(s),
                                                      deltas[s], scores_[s])
                     : queries::q2_incremental_update(state_.shard(s),
                                                      deltas[s], scores_[s]);
  });

  const bool removals =
      std::any_of(deltas.begin(), deltas.end(),
                  [](const queries::GrbDelta& d) { return d.has_removals(); });

  if (query_ == harness::Query::kQ1) {
    if (removals) {
      // Scores are no longer monotone: re-rank from the maintained partials
      // (an O(posts · shards) scan, no reevaluation) — mirroring the
      // unsharded engine's removal path.
      top_ = merged_q1_scan(state_, scores_);
    } else {
      // Insert-only fast path. A post's total changed iff some shard's
      // partial changed (partials only grow), so the union of per-shard
      // changed sets is exactly the unsharded changed set; new posts are
      // replicated, so any shard's list (shard 0's) covers them.
      std::vector<Index> candidates;
      for (const auto& ch : changed) {
        const auto ci = ch.indices();
        candidates.insert(candidates.end(), ci.begin(), ci.end());
      }
      candidates.insert(candidates.end(), deltas[0].new_posts.begin(),
                        deltas[0].new_posts.end());
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
      const GrbState& s0 = state_.shard(0);
      for (const Index p : candidates) {
        U64 total = 0;
        for (const auto& partial : scores_) total += partial.at_or(p, 0);
        top_.offer(Ranked{s0.post_id(p), total, s0.post_timestamp(p)});
      }
    }
  } else {
    if (removals) {
      top_ = merged_q2_scan(state_, scores_);
    } else {
      // Insert-only fast path: merge the previous top-k with every comment
      // whose score changed plus the new zero-score comments, shard by
      // shard (comment sets are disjoint, offers commute).
      for (std::size_t s = 0; s < state_.num_shards(); ++s) {
        const GrbState& st = state_.shard(s);
        const auto ci = changed[s].indices();
        const auto cv = changed[s].values();
        for (std::size_t k = 0; k < ci.size(); ++k) {
          top_.offer(Ranked{st.comment_id(ci[k]), cv[k],
                            st.comment_timestamp(ci[k])});
        }
        for (const Index c : deltas[s].new_comments) {
          top_.offer(Ranked{st.comment_id(c), scores_[s].at_or(c, 0),
                            st.comment_timestamp(c)});
        }
      }
    }
  }
  recycle_all(changed);
  return top_.answer();
}

// --- factory -----------------------------------------------------------------

harness::EnginePtr make_sharded_engine(const std::string& variant,
                                       harness::Query q,
                                       std::size_t num_shards) {
  if (variant == "sharded-batch") {
    return std::make_unique<GrbShardedBatchEngine>(q, num_shards);
  }
  if (variant == "sharded-incremental") {
    return std::make_unique<GrbShardedIncrementalEngine>(q, num_shards);
  }
  throw grb::InvalidValue("unknown sharded engine variant: " + variant);
}

}  // namespace shard
