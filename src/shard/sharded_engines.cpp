#include "shard/sharded_engines.hpp"

#include <algorithm>
#include <span>

#include "queries/q1.hpp"
#include "queries/q2.hpp"

namespace shard {

namespace {

using queries::GrbState;
using queries::Ranked;
using queries::TopK;
using U64 = std::uint64_t;

/// Dense-order k-way merge over the sorted per-shard Q1 partials: one
/// linear cursor per shard instead of a binary search per (post, shard).
/// `fn(p, total)` sees every post in dense id order with its merged total.
template <typename Fn>
void merged_q1_walk(const std::vector<grb::Vector<U64>>& scores,
                    Index num_posts, Fn&& fn) {
  const std::size_t n = scores.size();
  std::vector<std::span<const Index>> idx(n);
  std::vector<std::span<const U64>> val(n);
  std::vector<std::size_t> pos(n, 0);
  for (std::size_t s = 0; s < n; ++s) {
    idx[s] = scores[s].indices();
    val[s] = scores[s].values();
  }
  for (Index p = 0; p < num_posts; ++p) {
    U64 total = 0;
    for (std::size_t s = 0; s < n; ++s) {
      if (pos[s] < idx[s].size() && idx[s][pos[s]] == p) {
        total += val[s][pos[s]];
        ++pos[s];
      }
    }
    fn(p, total);
  }
}

/// Dense-order walk over one shard's comment space with a linear cursor on
/// its sorted score vector: `fn(c, score)` for every comment, zeros filled.
template <typename Fn>
void q2_shard_walk(const grb::Vector<U64>& scores, Index num_comments,
                   Fn&& fn) {
  const auto idx = scores.indices();
  const auto val = scores.values();
  std::size_t pos = 0;
  for (Index c = 0; c < num_comments; ++c) {
    U64 v = 0;
    if (pos < idx.size() && idx[pos] == c) {
      v = val[pos];
      ++pos;
    }
    fn(c, v);
  }
}

/// Q1 merge: walk the (replicated, identical across shards) dense post id
/// space in order and rank each post by the sum of the per-shard partial
/// scores — the same candidate sequence and total order as the unsharded
/// full scan.
TopK merged_q1_scan(const ShardedGrbState& state,
                    const std::vector<grb::Vector<U64>>& scores) {
  TopK top(3);
  const GrbState& s0 = state.shard(0);
  merged_q1_walk(scores, s0.num_posts(), [&](Index p, U64 total) {
    top.offer_guarded(Ranked{s0.post_id(p), total, s0.post_timestamp(p)});
  });
  return top;
}

/// Q2 merge: every comment lives on exactly one shard with its full score,
/// so the global top-k is the k-best of all per-shard candidates (zero-score
/// comments included — they still rank by recency). Offer order across
/// shards is irrelevant: ranks_before is a strict total order over distinct
/// comment ids.
TopK merged_q2_scan(const ShardedGrbState& state,
                    const std::vector<grb::Vector<U64>>& scores) {
  TopK top(3);
  for (std::size_t s = 0; s < state.num_shards(); ++s) {
    const GrbState& st = state.shard(s);
    q2_shard_walk(scores[s], st.num_comments(), [&](Index c, U64 v) {
      top.offer_guarded(Ranked{st.comment_id(c), v, st.comment_timestamp(c)});
    });
  }
  return top;
}

/// Per-shard batch scoring (Alg. 1 / Fig. 4b upper half on each shard's
/// matrices), fanned out across shards.
std::vector<grb::Vector<U64>> batch_scores(harness::Query q,
                                           ShardedGrbState& state) {
  std::vector<grb::Vector<U64>> scores(state.num_shards(),
                                       grb::Vector<U64>(0));
  state.for_each_shard([&](std::size_t s) {
    scores[s] = q == harness::Query::kQ1
                    ? queries::q1_batch_scores(state.shard(s))
                    : queries::q2_batch_scores(state.shard(s));
  });
  return scores;
}

void recycle_all(std::vector<grb::Vector<U64>>& scores) {
  for (auto& v : scores) grb::recycle(std::move(v));
  scores.clear();
}

}  // namespace

// --- GrbShardedBatchEngine ---------------------------------------------------

void GrbShardedBatchEngine::load(const sm::SocialGraph& g) { state_.load(g); }

std::string GrbShardedBatchEngine::evaluate() {
  auto scores = batch_scores(query_, state_);
  TopK top = query_ == harness::Query::kQ1 ? merged_q1_scan(state_, scores)
                                           : merged_q2_scan(state_, scores);
  recycle_all(scores);
  return top.answer();
}

std::string GrbShardedBatchEngine::initial() { return evaluate(); }

std::string GrbShardedBatchEngine::update(const sm::ChangeSet& cs) {
  // Batch semantics: apply (the per-shard deltas are discarded — their
  // destructors recycle the storage) and fully reevaluate.
  (void)state_.apply_change_set(cs);
  return evaluate();
}

// --- GrbShardedIncrementalEngine ---------------------------------------------

GrbShardedIncrementalEngine::~GrbShardedIncrementalEngine() {
  recycle_all(scores_);
}

void GrbShardedIncrementalEngine::load(const sm::SocialGraph& g) {
  state_.load(g);
}

std::string GrbShardedIncrementalEngine::initial() {
  recycle_all(scores_);
  scores_ = batch_scores(query_, state_);
  // The initial merged scan doubles as the pruning-state build: exact block
  // bounds raised from the fresh scores and candidate pools filled from the
  // ranked walk (one full-scan pool rebuild per pool, counted).
  top_ = queries::TopK(3);
  queries::PruneStats stats;
  if (query_ == harness::Query::kQ1) {
    const GrbState& s0 = state_.shard(0);
    bounds_.assign(1, queries::BlockBounds());
    pools_.assign(1, queries::CandidatePool());
    bounds_[0].reset(s0.num_posts());
    stats.pool_rebuilds = 1;
    merged_q1_walk(scores_, s0.num_posts(), [&](Index p, U64 total) {
      bounds_[0].raise(p, total);
      const Ranked r{s0.post_id(p), total, s0.post_timestamp(p)};
      top_.offer_guarded(r);
      pools_[0].offer_guarded(p, r);
    });
  } else {
    const std::size_t n = state_.num_shards();
    bounds_.assign(n, queries::BlockBounds());
    pools_.assign(n, queries::CandidatePool());
    stats.pool_rebuilds = n;
    for (std::size_t s = 0; s < n; ++s) {
      const GrbState& st = state_.shard(s);
      bounds_[s].reset(st.num_comments());
      q2_shard_walk(scores_[s], st.num_comments(), [&](Index c, U64 v) {
        bounds_[s].raise(c, v);
        const Ranked r{st.comment_id(c), v, st.comment_timestamp(c)};
        top_.offer_guarded(r);
        pools_[s].offer_guarded(c, r);
      });
    }
  }
  prune_stats_ += stats;
  queries::add_prune_counters(stats);
  return top_.answer();
}

void GrbShardedIncrementalEngine::pruned_q1_rerank(queries::PruneStats& stats) {
  const GrbState& s0 = state_.shard(0);
  TopK top(3);
  pools_[0].seed(top, stats);
  const std::size_t n = scores_.size();
  std::vector<std::span<const Index>> idx(n);
  std::vector<std::span<const U64>> val(n);
  std::vector<std::size_t> pos(n, 0);  // blocks are visited in dense order
  for (std::size_t s = 0; s < n; ++s) {
    idx[s] = scores_[s].indices();
    val[s] = scores_[s].values();
  }
  queries::pruned_blocks(
      top, bounds_[0].num_blocks(),
      [&](Index b) { return bounds_[0].bound(b); },
      [&](Index b) {
        const Index lo = bounds_[0].block_lo(b);
        const Index hi = bounds_[0].block_hi(b);
        for (std::size_t s = 0; s < n; ++s) {
          pos[s] = static_cast<std::size_t>(
              std::lower_bound(idx[s].begin() + pos[s], idx[s].end(), lo) -
              idx[s].begin());
        }
        for (Index p = lo; p < hi; ++p) {
          U64 total = 0;
          for (std::size_t s = 0; s < n; ++s) {
            if (pos[s] < idx[s].size() && idx[s][pos[s]] == p) {
              total += val[s][pos[s]];
              ++pos[s];
            }
          }
          const Ranked r{s0.post_id(p), total, s0.post_timestamp(p)};
          top.offer_guarded(r);
          pools_[0].offer_guarded(p, r);
        }
      },
      stats);
  top_ = std::move(top);
}

void GrbShardedIncrementalEngine::pruned_q2_rerank(queries::PruneStats& stats) {
  TopK top(3);
  // Seed from every shard's pool before any block decision — the stronger
  // the threshold, the more shards prune.
  for (const auto& pool : pools_) pool.seed(top, stats);
  for (std::size_t s = 0; s < state_.num_shards(); ++s) {
    const GrbState& st = state_.shard(s);
    const auto idx = scores_[s].indices();
    const auto val = scores_[s].values();
    std::size_t pos = 0;
    queries::pruned_blocks(
        top, bounds_[s].num_blocks(),
        [&](Index b) { return bounds_[s].bound(b); },
        [&](Index b) {
          const Index lo = bounds_[s].block_lo(b);
          const Index hi = bounds_[s].block_hi(b);
          pos = static_cast<std::size_t>(
              std::lower_bound(idx.begin() + pos, idx.end(), lo) -
              idx.begin());
          for (Index c = lo; c < hi; ++c) {
            U64 v = 0;
            if (pos < idx.size() && idx[pos] == c) {
              v = val[pos];
              ++pos;
            }
            const Ranked r{st.comment_id(c), v, st.comment_timestamp(c)};
            top.offer_guarded(r);
            pools_[s].offer_guarded(c, r);
          }
        },
        stats);
  }
  top_ = std::move(top);
}

std::string GrbShardedIncrementalEngine::update(const sm::ChangeSet& cs) {
  std::vector<queries::GrbDelta> deltas = state_.apply_change_set(cs);

  // Per-shard delta maintenance, fanned out. Each shard updates its own
  // maintained vector in place and reports the entries whose value changed.
  std::vector<grb::Vector<U64>> changed(state_.num_shards(),
                                        grb::Vector<U64>(0));
  state_.for_each_shard([&](std::size_t s) {
    changed[s] = query_ == harness::Query::kQ1
                     ? queries::q1_incremental_update(state_.shard(s),
                                                      deltas[s], scores_[s])
                     : queries::q2_incremental_update(state_.shard(s),
                                                      deltas[s], scores_[s]);
  });

  const bool removals =
      std::any_of(deltas.begin(), deltas.end(),
                  [](const queries::GrbDelta& d) { return d.has_removals(); });

  queries::PruneStats stats;
  if (query_ == harness::Query::kQ1) {
    // Candidate union — built on *every* epoch now: a post's total changed
    // iff some shard's partial changed, so folding the union's merged
    // totals keeps the bounds valid and the pool values exact across
    // change sets. New posts are replicated; shard 0's list covers them.
    std::vector<Index> candidates;
    for (const auto& ch : changed) {
      const auto ci = ch.indices();
      candidates.insert(candidates.end(), ci.begin(), ci.end());
    }
    candidates.insert(candidates.end(), deltas[0].new_posts.begin(),
                      deltas[0].new_posts.end());
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    const GrbState& s0 = state_.shard(0);
    bounds_[0].resize(s0.num_posts());
    const auto total_of = [&](Index p) {
      U64 total = 0;
      for (const auto& partial : scores_) total += partial.at_or(p, 0);
      return total;
    };
    for (const Index p : candidates) {
      const U64 total = total_of(p);
      bounds_[0].note_change(p, total, removals, total_of, stats);
      const Ranked r{s0.post_id(p), total, s0.post_timestamp(p)};
      pools_[0].offer(p, r);
      if (!removals) {
        // Insert-only fast path: merge the changed totals (and the new
        // zero-score posts, which can rank by recency) into the answer.
        top_.offer(r);
      }
    }
    if (removals) {
      // Scores are no longer monotone: re-rank — but seeded from the pool
      // and scanning only the blocks whose upper bound can still beat the
      // running threshold, instead of the old O(posts · shards) full scan.
      pruned_q1_rerank(stats);
    }
  } else {
    for (std::size_t s = 0; s < state_.num_shards(); ++s) {
      const GrbState& st = state_.shard(s);
      bounds_[s].resize(st.num_comments());
      const auto value_of = [&](Index c) { return scores_[s].at_or(c, 0); };
      const auto ci = changed[s].indices();
      const auto cv = changed[s].values();
      for (std::size_t k = 0; k < ci.size(); ++k) {
        bounds_[s].note_change(ci[k], cv[k], removals, value_of, stats);
        const Ranked r{st.comment_id(ci[k]), cv[k],
                       st.comment_timestamp(ci[k])};
        pools_[s].offer(ci[k], r);
        if (!removals) top_.offer(r);
      }
      for (const Index c : deltas[s].new_comments) {
        const Ranked r{st.comment_id(c), scores_[s].at_or(c, 0),
                       st.comment_timestamp(c)};
        pools_[s].offer(c, r);
        if (!removals) top_.offer(r);
      }
    }
    if (removals) {
      pruned_q2_rerank(stats);
    }
  }
  prune_stats_ += stats;
  queries::add_prune_counters(stats);
  recycle_all(changed);
  return top_.answer();
}

// --- factory -----------------------------------------------------------------

harness::EnginePtr make_sharded_engine(const std::string& variant,
                                       harness::Query q,
                                       std::size_t num_shards) {
  if (variant == "sharded-batch") {
    return std::make_unique<GrbShardedBatchEngine>(q, num_shards);
  }
  if (variant == "sharded-incremental") {
    return std::make_unique<GrbShardedIncrementalEngine>(q, num_shards);
  }
  throw grb::InvalidValue("unknown sharded engine variant: " + variant);
}

}  // namespace shard
