#include "shard/pipelined_engine.hpp"

#include <algorithm>
#include <memory>

#include "queries/q1.hpp"
#include "queries/q2.hpp"
#include "support/telemetry/trace.hpp"

namespace shard {

namespace {

using queries::GrbState;
using queries::Ranked;
using queries::TopK;
using U64 = std::uint64_t;

}  // namespace

GrbPipelinedEngine::GrbPipelinedEngine(harness::Query q, Mode mode,
                                       std::size_t num_shards,
                                       std::size_t depth,
                                       Partitioner::Scheme scheme)
    : query_(q),
      mode_(mode),
      depth_(depth),
      state_(num_shards, scheme) {
  if (depth_ == 0) {
    throw grb::InvalidValue("GrbPipelinedEngine: depth must be >= 1");
  }
}

GrbPipelinedEngine::~GrbPipelinedEngine() {
  // Join the workers before any state they touch (scores_, ring_, this)
  // goes away, then hand the arena its storage back on this thread.
  state_.end_pipeline();
  for (auto& v : scores_) grb::recycle(std::move(v));
  for (auto& slot : ring_) {
    for (auto& r : slot.reports) grb::recycle(std::move(r.batch_scores));
  }
}

std::string GrbPipelinedEngine::name() const {
  return mode_ == Mode::kBatch ? "GraphBLAS Pipelined Batch"
                               : "GraphBLAS Pipelined Incremental";
}

void GrbPipelinedEngine::load(const sm::SocialGraph& g) {
  state_.end_pipeline();  // a re-load restarts the epoch numbering
  submitted_ = merged_ = 0;
  state_.load(g);
  reset_merge_state();
}

std::string GrbPipelinedEngine::initial() {
  // Initial evaluation is a serial-barrier batch scan, exactly as the
  // sharded engines do it; it also seeds the merge thread's epoch-0 view
  // (metadata + score mirrors) that the pipelined updates advance from.
  const std::size_t n = state_.num_shards();
  std::vector<grb::Vector<U64>> scores(n, grb::Vector<U64>(0));
  state_.for_each_shard([&](std::size_t s) {
    scores[s] = query_ == harness::Query::kQ1
                    ? queries::q1_batch_scores(state_.shard(s))
                    : queries::q2_batch_scores(state_.shard(s));
  });

  reset_merge_state();
  const GrbState& s0 = state_.shard(0);
  const Index np = s0.num_posts();
  post_ids_.reserve(static_cast<std::size_t>(np));
  post_ts_.reserve(static_cast<std::size_t>(np));
  for (Index p = 0; p < np; ++p) {
    post_ids_.push_back(s0.post_id(p));
    post_ts_.push_back(s0.post_timestamp(p));
  }
  for (std::size_t s = 0; s < n; ++s) {
    const GrbState& st = state_.shard(s);
    const Index nc = st.num_comments();
    comment_ids_[s].reserve(static_cast<std::size_t>(nc));
    comment_ts_[s].reserve(static_cast<std::size_t>(nc));
    for (Index c = 0; c < nc; ++c) {
      comment_ids_[s].push_back(st.comment_id(c));
      comment_ts_[s].push_back(st.comment_timestamp(c));
    }
  }

  if (mode_ == Mode::kIncremental) {
    for (auto& v : scores_) grb::recycle(std::move(v));
    scores_ = std::move(scores);
    for (std::size_t s = 0; s < n; ++s) {
      mirror_[s].assign(query_ == harness::Query::kQ1
                            ? post_ids_.size()
                            : comment_ids_[s].size(),
                        0);
      const auto idx = scores_[s].indices();
      const auto val = scores_[s].values();
      for (std::size_t k = 0; k < idx.size(); ++k) {
        mirror_[s][static_cast<std::size_t>(idx[k])] = val[k];
      }
    }
    // The epoch-0 full scan doubles as the pruning-state build: exact
    // block bounds raised from the fresh mirrors, candidate pools filled
    // from the ranked walk (one counted full-scan rebuild per pool).
    top_ = queries::TopK(3);
    queries::PruneStats stats;
    if (query_ == harness::Query::kQ1) {
      bounds_.assign(1, queries::BlockBounds());
      pools_.assign(1, queries::CandidatePool());
      bounds_[0].reset(static_cast<Index>(post_ids_.size()));
      stats.pool_rebuilds = 1;
      for (std::size_t p = 0; p < post_ids_.size(); ++p) {
        U64 total = 0;
        for (std::size_t s = 0; s < n; ++s) total += mirror_[s][p];
        bounds_[0].raise(static_cast<Index>(p), total);
        const Ranked r{post_ids_[p], total, post_ts_[p]};
        top_.offer_guarded(r);
        pools_[0].offer_guarded(static_cast<Index>(p), r);
      }
    } else {
      bounds_.assign(n, queries::BlockBounds());
      pools_.assign(n, queries::CandidatePool());
      stats.pool_rebuilds = n;
      for (std::size_t s = 0; s < n; ++s) {
        bounds_[s].reset(static_cast<Index>(comment_ids_[s].size()));
        for (std::size_t c = 0; c < comment_ids_[s].size(); ++c) {
          bounds_[s].raise(static_cast<Index>(c), mirror_[s][c]);
          const Ranked r{comment_ids_[s][c], mirror_[s][c], comment_ts_[s][c]};
          top_.offer_guarded(r);
          pools_[s].offer_guarded(static_cast<Index>(c), r);
        }
      }
    }
    prune_stats_ += stats;
    queries::add_prune_counters(stats);
    return top_.answer();
  }

  // Batch mode: merged scan over the fresh per-shard score vectors (the
  // metadata arrays are exactly the shard states' dense id order).
  TopK top(3);
  if (query_ == harness::Query::kQ1) {
    for (std::size_t p = 0; p < post_ids_.size(); ++p) {
      U64 total = 0;
      for (const auto& partial : scores) {
        total += partial.at_or(static_cast<Index>(p), 0);
      }
      top.offer_guarded(Ranked{post_ids_[p], total, post_ts_[p]});
    }
  } else {
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t c = 0; c < comment_ids_[s].size(); ++c) {
        top.offer_guarded(Ranked{comment_ids_[s][c],
                                 scores[s].at_or(static_cast<Index>(c), 0),
                                 comment_ts_[s][c]});
      }
    }
  }
  for (auto& v : scores) grb::recycle(std::move(v));
  return top.answer();
}

void GrbPipelinedEngine::ensure_pipeline() {
  if (state_.pipeline_active()) return;
  const std::size_t n = state_.num_shards();
  ring_.clear();
  ring_.resize(depth_);
  for (auto& slot : ring_) slot.reports.resize(n);
  state_.begin_pipeline(
      depth_, [this](std::size_t s, std::uint64_t e, queries::GrbDelta delta) {
        // Shard worker, epoch e: reevaluate this shard and publish the
        // immutable report the merge thread will fold in under the
        // publication barrier. Everything the merge needs is copied out
        // here, while this worker owns the shard's state at epoch e; the
        // delta (and the changed-entries vector) retire into this worker's
        // arena before the epoch is marked retired.
        ShardReport& r = ring_[e % depth_].reports[s];
        r.changed.clear();
        r.new_comment_meta.clear();
        r.new_post_meta.clear();
        r.has_removals = delta.has_removals();
        const GrbState& st = state_.shard(s);
        r.new_comments = std::move(delta.new_comments);
        for (const Index c : r.new_comments) {
          r.new_comment_meta.emplace_back(st.comment_id(c),
                                          st.comment_timestamp(c));
        }
        if (s == 0) {
          r.new_posts = std::move(delta.new_posts);
          for (const Index p : r.new_posts) {
            r.new_post_meta.emplace_back(st.post_id(p), st.post_timestamp(p));
          }
        }
        if (mode_ == Mode::kIncremental) {
          grb::Vector<U64> changed =
              query_ == harness::Query::kQ1
                  ? queries::q1_incremental_update(st, delta, scores_[s])
                  : queries::q2_incremental_update(st, delta, scores_[s]);
          const auto idx = changed.indices();
          const auto val = changed.values();
          r.changed.reserve(idx.size());
          for (std::size_t k = 0; k < idx.size(); ++k) {
            r.changed.emplace_back(idx[k], val[k]);
          }
          grb::recycle(std::move(changed));
        } else {
          grb::recycle(std::move(r.batch_scores));
          r.batch_scores = query_ == harness::Query::kQ1
                               ? queries::q1_batch_scores(st)
                               : queries::q2_batch_scores(st);
        }
      });
}

std::uint64_t GrbPipelinedEngine::submit(const sm::ChangeSet& cs) {
  if (mode_ == Mode::kIncremental &&
      scores_.size() != state_.num_shards()) {
    throw grb::InvalidValue(
        "GrbPipelinedEngine: initial() must run before updates (no "
        "maintained scores to advance)");
  }
  if (in_flight() >= depth_) {
    throw grb::InvalidValue(
        "GrbPipelinedEngine::submit: window full (depth " +
        std::to_string(depth_) + ") — merge_one() the oldest epoch first");
  }
  ensure_pipeline();
  // Route + hand-off to the shard workers; epoch ids in traces are 1-based
  // (snapshot numbering), so this correlates with the apply/merge/publish
  // spans of the same change set.
  GRB_TRACE_SPAN("route", submitted_ + 1);
  const std::uint64_t e = state_.apply_async(cs);
  (void)e;  // == submitted_: epochs are dense from begin_pipeline
  return submitted_++;
}

GrbPipelinedEngine::Merged GrbPipelinedEngine::merge_one() {
  if (in_flight() == 0) {
    throw grb::InvalidValue(
        "GrbPipelinedEngine::merge_one: no epochs in flight — submit() a "
        "change set first");
  }
  const std::uint64_t e = merged_;
  return Merged{e, merge_next()};
}

std::string GrbPipelinedEngine::merge_next() {
  const std::uint64_t e = merged_;
  // Publisher-side merge (includes the publication-barrier wait below — the
  // span measures time-to-merged as the writer thread experiences it).
  GRB_TRACE_SPAN("merge", e + 1);
  state_.wait_epoch(e);  // publication barrier: every shard retired e
  EpochSlot& slot = ring_[e % depth_];
  const std::size_t n = state_.num_shards();

  // Advance the merge thread's epoch-consistent view: append newborn
  // metadata, then (incremental mode) fold every shard's changed entries
  // into the mirrors *before* any offer — the serial engine updates all of
  // scores_ in the fan-out before it starts offering, and the removal
  // re-rank reads every shard's scores.
  for (const auto& [id, ts] : slot.reports[0].new_post_meta) {
    post_ids_.push_back(id);
    post_ts_.push_back(ts);
  }
  for (std::size_t s = 0; s < n; ++s) {
    for (const auto& [id, ts] : slot.reports[s].new_comment_meta) {
      comment_ids_[s].push_back(id);
      comment_ts_[s].push_back(ts);
    }
  }
  const bool removals = std::any_of(
      slot.reports.begin(), slot.reports.end(),
      [](const ShardReport& r) { return r.has_removals; });

  std::string answer;
  if (mode_ == Mode::kIncremental) {
    // Resize the mirrors first so newborn entities are readable (at zero)
    // before any fold or offer touches them.
    for (std::size_t s = 0; s < n; ++s) {
      mirror_[s].resize(query_ == harness::Query::kQ1
                            ? post_ids_.size()
                            : comment_ids_[s].size(),
                        0);
    }
    queries::PruneStats stats;
    if (query_ == harness::Query::kQ1) {
      // Candidate construction identical to
      // GrbShardedIncrementalEngine::update — per-shard changed indices in
      // shard order, then the replicated new posts, deduplicated — built on
      // every epoch now: folding the union's merged totals keeps the
      // bounds valid and the pool values exact across change sets. The old
      // totals (read before the mirror fold) make the may-lower signal
      // exact per post, unlike the serial engine's epoch-level flag.
      std::vector<Index> candidates;
      for (std::size_t s = 0; s < n; ++s) {
        for (const auto& [i, v] : slot.reports[s].changed) {
          candidates.push_back(i);
        }
      }
      candidates.insert(candidates.end(), slot.reports[0].new_posts.begin(),
                        slot.reports[0].new_posts.end());
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
      bounds_[0].resize(static_cast<Index>(post_ids_.size()));
      const auto total_of = [&](Index p) {
        U64 total = 0;
        for (std::size_t s = 0; s < n; ++s) {
          total += mirror_[s][static_cast<std::size_t>(p)];
        }
        return total;
      };
      std::vector<U64> old_total(candidates.size());
      for (std::size_t k = 0; k < candidates.size(); ++k) {
        old_total[k] = total_of(candidates[k]);
      }
      for (std::size_t s = 0; s < n; ++s) {
        for (const auto& [i, v] : slot.reports[s].changed) {
          mirror_[s][static_cast<std::size_t>(i)] = v;
        }
      }
      for (std::size_t k = 0; k < candidates.size(); ++k) {
        const Index p = candidates[k];
        const U64 total = total_of(p);
        bounds_[0].note_change(p, total, total < old_total[k], total_of,
                               stats);
        const Ranked r{post_ids_[static_cast<std::size_t>(p)], total,
                       post_ts_[static_cast<std::size_t>(p)]};
        pools_[0].offer(p, r);
        if (!removals) top_.offer(r);
      }
      if (removals) pruned_q1_mirror_rerank(stats);
    } else {
      // Q2: shards own disjoint comment spaces, so fold + offer can run
      // per shard (the serial engine's fold-all-then-offer order commutes).
      for (std::size_t s = 0; s < n; ++s) {
        bounds_[s].resize(static_cast<Index>(comment_ids_[s].size()));
        const auto value_of = [&](Index c) {
          return mirror_[s][static_cast<std::size_t>(c)];
        };
        for (const auto& [i, v] : slot.reports[s].changed) {
          // Exact may-lower: the pre-overwrite mirror value is this
          // publisher's epoch-consistent old score.
          const U64 old = mirror_[s][static_cast<std::size_t>(i)];
          mirror_[s][static_cast<std::size_t>(i)] = v;
          bounds_[s].note_change(i, v, v < old, value_of, stats);
          const Ranked r{comment_ids_[s][static_cast<std::size_t>(i)], v,
                         comment_ts_[s][static_cast<std::size_t>(i)]};
          pools_[s].offer(i, r);
          if (!removals) top_.offer(r);
        }
        for (const Index c : slot.reports[s].new_comments) {
          const Ranked r{comment_ids_[s][static_cast<std::size_t>(c)],
                         mirror_[s][static_cast<std::size_t>(c)],
                         comment_ts_[s][static_cast<std::size_t>(c)]};
          pools_[s].offer(c, r);
          if (!removals) top_.offer(r);
        }
      }
      if (removals) pruned_q2_mirror_rerank(stats);
    }
    prune_stats_ += stats;
    queries::add_prune_counters(stats);
    answer = top_.answer();
  } else {
    // Batch mode: fresh merged scan over this epoch's reported score
    // vectors, then retire their storage (on this thread — the worker has
    // moved on).
    TopK top(3);
    if (query_ == harness::Query::kQ1) {
      for (std::size_t p = 0; p < post_ids_.size(); ++p) {
        U64 total = 0;
        for (std::size_t s = 0; s < n; ++s) {
          total += slot.reports[s].batch_scores.at_or(static_cast<Index>(p), 0);
        }
        top.offer_guarded(Ranked{post_ids_[p], total, post_ts_[p]});
      }
    } else {
      for (std::size_t s = 0; s < n; ++s) {
        const grb::Vector<U64>& scores = slot.reports[s].batch_scores;
        for (std::size_t c = 0; c < comment_ids_[s].size(); ++c) {
          top.offer_guarded(Ranked{comment_ids_[s][c],
                                   scores.at_or(static_cast<Index>(c), 0),
                                   comment_ts_[s][c]});
        }
      }
    }
    for (std::size_t s = 0; s < n; ++s) {
      grb::recycle(std::move(slot.reports[s].batch_scores));
    }
    answer = top.answer();
  }

  state_.release_epoch(e);
  ++merged_;
  return answer;
}

std::string GrbPipelinedEngine::update(const sm::ChangeSet& cs) {
  submit(cs);
  std::string answer;
  while (merged_ < submitted_) answer = merge_next();
  return answer;
}

std::vector<std::string> GrbPipelinedEngine::update_stream(
    const std::vector<sm::ChangeSet>& changes) {
  // An empty stream is a no-op: no epoch is reserved and the publication
  // barrier is never touched — in particular the pipeline (and its worker
  // threads) must not spin up for a caller that had nothing to ingest.
  if (changes.empty()) return {};
  // The overlap schedule: keep up to `depth` epochs in flight, draining the
  // oldest only when the window is full (or the stream ends). Routing and
  // merging both happen on this thread — the producer is the consumer —
  // while the per-shard apply/reevaluate work rides the worker threads.
  std::vector<std::string> answers;
  answers.reserve(changes.size());
  for (const sm::ChangeSet& cs : changes) {
    if (submitted_ - merged_ >= depth_) answers.push_back(merge_next());
    submit(cs);
  }
  while (merged_ < submitted_) answers.push_back(merge_next());
  return answers;
}

TopK GrbPipelinedEngine::scan_q1_mirror() const {
  TopK top(3);
  const std::size_t n = state_.num_shards();
  for (std::size_t p = 0; p < post_ids_.size(); ++p) {
    U64 total = 0;
    for (std::size_t s = 0; s < n; ++s) total += mirror_[s][p];
    top.offer_guarded(Ranked{post_ids_[p], total, post_ts_[p]});
  }
  return top;
}

TopK GrbPipelinedEngine::scan_q2_mirror() const {
  TopK top(3);
  for (std::size_t s = 0; s < state_.num_shards(); ++s) {
    for (std::size_t c = 0; c < comment_ids_[s].size(); ++c) {
      top.offer_guarded(Ranked{comment_ids_[s][c], mirror_[s][c],
                               comment_ts_[s][c]});
    }
  }
  return top;
}

void GrbPipelinedEngine::pruned_q1_mirror_rerank(queries::PruneStats& stats) {
  const std::size_t n = state_.num_shards();
  TopK top(3);
  pools_[0].seed(top, stats);
  queries::pruned_blocks(
      top, bounds_[0].num_blocks(),
      [&](Index b) { return bounds_[0].bound(b); },
      [&](Index b) {
        const Index hi = bounds_[0].block_hi(b);
        for (Index p = bounds_[0].block_lo(b); p < hi; ++p) {
          U64 total = 0;
          for (std::size_t s = 0; s < n; ++s) {
            total += mirror_[s][static_cast<std::size_t>(p)];
          }
          const Ranked r{post_ids_[static_cast<std::size_t>(p)], total,
                         post_ts_[static_cast<std::size_t>(p)]};
          top.offer_guarded(r);
          pools_[0].offer_guarded(p, r);
        }
      },
      stats);
  top_ = std::move(top);
}

void GrbPipelinedEngine::pruned_q2_mirror_rerank(queries::PruneStats& stats) {
  TopK top(3);
  // Seed from every shard's pool before any block decision — the stronger
  // the threshold, the more shards prune.
  for (const auto& pool : pools_) pool.seed(top, stats);
  for (std::size_t s = 0; s < state_.num_shards(); ++s) {
    queries::pruned_blocks(
        top, bounds_[s].num_blocks(),
        [&](Index b) { return bounds_[s].bound(b); },
        [&](Index b) {
          const Index hi = bounds_[s].block_hi(b);
          for (Index c = bounds_[s].block_lo(b); c < hi; ++c) {
            const Ranked r{comment_ids_[s][static_cast<std::size_t>(c)],
                           mirror_[s][static_cast<std::size_t>(c)],
                           comment_ts_[s][static_cast<std::size_t>(c)]};
            top.offer_guarded(r);
            pools_[s].offer_guarded(c, r);
          }
        },
        stats);
  }
  top_ = std::move(top);
}

void GrbPipelinedEngine::reset_merge_state() {
  const std::size_t n = state_.num_shards();
  post_ids_.clear();
  post_ts_.clear();
  comment_ids_.assign(n, {});
  comment_ts_.assign(n, {});
  mirror_.assign(n, {});
  top_ = TopK(3);
  bounds_.clear();
  pools_.clear();
}

harness::EnginePtr make_pipelined_engine(const std::string& variant,
                                         harness::Query q,
                                         std::size_t num_shards,
                                         std::size_t depth) {
  if (variant == "pipelined-batch") {
    return std::make_unique<GrbPipelinedEngine>(
        q, GrbPipelinedEngine::Mode::kBatch, num_shards, depth);
  }
  if (variant == "pipelined-incremental") {
    return std::make_unique<GrbPipelinedEngine>(
        q, GrbPipelinedEngine::Mode::kIncremental, num_shards, depth);
  }
  throw grb::InvalidValue("unknown pipelined engine variant: " + variant);
}

}  // namespace shard
