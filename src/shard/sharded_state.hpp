// ShardedGrbState: N independent per-shard GrbStates behind one
// ChangeSetRouter. Loading splits the initial graph; applying a change set
// routes it and applies every per-shard piece in parallel (one OpenMP
// worker per shard, each attributing its arena leases to its shard's stats
// domain). The per-shard states never communicate: comments (and their
// likes) are disjoint across shards, users/posts/friendships are replicated
// with identical dense ids everywhere, so the engines above merge results
// with plain sums (Q1) and a top-k union (Q2).
//
// Two ingestion modes share the routed representation (RoutedChangeSet —
// route once, apply many):
//   * Serial barrier mode — apply_change_set / apply_routed: all shards
//     apply epoch t, join, then t+1. Guarded by the state-wide
//     ReentrancyGuard exactly as before.
//   * Pipelined mode — begin_pipeline / apply_async / wait_epoch /
//     release_epoch: a bounded EpochPipeline with one dedicated worker
//     thread per shard lets shard i apply epoch t+1 while shard j still
//     works on t. The state-wide guard is deliberately *relaxed* here to
//     the per-shard guards inside each GrbState::apply_change_set (per-
//     shard epochs): cross-shard overlap is the point, per-shard order is
//     still enforced — a pipeline bug dispatching two epochs to one shard
//     concurrently aborts in Debug builds just like a serial misuse would.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "grb/detail/check.hpp"
#include "grb/detail/pipeline.hpp"
#include "queries/grb_state.hpp"
#include "shard/router.hpp"

namespace shard {

class ShardedGrbState {
 public:
  explicit ShardedGrbState(std::size_t num_shards,
                           Partitioner::Scheme scheme = Partitioner::Scheme::kHash)
      : router_(Partitioner(num_shards, scheme)) {}

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return router_.num_shards();
  }
  [[nodiscard]] const ChangeSetRouter& router() const noexcept {
    return router_;
  }
  [[nodiscard]] const queries::GrbState& shard(std::size_t s) const {
    return states_.at(s);
  }

  /// Splits `g` and builds every shard's matrices (parallel across shards).
  void load(const sm::SocialGraph& g);

  /// Routes `cs` and applies each piece to its shard (parallel across
  /// shards). Returns one GrbDelta per shard, index-aligned with shard ids;
  /// shards the set never touched get an empty delta.
  [[nodiscard]] std::vector<queries::GrbDelta> apply_change_set(
      const sm::ChangeSet& cs);

  /// Routes without applying. Single-producer: the router is stateful.
  [[nodiscard]] RoutedChangeSet route(const sm::ChangeSet& cs) {
    return router_.route(cs);
  }

  /// Applies an already-routed change set (serial barrier mode). Same
  /// semantics as apply_change_set minus the routing work.
  [[nodiscard]] std::vector<queries::GrbDelta> apply_routed(
      const RoutedChangeSet& routed);

  // --- Pipelined ingestion -------------------------------------------------

  /// Per-shard pipeline stage: runs on shard `shard`'s dedicated worker
  /// thread (that shard's arena stats domain active) right after the shard
  /// applied its piece of epoch `epoch`. The delta is handed over by value:
  /// the stage owns it, and its storage is recycled on the worker thread.
  using ShardStage = std::function<void(
      std::size_t shard, std::uint64_t epoch, queries::GrbDelta delta)>;

  /// Starts the ingestion pipeline: `depth` epochs of window, one worker
  /// thread per shard, `stage` invoked per (shard, epoch). Requires a
  /// loaded state and no active pipeline.
  void begin_pipeline(std::size_t depth, ShardStage stage);

  /// Submits a routed change set as the next epoch. Throws if the window
  /// already holds `depth` un-released epochs (drain first) or if a stage
  /// failed. Returns the epoch number (dense from 0 per begin_pipeline).
  std::uint64_t apply_async(RoutedChangeSet routed);

  /// Routes and submits in one step (the common producer-side call).
  std::uint64_t apply_async(const sm::ChangeSet& cs) {
    return apply_async(router_.route(cs));
  }

  /// Publication barrier: returns once every shard has retired `epoch`
  /// (applied it and finished its stage). Rethrows stage failures.
  void wait_epoch(std::uint64_t epoch);

  /// Frees `epoch`'s window slot. Only after wait_epoch(epoch).
  void release_epoch(std::uint64_t epoch);

  /// Epochs shard `s` has retired (its per-shard epoch cursor); 0 with no
  /// active pipeline.
  [[nodiscard]] std::uint64_t shard_epoch(std::size_t s) const;

  /// Epochs submitted but not yet released.
  [[nodiscard]] std::size_t epochs_in_flight() const;

  [[nodiscard]] bool pipeline_active() const noexcept {
    return pipeline_ != nullptr;
  }

  /// Drains every published epoch, joins the workers and tears the
  /// pipeline down. Serial mode (and load()) become legal again. Idempotent.
  void end_pipeline();

  /// Runs f(shard_id) for every shard — in parallel when the thread budget
  /// allows — with the shard's arena stats domain active. The engines run
  /// their per-shard reevaluations through this so shard work is always
  /// attributed. f must only touch shard-local state; exceptions are
  /// collected and the first one rethrown after the join.
  void for_each_shard(const std::function<void(std::size_t)>& f);

  /// Completed load/apply scopes (Debug builds; always 0 in Release). The
  /// pipelined-ingestion arc will publish answers tagged with this.
  [[nodiscard]] std::uint64_t apply_epoch() const noexcept {
    return apply_guard_.epoch();
  }

 private:
  void require_no_pipeline(const char* what) const;

  ChangeSetRouter router_;
  std::vector<queries::GrbState> states_;
  /// Debug reentrancy/epoch guard on the serial apply path (no-op in
  /// Release). Pipelined mode relaxes this to the per-shard guards.
  grb::detail::ReentrancyGuard apply_guard_;
  /// Pipelined-mode state. ring_ holds one RoutedChangeSet per window slot
  /// (slot = epoch % depth): the producer writes a slot between reserve()
  /// and publish(), workers read it until the epoch is released — the
  /// EpochPipeline window protocol is exactly the slot-ownership protocol.
  ShardStage stage_;
  std::vector<RoutedChangeSet> ring_;
  /// Declared last: its destructor joins the worker threads before any
  /// state they touch is torn down.
  std::unique_ptr<grb::detail::EpochPipeline> pipeline_;
};

}  // namespace shard
