// ShardedGrbState: N independent per-shard GrbStates behind one
// ChangeSetRouter. Loading splits the initial graph; applying a change set
// routes it and applies every per-shard piece in parallel (one OpenMP
// worker per shard, each attributing its arena leases to its shard's stats
// domain). The per-shard states never communicate: comments (and their
// likes) are disjoint across shards, users/posts/friendships are replicated
// with identical dense ids everywhere, so the engines above merge results
// with plain sums (Q1) and a top-k union (Q2).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "grb/detail/check.hpp"
#include "queries/grb_state.hpp"
#include "shard/router.hpp"

namespace shard {

class ShardedGrbState {
 public:
  explicit ShardedGrbState(std::size_t num_shards,
                           Partitioner::Scheme scheme = Partitioner::Scheme::kHash)
      : router_(Partitioner(num_shards, scheme)) {}

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return router_.num_shards();
  }
  [[nodiscard]] const ChangeSetRouter& router() const noexcept {
    return router_;
  }
  [[nodiscard]] const queries::GrbState& shard(std::size_t s) const {
    return states_.at(s);
  }

  /// Splits `g` and builds every shard's matrices (parallel across shards).
  void load(const sm::SocialGraph& g);

  /// Routes `cs` and applies each piece to its shard (parallel across
  /// shards). Returns one GrbDelta per shard, index-aligned with shard ids;
  /// shards the set never touched get an empty delta.
  [[nodiscard]] std::vector<queries::GrbDelta> apply_change_set(
      const sm::ChangeSet& cs);

  /// Runs f(shard_id) for every shard — in parallel when the thread budget
  /// allows — with the shard's arena stats domain active. The engines run
  /// their per-shard reevaluations through this so shard work is always
  /// attributed. f must only touch shard-local state; exceptions are
  /// collected and the first one rethrown after the join.
  void for_each_shard(const std::function<void(std::size_t)>& f);

  /// Completed load/apply scopes (Debug builds; always 0 in Release). The
  /// pipelined-ingestion arc will publish answers tagged with this.
  [[nodiscard]] std::uint64_t apply_epoch() const noexcept {
    return apply_guard_.epoch();
  }

 private:
  ChangeSetRouter router_;
  std::vector<queries::GrbState> states_;
  /// Debug reentrancy/epoch guard on the apply path (no-op in Release).
  grb::detail::ReentrancyGuard apply_guard_;
};

}  // namespace shard
