#include "shard/sharded_state.hpp"

#include "grb/detail/check.hpp"
#include "grb/detail/parallel.hpp"

namespace shard {

void ShardedGrbState::for_each_shard(
    const std::function<void(std::size_t)>& f) {
  // parallel_tasks owns the omp pragma (one worker per shard, dynamic
  // dispatch), the exception-collecting join, and the debug overlap claim
  // per shard id; the stats-domain scope rides inside each task so every
  // lease a shard's worker takes is attributed to that shard.
  grb::detail::parallel_tasks(
      static_cast<grb::Index>(num_shards()), [&](grb::Index s) {
        grb::detail::ScopedStatsDomain domain(static_cast<int>(s));
        f(static_cast<std::size_t>(s));
      });
}

void ShardedGrbState::load(const sm::SocialGraph& g) {
  const grb::detail::ReentrancyScope scope(apply_guard_,
                                           "ShardedGrbState::load");
  const std::vector<sm::SocialGraph> parts = router_.split_graph(g);
  states_.assign(num_shards(), queries::GrbState{});
  for_each_shard([&](std::size_t s) {
    states_[s] = queries::GrbState::from_graph(parts[s]);
  });
}

std::vector<queries::GrbDelta> ShardedGrbState::apply_change_set(
    const sm::ChangeSet& cs) {
  // The apply path is externally serial (one change set at a time); the
  // epoch guard turns an accidental concurrent or reentrant apply — easy to
  // introduce once the pipelined-ingestion work overlaps change sets — into
  // an immediate debug abort instead of silently corrupted shard states.
  const grb::detail::ReentrancyScope scope(apply_guard_,
                                           "ShardedGrbState::apply_change_set");
  const std::vector<sm::ChangeSet> parts = router_.route(cs);
  std::vector<queries::GrbDelta> deltas(num_shards());
  for_each_shard([&](std::size_t s) {
    deltas[s] = states_[s].apply_change_set(parts[s]);
  });
  return deltas;
}

}  // namespace shard
