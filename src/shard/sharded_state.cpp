#include "shard/sharded_state.hpp"

#include <algorithm>
#include <exception>
#include <functional>
#include <mutex>

#include "grb/detail/parallel.hpp"

namespace shard {

void ShardedGrbState::for_each_shard(
    const std::function<void(std::size_t)>& f) {
  const std::size_t n = num_shards();
  const auto run_one = [&](std::size_t s) {
    grb::detail::ScopedStatsDomain domain(static_cast<int>(s));
    f(s);
  };
#ifdef _OPENMP
  const int team = static_cast<int>(
      std::min<std::size_t>(
          n, static_cast<std::size_t>(grb::detail::effective_threads())));
  if (team > 1) {
    std::exception_ptr first_error;
    std::mutex error_mu;
    const auto ni = static_cast<std::int64_t>(n);
#pragma omp parallel for num_threads(team) schedule(dynamic, 1)
    for (std::int64_t s = 0; s < ni; ++s) {
      try {
        run_one(static_cast<std::size_t>(s));
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }
#endif
  for (std::size_t s = 0; s < n; ++s) run_one(s);
}

void ShardedGrbState::load(const sm::SocialGraph& g) {
  const std::vector<sm::SocialGraph> parts = router_.split_graph(g);
  states_.assign(num_shards(), queries::GrbState{});
  for_each_shard([&](std::size_t s) {
    states_[s] = queries::GrbState::from_graph(parts[s]);
  });
}

std::vector<queries::GrbDelta> ShardedGrbState::apply_change_set(
    const sm::ChangeSet& cs) {
  const std::vector<sm::ChangeSet> parts = router_.route(cs);
  std::vector<queries::GrbDelta> deltas(num_shards());
  for_each_shard([&](std::size_t s) {
    deltas[s] = states_[s].apply_change_set(parts[s]);
  });
  return deltas;
}

}  // namespace shard
