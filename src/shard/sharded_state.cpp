#include "shard/sharded_state.hpp"

#include <string>
#include <vector>

#include "grb/detail/check.hpp"
#include "grb/detail/parallel.hpp"
#include "grb/detail/workspace.hpp"
#include "support/telemetry/trace.hpp"

namespace shard {

namespace telemetry = grbsm::telemetry;

void ShardedGrbState::for_each_shard(
    const std::function<void(std::size_t)>& f) {
  // parallel_tasks owns the omp pragma (one worker per shard, dynamic
  // dispatch), the exception-collecting join, and the debug overlap claim
  // per shard id; the stats-domain scope rides inside each task so every
  // lease a shard's worker takes is attributed to that shard.
  grb::detail::parallel_tasks(
      static_cast<grb::Index>(num_shards()), [&](grb::Index s) {
        grb::detail::ScopedStatsDomain domain(static_cast<int>(s));
        f(static_cast<std::size_t>(s));
      });
}

void ShardedGrbState::load(const sm::SocialGraph& g) {
  require_no_pipeline("load");
  const grb::detail::ReentrancyScope scope(apply_guard_,
                                           "ShardedGrbState::load");
  const std::vector<sm::SocialGraph> parts = router_.split_graph(g);
  states_.assign(num_shards(), queries::GrbState{});
  for_each_shard([&](std::size_t s) {
    states_[s] = queries::GrbState::from_graph(parts[s]);
  });
}

std::vector<queries::GrbDelta> ShardedGrbState::apply_change_set(
    const sm::ChangeSet& cs) {
  return apply_routed(router_.route(cs));
}

std::vector<queries::GrbDelta> ShardedGrbState::apply_routed(
    const RoutedChangeSet& routed) {
  require_no_pipeline("apply_routed");
  // The serial apply path is externally serial (one change set at a time);
  // the epoch guard turns an accidental concurrent or reentrant apply into
  // an immediate debug abort instead of silently corrupted shard states.
  // Pipelined mode bypasses this state-wide guard by design — per-shard
  // order is then enforced by each GrbState's own guard.
  const grb::detail::ReentrancyScope scope(apply_guard_,
                                           "ShardedGrbState::apply_routed");
  if (routed.parts.size() != num_shards()) {
    throw grb::InvalidValue(
        "ShardedGrbState::apply_routed: routed for " +
        std::to_string(routed.parts.size()) + " shards, state has " +
        std::to_string(num_shards()));
  }
  std::vector<queries::GrbDelta> deltas(num_shards());
  for_each_shard([&](std::size_t s) {
    deltas[s] = states_[s].apply_change_set(routed.parts[s]);
  });
  return deltas;
}

void ShardedGrbState::begin_pipeline(std::size_t depth, ShardStage stage) {
  if (pipeline_) {
    throw grb::InvalidValue(
        "ShardedGrbState::begin_pipeline: pipeline already active");
  }
  if (depth == 0) {
    throw grb::InvalidValue(
        "ShardedGrbState::begin_pipeline: depth must be >= 1");
  }
  if (states_.empty()) {
    throw grb::InvalidValue(
        "ShardedGrbState::begin_pipeline: load() a graph first");
  }
  stage_ = std::move(stage);
  ring_.assign(depth, RoutedChangeSet{});
  // Per-shard reevaluate timings under stable dotted names, resolved once
  // here so the worker records through cached references (the registry
  // mutex never sits on the apply path). "apply" trace spans carry the
  // published 1-based epoch id (engine epoch e publishes snapshot e + 1).
  telemetry::Histogram* apply_all =
      &telemetry::Registry::instance().histogram("epoch.apply_us");
  std::vector<telemetry::Histogram*> apply_per_shard;
  apply_per_shard.reserve(num_shards());
  for (std::size_t s = 0; s < num_shards(); ++s) {
    apply_per_shard.push_back(&telemetry::Registry::instance().histogram(
        "epoch.shard" + std::to_string(s) + ".apply_us"));
  }
  pipeline_ = std::make_unique<grb::detail::EpochPipeline>(
      num_shards(), depth,
      [this, apply_all, apply_per_shard = std::move(apply_per_shard)](
          std::size_t s, std::uint64_t e) {
        // Worker thread for shard s, epoch e: apply this shard's piece of
        // the routed set, then hand the delta to the stage — all with the
        // shard's arena stats domain active so leases stay attributed.
        // GrbState::apply_change_set's own reentrancy guard still watches
        // the per-shard apply order.
        grb::detail::ScopedStatsDomain domain(static_cast<int>(s));
        telemetry::SpanScope span("apply", e + 1, apply_per_shard[s],
                                  apply_all);
        const RoutedChangeSet& routed = ring_[e % ring_.size()];
        queries::GrbDelta delta = states_[s].apply_change_set(routed.parts[s]);
        if (stage_) stage_(s, e, std::move(delta));
      });
}

std::uint64_t ShardedGrbState::apply_async(RoutedChangeSet routed) {
  if (!pipeline_) {
    throw grb::InvalidValue(
        "ShardedGrbState::apply_async: begin_pipeline() first");
  }
  if (routed.parts.size() != num_shards()) {
    throw grb::InvalidValue(
        "ShardedGrbState::apply_async: routed for " +
        std::to_string(routed.parts.size()) + " shards, state has " +
        std::to_string(num_shards()));
  }
  // reserve() throws on a full window, so the slot write below only ever
  // targets a slot whose previous epoch has been released.
  const std::uint64_t e = pipeline_->reserve();
  ring_[e % ring_.size()] = std::move(routed);
  pipeline_->publish(e);
  return e;
}

void ShardedGrbState::wait_epoch(std::uint64_t epoch) {
  if (!pipeline_) {
    throw grb::InvalidValue(
        "ShardedGrbState::wait_epoch: no active pipeline");
  }
  pipeline_->wait_retired(epoch);
}

void ShardedGrbState::release_epoch(std::uint64_t epoch) {
  if (!pipeline_) {
    throw grb::InvalidValue(
        "ShardedGrbState::release_epoch: no active pipeline");
  }
  pipeline_->release(epoch);
}

std::uint64_t ShardedGrbState::shard_epoch(std::size_t s) const {
  if (!pipeline_) return 0;
  return pipeline_->retired_by(s);
}

std::size_t ShardedGrbState::epochs_in_flight() const {
  if (!pipeline_) return 0;
  return pipeline_->in_flight();
}

void ShardedGrbState::end_pipeline() {
  pipeline_.reset();  // drains published epochs, joins the workers
  ring_.clear();
  stage_ = nullptr;
}

void ShardedGrbState::require_no_pipeline(const char* what) const {
  if (pipeline_) {
    throw grb::InvalidValue(std::string("ShardedGrbState::") + what +
                            ": illegal while the ingestion pipeline is "
                            "active — end_pipeline() first");
  }
}

}  // namespace shard
