// Pipelined counterparts of the sharded engines: the same Q1/Q2 semantics
// and the same merged answers, with the update phase running through
// ShardedGrbState's ingestion pipeline instead of the serial barrier —
// shard i applies/reevaluates change set t+1 while shard j still works on
// t, up to `depth` change sets in flight.
//
// Determinism (the whole point): the producer thread is also the merge
// thread, and it never reads live shard state — a pipelined shard may
// already be epochs ahead of the answer being merged. Instead each shard's
// stage publishes an immutable per-epoch ShardReport (changed score
// entries, newborn post/comment metadata), and the merge thread maintains
// its own *mirror* of every shard's maintained score vector plus
// append-only post/comment metadata, advanced one epoch at a time from
// those reports. Mirror value == scores_[s].at_or(i, 0) of the serial
// engine at the same epoch, and the metadata arrays reproduce the dense id
// order of the shard states at that epoch, so the merge replays exactly
// the offer sequences of GrbShardedIncrementalEngine::update (including
// the removal re-rank's full `ranks_before` scan order) — answers are
// byte-identical to the serial schedule at every shard count × depth.
// This mirror is the "double-buffered per-shard score state": workers
// mutate the live copy at epoch t+k while the publisher reads its own
// epoch-t copy, with the EpochPipeline publication barrier as the only
// hand-off between them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "harness/engine.hpp"
#include "queries/top_k.hpp"
#include "shard/sharded_state.hpp"

namespace shard {

using queries::Index;

class GrbPipelinedEngine final : public harness::Engine {
 public:
  enum class Mode { kBatch, kIncremental };

  GrbPipelinedEngine(harness::Query q, Mode mode, std::size_t num_shards,
                     std::size_t depth,
                     Partitioner::Scheme scheme = Partitioner::Scheme::kHash);
  ~GrbPipelinedEngine() override;

  [[nodiscard]] std::string name() const override;
  void load(const sm::SocialGraph& g) override;
  std::string initial() override;
  std::string update(const sm::ChangeSet& cs) override;
  std::vector<std::string> update_stream(
      const std::vector<sm::ChangeSet>& changes) override;

  // --- Streaming building blocks (the daemon's epoch-pinned read API) -----
  // update()/update_stream() are compositions of these two; a long-running
  // service drives them directly so it can keep the window full forever:
  // submit change sets as they arrive, merge (and publish) the oldest epoch
  // whenever the window is full or the ingest queue idles.

  /// Submits one change set as the next epoch (starting the pipeline on
  /// first use). Returns the epoch number, dense from 0 per load(). Throws
  /// if the window already holds depth() un-merged epochs — merge_one()
  /// first — or if initial() has not produced the epoch-0 view yet.
  std::uint64_t submit(const sm::ChangeSet& cs);

  /// The oldest submitted-but-unmerged epoch's answer, tagged with its
  /// epoch number. Blocks on the publication barrier until every shard has
  /// retired that epoch, folds its reports into the publisher-side mirrors
  /// and frees its window slot. Throws grb::InvalidValue when nothing is
  /// in flight.
  struct Merged {
    std::uint64_t epoch = 0;
    std::string answer;
  };
  Merged merge_one();

  /// Epochs submitted but not yet merged (bounded by depth()).
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return static_cast<std::size_t>(submitted_ - merged_);
  }

  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  /// The underlying state — only safe to inspect with no epochs in flight
  /// (after update()/update_stream() return, the pipeline is drained).
  [[nodiscard]] const ShardedGrbState& state() const { return state_; }
  /// Cumulative pruning activity of the merge thread's removal re-ranks
  /// (incremental mode). Same in-flight caveat as state().
  [[nodiscard]] const queries::PruneStats& prune_stats() const {
    return prune_stats_;
  }

 private:
  /// What one shard's stage publishes for one epoch. Immutable once the
  /// epoch is retired; the merge thread reads it under the publication
  /// barrier and never touches the live shard state.
  struct ShardReport {
    /// Incremental mode: maintained-score entries whose value changed this
    /// epoch (index, new value) — the exact content of the serial engine's
    /// `changed[s]` vector.
    std::vector<std::pair<Index, std::uint64_t>> changed;
    /// Batch mode: this epoch's full recomputed score vector.
    grb::Vector<std::uint64_t> batch_scores{0};
    /// Newborn entities (dense ids) with their external id + timestamp,
    /// captured on the worker while the ids are fresh.
    std::vector<Index> new_comments;
    std::vector<std::pair<sm::NodeId, sm::Timestamp>> new_comment_meta;
    std::vector<Index> new_posts;  // filled by shard 0 only (replicated)
    std::vector<std::pair<sm::NodeId, sm::Timestamp>> new_post_meta;
    bool has_removals = false;
  };
  struct EpochSlot {
    std::vector<ShardReport> reports;  // index = shard
  };

  void ensure_pipeline();
  /// Waits for the oldest un-merged epoch, folds its reports into the
  /// mirrors, replays the serial merge, releases the epoch and returns its
  /// answer.
  std::string merge_next();
  [[nodiscard]] queries::TopK scan_q1_mirror() const;
  [[nodiscard]] queries::TopK scan_q2_mirror() const;
  void pruned_q1_mirror_rerank(queries::PruneStats& stats);
  void pruned_q2_mirror_rerank(queries::PruneStats& stats);
  void reset_merge_state();

  harness::Query query_;
  Mode mode_;
  std::size_t depth_;
  ShardedGrbState state_;

  /// Worker-side per-shard maintained scores (incremental mode): shard s's
  /// worker thread owns scores_[s] while the pipeline runs; the merge
  /// thread reads only mirror_[s].
  std::vector<grb::Vector<std::uint64_t>> scores_;

  /// Report ring, one slot per window epoch (slot = epoch % depth): shard
  /// workers fill reports[s] before retiring the epoch, the merge thread
  /// consumes them after wait_epoch and frees the slot via release_epoch.
  std::vector<EpochSlot> ring_;
  std::uint64_t submitted_ = 0;
  std::uint64_t merged_ = 0;

  // --- merge-thread-only state (the publisher's epoch-consistent view) ---
  std::vector<sm::NodeId> post_ids_;          // dense post id -> external id
  std::vector<sm::Timestamp> post_ts_;        // dense post id -> timestamp
  std::vector<std::vector<sm::NodeId>> comment_ids_;    // per shard
  std::vector<std::vector<sm::Timestamp>> comment_ts_;  // per shard
  /// Dense mirror of scores_[s]: mirror_[s][i] == scores_[s].at_or(i, 0)
  /// at the merged epoch (incremental mode only).
  std::vector<std::vector<std::uint64_t>> mirror_;
  queries::TopK top_{3};
  /// Pruning state over the mirrors, folded publisher-side per epoch so the
  /// merge thread stays the engines' only owner (no shared mutable state on
  /// any reader path). Q1: one bounds/pool pair over merged totals (index
  /// 0); Q2: one pair per shard's comment space. Incremental mode only.
  std::vector<queries::BlockBounds> bounds_;
  std::vector<queries::CandidatePool> pools_;
  queries::PruneStats prune_stats_;
};

/// Factory used by the harness registry: variant is "pipelined-batch" or
/// "pipelined-incremental"; num_shards >= 1, depth >= 1.
harness::EnginePtr make_pipelined_engine(const std::string& variant,
                                         harness::Query q,
                                         std::size_t num_shards,
                                         std::size_t depth);

}  // namespace shard
