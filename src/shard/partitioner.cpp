#include "shard/partitioner.hpp"

#include "grb/types.hpp"
#include "support/rng.hpp"

namespace shard {

Partitioner::Partitioner(std::size_t num_shards, Scheme scheme)
    : num_shards_(num_shards), scheme_(scheme) {
  if (num_shards_ == 0) {
    throw grb::InvalidValue("Partitioner: shard count must be >= 1");
  }
}

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  return grbsm::support::SplitMix64(x).next();
}

std::size_t Partitioner::shard_of_comment(sm::NodeId id) const noexcept {
  if (num_shards_ == 1) return 0;
  const std::uint64_t key =
      scheme_ == Scheme::kHash ? splitmix64(id) : static_cast<std::uint64_t>(id);
  return static_cast<std::size_t>(key % num_shards_);
}

}  // namespace shard
