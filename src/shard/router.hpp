// ChangeSetRouter: splits the initial graph and every subsequent
// sm::ChangeSet into per-shard pieces under the Partitioner's placement.
//
// Routing rules (one pass over the ops, relative order preserved):
//   AddUser / AddPost / AddFriendship / RemoveFriendship — broadcast to all
//     shards (users, posts and the friendship matrix are replicated).
//   AddComment — rewritten to hang directly off its *root post* (the router
//     resolves comment parents through a global comment → root-post map,
//     since the parent comment may live on a different shard) and sent to
//     the owner shard only.
//   AddLikes / RemoveLikes — sent to the shard owning the comment.
//
// Netting is preserved: every op for a given likes edge routes to the one
// shard owning the comment, and friendship ops reach every shard, both in
// the original order — so each shard's GrbState::apply_change_set nets
// exactly the global net effect restricted to that shard. Shards untouched
// by a change set receive an empty ChangeSet (engines still step them, so
// per-shard answers stay aligned with the step index).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "model/change.hpp"
#include "model/social_graph.hpp"
#include "shard/partitioner.hpp"

namespace shard {

/// One change set, routed: per-shard pieces (index = shard id) plus the
/// router-stamped sequence number (0-based count of sets routed since the
/// last split_graph). Route once, apply many: both the serial path
/// (ShardedGrbState::apply_routed) and the ingestion pipeline
/// (ShardedGrbState::apply_async) consume this value without re-splitting,
/// so routing work is paid exactly once per change set regardless of how
/// many times — or on which thread — it is applied.
struct RoutedChangeSet {
  std::uint64_t seq = 0;
  std::vector<sm::ChangeSet> parts;
};

class ChangeSetRouter {
 public:
  explicit ChangeSetRouter(Partitioner partitioner)
      : partitioner_(partitioner) {}

  [[nodiscard]] const Partitioner& partitioner() const noexcept {
    return partitioner_;
  }
  [[nodiscard]] std::size_t num_shards() const noexcept {
    return partitioner_.num_shards();
  }

  /// Splits the initial graph into one SocialGraph per shard (users/posts/
  /// friendships replicated, comments+likes on their owner shard) and
  /// registers every comment's root post for later parent resolution.
  [[nodiscard]] std::vector<sm::SocialGraph> split_graph(
      const sm::SocialGraph& g);

  /// Splits one change set into a RoutedChangeSet (per-shard pieces,
  /// index = shard id, stamped with the routing sequence number). New
  /// comments are registered as they stream through, so a comment may be
  /// referenced (as a parent or like target) later in the same set. The
  /// router is stateful (comment registry, sequence stamp): route() is a
  /// single-producer operation — exactly the pipeline's producer thread.
  [[nodiscard]] RoutedChangeSet route(const sm::ChangeSet& cs);

  /// Owner shard of a known comment; throws grb::InvalidValue for ids the
  /// router has never seen.
  [[nodiscard]] std::size_t shard_of_comment(sm::NodeId id) const;

  /// Root post of a known comment (external ids).
  [[nodiscard]] sm::NodeId root_post_of(sm::NodeId comment) const;

 private:
  Partitioner partitioner_;
  /// comment external id -> root post external id, across all shards. The
  /// router is the only place that still sees the global comment tree; the
  /// per-shard states never need a cross-shard parent lookup.
  std::unordered_map<sm::NodeId, sm::NodeId> comment_root_;
  /// Change sets routed since the last split_graph (the RoutedChangeSet
  /// sequence stamp). A throwing route() does not consume a number.
  std::uint64_t next_seq_ = 0;
};

}  // namespace shard
