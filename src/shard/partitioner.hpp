// Partitioner: the sharding subsystem's placement function. Comments are the
// partitioned entity class — each comment (and with it its likes row and its
// contribution to its root post's Q1 score) lives on exactly one shard.
// Users, posts, and the friendship matrix are *replicated* on every shard:
// Q2 scores a comment on the friendship subgraph of its likers, so the owner
// shard needs arbitrary friendship rows, and replicating users/posts keeps
// the dense user/post id spaces identical across shards (every shard assigns
// dense ids in the same arrival order), which is what makes the Q1 merge a
// plain elementwise sum and the per-shard id remap a comment-only concern.
//
// Two placement schemes:
//   kHash  — splitmix64 of the external comment id, modulo shard count.
//            Balanced regardless of id clustering; the default.
//   kRange — external comment id modulo shard count (round-robin over the
//            id space). Deterministic contiguous-id striping, useful for
//            reasoning about boundary behaviour in tests.
//
// Placement depends only on (external id, shard count, scheme) — never on
// arrival order — so routing a change stream is stable across runs and
// engines, a prerequisite for the byte-identical differential guarantee.
#pragma once

#include <cstddef>
#include <cstdint>

#include "model/social_graph.hpp"

namespace shard {

class Partitioner {
 public:
  enum class Scheme { kHash, kRange };

  explicit Partitioner(std::size_t num_shards, Scheme scheme = Scheme::kHash);

  [[nodiscard]] std::size_t num_shards() const noexcept { return num_shards_; }
  [[nodiscard]] Scheme scheme() const noexcept { return scheme_; }

  /// Owner shard of a comment (by external id). Users and posts have no
  /// owner — they are replicated on every shard.
  [[nodiscard]] std::size_t shard_of_comment(sm::NodeId id) const noexcept;

 private:
  std::size_t num_shards_;
  Scheme scheme_;
};

/// splitmix64 finaliser — the mixing function behind Scheme::kHash, exposed
/// for tests that want to predict placements.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) noexcept;

}  // namespace shard
