#include "shard/router.hpp"

#include <string>
#include <variant>

#include "grb/types.hpp"

namespace shard {

namespace {
[[noreturn]] void unknown_comment(sm::NodeId id) {
  throw grb::InvalidValue("ChangeSetRouter: unknown comment (id " +
                          std::to_string(id) + ")");
}
}  // namespace

std::size_t ChangeSetRouter::shard_of_comment(sm::NodeId id) const {
  if (!comment_root_.contains(id)) unknown_comment(id);
  return partitioner_.shard_of_comment(id);
}

sm::NodeId ChangeSetRouter::root_post_of(sm::NodeId comment) const {
  const auto it = comment_root_.find(comment);
  if (it == comment_root_.end()) unknown_comment(comment);
  return it->second;
}

std::vector<sm::SocialGraph> ChangeSetRouter::split_graph(
    const sm::SocialGraph& g) {
  const std::size_t n = num_shards();
  std::vector<sm::SocialGraph> parts(n);
  // A re-load starts a fresh comment registry and sequence numbering; stale
  // mappings from a previous graph would mis-route (or fail to reject) ids
  // it never had.
  comment_root_.clear();
  next_seq_ = 0;

  // Replicated entities first, in global dense order, so every shard assigns
  // the same dense user/post ids as the unsharded state does.
  for (const sm::User& u : g.users()) {
    for (auto& p : parts) p.add_user(u.id);
  }
  for (const sm::Post& p : g.posts()) {
    for (auto& part : parts) part.add_post(p.id, p.timestamp);
  }

  // Comments land on their owner shard, re-parented to the root post (the
  // true parent may be a comment on another shard; only the root matters to
  // the queries). Likes follow their comment.
  for (const sm::Comment& c : g.comments()) {
    const sm::NodeId root_id = g.post(c.root_post).id;
    comment_root_.emplace(c.id, root_id);
    sm::SocialGraph& owner = parts[partitioner_.shard_of_comment(c.id)];
    owner.add_comment(c.id, c.timestamp, /*parent_is_comment=*/false, root_id);
    for (const sm::DenseId liker : c.likers) {
      owner.add_likes_unchecked(g.user(liker).id, c.id);
    }
  }

  // Friendships are replicated; emit each undirected pair once.
  for (sm::DenseId u = 0; u < static_cast<sm::DenseId>(g.num_users()); ++u) {
    for (const sm::DenseId v : g.user(u).friends) {
      if (u < v) {
        for (auto& p : parts) {
          p.add_friendship_unchecked(g.user(u).id, g.user(v).id);
        }
      }
    }
  }
  return parts;
}

RoutedChangeSet ChangeSetRouter::route(const sm::ChangeSet& cs) {
  const std::size_t n = num_shards();
  std::vector<sm::ChangeSet> parts(n);
  const auto broadcast = [&](const sm::ChangeOp& op) {
    for (auto& p : parts) p.ops.push_back(op);
  };

  // Comments created by this set are staged here and merged into the
  // registry only once the whole set routed: a throw mid-set (unknown
  // entity) must not leave phantom registrations for comments no shard
  // ever applied. Lookups check the stage first so later ops in the same
  // set can reference them.
  std::unordered_map<sm::NodeId, sm::NodeId> staged;
  const auto staged_root = [&](sm::NodeId comment) {
    const auto it = staged.find(comment);
    if (it != staged.end()) return it->second;
    return root_post_of(comment);
  };
  const auto staged_shard = [&](sm::NodeId comment) {
    if (!staged.contains(comment) && !comment_root_.contains(comment)) {
      unknown_comment(comment);
    }
    return partitioner_.shard_of_comment(comment);
  };

  for (const sm::ChangeOp& op : cs.ops) {
    std::visit(
        [&](const auto& o) {
          using T = std::decay_t<decltype(o)>;
          if constexpr (std::is_same_v<T, sm::AddUser> ||
                        std::is_same_v<T, sm::AddPost> ||
                        std::is_same_v<T, sm::AddFriendship> ||
                        std::is_same_v<T, sm::RemoveFriendship>) {
            broadcast(op);
          } else if constexpr (std::is_same_v<T, sm::AddComment>) {
            // Resolve the root post up front (the parent comment may be
            // foreign to the owner shard).
            const sm::NodeId root =
                o.parent_is_comment ? staged_root(o.parent) : o.parent;
            staged.emplace(o.id, root);
            sm::AddComment rewritten = o;
            rewritten.parent_is_comment = false;
            rewritten.parent = root;
            parts[partitioner_.shard_of_comment(o.id)].ops.emplace_back(
                rewritten);
          } else if constexpr (std::is_same_v<T, sm::AddLikes>) {
            parts[staged_shard(o.comment)].ops.push_back(op);
          } else {
            static_assert(std::is_same_v<T, sm::RemoveLikes>);
            parts[staged_shard(o.comment)].ops.push_back(op);
          }
        },
        op);
  }
  comment_root_.merge(staged);
  // Registration and the sequence stamp commit together, only on success.
  return RoutedChangeSet{next_seq_++, std::move(parts)};
}

}  // namespace shard
