// Sharded counterparts of the paper's GraphBLAS engines: the same Q1/Q2
// semantics, with the matrices partitioned across N per-shard GrbStates and
// reevaluation fanned out one shard per OpenMP worker.
//
//   GrbShardedBatchEngine       — full per-shard reevaluation each step,
//                                 merged per answer.
//   GrbShardedIncrementalEngine — per-shard delta maintenance (Alg. 2 /
//                                 Fig. 4b per shard) with a global top-k.
//
// Merge semantics (the determinism guarantee):
//   Q1 — posts are replicated, so every shard maintains a *partial* score
//     vector over the same dense post id space; the global score is the
//     elementwise sum (exact: uint64 adds, each comment counted on exactly
//     one shard). The answer scan walks posts in dense order, identical to
//     the unsharded scan.
//   Q2 — comments are disjoint across shards and scored identically to the
//     unsharded engine (every shard holds the full friendship matrix), so
//     the global top-k is the k-best of the per-shard candidates.
//   Ties break through queries::ranks_before — (score desc, timestamp desc,
//     id asc), a strict total order over distinct entity ids — which makes
//     TopK insertion order-independent and the merged answer byte-identical
//     to GrbBatchEngine / GrbIncrementalEngine at every shard count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/engine.hpp"
#include "queries/top_k.hpp"
#include "shard/sharded_state.hpp"

namespace shard {

using queries::Index;

class GrbShardedBatchEngine final : public harness::Engine {
 public:
  GrbShardedBatchEngine(harness::Query q, std::size_t num_shards,
                        Partitioner::Scheme scheme = Partitioner::Scheme::kHash)
      : query_(q), state_(num_shards, scheme) {}

  [[nodiscard]] std::string name() const override {
    return "GraphBLAS Sharded Batch";
  }
  void load(const sm::SocialGraph& g) override;
  std::string initial() override;
  std::string update(const sm::ChangeSet& cs) override;

  [[nodiscard]] const ShardedGrbState& state() const { return state_; }

 private:
  std::string evaluate();

  harness::Query query_;
  ShardedGrbState state_;
};

class GrbShardedIncrementalEngine final : public harness::Engine {
 public:
  GrbShardedIncrementalEngine(
      harness::Query q, std::size_t num_shards,
      Partitioner::Scheme scheme = Partitioner::Scheme::kHash)
      : query_(q), state_(num_shards, scheme) {}
  /// The maintained per-shard score vectors' storage came from the arena;
  /// hand it back when the engine retires (same contract as the unsharded
  /// incremental engine).
  ~GrbShardedIncrementalEngine() override;

  [[nodiscard]] std::string name() const override {
    return "GraphBLAS Sharded Incremental";
  }
  void load(const sm::SocialGraph& g) override;
  std::string initial() override;
  std::string update(const sm::ChangeSet& cs) override;

  [[nodiscard]] const ShardedGrbState& state() const { return state_; }
  /// Cumulative pruning activity of this engine's removal re-ranks.
  [[nodiscard]] const queries::PruneStats& prune_stats() const {
    return prune_stats_;
  }

 private:
  void pruned_q1_rerank(queries::PruneStats& stats);
  void pruned_q2_rerank(queries::PruneStats& stats);

  harness::Query query_;
  ShardedGrbState state_;
  /// scores_[s]: shard s's maintained score vector — partial post scores
  /// for Q1 (summed across shards on merge), full scores of shard-owned
  /// comments for Q2.
  std::vector<grb::Vector<std::uint64_t>> scores_;
  queries::TopK top_{3};
  /// Pruning state, owned by the update thread. Q1 ranks merged totals, so
  /// one bounds/pool pair covers the replicated post space (index 0); Q2
  /// comments are disjoint per shard, so each shard gets its own pair.
  std::vector<queries::BlockBounds> bounds_;
  std::vector<queries::CandidatePool> pools_;
  queries::PruneStats prune_stats_;
};

/// Factory used by the harness registry: variant is "sharded-batch" or
/// "sharded-incremental"; num_shards >= 1.
harness::EnginePtr make_sharded_engine(const std::string& variant,
                                       harness::Query q,
                                       std::size_t num_shards);

}  // namespace shard
