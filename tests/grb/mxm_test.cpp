#include <gtest/gtest.h>

#include <cstdint>

#include "grb/grb.hpp"
#include "support/rng.hpp"

namespace {

using grb::Bool;
using grb::Index;
using grb::Matrix;
using U64 = std::uint64_t;

Matrix<U64> random_matrix(Index rows, Index cols, std::size_t nnz,
                          std::uint64_t seed) {
  grbsm::support::Xoshiro256 rng(seed);
  std::vector<grb::Tuple<U64>> tuples;
  tuples.reserve(nnz);
  for (std::size_t k = 0; k < nnz; ++k) {
    tuples.push_back({rng.bounded(rows), rng.bounded(cols),
                      rng.bounded(9) + 1});
  }
  return Matrix<U64>::build(rows, cols, std::move(tuples), grb::Plus<U64>{});
}

/// Dense-reference product for verification.
std::vector<std::vector<U64>> dense_product(const Matrix<U64>& a,
                                            const Matrix<U64>& b) {
  std::vector<std::vector<U64>> out(a.nrows(),
                                    std::vector<U64>(b.ncols(), 0));
  for (Index i = 0; i < a.nrows(); ++i) {
    const auto ac = a.row_cols(i);
    const auto av = a.row_vals(i);
    for (std::size_t k = 0; k < ac.size(); ++k) {
      const auto bc = b.row_cols(ac[k]);
      const auto bv = b.row_vals(ac[k]);
      for (std::size_t s = 0; s < bc.size(); ++s) {
        out[i][bc[s]] += av[k] * bv[s];
      }
    }
  }
  return out;
}

TEST(Mxm, SmallKnownProduct) {
  // [1 2] [5 6]   [19 22]
  // [3 4] [7 8] = [43 50]
  const auto a =
      Matrix<U64>::build(2, 2, {{0, 0, 1}, {0, 1, 2}, {1, 0, 3}, {1, 1, 4}});
  const auto b =
      Matrix<U64>::build(2, 2, {{0, 0, 5}, {0, 1, 6}, {1, 0, 7}, {1, 1, 8}});
  Matrix<U64> c(2, 2);
  grb::mxm(c, grb::plus_times_semiring<U64>(), a, b);
  EXPECT_EQ(c.at(0, 0).value(), 19u);
  EXPECT_EQ(c.at(0, 1).value(), 22u);
  EXPECT_EQ(c.at(1, 0).value(), 43u);
  EXPECT_EQ(c.at(1, 1).value(), 50u);
}

TEST(Mxm, IdentityIsNeutral) {
  const auto a = random_matrix(20, 20, 60, 7);
  std::vector<grb::Tuple<U64>> eye;
  for (Index i = 0; i < 20; ++i) eye.push_back({i, i, 1});
  const auto id = Matrix<U64>::build(20, 20, std::move(eye));
  Matrix<U64> left(20, 20), right(20, 20);
  grb::mxm(left, grb::plus_times_semiring<U64>(), id, a);
  grb::mxm(right, grb::plus_times_semiring<U64>(), a, id);
  EXPECT_EQ(left, a);
  EXPECT_EQ(right, a);
}

TEST(Mxm, DimensionMismatchThrows) {
  const Matrix<U64> a(2, 3), b(4, 2);
  Matrix<U64> c(2, 2);
  EXPECT_THROW(grb::mxm(c, grb::plus_times_semiring<U64>(), a, b),
               grb::DimensionMismatch);
}

TEST(Mxm, EmptyOperandYieldsEmpty) {
  const Matrix<U64> a(3, 4);
  const auto b = random_matrix(4, 5, 10, 3);
  Matrix<U64> c(3, 5);
  grb::mxm(c, grb::plus_times_semiring<U64>(), a, b);
  EXPECT_EQ(c.nvals(), 0u);
}

TEST(Mxm, PlusPairCountsStructuralMatches) {
  // C(i,j) = |{k : A(i,k) ∧ B(k,j)}| regardless of values.
  const auto a = Matrix<U64>::build(1, 3, {{0, 0, 42}, {0, 1, 7}, {0, 2, 9}});
  const auto b =
      Matrix<U64>::build(3, 1, {{0, 0, 11}, {1, 0, 13}, {2, 0, 17}});
  Matrix<U64> c(1, 1);
  grb::mxm(c, grb::plus_pair_semiring<U64>(), a, b);
  EXPECT_EQ(c.at(0, 0).value(), 3u);
}

TEST(Mxm, NewFriendsIncidenceProduct) {
  // The Q2 incremental Step 1 shape: Likes (comments×users) × NewFriends
  // (users×friendships) counts endpoints per (comment, friendship).
  const auto likes = Matrix<U64>::build(
      2, 4, {{0, 1, 1}, {0, 2, 1}, {1, 0, 1}, {1, 2, 1}, {1, 3, 1}});
  // One new friendship between users 2 and 3.
  const auto nf = Matrix<U64>::build(4, 1, {{2, 0, 1}, {3, 0, 1}});
  Matrix<U64> ac(2, 1);
  grb::mxm(ac, grb::plus_times_semiring<U64>(), likes, nf);
  EXPECT_EQ(ac.at(0, 0).value(), 1u);  // comment 0: only user 2 likes it
  EXPECT_EQ(ac.at(1, 0).value(), 2u);  // comment 1: both endpoints
}

struct MxmCase {
  Index m, k, n;
  std::size_t nnz_a, nnz_b;
  std::uint64_t seed;
};

class MxmRandomSweep : public ::testing::TestWithParam<MxmCase> {};

TEST_P(MxmRandomSweep, MatchesDenseReference) {
  const auto p = GetParam();
  const auto a = random_matrix(p.m, p.k, p.nnz_a, p.seed);
  const auto b = random_matrix(p.k, p.n, p.nnz_b, p.seed + 1);
  Matrix<U64> c(p.m, p.n);
  grb::mxm(c, grb::plus_times_semiring<U64>(), a, b);
  const auto ref = dense_product(a, b);
  for (Index i = 0; i < p.m; ++i) {
    for (Index j = 0; j < p.n; ++j) {
      EXPECT_EQ(c.at(i, j).value_or(0), ref[i][j])
          << "at (" << i << "," << j << ")";
    }
  }
}

TEST_P(MxmRandomSweep, SerialAndParallelAgree) {
  const auto p = GetParam();
  const auto a = random_matrix(p.m, p.k, p.nnz_a, p.seed + 2);
  const auto b = random_matrix(p.k, p.n, p.nnz_b, p.seed + 3);
  Matrix<U64> c1(p.m, p.n), c8(p.m, p.n);
  {
    grb::ThreadGuard g(1);
    grb::mxm(c1, grb::plus_times_semiring<U64>(), a, b);
  }
  {
    grb::ThreadGuard g(8);
    grb::mxm(c8, grb::plus_times_semiring<U64>(), a, b);
  }
  EXPECT_EQ(c1, c8);
}

INSTANTIATE_TEST_SUITE_P(
    Random, MxmRandomSweep,
    ::testing::Values(MxmCase{3, 3, 3, 5, 5, 11},
                      MxmCase{10, 20, 15, 60, 80, 12},
                      MxmCase{50, 40, 30, 400, 300, 13},
                      MxmCase{1, 100, 1, 50, 50, 14},
                      MxmCase{100, 1, 100, 80, 80, 15}));

TEST(Mxm, DistributesOverEwiseAdd) {
  // A(B ⊕ C) = AB ⊕ AC for plus_times.
  const auto a = random_matrix(12, 12, 50, 21);
  const auto b = random_matrix(12, 12, 50, 22);
  const auto c = random_matrix(12, 12, 50, 23);
  Matrix<U64> bc(12, 12), left(12, 12), ab(12, 12), ac(12, 12),
      right(12, 12);
  grb::eWiseAdd(bc, grb::Plus<U64>{}, b, c);
  grb::mxm(left, grb::plus_times_semiring<U64>(), a, bc);
  grb::mxm(ab, grb::plus_times_semiring<U64>(), a, b);
  grb::mxm(ac, grb::plus_times_semiring<U64>(), a, c);
  grb::eWiseAdd(right, grb::Plus<U64>{}, ab, ac);
  EXPECT_EQ(left, right);
}

}  // namespace
