// Death/negative tests for the debug concurrency-correctness layer
// (grb/detail/check.hpp): workspace lease misuse (double-detach,
// use-after-detach, cross-thread detach, leak-at-trim), chunk-grid write
// overlap, and apply-path reentrancy — plus functional coverage of the
// parallel_tasks fan-out driver the shard layer runs on.
//
// In Release builds (NDEBUG) the checks are compiled out by design; the
// death tests skip themselves and the misuse paths are instead exercised
// for "must not crash" behaviour, which pins the compiled-out contract.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "grb/context.hpp"
#include "grb/detail/check.hpp"
#include "grb/detail/parallel.hpp"
#include "grb/detail/workspace.hpp"
#include "model/change.hpp"
#include "queries/grb_state.hpp"
#include "shard/sharded_state.hpp"

namespace {

using grb::detail::workspace;

class CheckDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Death tests fork; "threadsafe" re-execs the binary so the child does
    // not inherit this process's OpenMP pool mid-flight.
    GTEST_FLAG_SET(death_test_style, "threadsafe");
  }
};

TEST_F(CheckDeathTest, DoubleDetachDies) {
#if GRB_CHECKS_ENABLED
  EXPECT_DEATH(
      {
        auto lease = workspace().lease<int>(256);
        auto first = lease.detach();
        auto second = lease.detach();
        (void)first;
        (void)second;
      },
      "double-detach");
#else
  GTEST_SKIP() << "ownership checks compile out in Release";
#endif
}

TEST_F(CheckDeathTest, UseAfterDetachDies) {
#if GRB_CHECKS_ENABLED
  EXPECT_DEATH(
      {
        auto lease = workspace().lease<int>(256);
        auto buf = lease.detach();
        (void)buf;
        lease->push_back(1);
      },
      "use-after-detach");
#else
  GTEST_SKIP() << "ownership checks compile out in Release";
#endif
}

TEST_F(CheckDeathTest, CrossThreadDetachDies) {
#if GRB_CHECKS_ENABLED
  EXPECT_DEATH(
      {
        auto lease = workspace().lease<int>(256);
        std::thread other([&] {
          auto buf = lease.detach();
          (void)buf;
        });
        other.join();
      },
      "cross-thread detach");
#else
  GTEST_SKIP() << "ownership checks compile out in Release";
#endif
}

TEST_F(CheckDeathTest, OverlappingChunkClaimsDie) {
#if GRB_CHECKS_ENABLED
  EXPECT_DEATH(
      {
        grb::detail::OverlapChecker grid("test-grid");
        auto a = grid.claim(0, 10);
        auto b = grid.claim(5, 15);
        (void)a;
        (void)b;
      },
      "overlapping chunk-grid writes");
#else
  GTEST_SKIP() << "overlap checks compile out in Release";
#endif
}

TEST_F(CheckDeathTest, ReentrantScopeDies) {
#if GRB_CHECKS_ENABLED
  EXPECT_DEATH(
      {
        grb::detail::ReentrancyGuard guard;
        grb::detail::ReentrancyScope outer(guard, "test-entry");
        grb::detail::ReentrancyScope inner(guard, "test-entry");
      },
      "reentrant/concurrent entry");
#else
  GTEST_SKIP() << "reentrancy checks compile out in Release";
#endif
}

// trim_workspace() with a live lease must REPORT the leak (owning thread +
// size class), never crash — trimming around a deliberate long-lived lease
// is legal. Release builds compile the ledger out; the call must still be
// safe with the lease outstanding.
TEST(CheckTest, TrimWithLiveLeaseReportsLeakInsteadOfCrashing) {
  auto lease = workspace().lease<double>(512);
  lease->assign(100, 1.0);
#if GRB_CHECKS_ENABLED
  testing::internal::CaptureStderr();
  grb::trim_workspace();
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("leak-at-trim"), std::string::npos) << err;
  EXPECT_NE(err.find("owner-thread"), std::string::npos) << err;
  EXPECT_NE(err.find("size-class"), std::string::npos) << err;
#else
  grb::trim_workspace();
#endif
  // The lease stays fully usable after the trim and returns cleanly.
  EXPECT_EQ(lease->size(), 100u);
}

TEST(CheckTest, LeaseLedgerTracksLiveLeases) {
  const std::size_t before = workspace().live_leases();
  {
    auto a = workspace().lease<int>(128);
    auto b = workspace().lease<float>(128);
#if GRB_CHECKS_ENABLED
    EXPECT_EQ(workspace().live_leases(), before + 2);
#else
    EXPECT_EQ(workspace().live_leases(), 0u);
#endif
    (void)a;
    (void)b;
  }
  EXPECT_EQ(workspace().live_leases(), GRB_CHECKS_ENABLED ? before : 0u);
}

TEST(CheckTest, MovedFromLeaseIsInert) {
  auto a = workspace().lease<int>(256);
  auto b = std::move(a);
  b->push_back(7);
  EXPECT_EQ(b->back(), 7);
  // The moved-from lease neither double-releases nor trips the ledger.
  const auto buf = b.detach();
  EXPECT_EQ(buf.back(), 7);
}

TEST(CheckTest, DisjointClaimsAndReuseAfterReleasePass) {
  grb::detail::OverlapChecker grid("test-grid");
  {
    [[maybe_unused]] auto a = grid.claim(0, 10);
    [[maybe_unused]] auto b = grid.claim(10, 20);
    [[maybe_unused]] auto c = grid.claim(30, 40);
  }
  // Ranges freed by scope exit are claimable again.
  [[maybe_unused]] auto d = grid.claim(0, 40);
  SUCCEED();
}

TEST(CheckTest, ApplyEpochCountsCompletedApplies) {
  queries::GrbState state;
  const sm::ChangeSet empty;
  auto d1 = state.apply_change_set(empty);
  auto d2 = state.apply_change_set(empty);
  (void)d1;
  (void)d2;
#if GRB_CHECKS_ENABLED
  EXPECT_EQ(state.apply_epoch(), 2u);
#else
  EXPECT_EQ(state.apply_epoch(), 0u);  // compiled out
#endif
}

TEST(ParallelTasksTest, RunsEveryTaskExactlyOnce) {
  const grb::ThreadGuard pin(4);
  constexpr grb::Index kTasks = 64;
  std::vector<int> ran(kTasks, 0);
  grb::detail::parallel_tasks(kTasks,
                              [&](grb::Index i) { ran[i] += 1; });
  for (grb::Index i = 0; i < kTasks; ++i) EXPECT_EQ(ran[i], 1) << i;
}

TEST(ParallelTasksTest, CollectsAndRethrowsFirstException) {
  const grb::ThreadGuard pin(4);
  std::atomic<int> survivors{0};
  EXPECT_THROW(
      grb::detail::parallel_tasks(16,
                                  [&](grb::Index i) {
                                    if (i == 7) {
                                      throw std::runtime_error("task 7 boom");
                                    }
                                    survivors.fetch_add(1);
                                  }),
      std::runtime_error);
  // The join completed: every non-throwing task still ran.
  EXPECT_EQ(survivors.load(), 15);
}

TEST(ParallelTasksTest, SerialFallbackPropagatesExceptions) {
  const grb::ThreadGuard pin(1);
  EXPECT_THROW(grb::detail::parallel_tasks(
                   4,
                   [](grb::Index i) {
                     if (i == 2) throw std::runtime_error("serial boom");
                   }),
               std::runtime_error);
}

}  // namespace
