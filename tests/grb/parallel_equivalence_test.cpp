// Differential parallel-equivalence harness: every vector kernel is run at
// Context thread counts {1, 2, hardware} on seeded random inputs and the
// outputs are asserted bit-identical (operator== compares the sorted
// index/value arrays directly) against the single-thread reference.
//
// This is the contract the two-pass sparse pipeline makes: the chunk grid
// and per-chunk work order depend only on operand shapes, never the
// delivered team, and everything non-chunked (the push scatter's per-thread
// accumulators) combines under exact commutative monoids. Explicitly pinned
// thread counts are honoured above the visible processor count
// (grb::threads_pinned), so this suite drives real multi-thread teams even
// on single-core CI runners; with OpenMP off every count degrades to the
// same serial path and the assertions hold trivially.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "grb/grb.hpp"
#include "support/rng.hpp"

namespace {

using grb::Bool;
using grb::Index;
using grb::Matrix;
using grb::Vector;
using grbsm::support::Xoshiro256;
using U64 = std::uint64_t;

// Above detail::kParallelThreshold so the parallel branches actually run.
constexpr Index kN = 10000;
constexpr int kSeeds = 50;

int hardware_threads() {
  // The unpinned default (all hardware threads), floored at 4 so small CI
  // runners still exercise a real team via deliberate oversubscription.
  const int hw = grb::threads();
  return hw < 4 ? 4 : hw;
}

/// Runs `make_output` at 1, 2, and hardware_threads() and asserts the 2-
/// and hw-thread results equal the single-thread reference bit for bit.
template <typename F>
void expect_thread_invariant(F&& make_output, const char* what, int seed) {
  decltype(make_output()) ref;
  {
    grb::ThreadGuard guard(1);
    ref = make_output();
  }
  for (const int t : {2, hardware_threads()}) {
    grb::ThreadGuard guard(t);
    const auto got = make_output();
    EXPECT_EQ(ref, got) << what << ": thread count " << t
                        << " diverged from serial (seed " << seed << ")";
  }
}

Vector<U64> random_vector(Xoshiro256& rng, Index n, double density) {
  std::vector<Index> idx;
  std::vector<U64> val;
  for (Index i = 0; i < n; ++i) {
    if (rng.chance(density)) {
      idx.push_back(i);
      val.push_back(rng.range(0, 1000));
    }
  }
  return Vector<U64>::build(n, std::move(idx), std::move(val));
}

Vector<Bool> random_mask(Xoshiro256& rng, Index n, double density) {
  std::vector<Index> idx;
  std::vector<Bool> val;
  for (Index i = 0; i < n; ++i) {
    if (rng.chance(density)) {
      idx.push_back(i);
      // Include false entries so value vs structural masking differ.
      val.push_back(rng.chance(0.7) ? Bool{1} : Bool{0});
    }
  }
  return Vector<Bool>::build(n, std::move(idx), std::move(val));
}

Matrix<U64> random_matrix(Xoshiro256& rng, Index nrows, Index ncols,
                          std::size_t nnz) {
  std::vector<grb::Tuple<U64>> tuples;
  tuples.reserve(nnz);
  for (std::size_t k = 0; k < nnz; ++k) {
    tuples.push_back({rng.bounded(nrows), rng.bounded(ncols),
                      rng.range(1, 100)});
  }
  return Matrix<U64>::build(nrows, ncols, std::move(tuples), grb::Plus<U64>{});
}

grb::Descriptor random_descriptor(Xoshiro256& rng) {
  grb::Descriptor desc;
  desc.replace = rng.chance(0.5);
  desc.complement_mask = rng.chance(0.5);
  desc.structural_mask = rng.chance(0.5);
  return desc;
}

TEST(ParallelEquivalence, MxvPullDense) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    Xoshiro256 rng(1000 + seed);
    const auto a = random_matrix(rng, kN, kN, 5 * kN);
    const auto u = random_vector(rng, kN, 0.5);  // dense-dispatch side
    expect_thread_invariant(
        [&] {
          Vector<U64> w(kN);
          grb::mxv(w, grb::plus_second_semiring<U64>(), a, u);
          return w;
        },
        "mxv pull (dense u)", seed);
  }
}

TEST(ParallelEquivalence, MxvPullSparse) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    Xoshiro256 rng(2000 + seed);
    const auto a = random_matrix(rng, kN, kN, 5 * kN);
    const auto u = random_vector(rng, kN, 0.01);  // sparse-dispatch side
    expect_thread_invariant(
        [&] {
          Vector<U64> w(kN);
          grb::mxv(w, grb::min_second_semiring<U64>(), a, u);
          return w;
        },
        "mxv pull (sparse u)", seed);
  }
}

TEST(ParallelEquivalence, MxvMasked) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    Xoshiro256 rng(3000 + seed);
    const auto a = random_matrix(rng, kN, kN, 5 * kN);
    const auto u = random_vector(rng, kN, 0.3);
    const auto mask = random_mask(rng, kN, 0.4);
    const auto desc = random_descriptor(rng);
    const auto base = random_vector(rng, kN, 0.3);
    expect_thread_invariant(
        [&] {
          Vector<U64> w = base;
          grb::mxv(w, &mask, grb::Plus<U64>{}, grb::plus_times_semiring<U64>(),
                   a, u, desc);
          return w;
        },
        "mxv masked+accum", seed);
  }
}

TEST(ParallelEquivalence, VxmPush) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    Xoshiro256 rng(4000 + seed);
    const auto a = random_matrix(rng, kN, kN, 5 * kN);
    const auto u = random_vector(rng, kN, 0.2);  // frontier-sized
    expect_thread_invariant(
        [&] {
          Vector<U64> w(kN);
          grb::vxm(w, grb::plus_times_semiring<U64>(), u, a);
          return w;
        },
        "vxm push", seed);
  }
}

TEST(ParallelEquivalence, VxmMaskedBfsShape) {
  // The BFS descriptor combination: complemented structural mask + replace.
  for (int seed = 0; seed < kSeeds; ++seed) {
    Xoshiro256 rng(5000 + seed);
    const auto a = random_matrix(rng, kN, kN, 5 * kN);
    const auto u = random_vector(rng, kN, 0.1);
    const auto visited = random_mask(rng, kN, 0.3);
    grb::Descriptor not_visited;
    not_visited.complement_mask = true;
    not_visited.replace = true;
    not_visited.structural_mask = true;
    expect_thread_invariant(
        [&] {
          Vector<U64> w(kN);
          grb::vxm(w, &visited, grb::NoAccum{}, grb::lor_land_semiring<U64>(),
                   u, a, not_visited);
          return w;
        },
        "vxm masked (BFS shape)", seed);
  }
}

TEST(ParallelEquivalence, ReduceRows) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    Xoshiro256 rng(6000 + seed);
    const auto a = random_matrix(rng, kN, kN, 5 * kN);
    expect_thread_invariant(
        [&] {
          Vector<U64> w(kN);
          grb::reduce_rows(w, grb::plus_monoid<U64>(), a);
          return w;
        },
        "reduce_rows", seed);
  }
}

TEST(ParallelEquivalence, ReduceCols) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    Xoshiro256 rng(7000 + seed);
    const auto a = random_matrix(rng, kN, kN, 5 * kN);
    expect_thread_invariant(
        [&] {
          Vector<U64> w(kN);
          grb::reduce_cols(w, grb::plus_monoid<U64>(), a);
          return w;
        },
        "reduce_cols", seed);
  }
}

TEST(ParallelEquivalence, ReduceScalar) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    Xoshiro256 rng(8000 + seed);
    const auto a = random_matrix(rng, kN, kN, 5 * kN);
    const auto u = random_vector(rng, kN, 0.5);
    expect_thread_invariant(
        [&] {
          return std::pair{
              grb::reduce_scalar<U64>(grb::plus_monoid<U64>(), a),
              grb::reduce_scalar<U64>(grb::max_monoid<U64>(), u)};
        },
        "reduce_scalar", seed);
  }
}

TEST(ParallelEquivalence, EwiseAddVector) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    Xoshiro256 rng(9000 + seed);
    const auto u = random_vector(rng, kN, 0.5);
    const auto v = random_vector(rng, kN, 0.5);
    expect_thread_invariant(
        [&] {
          Vector<U64> w(kN);
          grb::eWiseAdd(w, grb::Plus<U64>{}, u, v);
          return w;
        },
        "eWiseAdd vector", seed);
  }
}

TEST(ParallelEquivalence, EwiseMultVector) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    Xoshiro256 rng(10000 + seed);
    const auto u = random_vector(rng, kN, 0.5);
    const auto v = random_vector(rng, kN, 0.5);
    expect_thread_invariant(
        [&] {
          Vector<U64> w(kN);
          grb::eWiseMult(w, grb::Times<U64>{}, u, v);
          return w;
        },
        "eWiseMult vector", seed);
  }
}

TEST(ParallelEquivalence, ApplyVector) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    Xoshiro256 rng(11000 + seed);
    const auto u = random_vector(rng, kN, 0.6);
    expect_thread_invariant(
        [&] {
          Vector<U64> w(kN);
          grb::apply(w, grb::TimesScalar<U64>{10}, u);
          return w;
        },
        "apply vector", seed);
  }
}

TEST(ParallelEquivalence, AssignMasked) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    Xoshiro256 rng(12000 + seed);
    const auto base = random_vector(rng, kN, 0.4);
    const auto u = random_vector(rng, kN, 0.4);
    const auto mask = random_mask(rng, kN, 0.4);
    const auto desc = random_descriptor(rng);
    expect_thread_invariant(
        [&] {
          Vector<U64> w = base;
          grb::assign(w, &mask, grb::Plus<U64>{}, u, desc);
          return w;
        },
        "assign masked", seed);
  }
}

TEST(ParallelEquivalence, AssignSubset) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    Xoshiro256 rng(13000 + seed);
    const auto base = random_vector(rng, kN, 0.4);
    // A sorted subset map of half the positions.
    std::vector<Index> idx;
    for (Index i = 0; i < kN; i += 2) idx.push_back(i);
    const auto u = random_vector(rng, static_cast<Index>(idx.size()), 0.5);
    expect_thread_invariant(
        [&] {
          Vector<U64> w = base;
          grb::assign_subset(w, grb::NoAccum{}, idx, u);
          return w;
        },
        "assign subset", seed);
  }
}

TEST(ParallelEquivalence, ExtractSubvector) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    Xoshiro256 rng(14000 + seed);
    const auto u = random_vector(rng, kN, 0.5);
    std::vector<Index> idx;
    for (Index k = 0; k < kN; ++k) idx.push_back(rng.bounded(kN));
    expect_thread_invariant(
        [&] {
          Vector<U64> w(static_cast<Index>(idx.size()));
          grb::extract(w, u, idx);
          return w;
        },
        "extract subvector", seed);
  }
}

TEST(ParallelEquivalence, SelectVector) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    Xoshiro256 rng(15000 + seed);
    const auto u = random_vector(rng, kN, 0.6);
    const U64 cutoff = rng.range(100, 900);
    expect_thread_invariant(
        [&] {
          Vector<U64> w(kN);
          grb::select(
              w, [&](Index, Index, const U64& x) { return x >= cutoff; }, u);
          return w;
        },
        "select vector", seed);
  }
}

}  // namespace
