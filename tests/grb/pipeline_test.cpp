// Unit tests for the EpochPipeline hand-off primitive (grb/detail/
// pipeline.hpp): per-worker epoch ordering, window enforcement, the
// publication barrier, exception propagation and drain-on-destruction —
// plus the ThreadSanitizer regression pair for the producer→worker slot
// hand-off. The suite name carries "Pipeline" so the tsan CI lane's
// oversubscribed re-run (-R 'parallel|shard|workspace|Pipeline') picks it
// up.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "grb/detail/check.hpp"
#include "grb/detail/pipeline.hpp"
#include "grb/types.hpp"

namespace {

using grb::detail::EpochPipeline;

TEST(PipelinePrimitive, EveryWorkerSeesEveryEpochInOrder) {
  constexpr std::size_t kWorkers = 3;
  constexpr std::size_t kDepth = 4;
  constexpr std::uint64_t kEpochs = 25;
  std::vector<std::vector<std::uint64_t>> seen(kWorkers);
  std::mutex mu;
  EpochPipeline pipe(kWorkers, kDepth,
                     [&](std::size_t w, std::uint64_t e) {
                       const std::lock_guard<std::mutex> lock(mu);
                       seen[w].push_back(e);
                     });
  std::uint64_t oldest = 0;
  for (std::uint64_t e = 0; e < kEpochs; ++e) {
    if (pipe.in_flight() >= kDepth) {
      pipe.wait_retired(oldest);
      pipe.release(oldest++);
    }
    ASSERT_EQ(pipe.reserve(), e);
    pipe.publish(e);
  }
  pipe.wait_retired(kEpochs - 1);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    ASSERT_EQ(seen[w].size(), kEpochs) << "worker " << w;
    for (std::uint64_t e = 0; e < kEpochs; ++e) {
      EXPECT_EQ(seen[w][e], e) << "worker " << w;
    }
    EXPECT_EQ(pipe.retired_by(w), kEpochs);
  }
  EXPECT_EQ(pipe.min_retired(), kEpochs);
}

TEST(PipelinePrimitive, FullWindowThrowsInsteadOfBlocking) {
  // The producer is also the drain thread; a blocking reserve() would
  // deadlock, so a full window is a hard error. Workers retiring epochs
  // does NOT free the window — only release() does.
  EpochPipeline pipe(1, 2, [](std::size_t, std::uint64_t) {});
  pipe.publish(pipe.reserve());
  pipe.publish(pipe.reserve());
  pipe.wait_retired(1);  // both retired, neither released
  EXPECT_THROW((void)pipe.reserve(), grb::InvalidValue);
  pipe.release(0);
  EXPECT_EQ(pipe.reserve(), 2u);
  EXPECT_EQ(pipe.in_flight(), 2u);
}

TEST(PipelinePrimitive, PublishOutOfOrderThrows) {
  EpochPipeline pipe(1, 4, [](std::size_t, std::uint64_t) {});
  const std::uint64_t e0 = pipe.reserve();
  const std::uint64_t e1 = pipe.reserve();
  EXPECT_THROW(pipe.publish(e1), grb::InvalidValue);
  pipe.publish(e0);
  pipe.publish(e1);
  pipe.wait_retired(e1);
}

TEST(PipelinePrimitive, WaitOnUnpublishedEpochThrows) {
  EpochPipeline pipe(2, 2, [](std::size_t, std::uint64_t) {});
  EXPECT_THROW(pipe.wait_retired(0), grb::InvalidValue);
}

TEST(PipelinePrimitive, StageExceptionPoisonsThePipeline) {
  std::atomic<int> ran{0};
  EpochPipeline pipe(2, 4, [&](std::size_t w, std::uint64_t e) {
    if (w == 1 && e == 1) throw std::runtime_error("stage boom");
    ran.fetch_add(1);
  });
  // Epoch 0 completes cleanly before the failing epoch is even published
  // (a failure anywhere poisons *every* later wait, so sequence them).
  pipe.publish(pipe.reserve());
  EXPECT_NO_THROW(pipe.wait_retired(0));
  pipe.publish(pipe.reserve());  // worker 1 throws on this epoch
  EXPECT_THROW(pipe.wait_retired(1), std::runtime_error);
  // Poisoned for good: both the barrier and the producer side rethrow.
  EXPECT_THROW(pipe.wait_retired(0), std::runtime_error);
  pipe.release(0);
  pipe.release(1);
  EXPECT_THROW((void)pipe.reserve(), std::runtime_error);
}

TEST(PipelinePrimitive, DestructorDrainsPublishedEpochs) {
  std::atomic<std::uint64_t> processed{0};
  {
    EpochPipeline pipe(2, 8,
                       [&](std::size_t, std::uint64_t) { ++processed; });
    for (std::uint64_t e = 0; e < 5; ++e) pipe.publish(pipe.reserve());
    // No waits: the destructor must finish all 5×2 stage runs itself.
  }
  EXPECT_EQ(processed.load(), 10u);
}

TEST(PipelinePrimitive, RejectsDegenerateConfigurations) {
  const auto noop = [](std::size_t, std::uint64_t) {};
  EXPECT_THROW(EpochPipeline(0, 1, noop), grb::InvalidValue);
  EXPECT_THROW(EpochPipeline(1, 0, noop), grb::InvalidValue);
  EXPECT_THROW(EpochPipeline(1, 1, nullptr), grb::InvalidValue);
}

// --- TSan regression pair ---------------------------------------------------
//
// The hand-off contract is reserve() → write the epoch's slot → publish().
// std::mutex/condition_variable are native happens-before edges for
// ThreadSanitizer (unlike libgomp's futex barriers, which parallel.hpp must
// re-annotate), so TSan watches this hand-off with no help: the green test
// pins that the correctly-ordered protocol is clean, and the death test
// seeds the one bug the barrier exists to prevent — publishing an epoch
// before its slot write — and requires TSan to flag it. Both accesses are
// unordered (the slot write happens after the publish edge the worker
// synchronised on), so the race is reported regardless of scheduling.

TEST(PipelineTsanRegression, OrderedHandOffIsClean) {
  std::vector<std::uint64_t> slots(4, 0);
  std::atomic<std::uint64_t> sum{0};
  EpochPipeline pipe(2, 4, [&](std::size_t, std::uint64_t e) {
    sum.fetch_add(slots[e % 4]);
  });
  for (std::uint64_t e = 0; e < 8; ++e) {
    if (pipe.in_flight() >= 4) {
      pipe.wait_retired(e - 4);
      pipe.release(e - 4);
    }
    const std::uint64_t r = pipe.reserve();
    slots[r % 4] = r + 1;  // slot write strictly before publish
    pipe.publish(r);
  }
  pipe.wait_retired(7);
  EXPECT_EQ(sum.load(), 2 * (8 * 9) / 2);
}

#if GRB_TSAN_ENABLED
TEST(PipelineTsanRegression, MisorderedPublicationDies) {
  // Publish-before-write: the worker may read the slot with no
  // happens-before edge to the producer's late write. TSan must abort the
  // child (halt_on_error guarantees death even where the default would
  // only log), and the report must be a data race on the hand-off.
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  std::string opts = "halt_on_error=1";
  if (const char* cur = std::getenv("TSAN_OPTIONS")) {
    opts = std::string(cur) + ":halt_on_error=1";
  }
  ::setenv("TSAN_OPTIONS", opts.c_str(), 1);
  EXPECT_DEATH(
      {
        std::vector<std::uint64_t> slots(2, 0);
        std::atomic<std::uint64_t> sum{0};
        EpochPipeline pipe(1, 2, [&](std::size_t, std::uint64_t e) {
          sum.fetch_add(slots[e % 2]);
        });
        const std::uint64_t e = pipe.reserve();
        pipe.publish(e);  // BUG: epoch visible before its slot is written
        slots[e % 2] = 42;
        pipe.wait_retired(e);
      },
      "ThreadSanitizer: data race");
}
#else
TEST(PipelineTsanRegression, MisorderedPublicationDies) {
  GTEST_SKIP() << "requires GRB_SANITIZE=thread (TSan) build";
}
#endif

}  // namespace
