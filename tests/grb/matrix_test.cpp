#include <gtest/gtest.h>

#include <cstdint>

#include "grb/grb.hpp"
#include "support/rng.hpp"

// GCC 12 emits a false-positive -Warray-bounds when it inlines Matrix::at on
// a tiny matrix inside EXPECT_THROW: the bounds check throws before the
// flagged access can ever execute, but the catch-path analysis misses that.
#pragma GCC diagnostic ignored "-Warray-bounds"

namespace {

using grb::Index;
using grb::Matrix;
using grb::Tuple;
using U64 = std::uint64_t;

TEST(Matrix, NewMatrixIsEmpty) {
  const Matrix<U64> m(3, 4);
  EXPECT_EQ(m.nrows(), 3u);
  EXPECT_EQ(m.ncols(), 4u);
  EXPECT_EQ(m.nvals(), 0u);
  EXPECT_FALSE(m.has(1, 1));
}

TEST(Matrix, BuildUnsortedInput) {
  const auto m = Matrix<U64>::build(
      3, 3, {{2, 1, 21}, {0, 2, 2}, {1, 0, 10}, {0, 0, 1}});
  EXPECT_EQ(m.nvals(), 4u);
  EXPECT_EQ(m.at(0, 0).value(), 1u);
  EXPECT_EQ(m.at(0, 2).value(), 2u);
  EXPECT_EQ(m.at(1, 0).value(), 10u);
  EXPECT_EQ(m.at(2, 1).value(), 21u);
}

TEST(Matrix, BuildCombinesDuplicates) {
  const auto m =
      Matrix<U64>::build(2, 2, {{1, 1, 3}, {1, 1, 4}}, grb::Plus<U64>{});
  EXPECT_EQ(m.nvals(), 1u);
  EXPECT_EQ(m.at(1, 1).value(), 7u);
}

TEST(Matrix, BuildRejectsOutOfBounds) {
  EXPECT_THROW(Matrix<U64>::build(2, 2, {{2, 0, 1}}), grb::IndexOutOfBounds);
  EXPECT_THROW(Matrix<U64>::build(2, 2, {{0, 2, 1}}), grb::IndexOutOfBounds);
}

TEST(Matrix, SetInsertsAndOverwrites) {
  Matrix<U64> m(3, 3);
  m.set(1, 2, 5);
  m.set(1, 0, 3);
  m.set(1, 2, 6);
  EXPECT_EQ(m.nvals(), 2u);
  EXPECT_EQ(m.at(1, 2).value(), 6u);
  EXPECT_EQ(m.at(1, 0).value(), 3u);
  m.check_invariants();
}

TEST(Matrix, RowViews) {
  const auto m = Matrix<U64>::build(2, 4, {{0, 1, 7}, {0, 3, 9}});
  const auto cols = m.row_cols(0);
  const auto vals = m.row_vals(0);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], 1u);
  EXPECT_EQ(cols[1], 3u);
  EXPECT_EQ(vals[0], 7u);
  EXPECT_EQ(vals[1], 9u);
  EXPECT_TRUE(m.row_cols(1).empty());
  EXPECT_EQ(m.row_degree(0), 2u);
  EXPECT_EQ(m.row_degree(1), 0u);
}

TEST(Matrix, ResizeGrowKeepsEntriesAndInvariants) {
  auto m = Matrix<U64>::build(2, 2, {{0, 0, 1}, {1, 1, 2}});
  m.resize(4, 5);
  EXPECT_EQ(m.nrows(), 4u);
  EXPECT_EQ(m.ncols(), 5u);
  EXPECT_EQ(m.nvals(), 2u);
  EXPECT_EQ(m.at(1, 1).value(), 2u);
  EXPECT_TRUE(m.row_cols(3).empty());
  m.check_invariants();
  m.set(3, 4, 9);
  EXPECT_EQ(m.at(3, 4).value(), 9u);
}

TEST(Matrix, ResizeShrinkRowsDropsEntries) {
  auto m = Matrix<U64>::build(3, 3, {{0, 0, 1}, {2, 2, 3}});
  m.resize(1, 3);
  EXPECT_EQ(m.nrows(), 1u);
  EXPECT_EQ(m.nvals(), 1u);
  m.check_invariants();
}

TEST(Matrix, ResizeShrinkColsDropsEntries) {
  auto m = Matrix<U64>::build(2, 4, {{0, 0, 1}, {0, 3, 2}, {1, 2, 3}});
  m.resize(2, 2);
  EXPECT_EQ(m.ncols(), 2u);
  EXPECT_EQ(m.nvals(), 1u);
  EXPECT_EQ(m.at(0, 0).value(), 1u);
  m.check_invariants();
}

TEST(Matrix, InsertTuplesMergesSortedBatch) {
  auto m = Matrix<U64>::build(3, 3, {{0, 1, 1}, {2, 0, 2}});
  m.insert_tuples({{1, 1, 10}, {0, 0, 5}, {2, 2, 20}});
  EXPECT_EQ(m.nvals(), 5u);
  EXPECT_EQ(m.at(0, 0).value(), 5u);
  EXPECT_EQ(m.at(0, 1).value(), 1u);
  EXPECT_EQ(m.at(1, 1).value(), 10u);
  EXPECT_EQ(m.at(2, 2).value(), 20u);
  m.check_invariants();
}

TEST(Matrix, InsertTuplesCombinesWithExistingViaDup) {
  auto m = Matrix<U64>::build(2, 2, {{0, 0, 1}});
  m.insert_tuples({{0, 0, 2}, {0, 0, 3}}, grb::Plus<U64>{});
  EXPECT_EQ(m.nvals(), 1u);
  EXPECT_EQ(m.at(0, 0).value(), 6u);
}

TEST(Matrix, InsertTuplesRejectsOutOfBounds) {
  Matrix<U64> m(2, 2);
  EXPECT_THROW(m.insert_tuples({{2, 0, 1}}), grb::IndexOutOfBounds);
}

TEST(Matrix, ExtractTuplesRoundTrip) {
  const auto m =
      Matrix<U64>::build(3, 3, {{0, 2, 1}, {1, 0, 2}, {2, 2, 3}});
  const auto tuples = m.extract_tuples();
  const auto rebuilt = Matrix<U64>::build(3, 3, tuples);
  EXPECT_EQ(rebuilt, m);
}

TEST(Matrix, ClearKeepsShape) {
  auto m = Matrix<U64>::build(2, 2, {{0, 0, 1}});
  m.clear();
  EXPECT_EQ(m.nrows(), 2u);
  EXPECT_EQ(m.nvals(), 0u);
  m.check_invariants();
}

TEST(Matrix, AtOutOfBoundsThrows) {
  const Matrix<U64> m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), grb::IndexOutOfBounds);
  EXPECT_THROW((void)m.at(0, 2), grb::IndexOutOfBounds);
}

struct MergeCase {
  Index n;
  std::size_t initial;
  std::size_t batch;
  std::uint64_t seed;
};

class InsertTuplesSweep : public ::testing::TestWithParam<MergeCase> {};

// Property: insert_tuples(batch) == build(existing ++ batch) with the same
// dup op, for random inputs.
TEST_P(InsertTuplesSweep, EquivalentToRebuild) {
  const auto [n, initial, batch, seed] = GetParam();
  grbsm::support::Xoshiro256 rng(seed);
  std::vector<Tuple<U64>> first, second;
  for (std::size_t k = 0; k < initial; ++k) {
    first.push_back({rng.bounded(n), rng.bounded(n), rng.bounded(100)});
  }
  for (std::size_t k = 0; k < batch; ++k) {
    second.push_back({rng.bounded(n), rng.bounded(n), rng.bounded(100)});
  }
  auto incremental = Matrix<U64>::build(n, n, first, grb::Plus<U64>{});
  incremental.insert_tuples(second, grb::Plus<U64>{});

  std::vector<Tuple<U64>> all = first;
  all.insert(all.end(), second.begin(), second.end());
  const auto rebuilt = Matrix<U64>::build(n, n, all, grb::Plus<U64>{});
  EXPECT_EQ(incremental, rebuilt);
  incremental.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(
    Random, InsertTuplesSweep,
    ::testing::Values(MergeCase{4, 3, 3, 1}, MergeCase{16, 30, 10, 2},
                      MergeCase{64, 200, 50, 3}, MergeCase{128, 0, 40, 4},
                      MergeCase{128, 40, 0, 5}, MergeCase{512, 900, 300, 6}));

}  // namespace
