#include <gtest/gtest.h>

#include <cstdint>

#include "grb/grb.hpp"
#include "support/rng.hpp"

namespace {

using grb::Index;
using grb::Matrix;
using grb::Vector;
using U64 = std::uint64_t;

Matrix<U64> example() {
  // 4x4:
  // [ 1 . 2 . ]
  // [ . 3 . . ]
  // [ 4 . 5 6 ]
  // [ . 7 . 8 ]
  return Matrix<U64>::build(4, 4,
                            {{0, 0, 1},
                             {0, 2, 2},
                             {1, 1, 3},
                             {2, 0, 4},
                             {2, 2, 5},
                             {2, 3, 6},
                             {3, 1, 7},
                             {3, 3, 8}});
}

TEST(Extract, SubmatrixSortedIndices) {
  const std::vector<Index> rows{0, 2};
  const std::vector<Index> cols{0, 2, 3};
  const auto sub = grb::extract_submatrix(example(), rows, cols);
  EXPECT_EQ(sub.nrows(), 2u);
  EXPECT_EQ(sub.ncols(), 3u);
  EXPECT_EQ(sub.at(0, 0).value(), 1u);
  EXPECT_EQ(sub.at(0, 1).value(), 2u);
  EXPECT_EQ(sub.at(1, 0).value(), 4u);
  EXPECT_EQ(sub.at(1, 1).value(), 5u);
  EXPECT_EQ(sub.at(1, 2).value(), 6u);
}

TEST(Extract, SubmatrixUnsortedIndicesRenumberInListOrder) {
  const std::vector<Index> rows{2, 0};
  const std::vector<Index> cols{3, 0};
  const auto sub = grb::extract_submatrix(example(), rows, cols);
  // sub(0,·) = row 2 of source; col order [3, 0].
  EXPECT_EQ(sub.at(0, 0).value(), 6u);
  EXPECT_EQ(sub.at(0, 1).value(), 4u);
  EXPECT_EQ(sub.at(1, 1).value(), 1u);
}

TEST(Extract, DuplicateColumnsRejected) {
  const std::vector<Index> rows{0};
  const std::vector<Index> cols{1, 1};
  EXPECT_THROW(grb::extract_submatrix(example(), rows, cols),
               grb::InvalidValue);
}

TEST(Extract, OutOfBoundsIndexThrows) {
  const std::vector<Index> rows{4};
  const std::vector<Index> cols{0};
  EXPECT_THROW(grb::extract_submatrix(example(), rows, cols),
               grb::IndexOutOfBounds);
}

TEST(Extract, EmptyIndexListsYieldEmptyMatrix) {
  const std::vector<Index> none;
  const auto sub = grb::extract_submatrix(example(), none, none);
  EXPECT_EQ(sub.nrows(), 0u);
  EXPECT_EQ(sub.ncols(), 0u);
  EXPECT_EQ(sub.nvals(), 0u);
}

TEST(Extract, SubvectorMapsPositions) {
  const auto u = Vector<U64>::build(6, {1, 3, 5}, {10, 30, 50});
  const std::vector<Index> idx{5, 0, 3};
  Vector<U64> w(3);
  grb::extract(w, u, idx);
  EXPECT_EQ(w.at_or(0, 0), 50u);
  EXPECT_FALSE(w.at(1).has_value());
  EXPECT_EQ(w.at_or(2, 0), 30u);
}

TEST(Extract, RowAsVector) {
  const auto row = grb::extract_row(example(), 2);
  EXPECT_EQ(row.size(), 4u);
  EXPECT_EQ(row.nvals(), 3u);
  EXPECT_EQ(row.at_or(0, 0), 4u);
  EXPECT_EQ(row.at_or(3, 0), 6u);
  EXPECT_THROW(grb::extract_row(example(), 9), grb::IndexOutOfBounds);
}

TEST(Transpose, KnownMatrix) {
  const auto t = grb::transposed(example());
  EXPECT_EQ(t.nrows(), 4u);
  EXPECT_EQ(t.at(0, 2).value(), 4u);
  EXPECT_EQ(t.at(3, 2).value(), 6u);
  EXPECT_EQ(t.nvals(), example().nvals());
}

TEST(Transpose, InvolutionOnRandomMatrices) {
  grbsm::support::Xoshiro256 rng(99);
  for (int round = 0; round < 5; ++round) {
    std::vector<grb::Tuple<U64>> tuples;
    const Index rows = rng.range(1, 40);
    const Index cols = rng.range(1, 40);
    for (int k = 0; k < 120; ++k) {
      tuples.push_back({rng.bounded(rows), rng.bounded(cols),
                        rng.bounded(50)});
    }
    const auto a =
        Matrix<U64>::build(rows, cols, std::move(tuples), grb::Plus<U64>{});
    EXPECT_EQ(grb::transposed(grb::transposed(a)), a);
  }
}

TEST(Transpose, RectangularShapesSwap) {
  const auto a = Matrix<U64>::build(2, 5, {{0, 4, 1}, {1, 0, 2}});
  Matrix<U64> t(5, 2);
  grb::transpose(t, a);
  EXPECT_EQ(t.nrows(), 5u);
  EXPECT_EQ(t.ncols(), 2u);
  EXPECT_EQ(t.at(4, 0).value(), 1u);
  EXPECT_EQ(t.at(0, 1).value(), 2u);
}

TEST(Assign, MaskedWholeVector) {
  // Alg. 2 line 14 shape: Δscores<scores+> = scores'.
  const auto full = Vector<U64>::build(4, {0, 1, 2, 3}, {10, 20, 30, 40});
  const auto mask = Vector<U64>::build(4, {1, 3}, {1, 1});
  Vector<U64> out(4);
  grb::assign(out, &mask, grb::NoAccum{}, full);
  EXPECT_EQ(out.nvals(), 2u);
  EXPECT_EQ(out.at_or(1, 0), 20u);
  EXPECT_EQ(out.at_or(3, 0), 40u);
}

TEST(Assign, SubsetScattersThroughIndexList) {
  auto w = Vector<U64>::build(6, {0}, {1});
  const auto u = Vector<U64>::build(3, {0, 2}, {7, 9});
  const std::vector<Index> idx{4, 1, 5};
  grb::assign_subset(w, grb::NoAccum{}, idx, u);
  EXPECT_EQ(w.at_or(4, 0), 7u);  // u(0) -> w(idx[0])
  EXPECT_EQ(w.at_or(5, 0), 9u);  // u(2) -> w(idx[2])
  EXPECT_EQ(w.at_or(0, 0), 1u);  // untouched outside I
  EXPECT_EQ(w.nvals(), 3u);
}

TEST(Assign, SubsetWithAccumCombines) {
  auto w = Vector<U64>::build(4, {2}, {5});
  const auto u = Vector<U64>::build(1, {0}, {3});
  const std::vector<Index> idx{2};
  grb::assign_subset(w, grb::Plus<U64>{}, idx, u);
  EXPECT_EQ(w.at_or(2, 0), 8u);
}

TEST(Assign, SubsetSizeMismatchThrows) {
  Vector<U64> w(4);
  const Vector<U64> u(3);
  const std::vector<Index> idx{0, 1};
  EXPECT_THROW(grb::assign_subset(w, grb::NoAccum{}, idx, u),
               grb::DimensionMismatch);
}

TEST(Assign, ScalarToIndexList) {
  Vector<U64> w(5);
  const std::vector<Index> idx{1, 3, 3};
  grb::assign_scalar(w, idx, U64{42});
  EXPECT_EQ(w.nvals(), 2u);
  EXPECT_EQ(w.at_or(1, 0), 42u);
  EXPECT_EQ(w.at_or(3, 0), 42u);
}

TEST(Extract, SubmatrixOfSymmetricStaysSymmetric) {
  // The Q2 hot path: induced subgraph of a symmetric Friends matrix.
  grbsm::support::Xoshiro256 rng(5);
  std::vector<grb::Tuple<U64>> tuples;
  const Index n = 30;
  for (int k = 0; k < 100; ++k) {
    const Index a = rng.bounded(n);
    const Index b = rng.bounded(n);
    if (a == b) continue;
    tuples.push_back({a, b, 1});
    tuples.push_back({b, a, 1});
  }
  const auto m = Matrix<U64>::build(n, n, std::move(tuples), grb::LOr<U64>{});
  const std::vector<Index> idx{2, 5, 7, 11, 20, 29};
  const auto sub = grb::extract_submatrix(m, idx, idx);
  for (const auto& t : sub.extract_tuples()) {
    EXPECT_TRUE(sub.has(t.col, t.row));
  }
}

}  // namespace
