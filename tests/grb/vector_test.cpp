#include <gtest/gtest.h>

#include <cstdint>

#include "grb/grb.hpp"

namespace {

using grb::Index;
using grb::Vector;
using U64 = std::uint64_t;

TEST(Vector, NewVectorIsEmpty) {
  const Vector<U64> v(10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v.nvals(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(v.at(3).has_value());
}

TEST(Vector, BuildSortsAndStores) {
  const auto v = Vector<U64>::build(6, {4, 1, 3}, {40, 10, 30});
  EXPECT_EQ(v.nvals(), 3u);
  EXPECT_EQ(v.at_or(1, 0), 10u);
  EXPECT_EQ(v.at_or(3, 0), 30u);
  EXPECT_EQ(v.at_or(4, 0), 40u);
  EXPECT_EQ(v.at_or(0, 0), 0u);
  EXPECT_EQ(v.indices()[0], 1u);
  EXPECT_EQ(v.indices()[2], 4u);
}

TEST(Vector, BuildCombinesDuplicatesWithDup) {
  const auto plus =
      Vector<U64>::build(4, {2, 2, 2}, {1, 2, 3}, grb::Plus<U64>{});
  EXPECT_EQ(plus.nvals(), 1u);
  EXPECT_EQ(plus.at_or(2, 0), 6u);
  // Default dup is Second: last value wins.
  const auto second = Vector<U64>::build(4, {2, 2}, {7, 9});
  EXPECT_EQ(second.at_or(2, 0), 9u);
}

TEST(Vector, BuildRejectsOutOfBounds) {
  EXPECT_THROW(Vector<U64>::build(3, {3}, {1}), grb::IndexOutOfBounds);
}

TEST(Vector, BuildRejectsLengthMismatch) {
  EXPECT_THROW(Vector<U64>::build(3, {0, 1}, {1}), grb::InvalidValue);
}

TEST(Vector, SetInsertsAndOverwrites) {
  Vector<U64> v(5);
  v.set(2, 20);
  v.set(0, 5);
  v.set(2, 21);
  EXPECT_EQ(v.nvals(), 2u);
  EXPECT_EQ(v.at_or(2, 0), 21u);
  EXPECT_EQ(v.at_or(0, 0), 5u);
}

TEST(Vector, EraseRemovesEntry) {
  auto v = Vector<U64>::build(5, {1, 2, 3}, {1, 2, 3});
  v.erase(2);
  EXPECT_EQ(v.nvals(), 2u);
  EXPECT_FALSE(v.at(2).has_value());
  v.erase(2);  // idempotent
  EXPECT_EQ(v.nvals(), 2u);
}

TEST(Vector, AccessOutOfBoundsThrows) {
  Vector<U64> v(3);
  EXPECT_THROW((void)v.at(3), grb::IndexOutOfBounds);
  EXPECT_THROW(v.set(5, 1), grb::IndexOutOfBounds);
  EXPECT_THROW(v.erase(3), grb::IndexOutOfBounds);
}

TEST(Vector, ResizeGrowKeepsEntries) {
  auto v = Vector<U64>::build(4, {0, 3}, {1, 2});
  v.resize(10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v.nvals(), 2u);
  EXPECT_EQ(v.at_or(3, 0), 2u);
}

TEST(Vector, ResizeShrinkDropsTail) {
  auto v = Vector<U64>::build(10, {0, 4, 9}, {1, 2, 3});
  v.resize(5);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v.nvals(), 2u);
  EXPECT_EQ(v.at_or(4, 0), 2u);
}

TEST(Vector, ClearKeepsSize) {
  auto v = Vector<U64>::build(4, {1}, {1});
  v.clear();
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.nvals(), 0u);
}

TEST(Vector, DenseAndFull) {
  const auto d = Vector<Index>::dense(4, [](Index i) { return i * i; });
  EXPECT_EQ(d.nvals(), 4u);
  EXPECT_EQ(d.at_or(3, 0), 9u);
  const auto f = Vector<U64>::full(3, 7);
  EXPECT_EQ(f.to_dense(), (std::vector<U64>{7, 7, 7}));
}

TEST(Vector, ToDenseUsesFill) {
  const auto v = Vector<U64>::build(4, {1}, {5});
  EXPECT_EQ(v.to_dense(9), (std::vector<U64>{9, 5, 9, 9}));
}

TEST(Vector, ExtractTuplesRoundTrip) {
  const auto v = Vector<U64>::build(6, {5, 0, 2}, {50, 1, 20});
  std::vector<Index> idx;
  std::vector<U64> vals;
  v.extract_tuples(idx, vals);
  const auto rebuilt = Vector<U64>::build(6, idx, vals);
  EXPECT_EQ(rebuilt, v);
}

TEST(Vector, EqualityComparesPatternAndValues) {
  const auto a = Vector<U64>::build(4, {1, 2}, {1, 2});
  const auto b = Vector<U64>::build(4, {1, 2}, {1, 2});
  const auto c = Vector<U64>::build(4, {1, 2}, {1, 3});
  const auto d = Vector<U64>::build(5, {1, 2}, {1, 2});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

class VectorBuildSweep : public ::testing::TestWithParam<Index> {};

TEST_P(VectorBuildSweep, BuildFromReversedIndicesSortsCorrectly) {
  const Index n = GetParam();
  std::vector<Index> idx;
  std::vector<U64> vals;
  for (Index i = n; i-- > 0;) {
    idx.push_back(i);
    vals.push_back(i * 3 + 1);
  }
  const auto v = Vector<U64>::build(n, idx, vals);
  EXPECT_EQ(v.nvals(), n);
  for (Index i = 0; i < n; ++i) {
    EXPECT_EQ(v.at_or(i, 0), i * 3 + 1);
  }
  const auto is = v.indices();
  for (std::size_t k = 1; k < is.size(); ++k) {
    EXPECT_LT(is[k - 1], is[k]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, VectorBuildSweep,
                         ::testing::Values(1, 2, 7, 64, 1000));

// adopt_sorted is the Vector counterpart of Matrix::adopt_csr: kernels hand
// it pre-sorted arrays, and the CsrCheck toggle controls whether the
// sorted-unique/in-range invariants are verified (kDebug = debug builds
// only; kAlways pins violations here in every build type).

TEST(VectorAdoptSorted, AcceptsValidArraysWithAlwaysCheck) {
  const auto v = Vector<U64>::adopt_sorted(6, {1, 3, 4}, {10, 30, 40},
                                           grb::CsrCheck::kAlways);
  EXPECT_EQ(v.nvals(), 3u);
  EXPECT_EQ(v.at_or(3, 0), 30u);
}

TEST(VectorAdoptSorted, UnsortedIndicesThrow) {
  EXPECT_THROW(Vector<U64>::adopt_sorted(6, {3, 1}, {30, 10},
                                         grb::CsrCheck::kAlways),
               grb::InvalidValue);
}

TEST(VectorAdoptSorted, DuplicateIndicesThrow) {
  EXPECT_THROW(Vector<U64>::adopt_sorted(6, {2, 2}, {20, 21},
                                         grb::CsrCheck::kAlways),
               grb::InvalidValue);
}

TEST(VectorAdoptSorted, OutOfRangeIndexThrows) {
  EXPECT_THROW(Vector<U64>::adopt_sorted(6, {1, 6}, {10, 60},
                                         grb::CsrCheck::kAlways),
               grb::InvalidValue);
}

TEST(VectorAdoptSorted, MismatchedArraySizesThrow) {
  EXPECT_THROW(Vector<U64>::adopt_sorted(6, {1, 2}, {10},
                                         grb::CsrCheck::kAlways),
               grb::InvalidValue);
}

TEST(VectorAdoptSorted, NeverSkipsTheCheck) {
  // kNever adopts without looking — the escape hatch for kernels that
  // guarantee the invariants structurally. The arrays here are broken on
  // purpose; only the metadata may be observed.
  const auto v = Vector<U64>::adopt_sorted(6, {3, 1}, {30, 10},
                                           grb::CsrCheck::kNever);
  EXPECT_EQ(v.nvals(), 2u);
}

}  // namespace
