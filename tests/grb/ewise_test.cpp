#include <gtest/gtest.h>

#include <cstdint>

#include "grb/grb.hpp"

namespace {

using grb::Index;
using grb::Matrix;
using grb::Vector;
using U64 = std::uint64_t;
using I64 = std::int64_t;

TEST(EWiseAddVector, UnionOfPatterns) {
  const auto u = Vector<U64>::build(5, {0, 2}, {1, 3});
  const auto v = Vector<U64>::build(5, {2, 4}, {10, 20});
  Vector<U64> w(5);
  grb::eWiseAdd(w, grb::Plus<U64>{}, u, v);
  EXPECT_EQ(w.nvals(), 3u);
  EXPECT_EQ(w.at_or(0, 0), 1u);
  EXPECT_EQ(w.at_or(2, 0), 13u);
  EXPECT_EQ(w.at_or(4, 0), 20u);
}

TEST(EWiseAddVector, EmptyOperands) {
  const Vector<U64> u(4), v(4);
  Vector<U64> w(4);
  grb::eWiseAdd(w, grb::Plus<U64>{}, u, v);
  EXPECT_EQ(w.nvals(), 0u);
  const auto x = Vector<U64>::build(4, {1}, {5});
  grb::eWiseAdd(w, grb::Plus<U64>{}, u, x);
  EXPECT_EQ(w.at_or(1, 0), 5u);
}

TEST(EWiseAddVector, DimensionMismatchThrows) {
  const Vector<U64> u(4), v(5);
  Vector<U64> w(4);
  EXPECT_THROW(grb::eWiseAdd(w, grb::Plus<U64>{}, u, v),
               grb::DimensionMismatch);
}

TEST(EWiseAddVector, SecondOpOverwritesOnIntersection) {
  // "New value wins" merge used by Q2 incremental (Fig. 4b merge).
  const auto u = Vector<U64>::build(4, {0, 1}, {1, 2});
  const auto v = Vector<U64>::build(4, {1, 2}, {9, 8});
  Vector<U64> w(4);
  grb::eWiseAdd(w, grb::Second<U64>{}, u, v);
  EXPECT_EQ(w.at_or(0, 0), 1u);
  EXPECT_EQ(w.at_or(1, 0), 9u);
  EXPECT_EQ(w.at_or(2, 0), 8u);
}

TEST(EWiseMultVector, IntersectionOfPatterns) {
  const auto u = Vector<U64>::build(5, {0, 2, 4}, {2, 3, 4});
  const auto v = Vector<U64>::build(5, {2, 3, 4}, {10, 10, 10});
  Vector<U64> w(5);
  grb::eWiseMult(w, grb::Times<U64>{}, u, v);
  EXPECT_EQ(w.nvals(), 2u);
  EXPECT_EQ(w.at_or(2, 0), 30u);
  EXPECT_EQ(w.at_or(4, 0), 40u);
}

TEST(EWiseMultVector, DisjointPatternsYieldEmpty) {
  const auto u = Vector<U64>::build(4, {0}, {1});
  const auto v = Vector<U64>::build(4, {1}, {1});
  Vector<U64> w(4);
  grb::eWiseMult(w, grb::Times<U64>{}, u, v);
  EXPECT_EQ(w.nvals(), 0u);
}

TEST(EWiseAddVector, MixedTypesConvertToOutput) {
  const auto u = Vector<std::uint32_t>::build(3, {0}, {7});
  const auto v = Vector<std::uint8_t>::build(3, {0, 1}, {1, 2});
  Vector<I64> w(3);
  grb::eWiseAdd(w, grb::Plus<I64>{}, u, v);
  EXPECT_EQ(w.at_or(0, 0), 8);
  EXPECT_EQ(w.at_or(1, 0), 2);
}

TEST(EWiseAddMatrix, UnionPerRow) {
  const auto a = Matrix<U64>::build(2, 3, {{0, 0, 1}, {1, 2, 2}});
  const auto b = Matrix<U64>::build(2, 3, {{0, 0, 5}, {0, 1, 6}});
  Matrix<U64> c(2, 3);
  grb::eWiseAdd(c, grb::Plus<U64>{}, a, b);
  EXPECT_EQ(c.nvals(), 3u);
  EXPECT_EQ(c.at(0, 0).value(), 6u);
  EXPECT_EQ(c.at(0, 1).value(), 6u);
  EXPECT_EQ(c.at(1, 2).value(), 2u);
}

TEST(EWiseMultMatrix, IntersectionPerRow) {
  const auto a = Matrix<U64>::build(2, 3, {{0, 0, 2}, {0, 1, 3}, {1, 2, 4}});
  const auto b = Matrix<U64>::build(2, 3, {{0, 1, 10}, {1, 2, 10}});
  Matrix<U64> c(2, 3);
  grb::eWiseMult(c, grb::Times<U64>{}, a, b);
  EXPECT_EQ(c.nvals(), 2u);
  EXPECT_EQ(c.at(0, 1).value(), 30u);
  EXPECT_EQ(c.at(1, 2).value(), 40u);
}

TEST(EWiseAddMatrix, ShapeMismatchThrows) {
  const Matrix<U64> a(2, 3), b(3, 2);
  Matrix<U64> c(2, 3);
  EXPECT_THROW(grb::eWiseAdd(c, grb::Plus<U64>{}, a, b),
               grb::DimensionMismatch);
}

// Algebraic properties on random-ish data.
TEST(EWiseProperties, AddCommutes) {
  const auto u = Vector<U64>::build(8, {0, 3, 5}, {1, 2, 3});
  const auto v = Vector<U64>::build(8, {3, 5, 7}, {4, 5, 6});
  Vector<U64> uv(8), vu(8);
  grb::eWiseAdd(uv, grb::Plus<U64>{}, u, v);
  grb::eWiseAdd(vu, grb::Plus<U64>{}, v, u);
  EXPECT_EQ(uv, vu);
}

TEST(EWiseProperties, MultWithSelfSquares) {
  const auto u = Vector<U64>::build(4, {1, 3}, {3, 5});
  Vector<U64> w(4);
  grb::eWiseMult(w, grb::Times<U64>{}, u, u);
  EXPECT_EQ(w.at_or(1, 0), 9u);
  EXPECT_EQ(w.at_or(3, 0), 25u);
}

TEST(EWiseProperties, MinMaxLattice) {
  const auto u = Vector<I64>::build(4, {0, 1}, {5, -2});
  const auto v = Vector<I64>::build(4, {0, 1}, {3, 4});
  Vector<I64> lo(4), hi(4);
  grb::eWiseMult(lo, grb::Min<I64>{}, u, v);
  grb::eWiseMult(hi, grb::Max<I64>{}, u, v);
  EXPECT_EQ(lo.at_or(0, 0), 3);
  EXPECT_EQ(lo.at_or(1, 0), -2);
  EXPECT_EQ(hi.at_or(0, 0), 5);
  EXPECT_EQ(hi.at_or(1, 0), 4);
}

}  // namespace
