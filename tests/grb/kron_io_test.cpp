// Tests for grb::kronecker and the Matrix Market import/export.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "grb/grb.hpp"
#include "support/rng.hpp"

namespace {

using grb::Index;
using grb::Matrix;
using U64 = std::uint64_t;

TEST(Kronecker, TwoByTwoTimesIdentity) {
  const auto a =
      Matrix<U64>::build(2, 2, {{0, 0, 1}, {0, 1, 2}, {1, 0, 3}, {1, 1, 4}});
  const auto eye = Matrix<U64>::build(2, 2, {{0, 0, 1}, {1, 1, 1}});
  Matrix<U64> c(4, 4);
  grb::kronecker(c, grb::Times<U64>{}, a, eye);
  EXPECT_EQ(c.nvals(), 8u);
  EXPECT_EQ(c.at(0, 0).value(), 1u);
  EXPECT_EQ(c.at(1, 1).value(), 1u);
  EXPECT_EQ(c.at(0, 2).value(), 2u);
  EXPECT_EQ(c.at(3, 1).value(), 3u);
  EXPECT_EQ(c.at(2, 2).value(), 4u);
  c.check_invariants();
}

TEST(Kronecker, SizesMultiply) {
  const auto a = Matrix<U64>::build(2, 3, {{0, 2, 5}});
  const auto b = Matrix<U64>::build(3, 2, {{1, 0, 7}});
  Matrix<U64> c(6, 6);
  grb::kronecker(c, grb::Times<U64>{}, a, b);
  EXPECT_EQ(c.nrows(), 6u);
  EXPECT_EQ(c.ncols(), 6u);
  EXPECT_EQ(c.nvals(), 1u);
  EXPECT_EQ(c.at(0 * 3 + 1, 2 * 2 + 0).value(), 35u);
}

TEST(Kronecker, NvalsIsProductOfNvals) {
  grbsm::support::Xoshiro256 rng(3);
  std::vector<grb::Tuple<U64>> ta, tb;
  for (int k = 0; k < 12; ++k) {
    ta.push_back({rng.bounded(5), rng.bounded(5), rng.bounded(9) + 1});
    tb.push_back({rng.bounded(4), rng.bounded(4), rng.bounded(9) + 1});
  }
  const auto a = Matrix<U64>::build(5, 5, ta, grb::First<U64>{});
  const auto b = Matrix<U64>::build(4, 4, tb, grb::First<U64>{});
  Matrix<U64> c(20, 20);
  grb::kronecker(c, grb::Times<U64>{}, a, b);
  EXPECT_EQ(c.nvals(), a.nvals() * b.nvals());
  c.check_invariants();
}

TEST(Kronecker, RmatStyleRecursionGrowsScaleFree) {
  // kron(kron(G, G), G) of a 2x2 seed: the classic RMAT construction.
  const auto seed =
      Matrix<U64>::build(2, 2, {{0, 0, 1}, {0, 1, 1}, {1, 1, 1}});
  Matrix<U64> g2(4, 4), g3(8, 8);
  grb::kronecker(g2, grb::Times<U64>{}, seed, seed);
  grb::kronecker(g3, grb::Times<U64>{}, g2, seed);
  EXPECT_EQ(g3.nvals(), 27u);  // 3^3
  EXPECT_EQ(g3.nrows(), 8u);
}

class MmIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("grbsm_mm_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name()) +
              ".mtx"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_F(MmIoTest, RoundTripInteger) {
  const auto m =
      Matrix<U64>::build(3, 4, {{0, 0, 7}, {1, 3, 9}, {2, 2, 1}});
  grb::write_matrix_market(m, path_);
  EXPECT_EQ(grb::read_matrix_market<U64>(path_), m);
}

TEST_F(MmIoTest, RoundTripReal) {
  const auto m = Matrix<double>::build(2, 2, {{0, 1, 2.5}, {1, 0, -1.25}});
  grb::write_matrix_market(m, path_);
  EXPECT_EQ(grb::read_matrix_market<double>(path_), m);
}

TEST_F(MmIoTest, ReadsPatternFiles) {
  std::ofstream out(path_);
  out << "%%MatrixMarket matrix coordinate pattern general\n"
      << "% comment line\n"
      << "3 3 2\n"
      << "1 2\n"
      << "3 3\n";
  out.close();
  const auto m = grb::read_matrix_market<grb::Bool>(path_);
  EXPECT_EQ(m.nvals(), 2u);
  EXPECT_TRUE(m.has(0, 1));
  EXPECT_TRUE(m.has(2, 2));
}

TEST_F(MmIoTest, ExpandsSymmetricFiles) {
  std::ofstream out(path_);
  out << "%%MatrixMarket matrix coordinate integer symmetric\n"
      << "3 3 2\n"
      << "2 1 5\n"
      << "3 3 6\n";
  out.close();
  const auto m = grb::read_matrix_market<U64>(path_);
  EXPECT_EQ(m.nvals(), 3u);  // (1,0), (0,1), (2,2)
  EXPECT_EQ(m.at(0, 1).value(), 5u);
  EXPECT_EQ(m.at(1, 0).value(), 5u);
}

TEST_F(MmIoTest, MalformedFilesThrow) {
  {
    std::ofstream out(path_);
    out << "%%MatrixMarket matrix array real general\n1 1\n0.5\n";
  }
  EXPECT_THROW(grb::read_matrix_market<double>(path_), grb::InvalidValue);
  {
    std::ofstream out(path_);
    out << "%%MatrixMarket matrix coordinate integer general\n2 2 2\n1 1 3\n";
  }
  EXPECT_THROW(grb::read_matrix_market<U64>(path_), grb::InvalidValue);
  EXPECT_THROW(grb::read_matrix_market<U64>("/no/such/file.mtx"),
               std::runtime_error);
}

TEST_F(MmIoTest, RandomRoundTripSweep) {
  grbsm::support::Xoshiro256 rng(17);
  for (int round = 0; round < 3; ++round) {
    std::vector<grb::Tuple<U64>> tuples;
    const Index rows = rng.range(1, 50);
    const Index cols = rng.range(1, 50);
    for (int k = 0; k < 200; ++k) {
      tuples.push_back(
          {rng.bounded(rows), rng.bounded(cols), rng.bounded(1000)});
    }
    const auto m =
        Matrix<U64>::build(rows, cols, std::move(tuples), grb::First<U64>{});
    grb::write_matrix_market(m, path_);
    EXPECT_EQ(grb::read_matrix_market<U64>(path_), m) << "round " << round;
  }
}

}  // namespace
