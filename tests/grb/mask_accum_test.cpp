// Mask / accumulator / descriptor semantics of the C<M> (+)= T output-merge
// model, exercised through eWiseAdd and apply (all kernels share the same
// write-back path, so these tests cover the behaviour globally).
#include <gtest/gtest.h>

#include <cstdint>

#include "grb/grb.hpp"

namespace {

using grb::Descriptor;
using grb::Index;
using grb::Matrix;
using grb::NoAccum;
using grb::Vector;
using U64 = std::uint64_t;

Vector<U64> vec(std::vector<Index> i, std::vector<U64> v, Index n = 6) {
  return Vector<U64>::build(n, std::move(i), std::move(v));
}

TEST(Mask, RestrictsWritesToMaskPattern) {
  auto c = vec({0, 1}, {100, 200});
  const auto mask = vec({1, 2}, {1, 1});
  const auto u = vec({0, 1, 2}, {1, 2, 3});
  const auto z = Vector<U64>(6);
  grb::eWiseAdd(c, &mask, NoAccum{}, grb::Plus<U64>{}, u, z);
  // In-mask positions 1, 2 take T; position 0 (outside mask) is kept.
  EXPECT_EQ(c.at_or(0, 0), 100u);
  EXPECT_EQ(c.at_or(1, 0), 2u);
  EXPECT_EQ(c.at_or(2, 0), 3u);
}

TEST(Mask, InMaskPositionWithoutResultEntryIsDeleted) {
  // No accumulator: C<M> = T deletes in-mask entries where T is empty.
  auto c = vec({1, 3}, {10, 30});
  const auto mask = vec({1, 3}, {1, 1});
  const auto t = vec({3}, {99});
  const auto z = Vector<U64>(6);
  grb::eWiseAdd(c, &mask, NoAccum{}, grb::Plus<U64>{}, t, z);
  EXPECT_FALSE(c.at(1).has_value());
  EXPECT_EQ(c.at_or(3, 0), 99u);
}

TEST(Mask, AccumKeepsOldEntriesWhereResultEmpty) {
  auto c = vec({1, 3}, {10, 30});
  const auto mask = vec({1, 3}, {1, 1});
  const auto t = vec({3}, {99});
  const auto z = Vector<U64>(6);
  grb::eWiseAdd(c, &mask, grb::Plus<U64>{}, grb::Plus<U64>{}, t, z);
  EXPECT_EQ(c.at_or(1, 0), 10u);   // kept by accumulator
  EXPECT_EQ(c.at_or(3, 0), 129u);  // 30 + 99
}

TEST(Mask, ValuedMaskUsesTruthiness) {
  auto c = Vector<U64>(6);
  const auto mask = vec({0, 1}, {0, 7});  // 0 is falsy
  const auto u = vec({0, 1}, {5, 6});
  const auto z = Vector<U64>(6);
  grb::eWiseAdd(c, &mask, NoAccum{}, grb::Plus<U64>{}, u, z);
  EXPECT_FALSE(c.at(0).has_value());
  EXPECT_EQ(c.at_or(1, 0), 6u);
}

TEST(Mask, StructuralDescriptorIgnoresValues) {
  auto c = Vector<U64>(6);
  const auto mask = vec({0, 1}, {0, 7});
  const auto u = vec({0, 1}, {5, 6});
  const auto z = Vector<U64>(6);
  Descriptor d;
  d.structural_mask = true;
  grb::eWiseAdd(c, &mask, NoAccum{}, grb::Plus<U64>{}, u, z, d);
  EXPECT_EQ(c.at_or(0, 0), 5u);  // falsy entry still masks structurally
  EXPECT_EQ(c.at_or(1, 0), 6u);
}

TEST(Mask, ComplementFlipsSelection) {
  auto c = Vector<U64>(6);
  const auto mask = vec({0}, {1});
  const auto u = vec({0, 1}, {5, 6});
  const auto z = Vector<U64>(6);
  Descriptor d;
  d.complement_mask = true;
  grb::eWiseAdd(c, &mask, NoAccum{}, grb::Plus<U64>{}, u, z, d);
  EXPECT_FALSE(c.at(0).has_value());
  EXPECT_EQ(c.at_or(1, 0), 6u);
}

TEST(Mask, ReplaceClearsOutsideMask) {
  auto c = vec({0, 1, 2}, {10, 20, 30});
  const auto mask = vec({1}, {1});
  const auto u = vec({1}, {99});
  const auto z = Vector<U64>(6);
  Descriptor d;
  d.replace = true;
  grb::eWiseAdd(c, &mask, NoAccum{}, grb::Plus<U64>{}, u, z, d);
  EXPECT_EQ(c.nvals(), 1u);
  EXPECT_EQ(c.at_or(1, 0), 99u);
}

TEST(Mask, NoReplaceKeepsOutsideMask) {
  auto c = vec({0, 1, 2}, {10, 20, 30});
  const auto mask = vec({1}, {1});
  const auto u = vec({1}, {99});
  const auto z = Vector<U64>(6);
  grb::eWiseAdd(c, &mask, NoAccum{}, grb::Plus<U64>{}, u, z);
  EXPECT_EQ(c.at_or(0, 0), 10u);
  EXPECT_EQ(c.at_or(1, 0), 99u);
  EXPECT_EQ(c.at_or(2, 0), 30u);
}

TEST(Mask, MaskSizeMismatchThrows) {
  auto c = Vector<U64>(6);
  const auto mask = Vector<U64>(5);
  const auto u = Vector<U64>(6);
  const auto z = Vector<U64>(6);
  EXPECT_THROW(
      grb::eWiseAdd(c, &mask, NoAccum{}, grb::Plus<U64>{}, u, z),
      grb::DimensionMismatch);
}

TEST(Accum, UnmaskedAccumulation) {
  auto c = vec({0, 2}, {1, 2});
  const auto u = vec({0, 1}, {10, 20});
  const auto z = Vector<U64>(6);
  grb::eWiseAdd(c, static_cast<const Vector<U64>*>(nullptr),
                grb::Plus<U64>{}, grb::Plus<U64>{}, u, z);
  EXPECT_EQ(c.at_or(0, 0), 11u);  // accum(1, 10)
  EXPECT_EQ(c.at_or(1, 0), 20u);  // T only
  EXPECT_EQ(c.at_or(2, 0), 2u);   // C only, kept
}

TEST(MatrixMask, MaskedMxmRestrictsPattern) {
  const auto a = Matrix<U64>::build(2, 2, {{0, 0, 1}, {0, 1, 1},
                                           {1, 0, 1}, {1, 1, 1}});
  const auto mask = Matrix<U64>::build(2, 2, {{0, 0, 1}});
  Matrix<U64> c(2, 2);
  grb::mxm(c, &mask, NoAccum{}, grb::plus_times_semiring<U64>(), a, a);
  EXPECT_EQ(c.nvals(), 1u);
  EXPECT_EQ(c.at(0, 0).value(), 2u);
}

TEST(MatrixMask, ReplaceAndAccumOnMatrices) {
  auto c = Matrix<U64>::build(2, 2, {{0, 0, 5}, {1, 1, 7}});
  const auto mask = Matrix<U64>::build(2, 2, {{0, 0, 1}});
  const auto t = Matrix<U64>::build(2, 2, {{0, 0, 3}});
  const Matrix<U64> z(2, 2);
  Descriptor d;
  d.replace = true;
  grb::eWiseAdd(c, &mask, grb::Plus<U64>{}, grb::Plus<U64>{}, t, z, d);
  EXPECT_EQ(c.nvals(), 1u);  // (1,1) cleared by replace
  EXPECT_EQ(c.at(0, 0).value(), 8u);
}

TEST(MatrixMask, ComplementNoMaskAdmitsNothing) {
  auto c = vec({0}, {1});
  const auto u = vec({0, 1}, {5, 6});
  const auto z = Vector<U64>(6);
  Descriptor d;
  d.complement_mask = true;
  grb::eWiseAdd(c, static_cast<const Vector<U64>*>(nullptr), NoAccum{},
                grb::Plus<U64>{}, u, z, d);
  // Complement of the absent (all-admitting) mask admits nothing; C kept.
  EXPECT_EQ(c.at_or(0, 0), 1u);
  EXPECT_EQ(c.nvals(), 1u);
}

}  // namespace
