// Parameterized algebraic property sweeps across sizes/densities/seeds:
// the kernel-level invariants that the query algorithms silently rely on.
#include <gtest/gtest.h>

#include <cstdint>

#include "grb/grb.hpp"
#include "support/rng.hpp"

namespace {

using grb::Index;
using grb::Matrix;
using grb::Vector;
using U64 = std::uint64_t;

struct Shape {
  Index n;
  double density;
  std::uint64_t seed;
};

Matrix<U64> random_square(const Shape& s) {
  grbsm::support::Xoshiro256 rng(s.seed);
  std::vector<grb::Tuple<U64>> tuples;
  const auto target =
      static_cast<std::size_t>(static_cast<double>(s.n) *
                               static_cast<double>(s.n) * s.density);
  for (std::size_t k = 0; k < target; ++k) {
    tuples.push_back({rng.bounded(s.n), rng.bounded(s.n),
                      rng.bounded(20) + 1});
  }
  return Matrix<U64>::build(s.n, s.n, std::move(tuples), grb::Plus<U64>{});
}

Vector<U64> random_vector(Index n, double density, std::uint64_t seed) {
  grbsm::support::Xoshiro256 rng(seed);
  std::vector<Index> idx;
  std::vector<U64> val;
  for (Index i = 0; i < n; ++i) {
    if (rng.chance(density)) {
      idx.push_back(i);
      val.push_back(rng.bounded(20) + 1);
    }
  }
  return Vector<U64>::build(n, std::move(idx), std::move(val));
}

class AlgebraSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(AlgebraSweep, TransposeProductIdentity) {
  // (AB)ᵀ = BᵀAᵀ over plus_times.
  const auto s = GetParam();
  const auto a = random_square(s);
  const auto b = random_square({s.n, s.density, s.seed + 1});
  Matrix<U64> ab(s.n, s.n), btat(s.n, s.n);
  grb::mxm(ab, grb::plus_times_semiring<U64>(), a, b);
  grb::mxm(btat, grb::plus_times_semiring<U64>(), grb::transposed(b),
           grb::transposed(a));
  EXPECT_EQ(grb::transposed(ab), btat);
}

TEST_P(AlgebraSweep, MxvAgreesWithMxmOnColumnVector) {
  const auto s = GetParam();
  const auto a = random_square(s);
  const auto u = random_vector(s.n, 0.4, s.seed + 2);
  // Embed u as an n×1 matrix.
  std::vector<grb::Tuple<U64>> col;
  const auto ui = u.indices();
  const auto uv = u.values();
  for (std::size_t k = 0; k < ui.size(); ++k) {
    col.push_back({ui[k], 0, uv[k]});
  }
  const auto ucol = Matrix<U64>::build(s.n, 1, std::move(col));
  Vector<U64> w(s.n);
  grb::mxv(w, grb::plus_times_semiring<U64>(), a, u);
  Matrix<U64> wcol(s.n, 1);
  grb::mxm(wcol, grb::plus_times_semiring<U64>(), a, ucol);
  EXPECT_EQ(w.nvals(), wcol.nvals());
  for (const auto& t : wcol.extract_tuples()) {
    EXPECT_EQ(w.at_or(t.row, 0), t.val);
  }
}

TEST_P(AlgebraSweep, ReduceRowsEqualsMxvOnes) {
  // [⊕_j A(:,j)] = A ⊕.⊗ 1⃗ over plus_times.
  const auto s = GetParam();
  const auto a = random_square(s);
  Vector<U64> red(s.n), prod(s.n);
  grb::reduce_rows(red, grb::plus_monoid<U64>(), a);
  grb::mxv(prod, grb::plus_times_semiring<U64>(), a,
           Vector<U64>::full(s.n, 1));
  EXPECT_EQ(red, prod);
}

TEST_P(AlgebraSweep, EwiseAddAssociates) {
  const auto s = GetParam();
  const auto u = random_vector(s.n, 0.3, s.seed + 3);
  const auto v = random_vector(s.n, 0.3, s.seed + 4);
  const auto w = random_vector(s.n, 0.3, s.seed + 5);
  Vector<U64> uv(s.n), uv_w(s.n), vw(s.n), u_vw(s.n);
  grb::eWiseAdd(uv, grb::Plus<U64>{}, u, v);
  grb::eWiseAdd(uv_w, grb::Plus<U64>{}, uv, w);
  grb::eWiseAdd(vw, grb::Plus<U64>{}, v, w);
  grb::eWiseAdd(u_vw, grb::Plus<U64>{}, u, vw);
  EXPECT_EQ(uv_w, u_vw);
}

TEST_P(AlgebraSweep, SelectPartitionsPattern) {
  // select(p) ∪ select(!p) = original pattern, disjointly.
  const auto s = GetParam();
  const auto a = random_square(s);
  Matrix<U64> yes(s.n, s.n), no(s.n, s.n);
  grb::select(yes, grb::ValueGe<U64>{10}, a);
  grb::select(
      no,
      [](Index, Index, const U64& v) { return v < 10; }, a);
  EXPECT_EQ(yes.nvals() + no.nvals(), a.nvals());
  Matrix<U64> merged(s.n, s.n);
  grb::eWiseAdd(merged, grb::Plus<U64>{}, yes, no);
  EXPECT_EQ(merged, a);
}

TEST_P(AlgebraSweep, ExtractFullIndexListIsIdentity) {
  const auto s = GetParam();
  const auto a = random_square(s);
  std::vector<Index> all(s.n);
  for (Index i = 0; i < s.n; ++i) all[i] = i;
  EXPECT_EQ(grb::extract_submatrix(a, all, all), a);
}

TEST_P(AlgebraSweep, ApplyIdentityIsNoop) {
  const auto s = GetParam();
  const auto a = random_square(s);
  Matrix<U64> out(s.n, s.n);
  grb::apply(out, grb::Identity<U64>{}, a);
  EXPECT_EQ(out, a);
}

TEST_P(AlgebraSweep, ScalarReduceEqualsSumOfRowReduce) {
  const auto s = GetParam();
  const auto a = random_square(s);
  Vector<U64> rows(s.n);
  grb::reduce_rows(rows, grb::plus_monoid<U64>(), a);
  EXPECT_EQ(grb::reduce_scalar<U64>(grb::plus_monoid<U64>(), a),
            grb::reduce_scalar<U64>(grb::plus_monoid<U64>(), rows));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AlgebraSweep,
    ::testing::Values(Shape{1, 1.0, 101}, Shape{5, 0.5, 102},
                      Shape{17, 0.2, 103}, Shape{64, 0.05, 104},
                      Shape{128, 0.02, 105}, Shape{256, 0.01, 106}));

}  // namespace
