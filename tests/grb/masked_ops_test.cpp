// Masked/accumulated variants of the product, reduce, select and apply
// kernels (mask_accum_test.cpp covers the shared write-back semantics via
// eWiseAdd; these tests pin the plumbing of each remaining entry point).
#include <gtest/gtest.h>

#include <cstdint>

#include "grb/grb.hpp"

namespace {

using grb::Descriptor;
using grb::Index;
using grb::Matrix;
using grb::NoAccum;
using grb::Vector;
using U64 = std::uint64_t;

Matrix<U64> example() {
  // [ 1 2 . ]
  // [ . 3 4 ]
  // [ 5 . 6 ]
  return Matrix<U64>::build(
      3, 3, {{0, 0, 1}, {0, 1, 2}, {1, 1, 3}, {1, 2, 4}, {2, 0, 5}, {2, 2, 6}});
}

TEST(MaskedMxv, OnlyMaskedRowsWritten) {
  const auto u = Vector<U64>::full(3, 1);
  const auto mask = Vector<U64>::build(3, {1}, {1});
  Vector<U64> w(3);
  grb::mxv(w, &mask, NoAccum{}, grb::plus_times_semiring<U64>(), example(),
           u);
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_EQ(w.at_or(1, 0), 7u);
}

TEST(MaskedMxv, AccumulatesIntoExisting) {
  const auto u = Vector<U64>::full(3, 1);
  auto w = Vector<U64>::build(3, {0, 1}, {100, 100});
  grb::mxv(w, static_cast<const Vector<U64>*>(nullptr), grb::Plus<U64>{},
           grb::plus_times_semiring<U64>(), example(), u);
  EXPECT_EQ(w.at_or(0, 0), 103u);
  EXPECT_EQ(w.at_or(1, 0), 107u);
  EXPECT_EQ(w.at_or(2, 0), 11u);
}

TEST(MaskedVxm, ComplementReplaceFrontierPattern) {
  // The BFS idiom: next<!visited, replace> = frontier ⊕.⊗ A.
  const auto a = example();
  const auto frontier = Vector<U64>::build(3, {0}, {1});
  const auto visited = Vector<U64>::build(3, {0}, {1});
  Vector<U64> next(3);
  Descriptor d;
  d.complement_mask = true;
  d.replace = true;
  grb::vxm(next, &visited, NoAccum{}, grb::plus_times_semiring<U64>(),
           frontier, a, d);
  // Row 0 of A reaches columns 0 and 1; column 0 is masked out.
  EXPECT_EQ(next.nvals(), 1u);
  EXPECT_EQ(next.at_or(1, 0), 2u);
}

TEST(MaskedReduceRows, MaskSelectsRows) {
  const auto mask = Vector<U64>::build(3, {0, 2}, {1, 1});
  Vector<U64> w(3);
  grb::reduce_rows(w, &mask, NoAccum{}, grb::plus_monoid<U64>(), example());
  EXPECT_EQ(w.nvals(), 2u);
  EXPECT_EQ(w.at_or(0, 0), 3u);
  EXPECT_EQ(w.at_or(2, 0), 11u);
}

TEST(MaskedReduceRows, AccumAddsRowSums) {
  auto w = Vector<U64>::build(3, {1}, {100});
  grb::reduce_rows(w, static_cast<const Vector<U64>*>(nullptr),
                   grb::Plus<U64>{}, grb::plus_monoid<U64>(), example());
  EXPECT_EQ(w.at_or(1, 0), 107u);
}

TEST(MaskedSelect, VectorMaskAndPredCompose) {
  const auto v = Vector<U64>::build(4, {0, 1, 2, 3}, {5, 10, 15, 20});
  const auto mask = Vector<U64>::build(4, {1, 2}, {1, 1});
  Vector<U64> w(4);
  grb::select(w, &mask, NoAccum{}, grb::ValueGt<U64>{12}, v);
  // Pred keeps {15, 20}; mask keeps positions {1, 2}: intersection = {2}.
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_EQ(w.at_or(2, 0), 15u);
}

TEST(MaskedSelect, MatrixMaskApplies) {
  const auto mask = Matrix<U64>::build(3, 3, {{1, 1, 1}, {2, 0, 1}});
  Matrix<U64> c(3, 3);
  grb::select(c, &mask, NoAccum{}, grb::NonZero<U64>{}, example());
  EXPECT_EQ(c.nvals(), 2u);
  EXPECT_TRUE(c.has(1, 1));
  EXPECT_TRUE(c.has(2, 0));
}

TEST(MaskedApply, VectorMaskWithReplace) {
  auto w = Vector<U64>::build(3, {0, 1, 2}, {1, 1, 1});
  const auto u = Vector<U64>::build(3, {0, 1}, {5, 6});
  const auto mask = Vector<U64>::build(3, {0}, {1});
  Descriptor d;
  d.replace = true;
  grb::apply(w, &mask, NoAccum{}, grb::TimesScalar<U64>{2}, u, d);
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_EQ(w.at_or(0, 0), 10u);
}

TEST(MaskedApply, MatrixAccum) {
  auto c = Matrix<U64>::build(3, 3, {{0, 0, 100}});
  grb::apply(c, static_cast<const Matrix<U64>*>(nullptr), grb::Plus<U64>{},
             grb::One<U64>{}, example());
  EXPECT_EQ(c.at(0, 0).value(), 101u);  // 100 + 1
  EXPECT_EQ(c.at(2, 2).value(), 1u);
  EXPECT_EQ(c.nvals(), example().nvals());
}

TEST(MaskedKronecker, MaskFiltersBlocks) {
  const auto a = Matrix<U64>::build(2, 2, {{0, 0, 1}, {1, 1, 1}});
  const auto b = Matrix<U64>::build(2, 2, {{0, 0, 2}, {1, 1, 3}});
  const auto mask = Matrix<U64>::build(4, 4, {{0, 0, 1}, {3, 3, 1}});
  Matrix<U64> c(4, 4);
  grb::kronecker(c, &mask, NoAccum{}, grb::Times<U64>{}, a, b);
  EXPECT_EQ(c.nvals(), 2u);
  EXPECT_EQ(c.at(0, 0).value(), 2u);
  EXPECT_EQ(c.at(3, 3).value(), 3u);
}

TEST(MaskedEwiseMult, MatrixMaskAndAccum) {
  const auto a = Matrix<U64>::build(2, 2, {{0, 0, 2}, {1, 1, 3}});
  const auto b = Matrix<U64>::build(2, 2, {{0, 0, 5}, {1, 1, 7}});
  auto c = Matrix<U64>::build(2, 2, {{0, 0, 1}});
  const auto mask = Matrix<U64>::build(2, 2, {{0, 0, 1}});
  grb::eWiseMult(c, &mask, grb::Plus<U64>{}, grb::Times<U64>{}, a, b);
  EXPECT_EQ(c.at(0, 0).value(), 11u);  // 1 + 2*5
  EXPECT_EQ(c.nvals(), 1u);            // (1,1) outside mask, no prior entry
}

}  // namespace
