#include <gtest/gtest.h>

#include <cstdint>

#include "grb/grb.hpp"

namespace {

using grb::Bool;
using grb::Index;
using grb::Matrix;
using grb::Vector;
using U64 = std::uint64_t;

Matrix<U64> example_matrix() {
  // [ 1 . 2 ]
  // [ . 3 . ]
  // [ 4 . 5 ]
  return Matrix<U64>::build(
      3, 3, {{0, 0, 1}, {0, 2, 2}, {1, 1, 3}, {2, 0, 4}, {2, 2, 5}});
}

TEST(Mxv, PlusTimesDenseVector) {
  const auto a = example_matrix();
  const auto u = Vector<U64>::build(3, {0, 1, 2}, {1, 1, 1});
  Vector<U64> w(3);
  grb::mxv(w, grb::plus_times_semiring<U64>(), a, u);
  EXPECT_EQ(w.at_or(0, 0), 3u);
  EXPECT_EQ(w.at_or(1, 0), 3u);
  EXPECT_EQ(w.at_or(2, 0), 9u);
}

TEST(Mxv, SparseVectorSkipsEmptyPositions) {
  const auto a = example_matrix();
  const auto u = Vector<U64>::build(3, {2}, {10});
  Vector<U64> w(3);
  grb::mxv(w, grb::plus_times_semiring<U64>(), a, u);
  EXPECT_EQ(w.nvals(), 2u);  // rows 0, 2 touch column 2
  EXPECT_EQ(w.at_or(0, 0), 20u);
  EXPECT_EQ(w.at_or(2, 0), 50u);
}

TEST(Mxv, EmptyVectorYieldsEmptyResult) {
  const auto a = example_matrix();
  const Vector<U64> u(3);
  Vector<U64> w(3);
  grb::mxv(w, grb::plus_times_semiring<U64>(), a, u);
  EXPECT_EQ(w.nvals(), 0u);
}

TEST(Mxv, PlusSecondSemiringSumsSelectedCells) {
  // Alg. 1 line 8: boolean matrix selects and sums vector cells.
  const auto rp = Matrix<Bool>::build(2, 3, {{0, 0, 1}, {0, 1, 1}, {1, 2, 1}});
  const auto likes = Vector<U64>::build(3, {0, 1}, {2, 3});
  Vector<U64> w(2);
  grb::mxv(w, grb::plus_second_semiring<U64>(), rp, likes);
  EXPECT_EQ(w.at_or(0, 0), 5u);
  EXPECT_EQ(w.at_or(1, 0), 0u);  // no entry: c3 has no likes
  EXPECT_EQ(w.nvals(), 1u);
}

TEST(Mxv, MinSecondSemiringTakesNeighborhoodMinimum) {
  // FastSV hooking step semantics.
  const auto a = Matrix<Bool>::build(
      3, 3, {{0, 1, 1}, {1, 0, 1}, {1, 2, 1}, {2, 1, 1}});
  const auto labels = Vector<Index>::dense(3, [](Index i) { return i; });
  Vector<Index> w(3);
  grb::mxv(w, grb::min_second_semiring<Index>(), a, labels);
  EXPECT_EQ(w.at_or(0, 99), 1u);  // neighbor of 0 is 1
  EXPECT_EQ(w.at_or(1, 99), 0u);  // min(0, 2)
  EXPECT_EQ(w.at_or(2, 99), 1u);
}

TEST(Mxv, DimensionMismatchThrows) {
  const auto a = example_matrix();
  const Vector<U64> u(4);
  Vector<U64> w(3);
  EXPECT_THROW(grb::mxv(w, grb::plus_times_semiring<U64>(), a, u),
               grb::DimensionMismatch);
}

TEST(Vxm, MatchesMxvOnTranspose) {
  const auto a = example_matrix();
  const auto at = grb::transposed(a);
  const auto u = Vector<U64>::build(3, {0, 2}, {1, 2});
  Vector<U64> via_vxm(3), via_mxv(3);
  grb::vxm(via_vxm, grb::plus_times_semiring<U64>(), u, a);
  grb::mxv(via_mxv, grb::plus_times_semiring<U64>(), at, u);
  EXPECT_EQ(via_vxm, via_mxv);
}

TEST(Vxm, FrontierExpansion) {
  // BFS-style: frontier {0} over lor_land reaches columns of row 0.
  const auto a = Matrix<Bool>::build(3, 3, {{0, 1, 1}, {1, 2, 1}});
  const auto frontier = Vector<Bool>::build(3, {0}, {1});
  Vector<Bool> next(3);
  grb::vxm(next, grb::lor_land_semiring<Bool>(), frontier, a);
  EXPECT_EQ(next.nvals(), 1u);
  EXPECT_TRUE(next.at(1).has_value());
}

TEST(Vxm, DimensionMismatchThrows) {
  const auto a = example_matrix();
  const Vector<U64> u(2);
  Vector<U64> w(3);
  EXPECT_THROW(grb::vxm(w, grb::plus_times_semiring<U64>(), u, a),
               grb::DimensionMismatch);
}

TEST(Mxv, ThreadCountDoesNotChangeResult) {
  // Build a larger random-ish band matrix and compare 1 vs 8 threads.
  std::vector<grb::Tuple<U64>> tuples;
  const Index n = 6000;
  for (Index i = 0; i < n; ++i) {
    tuples.push_back({i, i, i % 7 + 1});
    if (i + 1 < n) tuples.push_back({i, i + 1, i % 5 + 1});
    if (i >= 13) tuples.push_back({i, i - 13, 2});
  }
  const auto a = Matrix<U64>::build(n, n, std::move(tuples));
  const auto u = Vector<U64>::dense(n, [](Index i) { return i % 11 + 1; });
  Vector<U64> w1(n), w8(n);
  {
    grb::ThreadGuard g(1);
    grb::mxv(w1, grb::plus_times_semiring<U64>(), a, u);
  }
  {
    grb::ThreadGuard g(8);
    grb::mxv(w8, grb::plus_times_semiring<U64>(), a, u);
  }
  EXPECT_EQ(w1, w8);
}

}  // namespace
