// Unit tests for the Context-owned workspace arena: lease/donate round
// trips, size-bucketed reuse, growth, thread-team leases, capacity-reuse
// storage release/adopt on Matrix/Vector, and the stats counters the CI
// perf gate reads.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "grb/context.hpp"
#include "grb/detail/workspace.hpp"
#include "grb/grb.hpp"

namespace {

using grb::Index;
using grb::detail::Workspace;

TEST(Workspace, LeaseProvidesClearedCapacityAndCountsMiss) {
  Workspace ws;
  auto lease = ws.lease<double>(100);
  EXPECT_EQ(lease->size(), 0u);
  EXPECT_GE(lease->capacity(), 100u);
  lease->assign(100, 1.5);
  const auto s = ws.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.leases(), 1u);
  EXPECT_EQ(s.bytes_leased, 100u * sizeof(double));
}

TEST(Workspace, ReleasedBufferIsReusedCleared) {
  Workspace ws;
  const double* data = nullptr;
  {
    auto lease = ws.lease<double>(100);
    lease->assign(100, 42.0);
    data = lease->data();
  }
  EXPECT_EQ(ws.stats().donations, 1u);
  EXPECT_EQ(ws.stats().buffers_cached, 1u);
  auto again = ws.lease<double>(80);
  EXPECT_EQ(ws.stats().hits, 1u);
  EXPECT_EQ(ws.stats().buffers_cached, 0u);
  // Same storage, arriving cleared.
  EXPECT_EQ(again->data(), data);
  EXPECT_EQ(again->size(), 0u);
  EXPECT_GE(again->capacity(), 80u);
}

TEST(Workspace, GrownBufferReturnsAtItsNewCapacity) {
  Workspace ws;
  {
    auto lease = ws.lease<int>(10);
    for (int i = 0; i < 10000; ++i) lease->push_back(i);  // grows past hint
  }
  // The grown buffer serves a much larger request without a new allocation.
  auto big = ws.lease<int>(5000);
  EXPECT_GE(big->capacity(), 5000u);
  EXPECT_EQ(ws.stats().hits, 1u);
  EXPECT_EQ(ws.stats().misses, 1u);  // only the original lease
}

TEST(Workspace, SmallRequestFallsBackToAModeratelyLargerBuffer) {
  // Buffers migrate upward through growth; a small request reuses a larger
  // cached buffer as long as it sits under the oversize watermark (2^6×
  // the rounded-up request).
  Workspace ws;
  { auto lease = ws.lease<int>(1 << 10); }
  auto small = ws.lease<int>(64);  // class 6; cached class 10 is within 6
  EXPECT_GE(small->capacity(), 1u << 10);
  EXPECT_EQ(ws.stats().hits, 1u);
  EXPECT_EQ(ws.stats().misses, 1u);
  EXPECT_EQ(ws.stats().splits, 0u);
}

TEST(Workspace, HighWatermarkKeepsHugeBuffersWholeAndCountsSplit) {
  // A tiny request must NOT consume a vastly larger cached buffer: the big
  // buffer stays whole for the big requests it fits, and the request takes
  // a right-sized allocation instead — counted as both a split and a miss,
  // so zero-miss gates stay honest.
  Workspace ws;
  { auto lease = ws.lease<int>(1 << 16); }
  EXPECT_EQ(ws.stats().buffers_cached, 1u);
  {
    auto tiny = ws.lease<int>(8);
    EXPECT_LT(tiny->capacity(), 1u << 16);  // not the cached giant
    EXPECT_GE(tiny->capacity(), 8u);
  }
  const auto s = ws.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 2u);   // the original fill + the refused tiny lease
  EXPECT_EQ(s.splits, 1u);
  EXPECT_EQ(s.buffers_cached, 2u);  // giant untouched + tiny donated back
  // The split-allocated buffer now populates the small class: the same
  // request hits on the next cycle (the "returned tail", one cycle later).
  auto again = ws.lease<int>(8);
  EXPECT_EQ(ws.stats().hits, 1u);
  EXPECT_EQ(ws.stats().splits, 1u);
}

TEST(Workspace, DetachShrinksOversizedPoolBuffer) {
  // A pool-origin buffer detached with contents far below its capacity is
  // trimmed on the way out: the caller gets a right-sized copy and the big
  // buffer returns to the pool instead of staying pinned in a small
  // long-lived container.
  Workspace ws;
  std::vector<int> out;
  {
    auto lease = ws.lease<int>(1 << 16);
    for (int i = 0; i < 10; ++i) lease->push_back(i);
    out = lease.detach();
  }
  EXPECT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
  EXPECT_LT(out.capacity(), 1u << 16);
  const auto s = ws.stats();
  EXPECT_EQ(s.shrinks, 1u);
  EXPECT_EQ(s.buffers_cached, 1u);  // the big buffer, donated back
  EXPECT_GE(s.bytes_cached, (std::size_t{1} << 16) * sizeof(int));
  // The reclaimed giant serves the next big request from cache.
  auto big = ws.lease<int>(1 << 16);
  EXPECT_EQ(ws.stats().hits, 1u);
}

TEST(Workspace, DetachKeepsCloseFitBuffersUntrimmed) {
  Workspace ws;
  std::vector<int> out;
  {
    auto lease = ws.lease<int>(1000);
    lease->assign(1000, 3);
    out = lease.detach();
  }
  EXPECT_EQ(out.size(), 1000u);
  EXPECT_EQ(ws.stats().shrinks, 0u);
  EXPECT_EQ(ws.stats().buffers_cached, 0u);  // nothing donated
}

TEST(Workspace, DomainCountersAttributePerShardLeases) {
  Workspace ws;
  {
    grb::detail::ScopedStatsDomain domain(3);
    { auto lease = ws.lease<double>(256); }  // miss, attributed to domain 3
    { auto lease = ws.lease<double>(256); }  // hit, attributed to domain 3
  }
  { auto lease = ws.lease<double>(256); }  // unattributed
  const auto d3 = ws.domain_stats(3);
  EXPECT_EQ(d3.misses, 1u);
  EXPECT_EQ(d3.hits, 1u);
  EXPECT_EQ(d3.leases(), 2u);
  EXPECT_EQ(d3.bytes_leased, 2u * 256u * sizeof(double));
  EXPECT_EQ(ws.domain_stats(0).leases(), 0u);
  // Global counters cover all three leases.
  EXPECT_EQ(ws.stats().leases(), 3u);
  EXPECT_DOUBLE_EQ(ws.domain_stats(7).hit_rate(), 1.0);  // idle domain
  ws.reset_stats();
  EXPECT_EQ(ws.domain_stats(3).leases(), 0u);
}

TEST(Workspace, TeamLeaseAndTeamResize) {
  Workspace ws;
  {
    auto team = ws.lease_team<double>(4, 256);
    ASSERT_EQ(team.size(), 4u);
    for (std::size_t t = 0; t < team.size(); ++t) {
      team.buf(t).resize(256);
      team.buf(t)[0] = static_cast<double>(t);
    }
  }
  EXPECT_EQ(ws.stats().misses, 4u);
  EXPECT_EQ(ws.stats().donations, 4u);
  {
    // Thread-team resize: a larger team reuses the old team's buffers and
    // tops up the difference.
    auto team = ws.lease_team<double>(8, 256);
    ASSERT_EQ(team.size(), 8u);
  }
  EXPECT_EQ(ws.stats().hits, 4u);
  EXPECT_EQ(ws.stats().misses, 8u);
  {
    auto team = ws.lease_team<double>(8, 256);
  }
  EXPECT_EQ(ws.stats().hits, 12u);
  EXPECT_EQ(ws.stats().misses, 8u);
}

TEST(Workspace, DetachSeversThePoolLink) {
  Workspace ws;
  std::vector<Index> out;
  {
    auto lease = ws.lease<Index>(128);
    lease->assign(128, Index{7});
    out = lease.detach();
  }
  EXPECT_EQ(ws.stats().donations, 0u);  // nothing returned on destruction
  EXPECT_EQ(out.size(), 128u);
  // An explicit donate puts the detached buffer back.
  ws.donate(std::move(out));
  EXPECT_EQ(ws.stats().donations, 1u);
  EXPECT_EQ(ws.lease<Index>(100)->capacity(), 128u);
}

TEST(Workspace, TinyDonationsAreDropped) {
  Workspace ws;
  std::vector<int> tiny;
  tiny.reserve(4);
  ws.donate(std::move(tiny));
  EXPECT_EQ(ws.stats().donations, 0u);
  EXPECT_EQ(ws.stats().drops, 1u);
  EXPECT_EQ(ws.stats().buffers_cached, 0u);
  // Empty vectors (no storage) are ignored entirely.
  ws.donate(std::vector<int>{});
  EXPECT_EQ(ws.stats().drops, 1u);
}

TEST(Workspace, StatsResetClearsCountersKeepsGauges) {
  Workspace ws;
  { auto lease = ws.lease<double>(1000); }
  auto s = ws.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.buffers_cached, 1u);
  ws.reset_stats();
  s = ws.stats();
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.donations, 0u);
  EXPECT_EQ(s.bytes_leased, 0u);
  EXPECT_EQ(s.buffers_cached, 1u);  // gauge survives
  EXPECT_GT(s.bytes_cached, 0u);
}

TEST(Workspace, TrimFreesEverythingCached) {
  Workspace ws;
  { auto lease = ws.lease<double>(4096); }
  { auto lease = ws.lease<Index>(4096); }
  EXPECT_EQ(ws.stats().buffers_cached, 2u);
  const std::size_t freed = ws.trim();
  EXPECT_GT(freed, 0u);
  EXPECT_EQ(ws.stats().buffers_cached, 0u);
  EXPECT_EQ(ws.stats().bytes_cached, 0u);
  // The next lease allocates fresh again.
  { auto lease = ws.lease<double>(4096); }
  EXPECT_EQ(ws.stats().misses, 3u);
}

TEST(Workspace, ContextOwnsAProcessWideArena) {
  auto& ws = grb::Context::instance().workspace();
  EXPECT_EQ(&ws, &grb::detail::workspace());
  const auto before = grb::workspace_stats();
  { auto lease = ws.lease<std::uint32_t>(512); }
  const auto after = grb::workspace_stats();
  EXPECT_EQ(after.leases(), before.leases() + 1);
}

TEST(StorageReuse, MatrixReleaseAdoptRoundtrip) {
  auto m = grb::Matrix<double>::build(
      3, 4, {{0, 1, 1.5}, {1, 0, -2.0}, {2, 3, 7.0}});
  const auto original = m;
  auto st = m.release_storage();
  EXPECT_EQ(m.nrows(), 0u);
  EXPECT_EQ(m.ncols(), 0u);
  EXPECT_EQ(m.nvals(), 0u);
  const auto back = grb::Matrix<double>::adopt_storage(
      3, 4, std::move(st), grb::CsrCheck::kAlways);
  EXPECT_EQ(back, original);
}

TEST(StorageReuse, VectorReleaseAdoptRoundtrip) {
  auto v = grb::Vector<double>::build(10, {1, 4, 7}, {0.5, 1.5, 2.5});
  const auto original = v;
  auto st = v.release_storage();
  EXPECT_EQ(v.size(), 10u);  // logical size kept
  EXPECT_EQ(v.nvals(), 0u);
  const auto back = grb::Vector<double>::adopt_storage(
      10, std::move(st), grb::CsrCheck::kAlways);
  EXPECT_EQ(back, original);
}

TEST(StorageReuse, MatrixRowGrowthIsNotDefeatedByShrinkOnDetach) {
  // Matrix::resize regrows rowptr through a pool lease sized to the new row
  // count; the lease must leave the arena untrimmed (it is about to be
  // resized up to exactly that capacity), or the regrowth falls back to a
  // plain realloc outside the pool.
  auto m = grb::Matrix<double>::build(64, 4, {{0, 1, 1.5}, {63, 2, 2.5}});
  const auto before = grb::workspace_stats();
  m.resize(100000, 4);  // rows grow by >= 2^6x: the shrink rule would bite
  const auto after = grb::workspace_stats();
  EXPECT_EQ(after.shrinks, before.shrinks);
  EXPECT_EQ(m.nrows(), 100000u);
  EXPECT_EQ(m.nvals(), 2u);
}

TEST(StorageReuse, RecycleDonatesToTheContextArena) {
  // A kernel-sized container's storage must land back in the pool.
  const auto before = grb::workspace_stats();
  auto v = grb::Vector<Index>::dense(1000, [](Index i) { return i; });
  grb::recycle(std::move(v));
  const auto after = grb::workspace_stats();
  EXPECT_GE(after.donations, before.donations + 2);  // ind + val arrays
}

}  // namespace
