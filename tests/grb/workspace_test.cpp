// Unit tests for the Context-owned workspace arena: lease/donate round
// trips, size-bucketed reuse, growth, thread-team leases, capacity-reuse
// storage release/adopt on Matrix/Vector, and the stats counters the CI
// perf gate reads.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "grb/context.hpp"
#include "grb/detail/workspace.hpp"
#include "grb/grb.hpp"

namespace {

using grb::Index;
using grb::detail::Workspace;

TEST(Workspace, LeaseProvidesClearedCapacityAndCountsMiss) {
  Workspace ws;
  auto lease = ws.lease<double>(100);
  EXPECT_EQ(lease->size(), 0u);
  EXPECT_GE(lease->capacity(), 100u);
  lease->assign(100, 1.5);
  const auto s = ws.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.leases(), 1u);
  EXPECT_EQ(s.bytes_leased, 100u * sizeof(double));
}

TEST(Workspace, ReleasedBufferIsReusedCleared) {
  Workspace ws;
  const double* data = nullptr;
  {
    auto lease = ws.lease<double>(100);
    lease->assign(100, 42.0);
    data = lease->data();
  }
  EXPECT_EQ(ws.stats().donations, 1u);
  EXPECT_EQ(ws.stats().buffers_cached, 1u);
  auto again = ws.lease<double>(80);
  EXPECT_EQ(ws.stats().hits, 1u);
  EXPECT_EQ(ws.stats().buffers_cached, 0u);
  // Same storage, arriving cleared.
  EXPECT_EQ(again->data(), data);
  EXPECT_EQ(again->size(), 0u);
  EXPECT_GE(again->capacity(), 80u);
}

TEST(Workspace, GrownBufferReturnsAtItsNewCapacity) {
  Workspace ws;
  {
    auto lease = ws.lease<int>(10);
    for (int i = 0; i < 10000; ++i) lease->push_back(i);  // grows past hint
  }
  // The grown buffer serves a much larger request without a new allocation.
  auto big = ws.lease<int>(5000);
  EXPECT_GE(big->capacity(), 5000u);
  EXPECT_EQ(ws.stats().hits, 1u);
  EXPECT_EQ(ws.stats().misses, 1u);  // only the original lease
}

TEST(Workspace, SmallRequestFallsBackToAnyLargerBuffer) {
  // Buffers migrate upward through growth; a tiny request must still reuse
  // a much larger cached buffer rather than allocating.
  Workspace ws;
  { auto lease = ws.lease<int>(1 << 16); }
  auto tiny = ws.lease<int>(8);
  EXPECT_GE(tiny->capacity(), 1u << 16);
  EXPECT_EQ(ws.stats().hits, 1u);
  EXPECT_EQ(ws.stats().misses, 1u);
}

TEST(Workspace, TeamLeaseAndTeamResize) {
  Workspace ws;
  {
    auto team = ws.lease_team<double>(4, 256);
    ASSERT_EQ(team.size(), 4u);
    for (std::size_t t = 0; t < team.size(); ++t) {
      team.buf(t).resize(256);
      team.buf(t)[0] = static_cast<double>(t);
    }
  }
  EXPECT_EQ(ws.stats().misses, 4u);
  EXPECT_EQ(ws.stats().donations, 4u);
  {
    // Thread-team resize: a larger team reuses the old team's buffers and
    // tops up the difference.
    auto team = ws.lease_team<double>(8, 256);
    ASSERT_EQ(team.size(), 8u);
  }
  EXPECT_EQ(ws.stats().hits, 4u);
  EXPECT_EQ(ws.stats().misses, 8u);
  {
    auto team = ws.lease_team<double>(8, 256);
  }
  EXPECT_EQ(ws.stats().hits, 12u);
  EXPECT_EQ(ws.stats().misses, 8u);
}

TEST(Workspace, DetachSeversThePoolLink) {
  Workspace ws;
  std::vector<Index> out;
  {
    auto lease = ws.lease<Index>(128);
    lease->assign(128, Index{7});
    out = lease.detach();
  }
  EXPECT_EQ(ws.stats().donations, 0u);  // nothing returned on destruction
  EXPECT_EQ(out.size(), 128u);
  // An explicit donate puts the detached buffer back.
  ws.donate(std::move(out));
  EXPECT_EQ(ws.stats().donations, 1u);
  EXPECT_EQ(ws.lease<Index>(100)->capacity(), 128u);
}

TEST(Workspace, TinyDonationsAreDropped) {
  Workspace ws;
  std::vector<int> tiny;
  tiny.reserve(4);
  ws.donate(std::move(tiny));
  EXPECT_EQ(ws.stats().donations, 0u);
  EXPECT_EQ(ws.stats().drops, 1u);
  EXPECT_EQ(ws.stats().buffers_cached, 0u);
  // Empty vectors (no storage) are ignored entirely.
  ws.donate(std::vector<int>{});
  EXPECT_EQ(ws.stats().drops, 1u);
}

TEST(Workspace, StatsResetClearsCountersKeepsGauges) {
  Workspace ws;
  { auto lease = ws.lease<double>(1000); }
  auto s = ws.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.buffers_cached, 1u);
  ws.reset_stats();
  s = ws.stats();
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.donations, 0u);
  EXPECT_EQ(s.bytes_leased, 0u);
  EXPECT_EQ(s.buffers_cached, 1u);  // gauge survives
  EXPECT_GT(s.bytes_cached, 0u);
}

TEST(Workspace, TrimFreesEverythingCached) {
  Workspace ws;
  { auto lease = ws.lease<double>(4096); }
  { auto lease = ws.lease<Index>(4096); }
  EXPECT_EQ(ws.stats().buffers_cached, 2u);
  const std::size_t freed = ws.trim();
  EXPECT_GT(freed, 0u);
  EXPECT_EQ(ws.stats().buffers_cached, 0u);
  EXPECT_EQ(ws.stats().bytes_cached, 0u);
  // The next lease allocates fresh again.
  { auto lease = ws.lease<double>(4096); }
  EXPECT_EQ(ws.stats().misses, 3u);
}

TEST(Workspace, ContextOwnsAProcessWideArena) {
  auto& ws = grb::Context::instance().workspace();
  EXPECT_EQ(&ws, &grb::detail::workspace());
  const auto before = grb::workspace_stats();
  { auto lease = ws.lease<std::uint32_t>(512); }
  const auto after = grb::workspace_stats();
  EXPECT_EQ(after.leases(), before.leases() + 1);
}

TEST(StorageReuse, MatrixReleaseAdoptRoundtrip) {
  auto m = grb::Matrix<double>::build(
      3, 4, {{0, 1, 1.5}, {1, 0, -2.0}, {2, 3, 7.0}});
  const auto original = m;
  auto st = m.release_storage();
  EXPECT_EQ(m.nrows(), 0u);
  EXPECT_EQ(m.ncols(), 0u);
  EXPECT_EQ(m.nvals(), 0u);
  const auto back = grb::Matrix<double>::adopt_storage(
      3, 4, std::move(st), grb::CsrCheck::kAlways);
  EXPECT_EQ(back, original);
}

TEST(StorageReuse, VectorReleaseAdoptRoundtrip) {
  auto v = grb::Vector<double>::build(10, {1, 4, 7}, {0.5, 1.5, 2.5});
  const auto original = v;
  auto st = v.release_storage();
  EXPECT_EQ(v.size(), 10u);  // logical size kept
  EXPECT_EQ(v.nvals(), 0u);
  const auto back = grb::Vector<double>::adopt_storage(
      10, std::move(st), grb::CsrCheck::kAlways);
  EXPECT_EQ(back, original);
}

TEST(StorageReuse, RecycleDonatesToTheContextArena) {
  // A kernel-sized container's storage must land back in the pool.
  const auto before = grb::workspace_stats();
  auto v = grb::Vector<Index>::dense(1000, [](Index i) { return i; });
  grb::recycle(std::move(v));
  const auto after = grb::workspace_stats();
  EXPECT_GE(after.donations, before.donations + 2);  // ind + val arrays
}

}  // namespace
