#include <gtest/gtest.h>

#include "grb/grb.hpp"

namespace {

using grb::Index;
using grb::Matrix;
using grb::Vector;
using U64 = std::uint64_t;

Matrix<U64> example() {
  // [ 1 2 . ]
  // [ . 3 4 ]
  // [ 5 . 6 ]
  return Matrix<U64>::build(
      3, 3, {{0, 0, 1}, {0, 1, 2}, {1, 1, 3}, {1, 2, 4}, {2, 0, 5}, {2, 2, 6}});
}

TEST(ReduceCols, PlusMonoid) {
  Vector<U64> w(3);
  grb::reduce_cols(w, grb::plus_monoid<U64>(), example());
  EXPECT_EQ(w.at_or(0, 0), 6u);
  EXPECT_EQ(w.at_or(1, 0), 5u);
  EXPECT_EQ(w.at_or(2, 0), 10u);
}

TEST(ReduceCols, EmptyColumnsHaveNoEntry) {
  const auto m = Matrix<U64>::build(2, 4, {{0, 1, 7}});
  Vector<U64> w(4);
  grb::reduce_cols(w, grb::plus_monoid<U64>(), m);
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_EQ(w.at_or(1, 0), 7u);
}

TEST(ReduceCols, EqualsRowReduceOfTranspose) {
  const auto m = example();
  Vector<U64> cols(3), rows_of_t(3);
  grb::reduce_cols(cols, grb::plus_monoid<U64>(), m);
  grb::reduce_rows(rows_of_t, grb::plus_monoid<U64>(), grb::transposed(m));
  EXPECT_EQ(cols, rows_of_t);
}

TEST(ReduceCols, MaskedVariant) {
  const auto mask = Vector<U64>::build(3, {2}, {1});
  Vector<U64> w(3);
  grb::reduce_cols(w, &mask, grb::NoAccum{}, grb::plus_monoid<U64>(),
                   example());
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_EQ(w.at_or(2, 0), 10u);
}

TEST(Diag, MainDiagonalRoundTrip) {
  const auto v = Vector<U64>::build(4, {0, 2}, {5, 7});
  const auto m = grb::diag_matrix(v);
  EXPECT_EQ(m.nrows(), 4u);
  EXPECT_EQ(m.at(0, 0).value(), 5u);
  EXPECT_EQ(m.at(2, 2).value(), 7u);
  EXPECT_EQ(m.nvals(), 2u);
  EXPECT_EQ(grb::diag_vector(m), v);
}

TEST(Diag, ShiftedDiagonals) {
  const auto v = Vector<U64>::build(2, {0, 1}, {1, 2});
  const auto up = grb::diag_matrix(v, 1);
  EXPECT_EQ(up.nrows(), 3u);
  EXPECT_EQ(up.at(0, 1).value(), 1u);
  EXPECT_EQ(up.at(1, 2).value(), 2u);
  const auto down = grb::diag_matrix(v, -1);
  EXPECT_EQ(down.at(1, 0).value(), 1u);
  EXPECT_EQ(down.at(2, 1).value(), 2u);
  // Extraction inverts construction on the same shift.
  EXPECT_EQ(grb::diag_vector(up, 1), v);
  EXPECT_EQ(grb::diag_vector(down, -1), v);
}

TEST(Diag, OutOfRangeDiagonalIsEmpty) {
  const auto m = example();
  EXPECT_EQ(grb::diag_vector(m, 5).size(), 0u);
  EXPECT_EQ(grb::diag_vector(m, -5).size(), 0u);
}

TEST(Diag, IdentityIsMxmNeutral) {
  const auto eye = grb::identity_matrix<U64>(3);
  EXPECT_EQ(eye.nvals(), 3u);
  Matrix<U64> c(3, 3);
  grb::mxm(c, grb::plus_times_semiring<U64>(), eye, example());
  EXPECT_EQ(c, example());
}

TEST(Diag, RectangularDiagonalExtraction) {
  const auto m = Matrix<U64>::build(2, 4, {{0, 0, 1}, {1, 1, 2}, {1, 3, 9}});
  const auto d = grb::diag_vector(m);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.at_or(0, 0), 1u);
  EXPECT_EQ(d.at_or(1, 0), 2u);
  const auto d2 = grb::diag_vector(m, 2);
  EXPECT_EQ(d2.size(), 2u);  // positions (0,2), (1,3)
  EXPECT_EQ(d2.at_or(1, 0), 9u);
}

}  // namespace
