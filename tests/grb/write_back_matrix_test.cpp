// Pins the matrix write_back path — the row-parallel two-pass merge of C,
// M, and T — across the masked / accumulated / replace descriptor space,
// and the adopt_csr invariant checks the kernel pipeline relies on
// (CsrCheck::kAlways verifies even in Release builds).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "grb/grb.hpp"
#include "support/rng.hpp"

namespace {

using grb::CsrCheck;
using grb::Descriptor;
using grb::Index;
using grb::Matrix;
using grb::NoAccum;
using U64 = std::uint64_t;

// C through an unmasked eWiseAdd with a zero operand acts as C<M> (+)= T
// with T = A: a direct probe of the write_back merge rules.
Matrix<U64> zeros(Index n = 4) { return Matrix<U64>(n, n); }

Matrix<U64> mat(std::vector<grb::Tuple<U64>> tuples, Index n = 4) {
  return Matrix<U64>::build(n, n, std::move(tuples));
}

TEST(MatrixWriteBack, MaskRestrictsWritesAndKeepsOutside) {
  auto c = mat({{0, 0, 100}, {1, 1, 200}});
  const auto t = mat({{0, 0, 1}, {1, 1, 2}, {2, 2, 3}});
  const auto mask = mat({{1, 1, 1}, {2, 2, 1}});
  grb::eWiseAdd(c, &mask, NoAccum{}, grb::Plus<U64>{}, t, zeros());
  // Outside the mask (0,0) survives untouched; masked positions take T.
  EXPECT_EQ(c.at(0, 0).value(), 100u);
  EXPECT_EQ(c.at(1, 1).value(), 2u);
  EXPECT_EQ(c.at(2, 2).value(), 3u);
  EXPECT_EQ(c.nvals(), 3u);
}

TEST(MatrixWriteBack, NoAccumDeletesInMaskPositionsWithoutResult) {
  auto c = mat({{1, 1, 10}, {3, 3, 30}});
  const auto t = mat({{3, 3, 99}});
  const auto mask = mat({{1, 1, 1}, {3, 3, 1}});
  grb::eWiseAdd(c, &mask, NoAccum{}, grb::Plus<U64>{}, t, zeros());
  EXPECT_FALSE(c.at(1, 1).has_value());  // in mask, no T entry => deleted
  EXPECT_EQ(c.at(3, 3).value(), 99u);
}

TEST(MatrixWriteBack, AccumKeepsOldEntriesWhereResultEmpty) {
  auto c = mat({{1, 1, 10}, {3, 3, 30}});
  const auto t = mat({{3, 3, 99}});
  const auto mask = mat({{1, 1, 1}, {3, 3, 1}});
  grb::eWiseAdd(c, &mask, grb::Plus<U64>{}, grb::Plus<U64>{}, t, zeros());
  EXPECT_EQ(c.at(1, 1).value(), 10u);   // kept by accumulator
  EXPECT_EQ(c.at(3, 3).value(), 129u);  // 30 + 99
}

TEST(MatrixWriteBack, ReplaceClearsOutsideMask) {
  auto c = mat({{0, 0, 100}, {1, 1, 200}});
  const auto t = mat({{1, 1, 5}});
  const auto mask = mat({{1, 1, 1}});
  Descriptor desc;
  desc.replace = true;
  grb::eWiseAdd(c, &mask, NoAccum{}, grb::Plus<U64>{}, t, zeros(), desc);
  EXPECT_FALSE(c.at(0, 0).has_value());  // outside mask, replaced away
  EXPECT_EQ(c.at(1, 1).value(), 5u);
  EXPECT_EQ(c.nvals(), 1u);
}

TEST(MatrixWriteBack, ReplaceWithAccumStillClearsOutsideMask) {
  auto c = mat({{0, 0, 100}, {1, 1, 200}});
  const auto t = mat({{1, 1, 5}});
  const auto mask = mat({{1, 1, 1}});
  Descriptor desc;
  desc.replace = true;
  grb::eWiseAdd(c, &mask, grb::Plus<U64>{}, grb::Plus<U64>{}, t, zeros(),
                desc);
  EXPECT_FALSE(c.at(0, 0).has_value());
  EXPECT_EQ(c.at(1, 1).value(), 205u);  // 200 + 5 inside the mask
}

TEST(MatrixWriteBack, ComplementMaskWritesOutsidePattern) {
  auto c = zeros();
  const auto t = mat({{0, 0, 1}, {1, 1, 2}});
  const auto mask = mat({{0, 0, 1}});
  Descriptor desc;
  desc.complement_mask = true;
  grb::eWiseAdd(c, &mask, NoAccum{}, grb::Plus<U64>{}, t, zeros(), desc);
  EXPECT_FALSE(c.at(0, 0).has_value());  // masked out by complement
  EXPECT_EQ(c.at(1, 1).value(), 2u);
}

TEST(MatrixWriteBack, ValuedMaskUsesTruthinessStructuralIgnoresIt) {
  const auto t = mat({{0, 0, 1}, {1, 1, 2}});
  const auto mask = mat({{0, 0, 0}, {1, 1, 7}});  // (0,0) stored but falsy
  auto c = zeros();
  grb::eWiseAdd(c, &mask, NoAccum{}, grb::Plus<U64>{}, t, zeros());
  EXPECT_FALSE(c.at(0, 0).has_value());
  EXPECT_EQ(c.at(1, 1).value(), 2u);

  auto s = zeros();
  Descriptor desc;
  desc.structural_mask = true;
  grb::eWiseAdd(s, &mask, NoAccum{}, grb::Plus<U64>{}, t, zeros(), desc);
  EXPECT_EQ(s.at(0, 0).value(), 1u);  // structure admits the falsy entry
  EXPECT_EQ(s.at(1, 1).value(), 2u);
}

// The parallel merge must agree with the serial one entry-for-entry on a
// social-shaped workload big enough to cross the parallel threshold.
TEST(MatrixWriteBack, ParallelMatchesSerialOnLargeMaskedAccum) {
  grbsm::support::Xoshiro256 rng(7);
  const Index n = 600;
  std::vector<grb::Tuple<U64>> ct, tt, mt;
  for (int k = 0; k < 30000; ++k) {
    ct.push_back({rng.bounded(n), rng.bounded(n), rng.bounded(100) + 1});
    tt.push_back({rng.bounded(n), rng.bounded(n), rng.bounded(100) + 1});
    mt.push_back({rng.bounded(n), rng.bounded(n), rng.bounded(2)});
  }
  const auto base = Matrix<U64>::build(n, n, ct, grb::Plus<U64>{});
  const auto t = Matrix<U64>::build(n, n, tt, grb::Plus<U64>{});
  const auto mask = Matrix<U64>::build(n, n, mt, grb::Plus<U64>{});
  Descriptor desc;
  desc.replace = true;

  auto serial = base;
  {
    grb::ThreadGuard guard(1);
    grb::eWiseAdd(serial, &mask, grb::Plus<U64>{}, grb::Plus<U64>{}, t,
                  Matrix<U64>(n, n), desc);
  }
  auto parallel = base;
  {
    grb::ThreadGuard guard(4);
    grb::eWiseAdd(parallel, &mask, grb::Plus<U64>{}, grb::Plus<U64>{}, t,
                  Matrix<U64>(n, n), desc);
  }
  serial.check_invariants();
  parallel.check_invariants();
  EXPECT_EQ(serial, parallel);
}

TEST(AdoptCsr, AcceptsValidArraysAndVerifiesWhenAsked) {
  std::vector<Index> rowptr{0, 2, 2, 3};
  std::vector<Index> colind{0, 2, 1};
  std::vector<U64> val{1, 2, 3};
  const auto m =
      Matrix<U64>::adopt_csr(3, 3, std::move(rowptr), std::move(colind),
                             std::move(val), CsrCheck::kAlways);
  EXPECT_EQ(m.nvals(), 3u);
  EXPECT_EQ(m.at(0, 2).value(), 2u);
}

TEST(AdoptCsr, RejectsUnsortedRow) {
  std::vector<Index> rowptr{0, 2};
  std::vector<Index> colind{2, 0};  // descending within the row
  std::vector<U64> val{1, 2};
  EXPECT_THROW(Matrix<U64>::adopt_csr(1, 3, std::move(rowptr),
                                      std::move(colind), std::move(val),
                                      CsrCheck::kAlways),
               grb::InvalidValue);
}

TEST(AdoptCsr, RejectsDuplicateColumnInRow) {
  std::vector<Index> rowptr{0, 2};
  std::vector<Index> colind{1, 1};
  std::vector<U64> val{1, 2};
  EXPECT_THROW(Matrix<U64>::adopt_csr(1, 3, std::move(rowptr),
                                      std::move(colind), std::move(val),
                                      CsrCheck::kAlways),
               grb::InvalidValue);
}

TEST(AdoptCsr, RejectsBadRowptr) {
  {
    // rowptr does not end at nnz.
    std::vector<Index> rowptr{0, 1};
    std::vector<Index> colind{0, 1};
    std::vector<U64> val{1, 2};
    EXPECT_THROW(Matrix<U64>::adopt_csr(1, 2, std::move(rowptr),
                                        std::move(colind), std::move(val),
                                        CsrCheck::kAlways),
                 grb::InvalidValue);
  }
  {
    // Non-monotone rowptr.
    std::vector<Index> rowptr{0, 2, 1, 2};
    std::vector<Index> colind{0, 1};
    std::vector<U64> val{1, 2};
    EXPECT_THROW(Matrix<U64>::adopt_csr(3, 2, std::move(rowptr),
                                        std::move(colind), std::move(val),
                                        CsrCheck::kAlways),
                 grb::InvalidValue);
  }
  {
    // Wrong rowptr length for nrows.
    std::vector<Index> rowptr{0, 1};
    std::vector<Index> colind{0};
    std::vector<U64> val{1};
    EXPECT_THROW(Matrix<U64>::adopt_csr(2, 2, std::move(rowptr),
                                        std::move(colind), std::move(val),
                                        CsrCheck::kAlways),
                 grb::InvalidValue);
  }
}

TEST(AdoptCsr, RejectsColumnOutOfRange) {
  std::vector<Index> rowptr{0, 1};
  std::vector<Index> colind{5};
  std::vector<U64> val{1};
  EXPECT_THROW(Matrix<U64>::adopt_csr(1, 3, std::move(rowptr),
                                      std::move(colind), std::move(val),
                                      CsrCheck::kAlways),
               grb::InvalidValue);
}

TEST(AdoptCsr, NeverSkipsTheCheckEvenInDebug) {
  // kNever adopts broken arrays without throwing — callers own the risk.
  std::vector<Index> rowptr{0, 2};
  std::vector<Index> colind{2, 0};
  std::vector<U64> val{1, 2};
  const auto m =
      Matrix<U64>::adopt_csr(1, 3, std::move(rowptr), std::move(colind),
                             std::move(val), CsrCheck::kNever);
  EXPECT_EQ(m.nvals(), 2u);  // adopted verbatim
}

}  // namespace
