#include <gtest/gtest.h>

#include <cstdint>

#include "grb/grb.hpp"

namespace {

using grb::Index;
using grb::Matrix;
using grb::Vector;
using U64 = std::uint64_t;

Matrix<U64> example() {
  // [ 1 2 . ]
  // [ . . . ]
  // [ 3 . 4 ]
  return Matrix<U64>::build(3, 3,
                            {{0, 0, 1}, {0, 1, 2}, {2, 0, 3}, {2, 2, 4}});
}

TEST(ReduceRows, PlusMonoid) {
  Vector<U64> w(3);
  grb::reduce_rows(w, grb::plus_monoid<U64>(), example());
  EXPECT_EQ(w.at_or(0, 0), 3u);
  EXPECT_FALSE(w.at(1).has_value());  // empty row → no entry
  EXPECT_EQ(w.at_or(2, 0), 7u);
}

TEST(ReduceRows, LorMonoidIsBooleanOr) {
  // Q2 incremental Step 3: any truthy value per row.
  Vector<U64> w(3);
  grb::reduce_rows(w, grb::lor_monoid<U64>(), example());
  EXPECT_EQ(w.at_or(0, 0), 1u);
  EXPECT_EQ(w.at_or(2, 0), 1u);
  EXPECT_EQ(w.nvals(), 2u);
}

TEST(ReduceRows, MinMaxMonoids) {
  Vector<U64> lo(3), hi(3);
  grb::reduce_rows(lo, grb::min_monoid<U64>(), example());
  grb::reduce_rows(hi, grb::max_monoid<U64>(), example());
  EXPECT_EQ(lo.at_or(0, 99), 1u);
  EXPECT_EQ(hi.at_or(0, 99), 2u);
  EXPECT_EQ(lo.at_or(2, 99), 3u);
  EXPECT_EQ(hi.at_or(2, 99), 4u);
}

TEST(ReduceScalar, MatrixAndVector) {
  EXPECT_EQ(grb::reduce_scalar<U64>(grb::plus_monoid<U64>(), example()), 10u);
  const auto v = Vector<U64>::build(5, {1, 3}, {6, 7});
  EXPECT_EQ(grb::reduce_scalar<U64>(grb::plus_monoid<U64>(), v), 13u);
  EXPECT_EQ(grb::reduce_scalar<U64>(grb::max_monoid<U64>(), v), 7u);
}

TEST(ReduceScalar, EmptyYieldsIdentity) {
  const Matrix<U64> m(3, 3);
  EXPECT_EQ(grb::reduce_scalar<U64>(grb::plus_monoid<U64>(), m), 0u);
  const Vector<U64> v(3);
  EXPECT_EQ(grb::reduce_scalar<U64>(grb::plus_monoid<U64>(), v), 0u);
}

TEST(Apply, TimesScalarOnVector) {
  // Alg. 1 line 7: multiply-by-10.
  const auto u = Vector<U64>::build(4, {0, 2}, {2, 1});
  Vector<U64> w(4);
  grb::apply(w, grb::TimesScalar<U64>{10}, u);
  EXPECT_EQ(w.at_or(0, 0), 20u);
  EXPECT_EQ(w.at_or(2, 0), 10u);
  EXPECT_EQ(w.nvals(), 2u);
}

TEST(Apply, UnaryOpsOnMatrix) {
  Matrix<U64> ones(3, 3);
  grb::apply(ones, grb::One<U64>{}, example());
  for (const auto& t : ones.extract_tuples()) {
    EXPECT_EQ(t.val, 1u);
  }
  EXPECT_EQ(ones.nvals(), example().nvals());
}

TEST(Apply, PreservesPattern) {
  const auto u = Vector<U64>::build(4, {1, 3}, {0, 5});
  Vector<U64> w(4);
  grb::apply(w, grb::PlusScalar<U64>{100}, u);
  // Entry with stored value 0 stays an entry (GraphBLAS does not drop
  // explicit zeros).
  EXPECT_EQ(w.nvals(), 2u);
  EXPECT_EQ(w.at_or(1, 9), 100u);
}

TEST(Apply, TypeConversion) {
  const auto u = Vector<std::uint8_t>::build(3, {0}, {200});
  Vector<U64> w(3);
  grb::apply(w, grb::Identity<std::uint8_t>{}, u);
  EXPECT_EQ(w.at_or(0, 0), 200u);
}

TEST(Select, ValueEqKeepsMatchingCells) {
  // Q2 incremental Step 2: keep AC cells equal to 2.
  const auto m = Matrix<U64>::build(
      2, 3, {{0, 0, 1}, {0, 1, 2}, {1, 0, 2}, {1, 2, 3}});
  Matrix<U64> kept(2, 3);
  grb::select(kept, grb::ValueEq<U64>{2}, m);
  EXPECT_EQ(kept.nvals(), 2u);
  EXPECT_TRUE(kept.has(0, 1));
  EXPECT_TRUE(kept.has(1, 0));
}

TEST(Select, ValueThresholds) {
  const auto v = Vector<U64>::build(5, {0, 1, 2, 3}, {1, 5, 3, 5});
  Vector<U64> gt(5), ge(5), ne(5);
  grb::select(gt, grb::ValueGt<U64>{3}, v);
  grb::select(ge, grb::ValueGe<U64>{3}, v);
  grb::select(ne, grb::ValueNe<U64>{5}, v);
  EXPECT_EQ(gt.nvals(), 2u);
  EXPECT_EQ(ge.nvals(), 3u);
  EXPECT_EQ(ne.nvals(), 2u);
}

TEST(Select, PositionalPredicates) {
  const auto m = Matrix<U64>::build(
      3, 3, {{0, 0, 1}, {0, 2, 1}, {1, 1, 1}, {2, 0, 1}, {2, 1, 1}});
  Matrix<U64> lower(3, 3), upper(3, 3), off(3, 3);
  grb::select(lower, grb::StrictLower<U64>{}, m);
  grb::select(upper, grb::StrictUpper<U64>{}, m);
  grb::select(off, grb::OffDiag<U64>{}, m);
  EXPECT_EQ(lower.nvals(), 2u);  // (2,0), (2,1)
  EXPECT_EQ(upper.nvals(), 1u);  // (0,2)
  EXPECT_EQ(off.nvals(), 3u);
}

TEST(Select, NonZeroDropsExplicitZeros) {
  const auto v = Vector<U64>::build(3, {0, 1}, {0, 2});
  Vector<U64> w(3);
  grb::select(w, grb::NonZero<U64>{}, v);
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_EQ(w.at_or(1, 0), 2u);
}

TEST(ReduceRows, MatchesManualRowSums) {
  // Property sweep over a banded matrix.
  const Index n = 200;
  std::vector<grb::Tuple<U64>> tuples;
  for (Index i = 0; i < n; ++i) {
    for (Index d = 0; d < 3 && i + d < n; ++d) {
      tuples.push_back({i, i + d, (i + d) % 10 + 1});
    }
  }
  const auto m = Matrix<U64>::build(n, n, tuples);
  Vector<U64> w(n);
  grb::reduce_rows(w, grb::plus_monoid<U64>(), m);
  for (Index i = 0; i < n; ++i) {
    U64 expect = 0;
    for (Index d = 0; d < 3 && i + d < n; ++d) expect += (i + d) % 10 + 1;
    EXPECT_EQ(w.at_or(i, 0), expect);
  }
}

}  // namespace
