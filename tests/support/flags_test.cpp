// Hardening suite for the strict flag parser: malformed numeric values and
// unknown boolean spellings must terminate with exit status 2 and a message
// naming the flag — never parse silently as a prefix (the pre-hardening
// parser turned --pipeline=ten into depth 0 and --shards=4x into 4, which a
// daemon exposed to untrusted input cannot tolerate).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "support/flags.hpp"

namespace {

using grbsm::support::Flags;

/// Builds a Flags over a literal argv (argv[0] is the program name).
Flags make_flags(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return Flags(static_cast<int>(argv.size()),
               const_cast<char**>(argv.data()));
}

TEST(FlagsStrict, WellFormedIntegersParse) {
  const Flags flags = make_flags({"--a=17", "--b", "42", "--neg=-5", "--z=0",
                                  "--big=9223372036854775807", "--ws= 8"});
  EXPECT_EQ(flags.get_int("a", 0), 17);
  EXPECT_EQ(flags.get_int("b", 0), 42);  // --flag value spelling
  EXPECT_EQ(flags.get_int("neg", 0), -5);
  EXPECT_EQ(flags.get_int("z", 1), 0);
  EXPECT_EQ(flags.get_int("big", 0), INT64_MAX);
  // strtoll skips leading whitespace; full consumption still holds.
  EXPECT_EQ(flags.get_int("ws", 0), 8);
  EXPECT_EQ(flags.get_int("absent", -3), -3);
}

TEST(FlagsStrict, NegativeValueAfterSpaceIsConsumedAsValue) {
  // "-5" does not start with "--", so it is the value of --min, not a
  // positional argument.
  const Flags flags = make_flags({"--min", "-5"});
  EXPECT_EQ(flags.get_int("min", 0), -5);
  EXPECT_TRUE(flags.positional().empty());
}

TEST(FlagsStrictDeathTest, AlphabeticIntegerExits) {
  // The motivating bug: --pipeline=ten used to parse as depth 0 and then
  // fail much later with a confusing "depth >= 1" engine error.
  const Flags flags = make_flags({"--pipeline=ten"});
  EXPECT_EXIT((void)flags.get_int("pipeline", 1),
              ::testing::ExitedWithCode(2), "--pipeline.*integer.*ten");
}

TEST(FlagsStrictDeathTest, TrailingJunkIntegerExits) {
  const Flags flags = make_flags({"--shards=4x"});
  EXPECT_EXIT((void)flags.get_int("shards", 1), ::testing::ExitedWithCode(2),
              "--shards.*integer.*4x");
}

TEST(FlagsStrictDeathTest, EmptyIntegerExits) {
  const Flags flags = make_flags({"--shards="});
  EXPECT_EXIT((void)flags.get_int("shards", 1), ::testing::ExitedWithCode(2),
              "--shards.*integer");
}

TEST(FlagsStrictDeathTest, OutOfRangeIntegerExits) {
  const Flags flags = make_flags({"--n=99999999999999999999999999"});
  EXPECT_EXIT((void)flags.get_int("n", 1), ::testing::ExitedWithCode(2),
              "--n.*integer");
}

TEST(FlagsStrict, WellFormedDoublesParse) {
  const Flags flags = make_flags(
      {"--a=1.5", "--b=-0.25", "--c=1e3", "--d", "2.5e-2", "--e=7"});
  EXPECT_DOUBLE_EQ(flags.get_double("a", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(flags.get_double("b", 0.0), -0.25);
  EXPECT_DOUBLE_EQ(flags.get_double("c", 0.0), 1000.0);
  EXPECT_DOUBLE_EQ(flags.get_double("d", 0.0), 0.025);
  EXPECT_DOUBLE_EQ(flags.get_double("e", 0.0), 7.0);
  EXPECT_DOUBLE_EQ(flags.get_double("absent", 1.25), 1.25);
}

TEST(FlagsStrictDeathTest, AlphabeticDoubleExits) {
  const Flags flags = make_flags({"--alpha=fast"});
  EXPECT_EXIT((void)flags.get_double("alpha", 1.0),
              ::testing::ExitedWithCode(2), "--alpha.*number.*fast");
}

TEST(FlagsStrictDeathTest, TrailingJunkDoubleExits) {
  const Flags flags = make_flags({"--alpha=1.5z"});
  EXPECT_EXIT((void)flags.get_double("alpha", 1.0),
              ::testing::ExitedWithCode(2), "--alpha.*number.*1\\.5z");
}

TEST(FlagsStrict, BoolSpellings) {
  const Flags flags = make_flags({"--a=true", "--b=1", "--c=yes", "--d=on",
                                  "--e=false", "--f=0", "--g=no", "--h=off",
                                  "--bare"});
  EXPECT_TRUE(flags.get_bool("a", false));
  EXPECT_TRUE(flags.get_bool("b", false));
  EXPECT_TRUE(flags.get_bool("c", false));
  EXPECT_TRUE(flags.get_bool("d", false));
  EXPECT_FALSE(flags.get_bool("e", true));
  EXPECT_FALSE(flags.get_bool("f", true));
  EXPECT_FALSE(flags.get_bool("g", true));
  EXPECT_FALSE(flags.get_bool("h", true));
  EXPECT_TRUE(flags.get_bool("bare", false));  // bare --flag means true
  EXPECT_TRUE(flags.get_bool("absent", true));
  EXPECT_FALSE(flags.get_bool("absent2", false));
}

TEST(FlagsStrictDeathTest, MisspelledBoolExits) {
  // A silent `false` for --verify=ture would disable the very check the
  // caller asked for.
  const Flags flags = make_flags({"--verify=ture"});
  EXPECT_EXIT((void)flags.get_bool("verify", false),
              ::testing::ExitedWithCode(2), "--verify.*boolean.*ture");
}

TEST(FlagsStrict, EqualsAndSpaceSpellingsAreEquivalent) {
  const Flags eq = make_flags({"--depth=4", "--mode=fast"});
  const Flags sp = make_flags({"--depth", "4", "--mode", "fast"});
  EXPECT_EQ(eq.get_int("depth", 0), sp.get_int("depth", 0));
  EXPECT_EQ(eq.get("mode", ""), sp.get("mode", ""));
}

TEST(FlagsStrict, UnqueriedTracksOnlyUnreadFlags) {
  const Flags flags = make_flags({"--read=1", "--typo=2", "--also-typo"});
  EXPECT_EQ(flags.get_int("read", 0), 1);
  EXPECT_EQ(flags.unqueried(),
            (std::vector<std::string>{"also-typo", "typo"}));
}

TEST(FlagsStrict, RejectUnqueriedPassesWhenAllFlagsWereRead) {
  const Flags flags = make_flags({"--read=1"});
  EXPECT_EQ(flags.get_int("read", 0), 1);
  flags.reject_unqueried("flags_test");  // must not exit
}

TEST(FlagsStrictDeathTest, RejectUnqueriedExitsNamingTheTypo) {
  // The --shard=4 (for --shards=4) typo must not quietly run unsharded.
  const Flags flags = make_flags({"--shard=4", "--smoke"});
  EXPECT_TRUE(flags.get_bool("smoke", false));
  EXPECT_EXIT(flags.reject_unqueried("fig5_runtime"),
              ::testing::ExitedWithCode(2), "fig5_runtime.*--shard");
}

}  // namespace
