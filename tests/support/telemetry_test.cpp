// Telemetry subsystem tests: histogram bucket math and percentile accuracy
// against exact sorted references, snapshot merge/delta algebra, registry
// get-or-create + batch coherence under a concurrent writer, the kMetrics
// wire codec, trace-span nesting, cross-thread epoch correlation, ring
// wraparound and disabled-mode no-ops. The TSan lane re-runs every
// Telemetry* suite (concurrent recorders, seqlock snapshots, span rings).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "queries/top_k.hpp"
#include "support/rng.hpp"
#include "support/telemetry/metrics.hpp"
#include "support/telemetry/trace.hpp"

namespace grbsm::telemetry {
namespace {

// --- histogram ---------------------------------------------------------------

TEST(TelemetryHistogram, BucketBoundaries) {
  // Bucket 0 is exact zeros; bucket i (1..62) holds [2^(i-1), 2^i).
  EXPECT_EQ(bucket_of(0), 0u);
  EXPECT_EQ(bucket_of(1), 1u);
  EXPECT_EQ(bucket_of(2), 2u);
  EXPECT_EQ(bucket_of(3), 2u);
  EXPECT_EQ(bucket_of(4), 3u);
  for (std::size_t i = 2; i + 1 < kHistogramBuckets; ++i) {
    EXPECT_EQ(bucket_of(bucket_lo(i)), i) << "lower edge of bucket " << i;
    EXPECT_EQ(bucket_of(bucket_hi(i) - 1), i) << "upper edge of bucket " << i;
    EXPECT_EQ(bucket_of(bucket_hi(i)), i + 1) << "first value past " << i;
  }
  // Everything with the top bit set folds into the overflow tail.
  EXPECT_EQ(bucket_of(~std::uint64_t{0}), kHistogramBuckets - 1);
  EXPECT_EQ(bucket_of(std::uint64_t{1} << 63), kHistogramBuckets - 1);
}

TEST(TelemetryHistogram, RecordCountSumMax) {
  Histogram h;
  for (const std::uint64_t v : {0ull, 1ull, 5ull, 5ull, 1000ull}) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count(), 5u);
  EXPECT_EQ(s.sum, 1011u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_DOUBLE_EQ(s.mean(), 1011.0 / 5.0);
  EXPECT_EQ(s.buckets[bucket_of(0)], 1u);
  EXPECT_EQ(s.buckets[bucket_of(5)], 2u);
  h.reset();
  EXPECT_EQ(h.snapshot().count(), 0u);
}

TEST(TelemetryHistogram, MergeIsAssociativeAndCommutative) {
  grbsm::support::Xoshiro256 rng(7);
  Histogram ha;
  Histogram hb;
  Histogram hc;
  for (int i = 0; i < 500; ++i) {
    ha.record(rng.bounded(1u << 20));
    hb.record(rng.bounded(1u << 10));
    hc.record(rng.bounded(1u << 30));
  }
  const HistogramSnapshot a = ha.snapshot();
  const HistogramSnapshot b = hb.snapshot();
  const HistogramSnapshot c = hc.snapshot();
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b + c).count(), 1500u);
  EXPECT_EQ((a + b + c).sum, a.sum + b.sum + c.sum);
}

TEST(TelemetryHistogram, PercentilesTrackExactReferenceWithinOneBucket) {
  // Power-of-two buckets bracket the true quantile: the estimate must land
  // inside the bucket containing the exact order statistic.
  grbsm::support::Xoshiro256 rng(42);
  for (const std::uint64_t spread : {1u << 8, 1u << 16, 1u << 24}) {
    Histogram h;
    std::vector<std::uint64_t> exact;
    for (int i = 0; i < 20000; ++i) {
      // Heavy-tailed mix: mostly small values, occasional large ones, like
      // the latency streams the histogram exists for.
      const std::uint64_t v = rng.chance(0.95) ? rng.bounded(spread / 16 + 1)
                                               : rng.bounded(spread);
      h.record(v + 1);  // keep values >= 1 so ratios are well-defined
      exact.push_back(v + 1);
    }
    std::sort(exact.begin(), exact.end());
    const HistogramSnapshot s = h.snapshot();
    for (const double q : {0.50, 0.90, 0.99, 0.999}) {
      const auto rank = static_cast<std::size_t>(
          q * static_cast<double>(exact.size() - 1));
      const std::uint64_t truth = exact[rank];
      const double est = s.quantile(q);
      EXPECT_GE(est, static_cast<double>(bucket_lo(bucket_of(truth))))
          << "q=" << q << " spread=" << spread;
      EXPECT_LE(est, static_cast<double>(bucket_hi(bucket_of(truth))))
          << "q=" << q << " spread=" << spread;
    }
    // The extreme quantile is capped by the recorded max, not the bucket's
    // theoretical upper edge.
    EXPECT_LE(s.quantile(1.0), static_cast<double>(s.max));
  }
}

TEST(TelemetryHistogram, EmptyAndSingleValueQuantiles) {
  Histogram h;
  EXPECT_EQ(h.snapshot().quantile(0.5), 0.0);
  EXPECT_EQ(h.snapshot().count(), 0u);
  h.record(77);
  const HistogramSnapshot s = h.snapshot();
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_GE(s.quantile(q), static_cast<double>(bucket_lo(bucket_of(77))));
    EXPECT_LE(s.quantile(q), 77.0);  // capped by max
  }
}

TEST(TelemetryHistogram, DeltaSinceRecoversTheInterval) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(10);
  const HistogramSnapshot before = h.snapshot();
  for (int i = 0; i < 50; ++i) h.record(1000);
  const HistogramSnapshot after = h.snapshot();
  const HistogramSnapshot d = after.delta_since(before);
  EXPECT_EQ(d.count(), 50u);
  EXPECT_EQ(d.sum, 50u * 1000u);
  EXPECT_EQ(d.buckets[bucket_of(1000)], 50u);
  EXPECT_EQ(d.buckets[bucket_of(10)], 0u);
  // Saturating: a reset between polls must not underflow.
  const HistogramSnapshot inverted = before.delta_since(after);
  EXPECT_EQ(inverted.count(), 0u);
  EXPECT_EQ(inverted.sum, 0u);
}

TEST(TelemetryHistogram, ConcurrentRelaxedRecording) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      grbsm::support::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) h.record(rng.bounded(1u << 16));
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t from_buckets = 0;
  for (const std::uint64_t b : s.buckets) from_buckets += b;
  EXPECT_EQ(from_buckets, s.count());
  EXPECT_LT(s.max, 1u << 16);
}

// --- registry ----------------------------------------------------------------

TEST(TelemetryRegistry, GetOrCreateReturnsStableReferences) {
  Registry& reg = Registry::instance();
  Counter& a = reg.counter("test.registry.stable");
  Counter& b = reg.counter("test.registry.stable");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  // Same name, different kind: refused loudly.
  EXPECT_THROW(reg.gauge("test.registry.stable"), std::logic_error);
  EXPECT_THROW(reg.histogram("test.registry.stable"), std::logic_error);
}

TEST(TelemetryRegistry, SnapshotIsSortedAndTyped) {
  Registry& reg = Registry::instance();
  reg.counter("test.snap.zz_counter").add(5);
  reg.gauge("test.snap.aa_gauge").set(9);
  reg.histogram("test.snap.mm_hist").record(123);
  const RegistrySnapshot s = reg.snapshot();
  EXPECT_TRUE(std::is_sorted(
      s.entries.begin(), s.entries.end(),
      [](const auto& x, const auto& y) { return x.first < y.first; }));
  EXPECT_EQ(s.value_or("test.snap.zz_counter", 0), 5u);
  EXPECT_EQ(s.value_or("test.snap.aa_gauge", 0), 9u);
  EXPECT_EQ(s.value_or("test.snap.absent", 42), 42u);
  const HistogramSnapshot* h = s.histogram("test.snap.mm_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_EQ(s.histogram("test.snap.zz_counter"), nullptr);
  const MetricValue* mv = s.find("test.snap.aa_gauge");
  ASSERT_NE(mv, nullptr);
  EXPECT_EQ(mv->kind, MetricKind::kGauge);
}

TEST(TelemetryRegistry, BatchedWritesNeverTearInSnapshots) {
  // The stats-tearing regression at the registry level: a writer updates a
  // two-counter family under BatchScope; every snapshot must observe the
  // family's invariant (a == b) no matter when it lands.
  Registry& reg = Registry::instance();
  Counter& a = reg.counter("test.batch.a");
  Counter& b = reg.counter("test.batch.b");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const Registry::BatchScope batch;
      a.add(1);
      b.add(1);
    }
  });
  const std::uint64_t base_a = 0;
  for (int i = 0; i < 2000; ++i) {
    const RegistrySnapshot s = reg.snapshot();
    EXPECT_EQ(s.value_or("test.batch.a", base_a),
              s.value_or("test.batch.b", base_a))
        << "snapshot " << i << " tore a batched counter family";
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(TelemetryRegistry, SerializeParseRoundtrip) {
  Registry& reg = Registry::instance();
  reg.counter("test.wire.counter").add(0xdeadbeef);
  reg.gauge("test.wire.gauge").set(17);
  Histogram& h = reg.histogram("test.wire.hist");
  grbsm::support::Xoshiro256 rng(5);
  for (int i = 0; i < 300; ++i) h.record(rng.bounded(1u << 22));
  const RegistrySnapshot s = reg.snapshot();
  const std::vector<std::uint8_t> blob = serialize(s);
  const RegistrySnapshot parsed = parse_snapshot(blob.data(), blob.size());
  EXPECT_EQ(parsed.schema_version, kMetricsSchemaVersion);
  ASSERT_EQ(parsed.entries.size(), s.entries.size());
  for (std::size_t i = 0; i < s.entries.size(); ++i) {
    EXPECT_EQ(parsed.entries[i].first, s.entries[i].first);
    EXPECT_EQ(parsed.entries[i].second.kind, s.entries[i].second.kind);
    EXPECT_EQ(parsed.entries[i].second.value, s.entries[i].second.value);
    EXPECT_EQ(parsed.entries[i].second.hist, s.entries[i].second.hist);
  }
}

TEST(TelemetryRegistry, ParseRejectsMalformedPayloads) {
  Registry& reg = Registry::instance();
  reg.counter("test.wire.reject").add(1);
  const std::vector<std::uint8_t> blob = serialize(reg.snapshot());
  // Truncations at every prefix must throw, never read out of bounds.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{3},
                                std::size_t{7}, blob.size() - 1}) {
    EXPECT_THROW((void)parse_snapshot(blob.data(), cut), std::runtime_error)
        << "cut=" << cut;
  }
  std::vector<std::uint8_t> bad_kind = blob;
  bad_kind[8] = 0x7f;  // first entry's kind byte
  EXPECT_THROW((void)parse_snapshot(bad_kind.data(), bad_kind.size()),
               std::runtime_error);
}

TEST(TelemetryRegistry, ProvidersContributeAndDetach) {
  Registry& reg = Registry::instance();
  const std::uint64_t id = reg.add_provider([](auto& entries) {
    MetricValue mv;
    mv.kind = MetricKind::kGauge;
    mv.value = 1234;
    entries.emplace_back("test.provider.level", mv);
  });
  EXPECT_EQ(reg.snapshot().value_or("test.provider.level", 0), 1234u);
  reg.remove_provider(id);
  EXPECT_EQ(reg.snapshot().value_or("test.provider.level", 0), 0u);
}

TEST(TelemetryRegistry, PruneCountersRoundTripThroughRegistry) {
  // The migrated queries:: accessors keep their contract: adds accumulate,
  // reads are coherent, reset zeroes the family.
  queries::reset_prune_counters();
  queries::PruneStats d;
  d.blocks_total = 10;
  d.blocks_scanned = 6;
  d.blocks_skipped = 4;
  d.pool_hits = 2;
  d.pool_rebuilds = 1;
  d.bound_rebuilds = 3;
  queries::add_prune_counters(d);
  queries::add_prune_counters(d);
  queries::PruneStats twice = d;
  twice += d;
  EXPECT_EQ(queries::prune_counters(), twice);
  // The same values are visible under their registry names.
  const RegistrySnapshot s = Registry::instance().snapshot();
  EXPECT_EQ(s.value_or("prune.blocks_total", 0), 20u);
  EXPECT_EQ(s.value_or("prune.bound_rebuilds", 0), 6u);
  queries::reset_prune_counters();
  EXPECT_EQ(queries::prune_counters(), queries::PruneStats{});
}

// --- tracing -----------------------------------------------------------------

/// Saves/restores the mode and clears the rings so trace tests compose in
/// one process (the tracer is a process-global singleton).
class TelemetryTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    prior_ = mode();
    Tracer::instance().clear();
  }
  void TearDown() override {
    set_mode(prior_);
    Tracer::instance().clear();
  }

 private:
  TelemetryMode prior_ = TelemetryMode::kMetricsOnly;
};

std::vector<CompletedSpan> spans_named(const std::vector<CompletedSpan>& all,
                                       const std::string& name) {
  std::vector<CompletedSpan> out;
  for (const CompletedSpan& s : all) {
    if (s.name == name) out.push_back(s);
  }
  return out;
}

TEST_F(TelemetryTrace, OffModeRecordsNothing) {
  set_mode(TelemetryMode::kOff);
  {
    GRB_TRACE_SPAN("off_mode", 1);
    SpanScope manual("off_manual", 2, nullptr);
  }
  EXPECT_TRUE(Tracer::instance().collect().empty());
}

TEST_F(TelemetryTrace, MetricsOnlyTimesButDoesNotTrace) {
  set_mode(TelemetryMode::kMetricsOnly);
  Histogram h;
  { SpanScope span("metrics_only", 3, &h); }
  EXPECT_EQ(h.snapshot().count(), 1u);  // duration recorded...
  EXPECT_TRUE(Tracer::instance().collect().empty());  // ...but no events
}

TEST_F(TelemetryTrace, NestedSpansCompleteInnerFirst) {
  set_mode(TelemetryMode::kTracing);
  Histogram houter;
  Histogram hinner;
  {
    SpanScope outer("outer", 1, &houter);
    SpanScope inner("inner", 1, &hinner);
  }
  const std::vector<CompletedSpan> all = Tracer::instance().collect();
  ASSERT_EQ(all.size(), 2u);
  // Per-thread spans come back in completion order: inner closes first.
  EXPECT_EQ(all[0].name, "inner");
  EXPECT_EQ(all[1].name, "outer");
  EXPECT_GE(all[0].start_ns, all[1].start_ns);
  EXPECT_LE(all[0].end_ns, all[1].end_ns);
  EXPECT_EQ(houter.snapshot().count(), 1u);
  EXPECT_EQ(hinner.snapshot().count(), 1u);
}

TEST_F(TelemetryTrace, SetEpochRelabelsTheSpan) {
  set_mode(TelemetryMode::kTracing);
  {
    SpanScope span("relabel", 0, nullptr);
    span.set_epoch(41);
    span.set_epoch(42);  // last write wins
  }
  const std::vector<CompletedSpan> all = Tracer::instance().collect();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].epoch, 42u);
}

TEST_F(TelemetryTrace, CrossThreadSpansCorrelateByEpoch) {
  set_mode(TelemetryMode::kTracing);
  constexpr std::uint64_t kEpoch = 9;
  const char* const stages[] = {"stage_route", "stage_apply", "stage_merge"};
  std::vector<std::thread> threads;
  for (const char* stage : stages) {
    threads.emplace_back([stage] {
      SpanScope span(stage, kEpoch, nullptr);
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<CompletedSpan> all = Tracer::instance().collect();
  std::vector<std::uint32_t> tids;
  for (const char* stage : stages) {
    const auto matches = spans_named(all, stage);
    ASSERT_EQ(matches.size(), 1u) << stage;
    EXPECT_EQ(matches[0].epoch, kEpoch);
    tids.push_back(matches[0].tid);
  }
  // Three threads, three distinct ring tids, one shared epoch id — exactly
  // the correlation the Chrome-trace checker keys on.
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end());
}

TEST_F(TelemetryTrace, RingWraparoundKeepsLatestBalancedSpans) {
  set_mode(TelemetryMode::kTracing);
  Tracer& tracer = Tracer::instance();
  tracer.set_ring_capacity(8);  // 4 spans; applies to new threads' rings
  constexpr int kSpans = 50;
  std::thread worker([] {
    for (int i = 0; i < kSpans; ++i) {
      SpanScope span("wrap", static_cast<std::uint64_t>(i), nullptr);
    }
  });
  worker.join();
  tracer.set_ring_capacity(std::size_t{1} << 16);  // restore the default
  const std::vector<CompletedSpan> wraps =
      spans_named(tracer.collect(), "wrap");
  ASSERT_EQ(wraps.size(), 4u);  // ring holds the last 4 complete spans
  for (std::size_t i = 0; i < wraps.size(); ++i) {
    EXPECT_EQ(wraps[i].epoch,
              static_cast<std::uint64_t>(kSpans - 4 + static_cast<int>(i)));
    EXPECT_LE(wraps[i].start_ns, wraps[i].end_ns);
  }
}

TEST_F(TelemetryTrace, ChromeExportIsBalancedAndTagged) {
  set_mode(TelemetryMode::kTracing);
  {
    SpanScope outer("export_outer", 5, nullptr);
    SpanScope inner("export_inner", 5, nullptr);
  }
  std::ostringstream os;
  Tracer::instance().export_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  const auto count = [&json](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("\"ph\":\"B\""), count("\"ph\":\"E\""));
  EXPECT_EQ(count("\"name\":\"export_inner\""), 2u);  // one B, one E
  EXPECT_EQ(count("\"args\":{\"epoch\":5}"), 4u);
  EXPECT_EQ(count("\"ph\":\"M\""), 1u);  // the process_name metadata record
}

}  // namespace
}  // namespace grbsm::telemetry
