#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "support/csv.hpp"
#include "support/flags.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"

namespace {

using namespace grbsm::support;

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, XoshiroDeterministicAndSeedSensitive) {
  Xoshiro256 a(1), b(1), c(2);
  EXPECT_EQ(a.next(), b.next());
  Xoshiro256 a2(1);
  bool differs = false;
  for (int i = 0; i < 8; ++i) {
    if (a2.next() != c.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, BoundedStaysInRangeAndCoversIt) {
  Xoshiro256 rng(3);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.bounded(10);
    ASSERT_LT(v, 10u);
    ++hits[v];
  }
  for (const int h : hits) {
    EXPECT_GT(h, 700);  // roughly uniform
  }
}

TEST(Rng, RangeInclusive) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(5, 7);
    ASSERT_GE(v, 5u);
    ASSERT_LE(v, 7u);
  }
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Zipf, DomainOneAlwaysReturnsOne) {
  ZipfSampler zipf(1, 1.2);
  Xoshiro256 rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.sample(rng), 1u);
  }
}

TEST(Csv, SplitBasicAndQuoted) {
  EXPECT_EQ(split_csv_line("a|b|c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_csv_line("a||c"), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split_csv_line("\"x|y\"|z"),
            (std::vector<std::string>{"x|y", "z"}));
  EXPECT_EQ(split_csv_line("\"he said \"\"hi\"\"\"|b"),
            (std::vector<std::string>{"he said \"hi\"", "b"}));
  EXPECT_EQ(split_csv_line("a,b", ','), (std::vector<std::string>{"a", "b"}));
}

TEST(Csv, ParseNumbers) {
  EXPECT_EQ(parse_u64("123"), 123u);
  EXPECT_EQ(parse_i64("-5"), -5);
  EXPECT_THROW(parse_u64("12x"), std::invalid_argument);
  EXPECT_THROW(parse_u64(""), std::invalid_argument);
  EXPECT_THROW(parse_i64("--3"), std::invalid_argument);
}

TEST(Csv, ReaderWriterRoundTrip) {
  const auto path = (std::filesystem::temp_directory_path() /
                     "grbsm_csv_roundtrip_test.csv")
                        .string();
  {
    CsvWriter w(path);
    w.write_record({"1", "hello", "3"});
    w.write_record({"4", "", "6"});
    w.flush();
  }
  CsvReader r(path);
  std::vector<std::string> f;
  ASSERT_TRUE(r.next(f));
  EXPECT_EQ(f, (std::vector<std::string>{"1", "hello", "3"}));
  ASSERT_TRUE(r.next(f));
  EXPECT_EQ(f, (std::vector<std::string>{"4", "", "6"}));
  EXPECT_FALSE(r.next(f));
  std::filesystem::remove(path);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(CsvReader("/nonexistent/definitely/not/here.csv"),
               std::runtime_error);
}

TEST(Flags, ParsesAllForms) {
  // Note: "--name value" is a valid spelling, so bare booleans must be
  // followed by another flag (or end the argv) to stay value-less.
  const char* argv[] = {"prog",       "positional", "--alpha=1", "--beta",
                        "2",          "--delta=x=y", "--gamma"};
  Flags flags(7, const_cast<char**>(argv));
  EXPECT_EQ(flags.get_int("alpha", 0), 1);
  EXPECT_EQ(flags.get_int("beta", 0), 2);
  EXPECT_TRUE(flags.get_bool("gamma", false));
  EXPECT_EQ(flags.get("delta", ""), "x=y");
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"positional"}));
  EXPECT_EQ(flags.get("missing", "def"), "def");
  EXPECT_FALSE(flags.has("missing2"));
}

TEST(Flags, ValueAfterSpaceIsConsumed) {
  const char* argv[] = {"prog", "--gamma", "positional"};
  Flags flags(3, const_cast<char**>(argv));
  EXPECT_EQ(flags.get("gamma", ""), "positional");
  EXPECT_TRUE(flags.positional().empty());
}

TEST(Stats, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0, 9.0}), 6.0);
  EXPECT_DOUBLE_EQ(geometric_mean({5.0}), 5.0);
  EXPECT_EQ(geometric_mean({}), 0.0);
  // Zeros are clamped to the floor rather than collapsing the mean to 0.
  EXPECT_GT(geometric_mean({0.0, 1.0}), 0.0);
}

TEST(Stats, SummaryFields) {
  const auto s = summarize({3.0, 1.0, 2.0, 4.0});
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.geomean, std::pow(24.0, 0.25), 1e-12);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(double(i));
  EXPECT_GT(t.elapsed_ns(), 0);
  EXPECT_GT(t.elapsed_s(), 0.0);
  AccumulatingTimer acc;
  acc.start();
  acc.stop();
  acc.start();
  acc.stop();
  EXPECT_GE(acc.total_ns(), 0);
  acc.reset();
  EXPECT_EQ(acc.total_ns(), 0);
}

}  // namespace
