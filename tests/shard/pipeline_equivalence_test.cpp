// Differential suite for the pipelined ingestion engines: at every (shard
// count, pipeline depth) in the matrix, the pipelined engines' answer
// sequences must be byte-identical to the serial schedule — the unsharded
// incremental reference — on Q1 and Q2, including removal-heavy streams
// (the Q2 removal re-rank path with its full ranks_before scan order) and
// a mid-stream drain/re-fill cycle that empties the window and refills it.
// verify_tools runs every tool through run_once, whose update phase is one
// update_stream call, so the pipelined tools exercise their real overlap
// schedule here, not a degenerate one-at-a-time path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "datagen/generator.hpp"
#include "grb/types.hpp"
#include "harness/registry.hpp"
#include "harness/runner.hpp"
#include "model/change.hpp"
#include "shard/pipelined_engine.hpp"
#include "shard/sharded_state.hpp"

namespace {

using harness::Query;
using harness::ToolSpec;

std::vector<ToolSpec> reference_and_pipelined(int shards, int depth) {
  // The unsharded incremental engine sets the reference (the serial
  // schedule); both pipelined engines must match it byte for byte.
  std::vector<ToolSpec> tools = {harness::find_tool("grb-incremental")};
  for (const ToolSpec& t : harness::pipelined_tools(shards, depth)) {
    tools.push_back(t);
  }
  return tools;
}

struct PipelineCase {
  unsigned scale;
  std::uint64_t seed;
  int shards;
  int depth;
};

class PipelineEquivalence : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineEquivalence, MatchesSerialScheduleOnQ1AndQ2) {
  const auto p = GetParam();
  const auto ds =
      datagen::generate(datagen::params_for_scale(p.scale, p.seed));
  for (const Query q : {Query::kQ1, Query::kQ2}) {
    EXPECT_NO_THROW(harness::verify_tools(
        reference_and_pipelined(p.shards, p.depth), q, ds.initial,
        ds.changes))
        << "shards=" << p.shards << " depth=" << p.depth
        << " seed=" << p.seed << " query=" << harness::query_name(q);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShardsByDepths, PipelineEquivalence,
    ::testing::Values(
        // Full shard-count axis at depth 2, full depth axis at 4 shards,
        // plus the corners (1 shard deep-pipelined, 7 shards × depth 4) and
        // a second seed/scale on the interesting combinations.
        PipelineCase{1, 42, 1, 1}, PipelineCase{1, 42, 1, 4},
        PipelineCase{1, 42, 2, 2}, PipelineCase{1, 42, 4, 1},
        PipelineCase{1, 42, 4, 2}, PipelineCase{1, 42, 4, 4},
        PipelineCase{1, 42, 7, 2}, PipelineCase{1, 42, 7, 4},
        PipelineCase{1, 1337, 2, 4}, PipelineCase{1, 1337, 7, 1},
        PipelineCase{2, 7, 2, 2}, PipelineCase{2, 7, 7, 4},
        PipelineCase{2, 1337, 4, 4}),
    [](const ::testing::TestParamInfo<PipelineCase>& info) {
      return "scale" + std::to_string(info.param.scale) + "_seed" +
             std::to_string(info.param.seed) + "_shards" +
             std::to_string(info.param.shards) + "_depth" +
             std::to_string(info.param.depth);
    });

TEST(PipelineEquivalence, RemovalHeavyStreamMatches) {
  // Removals leave the monotone fast path: every merged answer after a
  // removal epoch is a full re-rank from the publisher-side mirrors, which
  // must reproduce the serial scan (same candidate order, same
  // ranks_before tie handling) while later epochs are already applying on
  // the shard workers.
  auto params = datagen::params_for_scale(2, 2024);
  params.change_sets = 30;
  params.insert_elements = 300;
  params.frac_removals = 0.25;
  const auto ds = datagen::generate(params);
  ASSERT_GE(ds.changes.size(), 20u);
  for (const Query q : {Query::kQ1, Query::kQ2}) {
    for (const int shards : {2, 4}) {
      for (const int depth : {2, 4}) {
        EXPECT_NO_THROW(harness::verify_tools(
            reference_and_pipelined(shards, depth), q, ds.initial,
            ds.changes))
            << "shards=" << shards << " depth=" << depth
            << " query=" << harness::query_name(q);
      }
    }
  }
}

TEST(PipelineEquivalence, MidStreamDrainAndRefillMatches) {
  // Mixing the streamed API with single update() calls drains the window
  // mid-stream (update() merges everything in flight) and refills it; the
  // concatenated answers must still equal the serial schedule.
  const auto ds = datagen::generate(datagen::params_for_scale(1, 99));
  ASSERT_GE(ds.changes.size(), 8u);
  for (const Query q : {Query::kQ1, Query::kQ2}) {
    const auto reference = harness::run_once(
        harness::find_tool("grb-incremental"), q, ds.initial, ds.changes);

    const ToolSpec tool = harness::pipelined_tools(4, 4)[1];
    ASSERT_EQ(tool.key, "grb-pipelined-incremental");
    harness::EnginePtr engine = harness::make_engine(tool, q);
    engine->load(ds.initial);
    ASSERT_EQ(engine->initial(), reference.initial_answer);

    const std::size_t cut1 = ds.changes.size() / 2;
    std::vector<std::string> answers;
    // First chunk streams (fills and drains the window) ...
    const std::vector<sm::ChangeSet> chunk1(ds.changes.begin(),
                                            ds.changes.begin() + cut1);
    for (auto& a : engine->update_stream(chunk1)) {
      answers.push_back(std::move(a));
    }
    // ... one synchronous update drains whatever the stream left behind ...
    answers.push_back(engine->update(ds.changes[cut1]));
    // ... and the tail re-fills the pipeline from an emptied window.
    const std::vector<sm::ChangeSet> chunk2(
        ds.changes.begin() + static_cast<std::ptrdiff_t>(cut1) + 1,
        ds.changes.end());
    for (auto& a : engine->update_stream(chunk2)) {
      answers.push_back(std::move(a));
    }
    EXPECT_EQ(answers, reference.update_answers)
        << "query=" << harness::query_name(q);
  }
}

TEST(PipelineEquivalence, EmptyStreamIsANoOp) {
  // update_stream({}) must return an empty answer vector without reserving
  // an epoch or tripping the publication barrier — the daemon's writer
  // loop can legitimately hand an engine an empty batch between bursts.
  const auto ds = datagen::generate(datagen::params_for_scale(1, 42));
  for (const Query q : {Query::kQ1, Query::kQ2}) {
    const auto reference = harness::run_once(
        harness::find_tool("grb-incremental"), q, ds.initial, ds.changes);

    const ToolSpec tool = harness::pipelined_tools(2, 2)[1];
    ASSERT_EQ(tool.key, "grb-pipelined-incremental");
    harness::EnginePtr engine = harness::make_engine(tool, q);
    engine->load(ds.initial);
    ASSERT_EQ(engine->initial(), reference.initial_answer);

    auto* pipelined = dynamic_cast<shard::GrbPipelinedEngine*>(engine.get());
    ASSERT_NE(pipelined, nullptr);
    EXPECT_TRUE(engine->update_stream({}).empty());
    EXPECT_EQ(pipelined->in_flight(), 0u);
    // No epoch was submitted, so the worker threads never even spun up.
    EXPECT_FALSE(pipelined->state().pipeline_active());

    // The engine is unharmed: the real stream still matches the serial
    // schedule, and a trailing empty stream stays a no-op.
    EXPECT_EQ(engine->update_stream(ds.changes), reference.update_answers);
    EXPECT_TRUE(engine->update_stream({}).empty());
    EXPECT_EQ(pipelined->in_flight(), 0u);
  }
}

TEST(PipelineEquivalence, EmptyChangeSetWithinStreamIsAnEpoch) {
  // An empty *change set* inside a stream is different from an empty
  // stream: it is a real epoch whose answer equals the previous one, and
  // the pipelined schedule must agree with the serial engines on it.
  const auto ds = datagen::generate(datagen::params_for_scale(1, 7));
  std::vector<sm::ChangeSet> changes = ds.changes;
  changes.insert(changes.begin(), sm::ChangeSet{});
  changes.insert(changes.begin() + 2, sm::ChangeSet{});
  changes.push_back(sm::ChangeSet{});
  for (const Query q : {Query::kQ1, Query::kQ2}) {
    EXPECT_NO_THROW(harness::verify_tools(reference_and_pipelined(2, 4), q,
                                          ds.initial, changes))
        << "query=" << harness::query_name(q);
  }
}

TEST(PipelineEquivalence, SubmitMergeOneStreamingApi) {
  // The daemon's building blocks: submit() returns dense epochs, a full
  // window throws instead of blocking, merge_one() returns epoch-tagged
  // answers in order and merging with nothing in flight throws.
  const auto ds = datagen::generate(datagen::params_for_scale(1, 42));
  const auto reference =
      harness::run_once(harness::find_tool("grb-incremental"),
                        Query::kQ2, ds.initial, ds.changes);
  ASSERT_GE(ds.changes.size(), 3u);

  shard::GrbPipelinedEngine engine(
      Query::kQ2, shard::GrbPipelinedEngine::Mode::kIncremental,
      /*num_shards=*/2, /*depth=*/2);
  engine.load(ds.initial);
  EXPECT_THROW((void)engine.merge_one(), grb::InvalidValue);
  ASSERT_EQ(engine.initial(), reference.initial_answer);

  EXPECT_EQ(engine.submit(ds.changes[0]), 0u);
  EXPECT_EQ(engine.submit(ds.changes[1]), 1u);
  EXPECT_EQ(engine.in_flight(), 2u);
  EXPECT_THROW((void)engine.submit(ds.changes[2]), grb::InvalidValue);

  const auto m0 = engine.merge_one();
  EXPECT_EQ(m0.epoch, 0u);
  EXPECT_EQ(m0.answer, reference.update_answers[0]);
  EXPECT_EQ(engine.submit(ds.changes[2]), 2u);
  const auto m1 = engine.merge_one();
  const auto m2 = engine.merge_one();
  EXPECT_EQ(m1.epoch, 1u);
  EXPECT_EQ(m1.answer, reference.update_answers[1]);
  EXPECT_EQ(m2.epoch, 2u);
  EXPECT_EQ(m2.answer, reference.update_answers[2]);
  EXPECT_EQ(engine.in_flight(), 0u);
  EXPECT_THROW((void)engine.merge_one(), grb::InvalidValue);
}

TEST(PipelineEquivalence, ShardEpochCursorsAdvancePerShard) {
  // Direct state-level coverage of the pipeline API: per-shard epoch
  // cursors reach every submitted epoch at the barrier, release frees the
  // window, and serial entry points are rejected while the pipeline runs.
  const auto ds = datagen::generate(datagen::params_for_scale(1, 42));
  shard::ShardedGrbState state(3);
  state.load(ds.initial);
  std::atomic<int> stages{0};
  state.begin_pipeline(
      2, [&](std::size_t, std::uint64_t, queries::GrbDelta) { ++stages; });
  EXPECT_TRUE(state.pipeline_active());
  EXPECT_THROW((void)state.apply_change_set(ds.changes.at(0)),
               grb::InvalidValue);

  const sm::ChangeSet empty;
  EXPECT_EQ(state.apply_async(empty), 0u);
  EXPECT_EQ(state.apply_async(empty), 1u);
  // Window full (depth 2, nothing released): a third submit must throw,
  // not block — the producer is the only drain thread.
  EXPECT_THROW((void)state.apply_async(empty), grb::InvalidValue);
  state.wait_epoch(1);
  for (std::size_t s = 0; s < 3; ++s) EXPECT_EQ(state.shard_epoch(s), 2u);
  EXPECT_EQ(stages.load(), 6);  // 3 shards × 2 epochs
  state.release_epoch(0);
  state.release_epoch(1);
  EXPECT_EQ(state.epochs_in_flight(), 0u);
  EXPECT_EQ(state.apply_async(empty), 2u);
  state.wait_epoch(2);
  state.release_epoch(2);
  state.end_pipeline();
  EXPECT_FALSE(state.pipeline_active());
  // Serial mode is legal again, and route-once/apply-once still works.
  (void)state.apply_routed(state.route(empty));
}

TEST(PipelineEquivalence, RegistryExposesPipelinedVariants) {
  const auto& tools = harness::all_tools();
  int pipelined = 0;
  for (const auto& t : tools) {
    if (t.key.rfind("grb-pipelined-", 0) == 0) {
      ++pipelined;
      EXPECT_EQ(t.shards, 4);
      EXPECT_GE(t.pipeline, 1);
      EXPECT_NE(t.label.find("4 shards"), std::string::npos);
      EXPECT_NE(t.label.find("depth"), std::string::npos);
    }
  }
  EXPECT_EQ(pipelined, 2);
  EXPECT_NO_THROW(harness::find_tool("grb-pipelined-incremental"));
  // The key alone is ambiguous (no shard count / depth): key-only
  // construction must refuse rather than guess.
  EXPECT_THROW((void)harness::make_engine("grb-pipelined-incremental",
                                          harness::Query::kQ2),
               grb::InvalidValue);
}

}  // namespace
