// Removal-storm differential suite for the threshold-pruned top-k layer
// (src/queries/top_k.hpp): every pruned engine — unsharded incremental,
// sharded incremental, pipelined incremental — must stay byte-identical to
// the *unpruned* batch oracle across seeds × shard counts × pipeline
// depths, while its prune counters prove the pruning actually fired
// (skipped blocks, pool-seeded candidates). The targeted cases pin the
// sharp edges: a block bound that ties the threshold score exactly must be
// scanned (timestamp can still win), demoted pool members must seed with
// their *current* values, and staleness must eventually force an exact
// bound rebuild.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/generator.hpp"
#include "harness/registry.hpp"
#include "harness/runner.hpp"
#include "queries/engines.hpp"
#include "queries/top_k.hpp"
#include "shard/pipelined_engine.hpp"
#include "shard/sharded_engines.hpp"

namespace {

using harness::Query;
using harness::ToolSpec;

/// The unpruned batch oracle plus every pruned engine at one configuration.
std::vector<ToolSpec> oracle_and_pruned(int shards, int depth) {
  std::vector<ToolSpec> tools = {harness::find_tool("grb-batch"),
                                 harness::find_tool("grb-incremental")};
  tools.push_back(harness::sharded_tools(shards)[1]);
  tools.push_back(harness::pipelined_tools(shards, depth)[1]);
  return tools;
}

datagen::Dataset removal_storm(unsigned scale, std::uint64_t seed) {
  auto params = datagen::params_for_scale(scale, seed);
  params.change_sets = 20;
  params.insert_elements = 300;
  params.frac_removals = 0.25;
  return datagen::generate(params);
}

struct PrunedCase {
  std::uint64_t seed;
  int shards;
  int depth;
};

class PrunedRemovals : public ::testing::TestWithParam<PrunedCase> {};

TEST_P(PrunedRemovals, MatchesUnprunedOracleOnQ1AndQ2) {
  const auto p = GetParam();
  const auto ds = removal_storm(1, p.seed);
  bool any_removal = false;
  for (const auto& cs : ds.changes) any_removal |= sm::has_removals(cs);
  ASSERT_TRUE(any_removal) << "stream has no removals; test is vacuous";
  for (const Query q : {Query::kQ1, Query::kQ2}) {
    EXPECT_NO_THROW(harness::verify_tools(oracle_and_pruned(p.shards, p.depth),
                                          q, ds.initial, ds.changes))
        << "seed=" << p.seed << " shards=" << p.shards << " depth=" << p.depth
        << " query=" << harness::query_name(q);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByShardsByDepths, PrunedRemovals,
    ::testing::Values(
        PrunedCase{2024, 1, 1}, PrunedCase{2024, 1, 4}, PrunedCase{2024, 2, 2},
        PrunedCase{2024, 4, 1}, PrunedCase{2024, 4, 4}, PrunedCase{2024, 7, 2},
        PrunedCase{2024, 7, 4}, PrunedCase{7, 1, 2}, PrunedCase{7, 2, 1},
        PrunedCase{7, 2, 4}, PrunedCase{7, 4, 2}, PrunedCase{7, 7, 1}),
    [](const ::testing::TestParamInfo<PrunedCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_shards" +
             std::to_string(info.param.shards) + "_depth" +
             std::to_string(info.param.depth);
    });

TEST(PrunedRemovals, RemovalHeavyAtScale2Matches) {
  // One heavier point: the scale-2 stream spans multiple bound blocks even
  // per shard, so skips, stale bounds and pool reseeds all occur together.
  const auto ds = removal_storm(2, 2024);
  for (const Query q : {Query::kQ1, Query::kQ2}) {
    EXPECT_NO_THROW(harness::verify_tools(oracle_and_pruned(4, 4), q,
                                          ds.initial, ds.changes))
        << harness::query_name(q);
  }
}

// --- Targeted fixtures ------------------------------------------------------

/// 340 comments (two bound blocks at width 256). Block 0 holds 14 leaders
/// (scores 30..17, timestamp 10); dense id 300 — block 1 — holds the trap:
/// score 10 with the newest timestamp (99). Everything else scores 1.
/// Likers are singletons (no friendships), so a comment's Q2 score is its
/// liker count exactly.
sm::SocialGraph tie_trap_graph() {
  sm::SocialGraph g;
  for (sm::NodeId u = 1000; u < 1040; ++u) g.add_user(u);
  g.add_post(1, 0);
  for (std::uint64_t i = 0; i < 340; ++i) {
    const sm::NodeId c = 2000 + i;
    std::uint64_t likers = 1;
    sm::Timestamp ts = 1;
    if (i < 14) {
      likers = 30 - i;
      ts = 10;
    } else if (i == 300) {
      likers = 10;
      ts = 99;
    }
    g.add_comment(c, ts, false, 1);
    for (sm::NodeId u = 1000; u < 1000 + likers; ++u) g.add_likes(u, c);
  }
  return g;
}

/// One change set demoting every leader to score exactly 10 — the kth
/// entry's score after the re-rank ties block 1's bound precisely.
sm::ChangeSet demote_leaders_to_ten() {
  sm::ChangeSet cs;
  for (std::uint64_t i = 0; i < 14; ++i) {
    const sm::NodeId c = 2000 + i;
    for (sm::NodeId u = 1000 + 10; u < 1000 + 30 - i; ++u) {
      cs.ops.push_back(sm::RemoveLikes{u, c});
    }
  }
  return cs;
}

TEST(PrunedRemovals, TieAtThresholdBlockIsScannedNotSkipped) {
  // After the storm every leader scores 10 (timestamp 10) and so does
  // comment 2300 (timestamp 99, sitting alone in block 1, never in the
  // candidate pool). A skip test comparing scores alone would prune block 1
  // and lose 2300; the tie-aware test must scan it, and 2300 must win the
  // answer on recency. Also pins pool exactness: were pool members seeded
  // with their stale pre-storm scores (30..19), the inflated threshold
  // would skip block 1 too.
  const auto g = tie_trap_graph();
  const auto cs = demote_leaders_to_ten();

  queries::GrbBatchEngine oracle(Query::kQ2);
  oracle.load(g);
  (void)oracle.initial();
  const std::string expected = oracle.update(cs);
  ASSERT_EQ(expected.rfind("2300|", 0), 0u)
      << "fixture broken: the trap comment should lead, got " << expected;

  for (const ToolSpec& tool : oracle_and_pruned(4, 2)) {
    if (tool.key == "grb-batch") continue;
    auto engine = harness::make_engine(tool, Query::kQ2);
    engine->load(g);
    (void)engine->initial();
    EXPECT_EQ(engine->update(cs), expected) << tool.label;
  }
}

/// 640 comments (three blocks): 20 leaders in block 0 (scores 30..11,
/// timestamp 10), filler scores 1..3 elsewhere. The stream demotes one
/// leader per epoch by three likes — 20 lowering events against block 0,
/// enough to cross kStaleBudget and force an exact bound rebuild, while
/// blocks 1 and 2 stay hopeless (bound ≤ 3) and must be skipped by every
/// re-rank.
sm::SocialGraph storm_graph() {
  sm::SocialGraph g;
  for (sm::NodeId u = 1000; u < 1040; ++u) g.add_user(u);
  g.add_post(1, 0);
  for (std::uint64_t i = 0; i < 640; ++i) {
    const sm::NodeId c = 2000 + i;
    const std::uint64_t likers = i < 20 ? 30 - i : 1 + (i % 3);
    g.add_comment(c, static_cast<sm::Timestamp>(10 + (i % 5)), false, 1);
    for (sm::NodeId u = 1000; u < 1000 + likers; ++u) g.add_likes(u, c);
  }
  return g;
}

std::vector<sm::ChangeSet> storm_changes() {
  std::vector<sm::ChangeSet> changes;
  for (std::uint64_t e = 0; e < 20; ++e) {
    sm::ChangeSet cs;
    for (sm::NodeId u = 1000; u < 1003; ++u) {
      cs.ops.push_back(sm::RemoveLikes{u, 2000 + e});
    }
    changes.push_back(std::move(cs));
  }
  return changes;
}

TEST(PrunedRemovals, SerialEngineSkipsBlocksSeedsPoolAndRebuildsBounds) {
  const auto g = storm_graph();
  const auto changes = storm_changes();

  queries::GrbBatchEngine oracle(Query::kQ2);
  queries::GrbIncrementalEngine pruned(Query::kQ2);
  oracle.load(g);
  pruned.load(g);
  EXPECT_EQ(pruned.initial(), oracle.initial());
  for (const auto& cs : changes) {
    ASSERT_EQ(pruned.update(cs), oracle.update(cs));
  }
  const queries::PruneStats& st = pruned.prune_stats();
  EXPECT_EQ(st.blocks_scanned + st.blocks_skipped, st.blocks_total);
  // Blocks 1 and 2 (bounds <= 3) can never beat the ~27 threshold.
  EXPECT_GT(st.blocks_skipped, 0u);
  // Every re-rank seeds its top-k from the pool before touching a block.
  EXPECT_GT(st.pool_hits, 0u);
  EXPECT_GE(st.pool_rebuilds, 1u);  // the initial full-scan build
  // 20 lowering epochs against block 0 cross the staleness budget (16).
  EXPECT_GE(st.bound_rebuilds, 1u);
}

TEST(PrunedRemovals, ShardedAndPipelinedCountersStayCoherent) {
  const auto g = storm_graph();
  const auto changes = storm_changes();

  queries::GrbBatchEngine oracle(Query::kQ2);
  oracle.load(g);
  std::vector<std::string> expected = {oracle.initial()};
  for (const auto& cs : changes) expected.push_back(oracle.update(cs));

  // At one shard the comment space is the serial engine's, so the skip
  // guarantee carries over verbatim; at four shards the leaders hash across
  // shards and we assert the counter invariants rather than a specific skip
  // count.
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    shard::GrbShardedIncrementalEngine eng(Query::kQ2, shards);
    eng.load(g);
    EXPECT_EQ(eng.initial(), expected[0]);
    for (std::size_t e = 0; e < changes.size(); ++e) {
      ASSERT_EQ(eng.update(changes[e]), expected[e + 1]) << "shards=" << shards;
    }
    const queries::PruneStats& st = eng.prune_stats();
    EXPECT_EQ(st.blocks_scanned + st.blocks_skipped, st.blocks_total);
    EXPECT_GT(st.blocks_total, 0u);
    EXPECT_GT(st.pool_hits, 0u);
    if (shards == 1) {
      EXPECT_GT(st.blocks_skipped, 0u);
    }
  }

  shard::GrbPipelinedEngine pipe(Query::kQ2,
                                 shard::GrbPipelinedEngine::Mode::kIncremental,
                                 /*num_shards=*/1, /*depth=*/2);
  pipe.load(g);
  EXPECT_EQ(pipe.initial(), expected[0]);
  const auto answers = pipe.update_stream(changes);
  ASSERT_EQ(answers.size(), changes.size());
  for (std::size_t e = 0; e < answers.size(); ++e) {
    ASSERT_EQ(answers[e], expected[e + 1]);
  }
  const queries::PruneStats& st = pipe.prune_stats();
  EXPECT_EQ(st.blocks_scanned + st.blocks_skipped, st.blocks_total);
  EXPECT_GT(st.blocks_skipped, 0u);
  EXPECT_GT(st.pool_hits, 0u);
}

TEST(PrunedRemovals, GlobalCountersMirrorTheOnlyRunningEngine) {
  // The WorkspaceStats-style global accumulators feed the daemon and the
  // benches; with exactly one pruned engine running between reset and
  // snapshot they must equal that engine's cumulative stats (the batch
  // oracle contributes nothing).
  const auto g = storm_graph();
  const auto changes = storm_changes();
  queries::reset_prune_counters();
  queries::GrbIncrementalEngine eng(Query::kQ2);
  eng.load(g);
  (void)eng.initial();
  for (const auto& cs : changes) (void)eng.update(cs);
  EXPECT_EQ(queries::prune_counters(), eng.prune_stats());
  queries::reset_prune_counters();
  EXPECT_EQ(queries::prune_counters(), queries::PruneStats{});
}

}  // namespace
