// Differential suite for the sharding subsystem: the sharded engines must
// produce byte-identical answer sequences to the unsharded GraphBLAS
// engines across seeds × shard counts {1, 2, 4, 7} × Q1/Q2 — the
// determinism guarantee that makes shard count a pure scaling axis. The
// harness's verify_tools throws with a step-level diagnostic on the first
// mismatching answer string.
#include <gtest/gtest.h>

#include <string>

#include "datagen/generator.hpp"
#include "grb/detail/check.hpp"
#include "harness/runner.hpp"
#include "model/change.hpp"
#include "shard/sharded_state.hpp"

namespace {

using harness::Query;
using harness::ToolSpec;

std::vector<ToolSpec> reference_and_sharded(int shards) {
  // The unsharded incremental engine sets the reference; both sharded
  // engines must match it byte for byte. The sharded tools run one thread
  // per shard (their fan-out axis).
  std::vector<ToolSpec> tools = {harness::find_tool("grb-incremental")};
  for (const ToolSpec& t : harness::sharded_tools(shards)) tools.push_back(t);
  return tools;
}

struct ShardedCase {
  unsigned scale;
  std::uint64_t seed;
  int shards;
};

class ShardedEquivalence : public ::testing::TestWithParam<ShardedCase> {};

TEST_P(ShardedEquivalence, MatchesUnshardedOnQ1AndQ2) {
  const auto p = GetParam();
  const auto ds =
      datagen::generate(datagen::params_for_scale(p.scale, p.seed));
  for (const Query q : {Query::kQ1, Query::kQ2}) {
    EXPECT_NO_THROW(harness::verify_tools(reference_and_sharded(p.shards), q,
                                          ds.initial, ds.changes))
        << "shards=" << p.shards << " seed=" << p.seed
        << " query=" << harness::query_name(q);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByShardCounts, ShardedEquivalence,
    ::testing::Values(ShardedCase{1, 42, 1}, ShardedCase{1, 42, 2},
                      ShardedCase{1, 42, 4}, ShardedCase{1, 42, 7},
                      ShardedCase{1, 1337, 2}, ShardedCase{1, 1337, 7},
                      ShardedCase{2, 42, 4}, ShardedCase{2, 7, 2},
                      ShardedCase{2, 7, 7}, ShardedCase{2, 1337, 4}),
    [](const ::testing::TestParamInfo<ShardedCase>& info) {
      return "scale" + std::to_string(info.param.scale) + "_seed" +
             std::to_string(info.param.seed) + "_shards" +
             std::to_string(info.param.shards);
    });

TEST(ShardedEquivalence, RemovalHeavyStreamMatches) {
  // Removals leave the monotone fast path: the sharded removal re-rank
  // (merged scans over maintained per-shard scores) must track the
  // unsharded engines over a long stream.
  auto params = datagen::params_for_scale(2, 2024);
  params.change_sets = 30;
  params.insert_elements = 300;
  params.frac_removals = 0.25;
  const auto ds = datagen::generate(params);
  ASSERT_GE(ds.changes.size(), 20u);
  for (const Query q : {Query::kQ1, Query::kQ2}) {
    for (const int shards : {2, 4, 7}) {
      EXPECT_NO_THROW(harness::verify_tools(reference_and_sharded(shards), q,
                                            ds.initial, ds.changes))
          << "shards=" << shards << " query=" << harness::query_name(q);
    }
  }
}

TEST(ShardedEquivalence, BatchReferenceAgreesToo) {
  // Close the triangle: sharded engines vs the unsharded *batch* engine
  // (ground truth with no incremental machinery at all).
  const auto ds = datagen::generate(datagen::params_for_scale(1, 7));
  for (const Query q : {Query::kQ1, Query::kQ2}) {
    std::vector<ToolSpec> tools = {harness::find_tool("grb-batch")};
    for (const ToolSpec& t : harness::sharded_tools(3)) tools.push_back(t);
    EXPECT_NO_THROW(harness::verify_tools(tools, q, ds.initial, ds.changes));
  }
}

TEST(ShardedEquivalence, ApplyEpochCountsLoadAndApplies) {
  // The sharded apply path is guarded against reentrant/concurrent entry in
  // Debug; the same guard's epoch counter is the hook the pipelined-
  // ingestion arc will tag published answers with. load() and each
  // apply_change_set() are one completed scope apiece.
  const auto ds = datagen::generate(datagen::params_for_scale(1, 42));
  shard::ShardedGrbState state(2);
  state.load(ds.initial);
  const sm::ChangeSet empty;
  (void)state.apply_change_set(empty);
  (void)state.apply_change_set(empty);
#if GRB_CHECKS_ENABLED
  EXPECT_EQ(state.apply_epoch(), 3u);  // load + two applies
#else
  EXPECT_EQ(state.apply_epoch(), 0u);  // guard compiles out in Release
#endif
}

TEST(ShardedEquivalence, RegistryExposesShardedVariants) {
  const auto& tools = harness::all_tools();
  int sharded = 0;
  for (const auto& t : tools) {
    if (t.key.rfind("grb-sharded-", 0) == 0) {
      ++sharded;
      EXPECT_EQ(t.shards, 4);
      EXPECT_NE(t.label.find("4 shards"), std::string::npos);
    }
  }
  EXPECT_EQ(sharded, 2);
  // find_tool resolves them; the runner can build and run one end-to-end.
  EXPECT_NO_THROW(harness::find_tool("grb-sharded-incremental"));
}

}  // namespace
