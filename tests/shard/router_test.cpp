// Unit tests for the sharding subsystem's placement and routing layer:
// Partitioner determinism and boundary behaviour, ChangeSetRouter splitting
// (broadcast vs owner routing, parent rewriting, same-set references,
// netting preservation, empty per-shard sets), and split_graph invariants
// (replicated users/posts/friendships, partitioned comments/likes).
#include <gtest/gtest.h>

#include <variant>

#include "grb/types.hpp"
#include "shard/router.hpp"
#include "shard/sharded_state.hpp"

namespace {

using shard::ChangeSetRouter;
using shard::Partitioner;

sm::SocialGraph tiny_graph() {
  // Users 1..4, posts 100/101, comments 200 (under 100), 201 (under comment
  // 200 — root 100), 202 (under 101). Likes and a friendship on top.
  sm::SocialGraph g;
  for (sm::NodeId u : {1, 2, 3, 4}) g.add_user(u);
  g.add_post(100, 1000);
  g.add_post(101, 1001);
  g.add_comment(200, 1002, /*parent_is_comment=*/false, 100);
  g.add_comment(201, 1003, /*parent_is_comment=*/true, 200);
  g.add_comment(202, 1004, /*parent_is_comment=*/false, 101);
  g.add_likes(1, 200);
  g.add_likes(2, 200);
  g.add_likes(3, 202);
  g.add_friendship(1, 2);
  g.add_friendship(3, 4);
  return g;
}

TEST(Partitioner, SingleShardOwnsEverything) {
  const Partitioner p(1);
  for (sm::NodeId id : {0ULL, 1ULL, 7ULL, 123456789ULL}) {
    EXPECT_EQ(p.shard_of_comment(id), 0u);
  }
}

TEST(Partitioner, ZeroShardsIsRejected) {
  EXPECT_THROW(Partitioner(0), grb::InvalidValue);
}

TEST(Partitioner, RangeSchemeStripesAdjacentIdsAcrossBoundaries) {
  // kRange is id mod shards: consecutive ids land on consecutive shards, so
  // the partition boundary between id k*N-1 and k*N wraps to shard 0.
  const Partitioner p(4, Partitioner::Scheme::kRange);
  EXPECT_EQ(p.shard_of_comment(0), 0u);
  EXPECT_EQ(p.shard_of_comment(3), 3u);   // last id of the stripe
  EXPECT_EQ(p.shard_of_comment(4), 0u);   // first id past the boundary
  EXPECT_EQ(p.shard_of_comment(7), 3u);
  EXPECT_EQ(p.shard_of_comment(8), 0u);
}

TEST(Partitioner, HashSchemeIsDeterministicAndInRange) {
  const Partitioner a(7, Partitioner::Scheme::kHash);
  const Partitioner b(7, Partitioner::Scheme::kHash);
  for (sm::NodeId id = 0; id < 1000; ++id) {
    const std::size_t s = a.shard_of_comment(id);
    EXPECT_LT(s, 7u);
    EXPECT_EQ(s, b.shard_of_comment(id));
    EXPECT_EQ(s, shard::splitmix64(id) % 7);
  }
}

TEST(Partitioner, HashSchemeTouchesEveryShard) {
  const Partitioner p(7, Partitioner::Scheme::kHash);
  std::vector<int> hit(7, 0);
  for (sm::NodeId id = 0; id < 200; ++id) hit[p.shard_of_comment(id)]++;
  for (int h : hit) EXPECT_GT(h, 0);
}

TEST(Router, SplitGraphReplicatesUsersPostsFriendships) {
  ChangeSetRouter router{Partitioner(3, Partitioner::Scheme::kRange)};
  const auto parts = router.split_graph(tiny_graph());
  ASSERT_EQ(parts.size(), 3u);
  std::size_t total_comments = 0;
  std::size_t total_likes = 0;
  for (const auto& p : parts) {
    EXPECT_EQ(p.num_users(), 4u);
    EXPECT_EQ(p.num_posts(), 2u);
    EXPECT_EQ(p.num_friendships(), 2u);
    // Dense ids follow global arrival order on every shard.
    EXPECT_EQ(p.user(0).id, 1u);
    EXPECT_EQ(p.post(1).id, 101u);
    total_comments += p.num_comments();
    total_likes += p.num_likes();
  }
  EXPECT_EQ(total_comments, 3u);
  EXPECT_EQ(total_likes, 3u);
  // Each comment is wholly on its owner shard (kRange: id mod 3), with its
  // likes beside it and its parent rewritten to the root post.
  const auto& owner200 = parts[200 % 3];
  const auto dense = owner200.find_comment(200);
  ASSERT_TRUE(dense.has_value());
  EXPECT_EQ(owner200.comment(*dense).likers.size(), 2u);
  EXPECT_FALSE(owner200.comment(*dense).parent_is_comment);
  const auto& owner201 = parts[201 % 3];
  const auto dense201 = owner201.find_comment(201);
  ASSERT_TRUE(dense201.has_value());
  // 201's parent is comment 200 (possibly on another shard); the router
  // re-parents it to root post 100.
  EXPECT_FALSE(owner201.comment(*dense201).parent_is_comment);
  EXPECT_EQ(owner201.post(owner201.comment(*dense201).root_post).id, 100u);
  EXPECT_EQ(router.root_post_of(201), 100u);
}

TEST(Router, RouteBroadcastsReplicatedOpsAndOwnsTheRest) {
  ChangeSetRouter router{Partitioner(3, Partitioner::Scheme::kRange)};
  (void)router.split_graph(tiny_graph());

  sm::ChangeSet cs;
  cs.ops.push_back(sm::AddUser{5});
  cs.ops.push_back(sm::AddPost{102, 2000, 5});
  cs.ops.push_back(sm::AddComment{203, 2001, /*parent_is_comment=*/true, 201, 5});
  cs.ops.push_back(sm::AddLikes{4, 203});
  cs.ops.push_back(sm::AddFriendship{4, 5});
  cs.ops.push_back(sm::RemoveLikes{1, 200});
  const shard::RoutedChangeSet routed = router.route(cs);
  EXPECT_EQ(routed.seq, 0u);  // first set routed since split_graph
  const auto& parts = routed.parts;
  ASSERT_EQ(parts.size(), 3u);

  // Broadcast ops are everywhere, in order.
  for (const auto& p : parts) {
    ASSERT_GE(p.ops.size(), 3u);
    EXPECT_TRUE(std::holds_alternative<sm::AddUser>(p.ops[0]));
    EXPECT_TRUE(std::holds_alternative<sm::AddPost>(p.ops[1]));
  }
  // The new comment went only to its owner, re-parented to root post 100
  // (its parent 201 descends from post 100).
  const std::size_t owner = 203 % 3;
  int comment_ops = 0;
  for (std::size_t s = 0; s < parts.size(); ++s) {
    for (const auto& op : parts[s].ops) {
      if (const auto* c = std::get_if<sm::AddComment>(&op)) {
        ++comment_ops;
        EXPECT_EQ(s, owner);
        EXPECT_EQ(c->id, 203u);
        EXPECT_FALSE(c->parent_is_comment);
        EXPECT_EQ(c->parent, 100u);
      }
      if (const auto* l = std::get_if<sm::AddLikes>(&op)) {
        EXPECT_EQ(s, 203 % 3);
        EXPECT_EQ(l->comment, 203u);
      }
      if (const auto* r = std::get_if<sm::RemoveLikes>(&op)) {
        EXPECT_EQ(s, 200 % 3);
        EXPECT_EQ(r->comment, 200u);
      }
    }
  }
  EXPECT_EQ(comment_ops, 1);
  EXPECT_EQ(router.shard_of_comment(203), owner);
}

TEST(Router, NettingSurvivesRouting) {
  // Add + remove + re-add of the same like must all land on the owner shard
  // in their original order — the shard's sorted-sweep netting then sees
  // exactly what the unsharded state would.
  ChangeSetRouter router{Partitioner(4, Partitioner::Scheme::kRange)};
  (void)router.split_graph(tiny_graph());
  sm::ChangeSet cs;
  cs.ops.push_back(sm::AddLikes{4, 202});
  cs.ops.push_back(sm::RemoveLikes{4, 202});
  cs.ops.push_back(sm::AddLikes{4, 202});
  const auto& parts = router.route(cs).parts;
  const std::size_t owner = 202 % 4;
  for (std::size_t s = 0; s < parts.size(); ++s) {
    if (s == owner) {
      ASSERT_EQ(parts[s].ops.size(), 3u);
      EXPECT_TRUE(std::holds_alternative<sm::AddLikes>(parts[s].ops[0]));
      EXPECT_TRUE(std::holds_alternative<sm::RemoveLikes>(parts[s].ops[1]));
      EXPECT_TRUE(std::holds_alternative<sm::AddLikes>(parts[s].ops[2]));
    } else {
      EXPECT_TRUE(parts[s].empty());  // untouched shards get empty sets
    }
  }
}

TEST(Router, ReloadDropsTheOldCommentRegistry) {
  // split_graph starts a fresh registry: ids known only to the previous
  // graph must go back to being rejected, not silently mis-routed.
  ChangeSetRouter router{Partitioner(2)};
  (void)router.split_graph(tiny_graph());
  EXPECT_NO_THROW((void)router.shard_of_comment(200));
  sm::SocialGraph other;
  other.add_user(1);
  other.add_post(100, 1000);
  other.add_comment(900, 1001, /*parent_is_comment=*/false, 100);
  (void)router.split_graph(other);
  EXPECT_NO_THROW((void)router.shard_of_comment(900));
  EXPECT_THROW((void)router.shard_of_comment(200), grb::InvalidValue);
}

TEST(Router, UnknownCommentThrows) {
  ChangeSetRouter router{Partitioner(2)};
  (void)router.split_graph(tiny_graph());
  sm::ChangeSet cs;
  cs.ops.push_back(sm::AddLikes{1, 999});
  EXPECT_THROW((void)router.route(cs), grb::InvalidValue);
  EXPECT_THROW((void)router.shard_of_comment(999), grb::InvalidValue);
}

TEST(Router, ThrowingRouteRegistersNothing) {
  // A set that fails to route must not leave phantom comment registrations:
  // comment 300 was never applied by any shard, so later references to it
  // must keep hitting the router-level rejection.
  ChangeSetRouter router{Partitioner(2)};
  (void)router.split_graph(tiny_graph());
  sm::ChangeSet bad;
  bad.ops.push_back(sm::AddComment{300, 3000, /*parent_is_comment=*/false,
                                   100, 1});
  bad.ops.push_back(sm::AddLikes{1, 999});  // throws: unknown comment
  EXPECT_THROW((void)router.route(bad), grb::InvalidValue);
  EXPECT_THROW((void)router.shard_of_comment(300), grb::InvalidValue);
  // Same-set references still work when the set is valid.
  sm::ChangeSet good;
  good.ops.push_back(sm::AddComment{300, 3000, /*parent_is_comment=*/false,
                                    100, 1});
  good.ops.push_back(sm::AddComment{301, 3001, /*parent_is_comment=*/true,
                                    300, 1});
  good.ops.push_back(sm::AddLikes{1, 301});
  // The failed route consumed no sequence number either.
  EXPECT_EQ(router.route(good).seq, 0u);
  EXPECT_EQ(router.root_post_of(301), 100u);
}

TEST(ShardedState, EmptyChangeSetsApplyCleanlyToEveryShard) {
  shard::ShardedGrbState state(4, Partitioner::Scheme::kRange);
  state.load(tiny_graph());
  // A likes-only change set leaves three shards with empty sets; applying
  // them must produce empty deltas, not errors.
  sm::ChangeSet cs;
  cs.ops.push_back(sm::AddLikes{4, 200});
  const auto deltas = state.apply_change_set(cs);
  ASSERT_EQ(deltas.size(), 4u);
  for (std::size_t s = 0; s < deltas.size(); ++s) {
    if (s == 200 % 4) {
      EXPECT_EQ(deltas[s].new_likes.size(), 1u);
    } else {
      EXPECT_TRUE(deltas[s].new_likes.empty());
      EXPECT_TRUE(deltas[s].new_comments.empty());
      EXPECT_FALSE(deltas[s].has_removals());
    }
  }
  // Replicated dimensions stay identical across shards; comments partition.
  std::size_t comments = 0;
  for (std::size_t s = 0; s < state.num_shards(); ++s) {
    EXPECT_EQ(state.shard(s).num_users(), state.shard(0).num_users());
    EXPECT_EQ(state.shard(s).num_posts(), state.shard(0).num_posts());
    comments += state.shard(s).num_comments();
  }
  EXPECT_EQ(comments, 3u);
}

}  // namespace
