// Tests for betweenness centrality and k-core decomposition.
#include <gtest/gtest.h>

#include "lagraph/betweenness.hpp"
#include "lagraph/kcore.hpp"
#include "support/rng.hpp"

namespace {

using grb::Bool;
using grb::Index;
using grb::Matrix;

Matrix<Bool> undirected(Index n,
                        const std::vector<std::pair<Index, Index>>& edges) {
  std::vector<grb::Tuple<Bool>> t;
  for (const auto& [a, b] : edges) {
    t.push_back({a, b, 1});
    t.push_back({b, a, 1});
  }
  return Matrix<Bool>::build(n, n, std::move(t), grb::LOr<Bool>{});
}

// --- betweenness ------------------------------------------------------------

TEST(Betweenness, PathGraphMiddleDominates) {
  // 0 - 1 - 2 - 3 - 4: vertex 2 lies on the most shortest paths.
  const auto adj = undirected(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto bc = lagraph::betweenness_exact(adj);
  EXPECT_GT(bc[2], bc[1]);
  EXPECT_GT(bc[1], bc[0]);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[4], 0.0);
  // Undirected path of 5: exact values (each direction counted) are
  // 2·(1·3) = 6 for v1/v3 and 2·(2·2) = 8 for v2.
  EXPECT_DOUBLE_EQ(bc[2], 8.0);
  EXPECT_DOUBLE_EQ(bc[1], 6.0);
}

TEST(Betweenness, StarCenterTakesEverything) {
  const auto adj = undirected(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const auto bc = lagraph::betweenness_exact(adj);
  // Center: all 4·3 = 12 ordered leaf pairs route through it.
  EXPECT_DOUBLE_EQ(bc[0], 12.0);
  for (Index i = 1; i < 5; ++i) EXPECT_DOUBLE_EQ(bc[i], 0.0);
}

TEST(Betweenness, CompleteGraphAllZero) {
  const auto adj = undirected(
      4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  for (const double b : lagraph::betweenness_exact(adj)) {
    EXPECT_DOUBLE_EQ(b, 0.0);
  }
}

TEST(Betweenness, SplitPathsShareDependency) {
  // Two equal-length routes 0->1->3 and 0->2->3 (directed): each middle
  // vertex carries half of the 0->3 dependency.
  std::vector<grb::Tuple<Bool>> t{{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {2, 3, 1}};
  const auto adj = Matrix<Bool>::build(4, 4, std::move(t));
  const std::vector<Index> sources{0};
  const auto bc = lagraph::betweenness(adj, sources);
  EXPECT_DOUBLE_EQ(bc[1], 0.5);
  EXPECT_DOUBLE_EQ(bc[2], 0.5);
}

TEST(Betweenness, SubsetOfSourcesIsPartialSum) {
  const auto adj = undirected(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const std::vector<Index> s0{0};
  const std::vector<Index> s4{4};
  const auto from0 = lagraph::betweenness(adj, s0);
  const auto from4 = lagraph::betweenness(adj, s4);
  const auto exact = lagraph::betweenness_exact(adj);
  // Symmetric graph: contributions of the two extreme sources are equal.
  EXPECT_DOUBLE_EQ(from0[2], from4[2]);
  EXPECT_LE(from0[2] + from4[2], exact[2]);
}

TEST(Betweenness, BadInputsThrow) {
  EXPECT_THROW(lagraph::betweenness_exact(Matrix<Bool>(2, 3)),
               grb::DimensionMismatch);
  const auto adj = undirected(2, {{0, 1}});
  const std::vector<Index> bad{5};
  EXPECT_THROW(lagraph::betweenness(adj, bad), grb::IndexOutOfBounds);
}

// --- k-core -----------------------------------------------------------------

TEST(KCore, PathGraphIsOneCore) {
  const auto core = lagraph::kcore(undirected(4, {{0, 1}, {1, 2}, {2, 3}}));
  EXPECT_EQ(core, (std::vector<Index>{1, 1, 1, 1}));
}

TEST(KCore, TriangleWithTailPeelsCorrectly) {
  // Triangle {0,1,2} plus tail 2-3: triangle is 2-core, tail 1-core.
  const auto core =
      lagraph::kcore(undirected(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}}));
  EXPECT_EQ(core[0], 2u);
  EXPECT_EQ(core[1], 2u);
  EXPECT_EQ(core[2], 2u);
  EXPECT_EQ(core[3], 1u);
}

TEST(KCore, CompleteGraph) {
  const auto core = lagraph::kcore(undirected(
      4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}));
  for (const Index c : core) EXPECT_EQ(c, 3u);
  EXPECT_EQ(lagraph::max_coreness(undirected(
                4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})),
            3u);
}

TEST(KCore, IsolatedVerticesAreZeroCore) {
  const auto core = lagraph::kcore(undirected(3, {{0, 1}}));
  EXPECT_EQ(core[2], 0u);
  EXPECT_EQ(lagraph::max_coreness(Matrix<Bool>(4, 4)), 0u);
}

TEST(KCore, CorenessInvariantsOnRandomGraphs) {
  grbsm::support::Xoshiro256 rng(55);
  for (int round = 0; round < 4; ++round) {
    const Index n = 60;
    std::vector<std::pair<Index, Index>> edges;
    for (int k = 0; k < 200; ++k) {
      const Index a = rng.bounded(n);
      const Index b = rng.bounded(n);
      if (a != b) edges.emplace_back(a, b);
    }
    const auto adj = undirected(n, edges);
    const auto core = lagraph::kcore(adj);
    for (Index v = 0; v < n; ++v) {
      // Coreness never exceeds degree.
      ASSERT_LE(core[v], adj.row_degree(v));
      // Definition check: v has ≥ core[v] neighbours with coreness ≥
      // core[v] (they survive the same peeling rounds).
      Index strong = 0;
      for (const Index u : adj.row_cols(v)) {
        if (core[u] >= core[v]) ++strong;
      }
      ASSERT_GE(strong, core[v]) << "vertex " << v;
    }
  }
}

}  // namespace
