// Golden pins for the LAGraph algorithms on generated SF-1/SF-2 friendship
// graphs (deterministic datagen seed 42): BFS level structure, connected-
// component counts, PageRank top-10, and the k-core decomposition. Kernel
// rewrites — the parallel vector pipeline in particular — must reproduce
// these values bit for bit; a silent change in any algorithm's output fails
// here even if the algorithm's property-based tests still hold.
//
// The pinned numbers were produced by this exact code path at the time the
// test was written. PageRank's values are FP-order-sensitive by nature; the
// implementation keeps its summation order fixed at every thread count
// (fixed-grid parallel_fold + per-row scans), and default builds compile
// without -march=native, so the doubles are reproducible.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "datagen/generator.hpp"
#include "lagraph/bfs.hpp"
#include "lagraph/cc_fastsv.hpp"
#include "lagraph/kcore.hpp"
#include "lagraph/pagerank.hpp"
#include "queries/grb_state.hpp"

namespace {

using grb::Index;
using U64 = std::uint64_t;

struct Golden {
  unsigned sf;
  U64 users, friend_nnz;
  U64 bfs_reached, bfs_level_sum, bfs_max_level;  // BFS from vertex 0
  U64 cc_components, cc_largest, cc_sumsq;
  unsigned pr_iterations;
  std::vector<Index> pr_top10;  // rank desc, id asc tiebreak
  U64 core_max, core_at_max, core_sum;
};

const Golden kGolden[] = {
    {1, 267, 558,                      //
     186, 454, 5,                      //
     75, 186, 34693,                   //
     68, {0, 2, 1, 3, 4, 5, 10, 34, 8, 24},  //
     3, 31, 322},
    {2, 434, 988,                      //
     314, 704, 5,                      //
     119, 314, 98720,                  //
     51, {0, 1, 4, 2, 3, 5, 6, 22, 7, 37},   //
     3, 50, 546},
};

class LagraphGolden : public ::testing::TestWithParam<Golden> {};

TEST_P(LagraphGolden, PinsAlgorithmResults) {
  const Golden& g = GetParam();
  const auto data = datagen::generate(datagen::params_for_scale(g.sf));
  const auto state = queries::GrbState::from_graph(data.initial);
  const auto& friends = state.friends();
  const Index n = friends.nrows();
  ASSERT_EQ(n, g.users);
  ASSERT_EQ(friends.nvals(), g.friend_nnz);

  // BFS from vertex 0 (the Zipf head, inside the giant component).
  const auto level = lagraph::bfs_levels(friends, 0);
  U64 reached = 0, level_sum = 0, max_level = 0;
  for (const Index l : level) {
    if (l == lagraph::kUnreachable) continue;
    ++reached;
    level_sum += l;
    max_level = std::max<U64>(max_level, l);
  }
  EXPECT_EQ(reached, g.bfs_reached);
  EXPECT_EQ(level_sum, g.bfs_level_sum);
  EXPECT_EQ(max_level, g.bfs_max_level);

  // Connected components via FastSV.
  const auto labels = lagraph::cc_fastsv(friends);
  const auto sizes = lagraph::component_sizes(labels);
  U64 largest = 0;
  for (const Index s : sizes) largest = std::max<U64>(largest, s);
  EXPECT_EQ(sizes.size(), g.cc_components);
  EXPECT_EQ(largest, g.cc_largest);
  EXPECT_EQ(lagraph::sum_squared_component_sizes(labels), g.cc_sumsq);
  // BFS's reach from vertex 0 must agree with the giant component.
  EXPECT_EQ(reached, largest);

  // PageRank top-10 (rank desc, id asc tiebreak) and iteration count.
  const auto pr = lagraph::pagerank(friends, {});
  EXPECT_EQ(pr.iterations, g.pr_iterations);
  std::vector<Index> order(n);
  for (Index i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](Index a, Index b) {
    if (pr.rank[a] != pr.rank[b]) return pr.rank[a] > pr.rank[b];
    return a < b;
  });
  order.resize(10);
  EXPECT_EQ(order, g.pr_top10);

  // k-core decomposition.
  const auto core = lagraph::kcore(friends);
  U64 core_sum = 0, core_max = 0, at_max = 0;
  for (const Index c : core) {
    core_sum += c;
    if (c > core_max) {
      core_max = c;
      at_max = 0;
    }
    if (c == core_max) ++at_max;
  }
  EXPECT_EQ(core_max, g.core_max);
  EXPECT_EQ(at_max, g.core_at_max);
  EXPECT_EQ(core_sum, g.core_sum);
  EXPECT_EQ(core_max, lagraph::max_coreness(friends));
}

INSTANTIATE_TEST_SUITE_P(ScaleFactors, LagraphGolden,
                         ::testing::ValuesIn(kGolden),
                         [](const auto& info) {
                           return "SF" + std::to_string(info.param.sf);
                         });

}  // namespace
