// Tests for the extended LAGraph-style algorithm collection: PageRank,
// triangle counting and SSSP over the grb engine.
#include <gtest/gtest.h>

#include <numeric>

#include "lagraph/pagerank.hpp"
#include "lagraph/sssp.hpp"
#include "lagraph/triangle_count.hpp"
#include "support/rng.hpp"

namespace {

using grb::Bool;
using grb::Index;
using grb::Matrix;
using U64 = std::uint64_t;

Matrix<Bool> digraph(Index n,
                     const std::vector<std::pair<Index, Index>>& edges) {
  std::vector<grb::Tuple<Bool>> t;
  for (const auto& [a, b] : edges) t.push_back({a, b, 1});
  return Matrix<Bool>::build(n, n, std::move(t), grb::LOr<Bool>{});
}

Matrix<Bool> undirected(Index n,
                        const std::vector<std::pair<Index, Index>>& edges) {
  std::vector<grb::Tuple<Bool>> t;
  for (const auto& [a, b] : edges) {
    t.push_back({a, b, 1});
    t.push_back({b, a, 1});
  }
  return Matrix<Bool>::build(n, n, std::move(t), grb::LOr<Bool>{});
}

// --- PageRank ---------------------------------------------------------------

TEST(PageRank, SumsToOne) {
  const auto adj = digraph(5, {{0, 1}, {1, 2}, {2, 0}, {3, 2}, {4, 0}});
  const auto result = lagraph::pagerank(adj);
  const double total = std::accumulate(result.rank.begin(),
                                       result.rank.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  EXPECT_GT(result.iterations, 1);
}

TEST(PageRank, SymmetricCycleIsUniform) {
  const auto adj = digraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const auto result = lagraph::pagerank(adj);
  for (const double r : result.rank) {
    EXPECT_NEAR(r, 0.25, 1e-6);
  }
}

TEST(PageRank, HubAttractsMass) {
  // Everyone links to vertex 0.
  const auto adj = digraph(5, {{1, 0}, {2, 0}, {3, 0}, {4, 0}});
  const auto result = lagraph::pagerank(adj);
  for (Index i = 1; i < 5; ++i) {
    EXPECT_GT(result.rank[0], result.rank[i] * 2);
  }
}

TEST(PageRank, DanglingMassRedistributed) {
  // 0 -> 1, 1 dangles: rank still sums to one.
  const auto adj = digraph(3, {{0, 1}});
  const auto result = lagraph::pagerank(adj);
  const double total = std::accumulate(result.rank.begin(),
                                       result.rank.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  EXPECT_GT(result.rank[1], result.rank[0]);
}

TEST(PageRank, BadInputThrows) {
  EXPECT_THROW(lagraph::pagerank(Matrix<Bool>(2, 3)),
               grb::DimensionMismatch);
}

// --- Triangle counting ------------------------------------------------------

TEST(TriangleCount, KnownSmallGraphs) {
  EXPECT_EQ(lagraph::triangle_count(undirected(3, {{0, 1}, {1, 2}, {0, 2}})),
            1u);
  // K4 has 4 triangles.
  EXPECT_EQ(lagraph::triangle_count(undirected(
                4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})),
            4u);
  // Square without diagonals: none.
  EXPECT_EQ(lagraph::triangle_count(
                undirected(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}})),
            0u);
  EXPECT_EQ(lagraph::triangle_count(Matrix<Bool>(5, 5)), 0u);
}

TEST(TriangleCount, MatchesBruteForceOnRandomGraphs) {
  grbsm::support::Xoshiro256 rng(31);
  for (int round = 0; round < 4; ++round) {
    const Index n = 24;
    std::vector<std::pair<Index, Index>> edges;
    for (int k = 0; k < 80; ++k) {
      const Index a = rng.bounded(n);
      const Index b = rng.bounded(n);
      if (a != b) edges.emplace_back(a, b);
    }
    const auto adj = undirected(n, edges);
    // Brute force over vertex triples.
    std::uint64_t expected = 0;
    for (Index i = 0; i < n; ++i) {
      for (Index j = i + 1; j < n; ++j) {
        if (!adj.has(i, j)) continue;
        for (Index k = j + 1; k < n; ++k) {
          if (adj.has(i, k) && adj.has(j, k)) ++expected;
        }
      }
    }
    EXPECT_EQ(lagraph::triangle_count(adj), expected) << "round " << round;
  }
}

// --- SSSP -------------------------------------------------------------------

TEST(Sssp, WeightedChain) {
  const auto w = Matrix<U64>::build(
      4, 4, {{0, 1, 5}, {1, 2, 3}, {2, 3, 2}});
  const auto dist = lagraph::sssp(w, 0);
  EXPECT_EQ(dist, (std::vector<U64>{0, 5, 8, 10}));
}

TEST(Sssp, PicksShorterOfTwoRoutes) {
  // 0 -> 2 direct costs 10; 0 -> 1 -> 2 costs 3.
  const auto w = Matrix<U64>::build(
      3, 3, {{0, 2, 10}, {0, 1, 1}, {1, 2, 2}});
  EXPECT_EQ(lagraph::sssp(w, 0)[2], 3u);
}

TEST(Sssp, UnreachableIsInfinity) {
  const auto w = Matrix<U64>::build(3, 3, {{0, 1, 1}});
  const auto dist = lagraph::sssp(w, 0);
  EXPECT_EQ(dist[2], lagraph::kInfDistance);
}

TEST(Sssp, ZeroWeightEdgesSupported) {
  const auto w = Matrix<U64>::build(3, 3, {{0, 1, 0}, {1, 2, 0}});
  const auto dist = lagraph::sssp(w, 0);
  EXPECT_EQ(dist[2], 0u);
}

TEST(Sssp, MatchesBellmanFordOnRandomGraphs) {
  grbsm::support::Xoshiro256 rng(77);
  for (int round = 0; round < 3; ++round) {
    const Index n = 30;
    std::vector<grb::Tuple<U64>> edges;
    for (int k = 0; k < 120; ++k) {
      edges.push_back({rng.bounded(n), rng.bounded(n), rng.bounded(9) + 1});
    }
    const auto w = Matrix<U64>::build(n, n, edges, grb::Min<U64>{});
    const auto dist = lagraph::sssp(w, 0);
    // Reference Bellman-Ford.
    std::vector<U64> ref(n, lagraph::kInfDistance);
    ref[0] = 0;
    for (Index round2 = 0; round2 < n; ++round2) {
      for (const auto& t : w.extract_tuples()) {
        if (ref[t.row] != lagraph::kInfDistance &&
            ref[t.row] + t.val < ref[t.col]) {
          ref[t.col] = ref[t.row] + t.val;
        }
      }
    }
    EXPECT_EQ(dist, ref) << "round " << round;
  }
}

TEST(Sssp, BadInputsThrow) {
  EXPECT_THROW(lagraph::sssp(Matrix<U64>(2, 3), 0), grb::DimensionMismatch);
  EXPECT_THROW(lagraph::sssp(Matrix<U64>(2, 2), 5), grb::IndexOutOfBounds);
}

}  // namespace
