#include <gtest/gtest.h>

#include <cstdint>

#include "lagraph/cc_bfs.hpp"
#include "lagraph/cc_fastsv.hpp"
#include "support/rng.hpp"

namespace {

using grb::Bool;
using grb::Index;
using grb::Matrix;

Matrix<Bool> undirected(Index n,
                        const std::vector<std::pair<Index, Index>>& edges) {
  std::vector<grb::Tuple<Bool>> tuples;
  for (const auto& [a, b] : edges) {
    tuples.push_back({a, b, 1});
    tuples.push_back({b, a, 1});
  }
  return Matrix<Bool>::build(n, n, std::move(tuples), grb::LOr<Bool>{});
}

TEST(FastSV, EmptyGraphIsAllSingletons) {
  const auto labels = lagraph::cc_fastsv(Matrix<Bool>(5, 5));
  for (Index i = 0; i < 5; ++i) EXPECT_EQ(labels[i], i);
  EXPECT_EQ(lagraph::sum_squared_component_sizes(labels), 5u);
}

TEST(FastSV, ZeroVertices) {
  EXPECT_TRUE(lagraph::cc_fastsv(Matrix<Bool>(0, 0)).empty());
}

TEST(FastSV, SingleEdge) {
  const auto labels = lagraph::cc_fastsv(undirected(3, {{0, 2}}));
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_NE(labels[0], labels[1]);
  EXPECT_EQ(lagraph::sum_squared_component_sizes(labels), 5u);  // 2² + 1²
}

TEST(FastSV, PathGraph) {
  const auto labels =
      lagraph::cc_fastsv(undirected(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}));
  for (Index i = 1; i < 6; ++i) EXPECT_EQ(labels[i], labels[0]);
  EXPECT_EQ(labels[0], 0u);  // smallest id labels the component
}

TEST(FastSV, CycleAndIsolated) {
  const auto labels =
      lagraph::cc_fastsv(undirected(5, {{0, 1}, {1, 2}, {2, 0}}));
  EXPECT_EQ(labels[1], 0u);
  EXPECT_EQ(labels[2], 0u);
  EXPECT_EQ(labels[3], 3u);
  EXPECT_EQ(labels[4], 4u);
}

TEST(FastSV, TwoStarsJoined) {
  // Star at 0 (0-1, 0-2, 0-3), star at 4 (4-5, 4-6), bridge 3-4.
  const auto labels = lagraph::cc_fastsv(
      undirected(7, {{0, 1}, {0, 2}, {0, 3}, {4, 5}, {4, 6}, {3, 4}}));
  for (Index i = 1; i < 7; ++i) EXPECT_EQ(labels[i], labels[0]);
}

TEST(FastSV, NonSquareThrows) {
  EXPECT_THROW(lagraph::cc_fastsv(Matrix<Bool>(2, 3)),
               grb::DimensionMismatch);
}

TEST(ComponentSizes, CountsAndSquares) {
  const std::vector<Index> labels{0, 0, 2, 2, 2, 5};
  auto sizes = lagraph::component_sizes(labels);
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<Index>{1, 2, 3}));
  EXPECT_EQ(lagraph::sum_squared_component_sizes(labels), 1u + 4u + 9u);
}

struct RandomGraph {
  Index n;
  std::size_t edges;
  std::uint64_t seed;
};

class CcRandomSweep : public ::testing::TestWithParam<RandomGraph> {};

// Property: FastSV and the BFS oracle agree on the partition (same labels,
// since both label by the smallest reachable vertex).
TEST_P(CcRandomSweep, FastSvMatchesBfsOracle) {
  const auto p = GetParam();
  grbsm::support::Xoshiro256 rng(p.seed);
  std::vector<std::pair<Index, Index>> edges;
  for (std::size_t k = 0; k < p.edges; ++k) {
    const Index a = rng.bounded(p.n);
    const Index b = rng.bounded(p.n);
    if (a != b) edges.emplace_back(a, b);
  }
  const auto adj = undirected(p.n, edges);
  EXPECT_EQ(lagraph::cc_fastsv(adj), lagraph::cc_bfs(adj));
}

TEST_P(CcRandomSweep, LabelsAreCanonicalRepresentatives) {
  const auto p = GetParam();
  grbsm::support::Xoshiro256 rng(p.seed + 1000);
  std::vector<std::pair<Index, Index>> edges;
  for (std::size_t k = 0; k < p.edges; ++k) {
    const Index a = rng.bounded(p.n);
    const Index b = rng.bounded(p.n);
    if (a != b) edges.emplace_back(a, b);
  }
  const auto adj = undirected(p.n, edges);
  const auto labels = lagraph::cc_fastsv(adj);
  for (Index i = 0; i < p.n; ++i) {
    // The label is a member of its own component and a fixed point.
    EXPECT_EQ(labels[labels[i]], labels[i]);
    EXPECT_LE(labels[i], i);
  }
  // Endpoint labels agree across every edge.
  for (const auto& [a, b] : edges) {
    EXPECT_EQ(labels[a], labels[b]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, CcRandomSweep,
    ::testing::Values(RandomGraph{2, 1, 1}, RandomGraph{10, 5, 2},
                      RandomGraph{50, 25, 3}, RandomGraph{100, 100, 4},
                      RandomGraph{300, 150, 5}, RandomGraph{300, 1200, 6},
                      RandomGraph{1000, 500, 7}, RandomGraph{1000, 3000, 8}));

}  // namespace
