#include <gtest/gtest.h>

#include <cstdint>

#include "lagraph/cc_fastsv.hpp"
#include "lagraph/incremental_cc.hpp"
#include "support/rng.hpp"

namespace {

using grb::Bool;
using grb::Index;
using lagraph::IncrementalCC;

TEST(IncrementalCC, StartsAsSingletons) {
  IncrementalCC cc(4);
  EXPECT_EQ(cc.num_nodes(), 4u);
  EXPECT_EQ(cc.num_components(), 4u);
  EXPECT_EQ(cc.sum_squared_sizes(), 4u);
  EXPECT_FALSE(cc.connected(0, 3));
}

TEST(IncrementalCC, AddEdgeMergesAndUpdatesSumSquares) {
  IncrementalCC cc(4);
  EXPECT_TRUE(cc.add_edge(0, 1));
  EXPECT_EQ(cc.num_components(), 3u);
  EXPECT_EQ(cc.sum_squared_sizes(), 4u + 1u + 1u);  // 2² + 1 + 1
  EXPECT_TRUE(cc.add_edge(2, 3));
  EXPECT_EQ(cc.sum_squared_sizes(), 8u);
  EXPECT_TRUE(cc.add_edge(1, 2));
  EXPECT_EQ(cc.num_components(), 1u);
  EXPECT_EQ(cc.sum_squared_sizes(), 16u);
}

TEST(IncrementalCC, RedundantEdgeIsNoop) {
  IncrementalCC cc(3);
  EXPECT_TRUE(cc.add_edge(0, 1));
  EXPECT_FALSE(cc.add_edge(1, 0));
  EXPECT_FALSE(cc.add_edge(0, 0));
  EXPECT_EQ(cc.sum_squared_sizes(), 5u);
}

TEST(IncrementalCC, AddNodeExtends) {
  IncrementalCC cc(2);
  const Index id = cc.add_node();
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(cc.num_nodes(), 3u);
  EXPECT_EQ(cc.sum_squared_sizes(), 3u);
  cc.add_edge(id, 0);
  EXPECT_EQ(cc.size_of(0), 2u);
}

TEST(IncrementalCC, ResetReinitialises) {
  IncrementalCC cc(3);
  cc.add_edge(0, 1);
  cc.reset(5);
  EXPECT_EQ(cc.num_components(), 5u);
  EXPECT_EQ(cc.sum_squared_sizes(), 5u);
  EXPECT_FALSE(cc.connected(0, 1));
}

TEST(IncrementalCC, OutOfBoundsThrows) {
  IncrementalCC cc(2);
  EXPECT_THROW((void)cc.find(2), grb::IndexOutOfBounds);
  EXPECT_THROW(cc.add_edge(0, 5), grb::IndexOutOfBounds);
}

struct StreamCase {
  Index n;
  std::size_t edges;
  std::uint64_t seed;
};

class IncrementalStreamSweep : public ::testing::TestWithParam<StreamCase> {};

// Property: after every insertion, the incremental structure agrees with a
// full FastSV recomputation — the exact equivalence the paper's future-work
// item (2) relies on.
TEST_P(IncrementalStreamSweep, MatchesFastSvAfterEveryInsert) {
  const auto p = GetParam();
  grbsm::support::Xoshiro256 rng(p.seed);
  IncrementalCC cc(p.n);
  std::vector<grb::Tuple<Bool>> sofar;
  for (std::size_t k = 0; k < p.edges; ++k) {
    const Index a = rng.bounded(p.n);
    const Index b = rng.bounded(p.n);
    if (a == b) continue;
    cc.add_edge(a, b);
    sofar.push_back({a, b, 1});
    sofar.push_back({b, a, 1});
    const auto adj =
        grb::Matrix<Bool>::build(p.n, p.n, sofar, grb::LOr<Bool>{});
    const auto labels = lagraph::cc_fastsv(adj);
    ASSERT_EQ(cc.sum_squared_sizes(),
              lagraph::sum_squared_component_sizes(labels))
        << "after edge " << k;
    ASSERT_EQ(cc.num_components(),
              lagraph::component_sizes(labels).size());
  }
}

INSTANTIATE_TEST_SUITE_P(Random, IncrementalStreamSweep,
                         ::testing::Values(StreamCase{4, 10, 1},
                                           StreamCase{12, 30, 2},
                                           StreamCase{40, 60, 3},
                                           StreamCase{100, 80, 4}));

}  // namespace
