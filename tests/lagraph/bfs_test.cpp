#include <gtest/gtest.h>

#include "lagraph/bfs.hpp"

namespace {

using grb::Bool;
using grb::Index;
using grb::Matrix;

Matrix<Bool> digraph(Index n,
                     const std::vector<std::pair<Index, Index>>& edges) {
  std::vector<grb::Tuple<Bool>> tuples;
  for (const auto& [a, b] : edges) {
    tuples.push_back({a, b, 1});
  }
  return Matrix<Bool>::build(n, n, std::move(tuples), grb::LOr<Bool>{});
}

TEST(BfsLevels, Chain) {
  const auto adj = digraph(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto levels = lagraph::bfs_levels(adj, 0);
  EXPECT_EQ(levels, (std::vector<Index>{0, 1, 2, 3}));
}

TEST(BfsLevels, Unreachable) {
  const auto adj = digraph(4, {{0, 1}});
  const auto levels = lagraph::bfs_levels(adj, 0);
  EXPECT_EQ(levels[0], 0u);
  EXPECT_EQ(levels[1], 1u);
  EXPECT_EQ(levels[2], lagraph::kUnreachable);
  EXPECT_EQ(levels[3], lagraph::kUnreachable);
}

TEST(BfsLevels, ShortestOfMultiplePaths) {
  // 0 -> 1 -> 2 -> 4 and 0 -> 3 -> 4: level(4) must be 2.
  const auto adj = digraph(5, {{0, 1}, {1, 2}, {2, 4}, {0, 3}, {3, 4}});
  const auto levels = lagraph::bfs_levels(adj, 0);
  EXPECT_EQ(levels[4], 2u);
}

TEST(BfsLevels, CycleTerminates) {
  const auto adj = digraph(3, {{0, 1}, {1, 2}, {2, 0}});
  const auto levels = lagraph::bfs_levels(adj, 1);
  EXPECT_EQ(levels[1], 0u);
  EXPECT_EQ(levels[2], 1u);
  EXPECT_EQ(levels[0], 2u);
}

TEST(BfsLevels, DirectionMatters) {
  const auto adj = digraph(3, {{0, 1}, {1, 2}});
  const auto from2 = lagraph::bfs_levels(adj, 2);
  EXPECT_EQ(from2[2], 0u);
  EXPECT_EQ(from2[0], lagraph::kUnreachable);
}

TEST(BfsLevels, BadInputsThrow) {
  EXPECT_THROW(lagraph::bfs_levels(Matrix<Bool>(2, 3), 0),
               grb::DimensionMismatch);
  EXPECT_THROW(lagraph::bfs_levels(Matrix<Bool>(2, 2), 2),
               grb::IndexOutOfBounds);
}

TEST(BfsLevels, SelfLoopOnlyIsLevelZero) {
  const auto adj = digraph(2, {{0, 0}});
  const auto levels = lagraph::bfs_levels(adj, 0);
  EXPECT_EQ(levels[0], 0u);
  EXPECT_EQ(levels[1], lagraph::kUnreachable);
}

}  // namespace
