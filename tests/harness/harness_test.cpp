#include <gtest/gtest.h>

#include <sstream>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "paper_example.hpp"

namespace {

using harness::Query;

TEST(Registry, Fig5HasSixToolsInLegendOrder) {
  const auto& tools = harness::fig5_tools();
  ASSERT_EQ(tools.size(), 6u);
  EXPECT_EQ(tools[0].label, "GraphBLAS Batch");
  EXPECT_EQ(tools[1].label, "GraphBLAS Incremental");
  EXPECT_EQ(tools[2].threads, 8);
  EXPECT_EQ(tools[3].threads, 8);
  EXPECT_EQ(tools[4].label, "NMF Batch");
  EXPECT_EQ(tools[5].label, "NMF Incremental");
}

TEST(Registry, UnknownKeysThrow) {
  EXPECT_THROW(harness::make_engine("bogus", Query::kQ1), grb::InvalidValue);
  EXPECT_THROW(harness::find_tool("bogus"), grb::InvalidValue);
}

TEST(Registry, EveryToolInstantiates) {
  for (const auto& t : harness::all_tools()) {
    const auto e = harness::make_engine(t, Query::kQ2);
    ASSERT_NE(e, nullptr);
    EXPECT_FALSE(e->name().empty());
  }
}

TEST(Runner, RunOnceProducesAnswersAndTimings) {
  const auto& tool = harness::find_tool("grb-incremental");
  const auto result =
      harness::run_once(tool, Query::kQ2, paper_example::initial_graph(),
                        {paper_example::update_change_set()});
  EXPECT_EQ(result.initial_answer, paper_example::kQ2Initial);
  ASSERT_EQ(result.update_answers.size(), 1u);
  EXPECT_EQ(result.update_answers[0], paper_example::kQ2Updated);
  EXPECT_GT(result.load_and_initial_s, 0.0);
  EXPECT_GE(result.update_and_reeval_s, 0.0);
}

TEST(Runner, RepeatedRunsSummarise) {
  const auto& tool = harness::find_tool("nmf-batch");
  const auto rep =
      harness::run_repeated(tool, Query::kQ1, paper_example::initial_graph(),
                            {paper_example::update_change_set()}, 3);
  EXPECT_EQ(rep.load_and_initial.n, 3u);
  EXPECT_GT(rep.load_and_initial.geomean, 0.0);
  EXPECT_LE(rep.load_and_initial.min, rep.load_and_initial.max);
  EXPECT_EQ(rep.initial_answer, paper_example::kQ1Initial);
}

TEST(Runner, VerifyToolsReturnsAnswerSequence) {
  const auto answers = harness::verify_tools(
      harness::all_tools(), Query::kQ1, paper_example::initial_graph(),
      {paper_example::update_change_set()});
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0], paper_example::kQ1Initial);
  EXPECT_EQ(answers[1], paper_example::kQ1Updated);
}

TEST(Report, TableAndCsvFormatting) {
  harness::SeriesTable t;
  t.title = "demo";
  t.rows = {"1", "2"};
  t.cols = {"ToolA", "ToolB"};
  t.cells = {{0.5, -1.0}, {0.001234, 10.0}};
  std::ostringstream table;
  harness::print_table(table, t);
  EXPECT_NE(table.str().find("demo"), std::string::npos);
  EXPECT_NE(table.str().find("ToolB"), std::string::npos);
  EXPECT_NE(table.str().find("0.001234"), std::string::npos);
  EXPECT_NE(table.str().find('-'), std::string::npos);  // missing cell
  std::ostringstream csv;
  harness::print_csv(csv, t);
  EXPECT_NE(csv.str().find("scale,ToolA,ToolB"), std::string::npos);
  EXPECT_NE(csv.str().find("2,0.001234,10"), std::string::npos);
}

}  // namespace
