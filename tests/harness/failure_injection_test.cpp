// Failure-injection and degenerate-input tests: the harness must detect
// disagreeing engines (that is its whole purpose), loaders must reject
// malformed datasets loudly, and every engine must survive empty and
// minimal graphs.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "harness/runner.hpp"
#include "model/io.hpp"
#include "paper_example.hpp"

namespace {

namespace fs = std::filesystem;
using harness::Query;

/// An engine that lies: correct initial answer, garbage afterwards.
class LyingEngine final : public harness::Engine {
 public:
  explicit LyingEngine(Query q) : inner_(harness::make_engine("nmf-batch", q)) {}
  [[nodiscard]] std::string name() const override { return "Liar"; }
  void load(const sm::SocialGraph& g) override { inner_->load(g); }
  std::string initial() override { return inner_->initial(); }
  std::string update(const sm::ChangeSet& cs) override {
    inner_->update(cs);
    return "666|667|668";
  }

 private:
  harness::EnginePtr inner_;
};

TEST(FailureInjection, VerifyToolsDetectsDisagreement) {
  // Run the real tools first, then compare against the liar by hand (the
  // registry cannot build it, so replicate verify_tools' comparison).
  const auto g = paper_example::initial_graph();
  const std::vector<sm::ChangeSet> changes = {
      paper_example::update_change_set()};
  const auto reference = harness::verify_tools(
      {harness::find_tool("grb-batch")}, Query::kQ1, g, changes);
  LyingEngine liar(Query::kQ1);
  liar.load(g);
  EXPECT_EQ(liar.initial(), reference[0]);
  EXPECT_NE(liar.update(changes[0]), reference[1]);
}

TEST(FailureInjection, RunRepeatedRejectsNondeterminism) {
  // A tool whose answers depend on run parity must be flagged.
  class FlakyEngine final : public harness::Engine {
   public:
    [[nodiscard]] std::string name() const override { return "Flaky"; }
    void load(const sm::SocialGraph&) override {}
    std::string initial() override { return "1"; }
    std::string update(const sm::ChangeSet&) override {
      return (++calls_ % 2 == 0) ? "2" : "3";
    }
    int calls_ = 0;
  };
  // run_repeated builds engines through the registry, so exercise the
  // answer-comparison logic directly.
  FlakyEngine flaky;
  flaky.load(paper_example::initial_graph());
  const auto a1 = flaky.update(paper_example::update_change_set());
  const auto a2 = flaky.update(paper_example::update_change_set());
  EXPECT_NE(a1, a2);  // this is what run_repeated's guard would catch
}

TEST(DegenerateInputs, EmptyGraphAllEngines) {
  const sm::SocialGraph empty;
  for (const auto& tool : harness::all_tools()) {
    for (const Query q : {Query::kQ1, Query::kQ2}) {
      auto engine = harness::make_engine(tool, q);
      engine->load(empty);
      EXPECT_EQ(engine->initial(), "") << tool.label;
      EXPECT_EQ(engine->update(sm::ChangeSet{}), "") << tool.label;
    }
  }
}

TEST(DegenerateInputs, GraphBuiltEntirelyThroughUpdates) {
  // Engines must handle a load of nothing followed by creation via changes.
  sm::ChangeSet cs;
  cs.ops.push_back(sm::AddUser{1});
  cs.ops.push_back(sm::AddPost{10, 100, 1});
  cs.ops.push_back(sm::AddComment{20, 200, false, 10, 1});
  cs.ops.push_back(sm::AddLikes{1, 20});
  for (const auto& tool : harness::all_tools()) {
    auto q1 = harness::make_engine(tool, Query::kQ1);
    q1->load(sm::SocialGraph{});
    q1->initial();
    EXPECT_EQ(q1->update(cs), "10") << tool.label;  // 10·1 + 1 = 11
    auto q2 = harness::make_engine(tool, Query::kQ2);
    q2->load(sm::SocialGraph{});
    q2->initial();
    EXPECT_EQ(q2->update(cs), "20") << tool.label;  // single liker: 1
  }
}

TEST(DegenerateInputs, SinglePostNoUsers) {
  sm::SocialGraph g;
  g.add_post(7, 0);
  for (const auto& tool : harness::all_tools()) {
    auto engine = harness::make_engine(tool, Query::kQ1);
    engine->load(g);
    EXPECT_EQ(engine->initial(), "7") << tool.label;
  }
}

TEST(DegenerateInputs, ChangeReferencingUnknownEntityThrows) {
  sm::ChangeSet bad;
  bad.ops.push_back(sm::AddLikes{999, 888});
  for (const char* key : {"grb-incremental", "nmf-incremental"}) {
    auto engine = harness::make_engine(key, Query::kQ2);
    engine->load(paper_example::initial_graph());
    engine->initial();
    EXPECT_THROW(engine->update(bad), grb::InvalidValue) << key;
  }
}

class MalformedDatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("grbsm_malformed_" + std::string(::testing::UnitTest::GetInstance()
                                                  ->current_test_info()
                                                  ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  void write(const char* name, const char* content) {
    std::ofstream out(fs::path(dir_) / name);
    out << content;
  }
  std::string dir_;
};

TEST_F(MalformedDatasetTest, TruncatedPostRecord) {
  write("users.csv", "1\n");
  write("posts.csv", "10|100\n");  // missing submitter field
  EXPECT_THROW(sm::load_initial(dir_), grb::InvalidValue);
}

TEST_F(MalformedDatasetTest, NonNumericId) {
  write("users.csv", "abc\n");
  EXPECT_THROW(sm::load_initial(dir_), std::invalid_argument);
}

TEST_F(MalformedDatasetTest, CommentBeforeItsParent) {
  write("users.csv", "1\n");
  write("posts.csv", "10|100|1\n");
  write("comments.csv", "21|300|C|20|1\n20|200|P|10|1\n");  // 21 before 20
  EXPECT_THROW(sm::load_initial(dir_), grb::InvalidValue);
}

TEST_F(MalformedDatasetTest, UnknownChangeKind) {
  write("users.csv", "1\n");
  write("change01.csv", "Z|1|2\n");
  EXPECT_THROW(sm::load_change_sets(dir_), grb::InvalidValue);
}

TEST_F(MalformedDatasetTest, BadParentKindInComment) {
  write("users.csv", "1\n");
  write("posts.csv", "10|100|1\n");
  write("comments.csv", "20|200|X|10|1\n");
  EXPECT_THROW(sm::load_initial(dir_), grb::InvalidValue);
}

}  // namespace
