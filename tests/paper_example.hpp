// The worked example of the paper (Fig. 3): two posts, three comments, four
// users, two friendships, five likes — and the update that inserts six
// elements (Fig. 3b). Tests assert the exact scores the paper derives:
//   initial:  Q1 p1=25 p2=10;  Q2 c1=4 c2=5 c3=0
//   updated:  Q1 p1=37 p2=10;  Q2 c1=4 c2=16 c3=0 c4=1
#pragma once

#include "model/change.hpp"
#include "model/social_graph.hpp"

namespace paper_example {

// External ids: posts 1-2, comments 11-14, users 101-104.
inline constexpr sm::NodeId kP1 = 1, kP2 = 2;
inline constexpr sm::NodeId kC1 = 11, kC2 = 12, kC3 = 13, kC4 = 14;
inline constexpr sm::NodeId kU1 = 101, kU2 = 102, kU3 = 103, kU4 = 104;

inline sm::SocialGraph initial_graph() {
  sm::SocialGraph g;
  g.add_user(kU1);
  g.add_user(kU2);
  g.add_user(kU3);
  g.add_user(kU4);
  g.add_post(kP1, 1000);
  g.add_post(kP2, 2000);
  g.add_comment(kC1, 1100, /*parent_is_comment=*/false, kP1);
  g.add_comment(kC2, 1200, /*parent_is_comment=*/true, kC1);
  g.add_comment(kC3, 2100, /*parent_is_comment=*/false, kP2);
  g.add_friendship(kU2, kU3);
  g.add_friendship(kU3, kU4);
  g.add_likes(kU2, kC1);
  g.add_likes(kU3, kC1);
  g.add_likes(kU1, kC2);
  g.add_likes(kU3, kC2);
  g.add_likes(kU4, kC2);
  return g;
}

/// The Fig. 3b update: friendship u1-u4, like u2->c2, comment c4 under c1
/// (rooted at p1), like u4->c4 — six inserted elements.
inline sm::ChangeSet update_change_set() {
  sm::ChangeSet cs;
  cs.ops.push_back(sm::AddFriendship{kU1, kU4});
  cs.ops.push_back(sm::AddLikes{kU2, kC2});
  cs.ops.push_back(
      sm::AddComment{kC4, 1300, /*parent_is_comment=*/true, kC1, kU4});
  cs.ops.push_back(sm::AddLikes{kU4, kC4});
  return cs;
}

// Expected contest answers (score desc, then newer timestamp, then lower id).
inline constexpr const char* kQ1Initial = "1|2";   // p1=25, p2=10
inline constexpr const char* kQ1Updated = "1|2";   // p1=37, p2=10
inline constexpr const char* kQ2Initial = "12|11|13";  // c2=5, c1=4, c3=0
inline constexpr const char* kQ2Updated = "12|11|14";  // c2=16, c1=4, c4=1

}  // namespace paper_example
