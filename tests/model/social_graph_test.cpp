#include <gtest/gtest.h>

#include "model/social_graph.hpp"

namespace {

using sm::SocialGraph;

TEST(SocialGraph, AddEntitiesAssignsDenseIdsInOrder) {
  SocialGraph g;
  EXPECT_EQ(g.add_user(100), 0u);
  EXPECT_EQ(g.add_user(200), 1u);
  EXPECT_EQ(g.add_post(1, 10), 0u);
  EXPECT_EQ(g.add_post(2, 20), 1u);
  EXPECT_EQ(g.num_users(), 2u);
  EXPECT_EQ(g.num_posts(), 2u);
  EXPECT_EQ(g.num_nodes(), 4u);
}

TEST(SocialGraph, DuplicateIdsRejected) {
  SocialGraph g;
  g.add_user(1);
  EXPECT_THROW(g.add_user(1), grb::InvalidValue);
  g.add_post(7, 0);
  EXPECT_THROW(g.add_post(7, 1), grb::InvalidValue);
  g.add_comment(9, 0, false, 7);
  EXPECT_THROW(g.add_comment(9, 0, false, 7), grb::InvalidValue);
}

TEST(SocialGraph, CommentResolvesRootThroughChain) {
  SocialGraph g;
  g.add_post(1, 0);
  g.add_comment(10, 1, /*parent_is_comment=*/false, 1);
  g.add_comment(11, 2, /*parent_is_comment=*/true, 10);
  g.add_comment(12, 3, /*parent_is_comment=*/true, 11);
  EXPECT_EQ(g.comment(0).root_post, 0u);
  EXPECT_EQ(g.comment(1).root_post, 0u);
  EXPECT_EQ(g.comment(2).root_post, 0u);
  // All three registered in the post's comment list, in order.
  EXPECT_EQ(g.post(0).comments, (std::vector<sm::DenseId>{0, 1, 2}));
}

TEST(SocialGraph, CommentUnknownParentThrows) {
  SocialGraph g;
  EXPECT_THROW(g.add_comment(5, 0, false, 99), grb::InvalidValue);
  EXPECT_THROW(g.add_comment(5, 0, true, 99), grb::InvalidValue);
}

TEST(SocialGraph, LikesAreSetSemantics) {
  SocialGraph g;
  g.add_user(1);
  g.add_post(2, 0);
  g.add_comment(3, 1, false, 2);
  EXPECT_TRUE(g.add_likes(1, 3));
  EXPECT_FALSE(g.add_likes(1, 3));  // duplicate ignored
  EXPECT_EQ(g.num_likes(), 1u);
  EXPECT_TRUE(g.has_likes(1, 3));
  EXPECT_FALSE(g.has_likes(1, 99));
  EXPECT_EQ(g.user(0).liked_comments, (std::vector<sm::DenseId>{0}));
}

TEST(SocialGraph, FriendshipSymmetricSetSemantics) {
  SocialGraph g;
  g.add_user(1);
  g.add_user(2);
  EXPECT_TRUE(g.add_friendship(1, 2));
  EXPECT_FALSE(g.add_friendship(2, 1));  // same edge
  EXPECT_EQ(g.num_friendships(), 1u);
  EXPECT_TRUE(g.has_friendship(1, 2));
  EXPECT_TRUE(g.has_friendship(2, 1));
  EXPECT_EQ(g.user(0).friends, (std::vector<sm::DenseId>{1}));
  EXPECT_EQ(g.user(1).friends, (std::vector<sm::DenseId>{0}));
}

TEST(SocialGraph, SelfFriendshipRejected) {
  SocialGraph g;
  g.add_user(1);
  EXPECT_THROW(g.add_friendship(1, 1), grb::InvalidValue);
}

TEST(SocialGraph, EdgeAccountingMatchesTable2Definition) {
  SocialGraph g;
  g.add_user(1);
  g.add_user(2);
  g.add_post(10, 0);
  g.add_comment(20, 1, false, 10);
  g.add_comment(21, 2, true, 20);
  g.add_friendship(1, 2);
  g.add_likes(1, 20);
  // friends(1) + likes(1) + 2 edges per comment (commented + rootPost).
  EXPECT_EQ(g.num_edges(), 1u + 1u + 4u);
}

TEST(SocialGraph, FindAndRequire) {
  SocialGraph g;
  g.add_user(42);
  EXPECT_EQ(g.find_user(42).value(), 0u);
  EXPECT_FALSE(g.find_user(43).has_value());
  EXPECT_EQ(g.require_user(42), 0u);
  EXPECT_THROW((void)g.require_user(43), grb::InvalidValue);
  EXPECT_THROW((void)g.require_post(1), grb::InvalidValue);
  EXPECT_THROW((void)g.require_comment(1), grb::InvalidValue);
}

TEST(SocialGraph, LikesUnknownEntitiesThrow) {
  SocialGraph g;
  g.add_user(1);
  EXPECT_THROW(g.add_likes(1, 5), grb::InvalidValue);
  EXPECT_THROW(g.add_likes(9, 5), grb::InvalidValue);
  EXPECT_THROW(g.add_friendship(1, 9), grb::InvalidValue);
}

}  // namespace
