#include <gtest/gtest.h>

#include <filesystem>

#include "harness/registry.hpp"
#include "model/io.hpp"
#include "paper_example.hpp"

namespace {

namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("grbsm_io_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

bool graphs_equal(const sm::SocialGraph& a, const sm::SocialGraph& b) {
  if (a.num_users() != b.num_users() || a.num_posts() != b.num_posts() ||
      a.num_comments() != b.num_comments() ||
      a.num_friendships() != b.num_friendships() ||
      a.num_likes() != b.num_likes()) {
    return false;
  }
  for (std::size_t i = 0; i < a.num_posts(); ++i) {
    if (a.post(i).id != b.post(i).id ||
        a.post(i).timestamp != b.post(i).timestamp ||
        a.post(i).comments != b.post(i).comments) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.num_comments(); ++i) {
    const auto& ca = a.comment(i);
    const auto& cb = b.comment(i);
    if (ca.id != cb.id || ca.timestamp != cb.timestamp ||
        ca.root_post != cb.root_post || ca.likers != cb.likers) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.num_users(); ++i) {
    if (a.user(i).id != b.user(i).id ||
        a.user(i).friends != b.user(i).friends) {
      return false;
    }
  }
  return true;
}

TEST_F(IoTest, InitialGraphRoundTrip) {
  const auto g = paper_example::initial_graph();
  sm::save_initial(g, dir_);
  const auto loaded = sm::load_initial(dir_);
  EXPECT_TRUE(graphs_equal(g, loaded));
}

TEST_F(IoTest, ChangeSetsRoundTrip) {
  std::vector<sm::ChangeSet> sets;
  sets.push_back(paper_example::update_change_set());
  sm::ChangeSet second;
  second.ops.push_back(sm::AddUser{999});
  sets.push_back(second);
  sm::save_change_sets(sets, dir_);
  const auto loaded = sm::load_change_sets(dir_);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].ops, sets[0].ops);
  EXPECT_EQ(loaded[1].ops, sets[1].ops);
}

TEST_F(IoTest, LoadStopsAtFirstMissingChangeFile) {
  sm::save_change_sets({paper_example::update_change_set()}, dir_);
  const auto loaded = sm::load_change_sets(dir_);
  EXPECT_EQ(loaded.size(), 1u);
}

TEST_F(IoTest, MissingUsersFileThrows) {
  EXPECT_THROW(sm::load_initial(dir_), std::runtime_error);
}

TEST_F(IoTest, RoundTripPreservesQueryAnswers) {
  // End-to-end: answers computed from the reloaded dataset must match the
  // paper's expected answers.
  sm::save_initial(paper_example::initial_graph(), dir_);
  sm::save_change_sets({paper_example::update_change_set()}, dir_);
  const auto g = sm::load_initial(dir_);
  const auto sets = sm::load_change_sets(dir_);
  auto engine = harness::make_engine("grb-incremental", harness::Query::kQ2);
  engine->load(g);
  EXPECT_EQ(engine->initial(), paper_example::kQ2Initial);
  EXPECT_EQ(engine->update(sets.at(0)), paper_example::kQ2Updated);
}

}  // namespace
