#include <gtest/gtest.h>

#include "model/change.hpp"
#include "model/io.hpp"

namespace {

using sm::ChangeOp;
using sm::ChangeSet;

TEST(Change, ApplyInsertsInOrder) {
  sm::SocialGraph g;
  g.add_user(1);
  g.add_post(10, 0);
  ChangeSet cs;
  cs.ops.push_back(sm::AddUser{2});
  cs.ops.push_back(sm::AddComment{20, 5, false, 10, 1});
  cs.ops.push_back(sm::AddLikes{2, 20});          // refers to both new items
  cs.ops.push_back(sm::AddFriendship{1, 2});
  sm::apply_change_set(g, cs);
  EXPECT_EQ(g.num_users(), 2u);
  EXPECT_EQ(g.num_comments(), 1u);
  EXPECT_TRUE(g.has_likes(2, 20));
  EXPECT_TRUE(g.has_friendship(1, 2));
}

TEST(Change, ApplyToleratesDuplicateEdges) {
  sm::SocialGraph g;
  g.add_user(1);
  g.add_user(2);
  g.add_friendship(1, 2);
  ChangeSet cs;
  cs.ops.push_back(sm::AddFriendship{2, 1});
  sm::apply_change_set(g, cs);  // no throw
  EXPECT_EQ(g.num_friendships(), 1u);
}

TEST(Change, TotalInsertsCountsOps) {
  ChangeSet a, b;
  a.ops.push_back(sm::AddUser{1});
  a.ops.push_back(sm::AddUser{2});
  b.ops.push_back(sm::AddFriendship{1, 2});
  EXPECT_EQ(sm::total_inserts({a, b}), 3u);
}

TEST(ChangeRecord, RoundTripsThroughCsvFields) {
  const std::vector<ChangeOp> ops = {
      sm::AddUser{7},
      sm::AddPost{8, -12345, 7},
      sm::AddComment{9, 99, true, 8, 7},
      sm::AddComment{10, 100, false, 8, 7},
      sm::AddLikes{7, 9},
      sm::AddFriendship{7, 11},
  };
  for (const ChangeOp& op : ops) {
    const auto fields = sm::change_record_fields(op);
    const ChangeOp parsed = sm::parse_change_record(fields);
    EXPECT_EQ(parsed, op);
  }
}

TEST(ChangeRecord, MalformedRecordsThrow) {
  EXPECT_THROW(sm::parse_change_record({}), grb::InvalidValue);
  EXPECT_THROW(sm::parse_change_record({"X", "1"}), grb::InvalidValue);
  EXPECT_THROW(sm::parse_change_record({"U"}), grb::InvalidValue);
  EXPECT_THROW(sm::parse_change_record({"L", "1"}), grb::InvalidValue);
  EXPECT_THROW(sm::parse_change_record({"C", "1", "2", "Q", "3", "4"}),
               grb::InvalidValue);
  EXPECT_THROW(sm::parse_change_record({"U", "notanumber"}),
               std::invalid_argument);
}

}  // namespace
