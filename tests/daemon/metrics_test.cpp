// kMetrics protocol tests plus the stats-tearing regression: the daemon's
// registry-backed stats must hold the prune-family invariant
// (scanned + skipped == total) on every response, even while the writer
// thread is mid-stream — one coherent registry snapshot per kStats/kMetrics
// frame, never a half-applied batch. The TSan lane re-runs this suite
// (poller thread racing the writer thread's counter batches).
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "daemon/protocol.hpp"
#include "daemon/server.hpp"
#include "datagen/generator.hpp"
#include "paper_example.hpp"
#include "support/telemetry/metrics.hpp"

namespace grbd {
namespace {

namespace telemetry = grbsm::telemetry;

/// One served connection over a socketpair (same harness as server_test).
class Conn {
 public:
  explicit Conn(Server& server) {
    int sv[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    client_ = sv[0];
    server_fd_ = sv[1];
    thread_ = std::thread(
        [&server, fd = server_fd_] { server.serve_connection(fd, fd); });
  }
  ~Conn() {
    if (client_ >= 0) ::close(client_);
    if (thread_.joinable()) thread_.join();
    if (server_fd_ >= 0) ::close(server_fd_);
  }

  Frame call(MsgType type, const std::vector<std::uint8_t>& payload = {}) {
    EXPECT_TRUE(write_frame(client_, type, payload));
    auto f = read_frame(client_);
    EXPECT_TRUE(f.has_value());
    return f ? *f : Frame{};
  }

  std::uint64_t apply(const sm::ChangeSet& cs) {
    const Frame f = call(MsgType::kApply, encode_change_set(cs));
    EXPECT_EQ(f.type, MsgType::kApplied);
    PayloadReader in(f.payload);
    return in.u64();
  }

 private:
  int client_ = -1;
  int server_fd_ = -1;
  std::thread thread_;
};

/// The kStats payload, decoded.
struct WireStats {
  std::uint64_t latest_epoch, applied, queries, retained, in_flight;
  std::uint64_t prune_total, prune_scanned, prune_skipped;
  std::uint64_t pool_hits, pool_rebuilds, bound_rebuilds;
};

WireStats decode_stats(const Frame& f) {
  EXPECT_EQ(f.type, MsgType::kStatsOk);
  PayloadReader in(f.payload);
  WireStats s{};
  s.latest_epoch = in.u64();
  s.applied = in.u64();
  s.queries = in.u64();
  s.retained = in.u64();
  s.in_flight = in.u64();
  s.prune_total = in.u64();
  s.prune_scanned = in.u64();
  s.prune_skipped = in.u64();
  s.pool_hits = in.u64();
  s.pool_rebuilds = in.u64();
  s.bound_rebuilds = in.u64();
  in.expect_done();
  return s;
}

telemetry::RegistrySnapshot decode_metrics(const Frame& f) {
  EXPECT_EQ(f.type, MsgType::kMetricsOk);
  return telemetry::parse_snapshot(f.payload.data(), f.payload.size());
}

ServerConfig small_config() {
  ServerConfig cfg;
  cfg.shards = 2;
  cfg.depth = 2;
  cfg.retain = 16;
  return cfg;
}

TEST(DaemonTelemetry, KMetricsIsACoherentSupersetOfKStats) {
  Server server(small_config());
  server.load(paper_example::initial_graph());
  Conn conn(server);

  conn.apply(paper_example::update_change_set());
  server.drain();
  // One answered query so daemon.queries and epoch.answer_us move.
  PayloadWriter req;
  req.u8(kQueryQ1);
  req.u64(kLatestEpoch);
  EXPECT_EQ(conn.call(MsgType::kQuery, req.data()).type, MsgType::kAnswer);

  const WireStats stats = decode_stats(conn.call(MsgType::kStats));
  const telemetry::RegistrySnapshot reg =
      decode_metrics(conn.call(MsgType::kMetrics));

  EXPECT_EQ(reg.schema_version, telemetry::kMetricsSchemaVersion);
  // Every kStats field is present under a dotted registry name, equal at
  // quiescence — kMetrics is the superset, kStats the fixed-layout legacy.
  EXPECT_EQ(reg.value_or("daemon.latest_epoch", ~0ull), stats.latest_epoch);
  EXPECT_EQ(reg.value_or("daemon.applied", ~0ull), stats.applied);
  EXPECT_EQ(reg.value_or("daemon.queries", ~0ull), stats.queries);
  EXPECT_EQ(reg.value_or("daemon.retained", ~0ull), stats.retained);
  EXPECT_EQ(reg.value_or("daemon.in_flight", ~0ull), stats.in_flight);
  EXPECT_EQ(reg.value_or("prune.blocks_total", ~0ull), stats.prune_total);
  EXPECT_EQ(reg.value_or("prune.blocks_scanned", ~0ull), stats.prune_scanned);
  EXPECT_EQ(reg.value_or("prune.blocks_skipped", ~0ull), stats.prune_skipped);
  EXPECT_EQ(reg.value_or("prune.pool_hits", ~0ull), stats.pool_hits);
  EXPECT_EQ(reg.value_or("prune.pool_rebuilds", ~0ull), stats.pool_rebuilds);
  EXPECT_EQ(reg.value_or("prune.bound_rebuilds", ~0ull),
            stats.bound_rebuilds);
  EXPECT_EQ(stats.latest_epoch, 1u);
  EXPECT_GE(reg.value_or("daemon.queries", 0), 1u);
  // The answer span timed itself into the registry (kMetricsOnly default).
  const telemetry::HistogramSnapshot* answer =
      reg.histogram("epoch.answer_us");
  ASSERT_NE(answer, nullptr);
  EXPECT_GE(answer->count(), 1u);
}

TEST(DaemonTelemetry, KMetricsRejectsTrailingBytes) {
  Server server(small_config());
  server.load(paper_example::initial_graph());
  Conn conn(server);
  const Frame f = conn.call(MsgType::kMetrics, {0xab});
  ASSERT_EQ(f.type, MsgType::kError);
  PayloadReader in(f.payload);
  EXPECT_EQ(static_cast<ErrorCode>(in.u32()), ErrorCode::kBadRequest);
}

TEST(DaemonTelemetry, StatsNeverTearUnderALiveWriteStream) {
  // The regression this PR fixes: the prune counters used to be three
  // independent globals read one relaxed load at a time, so a kStats racing
  // the writer's update could serve scanned + skipped != total. Now the
  // writer's adds are registry batches and each kStats/kMetrics is one
  // seqlock-coherent snapshot — hammer stats during a removal-heavy write
  // stream (removal epochs drive the pruned re-rank path, so the family is
  // hot) and require the invariant on every poll.
  auto params = datagen::params_for_scale(1, 42);
  params.change_sets = 24;
  params.insert_elements = 400;
  params.frac_removals = 0.25;
  const datagen::Dataset ds = datagen::generate(params);

  Server server(small_config());
  server.load(ds.initial);
  Conn writer(server);
  Conn poller(server);

  std::atomic<bool> done{false};
  std::thread stream([&] {
    for (const sm::ChangeSet& cs : ds.changes) {
      EXPECT_GT(writer.apply(cs), 0u);
    }
    server.drain();
    done.store(true, std::memory_order_release);
  });

  std::uint64_t polls = 0;
  while (!done.load(std::memory_order_acquire)) {
    const WireStats s = decode_stats(poller.call(MsgType::kStats));
    EXPECT_EQ(s.prune_scanned + s.prune_skipped, s.prune_total)
        << "kStats tore the prune family on poll " << polls;
    const telemetry::RegistrySnapshot reg =
        decode_metrics(poller.call(MsgType::kMetrics));
    EXPECT_EQ(reg.value_or("prune.blocks_scanned", 0) +
                  reg.value_or("prune.blocks_skipped", 0),
              reg.value_or("prune.blocks_total", 0))
        << "kMetrics tore the prune family on poll " << polls;
    ++polls;
  }
  stream.join();

  const WireStats fin = decode_stats(poller.call(MsgType::kStats));
  EXPECT_EQ(fin.prune_scanned + fin.prune_skipped, fin.prune_total);
  EXPECT_EQ(fin.latest_epoch, ds.changes.size());
  EXPECT_GT(polls, 0u);
  // The stream must actually have exercised the family, or the invariant
  // checks above were vacuous.
  EXPECT_GT(fin.prune_total, 0u);
}

}  // namespace
}  // namespace grbd
