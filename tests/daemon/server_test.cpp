// End-to-end daemon server tests over socketpairs: protocol conversation,
// byte-identity of every served answer against the serial oracle under
// concurrent readers, error recovery, eviction, and shutdown draining.
// The TSan lane re-runs this suite (concurrent readers + writer thread).
#include "daemon/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "daemon/protocol.hpp"
#include "datagen/generator.hpp"
#include "harness/runner.hpp"
#include "paper_example.hpp"

namespace grbd {
namespace {

/// One served connection over a socketpair: fd() is the client end; the
/// server end is driven by a dedicated thread running serve_connection.
class Conn {
 public:
  explicit Conn(Server& server) {
    int sv[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    client_ = sv[0];
    server_fd_ = sv[1];
    thread_ = std::thread(
        [&server, fd = server_fd_] { server.serve_connection(fd, fd); });
  }
  ~Conn() { close_client(); }

  [[nodiscard]] int fd() const noexcept { return client_; }

  void close_client() {
    if (client_ >= 0) {
      ::close(client_);
      client_ = -1;
    }
    if (thread_.joinable()) thread_.join();
    if (server_fd_ >= 0) {
      ::close(server_fd_);
      server_fd_ = -1;
    }
  }

  Frame call(MsgType type, const std::vector<std::uint8_t>& payload = {}) {
    EXPECT_TRUE(write_frame(client_, type, payload));
    auto f = read_frame(client_);
    EXPECT_TRUE(f.has_value());
    return f ? *f : Frame{};
  }

  Frame query(std::uint8_t which, std::uint64_t pin) {
    PayloadWriter req;
    req.u8(which);
    req.u64(pin);
    return call(MsgType::kQuery, req.data());
  }

  std::uint64_t apply(const sm::ChangeSet& cs) {
    const Frame f = call(MsgType::kApply, encode_change_set(cs));
    EXPECT_EQ(f.type, MsgType::kApplied);
    PayloadReader in(f.payload);
    return in.u64();
  }

 private:
  int client_ = -1;
  int server_fd_ = -1;
  std::thread thread_;
};

std::string answer_of(const Frame& f) {
  EXPECT_EQ(f.type, MsgType::kAnswer);
  PayloadReader in(f.payload);
  (void)in.u64();
  return in.rest();
}

std::uint64_t epoch_of(const Frame& f) {
  PayloadReader in(f.payload);
  return in.u64();
}

/// oracle[k] = serial answer at epoch k (0 = initial evaluation).
std::vector<std::string> serial_oracle(
    harness::Query q, const sm::SocialGraph& g,
    const std::vector<sm::ChangeSet>& changes) {
  const harness::RunResult r =
      harness::run_once(harness::find_tool("grb-incremental"), q, g, changes);
  std::vector<std::string> oracle = {r.initial_answer};
  oracle.insert(oracle.end(), r.update_answers.begin(),
                r.update_answers.end());
  return oracle;
}

/// A change set that is valid any number of times (duplicate likes are
/// tolerated no-ops) — for tests that just need to burn epochs.
sm::ChangeSet idempotent_change_set() {
  sm::ChangeSet cs;
  cs.ops.push_back(sm::AddLikes{paper_example::kU1, paper_example::kC1});
  return cs;
}

ServerConfig small_config() {
  ServerConfig cfg;
  cfg.shards = 2;
  cfg.depth = 2;
  cfg.retain = 16;
  return cfg;
}

TEST(DaemonServer, HelloApplyQueryConversation) {
  Server server(small_config());
  server.load(paper_example::initial_graph());
  Conn conn(server);

  const Frame hello = conn.call(MsgType::kHello);
  ASSERT_EQ(hello.type, MsgType::kHelloOk);
  {
    PayloadReader in(hello.payload);
    EXPECT_EQ(in.u64(), 0u);  // latest epoch: only the initial evaluation
    EXPECT_EQ(in.u32(), 2u);  // shards
    EXPECT_EQ(in.u32(), 2u);  // depth
    EXPECT_EQ(in.u32(), 16u);  // retain
    in.expect_done();
  }

  EXPECT_EQ(answer_of(conn.query(kQueryQ1, 0)), paper_example::kQ1Initial);
  EXPECT_EQ(answer_of(conn.query(kQueryQ2, 0)), paper_example::kQ2Initial);

  EXPECT_EQ(conn.apply(paper_example::update_change_set()), 1u);
  // Pinned read of the epoch the write created: waits server-side.
  EXPECT_EQ(answer_of(conn.query(kQueryQ1, 1)), paper_example::kQ1Updated);
  EXPECT_EQ(answer_of(conn.query(kQueryQ2, 1)), paper_example::kQ2Updated);
  // Latest now serves epoch 1 too.
  const Frame latest = conn.query(kQueryQ2, kLatestEpoch);
  EXPECT_EQ(epoch_of(latest), 1u);
  EXPECT_EQ(answer_of(latest), paper_example::kQ2Updated);

  const Frame stats = conn.call(MsgType::kStats);
  ASSERT_EQ(stats.type, MsgType::kStatsOk);
  {
    PayloadReader in(stats.payload);
    EXPECT_EQ(in.u64(), 1u);  // latest epoch
    EXPECT_EQ(in.u64(), 1u);  // applied
    EXPECT_GE(in.u64(), 5u);  // queries served
    EXPECT_EQ(in.u64(), 2u);  // retained snapshots
    EXPECT_EQ(in.u64(), 0u);  // in flight
    // Prune counters (process-global, so only invariants are checked):
    // every considered block was either scanned or skipped.
    const std::uint64_t blocks_total = in.u64();
    const std::uint64_t blocks_scanned = in.u64();
    const std::uint64_t blocks_skipped = in.u64();
    EXPECT_EQ(blocks_scanned + blocks_skipped, blocks_total);
    (void)in.u64();  // pool_hits
    EXPECT_GE(in.u64(), 1u);  // pool_rebuilds: initial() built the pools
    (void)in.u64();  // bound_rebuilds
    in.expect_done();
  }

  const Frame ok = conn.call(MsgType::kShutdown);
  EXPECT_EQ(ok.type, MsgType::kOk);
}

TEST(DaemonServer, ConcurrentReadersServeByteIdenticalAnswers) {
  // A denser dataset than the paper example so several epochs are in
  // flight while readers hammer the store.
  datagen::GeneratorParams params;
  params.seed = 7;
  params.users = 60;
  params.posts = 25;
  params.comments = 120;
  params.friendships = 150;
  params.likes = 300;
  params.insert_elements = 360;
  params.change_sets = 8;
  const datagen::Dataset ds = datagen::generate(params);
  const auto oracle_q1 =
      serial_oracle(harness::Query::kQ1, ds.initial, ds.changes);
  const auto oracle_q2 =
      serial_oracle(harness::Query::kQ2, ds.initial, ds.changes);

  Server server(small_config());
  server.load(ds.initial);

  constexpr int kReaders = 4;
  std::vector<std::unique_ptr<Conn>> readers;
  std::vector<std::thread> reader_threads;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.push_back(std::make_unique<Conn>(server));
  }
  for (int r = 0; r < kReaders; ++r) {
    Conn& conn = *readers[r];
    const std::uint8_t which = r % 2 == 0 ? kQueryQ1 : kQueryQ2;
    const auto& oracle = r % 2 == 0 ? oracle_q1 : oracle_q2;
    reader_threads.emplace_back([&conn, which, &oracle] {
      // Epoch-pinned sweeps interleaved with latest reads while the writer
      // streams: every answer must be byte-identical to the oracle at the
      // epoch the daemon stamped on it.
      for (int round = 0; round < 30; ++round) {
        const Frame latest = conn.query(which, kLatestEpoch);
        ASSERT_EQ(latest.type, MsgType::kAnswer);
        const std::uint64_t e = epoch_of(latest);
        ASSERT_LT(e, oracle.size());
        EXPECT_EQ(answer_of(latest), oracle[e]);
        const Frame pinned = conn.query(which, e);  // still retained
        ASSERT_EQ(pinned.type, MsgType::kAnswer);
        EXPECT_EQ(epoch_of(pinned), e);
        EXPECT_EQ(answer_of(pinned), oracle[e]);
      }
    });
  }

  Conn writer(server);
  for (std::size_t k = 0; k < ds.changes.size(); ++k) {
    EXPECT_EQ(writer.apply(ds.changes[k]), k + 1);
  }
  for (std::thread& t : reader_threads) t.join();

  // Drain, then sweep every retained epoch once more.
  server.drain();
  for (std::uint64_t e = 0; e <= ds.changes.size(); ++e) {
    EXPECT_EQ(answer_of(writer.query(kQueryQ1, e)), oracle_q1[e]);
    EXPECT_EQ(answer_of(writer.query(kQueryQ2, e)), oracle_q2[e]);
  }
}

TEST(DaemonServer, EmptyChangeSetIsAnEpoch) {
  Server server(small_config());
  server.load(paper_example::initial_graph());
  Conn conn(server);
  EXPECT_EQ(conn.apply(sm::ChangeSet{}), 1u);
  EXPECT_EQ(conn.apply(paper_example::update_change_set()), 2u);
  // The empty epoch publishes the unchanged answer; the next one moves.
  EXPECT_EQ(answer_of(conn.query(kQueryQ2, 1)), paper_example::kQ2Initial);
  EXPECT_EQ(answer_of(conn.query(kQueryQ2, 2)), paper_example::kQ2Updated);
}

TEST(DaemonServer, MalformedRequestsKeepTheConnectionServing) {
  Server server(small_config());
  server.load(paper_example::initial_graph());
  Conn conn(server);

  // Unknown message type.
  Frame f = conn.call(static_cast<MsgType>(0x42));
  ASSERT_EQ(f.type, MsgType::kError);
  {
    PayloadReader in(f.payload);
    EXPECT_EQ(in.u32(), static_cast<std::uint32_t>(ErrorCode::kBadRequest));
  }
  // Garbage kApply payload (bad op tag).
  f = conn.call(MsgType::kApply, {1, 0, 0, 0, 99});
  ASSERT_EQ(f.type, MsgType::kError);
  // Hostile kApply op count (0xFFFFFFFF ops declared, zero payload bytes):
  // must come back kBadRequest, not OOM-kill or std::terminate the daemon.
  f = conn.call(MsgType::kApply, {0xff, 0xff, 0xff, 0xff});
  ASSERT_EQ(f.type, MsgType::kError);
  {
    PayloadReader in(f.payload);
    EXPECT_EQ(in.u32(), static_cast<std::uint32_t>(ErrorCode::kBadRequest));
  }
  // Bad query selector.
  {
    PayloadWriter req;
    req.u8(9);
    req.u64(0);
    f = conn.call(MsgType::kQuery, req.data());
    EXPECT_EQ(f.type, MsgType::kError);
  }
  // Trailing bytes after a well-formed kHello payload.
  f = conn.call(MsgType::kHello, {0xaa});
  EXPECT_EQ(f.type, MsgType::kError);

  // After all that abuse, the connection still answers correctly.
  EXPECT_EQ(answer_of(conn.query(kQueryQ1, 0)), paper_example::kQ1Initial);
}

TEST(DaemonServer, PinnedReadOfEvictedEpochFailsEvicted) {
  ServerConfig cfg = small_config();
  cfg.retain = 2;
  Server server(cfg);
  server.load(paper_example::initial_graph());
  Conn conn(server);
  for (int k = 0; k < 4; ++k) {
    (void)conn.apply(idempotent_change_set());
  }
  server.drain();
  const Frame f = conn.query(kQueryQ1, 0);  // long gone with retain=2
  ASSERT_EQ(f.type, MsgType::kError);
  PayloadReader in(f.payload);
  EXPECT_EQ(in.u32(), static_cast<std::uint32_t>(ErrorCode::kEvicted));
}

TEST(DaemonServer, PinnedReadOfUnpublishedEpochTimesOutNotReady) {
  ServerConfig cfg = small_config();
  cfg.query_wait = std::chrono::milliseconds(30);
  Server server(cfg);
  server.load(paper_example::initial_graph());
  Conn conn(server);
  const Frame f = conn.query(kQueryQ1, 5);  // nobody ever writes epoch 5
  ASSERT_EQ(f.type, MsgType::kError);
  PayloadReader in(f.payload);
  EXPECT_EQ(in.u32(), static_cast<std::uint32_t>(ErrorCode::kNotReady));
}

TEST(DaemonServer, MidRequestDisconnectLeavesTheServerServing) {
  Server server(small_config());
  server.load(paper_example::initial_graph());
  {
    Conn dying(server);
    // A header promising more than the client ever sends...
    const std::uint8_t partial[] = {50, 0, 0, 0,
                                    static_cast<std::uint8_t>(MsgType::kApply),
                                    1, 2, 3};
    ASSERT_EQ(::write(dying.fd(), partial, sizeof partial),
              static_cast<ssize_t>(sizeof partial));
    dying.close_client();  // ...then vanishes mid-request
  }
  // The next connection is served normally.
  Conn conn(server);
  EXPECT_EQ(answer_of(conn.query(kQueryQ2, 0)), paper_example::kQ2Initial);
}

TEST(DaemonServer, DrainReturnsAfterWriterFailure) {
  Server server(small_config());
  server.load(paper_example::initial_graph());
  // A semantically invalid change set: likes on a comment that does not
  // exist. The writer thread throws routing it and dies through its catch
  // block, so epoch 1 was assigned but will never publish.
  sm::ChangeSet poison;
  poison.ops.push_back(sm::AddLikes{paper_example::kU1, 999999});
  EXPECT_EQ(server.enqueue(poison), 1u);
  // Regression: drain() used to spin forever here, waiting for a publish
  // that can no longer happen. It must return once the writer is dead.
  server.drain();
  std::uint64_t latest = 0;
  ASSERT_TRUE(server.store().latest_epoch(latest));
  EXPECT_EQ(latest, 0u);  // only the initial evaluation ever published
  // The failure also shut ingestion down.
  EXPECT_EQ(server.enqueue(idempotent_change_set()), 0u);
}

TEST(DaemonServer, ShutdownDrainsPromisedEpochs) {
  Server server(small_config());
  server.load(paper_example::initial_graph());
  Conn conn(server);
  std::uint64_t last = 0;
  for (int k = 0; k < 5; ++k) last = conn.apply(idempotent_change_set());
  EXPECT_EQ(last, 5u);
  const Frame ok = conn.call(MsgType::kShutdown);
  EXPECT_EQ(ok.type, MsgType::kOk);
  server.drain();
  std::uint64_t latest = 0;
  ASSERT_TRUE(server.store().latest_epoch(latest));
  EXPECT_EQ(latest, 5u);
  // Writes after shutdown are refused.
  EXPECT_EQ(server.enqueue(idempotent_change_set()), 0u);
}

TEST(DaemonServer, UnixSocketTransportEndToEnd) {
  const std::string path =
      testing::TempDir() + "grb_daemon_test_" +
      std::to_string(::getpid()) + ".sock";
  Server server(small_config());
  server.load(paper_example::initial_graph());
  std::thread acceptor([&server, &path] {
    EXPECT_EQ(server.serve_unix(path), 0);
  });

  int fd = -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(path.size(), sizeof addr.sun_path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  for (int attempt = 0; attempt < 200 && fd < 0; ++attempt) {
    const int s = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(s, 0);
    if (::connect(s, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
        0) {
      fd = s;
    } else {
      ::close(s);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_GE(fd, 0) << "could not connect to " << path;

  ASSERT_TRUE(write_frame(fd, MsgType::kHello));
  auto hello = read_frame(fd);
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->type, MsgType::kHelloOk);
  ASSERT_TRUE(write_frame(fd, MsgType::kShutdown));
  auto ok = read_frame(fd);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->type, MsgType::kOk);
  ::close(fd);
  acceptor.join();
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace grbd
