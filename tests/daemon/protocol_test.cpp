// Framing and codec tests for the daemon wire protocol: truncated frames,
// oversized declared lengths, short reads/writes, mid-request disconnects
// and SIGPIPE-safe writes — the robustness contract of protocol.hpp.
#include "daemon/protocol.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace grbd {
namespace {

/// A connected fd pair; [0] and [1] are both read/write ends.
struct SocketPair {
  int fd[2] = {-1, -1};
  SocketPair() {
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fd), 0);
  }
  ~SocketPair() {
    for (int f : fd) {
      if (f >= 0) ::close(f);
    }
  }
  void close_end(int i) {
    ::close(fd[i]);
    fd[i] = -1;
  }
};

std::vector<std::uint8_t> wire_frame(MsgType type,
                                     const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> w;
  const auto length = static_cast<std::uint32_t>(payload.size() + 1);
  for (int i = 0; i < 4; ++i) {
    w.push_back(static_cast<std::uint8_t>(length >> (8 * i)));
  }
  w.push_back(static_cast<std::uint8_t>(type));
  w.insert(w.end(), payload.begin(), payload.end());
  return w;
}

TEST(DaemonProtocol, FrameRoundTrip) {
  SocketPair sp;
  const std::vector<std::uint8_t> payload = {1, 2, 3, 0xff, 0};
  ASSERT_TRUE(write_frame(sp.fd[0], MsgType::kApply, payload));
  const auto f = read_frame(sp.fd[1]);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, MsgType::kApply);
  EXPECT_EQ(f->payload, payload);
}

TEST(DaemonProtocol, EmptyPayloadRoundTrip) {
  SocketPair sp;
  ASSERT_TRUE(write_frame(sp.fd[0], MsgType::kHello));
  const auto f = read_frame(sp.fd[1]);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, MsgType::kHello);
  EXPECT_TRUE(f->payload.empty());
}

TEST(DaemonProtocol, CleanEofBetweenFramesIsNullopt) {
  SocketPair sp;
  ASSERT_TRUE(write_frame(sp.fd[0], MsgType::kStats));
  sp.close_end(0);
  EXPECT_TRUE(read_frame(sp.fd[1]).has_value());
  EXPECT_FALSE(read_frame(sp.fd[1]).has_value());
}

TEST(DaemonProtocol, TruncatedHeaderThrows) {
  SocketPair sp;
  const std::uint8_t half_header[2] = {9, 0};
  ASSERT_EQ(::write(sp.fd[0], half_header, 2), 2);
  sp.close_end(0);
  EXPECT_THROW((void)read_frame(sp.fd[1]), ProtocolError);
}

TEST(DaemonProtocol, MidRequestDisconnectThrows) {
  SocketPair sp;
  // Header promises 9 payload bytes; only 3 arrive before the peer dies.
  auto wire = wire_frame(MsgType::kApply, std::vector<std::uint8_t>(9, 7));
  wire.resize(4 + 1 + 3);
  ASSERT_EQ(::write(sp.fd[0], wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
  sp.close_end(0);
  EXPECT_THROW((void)read_frame(sp.fd[1]), ProtocolError);
}

TEST(DaemonProtocol, ZeroLengthFrameThrows) {
  SocketPair sp;
  const std::uint8_t header[4] = {0, 0, 0, 0};  // no room for the type byte
  ASSERT_EQ(::write(sp.fd[0], header, 4), 4);
  EXPECT_THROW((void)read_frame(sp.fd[1]), ProtocolError);
}

TEST(DaemonProtocol, OversizedDeclaredLengthRefusedBeforeAllocation) {
  SocketPair sp;
  const std::uint8_t header[4] = {0xff, 0xff, 0xff, 0xff};  // ~4 GiB claim
  ASSERT_EQ(::write(sp.fd[0], header, 4), 4);
  EXPECT_THROW((void)read_frame(sp.fd[1], /*max_frame=*/1 << 20),
               ProtocolError);
}

TEST(DaemonProtocol, ShortReadsAreReassembled) {
  SocketPair sp;
  const std::vector<std::uint8_t> payload(300, 0xab);
  const auto wire = wire_frame(MsgType::kQuery, payload);
  // Dribble the frame one byte at a time from another thread: every read
  // on the receiving side is short, so read_exact must loop.
  std::thread dribbler([&] {
    for (const std::uint8_t b : wire) {
      ASSERT_EQ(::write(sp.fd[0], &b, 1), 1);
    }
  });
  const auto f = read_frame(sp.fd[1]);
  dribbler.join();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, MsgType::kQuery);
  EXPECT_EQ(f->payload, payload);
}

TEST(DaemonProtocol, WriteToVanishedPeerReturnsFalseNotSigpipe) {
  SocketPair sp;
  sp.close_end(1);  // the reader is gone
  // Large enough to overflow any socket buffer, so the EPIPE surfaces even
  // if the first write is buffered. MSG_NOSIGNAL must keep SIGPIPE away —
  // this test would kill the whole binary otherwise.
  const std::vector<std::uint8_t> big(1 << 20, 0x5a);
  EXPECT_FALSE(write_frame(sp.fd[0], MsgType::kAnswer, big));
}

TEST(DaemonProtocol, PayloadReaderBoundsChecked) {
  const std::vector<std::uint8_t> three = {1, 2, 3};
  PayloadReader in(three);
  EXPECT_EQ(in.u8(), 1);
  EXPECT_THROW((void)in.u32(), ProtocolError);
  PayloadReader in64(three);
  EXPECT_THROW((void)in64.u64(), ProtocolError);
}

TEST(DaemonProtocol, TrailingBytesRejected) {
  PayloadWriter out;
  out.u32(7);
  out.u8(0);
  PayloadReader in(out.data());
  EXPECT_EQ(in.u32(), 7u);
  EXPECT_THROW(in.expect_done(), ProtocolError);
  EXPECT_EQ(in.u8(), 0);
  EXPECT_NO_THROW(in.expect_done());
}

TEST(DaemonProtocol, ChangeSetCodecRoundTripsEveryOp) {
  sm::ChangeSet cs;
  cs.ops.push_back(sm::AddUser{42});
  cs.ops.push_back(sm::AddPost{7, 123456789, 42});
  cs.ops.push_back(sm::AddComment{8, -5, true, 7, 42});
  cs.ops.push_back(sm::AddLikes{42, 8});
  cs.ops.push_back(sm::AddFriendship{42, 43});
  cs.ops.push_back(sm::RemoveLikes{42, 8});
  cs.ops.push_back(sm::RemoveFriendship{42, 43});
  const auto encoded = encode_change_set(cs);
  PayloadReader in(encoded);
  const sm::ChangeSet back = decode_change_set(in);
  in.expect_done();
  ASSERT_EQ(back.ops.size(), cs.ops.size());
  for (std::size_t i = 0; i < cs.ops.size(); ++i) {
    EXPECT_EQ(back.ops[i], cs.ops[i]) << "op " << i;
  }
}

TEST(DaemonProtocol, EmptyChangeSetRoundTrips) {
  const auto encoded = encode_change_set(sm::ChangeSet{});
  PayloadReader in(encoded);
  EXPECT_TRUE(decode_change_set(in).empty());
  in.expect_done();
}

TEST(DaemonProtocol, HostileOpCountRefusedBeforeAllocation) {
  // count=0xFFFFFFFF over a near-empty payload must be a ProtocolError
  // thrown before ops.reserve() — not a ~200 GB allocation attempt whose
  // bad_alloc would escape the protocol-error handling.
  PayloadWriter out;
  out.u32(0xFFFFFFFFu);
  out.u8(1);  // one stray byte; far too few for even a single op
  PayloadReader in(out.data());
  EXPECT_THROW((void)decode_change_set(in), ProtocolError);
}

TEST(DaemonProtocol, OpCountJustAbovePayloadCapacityRefused) {
  // Two minimal 9-byte ops on the wire, but a declared count of three.
  sm::ChangeSet cs;
  cs.ops.push_back(sm::AddUser{1});
  cs.ops.push_back(sm::AddUser{2});
  auto encoded = encode_change_set(cs);
  encoded[0] = 3;  // count lives in the little-endian first 4 bytes
  PayloadReader in(encoded);
  EXPECT_THROW((void)decode_change_set(in), ProtocolError);
}

TEST(DaemonProtocol, UnknownChangeOpTagThrows) {
  PayloadWriter out;
  out.u32(1);
  out.u8(99);  // no such op
  PayloadReader in(out.data());
  EXPECT_THROW((void)decode_change_set(in), ProtocolError);
}

TEST(DaemonProtocol, TruncatedChangeSetThrows) {
  sm::ChangeSet cs;
  cs.ops.push_back(sm::AddPost{7, 1000, 42});
  auto encoded = encode_change_set(cs);
  encoded.resize(encoded.size() - 4);  // cut into the last u64
  PayloadReader in(encoded);
  EXPECT_THROW((void)decode_change_set(in), ProtocolError);
}

}  // namespace
}  // namespace grbd
