// EpochStore semantics: retention window, pinning, eviction, the
// wait_published hand-off, and hammering the lock-light read path while the
// writer publishes (the TSan lane runs this suite).
#include "daemon/epoch_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace grbd {
namespace {

Snapshot snap(std::uint64_t epoch) {
  Snapshot s;
  s.epoch = epoch;
  s.q1 = "q1@" + std::to_string(epoch);
  s.q2 = "q2@" + std::to_string(epoch);
  return s;
}

TEST(DaemonEpochStore, EmptyStoreHasNoSnapshots) {
  const EpochStore store(4);
  EXPECT_EQ(store.latest(), nullptr);
  EXPECT_EQ(store.at(0), nullptr);
  EXPECT_FALSE(store.evicted(0));
  std::uint64_t e = 99;
  EXPECT_FALSE(store.latest_epoch(e));
  EXPECT_EQ(store.size(), 0u);
}

TEST(DaemonEpochStore, ZeroRetentionRejected) {
  EXPECT_THROW(EpochStore{0}, std::invalid_argument);
}

TEST(DaemonEpochStore, PublishAndPin) {
  EpochStore store(4);
  store.publish(snap(0));
  store.publish(snap(1));
  ASSERT_NE(store.latest(), nullptr);
  EXPECT_EQ(store.latest()->epoch, 1u);
  ASSERT_NE(store.at(0), nullptr);
  EXPECT_EQ(store.at(0)->q1, "q1@0");
  EXPECT_EQ(store.at(0)->q2, "q2@0");
  EXPECT_EQ(store.at(2), nullptr);  // not yet published
  EXPECT_FALSE(store.evicted(2));
  std::uint64_t e = 0;
  ASSERT_TRUE(store.latest_epoch(e));
  EXPECT_EQ(e, 1u);
}

TEST(DaemonEpochStore, RetentionEvictsOldest) {
  EpochStore store(3);
  for (std::uint64_t e = 0; e < 5; ++e) store.publish(snap(e));
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.at(0), nullptr);
  EXPECT_EQ(store.at(1), nullptr);
  EXPECT_TRUE(store.evicted(1));
  ASSERT_NE(store.at(2), nullptr);
  EXPECT_EQ(store.at(2)->epoch, 2u);
  EXPECT_EQ(store.latest()->epoch, 4u);
}

TEST(DaemonEpochStore, PinnedSnapshotSurvivesEviction) {
  EpochStore store(2);
  store.publish(snap(0));
  const SnapshotPtr pinned = store.at(0);  // the reader's pin
  ASSERT_NE(pinned, nullptr);
  for (std::uint64_t e = 1; e < 6; ++e) store.publish(snap(e));
  EXPECT_TRUE(store.evicted(0));  // gone from the window...
  EXPECT_EQ(pinned->epoch, 0u);  // ...but the pin still reads consistently
  EXPECT_EQ(pinned->q1, "q1@0");
}

TEST(DaemonEpochStore, NonDensePublishRejected) {
  EpochStore store(4);
  store.publish(snap(0));
  EXPECT_THROW(store.publish(snap(2)), std::logic_error);
  EXPECT_THROW(store.publish(snap(0)), std::logic_error);
}

TEST(DaemonEpochStore, WaitPublishedReturnsImmediatelyWhenPresent) {
  EpochStore store(4);
  store.publish(snap(0));
  const SnapshotPtr s =
      store.wait_published(0, std::chrono::milliseconds(0));
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->epoch, 0u);
}

TEST(DaemonEpochStore, WaitPublishedTimesOutOnFutureEpoch) {
  EpochStore store(4);
  store.publish(snap(0));
  EXPECT_EQ(store.wait_published(7, std::chrono::milliseconds(20)), nullptr);
}

TEST(DaemonEpochStore, WaitPublishedReturnsNullForEvictedEpoch) {
  EpochStore store(2);
  for (std::uint64_t e = 0; e < 4; ++e) store.publish(snap(e));
  EXPECT_EQ(store.wait_published(0, std::chrono::seconds(5)), nullptr);
}

TEST(DaemonEpochStore, WaitPublishedWakesWhenTheWriterCatchesUp) {
  EpochStore store(8);
  store.publish(snap(0));
  std::thread writer([&store] {
    for (std::uint64_t e = 1; e <= 3; ++e) store.publish(snap(e));
  });
  const SnapshotPtr s = store.wait_published(3, std::chrono::seconds(30));
  writer.join();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->epoch, 3u);
  EXPECT_EQ(s->q1, "q1@3");
}

TEST(DaemonEpochStore, ConcurrentReadersNeverSeeATornSnapshot) {
  constexpr std::uint64_t kEpochs = 200;
  constexpr int kReaders = 4;
  EpochStore store(8);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&store, &stop] {
      std::uint64_t newest_seen = 0;
      while (!stop.load(std::memory_order_acquire)) {
        if (const SnapshotPtr s = store.latest()) {
          // Monotone (publishes are ordered) and internally consistent
          // (the answer strings were built from the epoch field).
          EXPECT_GE(s->epoch, newest_seen);
          newest_seen = s->epoch;
          EXPECT_EQ(s->q1, "q1@" + std::to_string(s->epoch));
        }
        std::uint64_t latest = 0;
        if (store.latest_epoch(latest) && latest >= 3) {
          const SnapshotPtr pinned = store.at(latest - 3);
          if (pinned != nullptr) {
            EXPECT_EQ(pinned->epoch, latest - 3);
            EXPECT_EQ(pinned->q2, "q2@" + std::to_string(pinned->epoch));
          }
        }
      }
    });
  }
  for (std::uint64_t e = 0; e < kEpochs; ++e) store.publish(snap(e));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(store.latest()->epoch, kEpochs - 1);
}

}  // namespace
}  // namespace grbd
