// Cross-engine equivalence: all five engines (GraphBLAS batch, incremental,
// incremental+CC; NMF batch, incremental) must produce identical answer
// sequences on generated workloads — the strongest end-to-end property the
// repository has. This is what makes the Fig. 5 runtime comparison a fair
// one: every tool computes the same thing.
#include <gtest/gtest.h>

#include "datagen/generator.hpp"
#include "harness/runner.hpp"

namespace {

using harness::Query;

struct EquivCase {
  unsigned scale;
  std::uint64_t seed;
};

class EngineEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(EngineEquivalence, AllEnginesAgreeOnQ1) {
  const auto p = GetParam();
  const auto ds =
      datagen::generate(datagen::params_for_scale(p.scale, p.seed));
  EXPECT_NO_THROW(harness::verify_tools(harness::all_tools(), Query::kQ1,
                                        ds.initial, ds.changes));
}

TEST_P(EngineEquivalence, AllEnginesAgreeOnQ2) {
  const auto p = GetParam();
  const auto ds =
      datagen::generate(datagen::params_for_scale(p.scale, p.seed));
  EXPECT_NO_THROW(harness::verify_tools(harness::all_tools(), Query::kQ2,
                                        ds.initial, ds.changes));
}

INSTANTIATE_TEST_SUITE_P(GeneratedStreams, EngineEquivalence,
                         ::testing::Values(EquivCase{1, 42},
                                           EquivCase{1, 1337},
                                           EquivCase{2, 42},
                                           EquivCase{2, 7},
                                           EquivCase{4, 42}));

TEST(EngineEquivalence, LongStreamSoak) {
  // 40 small change sets with removals mixed in: incremental state must not
  // drift from batch ground truth over a long stream.
  auto params = datagen::params_for_scale(2, 2024);
  params.change_sets = 40;
  params.insert_elements = 400;
  params.frac_removals = 0.2;
  const auto ds = datagen::generate(params);
  ASSERT_GE(ds.changes.size(), 30u);
  for (const Query q : {Query::kQ1, Query::kQ2}) {
    EXPECT_NO_THROW(harness::verify_tools(harness::all_tools(), q,
                                          ds.initial, ds.changes));
  }
}

TEST(EngineEquivalence, EightThreadVariantsAgreeToo) {
  const auto ds = datagen::generate(datagen::params_for_scale(2, 99));
  for (const Query q : {Query::kQ1, Query::kQ2}) {
    EXPECT_NO_THROW(
        harness::verify_tools(harness::fig5_tools(), q, ds.initial,
                              ds.changes));
  }
}

TEST(EngineEquivalence, AnswersChangeOverTheStream) {
  // Sanity: the workloads actually move the answer somewhere; otherwise the
  // equivalence above would be vacuous. Any single (seed, query) pair may
  // legitimately keep a stable top-3 (updates are small), so we scan a few.
  bool moved = false;
  for (const std::uint64_t seed : {42ULL, 7ULL, 1337ULL}) {
    for (const Query q : {Query::kQ1, Query::kQ2}) {
      const auto ds = datagen::generate(datagen::params_for_scale(2, seed));
      const auto answers = harness::verify_tools(
          {harness::find_tool("grb-incremental")}, q, ds.initial, ds.changes);
      for (std::size_t i = 1; i < answers.size(); ++i) {
        if (answers[i] != answers[i - 1]) moved = true;
      }
    }
  }
  EXPECT_TRUE(moved) << "top-3 never changed across any update stream";
}

}  // namespace
