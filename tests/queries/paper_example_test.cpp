// Integration tests pinning the paper's worked example (Fig. 3 / Fig. 4):
// exact per-entity scores and contest answers, before and after the update,
// across every engine. These are the ground-truth anchors for the whole
// reproduction: if these pass, the algebra matches the paper's derivation.
#include <gtest/gtest.h>

#include "harness/registry.hpp"
#include "nmf/nmf_batch.hpp"
#include "paper_example.hpp"
#include "queries/engines.hpp"
#include "queries/q1.hpp"
#include "queries/q2.hpp"

namespace {

using namespace paper_example;
using harness::Query;

TEST(PaperExample, InitialGraphShape) {
  const auto g = initial_graph();
  EXPECT_EQ(g.num_users(), 4u);
  EXPECT_EQ(g.num_posts(), 2u);
  EXPECT_EQ(g.num_comments(), 3u);
  EXPECT_EQ(g.num_friendships(), 2u);
  EXPECT_EQ(g.num_likes(), 5u);
  // Table II accounting: friends + likes + commented + rootPost.
  EXPECT_EQ(g.num_edges(), 2u + 5u + 2u * 3u);
}

TEST(PaperExample, GrbStateMatricesMatchFig4) {
  const auto state = queries::GrbState::from_graph(initial_graph());
  // RootPost ∈ B^{2×3}: p1 roots c1, c2; p2 roots c3.
  EXPECT_EQ(state.root_post().nrows(), 2u);
  EXPECT_EQ(state.root_post().ncols(), 3u);
  EXPECT_TRUE(state.root_post().has(0, 0));
  EXPECT_TRUE(state.root_post().has(0, 1));
  EXPECT_TRUE(state.root_post().has(1, 2));
  EXPECT_EQ(state.root_post().nvals(), 3u);
  // Likes ∈ B^{3×4}: c1 ← u2, u3; c2 ← u1, u3, u4.
  EXPECT_EQ(state.likes().nvals(), 5u);
  EXPECT_TRUE(state.likes().has(0, 1));
  EXPECT_TRUE(state.likes().has(0, 2));
  EXPECT_TRUE(state.likes().has(1, 0));
  EXPECT_TRUE(state.likes().has(1, 2));
  EXPECT_TRUE(state.likes().has(1, 3));
  // Friends symmetric: u2-u3, u3-u4 stored both ways.
  EXPECT_EQ(state.friends().nvals(), 4u);
  // likesCount = [2, 3, (none)].
  EXPECT_EQ(state.likes_count().at_or(0, 0), 2u);
  EXPECT_EQ(state.likes_count().at_or(1, 0), 3u);
  EXPECT_EQ(state.likes_count().at_or(2, 0), 0u);
}

TEST(PaperExample, Q1BatchScoresMatchFig4a) {
  const auto state = queries::GrbState::from_graph(initial_graph());
  const auto scores = queries::q1_batch_scores(state);
  EXPECT_EQ(scores.at_or(0, 0), 25u);  // p1 = 10·2 + (2+3)
  EXPECT_EQ(scores.at_or(1, 0), 10u);  // p2 = 10·1 + 0
}

TEST(PaperExample, Q2BatchScoresMatchFig4b) {
  const auto state = queries::GrbState::from_graph(initial_graph());
  const auto scores = queries::q2_batch_scores(state);
  EXPECT_EQ(scores.at_or(0, 0), 4u);  // c1: {u2,u3} one component → 2²
  EXPECT_EQ(scores.at_or(1, 0), 5u);  // c2: {u1} ∪ {u3,u4} → 1² + 2²
  EXPECT_EQ(scores.at_or(2, 0), 0u);  // c3: nobody likes it
}

TEST(PaperExample, Q1IncrementalMatchesFig4aUpdate) {
  auto state = queries::GrbState::from_graph(initial_graph());
  auto scores = queries::q1_batch_scores(state);
  const auto delta = state.apply_change_set(update_change_set());
  const auto changed = queries::q1_incremental_update(state, delta, scores);
  // scores⁺ = 12 for p1 only (Fig. 4a: repliesSc⁺=10, likesSc⁺=2).
  EXPECT_EQ(changed.nvals(), 1u);
  EXPECT_EQ(changed.at_or(0, 0), 37u);  // Δscores reports the new total
  EXPECT_EQ(scores.at_or(0, 0), 37u);
  EXPECT_EQ(scores.at_or(1, 0), 10u);
}

TEST(PaperExample, Q2AffectedSetMatchesFig4b) {
  auto state = queries::GrbState::from_graph(initial_graph());
  const auto delta = state.apply_change_set(update_change_set());
  // ac = {c2 (new friendship u1-u4 inside fan set ∪ new like), c4 (new)}.
  const auto affected = queries::q2_affected_comments(state, delta);
  EXPECT_EQ(affected, (std::vector<grb::Index>{1, 3}));
}

TEST(PaperExample, Q2IncrementalMatchesFig4bUpdate) {
  auto state = queries::GrbState::from_graph(initial_graph());
  auto scores = queries::q2_batch_scores(state);
  const auto delta = state.apply_change_set(update_change_set());
  const auto changed = queries::q2_incremental_update(state, delta, scores);
  EXPECT_EQ(changed.at_or(1, 0), 16u);  // c2: single component of size 4
  EXPECT_EQ(changed.at_or(3, 0), 1u);   // c4: {u4}
  EXPECT_EQ(scores.at_or(0, 0), 4u);    // c1 untouched
  EXPECT_EQ(scores.at_or(1, 0), 16u);
  EXPECT_EQ(scores.at_or(3, 0), 1u);
}

TEST(PaperExample, NmfScoresAgree) {
  const auto g = initial_graph();
  EXPECT_EQ(nmf::q1_score_of_post(g, 0), 25u);
  EXPECT_EQ(nmf::q1_score_of_post(g, 1), 10u);
  EXPECT_EQ(nmf::q2_score_of_comment(g, 0), 4u);
  EXPECT_EQ(nmf::q2_score_of_comment(g, 1), 5u);
  EXPECT_EQ(nmf::q2_score_of_comment(g, 2), 0u);
  auto g2 = g;
  sm::apply_change_set(g2, update_change_set());
  EXPECT_EQ(nmf::q1_score_of_post(g2, 0), 37u);
  EXPECT_EQ(nmf::q2_score_of_comment(g2, 1), 16u);
  EXPECT_EQ(nmf::q2_score_of_comment(g2, 3), 1u);
}

class PaperExampleAllEngines
    : public ::testing::TestWithParam<const char*> {};

TEST_P(PaperExampleAllEngines, AnswersMatchPaper) {
  const auto& tool = harness::find_tool(GetParam());
  for (const Query q : {Query::kQ1, Query::kQ2}) {
    auto engine = harness::make_engine(tool, q);
    engine->load(initial_graph());
    const std::string initial = engine->initial();
    const std::string updated = engine->update(update_change_set());
    if (q == Query::kQ1) {
      EXPECT_EQ(initial, kQ1Initial) << tool.label;
      EXPECT_EQ(updated, kQ1Updated) << tool.label;
    } else {
      EXPECT_EQ(initial, kQ2Initial) << tool.label;
      EXPECT_EQ(updated, kQ2Updated) << tool.label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTools, PaperExampleAllEngines,
                         ::testing::Values("grb-batch", "grb-incremental",
                                           "grb-incremental-cc", "nmf-batch",
                                           "nmf-incremental",
                                           "grb-sharded-batch",
                                           "grb-sharded-incremental"));

}  // namespace
