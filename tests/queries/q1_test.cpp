// Q1 unit and property tests: batch against a hand-rolled model evaluation,
// incremental against batch over randomised change streams.
#include <gtest/gtest.h>

#include "datagen/generator.hpp"
#include "nmf/nmf_batch.hpp"
#include "queries/grb_state.hpp"
#include "queries/q1.hpp"

namespace {

using queries::GrbState;
using U64 = std::uint64_t;

TEST(Q1Batch, EmptyGraph) {
  const auto state = GrbState::from_graph(sm::SocialGraph{});
  const auto scores = queries::q1_batch_scores(state);
  EXPECT_EQ(scores.size(), 0u);
}

TEST(Q1Batch, PostWithoutCommentsScoresZero) {
  sm::SocialGraph g;
  g.add_post(1, 0);
  const auto scores = queries::q1_batch_scores(GrbState::from_graph(g));
  EXPECT_EQ(scores.at_or(0, 0), 0u);
}

TEST(Q1Batch, DeepCommentChainCountsAllDescendants) {
  sm::SocialGraph g;
  g.add_user(100);
  g.add_post(1, 0);
  g.add_comment(10, 1, false, 1);
  g.add_comment(11, 2, true, 10);
  g.add_comment(12, 3, true, 11);
  g.add_likes(100, 12);
  const auto scores = queries::q1_batch_scores(GrbState::from_graph(g));
  EXPECT_EQ(scores.at_or(0, 0), 31u);  // 3 comments ×10 + 1 like
}

TEST(Q1Batch, LikesOnlyCountTowardsRootPost) {
  sm::SocialGraph g;
  g.add_user(100);
  g.add_post(1, 0);
  g.add_post(2, 0);
  g.add_comment(10, 1, false, 1);
  g.add_comment(20, 1, false, 2);
  g.add_likes(100, 10);
  const auto scores = queries::q1_batch_scores(GrbState::from_graph(g));
  EXPECT_EQ(scores.at_or(0, 0), 11u);
  EXPECT_EQ(scores.at_or(1, 0), 10u);
}

TEST(Q1Incremental, EmptyChangeSetChangesNothing) {
  sm::SocialGraph g;
  g.add_post(1, 0);
  auto state = GrbState::from_graph(g);
  auto scores = queries::q1_batch_scores(state);
  const auto delta = state.apply_change_set(sm::ChangeSet{});
  const auto changed = queries::q1_incremental_update(state, delta, scores);
  EXPECT_EQ(changed.nvals(), 0u);
}

TEST(Q1Incremental, NewPostThenCommentOnIt) {
  sm::SocialGraph g;
  g.add_user(100);
  g.add_post(1, 0);
  auto state = GrbState::from_graph(g);
  auto scores = queries::q1_batch_scores(state);
  sm::ChangeSet cs;
  cs.ops.push_back(sm::AddPost{2, 5, 100});
  cs.ops.push_back(sm::AddComment{10, 6, false, 2, 100});
  cs.ops.push_back(sm::AddLikes{100, 10});
  const auto delta = state.apply_change_set(cs);
  const auto changed = queries::q1_incremental_update(state, delta, scores);
  EXPECT_EQ(scores.at_or(1, 0), 11u);  // the new post
  EXPECT_EQ(changed.at_or(1, 0), 11u);
  EXPECT_EQ(changed.nvals(), 1u);     // old post untouched
}

TEST(Q1Incremental, DuplicateLikeInChangeSetIgnored) {
  sm::SocialGraph g;
  g.add_user(100);
  g.add_post(1, 0);
  g.add_comment(10, 1, false, 1);
  g.add_likes(100, 10);
  auto state = GrbState::from_graph(g);
  auto scores = queries::q1_batch_scores(state);
  sm::ChangeSet cs;
  cs.ops.push_back(sm::AddLikes{100, 10});  // already present
  const auto delta = state.apply_change_set(cs);
  const auto changed = queries::q1_incremental_update(state, delta, scores);
  EXPECT_EQ(changed.nvals(), 0u);
  EXPECT_EQ(scores.at_or(0, 0), 11u);
}

class Q1StreamSweep : public ::testing::TestWithParam<unsigned> {};

// Property: after every change set of a generated stream, the incrementally
// maintained scores equal a from-scratch batch evaluation, and both agree
// with the object-model (NMF) scoring.
TEST_P(Q1StreamSweep, IncrementalMatchesBatchAndModel) {
  const auto ds = datagen::generate(datagen::params_for_scale(GetParam()));
  auto state = GrbState::from_graph(ds.initial);
  auto inc_scores = queries::q1_batch_scores(state);
  sm::SocialGraph model = ds.initial;
  for (const auto& cs : ds.changes) {
    const auto delta = state.apply_change_set(cs);
    queries::q1_incremental_update(state, delta, inc_scores);
    const auto batch = queries::q1_batch_scores(state);
    sm::apply_change_set(model, cs);
    ASSERT_EQ(state.num_posts(), model.num_posts());
    for (grb::Index p = 0; p < state.num_posts(); ++p) {
      ASSERT_EQ(inc_scores.at_or(p, 0), batch.at_or(p, 0)) << "post " << p;
      ASSERT_EQ(inc_scores.at_or(p, 0), nmf::q1_score_of_post(model, p))
          << "post " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, Q1StreamSweep, ::testing::Values(1u, 2u, 4u));

}  // namespace
