// Q2 unit and property tests: per-comment scoring, the affected-set logic of
// Fig. 4b steps 1-5, and incremental-vs-batch equivalence on change streams.
#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/generator.hpp"
#include "nmf/nmf_batch.hpp"
#include "queries/grb_state.hpp"
#include "queries/q2.hpp"

namespace {

using grb::Index;
using queries::GrbState;
using U64 = std::uint64_t;

sm::SocialGraph base_graph() {
  sm::SocialGraph g;
  for (sm::NodeId u = 100; u < 106; ++u) g.add_user(u);
  g.add_post(1, 0);
  g.add_comment(10, 1, false, 1);
  g.add_comment(11, 2, false, 1);
  return g;
}

TEST(Q2Score, NoLikersMeansZero) {
  const auto state = GrbState::from_graph(base_graph());
  EXPECT_EQ(queries::q2_comment_score(state, 0), 0u);
}

TEST(Q2Score, IsolatedLikersScoreOneEach) {
  auto g = base_graph();
  g.add_likes(100, 10);
  g.add_likes(101, 10);
  g.add_likes(102, 10);
  const auto state = GrbState::from_graph(g);
  EXPECT_EQ(queries::q2_comment_score(state, 0), 3u);  // 1²+1²+1²
}

TEST(Q2Score, FriendshipsOutsideFanSetIgnored) {
  auto g = base_graph();
  g.add_likes(100, 10);
  g.add_likes(101, 10);
  g.add_friendship(100, 102);  // 102 does not like c10
  g.add_friendship(102, 101);  // indirect path through outsider: irrelevant
  const auto state = GrbState::from_graph(g);
  EXPECT_EQ(queries::q2_comment_score(state, 0), 2u);  // two singletons
}

TEST(Q2Score, ComponentSizesSquareAndSum) {
  auto g = base_graph();
  for (sm::NodeId u = 100; u < 105; ++u) g.add_likes(u, 10);
  g.add_friendship(100, 101);
  g.add_friendship(101, 102);  // component of 3
  g.add_friendship(103, 104);  // component of 2
  const auto state = GrbState::from_graph(g);
  EXPECT_EQ(queries::q2_comment_score(state, 0), 9u + 4u);
}

TEST(Q2Batch, ScoresAllComments) {
  auto g = base_graph();
  g.add_likes(100, 10);
  g.add_likes(100, 11);
  g.add_likes(101, 11);
  g.add_friendship(100, 101);
  const auto scores = queries::q2_batch_scores(GrbState::from_graph(g));
  EXPECT_EQ(scores.at_or(0, 0), 1u);
  EXPECT_EQ(scores.at_or(1, 0), 4u);
}

TEST(Q2Affected, NewCommentIsAffected) {
  auto state = GrbState::from_graph(base_graph());
  sm::ChangeSet cs;
  cs.ops.push_back(sm::AddComment{12, 3, false, 1, 100});
  const auto delta = state.apply_change_set(cs);
  const auto affected = queries::q2_affected_comments(state, delta);
  EXPECT_EQ(affected, (std::vector<Index>{2}));
}

TEST(Q2Affected, NewLikeMarksItsComment) {
  auto state = GrbState::from_graph(base_graph());
  sm::ChangeSet cs;
  cs.ops.push_back(sm::AddLikes{100, 11});
  const auto delta = state.apply_change_set(cs);
  const auto affected = queries::q2_affected_comments(state, delta);
  EXPECT_EQ(affected, (std::vector<Index>{1}));
}

TEST(Q2Affected, FriendshipOnlyAffectsCommentsBothLike) {
  auto g = base_graph();
  g.add_likes(100, 10);  // c10 ← u100
  g.add_likes(101, 10);  // c10 ← u101
  g.add_likes(100, 11);  // c11 ← u100 only
  auto state = GrbState::from_graph(g);
  sm::ChangeSet cs;
  cs.ops.push_back(sm::AddFriendship{100, 101});
  const auto delta = state.apply_change_set(cs);
  const auto affected = queries::q2_affected_comments(state, delta);
  // Only c10 has both endpoints in its fan set (the AC = 2 rule).
  EXPECT_EQ(affected, (std::vector<Index>{0}));
}

TEST(Q2Affected, FriendshipBetweenNonLikersAffectsNothing) {
  auto g = base_graph();
  g.add_likes(100, 10);
  auto state = GrbState::from_graph(g);
  sm::ChangeSet cs;
  cs.ops.push_back(sm::AddFriendship{102, 103});
  const auto delta = state.apply_change_set(cs);
  EXPECT_TRUE(queries::q2_affected_comments(state, delta).empty());
}

TEST(Q2Incremental, DeltaOnlyReportsActualChanges) {
  auto g = base_graph();
  g.add_likes(100, 10);
  g.add_likes(101, 10);
  g.add_friendship(100, 101);  // already one component
  auto state = GrbState::from_graph(g);
  auto scores = queries::q2_batch_scores(state);
  sm::ChangeSet cs;
  // New friendship between users already connected inside the fan set:
  // comment is "affected" (rule fires) but the score cannot change.
  cs.ops.push_back(sm::AddLikes{102, 11});
  const auto delta = state.apply_change_set(cs);
  const auto changed = queries::q2_incremental_update(state, delta, scores);
  EXPECT_EQ(changed.nvals(), 1u);
  EXPECT_EQ(changed.at_or(1, 0), 1u);
}

TEST(Q2AffectedCoarse, IsSupersetOfExactRule) {
  const auto ds = datagen::generate(datagen::params_for_scale(2, 5));
  auto state = GrbState::from_graph(ds.initial);
  for (const auto& cs : ds.changes) {
    const auto delta = state.apply_change_set(cs);
    const auto exact = queries::q2_affected_comments(state, delta);
    const auto coarse = queries::q2_affected_comments_coarse(state, delta);
    ASSERT_TRUE(std::includes(coarse.begin(), coarse.end(), exact.begin(),
                              exact.end()));
  }
}

TEST(Q2AffectedCoarse, EndpointRuleMarksOneSidedLikes) {
  auto g = base_graph();
  g.add_likes(100, 10);  // u100 likes c10 only
  auto state = GrbState::from_graph(g);
  sm::ChangeSet cs;
  cs.ops.push_back(sm::AddFriendship{100, 101});  // 101 likes nothing
  const auto delta = state.apply_change_set(cs);
  // Exact rule: no comment has both endpoints in its fan set.
  EXPECT_TRUE(queries::q2_affected_comments(state, delta).empty());
  // Coarse rule: everything u100 likes is dragged in.
  EXPECT_EQ(queries::q2_affected_comments_coarse(state, delta),
            (std::vector<Index>{0}));
}

class Q2StreamSweep : public ::testing::TestWithParam<unsigned> {};

// Property: incremental == batch == object model, after every change set.
TEST_P(Q2StreamSweep, IncrementalMatchesBatchAndModel) {
  const auto ds = datagen::generate(datagen::params_for_scale(GetParam()));
  auto state = GrbState::from_graph(ds.initial);
  auto inc_scores = queries::q2_batch_scores(state);
  sm::SocialGraph model = ds.initial;
  for (const auto& cs : ds.changes) {
    const auto delta = state.apply_change_set(cs);
    queries::q2_incremental_update(state, delta, inc_scores);
    const auto batch = queries::q2_batch_scores(state);
    sm::apply_change_set(model, cs);
    ASSERT_EQ(state.num_comments(), model.num_comments());
    for (Index c = 0; c < state.num_comments(); ++c) {
      ASSERT_EQ(inc_scores.at_or(c, 0), batch.at_or(c, 0)) << "comment " << c;
      ASSERT_EQ(inc_scores.at_or(c, 0), nmf::q2_score_of_comment(model, c))
          << "comment " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, Q2StreamSweep, ::testing::Values(1u, 2u, 4u));

TEST(Q2Parallel, ThreadCountDoesNotChangeScores) {
  const auto ds = datagen::generate(datagen::params_for_scale(4));
  const auto state = GrbState::from_graph(ds.initial);
  grb::Vector<U64> s1(0), s8(0);
  {
    grb::ThreadGuard g(1);
    s1 = queries::q2_batch_scores(state);
  }
  {
    grb::ThreadGuard g(8);
    s8 = queries::q2_batch_scores(state);
  }
  EXPECT_EQ(s1, s8);
}

}  // namespace
