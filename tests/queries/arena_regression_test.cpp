// Allocation-regression tests for the workspace arena: after a warm-up
// pass, the iteration loops the paper measures (Q1 batch recompute, the
// incremental update loop, repeated pagerank) must lease every buffer from
// the pool — zero workspace misses. A miss regression here means some
// container with pool-origin storage retired without grb::recycle (rebuild
// with -DGRB_WORKSPACE_TRACE_MISSES to see the leaking lease sites).
//
// All loops run under a pinned single thread: lease sequences are then
// deterministic, which is what makes an exact zero-miss assertion sound.
#include <gtest/gtest.h>

#include "datagen/generator.hpp"
#include "grb/context.hpp"
#include "lagraph/pagerank.hpp"
#include "queries/engines.hpp"
#include "queries/q1.hpp"

namespace {

using queries::GrbState;

TEST(ArenaRegression, Q1BatchLoopStaysAllocationFree) {
  const auto ds = datagen::generate(datagen::params_for_scale(1));
  grb::ThreadGuard guard(1);
  auto state = GrbState::from_graph(ds.initial);
  grb::trim_workspace();
  // Warm-up: two evaluations settle the pool into the loop's equilibrium.
  grb::recycle(queries::q1_batch_scores(state));
  grb::recycle(queries::q1_batch_scores(state));
  const auto before = grb::workspace_stats();
  for (int i = 0; i < 3; ++i) {
    grb::recycle(queries::q1_batch_scores(state));
  }
  const auto after = grb::workspace_stats();
  EXPECT_EQ(after.misses, before.misses) << "Q1 batch loop hit the allocator";
  EXPECT_GT(after.leases(), before.leases());  // the loop does use the arena
}

TEST(ArenaRegression, IncrementalUpdateLoopStaysAllocationFree) {
  // The Fig. 5 hot path: apply change set + incremental reevaluation, once
  // per change set — exactly what the CI smoke gate checks at bench scale.
  const auto ds = datagen::generate(datagen::params_for_scale(1));
  ASSERT_FALSE(ds.changes.empty());
  grb::ThreadGuard guard(1);
  grb::trim_workspace();
  const auto run = [&]() {
    queries::GrbIncrementalEngine engine(harness::Query::kQ1);
    engine.load(ds.initial);
    engine.initial();
    for (const auto& cs : ds.changes) {
      engine.update(cs);
    }
  };
  run();  // warm-up 1: cold start populates the pool
  run();  // warm-up 2: settles the per-run equilibrium
  queries::GrbIncrementalEngine engine(harness::Query::kQ1);
  engine.load(ds.initial);
  engine.initial();
  const auto before = grb::workspace_stats();
  for (const auto& cs : ds.changes) {
    engine.update(cs);
  }
  const auto after = grb::workspace_stats();
  EXPECT_EQ(after.misses, before.misses)
      << "incremental update loop hit the allocator";
  EXPECT_GT(after.leases(), before.leases());
}

TEST(ArenaRegression, PagerankRepeatedCallsStayAllocationFree) {
  // n > the parallel-fold chunk so the leased reduction scratch engages.
  const grb::Index n = 6000;
  std::vector<grb::Tuple<grb::Bool>> edges;
  for (grb::Index i = 0; i < n; ++i) {
    edges.push_back({i, (i + 1) % n, grb::Bool{1}});
    edges.push_back({i, (i * 7 + 3) % n, grb::Bool{1}});
  }
  const auto adj =
      grb::Matrix<grb::Bool>::build(n, n, std::move(edges), grb::LOr<grb::Bool>{});
  grb::ThreadGuard guard(1);
  grb::trim_workspace();
  const auto run = [&]() {
    auto result = lagraph::pagerank(adj);
    // The converged rank vector leaves the arena with the result; hand its
    // storage back the way an iteration-carried caller would.
    grb::detail::workspace().donate(std::move(result.rank));
  };
  run();
  run();
  const auto before = grb::workspace_stats();
  run();
  const auto after = grb::workspace_stats();
  EXPECT_EQ(after.misses, before.misses) << "pagerank loop hit the allocator";
  EXPECT_GT(after.leases(), before.leases());
}

}  // namespace
