#include <gtest/gtest.h>

#include "queries/top_k.hpp"

namespace {

using queries::Ranked;
using queries::TopK;

TEST(Ranking, ScoreDominates) {
  EXPECT_TRUE(queries::ranks_before({1, 10, 0}, {2, 5, 100}));
  EXPECT_FALSE(queries::ranks_before({1, 5, 100}, {2, 10, 0}));
}

TEST(Ranking, TimestampBreaksScoreTies) {
  // More recent first (contest rule).
  EXPECT_TRUE(queries::ranks_before({1, 5, 200}, {2, 5, 100}));
  EXPECT_FALSE(queries::ranks_before({1, 5, 100}, {2, 5, 200}));
}

TEST(Ranking, IdBreaksFullTies) {
  EXPECT_TRUE(queries::ranks_before({1, 5, 100}, {2, 5, 100}));
  EXPECT_FALSE(queries::ranks_before({2, 5, 100}, {1, 5, 100}));
}

TEST(TopK, KeepsBestThreeSorted) {
  TopK t(3);
  t.offer({1, 10, 0});
  t.offer({2, 30, 0});
  t.offer({3, 20, 0});
  t.offer({4, 5, 0});
  EXPECT_EQ(t.answer(), "2|3|1");
  EXPECT_EQ(t.entries().size(), 3u);
}

TEST(TopK, FewerThanKEntities) {
  TopK t(3);
  t.offer({7, 1, 0});
  EXPECT_EQ(t.answer(), "7");
  t.offer({8, 2, 0});
  EXPECT_EQ(t.answer(), "8|7");
}

TEST(TopK, ReofferReplacesStaleScore) {
  TopK t(3);
  t.offer({1, 10, 0});
  t.offer({2, 20, 0});
  t.offer({3, 30, 0});
  t.offer({1, 100, 0});  // entity 1 improved
  EXPECT_EQ(t.answer(), "1|3|2");
  EXPECT_EQ(t.entries().size(), 3u);
}

TEST(TopK, MonotoneStreamMaintainsAnswer) {
  // The incremental engines' contract: offering every changed entity keeps
  // the answer identical to a full rescan, as long as scores never decrease.
  std::vector<Ranked> all = {
      {1, 5, 10}, {2, 5, 20}, {3, 7, 5}, {4, 0, 99}, {5, 2, 50}};
  TopK incremental = queries::top_k_of(3, all);
  // Entity 4 jumps to the top.
  for (auto& r : all) {
    if (r.id == 4) r.score = 100;
  }
  incremental.offer({4, 100, 99});
  EXPECT_EQ(incremental.answer(), queries::top_k_of(3, all).answer());
}

TEST(TopK, ZeroScoreEntitiesRankByRecency) {
  TopK t(3);
  t.offer({1, 0, 100});
  t.offer({2, 0, 300});
  t.offer({3, 0, 200});
  EXPECT_EQ(t.answer(), "2|3|1");
}

TEST(TopKOf, FullScanAgainstManualOrder) {
  const std::vector<Ranked> all = {
      {10, 3, 5}, {11, 3, 9}, {12, 1, 0}, {13, 9, 1}, {14, 3, 9}};
  // Order: 13 (9) > 11 (3, ts9, id11) > 14 (3, ts9, id14) > 10 > 12.
  EXPECT_EQ(queries::top_k_of(3, all).answer(), "13|11|14");
  EXPECT_EQ(queries::top_k_of(1, all).answer(), "13");
  EXPECT_EQ(queries::top_k_of(5, all).entries().size(), 5u);
}

TEST(TopK, ClearEmptiesAnswer) {
  TopK t(3);
  t.offer({1, 1, 1});
  t.clear();
  EXPECT_EQ(t.answer(), "");
}

// --- Threshold-pruned extraction primitives ---------------------------------

using queries::BlockBounds;
using queries::CandidatePool;
using queries::Index;
using queries::PruneStats;

TEST(BlockCanBeat, UnfilledTopKNeverSkips) {
  TopK t(3);
  t.offer({1, 100, 0});
  t.offer({2, 90, 0});
  EXPECT_TRUE(queries::block_can_beat(t, 0));
}

TEST(BlockCanBeat, BoundAboveThresholdScans) {
  TopK t(2);
  t.offer({1, 100, 0});
  t.offer({2, 50, 0});
  EXPECT_TRUE(queries::block_can_beat(t, 51));
  EXPECT_FALSE(queries::block_can_beat(t, 49));
}

TEST(BlockCanBeat, BoundEqualToThresholdMustScan) {
  // An entity at exactly the bound can still win the tie on timestamp (or
  // on id) — skipping here would break byte-identity with the full scan.
  TopK t(2);
  t.offer({1, 100, 0});
  t.offer({2, 50, 10});
  EXPECT_TRUE(queries::block_can_beat(t, 50));
}

TEST(BlockCanBeat, ZeroScoresRankByRecencySoZeroBoundScans) {
  // When the kth entry's score is 0, recency decides the answer and a
  // zero-bound block can still hold the winner.
  TopK t(2);
  t.offer({1, 0, 500});
  t.offer({2, 0, 400});
  EXPECT_TRUE(queries::block_can_beat(t, 0));
}

TEST(BlockBounds, RaiseTracksPerBlockMaxima) {
  BlockBounds bb(4);
  bb.reset(10);  // blocks [0,4) [4,8) [8,10)
  EXPECT_EQ(bb.num_blocks(), 3u);
  bb.raise(0, 7);
  bb.raise(3, 5);
  bb.raise(9, 11);
  EXPECT_EQ(bb.bound(0), 7u);
  EXPECT_EQ(bb.bound(1), 0u);
  EXPECT_EQ(bb.bound(2), 11u);
  bb.raise(0, 3);  // raise-only: never lowers
  EXPECT_EQ(bb.bound(0), 7u);
}

TEST(BlockBounds, ResizeKeepsExistingAndCoversNewborns) {
  BlockBounds bb(4);
  bb.reset(4);
  bb.raise(2, 9);
  bb.resize(10);
  EXPECT_EQ(bb.num_blocks(), 3u);
  EXPECT_EQ(bb.bound(0), 9u);
  EXPECT_EQ(bb.bound(2), 0u);
  bb.resize(6);  // shrinking request is a no-op
  EXPECT_EQ(bb.num_entities(), 10u);
}

TEST(BlockBounds, LoweringLeavesStaleHighBoundUntilBudget) {
  std::vector<std::uint64_t> values(8, 0);
  const auto value_of = [&](Index i) { return values[i]; };
  BlockBounds bb(8);
  bb.reset(8);
  values[3] = 100;
  bb.raise(3, 100);
  PruneStats st;
  // Lower entity 3 repeatedly: the bound must stay a valid upper bound
  // (stale-high is fine) until the staleness budget forces an exact rebuild.
  for (std::uint32_t n = 1; n < queries::kStaleBudget; ++n) {
    values[3] -= 1;
    bb.note_change(3, values[3], /*may_lower=*/true, value_of, st);
    EXPECT_EQ(bb.bound(0), 100u);
    EXPECT_GE(bb.bound(0), values[3]);
    EXPECT_EQ(bb.staleness(0), n);
  }
  EXPECT_EQ(st.bound_rebuilds, 0u);
  values[3] -= 1;
  bb.note_change(3, values[3], /*may_lower=*/true, value_of, st);
  EXPECT_EQ(st.bound_rebuilds, 1u);
  EXPECT_EQ(bb.staleness(0), 0u);
  EXPECT_EQ(bb.bound(0), values[3]);  // exact again
}

TEST(BlockBounds, NoteChangeRaisesEagerly) {
  std::vector<std::uint64_t> values(4, 0);
  BlockBounds bb(4);
  bb.reset(4);
  PruneStats st;
  values[1] = 42;
  bb.note_change(1, 42, /*may_lower=*/false,
                 [&](Index i) { return values[i]; }, st);
  EXPECT_EQ(bb.bound(0), 42u);
  EXPECT_EQ(bb.staleness(0), 0u);  // insert-only epochs never age blocks
}

TEST(CandidatePool, EvictsWorstOnOverflow) {
  CandidatePool pool(3);
  pool.offer(1, {1, 10, 0});
  pool.offer(2, {2, 20, 0});
  pool.offer(3, {3, 30, 0});
  pool.offer(4, {4, 5, 0});  // worse than everything: rejected
  ASSERT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.entries().back().r.id, 1u);
  pool.offer(5, {5, 25, 0});  // beats the worst member: admits, evicts id 1
  ASSERT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.entries().front().r.id, 3u);
  EXPECT_EQ(pool.entries()[1].r.id, 5u);
  EXPECT_EQ(pool.entries().back().r.id, 2u);
}

TEST(CandidatePool, MemberValuesReplaceInPlaceEvenWhenLowered) {
  // The pool's exactness contract: a member's score change — including a
  // removal-driven drop — replaces its entry, so seeding reads the current
  // value and the seeded threshold can be trusted.
  CandidatePool pool(3);
  pool.offer(1, {1, 100, 0});
  pool.offer(2, {2, 90, 0});
  pool.offer(1, {1, 10, 0});  // demoted
  ASSERT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.entries().front().r.id, 2u);
  EXPECT_EQ(pool.entries().back().r, (Ranked{1, 10, 0}));
}

TEST(CandidatePool, SeedFillsTopKAndCountsHits) {
  CandidatePool pool(4);
  pool.offer(1, {1, 10, 0});
  pool.offer(2, {2, 40, 0});
  pool.offer(3, {3, 30, 0});
  TopK top(2);
  PruneStats st;
  pool.seed(top, st);
  EXPECT_EQ(top.answer(), "2|3");
  EXPECT_EQ(st.pool_hits, 3u);
}

TEST(PrunedBlocks, CounterInvariantAndByteIdentity) {
  // 64 entities in 8 blocks; the pruned walk with exact bounds must agree
  // with the full scan and satisfy scanned + skipped == total.
  std::vector<std::uint64_t> values(64, 0);
  std::vector<Ranked> all;
  std::uint64_t x = 12345;
  for (Index i = 0; i < 64; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    values[i] = (x >> 33) % 1000;
    all.push_back({i, values[i], static_cast<sm::Timestamp>(i % 7)});
  }
  BlockBounds bb(8);
  bb.reset(64);
  for (Index i = 0; i < 64; ++i) bb.raise(i, values[i]);
  TopK top(3);
  PruneStats st;
  queries::pruned_blocks(
      top, bb.num_blocks(), [&](Index b) { return bb.bound(b); },
      [&](Index b) {
        for (Index i = bb.block_lo(b); i < bb.block_hi(b); ++i) {
          top.offer_guarded(all[i]);
        }
      },
      st);
  EXPECT_EQ(top.answer(), queries::top_k_of(3, all).answer());
  EXPECT_EQ(st.blocks_total, 8u);
  EXPECT_EQ(st.blocks_scanned + st.blocks_skipped, st.blocks_total);
  EXPECT_GT(st.blocks_scanned, 0u);
}

TEST(PrunedBlocks, StaleHighBoundForcesScanNotWrongAnswer) {
  // After a removal demotes the block's best entity, the unrebuilt bound is
  // stale-high: the block is scanned unnecessarily (a perf matter), but the
  // answer still matches the full scan (a correctness invariant).
  std::vector<std::uint64_t> values(8, 1);
  values[0] = 100;  // block 0's champion...
  BlockBounds bb(4);
  bb.reset(8);
  for (Index i = 0; i < 8; ++i) bb.raise(i, values[i]);
  PruneStats st;
  values[0] = 0;  // ...is demoted; bound 100 goes stale-high
  bb.note_change(0, 0, /*may_lower=*/true,
                 [&](Index i) { return values[i]; }, st);
  EXPECT_EQ(bb.bound(0), 100u);
  TopK top(2);
  std::vector<Ranked> all;
  for (Index i = 0; i < 8; ++i) {
    all.push_back({i, values[i], 0});
  }
  queries::pruned_blocks(
      top, bb.num_blocks(), [&](Index b) { return bb.bound(b); },
      [&](Index b) {
        for (Index i = bb.block_lo(b); i < bb.block_hi(b); ++i) {
          top.offer_guarded(all[i]);
        }
      },
      st);
  EXPECT_EQ(top.answer(), queries::top_k_of(2, all).answer());
  EXPECT_EQ(st.blocks_scanned, 2u);  // the stale bound could not be skipped
}

TEST(PruneCountersGlobal, AccumulateAndReset) {
  queries::reset_prune_counters();
  PruneStats a;
  a.blocks_total = 4;
  a.blocks_skipped = 3;
  a.blocks_scanned = 1;
  a.pool_hits = 2;
  queries::add_prune_counters(a);
  queries::add_prune_counters(a);
  const PruneStats snap = queries::prune_counters();
  EXPECT_EQ(snap.blocks_total, 8u);
  EXPECT_EQ(snap.blocks_skipped, 6u);
  EXPECT_EQ(snap.pool_hits, 4u);
  queries::reset_prune_counters();
  EXPECT_EQ(queries::prune_counters(), PruneStats{});
}

}  // namespace
