#include <gtest/gtest.h>

#include "queries/top_k.hpp"

namespace {

using queries::Ranked;
using queries::TopK;

TEST(Ranking, ScoreDominates) {
  EXPECT_TRUE(queries::ranks_before({1, 10, 0}, {2, 5, 100}));
  EXPECT_FALSE(queries::ranks_before({1, 5, 100}, {2, 10, 0}));
}

TEST(Ranking, TimestampBreaksScoreTies) {
  // More recent first (contest rule).
  EXPECT_TRUE(queries::ranks_before({1, 5, 200}, {2, 5, 100}));
  EXPECT_FALSE(queries::ranks_before({1, 5, 100}, {2, 5, 200}));
}

TEST(Ranking, IdBreaksFullTies) {
  EXPECT_TRUE(queries::ranks_before({1, 5, 100}, {2, 5, 100}));
  EXPECT_FALSE(queries::ranks_before({2, 5, 100}, {1, 5, 100}));
}

TEST(TopK, KeepsBestThreeSorted) {
  TopK t(3);
  t.offer({1, 10, 0});
  t.offer({2, 30, 0});
  t.offer({3, 20, 0});
  t.offer({4, 5, 0});
  EXPECT_EQ(t.answer(), "2|3|1");
  EXPECT_EQ(t.entries().size(), 3u);
}

TEST(TopK, FewerThanKEntities) {
  TopK t(3);
  t.offer({7, 1, 0});
  EXPECT_EQ(t.answer(), "7");
  t.offer({8, 2, 0});
  EXPECT_EQ(t.answer(), "8|7");
}

TEST(TopK, ReofferReplacesStaleScore) {
  TopK t(3);
  t.offer({1, 10, 0});
  t.offer({2, 20, 0});
  t.offer({3, 30, 0});
  t.offer({1, 100, 0});  // entity 1 improved
  EXPECT_EQ(t.answer(), "1|3|2");
  EXPECT_EQ(t.entries().size(), 3u);
}

TEST(TopK, MonotoneStreamMaintainsAnswer) {
  // The incremental engines' contract: offering every changed entity keeps
  // the answer identical to a full rescan, as long as scores never decrease.
  std::vector<Ranked> all = {
      {1, 5, 10}, {2, 5, 20}, {3, 7, 5}, {4, 0, 99}, {5, 2, 50}};
  TopK incremental = queries::top_k_of(3, all);
  // Entity 4 jumps to the top.
  for (auto& r : all) {
    if (r.id == 4) r.score = 100;
  }
  incremental.offer({4, 100, 99});
  EXPECT_EQ(incremental.answer(), queries::top_k_of(3, all).answer());
}

TEST(TopK, ZeroScoreEntitiesRankByRecency) {
  TopK t(3);
  t.offer({1, 0, 100});
  t.offer({2, 0, 300});
  t.offer({3, 0, 200});
  EXPECT_EQ(t.answer(), "2|3|1");
}

TEST(TopKOf, FullScanAgainstManualOrder) {
  const std::vector<Ranked> all = {
      {10, 3, 5}, {11, 3, 9}, {12, 1, 0}, {13, 9, 1}, {14, 3, 9}};
  // Order: 13 (9) > 11 (3, ts9, id11) > 14 (3, ts9, id14) > 10 > 12.
  EXPECT_EQ(queries::top_k_of(3, all).answer(), "13|11|14");
  EXPECT_EQ(queries::top_k_of(1, all).answer(), "13");
  EXPECT_EQ(queries::top_k_of(5, all).entries().size(), 5u);
}

TEST(TopK, ClearEmptiesAnswer) {
  TopK t(3);
  t.offer({1, 1, 1});
  t.clear();
  EXPECT_EQ(t.answer(), "");
}

}  // namespace
