// Removal-extension tests (the paper's future-work item (1)): edge deletion
// semantics in the model, the matrices, both query kernels, and — the
// strongest property — cross-engine equivalence on mixed insert/remove
// streams, where top-k maintenance loses its monotonicity fast path.
#include <gtest/gtest.h>

#include "datagen/generator.hpp"
#include "harness/runner.hpp"
#include "nmf/nmf_batch.hpp"
#include "paper_example.hpp"
#include "queries/grb_state.hpp"
#include "queries/q1.hpp"
#include "queries/q2.hpp"

namespace {

using grb::Index;
using harness::Query;
using namespace paper_example;

TEST(ModelRemovals, RemoveLikesIsSetSemantics) {
  auto g = initial_graph();
  EXPECT_TRUE(g.remove_likes(kU2, kC1));
  EXPECT_FALSE(g.remove_likes(kU2, kC1));  // already gone
  EXPECT_EQ(g.num_likes(), 4u);
  EXPECT_FALSE(g.has_likes(kU2, kC1));
  EXPECT_THROW(g.remove_likes(999, kC1), grb::InvalidValue);
}

TEST(ModelRemovals, RemoveFriendshipBothDirections) {
  auto g = initial_graph();
  EXPECT_TRUE(g.remove_friendship(kU3, kU2));  // reverse orientation works
  EXPECT_FALSE(g.has_friendship(kU2, kU3));
  EXPECT_FALSE(g.remove_friendship(kU2, kU3));
  EXPECT_EQ(g.num_friendships(), 1u);
}

TEST(MatrixRemovals, RemovePositionsBatch) {
  auto m = grb::Matrix<grb::Bool>::build(
      3, 3, {{0, 0, 1}, {0, 2, 1}, {1, 1, 1}, {2, 0, 1}});
  EXPECT_EQ(m.remove_positions({{0, 2}, {2, 0}, {1, 0}}), 2u);  // (1,0) absent
  EXPECT_EQ(m.nvals(), 2u);
  EXPECT_TRUE(m.has(0, 0));
  EXPECT_TRUE(m.has(1, 1));
  m.check_invariants();
  EXPECT_THROW(m.remove_positions({{3, 0}}), grb::IndexOutOfBounds);
}

TEST(GrbStateRemovals, NetsAddAndRemoveWithinBatch) {
  auto state = queries::GrbState::from_graph(initial_graph());
  sm::ChangeSet cs;
  // Remove an existing like, then re-add it: net no-op.
  cs.ops.push_back(sm::RemoveLikes{kU2, kC1});
  cs.ops.push_back(sm::AddLikes{kU2, kC1});
  // Add a new like, then remove it: net no-op.
  cs.ops.push_back(sm::AddLikes{kU1, kC1});
  cs.ops.push_back(sm::RemoveLikes{kU1, kC1});
  const auto delta = state.apply_change_set(cs);
  EXPECT_FALSE(delta.has_removals());
  EXPECT_TRUE(delta.new_likes.empty());
  EXPECT_EQ(state.likes_count().at_or(0, 0), 2u);
}

TEST(GrbStateRemovals, RemovalUpdatesMatricesAndCounts) {
  auto state = queries::GrbState::from_graph(initial_graph());
  sm::ChangeSet cs;
  cs.ops.push_back(sm::RemoveLikes{kU3, kC2});
  cs.ops.push_back(sm::RemoveFriendship{kU3, kU4});
  const auto delta = state.apply_change_set(cs);
  EXPECT_TRUE(delta.has_removals());
  EXPECT_EQ(delta.removed_likes.size(), 1u);
  EXPECT_EQ(delta.removed_friendships.size(), 1u);
  EXPECT_FALSE(state.likes().has(1, 2));
  EXPECT_FALSE(state.friends().has(2, 3));
  EXPECT_FALSE(state.friends().has(3, 2));
  EXPECT_EQ(state.likes_count().at_or(1, 0), 2u);
}

TEST(Q1Removals, IncrementalMatchesBatchAfterRemovals) {
  auto state = queries::GrbState::from_graph(initial_graph());
  auto scores = queries::q1_batch_scores(state);
  sm::ChangeSet cs;
  cs.ops.push_back(sm::RemoveLikes{kU3, kC2});  // p1: 25 -> 24
  const auto delta = state.apply_change_set(cs);
  const auto changed = queries::q1_incremental_update(state, delta, scores);
  EXPECT_EQ(scores.at_or(0, 0), 24u);
  EXPECT_EQ(changed.at_or(0, 0), 24u);
  EXPECT_EQ(scores, queries::q1_batch_scores(state));
}

TEST(Q2Removals, ComponentSplitsWhenFriendshipRemoved) {
  auto state = queries::GrbState::from_graph(initial_graph());
  auto scores = queries::q2_batch_scores(state);
  EXPECT_EQ(scores.at_or(1, 0), 5u);  // c2: {u1} + {u3,u4}
  sm::ChangeSet cs;
  cs.ops.push_back(sm::RemoveFriendship{kU3, kU4});  // splits {u3,u4}
  const auto delta = state.apply_change_set(cs);
  const auto affected = queries::q2_affected_comments(state, delta);
  EXPECT_EQ(affected, (std::vector<Index>{1}));  // only c2 has both likers
  queries::q2_incremental_update(state, delta, scores);
  EXPECT_EQ(scores.at_or(1, 0), 3u);  // three singletons
  // c1 untouched: the removed pair does not co-like it.
  EXPECT_EQ(scores.at_or(0, 0), 4u);
}

TEST(Q2Removals, UnlikedCommentLosesScore) {
  auto state = queries::GrbState::from_graph(initial_graph());
  auto scores = queries::q2_batch_scores(state);
  sm::ChangeSet cs;
  cs.ops.push_back(sm::RemoveLikes{kU3, kC1});
  const auto delta = state.apply_change_set(cs);
  queries::q2_incremental_update(state, delta, scores);
  EXPECT_EQ(scores.at_or(0, 0), 1u);  // c1: only u2 remains
}

TEST(EngineRemovals, DemotedLeaderFallsOutOfTopK) {
  // Build a graph where removals demote the current Q2 leader — the case
  // the merge-only top-k maintenance cannot handle.
  sm::SocialGraph g;
  for (sm::NodeId u = 100; u < 108; ++u) g.add_user(u);
  g.add_post(1, 0);
  g.add_comment(10, 1, false, 1);
  g.add_comment(11, 2, false, 1);
  g.add_comment(12, 3, false, 1);
  g.add_comment(13, 4, false, 1);
  // Leader c10: 4 connected likers (score 16).
  for (sm::NodeId u = 100; u < 104; ++u) g.add_likes(u, 10);
  g.add_friendship(100, 101);
  g.add_friendship(101, 102);
  g.add_friendship(102, 103);
  // c11: 3 singleton likers (3); c12: 2 (2); c13: 1 (1).
  for (sm::NodeId u = 104; u < 107; ++u) g.add_likes(u, 11);
  g.add_likes(104, 12);
  g.add_likes(105, 12);
  g.add_likes(107, 13);

  sm::ChangeSet demote;
  // Break the leader apart: drop two likers and the edge between the two
  // remaining ones, leaving c10 with two singleton likers (score 2).
  demote.ops.push_back(sm::RemoveFriendship{100, 101});
  demote.ops.push_back(sm::RemoveLikes{102, 10});
  demote.ops.push_back(sm::RemoveLikes{103, 10});

  for (const auto& tool : harness::all_tools()) {
    auto engine = harness::make_engine(tool, Query::kQ2);
    engine->load(g);
    EXPECT_EQ(engine->initial(), "10|11|12") << tool.label;
    // After demotion c10 scores 1²+1² = 2: new order 11 (3), 12 (2), then
    // c10 (2, newer timestamp? c10 ts 1 < c12 ts 3 → c12 first, then c10).
    EXPECT_EQ(engine->update(demote), "11|12|10") << tool.label;
  }
}

class RemovalStreamSweep : public ::testing::TestWithParam<std::uint64_t> {};

// The flagship property: with a 30% removal fraction, all engines still
// produce identical answers at every step, and the incremental score
// tables still match from-scratch batch evaluation.
TEST_P(RemovalStreamSweep, AllEnginesAgreeOnMixedStreams) {
  auto params = datagen::params_for_scale(2, GetParam());
  params.frac_removals = 0.3;
  const auto ds = datagen::generate(params);
  bool any_removal = false;
  for (const auto& cs : ds.changes) any_removal |= sm::has_removals(cs);
  ASSERT_TRUE(any_removal) << "stream contains no removals; test is vacuous";
  for (const Query q : {Query::kQ1, Query::kQ2}) {
    EXPECT_NO_THROW(
        harness::verify_tools(harness::all_tools(), q, ds.initial,
                              ds.changes));
  }
}

TEST_P(RemovalStreamSweep, IncrementalScoresMatchBatchUnderRemovals) {
  auto params = datagen::params_for_scale(1, GetParam() + 100);
  params.frac_removals = 0.4;
  const auto ds = datagen::generate(params);
  auto state = queries::GrbState::from_graph(ds.initial);
  auto q1 = queries::q1_batch_scores(state);
  auto q2 = queries::q2_batch_scores(state);
  sm::SocialGraph model = ds.initial;
  for (const auto& cs : ds.changes) {
    const auto delta = state.apply_change_set(cs);
    queries::q1_incremental_update(state, delta, q1);
    queries::q2_incremental_update(state, delta, q2);
    sm::apply_change_set(model, cs);
    const auto q1b = queries::q1_batch_scores(state);
    for (Index p = 0; p < state.num_posts(); ++p) {
      ASSERT_EQ(q1.at_or(p, 0), q1b.at_or(p, 0)) << "post " << p;
      ASSERT_EQ(q1.at_or(p, 0), nmf::q1_score_of_post(model, p));
    }
    const auto q2b = queries::q2_batch_scores(state);
    for (Index c = 0; c < state.num_comments(); ++c) {
      ASSERT_EQ(q2.at_or(c, 0), q2b.at_or(c, 0)) << "comment " << c;
      ASSERT_EQ(q2.at_or(c, 0), nmf::q2_score_of_comment(model, c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RemovalStreamSweep,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
