#include <gtest/gtest.h>

#include "datagen/generator.hpp"
#include "model/change.hpp"
#include "support/rng.hpp"

namespace {

using datagen::GeneratorParams;

TEST(ScaleTable, HasAllElevenRows) {
  const auto& table = datagen::scale_table();
  ASSERT_EQ(table.size(), 11u);
  EXPECT_EQ(table.front().scale_factor, 1u);
  EXPECT_EQ(table.front().nodes, 1274u);
  EXPECT_EQ(table.front().edges, 2533u);
  EXPECT_EQ(table.front().inserts, 67u);
  EXPECT_EQ(table.back().scale_factor, 1024u);
  EXPECT_EQ(table.back().inserts, 74u);
}

TEST(ScaleTable, SpecForUnknownScaleThrows) {
  EXPECT_NO_THROW(datagen::spec_for(64));
  EXPECT_THROW(datagen::spec_for(3), grb::InvalidValue);
  EXPECT_THROW(datagen::spec_for(1536), grb::InvalidValue);
  EXPECT_THROW(datagen::spec_for(datagen::kMaxScaleFactor * 2),
               grb::InvalidValue);
}

TEST(ScaleTable, ExtrapolatesBeyondTableTwo) {
  // Powers of two above 1024 follow the power-law fit of the Table II
  // node/edge columns: monotone continuation with roughly the table's
  // per-doubling growth (nodes ×~1.9, edges ×~2.0 per step).
  EXPECT_TRUE(datagen::is_extrapolated(2048));
  EXPECT_FALSE(datagen::is_extrapolated(1024));
  // False wherever spec_for would throw (non-power-of-two, out of range).
  EXPECT_FALSE(datagen::is_extrapolated(1536));
  EXPECT_FALSE(datagen::is_extrapolated(datagen::kMaxScaleFactor * 2));
  const auto sf1024 = datagen::spec_for(1024);
  const auto sf2048 = datagen::spec_for(2048);
  const auto sf4096 = datagen::spec_for(4096);
  EXPECT_EQ(sf2048.scale_factor, 2048u);
  EXPECT_GT(sf2048.nodes, sf1024.nodes);
  EXPECT_GT(sf4096.nodes, sf2048.nodes);
  EXPECT_GT(sf2048.edges, sf1024.edges);
  // Growth per doubling stays in the table's observed band.
  const double node_ratio = static_cast<double>(sf4096.nodes) /
                            static_cast<double>(sf2048.nodes);
  const double edge_ratio = static_cast<double>(sf4096.edges) /
                            static_cast<double>(sf2048.edges);
  EXPECT_GT(node_ratio, 1.6);
  EXPECT_LT(node_ratio, 2.2);
  EXPECT_GT(edge_ratio, 1.7);
  EXPECT_LT(edge_ratio, 2.3);
  EXPECT_GT(sf2048.inserts, 0u);
  // The fit must reproduce the tabled rows' order of magnitude at the top
  // end (sanity that extrapolation and table agree at the boundary).
  const auto fit1024 = datagen::extrapolated_spec(2048);
  EXPECT_NEAR(static_cast<double>(fit1024.nodes),
              static_cast<double>(sf1024.nodes) * 1.92, 0.25 * 1.92 *
                  static_cast<double>(sf1024.nodes));
  // params_for_scale accepts extrapolated scale factors end to end.
  EXPECT_NO_THROW(datagen::params_for_scale(2048));
}

TEST(Generator, DeterministicForSameSeed) {
  const auto p = datagen::params_for_scale(1);
  const auto a = datagen::generate(p);
  const auto b = datagen::generate(p);
  EXPECT_EQ(a.initial.num_nodes(), b.initial.num_nodes());
  EXPECT_EQ(a.initial.num_edges(), b.initial.num_edges());
  ASSERT_EQ(a.changes.size(), b.changes.size());
  for (std::size_t i = 0; i < a.changes.size(); ++i) {
    EXPECT_EQ(a.changes[i].ops, b.changes[i].ops);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const auto a = datagen::generate(datagen::params_for_scale(1, 1));
  const auto b = datagen::generate(datagen::params_for_scale(1, 2));
  // Node counts match (calibrated), but the edge wiring must differ.
  bool any_difference = a.initial.num_edges() != b.initial.num_edges();
  if (!any_difference) {
    for (std::size_t c = 0;
         c < std::min(a.initial.num_comments(), b.initial.num_comments());
         ++c) {
      if (a.initial.comment(c).likers != b.initial.comment(c).likers) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

class GeneratorScaleSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(GeneratorScaleSweep, SizesWithinToleranceOfTable2) {
  const unsigned sf = GetParam();
  const auto spec = datagen::spec_for(sf);
  const auto ds = datagen::generate(datagen::params_for_scale(sf));
  // Nodes are constructed exactly; edges within 12% (duplicate rejection in
  // heavy-tailed sampling loses a few); inserts within 15%.
  EXPECT_EQ(ds.initial.num_nodes(), spec.nodes);
  const double edge_ratio = static_cast<double>(ds.initial.num_edges()) /
                            static_cast<double>(spec.edges);
  EXPECT_GT(edge_ratio, 0.88) << "edges " << ds.initial.num_edges();
  EXPECT_LT(edge_ratio, 1.12) << "edges " << ds.initial.num_edges();
  const double insert_ratio =
      static_cast<double>(datagen::inserted_elements(ds.changes)) /
      static_cast<double>(spec.inserts);
  EXPECT_GT(insert_ratio, 0.85);
  EXPECT_LT(insert_ratio, 1.15);
}

TEST_P(GeneratorScaleSweep, ChangesApplyCleanly) {
  const auto ds = datagen::generate(datagen::params_for_scale(GetParam()));
  sm::SocialGraph g = ds.initial;
  for (const auto& cs : ds.changes) {
    EXPECT_NO_THROW(sm::apply_change_set(g, cs));
  }
  EXPECT_GE(g.num_nodes(), ds.initial.num_nodes());
}

INSTANTIATE_TEST_SUITE_P(Scales, GeneratorScaleSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

TEST(Generator, HeavyTailExists) {
  // The most-liked comment should hold a clearly super-uniform share.
  const auto ds = datagen::generate(datagen::params_for_scale(8));
  std::size_t max_likes = 0;
  std::size_t total = 0;
  for (const auto& c : ds.initial.comments()) {
    max_likes = std::max(max_likes, c.likers.size());
    total += c.likers.size();
  }
  ASSERT_GT(total, 0u);
  const double uniform_share =
      static_cast<double>(total) /
      static_cast<double>(ds.initial.num_comments());
  EXPECT_GT(static_cast<double>(max_likes), 5.0 * uniform_share);
}

TEST(Generator, ChangeSetsAreNonEmptyAndDeduplicated) {
  const auto ds = datagen::generate(datagen::params_for_scale(4));
  EXPECT_FALSE(ds.changes.empty());
  sm::SocialGraph g = ds.initial;
  for (const auto& cs : ds.changes) {
    EXPECT_FALSE(cs.empty());
    for (const auto& op : cs.ops) {
      if (const auto* like = std::get_if<sm::AddLikes>(&op)) {
        EXPECT_FALSE(g.has_likes(like->user, like->comment));
      } else if (const auto* fr = std::get_if<sm::AddFriendship>(&op)) {
        EXPECT_FALSE(g.has_friendship(fr->a, fr->b));
      }
      sm::ChangeSet single;
      single.ops.push_back(op);
      sm::apply_change_set(g, single);
    }
  }
}

TEST(Zipf, SamplerStaysInDomainAndIsSkewed) {
  grbsm::support::ZipfSampler zipf(100, 1.0);
  grbsm::support::Xoshiro256 rng(7);
  std::size_t ones = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto s = zipf.sample(rng);
    ASSERT_GE(s, 1u);
    ASSERT_LE(s, 100u);
    if (s == 1) ++ones;
  }
  // P(1) ≈ 1/H(100) ≈ 0.19 for alpha=1; uniform would be 0.01.
  EXPECT_GT(ones, 1000u);
}

}  // namespace
