#!/usr/bin/env python3
"""Repo-specific concurrency/ownership invariant lint.

Mechanizes the rules the codebase's concurrency-correctness story depends
on — the ones clang-tidy cannot know about:

  omp-outside-parallel  Every `#pragma omp` must live in
                        src/grb/detail/parallel.hpp. That confinement is
                        what lets the TSan fork/join annotations and the
                        debug overlap claims cover the whole library from
                        one file.
  omp-reduction         `reduction(...)` clauses are banned everywhere
                        (including parallel.hpp): their combination order
                        varies with the team size, which breaks the
                        bit-identical-at-any-thread-count guarantee. Use
                        detail::parallel_fold (fixed-grid, deterministic).
  naked-alloc           `new T[...]` / malloc / calloc / realloc are banned
                        outside src/grb/detail/workspace.hpp: scratch and
                        storage lease from the Context workspace arena so
                        the steady state stays allocation-free.
  raw-rng               std::rand / srand / std::random_device are banned in
                        library code (src/): all randomness flows through
                        the seeded support/rng.hpp engines so every run is
                        reproducible from its --seed.
  raw-thread            std::thread / std::jthread / std::condition_variable
                        are banned outside src/grb/detail/ and src/daemon/:
                        thread lifetime and hand-off edges live behind the
                        EpochPipeline and parallel.hpp abstractions, where
                        the TSan story (native mutex/cv edges vs
                        re-annotated libgomp barriers) is established once.
                        The daemon layer is the second sanctioned owner — it
                        is a network service (connection threads, one writer
                        thread) and is all-native mutex/cv, covered by the
                        TSan lane's Daemon suites. std::thread::id and
                        this_thread remain fine — only ownership primitives
                        are confined.

A line may opt out of one rule with a trailing `lint:allow(<rule-id>)`
marker (inside a comment), mirroring clang-tidy's NOLINT. Use sparingly and
say why next to it.

`--check-trace PATH` validates a Chrome trace_event JSON written by the
telemetry tracer (grb_daemon/load_gen/fig5 --trace=PATH): well-formed JSON,
required fields on every event, balanced B/E nesting per (pid, tid),
non-decreasing timestamps per tid, every published epoch (id >= 1; 0 is the
initial evaluation) observed in at least 3 distinct pipeline stages, and at
least one epoch covering the full route/apply/merge/publish lifecycle. The
daemon-smoke CI lane runs it over a live daemon's trace.

Exit status: 0 clean, 1 violations found (printed as file:line: [rule] ...),
2 usage error. `--self-test` seeds one violation per rule in a temp tree and
asserts the scanner catches each (and that a clean tree passes), then feeds
the trace checker known-good and known-broken traces — this runs as the
ctest case lint.invariants_selftest.
"""

import argparse
import json
import os
import re
import sys
import tempfile

CODE_SUFFIXES = (".hpp", ".cpp", ".h", ".cc", ".cxx", ".hxx")

# Directories scanned relative to the repo root. `build*` and hidden dirs
# are always skipped.
SCAN_DIRS = ("src", "tests", "bench", "examples")

ALLOW_MARKER = re.compile(r"lint:allow\(([a-z-]+)\)")

# Strip // line comments so prose about "#pragma omp" or "malloc" in a
# comment does not trip the code rules. Block comments are rare in this
# codebase and handled line-wise (a line starting with * or /* is prose).
LINE_COMMENT = re.compile(r"//.*$")
BLOCK_COMMENT_LINE = re.compile(r"^\s*(/\*|\*)")


class Rule:
    def __init__(self, rule_id, pattern, message, dirs, allowed_files,
                 allowed_prefixes=()):
        self.rule_id = rule_id
        self.pattern = re.compile(pattern)
        self.message = message
        self.dirs = dirs  # top-level dirs the rule applies to
        self.allowed_files = allowed_files  # repo-relative posix paths exempt
        # Repo-relative posix directory prefixes (trailing slash) whose whole
        # subtree is exempt — for invariants confined to a layer, not a file.
        self.allowed_prefixes = tuple(allowed_prefixes)

    def exempt(self, rel):
        return rel in self.allowed_files or any(
            rel.startswith(p) for p in self.allowed_prefixes
        )


RULES = [
    Rule(
        "omp-outside-parallel",
        r"#\s*pragma\s+omp\b",
        "`#pragma omp` outside src/grb/detail/parallel.hpp — route the "
        "parallelism through parallel_for/parallel_region/parallel_tasks",
        SCAN_DIRS,
        {"src/grb/detail/parallel.hpp"},
    ),
    Rule(
        "omp-reduction",
        r"#\s*pragma\s+omp\b.*\breduction\s*\(",
        "omp reduction clause — combination order depends on the team size; "
        "use detail::parallel_fold (deterministic fixed-grid reduction)",
        SCAN_DIRS,
        set(),
    ),
    Rule(
        "naked-alloc",
        r"(\bnew\s+[A-Za-z_][\w:<>,\s]*\[|\b(?:malloc|calloc|realloc)\s*\()",
        "naked allocation outside the workspace arena — lease scratch from "
        "grb::detail::workspace() (grb/detail/workspace.hpp)",
        SCAN_DIRS,
        {"src/grb/detail/workspace.hpp"},
    ),
    Rule(
        "raw-rng",
        r"(\bstd::rand\b|\bsrand\s*\(|\bstd::random_device\b)",
        "non-reproducible RNG in library code — use the seeded engines in "
        "support/rng.hpp so runs replay from --seed",
        ("src",),
        {"src/support/rng.hpp"},
    ),
    Rule(
        # `thread\b(?!::)` keeps std::thread::id / std::thread::hardware_
        # concurrency legal — only owning a thread (or a cv hand-off edge)
        # is confined to the detail layer.
        "raw-thread",
        r"\bstd::(?:jthread\b|condition_variable|thread\b(?!::))",
        "raw thread/cv ownership outside src/grb/detail/ and src/daemon/ — "
        "hand epochs to workers through grb::detail::EpochPipeline "
        "(grb/detail/pipeline.hpp) or use the parallel.hpp primitives",
        ("src", "bench", "examples"),
        set(),
        ("src/grb/detail/", "src/daemon/"),
    ),
]


def iter_files(root, dirs):
    for d in dirs:
        top = os.path.join(root, d)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = [
                n for n in dirnames if not n.startswith(".") and n != "build"
            ]
            for name in sorted(filenames):
                if name.endswith(CODE_SUFFIXES):
                    yield os.path.join(dirpath, name)


def scan(root):
    """Returns a list of (relpath, lineno, rule_id, message, line) tuples."""
    violations = []
    files_by_dirs = {}
    for rule in RULES:
        files_by_dirs.setdefault(rule.dirs, None)
    for dirs in files_by_dirs:
        files_by_dirs[dirs] = list(iter_files(root, dirs))
    for rule in RULES:
        for path in files_by_dirs[rule.dirs]:
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            if rule.exempt(rel):
                continue
            try:
                with open(path, encoding="utf-8", errors="replace") as f:
                    lines = f.readlines()
            except OSError as e:
                print(f"error: cannot read {rel}: {e}", file=sys.stderr)
                return None
            for lineno, raw in enumerate(lines, start=1):
                allow = ALLOW_MARKER.search(raw)
                if allow and allow.group(1) == rule.rule_id:
                    continue
                if BLOCK_COMMENT_LINE.match(raw):
                    continue
                code = LINE_COMMENT.sub("", raw)
                if rule.pattern.search(code):
                    violations.append(
                        (rel, lineno, rule.rule_id, rule.message, raw.rstrip())
                    )
    return violations


# --- Chrome-trace validation -------------------------------------------------

# The daemon-side stages one published epoch must flow through; "answer" and
# "client.read" additionally appear for epochs that were read.
FULL_LIFECYCLE = ("route", "apply", "merge", "publish")
MIN_STAGES_PER_EPOCH = 3


def check_trace_events(events):
    """Validates a parsed traceEvents list. Returns a list of error strings
    (empty = valid)."""
    errors = []
    stacks = {}  # (pid, tid) -> list of begin-event names
    last_ts = {}  # tid -> last seen ts
    epoch_stages = {}  # epoch id -> set of span names
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph == "M":
            continue  # metadata (process_name etc.): no further shape rules
        if ph not in ("B", "E"):
            errors.append(f"event {i}: unexpected ph {ph!r}")
            continue
        missing = [k for k in ("name", "pid", "tid", "ts") if k not in ev]
        if missing:
            errors.append(f"event {i}: missing fields {missing}")
            continue
        tid = ev["tid"]
        ts = ev["ts"]
        if not isinstance(ts, (int, float)):
            errors.append(f"event {i}: non-numeric ts {ts!r}")
            continue
        if tid in last_ts and ts < last_ts[tid]:
            errors.append(
                f"event {i}: ts {ts} goes backwards on tid {tid} "
                f"(previous {last_ts[tid]})"
            )
        last_ts[tid] = ts
        stack = stacks.setdefault((ev["pid"], tid), [])
        if ph == "B":
            stack.append(ev["name"])
        else:
            if not stack:
                errors.append(
                    f"event {i}: E {ev['name']!r} with no open B on "
                    f"tid {tid}"
                )
                continue
            opened = stack.pop()
            if opened != ev["name"]:
                errors.append(
                    f"event {i}: E {ev['name']!r} closes B {opened!r} on "
                    f"tid {tid}"
                )
            epoch = ev.get("args", {}).get("epoch")
            if isinstance(epoch, int):
                epoch_stages.setdefault(epoch, set()).add(ev["name"])
    for (pid, tid), stack in sorted(stacks.items()):
        if stack:
            errors.append(
                f"tid {tid} (pid {pid}): {len(stack)} unclosed B event(s): "
                f"{stack}"
            )
    # Epoch coverage: ids are the published 1-based snapshot numbering;
    # epoch 0 (the initial evaluation / unanswered reads) is exempt.
    published = {e: s for e, s in epoch_stages.items() if e >= 1}
    if not published:
        errors.append(
            "no spans tagged with a published epoch (id >= 1) — tracing was "
            "not armed, or the daemon saw no writes"
        )
    for epoch in sorted(published):
        stages = published[epoch]
        if len(stages) < MIN_STAGES_PER_EPOCH:
            errors.append(
                f"epoch {epoch}: only {sorted(stages)} — every published "
                f"epoch must appear in >= {MIN_STAGES_PER_EPOCH} stages"
            )
    if published and not any(
        set(FULL_LIFECYCLE) <= s for s in published.values()
    ):
        errors.append(
            "no epoch covers the full lifecycle "
            f"{'/'.join(FULL_LIFECYCLE)}"
        )
    return errors


def check_trace(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as e:
        print(f"{path}: [trace] malformed JSON: {e}")
        return 1
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
    elif isinstance(doc, list):
        events = doc
    else:
        events = None
    if not isinstance(events, list):
        print(f"{path}: [trace] expected a traceEvents array")
        return 1
    errors = check_trace_events(events)
    for e in errors:
        print(f"{path}: [trace] {e}")
    if errors:
        print(f"\n{len(errors)} trace violation(s).", file=sys.stderr)
        return 1
    n_epochs = len(
        {
            ev["args"]["epoch"]
            for ev in events
            if isinstance(ev, dict)
            and isinstance(ev.get("args", {}).get("epoch"), int)
            and ev["args"]["epoch"] >= 1
        }
    )
    print(
        f"lint_invariants: trace ok ({len(events)} events, "
        f"{n_epochs} published epoch(s))"
    )
    return 0


def trace_self_test():
    """Feeds the trace checker a known-good trace and one broken variant per
    rule; returns a list of failure strings."""

    def span(name, epoch, tid, ts, dur):
        args = {"epoch": epoch}
        return [
            {"name": name, "ph": "B", "pid": 1, "tid": tid, "ts": ts,
             "args": args},
            {"name": name, "ph": "E", "pid": 1, "tid": tid, "ts": ts + dur,
             "args": args},
        ]

    good = (
        [{"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
          "args": {"name": "grb_daemon"}}]
        + span("route", 1, 1, 0.0, 5.0)
        + span("apply", 1, 2, 6.0, 20.0)
        + span("merge", 1, 1, 30.0, 10.0)
        + span("publish", 1, 1, 41.0, 2.0)
        + span("answer", 1, 3, 50.0, 3.0)
    )
    unbalanced = good + [
        {"name": "merge", "ph": "E", "pid": 1, "tid": 1, "ts": 99.0,
         "args": {"epoch": 1}}
    ]
    # Epoch 2 only ever routes + merges: fewer than MIN_STAGES_PER_EPOCH.
    thin_epoch = good + span("route", 2, 1, 60.0, 5.0) + span(
        "merge", 2, 1, 70.0, 5.0
    )
    backwards = good + span("route", 1, 1, -50.0, 5.0)
    no_epochs = [ev for ev in good if ev.get("args", {}).get("epoch") != 1]

    cases = [
        ("valid trace", good, True),
        ("unbalanced E", unbalanced, False),
        ("epoch below stage floor", thin_epoch, False),
        ("backwards ts", backwards, False),
        ("no published epochs", no_epochs, False),
    ]
    failures = []
    for what, events, expect_ok in cases:
        errors = check_trace_events(events)
        if bool(errors) == expect_ok:
            failures.append(
                f"trace checker: {what}: expected "
                f"{'pass' if expect_ok else 'fail'}, got {errors or 'pass'}"
            )
    return failures


def self_test():
    """Seeds one violation per rule in a temp tree; the scanner must flag
    each, and a clean tree must pass."""
    seeded = {
        # A stray omp pragma in a test fixture — the canonical violation.
        "tests/fixture_test.cpp": (
            "void f(int* v, int n) {\n"
            "#pragma omp parallel for\n"
            "  for (int i = 0; i < n; ++i) v[i] = i;\n"
            "}\n",
            {"omp-outside-parallel"},
        ),
        "src/grb/detail/parallel.hpp": (
            "#pragma omp parallel for reduction(+ : sum)\n",
            {"omp-reduction"},  # allowed for the omp rule, not for reduction
        ),
        "src/kernel.cpp": (
            "int* scratch = new int[1024];\n"
            "void* p = malloc(64);\n",
            {"naked-alloc"},
        ),
        "src/engine.cpp": (
            "#include <random>\n"
            "int seed() { return static_cast<int>(std::random_device{}()); }\n",
            {"raw-rng"},
        ),
        # A hand-rolled worker thread and cv outside the detail layer.
        "src/worker_pool.cpp": (
            "#include <thread>\n"
            "std::thread t([] {});\n"
            "std::condition_variable cv;\n",
            {"raw-thread"},
        ),
        # The detail layer itself may own threads (prefix exemption) ...
        "src/grb/detail/pipeline2.hpp": (
            "#include <thread>\n"
            "std::vector<std::thread> threads_;\n",
            set(),
        ),
        # ... as may the daemon layer (connection threads + writer thread),
        "src/daemon/server2.cpp": (
            "#include <thread>\n"
            "std::thread writer_;\n"
            "std::condition_variable ingest_cv_;\n",
            set(),
        ),
        # ... and non-owning thread identity is legal anywhere.
        "src/logger.cpp": (
            "#include <thread>\n"
            "std::thread::id last = std::this_thread::get_id();\n",
            set(),
        ),
        # Clean + suppressed content must NOT fire.
        "src/clean.cpp": (
            "// prose about #pragma omp and malloc( in a comment is fine\n"
            "int* p = new int[4];  // lint:allow(naked-alloc) fixed-size ABI\n",
            set(),
        ),
    }
    failures = []
    with tempfile.TemporaryDirectory(prefix="lint_selftest_") as tmp:
        for rel, (content, _) in seeded.items():
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
        violations = scan(tmp)
        if violations is None:
            return 1
        fired = {}
        for rel, _lineno, rule_id, _msg, _line in violations:
            fired.setdefault(rel, set()).add(rule_id)
        for rel, (_content, expected) in seeded.items():
            got = fired.get(rel, set())
            if got != expected:
                failures.append(
                    f"{rel}: expected rules {sorted(expected)}, got {sorted(got)}"
                )
    # An empty tree must scan clean.
    with tempfile.TemporaryDirectory(prefix="lint_selftest_clean_") as tmp:
        os.makedirs(os.path.join(tmp, "src"))
        if scan(tmp):
            failures.append("clean tree reported violations")
    failures.extend(trace_self_test())
    if failures:
        print("lint_invariants self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("lint_invariants self-test passed "
          f"({len(RULES)} rules, seeded violations all caught; trace "
          "checker verified)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument("--root", default=default_root,
                        help="repo root to scan (default: the checkout "
                             "containing this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="seed violations in a temp tree and assert the "
                             "scanner catches them")
    parser.add_argument("--check-trace", metavar="PATH",
                        help="validate a Chrome trace_event JSON written by "
                             "--trace=PATH instead of scanning sources")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.check_trace:
        return check_trace(args.check_trace)

    if not os.path.isdir(args.root):
        print(f"error: no such directory: {args.root}", file=sys.stderr)
        return 2
    violations = scan(args.root)
    if violations is None:
        return 2
    for rel, lineno, rule_id, message, line in violations:
        print(f"{rel}:{lineno}: [{rule_id}] {message}")
        print(f"    {line.strip()}")
    if violations:
        print(f"\n{len(violations)} invariant violation(s).", file=sys.stderr)
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
